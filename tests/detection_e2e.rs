//! End-to-end detection tests: the full stack (event kernel → PHY → DCF →
//! traffic → monitor) against every attacker model the paper describes.

use manet_guard::prelude::*;

/// Builds the paper's grid with a tagged pair, runs `secs`, returns the
/// monitor's diagnosis.
fn run_grid(
    policy: Option<BackoffPolicy>,
    secs: u64,
    rate_pps: f64,
    seed: u64,
    tune: impl FnOnce(&mut MonitorConfig),
) -> Diagnosis {
    let scenario = Scenario::new(ScenarioConfig {
        sim_secs: secs,
        rate_pps,
        ..ScenarioConfig::grid_paper(seed)
    });
    let (s, r) = scenario.tagged_pair();
    let mut mc = MonitorConfig::grid_paper(s, r, 240.0);
    mc.sample_size = 25;
    tune(&mut mc);
    let mut b = ScenarioBuilder::new(scenario);
    let attacker = b.attacker(s);
    let watch = b.monitor(mc);
    b.source(SourceCfg::saturated(s, r));
    let mut world = b.build();
    if let Some(p) = policy {
        world.set_policy(attacker.id(), p);
    }
    world.run_until(SimTime::from_secs(secs));
    world.monitors().diagnosis(watch)
}

#[test]
fn compliant_node_is_never_flagged() {
    for seed in [1, 2, 3] {
        let d = run_grid(None, 60, 2.0, seed, |_| {});
        assert_eq!(d.violations, 0, "seed {seed}: {d:?}");
        // The paper's false-alarm budget is < 1% of tests; over the handful
        // of tests a 60 s run yields, that means zero.
        assert!(
            d.rejection_rate() < 0.02,
            "seed {seed}: false alarms {d:?}"
        );
        assert!(d.tests_run >= 5, "seed {seed}: too few tests ({d:?})");
    }
}

#[test]
fn scaled_cheater_is_flagged_statistically_and_deterministically() {
    let d = run_grid(Some(BackoffPolicy::Scaled { pm: 60 }), 60, 2.0, 4, |_| {});
    assert!(d.rejections > 0, "{d:?}");
    assert!(d.violations > 0, "{d:?}");
}

#[test]
fn fixed_backoff_cheater_is_flagged() {
    // Always two slots, regardless of the dictated draw.
    let d = run_grid(Some(BackoffPolicy::Fixed { slots: 2 }), 60, 2.0, 5, |_| {});
    assert!(d.is_flagged(), "{d:?}");
    assert!(d.rejections > 0, "statistical path must fire: {d:?}");
}

#[test]
fn alt_distribution_cheater_is_flagged() {
    // Private uniform draws from a narrow, non-growing window.
    let d = run_grid(
        Some(BackoffPolicy::AltDistribution { cw: 7 }),
        60,
        2.0,
        6,
        |_| {},
    );
    assert!(d.is_flagged(), "{d:?}");
}

#[test]
fn attempt_cheater_is_caught_by_md_check() {
    // Counts down honestly but always announces attempt #1 so its window
    // never widens. Only the deterministic MD5/attempt check can see this.
    // Needs retransmissions, so run under heavier background traffic.
    let d = run_grid(Some(BackoffPolicy::AttemptCheat), 60, 6.0, 7, |_| {});
    assert!(d.violations > 0, "MD/attempt check must fire: {d:?}");
    // And the statistical path must NOT be the one firing (its countdowns
    // are honest).
    assert!(
        d.rejection_rate() < 0.05,
        "attempt cheat should not shift the back-off statistics: {d:?}"
    );
}

#[test]
fn mild_misbehavior_needs_bigger_samples() {
    // PM = 30 at sample size 10 vs 100 — the paper's accuracy/speed
    // trade-off: the bigger history must reject at least as often.
    let small = run_grid(Some(BackoffPolicy::Scaled { pm: 30 }), 90, 1.0, 8, |m| {
        m.sample_size = 10;
        m.blatant_check = false;
    });
    let large = run_grid(Some(BackoffPolicy::Scaled { pm: 30 }), 90, 1.0, 8, |m| {
        m.sample_size = 100;
        m.blatant_check = false;
    });
    assert!(
        large.rejection_rate() >= small.rejection_rate(),
        "small: {small:?}\nlarge: {large:?}"
    );
    assert!(large.rejections > 0, "{large:?}");
}

#[test]
fn two_simultaneous_attackers_are_both_caught() {
    // Paper footnote 7: the scheme handles small numbers of malicious nodes.
    let scenario = Scenario::new(ScenarioConfig {
        sim_secs: 60,
        rate_pps: 1.0,
        ..ScenarioConfig::grid_paper(11)
    });
    let (s1, r1) = scenario.tagged_pair();
    // Second attacker: a node far from the first (corner region).
    let s2 = 0;
    let r2 = 1;
    let mc1 = MonitorConfig::grid_paper(s1, r1, 240.0);
    let mc2 = MonitorConfig::grid_paper(s2, r2, 240.0);
    let mut b = ScenarioBuilder::new(scenario);
    let a1 = b.attacker(s1);
    let w1 = b.monitor(mc1);
    let a2 = b.attacker(s2);
    let w2 = b.monitor(mc2);
    b.source(SourceCfg::saturated(s1, r1));
    b.source(SourceCfg::saturated(s2, r2));
    let mut world = b.build();
    world.set_policy(a1.id(), BackoffPolicy::Scaled { pm: 70 });
    world.set_policy(a2.id(), BackoffPolicy::Scaled { pm: 70 });
    world.run_until(SimTime::from_secs(60));

    let d1 = world.monitors().diagnosis(w1);
    let d2 = world.monitors().diagnosis(w2);
    assert!(d1.is_flagged(), "attacker 1 missed: {d1:?}");
    assert!(d2.is_flagged(), "attacker 2 missed: {d2:?}");
}

#[test]
fn basic_access_evasion_is_flagged() {
    // An attacker that disables RTS/CTS entirely (legacy basic access)
    // never announces its back-off draws — the statistical detector gets no
    // samples. The UnverifiedData deterministic check catches the pattern.
    let scenario = Scenario::new(ScenarioConfig {
        sim_secs: 30,
        rate_pps: 1.0,
        ..ScenarioConfig::grid_paper(21)
    });
    let (s, r) = scenario.tagged_pair();
    let mut mc = MonitorConfig::grid_paper(s, r, 240.0);
    mc.sample_size = 25;
    let mut b = ScenarioBuilder::new(scenario);
    let attacker = b.attacker(s);
    let watch = b.monitor(mc);
    b.source(SourceCfg::saturated(s, r));
    let mut world = b.build();
    world.set_rts_threshold(s, u32::MAX); // never send RTS
    world.set_policy(attacker.id(), BackoffPolicy::Scaled { pm: 80 });
    world.run_until(SimTime::from_secs(30));
    assert!(
        world
            .monitors()
            .violations(watch)
            .iter()
            .any(|v| matches!(v, Violation::UnverifiedData { .. })),
        "{:?}",
        world.monitors().diagnosis(watch)
    );
    // And honest RTS users never trip it (covered by
    // compliant_node_is_never_flagged, which asserts zero violations).
}

#[test]
fn detection_is_reproducible() {
    let a = run_grid(Some(BackoffPolicy::Scaled { pm: 50 }), 30, 2.0, 33, |_| {});
    let b = run_grid(Some(BackoffPolicy::Scaled { pm: 50 }), 30, 2.0, 33, |_| {});
    assert_eq!(a, b);
}
