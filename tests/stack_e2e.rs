//! Cross-crate behavioral tests: claims the paper makes about the *system*
//! (not just the detector) verified end-to-end.

use manet_guard::detect::JointTracker;
use manet_guard::prelude::*;

/// Measures the channel intensity a traffic mix produces at the central
/// pair, plus the empirical conditionals.
fn measure(cfg: ScenarioConfig, secs: u64) -> (f64, f64, f64) {
    struct Probe {
        s: usize,
        r: usize,
        joint: JointTracker,
    }
    impl NetObserver for Probe {
        fn on_channel_edge(&mut self, node: usize, busy: bool, now: SimTime) {
            if node == self.s {
                self.joint.on_s_edge(busy, now);
            }
            if node == self.r {
                self.joint.on_r_edge(busy, now);
            }
        }
        fn on_tx_start(&mut self, src: usize, _f: &Frame, now: SimTime, end: SimTime) {
            if src == self.s {
                self.joint.on_s_tx(now, end);
            }
            if src == self.r {
                self.joint.on_r_tx(now, end);
            }
        }
    }
    let scenario = Scenario::new(cfg);
    let (s, r) = scenario.tagged_pair();
    let probe = Probe {
        s,
        r,
        joint: JointTracker::new(),
    };
    // No roles declared: the probe only listens, nothing is excluded.
    let b = ScenarioBuilder::new(scenario).probe(probe);
    let mut world = b.build();
    world.run_until(SimTime::from_secs(secs));
    let now = world.now();
    let p = world.probe_mut();
    p.joint.finish(now);
    (
        p.joint.r_rho(),
        p.joint.p_busy_given_idle(),
        p.joint.p_idle_given_busy(),
    )
}

#[test]
fn cbr_and_poisson_agree_at_equal_intensity() {
    // Paper, Section 5: "The results from both the cases were found to be
    // almost identical when the traffic intensities were identical."
    let base = ScenarioConfig {
        sim_secs: 40,
        rate_pps: 4.0,
        ..ScenarioConfig::grid_paper(3)
    };
    let (rho_p, pbi_p, _) = measure(
        ScenarioConfig {
            traffic: TrafficKind::Poisson,
            ..base
        },
        40,
    );
    let (rho_c, pbi_c, _) = measure(
        ScenarioConfig {
            traffic: TrafficKind::Cbr,
            ..base
        },
        40,
    );
    assert!(
        (rho_p - rho_c).abs() < 0.12,
        "intensities diverge: poisson {rho_p} vs cbr {rho_c}"
    );
    assert!(
        (pbi_p - pbi_c).abs() < 0.12,
        "conditionals diverge: {pbi_p} vs {pbi_c}"
    );
}

#[test]
fn conditional_probabilities_rise_and_fall_with_load() {
    // The headline shapes of Figures 3(a)/3(b).
    let at = |rate: f64| {
        measure(
            ScenarioConfig {
                sim_secs: 40,
                rate_pps: rate,
                ..ScenarioConfig::grid_paper(5)
            },
            40,
        )
    };
    let (rho_lo, pbi_lo, pib_lo) = at(1.0);
    let (rho_hi, pbi_hi, pib_hi) = at(8.0);
    assert!(rho_lo < rho_hi, "{rho_lo} vs {rho_hi}");
    assert!(pbi_lo < pbi_hi, "Fig 3a shape: {pbi_lo} vs {pbi_hi}");
    assert!(pib_lo > pib_hi, "Fig 3b shape: {pib_lo} vs {pib_hi}");
}

#[test]
fn analysis_tracks_simulation_at_calibration_point() {
    // Fig. 3's validation claim, against this simulator's calibration.
    let (rho, pbi_sim, pib_sim) = measure(
        ScenarioConfig {
            sim_secs: 60,
            rate_pps: 6.0,
            ..ScenarioConfig::grid_paper(9)
        },
        60,
    );
    let model = AnalyticModel {
        n: 0.5,
        k: 0.5,
        m: 0.5,
        j: 0.5,
        ..AnalyticModel::grid_paper(240.0, 550.0, PreclusionRule::sim_calibrated())
    };
    let pbi_ana = model.p_busy_given_idle(rho);
    assert!(
        (pbi_sim - pbi_ana).abs() < 0.1,
        "p_BI: sim {pbi_sim} vs analysis {pbi_ana} at rho {rho}"
    );
    // p_IB: the global measurement runs higher than the window-conditioned
    // calibration (documented); just require the same order of magnitude.
    let pib_ana = model.p_idle_given_busy(rho);
    assert!(
        pib_sim > pib_ana * 0.5 && pib_sim < pib_ana * 4.0,
        "p_IB: sim {pib_sim} vs analysis {pib_ana}"
    );
}

#[test]
fn throughput_capture_grows_with_pm() {
    // The attack's payoff is monotone in PM (extension ext_fairness's core).
    let share = |pm: u8| {
        let positions = vec![
            Vec2::new(0.0, 0.0),
            Vec2::new(200.0, 0.0),
            Vec2::new(100.0, 170.0),
        ];
        let mut w: World<()> = World::new(
            positions,
            PropagationModel::free_space(),
            250.0,
            550.0,
            MacTiming::paper_default(),
            17,
            (),
        );
        if pm > 0 {
            w.set_policy(0, BackoffPolicy::Scaled { pm });
        }
        w.add_source(SourceCfg::saturated(0, 1));
        w.add_source(SourceCfg::saturated(1, 2));
        w.add_source(SourceCfg::saturated(2, 0));
        w.run_until(SimTime::from_secs(8));
        let d: Vec<f64> = (0..3).map(|i| w.mac(i).stats().delivered as f64).collect();
        d[0] / d.iter().sum::<f64>()
    };
    let fair = share(0);
    let mild = share(50);
    let brutal = share(95);
    assert!(fair < 0.45, "honest share {fair}");
    assert!(mild > fair, "{mild} vs {fair}");
    assert!(brutal > mild, "{brutal} vs {mild}");
    assert!(brutal > 0.6, "PM=95 should dominate: {brutal}");
}

#[test]
fn detection_survives_shadowing() {
    // Extension: σ = 4 dB log-normal fading, blatant cheater still caught.
    let scenario = Scenario::new(ScenarioConfig {
        sim_secs: 40,
        rate_pps: 1.0,
        propagation: PropagationModel::shadowing(2.0, 4.0),
        ..ScenarioConfig::grid_paper(23)
    });
    let (s, r) = scenario.tagged_pair();
    let mut mc = MonitorConfig::grid_paper(s, r, 240.0);
    mc.sample_size = 25;
    let mut b = ScenarioBuilder::new(scenario);
    let attacker = b.attacker(s);
    let watch = b.monitor(mc);
    b.source(SourceCfg::saturated(s, r));
    let mut world = b.build();
    world.set_policy(attacker.id(), BackoffPolicy::Scaled { pm: 85 });
    world.run_until(SimTime::from_secs(40));
    assert!(
        world.monitors().diagnosis(watch).is_flagged(),
        "{:?}",
        world.monitors().diagnosis(watch)
    );
}

#[test]
fn signed_rank_judge_works_end_to_end() {
    let run = |judge: Judge, pm: u8| {
        let scenario = Scenario::new(ScenarioConfig {
            sim_secs: 40,
            rate_pps: 2.0,
            ..ScenarioConfig::grid_paper(29)
        });
        let (s, r) = scenario.tagged_pair();
        let mut mc = MonitorConfig::grid_paper(s, r, 240.0);
        mc.sample_size = 25;
        mc.judge = judge;
        mc.blatant_check = false;
        let mut b = ScenarioBuilder::new(scenario);
        let attacker = b.attacker(s);
        let watch = b.monitor(mc);
        b.source(SourceCfg::saturated(s, r));
        let mut world = b.build();
        if pm > 0 {
            world.set_policy(attacker.id(), BackoffPolicy::Scaled { pm });
        }
        world.run_until(SimTime::from_secs(40));
        world.monitors().diagnosis(watch)
    };
    // The paired test is sharper under H1 but — unlike the paper's unpaired
    // rank-sum — sensitive to the estimator's asymmetric noise under H0 (it
    // tests symmetry of the differences, which estimation bias breaks).
    // That fragility is exactly why the rank-sum stays the default; here we
    // assert the qualitative contract: clearly separates H1 from H0.
    let h0 = run(Judge::SignedRank, 0);
    let h1 = run(Judge::SignedRank, 70);
    assert!(h1.rejections > 0, "{h1:?}");
    assert!(
        h1.rejection_rate() > 3.0 * h0.rejection_rate().max(0.01),
        "H1 {h1:?} vs H0 {h0:?}"
    );
}

#[test]
fn routing_and_mobility_coexist() {
    // AODV keeps delivering while nodes wander (route repair via re-flood is
    // out of scope, so keep speeds low and the chain short-lived).
    let positions: Vec<Vec2> = (0..5).map(|i| Vec2::new(i as f64 * 180.0, 500.0)).collect();
    let mut world: World<()> = World::new(
        positions,
        PropagationModel::free_space(),
        250.0,
        550.0,
        MacTiming::paper_default(),
        31,
        (),
    );
    world.enable_routing();
    world.enable_mobility(0.0, 1.0, SimDuration::from_secs(5), 1000.0, 1000.0);
    for app in 0..10 {
        world.send_routed(0, 4, app);
    }
    world.run_until(SimTime::from_secs(10));
    assert!(
        world.app_delivered >= 8,
        "only {}/10 routed packets arrived",
        world.app_delivered
    );
}
