//! The trace acceptance gate: two equal-seed runs of an instrumented
//! detection scenario must produce byte-identical JSONL journals.
//!
//! Every journal timestamp is virtual time; wall-clock is confined to
//! metrics spans. Any nondeterminism anywhere in the stack (hash-map
//! iteration bleeding into event order, RNG stream misuse, wall-clock
//! leakage) shows up here as a diff.

use manet_guard::prelude::*;

fn traced_run(seed: u64) -> (String, MetricsSnapshot) {
    traced_run_with_faults(seed, None)
}

fn traced_run_with_faults(seed: u64, faults: Option<&FaultPlan>) -> (String, MetricsSnapshot) {
    let scenario = Scenario::new(ScenarioConfig {
        sim_secs: 3,
        rate_pps: 2.0,
        ..ScenarioConfig::grid_paper(seed)
    });
    let (s, r) = scenario.tagged_pair();
    let mut builder = ScenarioBuilder::new(scenario);
    let attacker = builder.attacker(s);
    builder.monitor(MonitorConfig::grid_paper(s, r, 240.0));
    builder.source(SourceCfg::saturated(s, r));
    builder.trace(TraceConfig::verbose());
    builder.metrics();
    if let Some(plan) = faults {
        builder.fault(plan.clone());
    }
    let mut world = builder.build();
    world.set_policy(attacker.id(), BackoffPolicy::Scaled { pm: 70 });
    world.run_until(SimTime::from_secs(3));
    (world.tracer().to_jsonl(), world.metrics().snapshot())
}

#[test]
fn equal_seeds_give_byte_identical_journals() {
    let (ja, snap_a) = traced_run(11);
    let (jb, snap_b) = traced_run(11);
    assert!(!ja.is_empty(), "a verbose 3 s run must journal events");
    assert_eq!(ja, jb, "equal-seed journals must be byte-identical");
    assert_eq!(
        snap_a.totals, snap_b.totals,
        "equal-seed counters must agree"
    );
}

#[test]
fn equal_seeds_and_fault_plans_give_byte_identical_journals() {
    // The fault injector must not break the determinism gate: a nonzero
    // plan draws from its own seeded stream, so equal (world seed, plan)
    // pairs replay byte-identically — and the plan must visibly bite.
    let plan = FaultPlan::parse("seed=23,loss=0.15,drop=0.2,corrupt=0.1,deaf=100:10")
        .expect("valid plan");
    let (ja, snap_a) = traced_run_with_faults(11, Some(&plan));
    let (jb, snap_b) = traced_run_with_faults(11, Some(&plan));
    assert_eq!(ja, jb, "equal-seed faulted journals must be byte-identical");
    assert_eq!(snap_a.totals, snap_b.totals);
    assert!(
        snap_a.total(Counter::FaultDrops) > 0,
        "a 15% loss plan over 3 saturated seconds must eat frames"
    );
    // A different plan seed must perturb the journal (world stays fixed).
    let (jc, _) = traced_run_with_faults(11, Some(&plan.clone().with_seed(24)));
    assert_ne!(ja, jc, "different plan seeds must inject differently");
}

#[test]
fn different_seeds_diverge() {
    let (ja, _) = traced_run(11);
    let (jc, _) = traced_run(12);
    assert_ne!(ja, jc, "different seeds should not produce the same journal");
}

/// A 500-node world with one cheater, observed by a monitor mesh; returns
/// the full journal, the primary pool's diagnosis, and the counters.
fn large_world_run(
    seed: u64,
    index: MediumIndex,
    shards: Shards,
    faults: Option<&FaultPlan>,
) -> (String, Diagnosis, MetricsSnapshot) {
    let scenario = Scenario::new(ScenarioConfig {
        sim_secs: 2,
        rate_pps: 1.0,
        medium_index: index,
        shards,
        ..ScenarioConfig::large_world(seed, 500)
    });
    let (s, r) = scenario.tagged_pair();
    let mut builder = ScenarioBuilder::new(scenario);
    let attacker = builder.attacker(s);
    let watch = builder.monitor_mesh(&[s]);
    assert!(!watch.is_empty(), "tagged node always has a vantage in range");
    builder.source(SourceCfg::saturated(s, r));
    builder.trace(TraceConfig::verbose());
    builder.metrics();
    if let Some(plan) = faults {
        builder.fault(plan.clone());
    }
    let mut world = builder.build();
    world.set_policy(attacker.id(), BackoffPolicy::Scaled { pm: 70 });
    world.run_until(SimTime::from_secs(2));
    let diagnosis = world.monitors().diagnosis(watch[0]);
    (world.tracer().to_jsonl(), diagnosis, world.metrics().snapshot())
}

#[test]
fn index_modes_are_byte_identical_in_a_large_world() {
    // The spatial index is an execution detail: in a 500-node world the
    // naive scan and the cell grid must agree on every journaled byte and
    // on the end-to-end diagnosis — clean and under fault injection — and
    // equal-seed Grid runs must replay byte-identically.
    let plan = FaultPlan::parse("seed=23,loss=0.1,drop=0.1").expect("valid plan");
    for faults in [None, Some(&plan)] {
        let tag = if faults.is_some() { "faulted" } else { "clean" };
        let (jn, dn, sn) = large_world_run(5, MediumIndex::Naive, Shards::Serial, faults);
        let (jg, dg, sg) = large_world_run(5, MediumIndex::Grid, Shards::Serial, faults);
        assert!(!jn.is_empty(), "{tag}: a verbose 2 s run must journal events");
        assert_eq!(jn, jg, "{tag}: cross-index journals must be byte-identical");
        assert_eq!(dn, dg, "{tag}: cross-index diagnoses must agree");
        assert_eq!(sn.totals, sg.totals, "{tag}: cross-index counters must agree");
        let (jg2, dg2, _) = large_world_run(5, MediumIndex::Grid, Shards::Serial, faults);
        assert_eq!(jg, jg2, "{tag}: equal-seed Grid journals must be byte-identical");
        assert_eq!(dg, dg2, "{tag}: equal-seed Grid diagnoses must agree");
    }
}

#[test]
fn shard_counts_are_byte_identical_in_a_large_world() {
    // The cross-shard acceptance gate: the region-sharded engine is an
    // execution detail exactly like the spatial index. In a 500-node world
    // the serial scheduler and the 2- and 4-region engines must agree on
    // every journaled byte, the end-to-end diagnosis and every counter —
    // clean and under fault injection, on both medium indexes.
    let plan = FaultPlan::parse("seed=23,loss=0.1,drop=0.1").expect("valid plan");
    for faults in [None, Some(&plan)] {
        for index in [MediumIndex::Grid, MediumIndex::Naive] {
            let tag = format!(
                "{}/{index:?}",
                if faults.is_some() { "faulted" } else { "clean" }
            );
            let (js, ds, ss) = large_world_run(5, index, Shards::Serial, faults);
            assert!(!js.is_empty(), "{tag}: a verbose 2 s run must journal events");
            for shards in [Shards::Regions(2), Shards::Regions(4)] {
                let (jr, dr, sr) = large_world_run(5, index, shards, faults);
                assert_eq!(js, jr, "{tag}/{shards}: journals must be byte-identical");
                assert_eq!(ds, dr, "{tag}/{shards}: diagnoses must agree");
                assert_eq!(ss.totals, sr.totals, "{tag}/{shards}: counters must agree");
            }
        }
    }
}

#[test]
fn journal_lines_are_json_objects_in_time_order() {
    let (jsonl, snap) = traced_run(11);
    let mut last_t = 0u64;
    for line in jsonl.lines() {
        assert!(
            line.starts_with("{\"t\":") && line.ends_with('}'),
            "malformed journal line: {line}"
        );
        let t: u64 = line["{\"t\":".len()..]
            .split(',')
            .next()
            .and_then(|s| s.parse().ok())
            .expect("leading timestamp");
        assert!(t >= last_t, "journal must be chronological");
        last_t = t;
    }
    // The counters must be consistent with the journal's claims: frames were
    // sent, the monitor sampled and tested.
    assert!(snap.total(Counter::TxFrames) > 0);
    assert!(snap.total(Counter::MonitorSamples) > 0);
}
