#!/usr/bin/env bash
# Tier-1 CI for the workspace. Fully offline: the workspace has zero
# external dependencies by policy, so this script also *enforces* that no
# Cargo.toml sneaks a registry dependency back in.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== hermetic guard: no registry dependencies =="
# Any dependency in a [dependencies]/[dev-dependencies]/[workspace.dependencies]
# section must be a path (or workspace = true) entry. A bare version string or
# a { version = ... } without a path means a crates.io dependency — reject it.
fail=0
for manifest in Cargo.toml crates/*/Cargo.toml; do
    # Extract dependency sections and drop blank/comment/section lines.
    deps=$(awk '
        /^\[/ { in_deps = ($0 ~ /dependencies/) ; next }
        in_deps && NF && $0 !~ /^#/ { print }
    ' "$manifest")
    while IFS= read -r line; do
        [ -z "$line" ] && continue
        case "$line" in
            *path*|*workspace*) ;;
            *)
                echo "error: non-path dependency in $manifest: $line" >&2
                fail=1
                ;;
        esac
    done <<< "$deps"
done
if [ "$fail" -ne 0 ]; then
    echo "hermetic guard FAILED: the workspace must not depend on registry crates" >&2
    exit 1
fi
echo "ok: all dependencies are path/workspace entries"

echo "== cargo tree: workspace crates only =="
if cargo tree --workspace --prefix none --offline 2>/dev/null | awk 'NF {print $1}' | sort -u | grep -vE '^(mg-|manet-guard$)'; then
    echo "error: cargo tree lists a non-workspace crate" >&2
    exit 1
fi
echo "ok: dependency tree is workspace-only"

echo "== build (release, offline) =="
cargo build --release --offline

echo "== clippy: no warnings =="
cargo clippy --workspace --all-targets --offline -q -- -D warnings

echo "== tests (offline) =="
cargo test -q --workspace --offline

echo "== trace determinism: equal seeds, byte-identical journals =="
cargo test -q --offline --test trace_determinism

echo "== differential index suite: naive vs grid medium, byte-identical =="
# Random event tapes drive both index strategies in lockstep (clean,
# shadowed, hotspot); the large-world cross-index gate above covers the
# end-to-end diagnosis, this covers the medium in isolation.
cargo test -q --offline -p mg-phy --test diff_index

echo "== world-scale smoke: bench_world_scale on a tiny grid =="
# One small cell end to end: asserts events-fired and flagged-diagnosis
# equality across index modes and exercises the JSON emitter. The real
# perf sweep (and its ≥10x pin) lives in BENCH_world_scale.json.
smokedir=$(mktemp -d)
MG_TRIALS=1 MG_SIM_SECS=1 MG_WORLD_NODES=64 MG_WORLD_ATTACKERS=1 \
MG_BENCH_OUT="$smokedir/world_scale.json" \
    cargo run -q --release --offline -p mg-bench --bin bench_world_scale
grep -q '"speedup_at_max_nodes"' "$smokedir/world_scale.json"
rm -rf "$smokedir"
echo "ok: cross-index smoke cell agrees and reports"

echo "== microbench: tracing overhead gate (<5% with tracing disabled) =="
# The bench binary asserts the gate itself; a failed gate panics the run.
MG_BENCH_MS="${MG_BENCH_MS:-40}" cargo bench --offline -p mg-bench

echo "== sweep cache: cold vs warm runs are byte-identical =="
cachedir=$(mktemp -d)
outdir=$(mktemp -d)
trap 'rm -rf "$cachedir" "$outdir"' EXIT
run_fig5() {
    MG_TRIALS=1 MG_SIM_SECS=2 MG_CACHE_DIR="$cachedir" \
    MG_CSV_DIR="$outdir/$1" MG_JSON_DIR="$outdir/$1" \
        cargo run -q --release --offline -p mg-bench --bin fig5 >"$outdir/$1.stdout"
}
run_fig5 cold
run_fig5 warm
if ! diff -r "$outdir/cold" "$outdir/warm" || ! diff "$outdir/cold.stdout" "$outdir/warm.stdout"; then
    echo "error: warm (cached) fig5 run differs from the cold run" >&2
    exit 1
fi
echo "ok: cached replay reproduces the cold run byte-for-byte"

echo "== chaos gate: fault-seeded sweeps are deterministic =="
# Two identical fault-seeded mini-sweeps (cold — each against a fresh cache)
# must produce byte-identical tables: the injector draws only from its own
# seeded streams, never from wall-clock or thread scheduling.
run_fig5_faulted() {
    MG_TRIALS=1 MG_SIM_SECS=2 MG_CACHE_DIR="$outdir/chaos-cache-$1" \
    MG_FAULT_PROFILE="light,deaf=250:25" MG_FAULT_SEED=7 \
    MG_CSV_DIR="$outdir/$1" MG_JSON_DIR="$outdir/$1" \
        cargo run -q --release --offline -p mg-bench --bin fig5 >"$outdir/$1.stdout"
}
run_fig5_faulted chaos-a
run_fig5_faulted chaos-b
if ! diff -r "$outdir/chaos-a" "$outdir/chaos-b" || ! diff "$outdir/chaos-a.stdout" "$outdir/chaos-b.stdout"; then
    echo "error: equal fault seeds produced diverging sweep outputs" >&2
    exit 1
fi
# The plan must actually have bitten (faulted ≠ clean output).
if diff -q "$outdir/cold.stdout" "$outdir/chaos-a.stdout" >/dev/null; then
    echo "error: the fault plan did not perturb the sweep output" >&2
    exit 1
fi
echo "ok: fault-seeded sweeps replay byte-for-byte and differ from clean runs"

echo "== chaos gate: fault injection is index-agnostic =="
# The same fault-seeded sweep under the naive reference index must match
# the grid-index chaos run byte-for-byte: injector and detector sit above
# the spatial index, which may not leak into any observable.
MG_TRIALS=1 MG_SIM_SECS=2 MG_CACHE_DIR="$outdir/chaos-cache-naive" \
MG_MEDIUM_INDEX=naive \
MG_FAULT_PROFILE="light,deaf=250:25" MG_FAULT_SEED=7 \
MG_CSV_DIR="$outdir/chaos-naive" MG_JSON_DIR="$outdir/chaos-naive" \
    cargo run -q --release --offline -p mg-bench --bin fig5 >"$outdir/chaos-naive.stdout"
if ! diff -r "$outdir/chaos-a" "$outdir/chaos-naive" \
    || ! diff "$outdir/chaos-a.stdout" "$outdir/chaos-naive.stdout"; then
    echo "error: naive-index chaos run diverged from the grid-index run" >&2
    exit 1
fi
echo "ok: fault-seeded sweep is byte-identical under naive and grid indexes"

echo "== chaos gate: fault injection is shard-agnostic =="
# The same fault-seeded sweep on the 4-region sharded engine must match the
# serial chaos run byte-for-byte: region sharding is an execution detail
# exactly like the spatial index, and may not leak into any observable.
MG_TRIALS=1 MG_SIM_SECS=2 MG_CACHE_DIR="$outdir/chaos-cache-sharded" \
MG_SHARDS=4 \
MG_FAULT_PROFILE="light,deaf=250:25" MG_FAULT_SEED=7 \
MG_CSV_DIR="$outdir/chaos-sharded" MG_JSON_DIR="$outdir/chaos-sharded" \
    cargo run -q --release --offline -p mg-bench --bin fig5 >"$outdir/chaos-sharded.stdout"
if ! diff -r "$outdir/chaos-a" "$outdir/chaos-sharded" \
    || ! diff "$outdir/chaos-a.stdout" "$outdir/chaos-sharded.stdout"; then
    echo "error: sharded chaos run diverged from the serial run" >&2
    exit 1
fi
# The detect CLI on the same fault-seeded world: --shards 4 vs serial must
# agree on every line except the wall-clock one.
run_detect_sharded() {
    cargo run -q --release --offline -- detect --pm 60 --secs 2 --seed 5 \
        --faults "light,seed=7" "$@" | grep -v '^run      :'
}
run_detect_sharded                >"$outdir/detect-serial.out"
run_detect_sharded --shards 4     >"$outdir/detect-sharded.out"
if ! diff "$outdir/detect-serial.out" "$outdir/detect-sharded.out"; then
    echo "error: detect --shards 4 diverged from the serial engine" >&2
    exit 1
fi
# Malformed shard counts are usage errors (exit 2), CLI and env alike.
set +e
cargo run -q --release --offline -- detect --shards 0 \
    >/dev/null 2>"$outdir/shards-cli.err"
shards_cli_status=$?
MG_SHARDS=banana MG_TRIALS=1 MG_SIM_SECS=1 \
    cargo run -q --release --offline -p mg-bench --bin fig5 \
    >/dev/null 2>"$outdir/shards-env.err"
shards_env_status=$?
set -e
if [ "$shards_cli_status" -ne 2 ] || ! grep -q "invalid value for --shards" "$outdir/shards-cli.err" \
    || ! grep -q "usage:" "$outdir/shards-cli.err"; then
    echo "error: detect --shards 0 must exit 2 with usage" >&2
    exit 1
fi
if [ "$shards_env_status" -ne 2 ] || ! grep -q "MG_SHARDS" "$outdir/shards-env.err"; then
    echo "error: a malformed MG_SHARDS must exit 2 naming the variable" >&2
    exit 1
fi
echo "ok: sharded chaos run byte-identical to serial; malformed shard counts exit 2"

echo "== chaos gate: a forced worker panic poisons only its cell =="
# Task 0 panics; the sweep must still complete, name the errored cell on
# stderr and exit nonzero instead of emitting tables.
set +e
MG_TRIALS=1 MG_SIM_SECS=2 MG_CACHE="off" MG_FAULT_PROFILE="panic=0" \
    cargo run -q --release --offline -p mg-bench --bin fig5 \
    >"$outdir/panic.stdout" 2>"$outdir/panic.stderr"
panic_status=$?
set -e
if [ "$panic_status" -eq 0 ]; then
    echo "error: a sweep with a panicked cell must exit nonzero" >&2
    exit 1
fi
if ! grep -q "panicked" "$outdir/panic.stderr"; then
    echo "error: the panicked cell was not reported on stderr" >&2
    cat "$outdir/panic.stderr" >&2
    exit 1
fi
echo "ok: panicked cell reported, exit code propagated"

echo "== replay gate: a replayed journal reproduces the live detection byte-for-byte =="
# Record a small two-sample-size detection run, replay the journal into
# fresh monitors, and require the detection report lines to be identical.
cargo run -q --release --offline -- detect --pm 60 --secs 2 --seed 5 \
    --samples 10,25 --record "$outdir/replay.jsonl" >"$outdir/replay-live.out"
cargo run -q --release --offline -- detect --replay "$outdir/replay.jsonl" \
    --samples 10,25 >"$outdir/replay-replayed.out"
if ! diff <(grep -E '^(samples|tests|checks|verdict)' "$outdir/replay-live.out") \
          <(grep -E '^(samples|tests|checks|verdict)' "$outdir/replay-replayed.out"); then
    echo "error: replayed detection diverged from the live run" >&2
    exit 1
fi
# Conflicting flags must be rejected with the usage text (exit 2).
set +e
cargo run -q --release --offline -- detect --replay "$outdir/replay.jsonl" --pm 50 \
    >/dev/null 2>"$outdir/replay-conflict.err"
conflict_status=$?
set -e
if [ "$conflict_status" -ne 2 ] || ! grep -q -- "--replay conflicts with --pm" "$outdir/replay-conflict.err"; then
    echo "error: --replay --pm must exit 2 with a conflict message" >&2
    exit 1
fi
echo "ok: replay reproduces live detection; world flags are rejected"

echo "== journal gate: cross-format record/transcode/replay byte-identity =="
# Record the detection workload as JSONL, transcode to binary, replay both:
# the detection report lines must match byte-for-byte, and the binary
# journal must be >=5x smaller than the JSONL one.
cargo run -q --release --offline -- detect --pm 60 --secs 2 --seed 5 \
    --samples 10,25 --record "$outdir/journal.jsonl" --journal-format jsonl \
    >"$outdir/journal-live.out"
cargo run -q --release --offline -- journal transcode "$outdir/journal.jsonl" \
    "$outdir/journal.bin" >/dev/null
cargo run -q --release --offline -- detect --replay "$outdir/journal.jsonl" \
    --samples 10,25 >"$outdir/journal-rep-jsonl.out"
cargo run -q --release --offline -- detect --replay "$outdir/journal.bin" \
    --samples 10,25 >"$outdir/journal-rep-bin.out"
for rep in journal-rep-jsonl journal-rep-bin; do
    if ! diff <(grep -E '^(samples|tests|checks|verdict)' "$outdir/journal-live.out") \
              <(grep -E '^(samples|tests|checks|verdict)' "$outdir/$rep.out"); then
        echo "error: $rep diverged from the live JSONL-recorded run" >&2
        exit 1
    fi
done
jsonl_size=$(wc -c < "$outdir/journal.jsonl")
bin_size=$(wc -c < "$outdir/journal.bin")
if [ $((bin_size * 5)) -gt "$jsonl_size" ]; then
    echo "error: binary journal ($bin_size B) is not >=5x smaller than JSONL ($jsonl_size B)" >&2
    exit 1
fi
# A malformed --journal-format value is a usage error, like any other flag.
set +e
cargo run -q --release --offline -- detect --pm 1 --secs 1 \
    --record "$outdir/badfmt.j" --journal-format xml \
    >/dev/null 2>"$outdir/journal-badfmt.err"
badfmt_status=$?
set -e
if [ "$badfmt_status" -ne 2 ] || ! grep -q -- "invalid value for --journal-format" "$outdir/journal-badfmt.err"; then
    echo "error: a malformed --journal-format must exit 2 with usage" >&2
    exit 1
fi
echo "ok: cross-format replay byte-identical; binary ${bin_size} B vs JSONL ${jsonl_size} B"

echo "== journal gate: corrupt journals fail cleanly =="
# Truncation and bit rot must be *detected* — a clean exit 1 with a typed
# message, never a panic (exit 101) or a silent partial replay.
head -c $(( bin_size / 2 )) "$outdir/journal.bin" >"$outdir/journal-trunc.bin"
printf 'XXXX' | dd of="$outdir/journal.bin" bs=1 seek=$(( bin_size / 3 )) \
    conv=notrunc status=none
set +e
cargo run -q --release --offline -- detect --replay "$outdir/journal-trunc.bin" \
    >/dev/null 2>"$outdir/journal-trunc.err"
trunc_status=$?
cargo run -q --release --offline -- detect --replay "$outdir/journal.bin" \
    >/dev/null 2>"$outdir/journal-flip.err"
flip_status=$?
set -e
if [ "$trunc_status" -ne 1 ] || ! grep -q "truncated" "$outdir/journal-trunc.err"; then
    echo "error: a truncated journal must exit 1 with a truncation message" >&2
    cat "$outdir/journal-trunc.err" >&2
    exit 1
fi
if [ "$flip_status" -ne 1 ] || ! grep -q "checksum" "$outdir/journal-flip.err"; then
    echo "error: a bit-flipped journal must exit 1 with a checksum message" >&2
    cat "$outdir/journal-flip.err" >&2
    exit 1
fi
echo "ok: truncation and bit rot are rejected with clean exits"

echo "== serve gate: mgd socket round-trip is byte-identical to offline replay =="
# Record two journals (one misbehaving, one clean), start the daemon on an
# ephemeral port, stream both over the length-prefixed socket protocol, and
# require the reports that come back to match `detect --replay` on the same
# files byte-for-byte. SIGTERM must then drain the queues and exit 0.
cargo run -q --release --offline -- detect --pm 60 --secs 2 --seed 5 \
    --record "$outdir/serve-a.bin" >/dev/null
cargo run -q --release --offline -- detect --pm 0 --secs 2 --seed 9 \
    --record "$outdir/serve-b.bin" >/dev/null
./target/release/mgd --listen 127.0.0.1:0 --deltas >"$outdir/mgd.out" 2>"$outdir/mgd.err" &
mgd_pid=$!
addr=""
for _ in $(seq 1 100); do
    addr=$(sed -n 's/^listening on //p' "$outdir/mgd.out" 2>/dev/null | head -1)
    [ -n "$addr" ] && break
    sleep 0.05
done
if [ -z "$addr" ]; then
    echo "error: mgd did not report a listening address" >&2
    cat "$outdir/mgd.err" >&2
    kill "$mgd_pid" 2>/dev/null || true
    exit 1
fi
for j in a b; do
    cargo run -q --release --offline -- journal send "$outdir/serve-$j.bin" \
        --to "$addr" >"$outdir/serve-$j.got"
    cargo run -q --release --offline -- detect --replay "$outdir/serve-$j.bin" \
        >"$outdir/serve-$j.want"
    if ! diff <(grep -E '^(samples|tests|checks|verdict)' "$outdir/serve-$j.want") \
              <(grep -E '^(samples|tests|checks|verdict)' "$outdir/serve-$j.got"); then
        echo "error: mgd report for journal $j diverged from offline replay" >&2
        exit 1
    fi
done
kill -TERM "$mgd_pid"
set +e
wait "$mgd_pid"
mgd_status=$?
set -e
if [ "$mgd_status" -ne 0 ]; then
    echo "error: mgd exited $mgd_status on SIGTERM (want 0)" >&2
    cat "$outdir/mgd.err" >&2
    exit 1
fi
if ! grep -q "queues drained" "$outdir/mgd.out"; then
    echo "error: mgd shutdown line missing the drained-queues confirmation" >&2
    cat "$outdir/mgd.out" >&2
    exit 1
fi
echo "ok: two socket streams byte-identical to offline replay; clean SIGTERM drain"

echo "== serve smoke: bench_serve mini cell =="
# A tiny in-process cell of the serving benchmark: asserts the daemon's
# event-conservation invariants itself and must emit the JSON report. The
# real ≥1M events/sec across ≥1k streams pin lives in BENCH_serve.json.
MG_SERVE_STREAMS=8 MG_SERVE_EVENTS=200 MG_BENCH_OUT="$outdir/serve-bench.json" \
    cargo run -q --release --offline -p mg-bench --bin bench_serve >/dev/null
grep -q '"events_per_sec"' "$outdir/serve-bench.json"
echo "ok: serving smoke cell conserves events and reports"

echo "== chaos gate: Byzantine quorum sweep is deterministic and never falsely convicts =="
# Two identical fault-seeded bench_quorum mini-sweeps, each against a fresh
# cache, must agree byte-for-byte: the Byzantine cast (FalseAccuser roles)
# and the lossy gossip channel draw only from seeded streams. The binary
# itself enforces the f < k bound — any PM=0 trial whose realized liar
# count stays below k yet convicts names its cell on stderr and exits 1.
run_quorum() {
    MG_TRIALS=2 MG_SIM_SECS=2 MG_CACHE_DIR="$outdir/quorum-cache-$1" \
    MG_BENCH_OUT="$outdir/quorum-$1.json" \
        cargo run -q --release --offline -p mg-bench --bin bench_quorum \
        >"$outdir/quorum-$1.stdout"
    # The stdout echoes the per-run MG_BENCH_OUT path; strip it before diffing.
    grep -v '^wrote ' "$outdir/quorum-$1.stdout" >"$outdir/quorum-$1.table"
}
run_quorum a
run_quorum b
if ! diff "$outdir/quorum-a.json" "$outdir/quorum-b.json" \
    || ! diff "$outdir/quorum-a.table" "$outdir/quorum-b.table"; then
    echo "error: equal-seed Byzantine quorum sweeps produced diverging outputs" >&2
    exit 1
fi
if ! grep -q '"pass":true' "$outdir/quorum-a.json"; then
    echo "error: quorum sweep report does not assert pass (false conviction?)" >&2
    exit 1
fi
echo "ok: Byzantine quorum sweep replays byte-for-byte; f < k liars never convict"

echo "== rustdoc: no warnings =="
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --offline --workspace -q

echo "CI green."
