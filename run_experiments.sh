#!/bin/bash
# Regenerates every table and figure of the paper plus ablations/extensions.
# Tune MG_TRIALS / MG_SIM_SECS for fidelity vs wall-clock.
set -e
cd "$(dirname "$0")"
export MG_TRIALS=${MG_TRIALS:-3}
export MG_SIM_SECS=${MG_SIM_SECS:-60}
export MG_CSV_DIR=${MG_CSV_DIR:-results}
mkdir -p "$MG_CSV_DIR"
run() {
  echo "### $* ###"
  local t0=$SECONDS
  cargo run --release -q -p mg-bench --bin "$@" 2>&1
  echo "(wall $((SECONDS-t0))s)"
  echo
}
run table1
run fig3
run fig4
run fig5
run fig5 -- --mobile
run fig6
run fig6 -- --mobile
run ablation_regions
run ablation_tests
run ablation_alpha
run ext_shadowing
run ext_pause
run ext_fairness
run ext_faults
echo "ALL EXPERIMENTS COMPLETE"
