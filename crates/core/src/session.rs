//! The session-oriented incremental detection API.
//!
//! Historically a consumer drove a [`Monitor`] or [`MonitorPool`] by feeding
//! the whole observation stream and then polling snapshot getters
//! (`diagnosis()`, `violations()`, `drain_samples()`). That shape cannot
//! serve a long-running daemon: a server multiplexing thousands of streams
//! needs to know *what changed* after each event, not to re-diff snapshots.
//!
//! [`DetectorSession`] inverts the surface: `ingest(&Obs)` returns an
//! iterator of typed [`DiagnosisDelta`] events — sample accepted or
//! discarded, a rank-sum test fired, a deterministic check convicted,
//! uncertainty entered or left, the overall verdict changed. The old
//! snapshot getters remain as *derived views* ([`DetectorSession::diagnosis`]
//! and friends) and are byte-identical to the legacy batch path: delta
//! emission is purely additive bookkeeping on the exact same detector
//! internals, a property proven by the mg-core test suite
//! (`delta_ingest_equals_batch_ingest`).
//!
//! A session is fully specified at creation through [`SessionSpec`]: the
//! monitor template, the vantage set, the fault plan and the confirmation
//! threshold all travel in the spec — a monitor is never mutated after
//! construction.

use crate::monitor::{Diagnosis, Monitor, MonitorConfig, NodeCounts, Violation};
use crate::pool::MonitorPool;
use crate::NodeId;
use mg_fault::FaultPlan;
use mg_obs::{Obs, ObsMeta, ObsSink};
use mg_sim::SimTime;
use mg_stats::wilcoxon::RankSumResult;
use mg_trace::json::Json;

/// One typed change to a detector's state, emitted incrementally by
/// [`DetectorSession::ingest`].
///
/// The deltas are a *complete* account of the mutable diagnosis: replaying
/// them against an empty accumulator reconstructs every counter of
/// [`Diagnosis`] (the equivalence the mg-core property suite pins).
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum DiagnosisDelta {
    /// A `(dictated, estimated)` back-off pair passed all filters and joined
    /// the statistical population.
    SampleAccepted {
        /// The vantage that extracted the sample.
        vantage: NodeId,
        /// The dictated back-off, in slots.
        dictated: f64,
        /// The estimated observed back-off, in slots.
        estimated: f64,
        /// When the sample's window closed.
        at: SimTime,
    },
    /// An estimated window was discarded as queue-idle contaminated.
    SampleDiscarded {
        /// The vantage that discarded it.
        vantage: NodeId,
        /// When the window closed.
        at: SimTime,
    },
    /// A hypothesis test ran over one batch of samples.
    TestFired {
        /// The full test result (statistic, p-value, method, sizes).
        result: RankSumResult,
        /// Whether H0 ("well-behaved") was rejected at the configured α.
        reject: bool,
        /// Virtual instant of the last tagged-node sighting that drove it.
        at: SimTime,
    },
    /// A deterministic check convicted the tagged node.
    ViolationFlagged {
        /// The vantage that witnessed it.
        vantage: NodeId,
        /// The violation, with its evidence.
        violation: Violation,
    },
    /// An anomalous observation was held below the confirmation threshold:
    /// recorded as uncertain, convicting nobody.
    ObservationUncertain {
        /// The vantage that observed it.
        vantage: NodeId,
        /// Stable snake_case tag of the suspected violation kind.
        kind: &'static str,
        /// When it was observed.
        at: SimTime,
    },
    /// The monitor at `vantage` entered the uncertain regime: its latest
    /// observation was anomalous but unconfirmed.
    UncertaintyEntered {
        /// The vantage.
        vantage: NodeId,
        /// When the first unconfirmed anomaly was observed.
        at: SimTime,
    },
    /// The monitor at `vantage` left the uncertain regime — either a clean
    /// observation reset the anomaly streak, or the streak was confirmed
    /// into a conviction.
    UncertaintyLeft {
        /// The vantage.
        vantage: NodeId,
        /// When the resolving observation arrived.
        at: SimTime,
    },
    /// The aggregate verdict ([`Diagnosis::is_flagged`]) changed.
    VerdictChanged {
        /// The new verdict: true = flagged as misbehaving.
        flagged: bool,
        /// The virtual instant of the event that tipped it.
        at: SimTime,
    },
}

impl DiagnosisDelta {
    /// Stable snake_case tag of this delta kind (the `"kind"` field of
    /// [`DiagnosisDelta::to_json`]).
    pub fn kind_str(&self) -> &'static str {
        match self {
            DiagnosisDelta::SampleAccepted { .. } => "sample",
            DiagnosisDelta::SampleDiscarded { .. } => "discard",
            DiagnosisDelta::TestFired { .. } => "test",
            DiagnosisDelta::ViolationFlagged { .. } => "violation",
            DiagnosisDelta::ObservationUncertain { .. } => "uncertain",
            DiagnosisDelta::UncertaintyEntered { .. } => "uncertainty_entered",
            DiagnosisDelta::UncertaintyLeft { .. } => "uncertainty_left",
            DiagnosisDelta::VerdictChanged { .. } => "verdict",
        }
    }

    /// The virtual instant the delta is anchored at.
    pub fn at(&self) -> SimTime {
        match *self {
            DiagnosisDelta::SampleAccepted { at, .. }
            | DiagnosisDelta::SampleDiscarded { at, .. }
            | DiagnosisDelta::TestFired { at, .. }
            | DiagnosisDelta::ObservationUncertain { at, .. }
            | DiagnosisDelta::UncertaintyEntered { at, .. }
            | DiagnosisDelta::UncertaintyLeft { at, .. }
            | DiagnosisDelta::VerdictChanged { at, .. } => at,
            DiagnosisDelta::ViolationFlagged { violation, .. } => violation.at(),
        }
    }

    /// Deterministic JSON rendering (insertion-ordered keys, shortest
    /// round-trip floats — `mg_trace::json` conventions), the line format
    /// `mgd` subscribers and `journal info --deltas` print.
    pub fn to_json(&self) -> Json {
        let mut fields: Vec<(&str, Json)> = vec![
            ("t", Json::from(self.at().as_nanos())),
            ("kind", Json::Str(self.kind_str().into())),
        ];
        match self {
            DiagnosisDelta::SampleAccepted { vantage, dictated, estimated, .. } => {
                fields.push(("vantage", Json::from(*vantage as u64)));
                fields.push(("x", Json::Num(*dictated)));
                fields.push(("y", Json::Num(*estimated)));
            }
            DiagnosisDelta::SampleDiscarded { vantage, .. } => {
                fields.push(("vantage", Json::from(*vantage as u64)));
            }
            DiagnosisDelta::TestFired { result, reject, .. } => {
                fields.push(("p", Json::Num(result.p_value)));
                fields.push(("reject", Json::Bool(*reject)));
                fields.push(("n", Json::from(result.n1 as u64)));
            }
            DiagnosisDelta::ViolationFlagged { vantage, violation } => {
                fields.push(("vantage", Json::from(*vantage as u64)));
                fields.push(("check", Json::Str(violation.kind_str().into())));
            }
            DiagnosisDelta::ObservationUncertain { vantage, kind, .. } => {
                fields.push(("vantage", Json::from(*vantage as u64)));
                fields.push(("check", Json::Str((*kind).into())));
            }
            DiagnosisDelta::UncertaintyEntered { vantage, .. }
            | DiagnosisDelta::UncertaintyLeft { vantage, .. } => {
                fields.push(("vantage", Json::from(*vantage as u64)));
            }
            DiagnosisDelta::VerdictChanged { flagged, .. } => {
                fields.push(("flagged", Json::Bool(*flagged)));
            }
        }
        Json::obj(fields)
    }
}

/// Complete specification of a [`DetectorSession`], gathered *before*
/// construction — monitors are fully configured at build time, never
/// mutated afterwards.
#[derive(Clone, Debug)]
pub struct SessionSpec {
    template: MonitorConfig,
    vantages: Option<Vec<NodeId>>,
    faults: FaultPlan,
    confirm: usize,
}

impl SessionSpec {
    /// A solo-monitor session: one vantage, auto-testing, no hand-off —
    /// the shape of [`Monitor`] itself.
    pub fn solo(cfg: MonitorConfig) -> SessionSpec {
        SessionSpec {
            template: cfg,
            vantages: None,
            faults: FaultPlan::default(),
            confirm: 0,
        }
    }

    /// A pooled session: one member per vantage with range-based hand-off
    /// and shared tests — the shape of [`MonitorPool`], and of every journal
    /// replay.
    pub fn pool(tagged: NodeId, vantages: &[NodeId], template: MonitorConfig) -> SessionSpec {
        SessionSpec {
            template: MonitorConfig { tagged, ..template },
            vantages: Some(vantages.to_vec()),
            faults: FaultPlan::default(),
            confirm: 0,
        }
    }

    /// The session a recorded journal calls for: a pool over the journal's
    /// vantage set, with the template derived by [`template_from_meta`] —
    /// exactly what `detect --replay` builds, so a session fed the journal's
    /// events lands on a byte-identical diagnosis.
    pub fn from_meta(meta: &ObsMeta) -> SessionSpec {
        Self::pool(meta.tagged, &meta.vantages, template_from_meta(meta))
    }

    /// Replaces the template's sample size (the sweep knob).
    pub fn with_sample_size(mut self, n: usize) -> SessionSpec {
        self.template = self.template.with_sample_size(n);
        self
    }

    /// Replaces the template's tagged→vantage distance.
    pub fn with_pair_distance(mut self, d: f64) -> SessionSpec {
        self.template = self.template.with_pair_distance(d);
        self
    }

    /// Installs a deterministic observation-fault plan. Each member derives
    /// its injector from `(plan seed, vantage)` alone; plans carrying
    /// observation faults also raise the confirmation threshold to 2,
    /// mirroring [`MonitorPool::apply_fault_plan`].
    pub fn with_faults(mut self, plan: FaultPlan) -> SessionSpec {
        self.faults = plan;
        self
    }

    /// Raises the deterministic-conviction threshold to at least `confirm`
    /// consecutive anomalous observations.
    pub fn with_confirmation(mut self, confirm: usize) -> SessionSpec {
        self.confirm = self.confirm.max(confirm);
        self
    }

    /// Builds the fully-specified session.
    pub fn build(self) -> DetectorSession {
        let inner = match self.vantages {
            None => {
                let cfg = self.template;
                let mut m = Monitor::with_faults(cfg, self.faults.observer(cfg.vantage as u64));
                if self.faults.has_observation_faults() {
                    m.raise_confirmation(2);
                }
                if self.confirm > 0 {
                    m.raise_confirmation(self.confirm);
                }
                m.enable_deltas();
                SessionInner::Solo(Box::new(m))
            }
            Some(vantages) => {
                let mut pool = MonitorPool::new(self.template.tagged, &vantages, self.template);
                if !self.faults.is_noop() {
                    pool.apply_fault_plan(&self.faults);
                }
                if self.confirm > 0 {
                    pool.raise_confirmation(self.confirm);
                }
                pool.enable_deltas();
                SessionInner::Pool(Box::new(pool))
            }
        };
        DetectorSession {
            inner,
            out: Vec::new(),
            flagged: false,
        }
    }
}

enum SessionInner {
    Solo(Box<Monitor>),
    Pool(Box<MonitorPool>),
}

/// An incremental detection session: feed [`Obs`] events one at a time,
/// receive the typed [`DiagnosisDelta`] stream each one produced.
///
/// The legacy snapshot getters survive as derived views
/// ([`DetectorSession::diagnosis`], [`violations`](Self::violations),
/// [`tests`](Self::tests)) and stay byte-identical to a batch-driven
/// [`Monitor`]/[`MonitorPool`] fed the same stream.
pub struct DetectorSession {
    inner: SessionInner,
    out: Vec<DiagnosisDelta>,
    flagged: bool,
}

impl DetectorSession {
    /// Feeds one observation and returns the deltas it produced, in order.
    ///
    /// The returned iterator borrows the session; collect it (or drop it)
    /// before the next `ingest`. Most events produce no deltas — the
    /// common-case cost over the legacy path is one empty-buffer check.
    pub fn ingest(&mut self, obs: &Obs) -> std::vec::Drain<'_, DiagnosisDelta> {
        match &mut self.inner {
            SessionInner::Solo(m) => {
                m.ingest(obs);
                m.take_deltas_into(&mut self.out);
            }
            SessionInner::Pool(p) => {
                p.ingest(obs);
                p.take_deltas_into(&mut self.out);
            }
        }
        // The verdict can only tip when some delta fired (it is a function
        // of rejections and violations alone), so the empty case skips the
        // aggregate diagnosis entirely.
        if !self.out.is_empty() {
            let flagged = self.diagnosis().is_flagged();
            if flagged != self.flagged {
                self.flagged = flagged;
                self.out.push(DiagnosisDelta::VerdictChanged { flagged, at: obs_time(obs) });
            }
        }
        self.out.drain(..)
    }

    /// Derived view: the aggregate diagnosis (byte-identical to the legacy
    /// batch path fed the same stream).
    pub fn diagnosis(&self) -> Diagnosis {
        match &self.inner {
            SessionInner::Solo(m) => m.diagnosis(),
            SessionInner::Pool(p) => p.diagnosis(),
        }
    }

    /// Derived view: every deterministic violation recorded so far.
    pub fn violations(&self) -> Vec<Violation> {
        match &self.inner {
            SessionInner::Solo(m) => m.violations().to_vec(),
            SessionInner::Pool(p) => p.violations(),
        }
    }

    /// Derived view: the hypothesis-test history.
    pub fn tests(&self) -> &[RankSumResult] {
        match &self.inner {
            SessionInner::Solo(m) => m.tests(),
            SessionInner::Pool(p) => p.tests(),
        }
    }

    /// The current aggregate verdict, as last reported via
    /// [`DiagnosisDelta::VerdictChanged`].
    pub fn is_flagged(&self) -> bool {
        self.flagged
    }

    /// The underlying pool, for pooled sessions.
    pub fn as_pool(&self) -> Option<&MonitorPool> {
        match &self.inner {
            SessionInner::Pool(p) => Some(p),
            SessionInner::Solo(_) => None,
        }
    }

    /// The underlying monitor, for solo sessions.
    pub fn as_monitor(&self) -> Option<&Monitor> {
        match &self.inner {
            SessionInner::Solo(m) => Some(m),
            SessionInner::Pool(_) => None,
        }
    }
}

impl std::fmt::Debug for DetectorSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DetectorSession")
            .field("flagged", &self.flagged)
            .field("diagnosis", &self.diagnosis())
            .finish()
    }
}

/// The latest virtual instant an observation speaks about.
fn obs_time(o: &Obs) -> SimTime {
    match o {
        Obs::ChannelEdge { at, .. } => *at,
        Obs::TxStart { end, .. } => *end,
        Obs::Decoded { end, .. } => *end,
        Obs::Garbled { now, .. } => *now,
        Obs::Ranging { at, .. } => *at,
    }
}

/// Reconstructs the monitor template a recorded journal calls for from its
/// header: topology kind, pair distance, counts source. Shared by `detect
/// --replay`, `journal info --deltas` and the `mgd` daemon so every
/// consumer of one journal builds the *same* detector.
pub fn template_from_meta(meta: &ObsMeta) -> MonitorConfig {
    let primary = meta.vantages.first().copied().unwrap_or(meta.tagged + 1);
    let kind = meta.param("kind").unwrap_or("grid");
    let mut mc = if kind == "grid" {
        MonitorConfig::grid_paper(meta.tagged, primary, meta.pair_distance)
    } else {
        MonitorConfig::random_paper(meta.tagged, primary, meta.pair_distance)
    };
    if kind == "mobile" {
        mc.eifs_weight = 0.0;
        mc.counts = NodeCounts::SimCalibrated;
    }
    mc
}

/// Renders the per-monitor result block (`samples`/`tests`/`checks`/
/// `verdict` lines) shared verbatim by `detect`, `detect --replay` and the
/// `mgd` daemon — the ci.sh gates diff these lines byte-for-byte, so there
/// is exactly one producer.
pub fn render_report(tagged: NodeId, sample_size: usize, multi: bool, diag: &Diagnosis) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    if multi {
        let _ = writeln!(out, "monitor  : sample size {sample_size}");
    }
    let _ = writeln!(
        out,
        "samples  : {} collected, {} discarded",
        diag.samples_collected, diag.samples_discarded
    );
    if diag.uncertain > 0 {
        let _ = writeln!(
            out,
            "faults   : {} anomalous observation(s) held below the confirmation threshold",
            diag.uncertain
        );
    }
    let _ = writeln!(
        out,
        "tests    : {} run, {} rejected H0 (last p = {})",
        diag.tests_run,
        diag.rejections,
        diag.last_p
            .map(|p| format!("{p:.4}"))
            .unwrap_or_else(|| "-".into())
    );
    let _ = writeln!(out, "checks   : {} deterministic violations", diag.violations);
    let _ = writeln!(
        out,
        "verdict  : node {tagged} is {}",
        if diag.is_flagged() {
            "MISBEHAVING"
        } else {
            "apparently well-behaved"
        }
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> MonitorConfig {
        MonitorConfig {
            sample_size: 10,
            ..MonitorConfig::grid_paper(0, 1, 240.0)
        }
    }

    #[test]
    fn empty_session_reports_clean() {
        let s = SessionSpec::solo(cfg()).build();
        assert!(!s.is_flagged());
        assert_eq!(s.diagnosis(), Diagnosis::default());
    }

    #[test]
    fn spec_is_fully_specified_at_creation() {
        let plan = FaultPlan::parse("seed=3,corrupt=0.2").unwrap();
        let s = SessionSpec::solo(cfg())
            .with_sample_size(25)
            .with_pair_distance(100.0)
            .with_faults(plan)
            .with_confirmation(3)
            .build();
        let m = s.as_monitor().expect("solo");
        assert_eq!(m.config().sample_size, 25);
        assert_eq!(m.config().pair_distance, 100.0);
        // Observation faults imply ≥2; the explicit 3 wins.
        assert_eq!(m.config().confirm_anomalies, 3);
    }

    #[test]
    fn delta_json_is_deterministic() {
        let d = DiagnosisDelta::SampleAccepted {
            vantage: 4,
            dictated: 12.0,
            estimated: 11.5,
            at: SimTime::from_micros(7),
        };
        assert_eq!(
            d.to_json().render(),
            "{\"t\":7000,\"kind\":\"sample\",\"vantage\":4,\"x\":12,\"y\":11.5}"
        );
        let v = DiagnosisDelta::VerdictChanged { flagged: true, at: SimTime::ZERO };
        assert_eq!(v.to_json().render(), "{\"t\":0,\"kind\":\"verdict\",\"flagged\":true}");
    }

    #[test]
    fn report_lines_match_the_cli_shape() {
        let diag = Diagnosis { tests_run: 2, rejections: 1, ..Diagnosis::default() };
        let r = render_report(7, 50, false, &diag);
        assert!(r.starts_with("samples  : 0 collected, 0 discarded\n"), "{r}");
        assert!(r.contains("verdict  : node 7 is MISBEHAVING\n"), "{r}");
        assert!(!r.contains("monitor  :"));
        assert!(render_report(7, 50, true, &diag).starts_with("monitor  : sample size 50\n"));
    }
}
