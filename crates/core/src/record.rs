//! Recording the observation stream and replaying it into fresh detectors.
//!
//! [`ObsRecorder`] is an ordinary [`NetObserver`] probe: it projects world
//! callbacks into the serializable [`Obs`] alphabet — exactly the
//! projection a live [`MonitorPool`] adapter performs — and appends them to
//! an [`ObsJournal`]. A world simulated **once** can then be replayed into
//! arbitrarily many detector configurations (sample sizes, α values,
//! preclusion calibrations, test variants) with zero re-simulation, via
//! [`replay_pool`].
//!
//! ## Faults
//!
//! Journals record the **pre-fault** stream: the recorder carries no
//! injector, and observation faults ([`mg_fault::ObsFaults`]) are applied
//! by the replayed monitors themselves, exactly as live ones do. Because
//! fault fates are pure functions of `(plan seed, vantage, frame time)`,
//! *record-clean / replay-with-faults* is byte-identical to a faulted live
//! run — the explicit composition choice, proven by the mg-core property
//! suite.

use crate::monitor::MonitorConfig;
use crate::pool::MonitorPool;
use crate::NodeId;
use mg_dcf::Frame;
use mg_fault::FaultPlan;
use mg_net::NetObserver;
use mg_obs::{JournalError, JournalReader, Obs, ObsJournal, ObsMeta};
use mg_phy::Medium;
use mg_sim::SimTime;

/// A probe observer that records the observation stream of a set of
/// vantages into an [`ObsJournal`].
///
/// What gets recorded (the *replay-sufficient* subset of world events):
///
/// * channel edges, own transmissions and garbles **at a vantage**,
/// * every decode **at a vantage**, plus decodes of the tagged node's RTS
///   at *any* node — a live pool re-elects and harvests on those even when
///   no member consumed the frame, so replay must see them too,
/// * an [`Obs::Ranging`] geometry snapshot immediately before each
///   tagged-RTS decode (the hand-off scheme's only medium access).
#[derive(Debug)]
pub struct ObsRecorder {
    tagged: NodeId,
    vantages: Vec<NodeId>,
    journal: ObsJournal,
}

impl ObsRecorder {
    /// A recorder for the run described by `meta`. Vantages are sorted and
    /// deduplicated; the tagged node cannot be one of them.
    ///
    /// # Panics
    ///
    /// Panics if `meta.vantages` is empty or contains `meta.tagged`.
    pub fn new(mut meta: ObsMeta) -> Self {
        meta.vantages.sort_unstable();
        meta.vantages.dedup();
        assert!(!meta.vantages.is_empty(), "a recorder needs vantages");
        assert!(
            !meta.vantages.contains(&meta.tagged),
            "the tagged node cannot be a vantage"
        );
        ObsRecorder {
            tagged: meta.tagged,
            vantages: meta.vantages.clone(),
            journal: ObsJournal::new(meta),
        }
    }

    fn is_vantage(&self, n: NodeId) -> bool {
        self.vantages.binary_search(&n).is_ok()
    }

    /// The journal recorded so far.
    pub fn journal(&self) -> &ObsJournal {
        &self.journal
    }

    /// Consumes the recorder, yielding the journal.
    pub fn into_journal(self) -> ObsJournal {
        self.journal
    }
}

impl NetObserver for ObsRecorder {
    fn on_channel_edge(&mut self, node: NodeId, busy: bool, now: SimTime) {
        if self.is_vantage(node) {
            self.journal.push(Obs::ChannelEdge { node, busy, at: now });
        }
    }

    fn on_tx_start(&mut self, src: NodeId, frame: &Frame, now: SimTime, end: SimTime) {
        if self.is_vantage(src) {
            self.journal.push(Obs::TxStart {
                src,
                frame: frame.clone(),
                at: now,
                end,
            });
        }
    }

    fn on_frame_decoded(
        &mut self,
        medium: &Medium,
        at: NodeId,
        frame: &Frame,
        start: SimTime,
        end: SimTime,
    ) {
        let tagged_rts = frame.src == self.tagged && frame.is_rts();
        if !tagged_rts && !self.is_vantage(at) {
            return;
        }
        if tagged_rts {
            let tp = medium.position(self.tagged);
            let to: Vec<(NodeId, f64)> = self
                .vantages
                .iter()
                .map(|&v| (v, tp.distance(medium.position(v))))
                .collect();
            self.journal.push(Obs::Ranging {
                from: self.tagged,
                to,
                at: start,
            });
        }
        self.journal.push(Obs::Decoded {
            at,
            frame: frame.clone(),
            start,
            end,
        });
    }

    fn on_frame_garbled(&mut self, at: NodeId, now: SimTime) {
        if self.is_vantage(at) {
            self.journal.push(Obs::Garbled { at, now });
        }
    }
}

/// Replays `journal` into a fresh [`MonitorPool`] built from `template`
/// (tagged node and vantages come from the journal header; per-monitor
/// settings — α, sample size, regions… — from the template).
pub fn replay_pool(journal: &ObsJournal, template: MonitorConfig) -> MonitorPool {
    replay_pool_faulted(journal, template, &FaultPlan::default())
}

/// [`replay_pool`], with deterministic observation faults injected at the
/// replayed monitors — the replay analogue of a faulted live run.
pub fn replay_pool_faulted(
    journal: &ObsJournal,
    template: MonitorConfig,
    plan: &FaultPlan,
) -> MonitorPool {
    let meta = journal.meta();
    let mut pool = MonitorPool::new(meta.tagged, &meta.vantages, template);
    if !plan.is_noop() {
        pool.apply_fault_plan(plan);
    }
    journal.replay(&mut pool);
    pool
}

/// Streaming [`replay_pool`]: feeds a validated [`JournalReader`] straight
/// into a fresh pool, decoding one event at a time — the journal is never
/// materialized as an in-memory [`ObsJournal`]. A decode error (truncation,
/// bit rot, bad line) aborts the replay with the typed cause.
pub fn replay_reader(
    reader: &JournalReader,
    template: MonitorConfig,
) -> Result<MonitorPool, JournalError> {
    replay_reader_faulted(reader, template, &FaultPlan::default())
}

/// [`replay_reader`], with deterministic observation faults injected at the
/// replayed monitors.
pub fn replay_reader_faulted(
    reader: &JournalReader,
    template: MonitorConfig,
    plan: &FaultPlan,
) -> Result<MonitorPool, JournalError> {
    let meta = reader.meta();
    let mut pool = MonitorPool::new(meta.tagged, &meta.vantages, template);
    if !plan.is_noop() {
        pool.apply_fault_plan(plan);
    }
    reader.replay_into(&mut pool)?;
    Ok(pool)
}
