//! The paper's analytical model: Equations 1–5 of Section 3.
//!
//! A monitor R watching a sender S cannot see S's channel; it sees its own.
//! The model supplies the two conditional probabilities that bridge the gap:
//!
//! * `p_{B|I}` (Eq. 3) — S senses **busy** given R senses **idle**: some
//!   node in region A2 (heard by S only) is transmitting while all of R's
//!   region is quiet.
//! * `p_{I|B}` (Eq. 4) — S senses **idle** given R senses **busy**: the
//!   transmitter R hears sits in A5 (heard by R only), and nobody S can hear
//!   is active.
//!
//! With them, R converts its own idle/busy slot counts (I, B) into estimates
//! of S's counts (Eqs. 1–2):
//!
//! ```text
//! I_est = p_{I|I}·I + p_{I|B}·B          (Eq. 1)
//! B_est = N − I_est                      (Eq. 2)
//! ```
//!
//! The queueing part assumes each neighbor's MAC queue is independently
//! non-empty with probability ρ (the locally measured traffic intensity), so
//! `P(no transmitter among x nodes) = (1−ρ)^x` — the paper's second and
//! third approximations.

use mg_geom::{PreclusionRule, RegionModel};

/// Equations 1–5, bound to a concrete geometry and node counts.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct AnalyticModel {
    /// The A1–A5 areas for the S–R pair.
    pub regions: RegionModel,
    /// Nodes in A2 (heard by S only) — the paper's `n`.
    pub n: f64,
    /// Nodes in A1 (A2's preclusion zone) — the paper's `k`.
    pub k: f64,
    /// Nodes in A4 (A5's preclusion zone) — the paper's `m`.
    pub m: f64,
    /// Nodes in A5 (heard by R only) — the paper's `j`.
    pub j: f64,
}

impl AnalyticModel {
    /// The paper's grid configuration: fixed `n = k = m = j = 5` (Section 5:
    /// "we have deterministically set n = 5, k = 5, since they are fixed in
    /// the grid topology"; higher values "do not play a significant role").
    pub fn grid_paper(distance: f64, cs_range: f64, rule: PreclusionRule) -> Self {
        AnalyticModel {
            regions: RegionModel::new(distance, cs_range, rule),
            n: 5.0,
            k: 5.0,
            m: 5.0,
            j: 5.0,
        }
    }

    /// Node counts estimated from a uniform density (nodes/m²) — the random
    /// topology path, where the monitor estimates density online.
    pub fn from_density(distance: f64, cs_range: f64, rule: PreclusionRule, density: f64) -> Self {
        let regions = RegionModel::new(distance, cs_range, rule);
        AnalyticModel {
            regions,
            n: RegionModel::expected_nodes(regions.a2, density),
            k: RegionModel::expected_nodes(regions.a1, density),
            m: RegionModel::expected_nodes(regions.a4, density),
            j: RegionModel::expected_nodes(regions.a5, density),
        }
    }

    /// `P(no transmitter among x independent nodes)` at intensity ρ.
    fn all_quiet(rho: f64, x: f64) -> f64 {
        (1.0 - rho.clamp(0.0, 1.0)).powf(x.max(0.0))
    }

    /// Equation 3: `p_{B|I} = [A2/(A1+A2)] · [1 − (1−ρ)^(n+k)]`.
    pub fn p_busy_given_idle(&self, rho: f64) -> f64 {
        self.regions.ratio_a2() * (1.0 - Self::all_quiet(rho, self.n + self.k))
    }

    /// Equation 5: `p_{I|I} = 1 − p_{B|I}`.
    pub fn p_idle_given_idle(&self, rho: f64) -> f64 {
        1.0 - self.p_busy_given_idle(rho)
    }

    /// Equation 4: `p_{I|B} = [A5/(A4+A5)] · [ (A1/(A1+A2))·(1−(1−ρ)^(n+k))
    /// + (1−ρ)^(n+k) ]`.
    ///
    /// First factor: the transmitter R hears is in A5 (so S cannot hear it)
    /// rather than A4. Second factor: either nobody in A1∪A2 transmits, or
    /// the one who does sits in A1 — outside S's sensing disk either way.
    pub fn p_idle_given_busy(&self, rho: f64) -> f64 {
        let quiet = Self::all_quiet(rho, self.n + self.k);
        self.regions.ratio_a5() * (self.regions.ratio_a1() * (1.0 - quiet) + quiet)
    }

    /// Equations 1–2: estimate the sender's (idle, busy) slot counts from
    /// the monitor's own counts over a window of `idle + busy` slots.
    pub fn estimate_sender_slots(&self, rho: f64, idle: f64, busy: f64) -> (f64, f64) {
        let i_est = self.p_idle_given_idle(rho) * idle + self.p_idle_given_busy(rho) * busy;
        let total = idle + busy;
        (i_est, total - i_est)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> AnalyticModel {
        AnalyticModel::grid_paper(240.0, 550.0, PreclusionRule::paper_calibrated())
    }

    #[test]
    fn probabilities_are_probabilities() {
        let m = model();
        let mut rho = 0.0;
        while rho <= 1.0 {
            for p in [
                m.p_busy_given_idle(rho),
                m.p_idle_given_idle(rho),
                m.p_idle_given_busy(rho),
            ] {
                assert!((0.0..=1.0).contains(&p), "rho={rho}: {p}");
            }
            rho += 0.01;
        }
    }

    #[test]
    fn eq3_shape_matches_figure_3a() {
        // Rises with ρ; ≈ 0 at ρ = 0; ≈ 0.6 at ρ = 0.8 (paper's Fig. 3a).
        let m = model();
        assert!(m.p_busy_given_idle(0.0) < 1e-12);
        let mut prev = -1.0;
        for i in 0..=8 {
            let p = m.p_busy_given_idle(i as f64 / 10.0);
            assert!(p >= prev, "not monotone at {i}");
            prev = p;
        }
        let top = m.p_busy_given_idle(0.8);
        assert!((0.55..0.68).contains(&top), "p_BI(0.8)={top}");
        let low = m.p_busy_given_idle(0.1);
        assert!((0.2..0.45).contains(&low), "p_BI(0.1)={low}");
    }

    #[test]
    fn eq4_shape_matches_figure_3b() {
        // Falls with ρ; ≈ 0.18 at low load, ≈ 0.05 at ρ = 0.8 (Fig. 3b).
        let m = model();
        let mut prev = 2.0;
        for i in 1..=8 {
            let p = m.p_idle_given_busy(i as f64 / 10.0);
            assert!(p <= prev, "not decreasing at {i}");
            prev = p;
        }
        // The paper's printed Fig. 3b low-load value (~0.18) is not jointly
        // reachable with Fig. 3a's magnitudes under Eq. 4 for any single
        // region set; we calibrate to the high-load end and accept a lower
        // low-load magnitude (shape preserved). See EXPERIMENTS.md.
        let low_load = m.p_idle_given_busy(0.1);
        assert!((0.05..0.25).contains(&low_load), "p_IB(0.1)={low_load}");
        let high_load = m.p_idle_given_busy(0.8);
        assert!((0.02..0.09).contains(&high_load), "p_IB(0.8)={high_load}");
    }

    #[test]
    fn eq5_complement() {
        let m = model();
        for i in 0..=10 {
            let rho = i as f64 / 10.0;
            assert!(
                (m.p_busy_given_idle(rho) + m.p_idle_given_idle(rho) - 1.0).abs() < 1e-12
            );
        }
    }

    #[test]
    fn isolated_pair_sees_identical_channels() {
        // No third-party nodes: S idle ⟺ R idle.
        let m = AnalyticModel {
            n: 0.0,
            k: 0.0,
            m: 0.0,
            j: 0.0,
            ..model()
        };
        assert_eq!(m.p_busy_given_idle(0.9), 0.0);
        assert_eq!(m.p_idle_given_idle(0.9), 1.0);
        let (i_est, b_est) = m.estimate_sender_slots(0.9, 100.0, 0.0);
        assert_eq!(i_est, 100.0);
        assert_eq!(b_est, 0.0);
    }

    #[test]
    fn estimates_partition_the_window() {
        let m = model();
        let (i_est, b_est) = m.estimate_sender_slots(0.5, 300.0, 200.0);
        assert!((i_est + b_est - 500.0).abs() < 1e-9);
        assert!(i_est > 0.0 && b_est > 0.0);
        // More observed busy slots → more estimated idle leakage via p_IB,
        // but still far fewer estimated idle than observed idle contributes.
        assert!(i_est < 300.0 + 200.0 * 0.5);
    }

    #[test]
    fn density_variant_scales_counts() {
        let sparse = AnalyticModel::from_density(
            240.0,
            550.0,
            PreclusionRule::paper_calibrated(),
            1e-7,
        );
        let dense = AnalyticModel::from_density(
            240.0,
            550.0,
            PreclusionRule::paper_calibrated(),
            1e-5,
        );
        assert!(dense.n > sparse.n * 50.0);
        // Sparser network ⇒ weaker cross-coupling at equal ρ.
        assert!(dense.p_busy_given_idle(0.3) > sparse.p_busy_given_idle(0.3));
    }

    #[test]
    fn rho_is_clamped() {
        let m = model();
        assert_eq!(m.p_busy_given_idle(-0.5), m.p_busy_given_idle(0.0));
        assert_eq!(m.p_busy_given_idle(1.5), m.p_busy_given_idle(1.0));
    }
}
