//! Declarative scenario assembly: [`ScenarioBuilder`] and typed handles.
//!
//! The positional `Scenario::build(&[attacker, vantage], monitor)` call made
//! every caller hand-maintain the exclusion list and thread a single observer
//! through the world's type parameter. The builder replaces that: declare
//! attackers, monitors and extra sources by role, and [`ScenarioBuilder::build`]
//! wires the exclusion set, the observer fan-out ([`Monitors`]) and the
//! optional trace/metrics instrumentation in one place.
//!
//! ```
//! use mg_detect::{MonitorConfig, ScenarioBuilder, WorldMonitors};
//! use mg_net::{Scenario, ScenarioConfig, SourceCfg};
//! use mg_dcf::BackoffPolicy;
//! use mg_sim::SimTime;
//!
//! let scenario = Scenario::new(ScenarioConfig {
//!     sim_secs: 10, rate_pps: 2.0, ..ScenarioConfig::grid_paper(1)
//! });
//! let (s, r) = scenario.tagged_pair();
//! let mut b = ScenarioBuilder::new(scenario);
//! let attacker = b.attacker(s);
//! let watch = b.monitor(MonitorConfig::grid_paper(s, r, 240.0));
//! b.source(SourceCfg::saturated(s, r));
//! let mut world = b.build();
//! world.set_policy(attacker.id(), BackoffPolicy::Scaled { pm: 80 });
//! world.run_until(SimTime::from_secs(10));
//! let d = world.monitors().diagnosis(watch);
//! assert!(d.is_flagged());
//! ```

use crate::monitor::{Diagnosis, MonitorConfig, Violation};
use crate::pool::MonitorPool;
use crate::NodeId;
use mg_dcf::Frame;
use mg_fault::FaultPlan;
use mg_net::{NetObserver, Scenario, SourceCfg, World};
use mg_phy::Medium;
use mg_sim::SimTime;
use mg_trace::{Metrics, TraceConfig, Tracer};

/// Handle to a node registered as an attacker via
/// [`ScenarioBuilder::attacker`].
///
/// Registration keeps background sources off the node; the cheating policy
/// itself is applied to the built world (`world.set_policy(h.id(), …)`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AttackerHandle {
    node: NodeId,
}

impl AttackerHandle {
    /// The attacker's node id.
    pub fn id(&self) -> NodeId {
        self.node
    }
}

/// Handle to a monitor (or monitor pool) registered via
/// [`ScenarioBuilder::monitor`] / [`ScenarioBuilder::monitor_pool`].
///
/// Resolve it against the built world with [`Monitors::diagnosis`],
/// [`Monitors::pool`] or [`Monitors::pool_mut`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MonitorHandle {
    index: usize,
    tagged: NodeId,
}

impl MonitorHandle {
    /// Position of this monitor in the [`Monitors`] collection.
    pub fn index(&self) -> usize {
        self.index
    }

    /// The node this monitor watches.
    pub fn tagged(&self) -> NodeId {
        self.tagged
    }
}

/// The observer a [`ScenarioBuilder`] installs: every registered monitor
/// pool, fanned out behind one [`NetObserver`].
///
/// Access it on the built world through [`WorldMonitors::monitors`].
#[derive(Debug, Default)]
pub struct Monitors {
    pools: Vec<MonitorPool>,
}

impl Monitors {
    /// Number of registered monitor pools.
    pub fn len(&self) -> usize {
        self.pools.len()
    }

    /// `true` when no monitor was registered.
    pub fn is_empty(&self) -> bool {
        self.pools.is_empty()
    }

    /// Iterates over the pools in registration order.
    pub fn iter(&self) -> impl Iterator<Item = &MonitorPool> {
        self.pools.iter()
    }

    /// The pool at `index`, if any.
    pub fn get(&self, index: usize) -> Option<&MonitorPool> {
        self.pools.get(index)
    }

    /// Mutable access to the pool at `index`, if any.
    pub fn get_mut(&mut self, index: usize) -> Option<&mut MonitorPool> {
        self.pools.get_mut(index)
    }

    /// The first registered pool — the common single-monitor case.
    pub fn primary(&self) -> Option<&MonitorPool> {
        self.pools.first()
    }

    /// The pool behind `handle`.
    ///
    /// # Panics
    ///
    /// Panics if `handle` came from a different builder.
    pub fn pool(&self, handle: MonitorHandle) -> &MonitorPool {
        &self.pools[handle.index]
    }

    /// Mutable access to the pool behind `handle`.
    ///
    /// # Panics
    ///
    /// Panics if `handle` came from a different builder.
    pub fn pool_mut(&mut self, handle: MonitorHandle) -> &mut MonitorPool {
        &mut self.pools[handle.index]
    }

    /// Aggregated diagnosis of the pool behind `handle`.
    ///
    /// # Panics
    ///
    /// Panics if `handle` came from a different builder.
    pub fn diagnosis(&self, handle: MonitorHandle) -> Diagnosis {
        self.pool(handle).diagnosis()
    }

    /// Deterministic violations seen by the pool behind `handle`.
    ///
    /// # Panics
    ///
    /// Panics if `handle` came from a different builder.
    pub fn violations(&self, handle: MonitorHandle) -> Vec<Violation> {
        self.pool(handle).violations()
    }
}

impl NetObserver for Monitors {
    fn on_channel_edge(&mut self, node: NodeId, busy: bool, now: SimTime) {
        for p in &mut self.pools {
            p.on_channel_edge(node, busy, now);
        }
    }

    fn on_tx_start(&mut self, src: NodeId, frame: &Frame, now: SimTime, end: SimTime) {
        for p in &mut self.pools {
            p.on_tx_start(src, frame, now, end);
        }
    }

    fn on_frame_decoded(
        &mut self,
        medium: &Medium,
        at: NodeId,
        frame: &Frame,
        start: SimTime,
        end: SimTime,
    ) {
        for p in &mut self.pools {
            p.on_frame_decoded(medium, at, frame, start, end);
        }
    }

    fn on_frame_garbled(&mut self, at: NodeId, now: SimTime) {
        for p in &mut self.pools {
            p.on_frame_garbled(at, now);
        }
    }
}

/// The observer a [`ScenarioBuilder`] installs on the world it builds: the
/// registered [`Monitors`] plus an optional custom probe observer.
///
/// Monitors see every event first, then the probe — so a probe measuring
/// e.g. delivery latency observes exactly what it would observe alone, while
/// the monitors stay read-only alongside it. Built worlds expose the halves
/// through [`WorldMonitors::monitors`] and [`WorldProbe::probe`].
#[derive(Debug, Default)]
pub struct Assembly<P: NetObserver = ()> {
    monitors: Monitors,
    probe: P,
}

impl<P: NetObserver> Assembly<P> {
    /// The registered monitors.
    pub fn monitors(&self) -> &Monitors {
        &self.monitors
    }

    /// The custom probe observer (the unit observer `()` by default).
    pub fn probe(&self) -> &P {
        &self.probe
    }
}

impl<P: NetObserver> NetObserver for Assembly<P> {
    fn on_channel_edge(&mut self, node: NodeId, busy: bool, now: SimTime) {
        self.monitors.on_channel_edge(node, busy, now);
        self.probe.on_channel_edge(node, busy, now);
    }

    fn on_tx_start(&mut self, src: NodeId, frame: &Frame, now: SimTime, end: SimTime) {
        self.monitors.on_tx_start(src, frame, now, end);
        self.probe.on_tx_start(src, frame, now, end);
    }

    fn on_frame_decoded(
        &mut self,
        medium: &Medium,
        at: NodeId,
        frame: &Frame,
        start: SimTime,
        end: SimTime,
    ) {
        self.monitors.on_frame_decoded(medium, at, frame, start, end);
        self.probe.on_frame_decoded(medium, at, frame, start, end);
    }

    fn on_frame_garbled(&mut self, at: NodeId, now: SimTime) {
        self.monitors.on_frame_garbled(at, now);
        self.probe.on_frame_garbled(at, now);
    }
}

/// Read the monitors back out of a world built by [`ScenarioBuilder`].
///
/// `world.monitors()` generalizes the old `world.observer()` idiom: the
/// observer of a builder-made world is always an [`Assembly`], and this
/// trait names its monitor half without spelling the type parameter at
/// every call site.
pub trait WorldMonitors {
    /// The registered monitors.
    fn monitors(&self) -> &Monitors;
    /// Mutable access to the registered monitors.
    fn monitors_mut(&mut self) -> &mut Monitors;
}

impl<P: NetObserver> WorldMonitors for World<Assembly<P>> {
    fn monitors(&self) -> &Monitors {
        &self.observer().monitors
    }

    fn monitors_mut(&mut self) -> &mut Monitors {
        &mut self.observer_mut().monitors
    }
}

/// Read a custom probe observer back out of a world built with
/// [`ScenarioBuilder::probe`].
pub trait WorldProbe<P> {
    /// The probe installed at build time.
    fn probe(&self) -> &P;
    /// Mutable access to the probe.
    fn probe_mut(&mut self) -> &mut P;
}

impl<P: NetObserver> WorldProbe<P> for World<Assembly<P>> {
    fn probe(&self) -> &P {
        &self.observer().probe
    }

    fn probe_mut(&mut self) -> &mut P {
        &mut self.observer_mut().probe
    }
}

/// Assembles a detection scenario: attackers, monitors, extra traffic and
/// instrumentation on top of a laid-out [`Scenario`].
///
/// Registration order is free; [`build`](ScenarioBuilder::build) derives the
/// background-source exclusion set from the declared roles (attackers,
/// tagged nodes, template vantages) and hands it to the low-level
/// [`Scenario::realize`] primitive. The type parameter `P` is a custom probe
/// observer (see [`ScenarioBuilder::probe`]); it defaults to the unit
/// observer, so plain monitor-only builds never mention it.
pub struct ScenarioBuilder<P: NetObserver = ()> {
    scenario: Scenario,
    exclude: Vec<NodeId>,
    pools: Vec<MonitorPool>,
    sources: Vec<SourceCfg>,
    trace: Option<TraceConfig>,
    metrics: bool,
    fault: Option<FaultPlan>,
    probe: P,
}

impl ScenarioBuilder {
    /// Starts a builder over `scenario`.
    pub fn new(scenario: Scenario) -> Self {
        ScenarioBuilder {
            scenario,
            exclude: Vec::new(),
            pools: Vec::new(),
            sources: Vec::new(),
            trace: None,
            metrics: false,
            fault: None,
            probe: (),
        }
    }
}

impl<P: NetObserver> ScenarioBuilder<P> {

    /// The underlying scenario (topology and config).
    pub fn scenario(&self) -> &Scenario {
        &self.scenario
    }

    /// Registers `node` as an attacker: background sources stay off it so
    /// its traffic can be configured explicitly.
    ///
    /// The cheating policy is applied to the built world:
    /// `world.set_policy(handle.id(), policy)`.
    pub fn attacker(&mut self, node: NodeId) -> AttackerHandle {
        self.exclude_node(node);
        AttackerHandle { node }
    }

    /// Registers `count` attackers spread deterministically across the node
    /// id space (evenly strided picks — no RNG draw, so adding attackers
    /// never perturbs placement or source streams). The many-attacker knob
    /// of the scale studies: apply policies to the returned handles.
    ///
    /// # Panics
    ///
    /// Panics if `count` exceeds the node count.
    pub fn attackers(&mut self, count: usize) -> Vec<AttackerHandle> {
        let n = self.scenario.positions().len();
        assert!(count <= n, "cannot place {count} attackers on {n} nodes");
        (0..count)
            .map(|i| self.attacker(i * n / count.max(1)))
            .collect()
    }

    /// Registers a monitor watching each node in `tagged` from its nearest
    /// one-hop neighbor (the natural vantage: closest node inside the
    /// transmission range). Tagged nodes with no in-range neighbor are
    /// skipped — the returned handles tell which got a monitor. The monitor
    /// configuration follows the scenario (grid topologies use the paper's
    /// fixed-counts analytic model, random/clustered ones the density
    /// estimate), with the scenario's own tx/cs ranges.
    pub fn monitor_mesh(&mut self, tagged: &[NodeId]) -> Vec<MonitorHandle> {
        use mg_geom::placement;
        use mg_net::TopologyCfg;
        let cfg = *self.scenario.config();
        let positions = self.scenario.positions().to_vec();
        let mut handles = Vec::new();
        for &t in tagged {
            let Some(v) = placement::neighbors_within(&positions, t, cfg.tx_range)
                .into_iter()
                .min_by(|&a, &b| {
                    positions[t]
                        .distance_sq(positions[a])
                        .partial_cmp(&positions[t].distance_sq(positions[b]))
                        .expect("no NaN positions")
                })
            else {
                continue; // isolated node: nothing can watch it
            };
            let d = positions[t].distance(positions[v]);
            let mut mc = match cfg.topology {
                TopologyCfg::Grid { .. } => MonitorConfig::grid_paper(t, v, d),
                _ => MonitorConfig::random_paper(t, v, d),
            };
            mc.tx_range = cfg.tx_range;
            mc.cs_range = cfg.cs_range;
            handles.push(self.monitor(mc));
        }
        handles
    }

    /// Registers a single monitor watching `cfg.tagged` from `cfg.vantage`.
    ///
    /// Both nodes are excluded from background sources, matching the old
    /// `Scenario::build(&[tagged, vantage], monitor)` convention.
    pub fn monitor(&mut self, cfg: MonitorConfig) -> MonitorHandle {
        let vantage = cfg.vantage;
        self.push_pool(MonitorPool::new(cfg.tagged, &[vantage], cfg))
    }

    /// Registers a monitor pool watching `template.tagged` from every node
    /// in `vantages`, with range-based handoff (the paper's mobile case).
    ///
    /// Only `template.tagged` and `template.vantage` are excluded from
    /// background sources — extra vantages keep their traffic, so adding
    /// vantages does not perturb the source-placement RNG draw.
    pub fn monitor_pool(&mut self, template: MonitorConfig, vantages: &[NodeId]) -> MonitorHandle {
        let tagged = template.tagged;
        let vantage = template.vantage;
        let pool = MonitorPool::new(tagged, vantages, template);
        let h = self.push_pool_raw(pool, tagged);
        self.exclude_node(tagged);
        self.exclude_node(vantage);
        h
    }

    /// Adds a traffic source to the built world, on top of the scenario's
    /// background sources.
    pub fn source(&mut self, cfg: SourceCfg) {
        self.sources.push(cfg);
    }

    /// Reserves `node`: background sources stay off it without giving it a
    /// role. Useful for keeping a measurement pair quiet in benchmarks that
    /// attach no monitor.
    pub fn reserve(&mut self, node: NodeId) {
        self.exclude_node(node);
    }

    /// Installs a custom probe observer alongside the monitors.
    ///
    /// The probe sees every [`NetObserver`] event (after the monitors) and is
    /// read back from the built world with [`WorldProbe::probe`]. Replaces
    /// any previously installed probe.
    pub fn probe<Q: NetObserver>(self, probe: Q) -> ScenarioBuilder<Q> {
        ScenarioBuilder {
            scenario: self.scenario,
            exclude: self.exclude,
            pools: self.pools,
            sources: self.sources,
            trace: self.trace,
            metrics: self.metrics,
            fault: self.fault,
            probe,
        }
    }

    /// Injects `plan` at every registered monitor's observation boundary.
    ///
    /// The simulated world runs unchanged — nodes transmit, collide and
    /// back off exactly as without the plan — but each monitor perceives it
    /// through its own deterministic injector ([`FaultPlan::observer`],
    /// keyed by vantage id): frames lost, deafness windows, tagged-RTS
    /// commitment bits flipped. Plans with observation faults also harden
    /// every monitor to require two consecutive anomalous observations
    /// before a deterministic conviction (see
    /// [`MonitorConfig::confirm_anomalies`]). A no-op plan changes nothing.
    /// Replaces any previously set plan.
    pub fn fault(&mut self, plan: FaultPlan) {
        self.fault = Some(plan);
    }

    /// Journals the whole stack (scheduler → PHY → MAC → net → monitors)
    /// into a ring-buffer trace with the given capacity and level filters.
    pub fn trace(&mut self, cfg: TraceConfig) {
        self.trace = Some(cfg);
    }

    /// Enables per-node counters and latency/back-off histograms.
    pub fn metrics(&mut self) {
        self.metrics = true;
    }

    /// Builds the world: lays out sources with the role-derived exclusion
    /// set, installs the monitors (and probe) as the observer, and threads
    /// the trace and metrics handles through every layer.
    pub fn build(self) -> World<Assembly<P>> {
        let nodes = self.scenario.positions().len();
        let tracer = match self.trace {
            Some(cfg) => Tracer::new(cfg),
            None => Tracer::disabled(),
        };
        let metrics = if self.metrics {
            Metrics::new(nodes)
        } else {
            Metrics::disabled()
        };
        let mut monitors = Monitors { pools: self.pools };
        for p in &mut monitors.pools {
            p.set_instrumentation(tracer.clone(), metrics.clone());
            if let Some(plan) = &self.fault {
                p.apply_fault_plan(plan);
            }
        }
        let assembly = Assembly {
            monitors,
            probe: self.probe,
        };
        let mut world = self.scenario.realize(&self.exclude, assembly);
        world.set_tracer(tracer);
        world.set_metrics(metrics);
        // Extra sources go in after the scenario's background sources so the
        // background traffic streams keep their indices (and thus their RNG
        // draws) no matter how many roles were declared.
        for cfg in self.sources {
            world.add_source(cfg);
        }
        world
    }

    fn exclude_node(&mut self, node: NodeId) {
        if !self.exclude.contains(&node) {
            self.exclude.push(node);
        }
    }

    fn push_pool(&mut self, pool: MonitorPool) -> MonitorHandle {
        let tagged = pool.tagged();
        let vantages: Vec<NodeId> = pool.vantages().collect();
        let h = self.push_pool_raw(pool, tagged);
        self.exclude_node(tagged);
        for v in vantages {
            self.exclude_node(v);
        }
        h
    }

    fn push_pool_raw(&mut self, pool: MonitorPool, tagged: NodeId) -> MonitorHandle {
        let index = self.pools.len();
        self.pools.push(pool);
        MonitorHandle { index, tagged }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mg_dcf::BackoffPolicy;
    use mg_net::{ScenarioConfig, SourceCfg};

    fn paper_scenario(seed: u64, secs: u64) -> Scenario {
        Scenario::new(ScenarioConfig {
            sim_secs: secs,
            rate_pps: 2.0,
            ..ScenarioConfig::grid_paper(seed)
        })
    }

    #[test]
    fn handles_report_their_nodes() {
        let scenario = paper_scenario(1, 5);
        let (s, r) = scenario.tagged_pair();
        let mut b = ScenarioBuilder::new(scenario);
        let a = b.attacker(s);
        let m = b.monitor(MonitorConfig::grid_paper(s, r, 240.0));
        assert_eq!(a.id(), s);
        assert_eq!(m.tagged(), s);
        assert_eq!(m.index(), 0);
        let world = b.build();
        assert_eq!(world.monitors().len(), 1);
        assert!(world.monitors().primary().is_some());
    }

    #[test]
    fn attackers_are_strided_and_deduplicated_with_roles() {
        let scenario = paper_scenario(1, 5);
        let mut b = ScenarioBuilder::new(scenario);
        let hs = b.attackers(4);
        assert_eq!(hs.len(), 4);
        let ids: Vec<NodeId> = hs.iter().map(|h| h.id()).collect();
        assert_eq!(ids, vec![0, 14, 28, 42], "56 nodes, stride 14");
        // Deterministic: a rebuilt identical scenario yields the same picks.
        let mut b2 = ScenarioBuilder::new(paper_scenario(1, 5));
        let ids2: Vec<NodeId> = b2.attackers(4).iter().map(|h| h.id()).collect();
        assert_eq!(ids, ids2);
    }

    #[test]
    fn monitor_mesh_picks_nearest_vantage_and_skips_isolated() {
        let scenario = paper_scenario(2, 5);
        let (s, _) = scenario.tagged_pair();
        let mut b = ScenarioBuilder::new(scenario);
        let hs = b.monitor_mesh(&[s, s + 1]);
        assert_eq!(hs.len(), 2, "grid nodes always have neighbors");
        assert_eq!(hs[0].tagged(), s);
        assert_eq!(hs[1].tagged(), s + 1);
        let world = b.build();
        assert_eq!(world.monitors().len(), 2);
        // Grid neighbors sit 240 m apart: the mesh must have found one.
        for (h, t) in [(hs[0], s), (hs[1], s + 1)] {
            let pool = world.monitors().pool(h);
            assert_eq!(pool.tagged(), t);
        }
    }

    #[test]
    fn builder_flags_a_hard_cheater() {
        let scenario = paper_scenario(4, 20);
        let (s, r) = scenario.tagged_pair();
        let mut b = ScenarioBuilder::new(scenario);
        let a = b.attacker(s);
        let mut mc = MonitorConfig::grid_paper(s, r, 240.0);
        mc.sample_size = 25;
        let watch = b.monitor(mc);
        b.source(SourceCfg::saturated(s, r));
        let mut world = b.build();
        world.set_policy(a.id(), BackoffPolicy::Scaled { pm: 80 });
        world.run_until(SimTime::from_secs(20));
        let d = world.monitors().diagnosis(watch);
        assert!(d.is_flagged(), "{d:?}");
    }

    #[test]
    fn instrumented_builds_are_deterministic() {
        let run = || {
            let scenario = paper_scenario(7, 2);
            let (s, r) = scenario.tagged_pair();
            let mut b = ScenarioBuilder::new(scenario);
            b.attacker(s);
            b.monitor(MonitorConfig::grid_paper(s, r, 240.0));
            b.source(SourceCfg::saturated(s, r));
            b.trace(TraceConfig::verbose());
            b.metrics();
            let mut world = b.build();
            world.run_until(SimTime::from_secs(2));
            let jsonl = world.tracer().to_jsonl();
            let snap = world.metrics().snapshot();
            (jsonl, snap.total(mg_trace::Counter::TxFrames))
        };
        let (ja, ta) = run();
        let (jb, tb) = run();
        assert!(!ja.is_empty());
        assert!(ta > 0);
        assert_eq!(ja, jb);
        assert_eq!(ta, tb);
    }

    #[test]
    fn faulted_builds_are_byte_deterministic_and_leave_the_world_alone() {
        use crate::FaultPlan;
        let run = |plan: Option<FaultPlan>| {
            let scenario = paper_scenario(7, 2);
            let (s, r) = scenario.tagged_pair();
            let mut b = ScenarioBuilder::new(scenario);
            b.attacker(s);
            b.monitor(MonitorConfig::grid_paper(s, r, 240.0));
            b.source(SourceCfg::saturated(s, r));
            b.trace(TraceConfig::verbose());
            if let Some(p) = plan {
                b.fault(p);
            }
            let mut world = b.build();
            world.run_until(SimTime::from_secs(2));
            (world.tracer().to_jsonl(), world.mac_delivered, world.events_fired())
        };
        let plan = FaultPlan::parse("seed=5,light").unwrap();
        let (ja, da, ea) = run(Some(plan.clone()));
        let (jb, db, eb) = run(Some(plan));
        assert_eq!(ja, jb, "equal fault seeds must journal identically");
        assert!(
            ja.contains("\"sub\":\"fault\""),
            "a light plan must visibly inject at least one fault"
        );
        // Faults live at the observation boundary: the simulated world
        // (deliveries, event count) is identical to the fault-free run.
        let (_, dc, ec) = run(None);
        assert_eq!((da, ea), (dc, ec));
        assert_eq!((db, eb), (dc, ec));
    }

    #[test]
    fn monitor_exclusion_matches_old_positional_build() {
        // Same seed, monitor-region roles declared through the builder vs
        // the old positional exclusion list: background sources must land on
        // the same nodes, i.e. deliver the same totals.
        let scenario_a = paper_scenario(9, 3);
        let (s, r) = scenario_a.tagged_pair();
        let mut b = ScenarioBuilder::new(scenario_a);
        b.attacker(s);
        b.monitor(MonitorConfig::grid_paper(s, r, 240.0));
        b.source(SourceCfg::saturated(s, r));
        let mut wa = b.build();
        wa.run_until(SimTime::from_secs(3));

        let scenario_b = paper_scenario(9, 3);
        let mut wb = scenario_b.realize(&[s, r], ());
        wb.add_source(SourceCfg::saturated(s, r));
        wb.run_until(SimTime::from_secs(3));

        assert_eq!(wa.mac_delivered, wb.mac_delivered);
        assert_eq!(wa.events_fired(), wb.events_fired());
    }
}
