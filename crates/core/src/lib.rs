//! # mg-detect — detecting MAC-layer back-off timer violations
//!
//! The paper's contribution: a **combined deterministic + statistical
//! framework** by which every node in an ad hoc network can tell whether a
//! neighbor honors the IEEE 802.11 back-off rules, with no access point and
//! no trusted arbiter.
//!
//! ## How it works
//!
//! 1. **Verifiable sequences** (`mg-crypto`): every node's back-off values
//!    come from a public PRS seeded by its MAC address; every RTS commits to
//!    a sequence offset, attempt number and DATA digest. A monitor replays
//!    the tagged node's PRS and knows the *dictated* value of every draw.
//! 2. **Deterministic checks** ([`Violation`]): sequence-offset reuse,
//!    attempt-number cheating (caught via the MD5 digest), and countdowns
//!    that are blatantly short during fully-observable periods.
//! 3. **Statistical inference** ([`Monitor`]): when interference makes the
//!    tagged node's channel view unobservable, the monitor estimates it:
//!    traffic intensity ρ by the paper's ARMA filter (Eq. 6), local node
//!    density à la Bianchi–Tinnirello ([`DensityEstimator`]), the
//!    conditional probabilities `p_{B|I}`/`p_{I|B}` from the geometric model
//!    ([`AnalyticModel`], Eqs. 3–5), and finally the *estimated observed*
//!    back-off of every transmission (Eqs. 1–2). A one-sided **Wilcoxon
//!    rank-sum test** compares the estimated population against the dictated
//!    one; rejection ⇒ the neighbor transmits earlier than its timers allow.
//!
//! ## Quick start
//!
//! ```
//! use mg_detect::{MonitorConfig, ScenarioBuilder, WorldMonitors};
//! use mg_net::{ScenarioConfig, Scenario, SourceCfg};
//! use mg_dcf::BackoffPolicy;
//! use mg_sim::SimTime;
//!
//! // Tagged sender S and monitor R at the center of the paper's grid.
//! let scenario = Scenario::new(ScenarioConfig {
//!     sim_secs: 20, rate_pps: 2.0, ..ScenarioConfig::grid_paper(1)
//! });
//! let (s, r) = scenario.tagged_pair();
//! let mut b = ScenarioBuilder::new(scenario);
//! let attacker = b.attacker(s);
//! let watch = b.monitor(MonitorConfig::grid_paper(s, r, 240.0));
//! b.source(SourceCfg::saturated(s, r));
//! let mut world = b.build();
//! world.set_policy(attacker.id(), BackoffPolicy::Scaled { pm: 80 });
//! world.run_until(SimTime::from_secs(20));
//! assert!(world.monitors().diagnosis(watch).is_flagged());
//! ```

#![warn(missing_docs)]

mod analysis;
mod channel;
mod density;
mod monitor;
mod pool;
mod record;
mod scenario;
mod session;

pub use analysis::AnalyticModel;
pub use channel::{ChannelTracker, JointTracker};
pub use density::DensityEstimator;
pub use monitor::{Diagnosis, Judge, Monitor, MonitorConfig, NodeCounts, Violation};
pub use mg_fault::{FaultPlan, ObsFaults};
pub use mg_obs::{
    base64_to_bytes, bytes_to_base64, JournalCodec, JournalError, JournalFormat, JournalReader,
    JournalWriter, Obs, ObsJournal, ObsMeta, ObsSink,
};
pub use pool::MonitorPool;
pub use record::{replay_pool, replay_pool_faulted, replay_reader, replay_reader_faulted, ObsRecorder};
pub use scenario::{
    Assembly, AttackerHandle, MonitorHandle, Monitors, ScenarioBuilder, WorldMonitors, WorldProbe,
};
pub use session::{
    render_report, template_from_meta, DetectorSession, DiagnosisDelta, SessionSpec,
};

/// Index of a node in the simulation.
pub type NodeId = usize;
