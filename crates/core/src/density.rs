//! Online estimation of the number of competing terminals — after Bianchi &
//! Tinnirello ("Kalman filter estimation of the number of competing
//! terminals in an IEEE 802.11 network", INFOCOM 2003), which the paper uses
//! to let monitors approximate node density in their neighborhood.
//!
//! The estimator inverts Bianchi's saturation fixed point: for `n` saturated
//! stations with minimum window `W = CWmin + 1` and `m` doubling stages, the
//! per-slot transmission probability τ and conditional collision probability
//! `p` satisfy
//!
//! ```text
//! τ = 2(1−2p) / [ (1−2p)(W+1) + pW(1−(2p)^m) ]
//! p = 1 − (1−τ)^(n−1)
//! ```
//!
//! The monitor measures `p̂` (the fraction of transmissions in its airspace
//! that collide), computes `τ(p̂)` from the first equation, and solves the
//! second for `n̂ = 1 + ln(1−p̂)/ln(1−τ)`.

use mg_stats::filter::Ewma;

/// Estimates competing-terminal count and node density from observed
/// collision rates.
#[derive(Clone, Debug)]
pub struct DensityEstimator {
    w: f64,
    stages: u32,
    /// Smoothed collision probability.
    p_coll: Ewma,
    decoded: u64,
    collided: u64,
}

impl DensityEstimator {
    /// Creates an estimator for the given contention parameters
    /// (`cw_min = 31`, `stages = 5` for the standard 31→1023 ladder).
    pub fn new(cw_min: u16, stages: u32) -> Self {
        DensityEstimator {
            w: f64::from(cw_min) + 1.0,
            stages,
            p_coll: Ewma::new(0.95),
            decoded: 0,
            collided: 0,
        }
    }

    /// The standard 802.11 parameters (CWmin 31, CWmax 1023 ⇒ 5 stages).
    pub fn paper_default() -> Self {
        DensityEstimator::new(31, 5)
    }

    /// Records a successfully decoded transmission in the monitor's airspace.
    pub fn on_success(&mut self) {
        self.decoded += 1;
        self.p_coll.push(0.0);
    }

    /// Records a collided (garbled) transmission.
    pub fn on_collision(&mut self) {
        self.collided += 1;
        self.p_coll.push(1.0);
    }

    /// The smoothed collision probability `p̂` (0 before any observation).
    pub fn collision_probability(&self) -> f64 {
        self.p_coll.value().unwrap_or(0.0)
    }

    /// Observation counts `(decoded, collided)`.
    pub fn counts(&self) -> (u64, u64) {
        (self.decoded, self.collided)
    }

    /// Bianchi's τ for a given conditional collision probability.
    pub fn tau_of_p(&self, p: f64) -> f64 {
        let p = p.clamp(0.0, 0.9999);
        let w = self.w;
        let m = self.stages as i32;
        let num = 2.0 * (1.0 - 2.0 * p);
        let den = (1.0 - 2.0 * p) * (w + 1.0) + p * w * (1.0 - (2.0 * p).powi(m));
        if den.abs() < 1e-12 {
            // p = 0.5 singularity: take the analytic limit.
            return 2.0 / (w + 1.0 + 0.5 * w * m as f64);
        }
        (num / den).clamp(1e-9, 1.0)
    }

    /// The estimated number of competing terminals `n̂` for a measured
    /// collision probability.
    pub fn competing_terminals_for(&self, p: f64) -> f64 {
        let p = p.clamp(0.0, 0.9999);
        if p <= 0.0 {
            return 1.0;
        }
        let tau = self.tau_of_p(p);
        1.0 + (1.0 - p).ln() / (1.0 - tau).ln()
    }

    /// The current estimate `n̂` from the smoothed collision probability.
    pub fn competing_terminals(&self) -> f64 {
        self.competing_terminals_for(self.collision_probability())
    }

    /// Node density (nodes/m²) assuming the `n̂` competing terminals live
    /// within transmission range `r` of the monitor — the paper's
    /// `N_R / (πR²)` (valid for uniform layouts).
    pub fn density(&self, tx_range: f64) -> f64 {
        assert!(tx_range > 0.0, "range must be positive");
        self.competing_terminals() / (std::f64::consts::PI * tx_range * tx_range)
    }
}

impl Default for DensityEstimator {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Forward Bianchi fixed point for ground truth: given n, solve (τ, p).
    fn bianchi_forward(n: f64, w: f64, m: i32) -> (f64, f64) {
        let mut p = 0.1;
        for _ in 0..10_000 {
            let num = 2.0 * (1.0 - 2.0 * p);
            let den = (1.0 - 2.0 * p) * (w + 1.0) + p * w * (1.0 - (2.0 * p).powi(m));
            let tau = num / den;
            let p_new = 1.0 - (1.0 - tau).powf(n - 1.0);
            p = 0.5 * p + 0.5 * p_new;
        }
        let num = 2.0 * (1.0 - 2.0 * p);
        let den = (1.0 - 2.0 * p) * (w + 1.0) + p * w * (1.0 - (2.0 * p).powi(m));
        (num / den, p)
    }

    #[test]
    fn inversion_recovers_n() {
        let est = DensityEstimator::paper_default();
        for n in [2.0, 5.0, 10.0, 20.0, 50.0] {
            let (_tau, p) = bianchi_forward(n, 32.0, 5);
            let n_hat = est.competing_terminals_for(p);
            let rel = (n_hat - n).abs() / n;
            assert!(rel < 0.02, "n={n}: p={p:.4} n_hat={n_hat:.2}");
        }
    }

    #[test]
    fn zero_collisions_means_alone() {
        let est = DensityEstimator::paper_default();
        assert_eq!(est.competing_terminals_for(0.0), 1.0);
        assert_eq!(est.competing_terminals(), 1.0);
    }

    #[test]
    fn estimate_grows_with_collisions() {
        let est = DensityEstimator::paper_default();
        let mut prev = 0.0;
        for p in [0.05, 0.1, 0.2, 0.4, 0.6] {
            let n = est.competing_terminals_for(p);
            assert!(n > prev, "p={p}: n={n}");
            prev = n;
        }
    }

    #[test]
    fn smoothing_tracks_observations() {
        let mut est = DensityEstimator::paper_default();
        for _ in 0..50 {
            est.on_success();
        }
        assert!(est.collision_probability() < 0.05);
        for _ in 0..300 {
            est.on_collision();
        }
        assert!(est.collision_probability() > 0.8);
        assert_eq!(est.counts(), (50, 300));
    }

    #[test]
    fn density_scales_inverse_square() {
        let mut est = DensityEstimator::paper_default();
        for _ in 0..10 {
            est.on_collision();
            est.on_success();
        }
        let d250 = est.density(250.0);
        let d500 = est.density(500.0);
        assert!((d250 / d500 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn tau_is_sane_across_p() {
        let est = DensityEstimator::paper_default();
        for i in 0..100 {
            let p = i as f64 / 100.0;
            let tau = est.tau_of_p(p);
            assert!(
                tau > 0.0 && tau <= 1.0,
                "tau({p}) = {tau} out of range"
            );
        }
    }
}
