//! Monitoring under mobility: a pool of per-vantage monitors.
//!
//! The paper (Section 5): "We choose a neighbor of the malicious node to
//! monitor its activity. If this neighbor moves out of range, another
//! neighbor is randomly chosen." [`MonitorPool`] realizes that: it keeps a
//! [`Monitor`] at every candidate vantage, designates the vantage currently
//! closest to the tagged node as *active*, and aggregates only the active
//! monitor's back-off samples into one shared hypothesis-test stream.

use crate::monitor::{Diagnosis, Judge, Monitor, MonitorConfig, Violation};
use crate::session::DiagnosisDelta;
use crate::NodeId;
use mg_dcf::Frame;
use mg_fault::FaultPlan;
use mg_net::NetObserver;
use mg_obs::{Obs, ObsSink};
use mg_phy::Medium;
use mg_sim::SimTime;
use mg_stats::signed_rank::signed_rank_test;
use mg_stats::wilcoxon::{rank_sum_test, Alternative, RankSumResult};
use mg_trace::{Counter, EventKind, Metrics, Tracer};
use std::collections::HashMap;

/// A set of monitors for one tagged node, one per candidate vantage, with
/// range-based handoff.
pub struct MonitorPool {
    tagged: NodeId,
    tx_range: f64,
    alpha: f64,
    sample_size: usize,
    judge: Judge,
    monitors: HashMap<NodeId, Monitor>,
    active: Option<NodeId>,
    samples: Vec<(f64, f64)>,
    tests: Vec<RankSumResult>,
    rejections: usize,
    /// Samples contributed per vantage (diagnostic).
    contributed: HashMap<NodeId, usize>,
    /// Last tagged-RTS end seen (virtual timestamp for shared-test records).
    last_seen: SimTime,
    /// Latest geometry snapshot ([`Obs::Ranging`]), applied at the next
    /// tagged-RTS decode — *after* the member consumed the frame, so the
    /// sample extracted for that RTS still uses the pre-hand-off distance
    /// (matching the callback order of a live world).
    last_ranging: Option<Vec<(NodeId, f64)>>,
    /// Incremental delta buffer: member deltas are folded in right after the
    /// routed member consumed an event (so ordering is deterministic even
    /// though member storage is a hash map), followed by the pool's own
    /// shared-test deltas. Disabled (and empty) by default.
    emit_deltas: bool,
    deltas: Vec<DiagnosisDelta>,
    tracer: Tracer,
    metrics: Metrics,
}

impl MonitorPool {
    /// Creates a pool watching `tagged` from every node in `vantages`.
    ///
    /// `template` supplies all per-monitor settings (α, ARMA, regions…);
    /// its `tagged`/`vantage`/`auto_test` fields are overridden per member.
    ///
    /// # Panics
    ///
    /// Panics if `vantages` is empty or contains the tagged node.
    pub fn new(tagged: NodeId, vantages: &[NodeId], template: MonitorConfig) -> Self {
        assert!(!vantages.is_empty(), "a pool needs at least one vantage");
        assert!(
            !vantages.contains(&tagged),
            "the tagged node cannot monitor itself"
        );
        let monitors = vantages
            .iter()
            .map(|&v| {
                let cfg = MonitorConfig {
                    tagged,
                    vantage: v,
                    auto_test: false,
                    ..template
                };
                (v, Monitor::new(cfg))
            })
            .collect();
        MonitorPool {
            tagged,
            tx_range: template.tx_range,
            alpha: template.alpha,
            sample_size: template.sample_size,
            judge: template.judge,
            monitors,
            active: None,
            samples: Vec::new(),
            tests: Vec::new(),
            rejections: 0,
            contributed: HashMap::new(),
            last_seen: SimTime::ZERO,
            last_ranging: None,
            emit_deltas: false,
            deltas: Vec::new(),
            tracer: Tracer::disabled(),
            metrics: Metrics::disabled(),
        }
    }

    /// Switches the pool (and every member) onto the incremental path: all
    /// state changes are additionally journaled as [`DiagnosisDelta`]s.
    /// Emission is purely additive — detector decisions are unchanged.
    pub(crate) fn enable_deltas(&mut self) {
        self.emit_deltas = true;
        for m in self.monitors.values_mut() {
            m.enable_deltas();
        }
    }

    /// Moves the accumulated deltas (in emission order) into `out`.
    pub(crate) fn take_deltas_into(&mut self, out: &mut Vec<DiagnosisDelta>) {
        out.append(&mut self.deltas);
    }

    /// Raises every member's deterministic-conviction threshold to at least
    /// `confirm` (see [`MonitorConfig::hardened`]).
    pub(crate) fn raise_confirmation(&mut self, confirm: usize) {
        for m in self.monitors.values_mut() {
            m.raise_confirmation(confirm);
        }
    }

    /// Journals every member's samples/violations and the pool's shared
    /// tests through `tracer`, counting into `metrics`. Both disabled by
    /// default.
    pub fn set_instrumentation(&mut self, tracer: Tracer, metrics: Metrics) {
        for m in self.monitors.values_mut() {
            m.set_instrumentation(tracer.clone(), metrics.clone());
        }
        self.tracer = tracer;
        self.metrics = metrics;
    }

    /// The node this pool watches.
    pub fn tagged(&self) -> NodeId {
        self.tagged
    }

    /// Arms every member monitor with its own deterministic observation
    /// fault injector derived from `plan` (keyed by the member's vantage id,
    /// so fates are identical across solo and fanned-out runs). When the
    /// plan carries observation faults, each member is also
    /// [hardened](MonitorConfig::hardened) to require two consecutive anomalous
    /// observations before a deterministic conviction.
    pub fn apply_fault_plan(&mut self, plan: &FaultPlan) {
        let harden = plan.has_observation_faults();
        for (&v, m) in self.monitors.iter_mut() {
            m.install_faults(plan.observer(v as u64));
            if harden {
                m.raise_confirmation(2);
            }
        }
    }

    /// The candidate vantages (arbitrary order).
    pub fn vantages(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.monitors.keys().copied()
    }

    /// The currently active vantage, if any is in range.
    pub fn active_vantage(&self) -> Option<NodeId> {
        self.active
    }

    /// The member monitor stationed at `vantage`, if it is part of the pool.
    ///
    /// Gives access to per-member state the pooled aggregates fold away —
    /// the background-traffic ARMA estimate, the full sample log, the
    /// member's own deterministic violations.
    pub fn monitor(&self, vantage: NodeId) -> Option<&Monitor> {
        self.monitors.get(&vantage)
    }

    /// Aggregated diagnosis across the pool.
    ///
    /// `violations` is the *maximum* count over members, not the sum: every
    /// in-range vantage independently witnesses the same on-air violation,
    /// and one witness is enough to convict.
    pub fn diagnosis(&self) -> Diagnosis {
        let violations: usize = self
            .monitors
            .values()
            .map(|m| m.violations().len())
            .max()
            .unwrap_or(0);
        Diagnosis {
            tests_run: self.tests.len(),
            rejections: self.rejections,
            violations,
            samples_collected: self.samples.len()
                + self.tests.len() * self.sample_size,
            samples_discarded: self
                .monitors
                .values()
                .map(|m| m.diagnosis().samples_discarded)
                .sum(),
            last_p: self.tests.last().map(|t| t.p_value),
            measured_rho: self
                .active
                .and_then(|v| self.monitors.get(&v))
                .map(|m| m.diagnosis().measured_rho)
                .unwrap_or(0.0),
            uncertain: self
                .monitors
                .values()
                .map(|m| m.diagnosis().uncertain)
                .sum(),
        }
    }

    /// All deterministic violations seen by any pool member.
    pub fn violations(&self) -> Vec<Violation> {
        self.monitors
            .values()
            .flat_map(|m| m.violations().iter().copied())
            .collect()
    }

    /// Hypothesis-test results so far.
    pub fn tests(&self) -> &[RankSumResult] {
        &self.tests
    }

    /// How many samples each vantage contributed (handoff diagnostic).
    pub fn contributions(&self) -> &HashMap<NodeId, usize> {
        &self.contributed
    }

    /// Recomputes the active vantage from a geometry snapshot: the in-range
    /// vantage closest to the tagged node. Exact-distance ties go to the
    /// lowest node id (snapshots are ascending by id), so the election is
    /// deterministic regardless of member hash order.
    fn reelect_from(&mut self, ranging: &[(NodeId, f64)]) {
        let mut best: Option<(NodeId, f64)> = None;
        for &(v, d) in ranging {
            if d > self.tx_range || !self.monitors.contains_key(&v) {
                continue;
            }
            if best.is_none_or(|(_, bd)| d < bd) {
                best = Some((v, d));
            }
        }
        self.active = best.map(|(v, _)| v);
        // Keep the elected monitor's region model honest about the distance.
        if let Some((v, d)) = best {
            if let Some(m) = self.monitors.get_mut(&v) {
                m.update_pair_distance(d.max(1.0));
            }
        }
    }

    /// The current tagged→member distances as an [`Obs::Ranging`] event,
    /// ascending by node id — the projection a live adapter records or
    /// feeds before each tagged RTS.
    fn ranging_snapshot(&self, medium: &Medium, at: SimTime) -> Obs {
        let tp = medium.position(self.tagged);
        let mut to: Vec<(NodeId, f64)> = self
            .monitors
            .keys()
            .map(|&v| (v, tp.distance(medium.position(v))))
            .collect();
        to.sort_by_key(|a| a.0);
        Obs::Ranging {
            from: self.tagged,
            to,
            at,
        }
    }

    /// Pulls fresh samples from the active monitor and runs the shared test
    /// when enough have accumulated.
    fn harvest(&mut self) {
        let Some(v) = self.active else { return };
        let fresh = match self.monitors.get_mut(&v) {
            Some(m) => m.drain_samples(),
            None => Vec::new(),
        };
        if !fresh.is_empty() {
            *self.contributed.entry(v).or_insert(0) += fresh.len();
            self.samples.extend(fresh);
        }
        // Drop stale samples from inactive vantages so they never leak into
        // a later harvest.
        for (&u, m) in self.monitors.iter_mut() {
            if u != v {
                let _ = m.drain_samples();
            }
        }
        while self.samples.len() >= self.sample_size {
            let batch: Vec<(f64, f64)> = self.samples.drain(..self.sample_size).collect();
            let xs: Vec<f64> = batch.iter().map(|&(x, _)| x).collect();
            let ys: Vec<f64> = batch.iter().map(|&(_, y)| y).collect();
            let r = match self.judge {
                Judge::RankSum => rank_sum_test(&ys, &xs, Alternative::Less),
                Judge::SignedRank => {
                    let sr = signed_rank_test(&ys, &xs, Alternative::Less);
                    // Same common-shape report as `Monitor::run_test`.
                    RankSumResult {
                        w: sr.w_plus,
                        u: sr.w_plus,
                        p_value: sr.p_value,
                        method: sr.method,
                        n1: sr.n_used,
                        n2: sr.n_used,
                    }
                }
            };
            let reject = r.p_value < self.alpha;
            if reject {
                self.rejections += 1;
            }
            self.tracer.emit(
                self.last_seen.as_nanos(),
                Some(self.tagged),
                EventKind::MonitorTest { p: r.p_value, reject },
            );
            self.metrics.bump(self.tagged, Counter::MonitorTests);
            if self.emit_deltas {
                self.deltas.push(DiagnosisDelta::TestFired {
                    result: r,
                    reject,
                    at: self.last_seen,
                });
            }
            self.tests.push(r);
        }
    }
}

impl ObsSink for MonitorPool {
    /// The pool's single entry point. Vantage-specific events route to the
    /// member stationed there; [`Obs::Ranging`] snapshots are stored and
    /// applied at the next tagged-RTS decode, *after* the member consumed
    /// the frame — the same order a live world's callbacks produce — so the
    /// sample extracted for that RTS uses the pre-hand-off distance.
    fn ingest(&mut self, obs: &Obs) {
        match obs {
            Obs::Ranging { from, to, .. } => {
                if *from == self.tagged {
                    self.last_ranging = Some(to.clone());
                }
            }
            Obs::ChannelEdge { node, .. } => {
                if let Some(m) = self.monitors.get_mut(node) {
                    m.ingest(obs);
                    m.take_deltas_into(&mut self.deltas);
                }
            }
            Obs::TxStart { src, .. } => {
                if let Some(m) = self.monitors.get_mut(src) {
                    m.ingest(obs);
                    m.take_deltas_into(&mut self.deltas);
                }
            }
            Obs::Decoded { at, frame, end, .. } => {
                if let Some(m) = self.monitors.get_mut(at) {
                    m.ingest(obs);
                    m.take_deltas_into(&mut self.deltas);
                }
                if frame.src == self.tagged && frame.is_rts() {
                    self.last_seen = *end;
                    if let Some(r) = self.last_ranging.take() {
                        self.reelect_from(&r);
                        self.last_ranging = Some(r);
                    }
                    self.harvest();
                }
            }
            Obs::Garbled { at, .. } => {
                if let Some(m) = self.monitors.get_mut(at) {
                    m.ingest(obs);
                    m.take_deltas_into(&mut self.deltas);
                }
            }
        }
    }
}

/// Thin world→[`Obs`] projection. The only medium access left in the
/// detection layer lives here: a geometry snapshot taken right before each
/// tagged RTS is handed down, which is also exactly what a recorder writes
/// to a journal — live and replayed pools traverse the same `ingest` path.
impl NetObserver for MonitorPool {
    fn on_channel_edge(&mut self, node: NodeId, busy: bool, now: SimTime) {
        self.ingest(&Obs::ChannelEdge { node, busy, at: now });
    }

    fn on_tx_start(&mut self, src: NodeId, frame: &Frame, now: SimTime, end: SimTime) {
        self.ingest(&Obs::TxStart { src, frame: frame.clone(), at: now, end });
    }

    fn on_frame_decoded(
        &mut self,
        medium: &Medium,
        at: NodeId,
        frame: &Frame,
        start: SimTime,
        end: SimTime,
    ) {
        if frame.src == self.tagged && frame.is_rts() {
            let ranging = self.ranging_snapshot(medium, start);
            self.ingest(&ranging);
        }
        self.ingest(&Obs::Decoded { at, frame: frame.clone(), start, end });
    }

    fn on_frame_garbled(&mut self, at: NodeId, now: SimTime) {
        self.ingest(&Obs::Garbled { at, now });
    }
}

impl std::fmt::Debug for MonitorPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MonitorPool")
            .field("tagged", &self.tagged)
            .field("members", &self.monitors.len())
            .field("active", &self.active)
            .field("tests", &self.tests.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn template() -> MonitorConfig {
        MonitorConfig {
            sample_size: 5,
            ..MonitorConfig::grid_paper(0, 1, 240.0)
        }
    }

    #[test]
    fn elects_closest_in_range_vantage() {
        let mut pool = MonitorPool::new(0, &[1, 2], template());
        pool.reelect_from(&[(1, 100.0), (2, 240.0)]);
        assert_eq!(pool.active_vantage(), Some(1));
    }

    #[test]
    fn hands_off_when_closest_leaves_range() {
        let mut pool = MonitorPool::new(0, &[1, 2], template());
        pool.reelect_from(&[(1, 100.0), (2, 240.0)]);
        assert_eq!(pool.active_vantage(), Some(1));
        // Vantage 1 wanders out of range.
        pool.reelect_from(&[(1, 800.0), (2, 240.0)]);
        assert_eq!(pool.active_vantage(), Some(2));
        // Everyone out of range: no active vantage.
        pool.reelect_from(&[(1, 800.0), (2, 900.0)]);
        assert_eq!(pool.active_vantage(), None);
    }

    #[test]
    fn exact_distance_ties_elect_the_lowest_id() {
        let mut pool = MonitorPool::new(0, &[5, 2, 9], template());
        pool.reelect_from(&[(2, 150.0), (5, 150.0), (9, 150.0)]);
        assert_eq!(pool.active_vantage(), Some(2));
    }

    #[test]
    fn ranging_without_a_decode_does_not_reelect() {
        let mut pool = MonitorPool::new(0, &[1], template());
        pool.ingest(&Obs::Ranging {
            from: 0,
            to: vec![(1, 100.0)],
            at: SimTime::ZERO,
        });
        // The election is deferred to the next tagged-RTS decode, matching
        // live callback order.
        assert_eq!(pool.active_vantage(), None);
    }

    #[test]
    #[should_panic(expected = "cannot monitor itself")]
    fn tagged_vantage_rejected() {
        MonitorPool::new(0, &[0, 1], template());
    }

    #[test]
    fn empty_pool_rejected() {
        let r = std::panic::catch_unwind(|| MonitorPool::new(0, &[], template()));
        assert!(r.is_err());
    }

    #[test]
    fn diagnosis_starts_clean() {
        let pool = MonitorPool::new(0, &[1, 2], template());
        let d = pool.diagnosis();
        assert_eq!(d.tests_run, 0);
        assert!(!d.is_flagged());
        assert!(pool.violations().is_empty());
    }
}
