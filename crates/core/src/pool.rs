//! Monitoring under mobility: a pool of per-vantage monitors.
//!
//! The paper (Section 5): "We choose a neighbor of the malicious node to
//! monitor its activity. If this neighbor moves out of range, another
//! neighbor is randomly chosen." [`MonitorPool`] realizes that: it keeps a
//! [`Monitor`] at every candidate vantage, designates the vantage currently
//! closest to the tagged node as *active*, and aggregates only the active
//! monitor's back-off samples into one shared hypothesis-test stream.

use crate::monitor::{Diagnosis, Judge, Monitor, MonitorConfig, Violation};
use crate::NodeId;
use mg_dcf::Frame;
use mg_fault::FaultPlan;
use mg_net::NetObserver;
use mg_phy::Medium;
use mg_sim::SimTime;
use mg_stats::signed_rank::signed_rank_test;
use mg_stats::wilcoxon::{rank_sum_test, Alternative, RankSumResult};
use mg_trace::{Counter, EventKind, Metrics, Tracer};
use std::collections::HashMap;

/// A set of monitors for one tagged node, one per candidate vantage, with
/// range-based handoff.
pub struct MonitorPool {
    tagged: NodeId,
    tx_range: f64,
    alpha: f64,
    sample_size: usize,
    judge: Judge,
    monitors: HashMap<NodeId, Monitor>,
    active: Option<NodeId>,
    samples: Vec<(f64, f64)>,
    tests: Vec<RankSumResult>,
    rejections: usize,
    /// Samples contributed per vantage (diagnostic).
    contributed: HashMap<NodeId, usize>,
    /// Last tagged-RTS end seen (virtual timestamp for shared-test records).
    last_seen: SimTime,
    tracer: Tracer,
    metrics: Metrics,
}

impl MonitorPool {
    /// Creates a pool watching `tagged` from every node in `vantages`.
    ///
    /// `template` supplies all per-monitor settings (α, ARMA, regions…);
    /// its `tagged`/`vantage`/`auto_test` fields are overridden per member.
    ///
    /// # Panics
    ///
    /// Panics if `vantages` is empty or contains the tagged node.
    pub fn new(tagged: NodeId, vantages: &[NodeId], template: MonitorConfig) -> Self {
        assert!(!vantages.is_empty(), "a pool needs at least one vantage");
        assert!(
            !vantages.contains(&tagged),
            "the tagged node cannot monitor itself"
        );
        let monitors = vantages
            .iter()
            .map(|&v| {
                let cfg = MonitorConfig {
                    tagged,
                    vantage: v,
                    auto_test: false,
                    ..template
                };
                (v, Monitor::new(cfg))
            })
            .collect();
        MonitorPool {
            tagged,
            tx_range: template.tx_range,
            alpha: template.alpha,
            sample_size: template.sample_size,
            judge: template.judge,
            monitors,
            active: None,
            samples: Vec::new(),
            tests: Vec::new(),
            rejections: 0,
            contributed: HashMap::new(),
            last_seen: SimTime::ZERO,
            tracer: Tracer::disabled(),
            metrics: Metrics::disabled(),
        }
    }

    /// Journals every member's samples/violations and the pool's shared
    /// tests through `tracer`, counting into `metrics`. Both disabled by
    /// default.
    pub fn set_instrumentation(&mut self, tracer: Tracer, metrics: Metrics) {
        for m in self.monitors.values_mut() {
            m.set_instrumentation(tracer.clone(), metrics.clone());
        }
        self.tracer = tracer;
        self.metrics = metrics;
    }

    /// The node this pool watches.
    pub fn tagged(&self) -> NodeId {
        self.tagged
    }

    /// Arms every member monitor with its own deterministic observation
    /// fault injector derived from `plan` (keyed by the member's vantage id,
    /// so fates are identical across solo and fanned-out runs). When the
    /// plan carries observation faults, each member is also
    /// [hardened](Monitor::harden) to require two consecutive anomalous
    /// observations before a deterministic conviction.
    pub fn apply_fault_plan(&mut self, plan: &FaultPlan) {
        let harden = plan.has_observation_faults();
        for (&v, m) in self.monitors.iter_mut() {
            m.set_faults(plan.observer(v as u64));
            if harden {
                m.harden(2);
            }
        }
    }

    /// The candidate vantages (arbitrary order).
    pub fn vantages(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.monitors.keys().copied()
    }

    /// The currently active vantage, if any is in range.
    pub fn active_vantage(&self) -> Option<NodeId> {
        self.active
    }

    /// The member monitor stationed at `vantage`, if it is part of the pool.
    ///
    /// Gives access to per-member state the pooled aggregates fold away —
    /// the background-traffic ARMA estimate, the full sample log, the
    /// member's own deterministic violations.
    pub fn monitor(&self, vantage: NodeId) -> Option<&Monitor> {
        self.monitors.get(&vantage)
    }

    /// Aggregated diagnosis across the pool.
    ///
    /// `violations` is the *maximum* count over members, not the sum: every
    /// in-range vantage independently witnesses the same on-air violation,
    /// and one witness is enough to convict.
    pub fn diagnosis(&self) -> Diagnosis {
        let violations: usize = self
            .monitors
            .values()
            .map(|m| m.violations().len())
            .max()
            .unwrap_or(0);
        Diagnosis {
            tests_run: self.tests.len(),
            rejections: self.rejections,
            violations,
            samples_collected: self.samples.len()
                + self.tests.len() * self.sample_size.min(usize::MAX),
            samples_discarded: self
                .monitors
                .values()
                .map(|m| m.diagnosis().samples_discarded)
                .sum(),
            last_p: self.tests.last().map(|t| t.p_value),
            measured_rho: self
                .active
                .and_then(|v| self.monitors.get(&v))
                .map(|m| m.diagnosis().measured_rho)
                .unwrap_or(0.0),
            uncertain: self
                .monitors
                .values()
                .map(|m| m.diagnosis().uncertain)
                .sum(),
        }
    }

    /// All deterministic violations seen by any pool member.
    pub fn violations(&self) -> Vec<Violation> {
        self.monitors
            .values()
            .flat_map(|m| m.violations().iter().copied())
            .collect()
    }

    /// Hypothesis-test results so far.
    pub fn tests(&self) -> &[RankSumResult] {
        &self.tests
    }

    /// How many samples each vantage contributed (handoff diagnostic).
    pub fn contributions(&self) -> &HashMap<NodeId, usize> {
        &self.contributed
    }

    /// Recomputes the active vantage from current positions: the in-range
    /// vantage closest to the tagged node.
    fn reelect(&mut self, medium: &Medium) {
        let tp = medium.position(self.tagged);
        self.active = self
            .monitors
            .keys()
            .map(|&v| (v, tp.distance(medium.position(v))))
            .filter(|&(_, d)| d <= self.tx_range)
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("no NaN distances"))
            .map(|(v, _)| v);
        // Keep the elected monitor's region model honest about the distance.
        if let Some(v) = self.active {
            let d = tp.distance(medium.position(v)).max(1.0);
            if let Some(m) = self.monitors.get_mut(&v) {
                m.set_pair_distance(d);
            }
        }
    }

    /// Pulls fresh samples from the active monitor and runs the shared test
    /// when enough have accumulated.
    fn harvest(&mut self) {
        let Some(v) = self.active else { return };
        let fresh = match self.monitors.get_mut(&v) {
            Some(m) => m.drain_samples(),
            None => Vec::new(),
        };
        if !fresh.is_empty() {
            *self.contributed.entry(v).or_insert(0) += fresh.len();
            self.samples.extend(fresh);
        }
        // Drop stale samples from inactive vantages so they never leak into
        // a later harvest.
        for (&u, m) in self.monitors.iter_mut() {
            if u != v {
                let _ = m.drain_samples();
            }
        }
        while self.samples.len() >= self.sample_size {
            let batch: Vec<(f64, f64)> = self.samples.drain(..self.sample_size).collect();
            let xs: Vec<f64> = batch.iter().map(|&(x, _)| x).collect();
            let ys: Vec<f64> = batch.iter().map(|&(_, y)| y).collect();
            let r = match self.judge {
                Judge::RankSum => rank_sum_test(&ys, &xs, Alternative::Less),
                Judge::SignedRank => {
                    let sr = signed_rank_test(&ys, &xs, Alternative::Less);
                    // Same common-shape report as `Monitor::run_test`.
                    RankSumResult {
                        w: sr.w_plus,
                        u: sr.w_plus,
                        p_value: sr.p_value,
                        method: sr.method,
                        n1: sr.n_used,
                        n2: sr.n_used,
                    }
                }
            };
            let reject = r.p_value < self.alpha;
            if reject {
                self.rejections += 1;
            }
            self.tracer.emit(
                self.last_seen.as_nanos(),
                Some(self.tagged),
                EventKind::MonitorTest { p: r.p_value, reject },
            );
            self.metrics.bump(self.tagged, Counter::MonitorTests);
            self.tests.push(r);
        }
    }
}

impl NetObserver for MonitorPool {
    fn on_channel_edge(&mut self, medium: &Medium, node: NodeId, busy: bool, now: SimTime) {
        if let Some(m) = self.monitors.get_mut(&node) {
            m.on_channel_edge(medium, node, busy, now);
        }
    }

    fn on_tx_start(
        &mut self,
        medium: &Medium,
        src: NodeId,
        frame: &Frame,
        now: SimTime,
        end: SimTime,
    ) {
        if let Some(m) = self.monitors.get_mut(&src) {
            m.on_tx_start(medium, src, frame, now, end);
        }
    }

    fn on_frame_decoded(
        &mut self,
        medium: &Medium,
        at: NodeId,
        frame: &Frame,
        start: SimTime,
        end: SimTime,
    ) {
        if let Some(m) = self.monitors.get_mut(&at) {
            m.on_frame_decoded(medium, at, frame, start, end);
        }
        if frame.src == self.tagged && frame.is_rts() {
            self.last_seen = end;
            self.reelect(medium);
            self.harvest();
        }
    }

    fn on_frame_garbled(&mut self, medium: &Medium, at: NodeId, now: SimTime) {
        if let Some(m) = self.monitors.get_mut(&at) {
            m.on_frame_garbled(medium, at, now);
        }
    }
}

impl std::fmt::Debug for MonitorPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MonitorPool")
            .field("tagged", &self.tagged)
            .field("members", &self.monitors.len())
            .field("active", &self.active)
            .field("tests", &self.tests.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mg_geom::Vec2;
    use mg_phy::{PropagationModel, RadioParams};

    fn medium(positions: Vec<Vec2>) -> Medium {
        let prop = PropagationModel::free_space();
        Medium::new(prop, RadioParams::paper_default(&prop), positions)
    }

    fn template() -> MonitorConfig {
        MonitorConfig {
            sample_size: 5,
            ..MonitorConfig::grid_paper(0, 1, 240.0)
        }
    }

    #[test]
    fn elects_closest_in_range_vantage() {
        let med = medium(vec![
            Vec2::new(0.0, 0.0),   // tagged
            Vec2::new(100.0, 0.0), // close vantage
            Vec2::new(240.0, 0.0), // far vantage
        ]);
        let mut pool = MonitorPool::new(0, &[1, 2], template());
        pool.reelect(&med);
        assert_eq!(pool.active_vantage(), Some(1));
    }

    #[test]
    fn hands_off_when_closest_leaves_range() {
        let mut med = medium(vec![
            Vec2::new(0.0, 0.0),
            Vec2::new(100.0, 0.0),
            Vec2::new(240.0, 0.0),
        ]);
        let mut pool = MonitorPool::new(0, &[1, 2], template());
        pool.reelect(&med);
        assert_eq!(pool.active_vantage(), Some(1));
        med.set_position(1, Vec2::new(800.0, 0.0));
        pool.reelect(&med);
        assert_eq!(pool.active_vantage(), Some(2));
        med.set_position(2, Vec2::new(0.0, 900.0));
        pool.reelect(&med);
        assert_eq!(pool.active_vantage(), None);
    }

    #[test]
    #[should_panic(expected = "cannot monitor itself")]
    fn tagged_vantage_rejected() {
        MonitorPool::new(0, &[0, 1], template());
    }

    #[test]
    fn empty_pool_rejected() {
        let r = std::panic::catch_unwind(|| MonitorPool::new(0, &[], template()));
        assert!(r.is_err());
    }

    #[test]
    fn diagnosis_starts_clean() {
        let pool = MonitorPool::new(0, &[1, 2], template());
        let d = pool.diagnosis();
        assert_eq!(d.tests_run, 0);
        assert!(!d.is_flagged());
        assert!(pool.violations().is_empty());
    }
}
