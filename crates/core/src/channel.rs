//! Channel-occupancy tracking from busy/idle edges.
//!
//! The medium reports *edges* (state changes); these trackers integrate them
//! into durations, slot counts and the joint statistics the paper's Figures
//! 3–4 are built from.

use mg_sim::{SimDuration, SimTime};

/// Integrates one node's carrier-sense timeline.
///
/// Feed it every busy/idle edge for the node (and, optionally, the node's
/// own transmissions, which the node perceives as occupied air even though
/// its receiver is off).
#[derive(Clone, Debug)]
pub struct ChannelTracker {
    busy: bool,
    /// The node's own transmission occupies the channel until this instant.
    own_until: SimTime,
    last: SimTime,
    busy_ns: u64,
    idle_ns: u64,
    busy_runs: u64,
}

impl ChannelTracker {
    /// A tracker starting idle at `t = 0`.
    pub fn new() -> Self {
        ChannelTracker {
            busy: false,
            own_until: SimTime::ZERO,
            last: SimTime::ZERO,
            busy_ns: 0,
            idle_ns: 0,
            busy_runs: 0,
        }
    }

    /// Whether the channel is busy *now* (foreign energy or own tx).
    pub fn is_busy(&self, now: SimTime) -> bool {
        self.busy || now < self.own_until
    }

    /// Integrates up to `now` under the current state.
    pub fn advance(&mut self, now: SimTime) {
        if now <= self.last {
            return;
        }
        // Split the segment at the own-tx boundary if it falls inside.
        if self.last < self.own_until && self.own_until < now {
            let own_part = (self.own_until - self.last).as_nanos();
            self.busy_ns += own_part;
            self.last = self.own_until;
        }
        let seg = (now - self.last).as_nanos();
        if self.busy || now <= self.own_until {
            self.busy_ns += seg;
        } else {
            self.idle_ns += seg;
        }
        self.last = now;
    }

    /// Records a carrier-sense edge at `now`.
    pub fn on_edge(&mut self, busy: bool, now: SimTime) {
        // A busy→idle transition only counts as a completed busy run if the
        // busy period actually overlapped this tracker's accumulation span
        // (windows fork mid-stream; a run that ended at or before the fork
        // belongs to the previous window).
        let overlapped = now > self.last;
        self.advance(now);
        if self.busy && !busy && overlapped {
            self.busy_runs += 1;
        }
        self.busy = busy;
    }

    /// Records that the node transmits over `[start, end]`.
    pub fn on_own_tx(&mut self, start: SimTime, end: SimTime) {
        self.advance(start);
        if end > self.own_until {
            self.own_until = end;
        }
    }

    /// Total busy time accumulated.
    pub fn busy_time(&self) -> SimDuration {
        SimDuration::from_nanos(self.busy_ns)
    }

    /// Total idle time accumulated.
    pub fn idle_time(&self) -> SimDuration {
        SimDuration::from_nanos(self.idle_ns)
    }

    /// Number of completed busy periods (busy→idle transitions) — a proxy
    /// for how many times a neighbor froze and re-deferred (each resume
    /// costs it one DIFS of idle that is not a back-off decrement).
    pub fn busy_runs(&self) -> u64 {
        self.busy_runs
    }

    /// Busy fraction ∈ [0, 1] — the paper's measured traffic intensity
    /// ρ = B/N.
    pub fn rho(&self) -> f64 {
        let total = self.busy_ns + self.idle_ns;
        if total == 0 {
            0.0
        } else {
            self.busy_ns as f64 / total as f64
        }
    }

    /// Resets the accumulated durations (state and clock are kept) — used
    /// when a measurement window closes.
    pub fn reset_counts(&mut self) {
        self.busy_ns = 0;
        self.idle_ns = 0;
        self.busy_runs = 0;
    }

    /// A fresh tracker that inherits this one's *state* (busy flag, own-tx
    /// deadline) but starts accumulating at `t` — the primitive behind the
    /// monitor's per-back-off measurement windows. `t` must not precede this
    /// tracker's integration point.
    pub fn fork_at(&self, t: SimTime) -> ChannelTracker {
        ChannelTracker {
            busy: self.busy,
            own_until: self.own_until,
            last: t.max(self.last),
            busy_ns: 0,
            idle_ns: 0,
            busy_runs: 0,
        }
    }
}

impl Default for ChannelTracker {
    fn default() -> Self {
        Self::new()
    }
}

/// Joint carrier-sense statistics for a (sender, monitor) pair — the ground
/// truth for the paper's conditional probabilities in Figures 3–4.
///
/// Periods in which either node is itself transmitting are excluded: a
/// transmitting node is not *sensing*, and the paper's quantities condition
/// on both nodes listening.
#[derive(Clone, Debug)]
pub struct JointTracker {
    s_busy: bool,
    r_busy: bool,
    s_tx_until: SimTime,
    r_tx_until: SimTime,
    last: SimTime,
    gate: bool,
    /// Durations (ns) indexed by [s_busy][r_busy].
    t: [[u64; 2]; 2],
}

impl JointTracker {
    /// A tracker with both nodes idle at `t = 0`.
    pub fn new() -> Self {
        JointTracker {
            s_busy: false,
            r_busy: false,
            s_tx_until: SimTime::ZERO,
            r_tx_until: SimTime::ZERO,
            last: SimTime::ZERO,
            gate: true,
            t: [[0; 2]; 2],
        }
    }

    fn integrate(&mut self, now: SimTime) {
        if now <= self.last {
            return;
        }
        // Split at tx-end boundaries that fall inside the segment, so the
        // exclusion window is exact.
        let mut cuts = [self.s_tx_until, self.r_tx_until];
        cuts.sort();
        for cut in cuts {
            if self.last < cut && cut < now {
                self.account(self.last, cut);
                self.last = cut;
            }
        }
        self.account(self.last, now);
        self.last = now;
    }

    fn account(&mut self, from: SimTime, to: SimTime) {
        if from >= to {
            return;
        }
        // Exclude sub-segments where either node transmits. Segment bounds
        // are already split at tx ends, so a simple midpoint test suffices.
        if from < self.s_tx_until || from < self.r_tx_until {
            return;
        }
        if !self.gate {
            return;
        }
        let ns = (to - from).as_nanos();
        self.t[usize::from(self.s_busy)][usize::from(self.r_busy)] += ns;
    }

    /// Records a carrier-sense edge for the sender.
    pub fn on_s_edge(&mut self, busy: bool, now: SimTime) {
        self.integrate(now);
        self.s_busy = busy;
    }

    /// Records a carrier-sense edge for the monitor.
    pub fn on_r_edge(&mut self, busy: bool, now: SimTime) {
        self.integrate(now);
        self.r_busy = busy;
    }

    /// Records that the sender transmits over `[start, end]`.
    pub fn on_s_tx(&mut self, start: SimTime, end: SimTime) {
        self.integrate(start);
        self.s_tx_until = self.s_tx_until.max(end);
    }

    /// Records that the monitor transmits over `[start, end]`.
    pub fn on_r_tx(&mut self, start: SimTime, end: SimTime) {
        self.integrate(start);
        self.r_tx_until = self.r_tx_until.max(end);
    }

    /// Opens or closes the accounting gate at `now`: time is only accounted
    /// while the gate is open. Used to condition the statistics on specific
    /// periods (e.g. the sender's back-off windows).
    pub fn set_gate(&mut self, open: bool, now: SimTime) {
        self.integrate(now);
        self.gate = open;
    }

    /// Flushes the timeline up to `now` (call before reading probabilities).
    pub fn finish(&mut self, now: SimTime) {
        self.integrate(now);
    }

    /// Empirical `P(S busy | R idle)` — what Fig. 3(a)/4(a) plot from
    /// simulation.
    pub fn p_busy_given_idle(&self) -> f64 {
        ratio(self.t[1][0], self.t[1][0] + self.t[0][0])
    }

    /// Empirical `P(S idle | R busy)` — what Fig. 3(b)/4(b) plot.
    pub fn p_idle_given_busy(&self) -> f64 {
        ratio(self.t[0][1], self.t[0][1] + self.t[1][1])
    }

    /// The monitor-side traffic intensity over the joint-listening time.
    pub fn r_rho(&self) -> f64 {
        let busy = self.t[0][1] + self.t[1][1];
        let idle = self.t[0][0] + self.t[1][0];
        ratio(busy, busy + idle)
    }

    /// Total time both nodes were listening.
    pub fn observed(&self) -> SimDuration {
        SimDuration::from_nanos(self.t.iter().flatten().sum())
    }
}

impl Default for JointTracker {
    fn default() -> Self {
        Self::new()
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(t: u64) -> SimTime {
        SimTime::from_micros(t)
    }

    #[test]
    fn tracker_integrates_edges() {
        let mut c = ChannelTracker::new();
        c.on_edge(true, us(100)); // idle 0..100
        c.on_edge(false, us(350)); // busy 100..350
        c.advance(us(500)); // idle 350..500
        assert_eq!(c.idle_time(), SimDuration::from_micros(250));
        assert_eq!(c.busy_time(), SimDuration::from_micros(250));
        assert!((c.rho() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn own_tx_counts_as_busy_and_splits_segments() {
        let mut c = ChannelTracker::new();
        c.on_own_tx(us(100), us(200));
        // Integrate far past the tx end: 0..100 idle, 100..200 own (busy),
        // 200..400 idle.
        c.advance(us(400));
        assert_eq!(c.busy_time(), SimDuration::from_micros(100));
        assert_eq!(c.idle_time(), SimDuration::from_micros(300));
    }

    #[test]
    fn reset_counts_keeps_state() {
        let mut c = ChannelTracker::new();
        c.on_edge(true, us(10));
        c.advance(us(20));
        c.reset_counts();
        assert_eq!(c.busy_time(), SimDuration::ZERO);
        c.advance(us(30));
        assert_eq!(c.busy_time(), SimDuration::from_micros(10));
    }

    #[test]
    fn joint_conditionals() {
        let mut j = JointTracker::new();
        // 0..100: both idle. 100..200: S busy, R idle. 200..300: both busy.
        // 300..400: S idle, R busy.
        j.on_s_edge(true, us(100));
        j.on_r_edge(true, us(200));
        j.on_s_edge(false, us(300));
        j.on_r_edge(false, us(400));
        j.finish(us(400));
        // P(S busy | R idle) = 100 / (100 + 100) = 0.5
        assert!((j.p_busy_given_idle() - 0.5).abs() < 1e-12);
        // P(S idle | R busy) = 100 / (100 + 100) = 0.5
        assert!((j.p_idle_given_busy() - 0.5).abs() < 1e-12);
        assert_eq!(j.observed(), SimDuration::from_micros(400));
    }

    #[test]
    fn joint_excludes_tx_periods() {
        let mut j = JointTracker::new();
        j.on_s_tx(us(100), us(200));
        j.finish(us(300));
        // Only 0..100 and 200..300 count.
        assert_eq!(j.observed(), SimDuration::from_micros(200));
    }

    #[test]
    fn joint_handles_empty() {
        let j = JointTracker::new();
        assert_eq!(j.p_busy_given_idle(), 0.0);
        assert_eq!(j.p_idle_given_busy(), 0.0);
    }
}
