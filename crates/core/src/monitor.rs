//! The per-neighbor misbehavior monitor.
//!
//! A [`Monitor`] sits at a *vantage* node and watches one *tagged* neighbor,
//! consuming exactly what a real co-located process could observe:
//!
//! * the vantage node's own carrier-sense edges (busy/idle),
//! * frames decodable at the vantage (including the tagged node's RTSs with
//!   their verifiable fields),
//! * the vantage node's own transmissions,
//! * garbled receptions (for the collision-rate / density estimate).
//!
//! From this it reconstructs, for every RTS the tagged node sends, the
//! **back-off window** that preceded it — anchored at the end of the tagged
//! node's previous exchange (or at its CTS timeout for a retry) — and
//! converts the vantage's idle/busy slot counts in that window into an
//! *estimated* count of slots the tagged node could have decremented
//! (Eqs. 1–5). The estimates are tested against the dictated PRS values
//! with a one-sided Wilcoxon rank-sum test.
//!
//! Five deterministic checks run alongside (Section 4 of the paper, plus
//! two this reproduction added): sequence-offset commitment, rate
//! feasibility of offset advances, attempt-number/MD5 consistency, the
//! "blatant" timing check — a window physically shorter than
//! `DIFS + dictated·slot` cannot be produced by a compliant node, because
//! freezing only ever lengthens the countdown — and the basic-access
//! evasion check (unannounced DATA).

use crate::analysis::AnalyticModel;
use crate::channel::ChannelTracker;
use crate::density::DensityEstimator;
use crate::session::DiagnosisDelta;
use crate::NodeId;
use mg_dcf::{Dest, Frame, FrameKind, MacTiming};
use mg_crypto::VerifiableSequence;
use mg_fault::{FrameFate, ObsFaults};
use mg_net::NetObserver;
use mg_obs::{Obs, ObsSink};
use mg_phy::Medium;
use mg_geom::PreclusionRule;
use mg_sim::SimTime;
use mg_trace::{Counter, EventKind, Metrics, Tracer};
use mg_stats::filter::Arma;
use mg_stats::signed_rank::signed_rank_test;
use mg_stats::wilcoxon::{rank_sum_test, Alternative, RankSumResult};

/// How the monitor obtains the node counts (n, k, m, j) of the analytic
/// model.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum NodeCounts {
    /// The paper's grid setting: n = k = m = j = 5, fixed.
    FixedPaper,
    /// Effective counts calibrated to this repository's simulator
    /// (`n + k = 1`): carrier sense serializes contenders inside one
    /// region, so the paper's independent-queue assumption overcounts
    /// concurrent transmitters. See EXPERIMENTS.md (Fig. 3 calibration).
    SimCalibrated,
    /// Explicit counts.
    Fixed {
        /// Nodes in A2.
        n: f64,
        /// Nodes in A1.
        k: f64,
        /// Nodes in A4.
        m: f64,
        /// Nodes in A5.
        j: f64,
    },
    /// Estimate counts online from the Bianchi–Tinnirello density estimate
    /// (the paper's random-topology setting).
    FromDensity,
}

/// Which hypothesis test judges the collected samples.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Judge {
    /// The paper's unpaired Wilcoxon rank-sum test.
    RankSum,
    /// Paired Wilcoxon signed-rank on per-window differences (an extension:
    /// exploits the (dictated, estimated) pairing for extra power).
    SignedRank,
}

/// A deterministically proven protocol violation.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum Violation {
    /// The announced sequence offset did not move forward.
    SequenceReuse {
        /// Last logical offset the monitor verified.
        previous: u64,
        /// The offense.
        seen: u64,
        /// When it was observed.
        at: SimTime,
    },
    /// A retransmission of the same DATA frame (same MD5) without
    /// incrementing the attempt number — the attempt-cheating attack.
    AttemptMismatch {
        /// Attempt number announced for the previous copy.
        previous: u8,
        /// Attempt number announced now.
        seen: u8,
        /// When it was observed.
        at: SimTime,
    },
    /// The announced sequence offset advanced further than the channel
    /// physically allows: each draw costs at least one DIFS + RTS airtime,
    /// so a wire-offset jump can be checked against the elapsed time. This
    /// is what exposes "rewinding" the 13-bit counter (a rewind is
    /// indistinguishable from a wrap *except* by rate).
    ImplausibleAdvance {
        /// Claimed number of draws consumed.
        jump: u64,
        /// Maximum draws the elapsed time permits.
        feasible: u64,
        /// When it was observed.
        at: SimTime,
    },
    /// The tagged node keeps sending unicast DATA without a preceding RTS —
    /// bypassing the verifiable-back-off announcements entirely (legacy
    /// basic access is not allowed by the paper's modified MAC).
    UnverifiedData {
        /// DATA frames observed with no RTS announcing them.
        unverified: u64,
        /// All unicast DATA frames observed from the tagged node.
        total: u64,
        /// When the threshold was crossed.
        at: SimTime,
    },
    /// The back-off window was physically shorter than the dictated
    /// countdown could ever be (freezing only lengthens it).
    BlatantCountdown {
        /// The dictated back-off in slots.
        dictated: u16,
        /// Total observed window length, in slots.
        observed_slots: f64,
        /// When it was observed.
        at: SimTime,
    },
}

impl Violation {
    /// When the violation was observed.
    pub fn at(&self) -> SimTime {
        match *self {
            Violation::SequenceReuse { at, .. }
            | Violation::AttemptMismatch { at, .. }
            | Violation::ImplausibleAdvance { at, .. }
            | Violation::UnverifiedData { at, .. }
            | Violation::BlatantCountdown { at, .. } => at,
        }
    }

    /// Stable snake_case tag for this violation kind (used in trace output).
    pub fn kind_str(&self) -> &'static str {
        match self {
            Violation::SequenceReuse { .. } => "sequence_reuse",
            Violation::AttemptMismatch { .. } => "attempt_mismatch",
            Violation::ImplausibleAdvance { .. } => "implausible_advance",
            Violation::UnverifiedData { .. } => "unverified_data",
            Violation::BlatantCountdown { .. } => "blatant_countdown",
        }
    }
}

/// Monitor configuration.
#[derive(Clone, Copy, Debug)]
pub struct MonitorConfig {
    /// The node under observation.
    pub tagged: NodeId,
    /// The observing node.
    pub vantage: NodeId,
    /// Distance between the pair in meters (drives the region model).
    pub pair_distance: f64,
    /// Carrier-sensing range (Table 1: 550 m).
    pub cs_range: f64,
    /// Transmission range (Table 1: 250 m) — used by the density estimate.
    pub tx_range: f64,
    /// Significance level of the rank-sum test.
    pub alpha: f64,
    /// Back-off samples per hypothesis test (the paper sweeps 10–100).
    pub sample_size: usize,
    /// ARMA smoothing α (paper: 0.995).
    pub arma_alpha: f64,
    /// ARMA moving-average window `s`, in slots.
    pub arma_window: usize,
    /// Construction of the preclusion zones A1/A4.
    pub preclusion: PreclusionRule,
    /// Source of the analytic node counts.
    pub counts: NodeCounts,
    /// MAC timing (slot, DIFS, airtimes…).
    pub timing: MacTiming,
    /// Whether the deterministic timing check runs.
    pub blatant_check: bool,
    /// Slack (slots) before the blatant check fires.
    pub blatant_tolerance: f64,
    /// Estimated windows above `cw_max ×` this factor are discarded as
    /// queue-idle contamination.
    pub discard_factor: f64,
    /// Weight of the EIFS compensation: after a collision in its airspace a
    /// node defers EIFS instead of DIFS, adding idle time that is not a
    /// decrement. Each garbled reception *at the vantage* during a window
    /// subtracts `(EIFS − DIFS) × eifs_weight` slots from the estimate
    /// (the weight discounts collisions the tagged node did not perceive).
    pub eifs_weight: f64,
    /// Run the rank-sum test automatically every `sample_size` samples.
    /// Disable when a [`crate::MonitorPool`] aggregates samples itself.
    pub auto_test: bool,
    /// Which hypothesis test judges the samples (paper: rank-sum).
    pub judge: Judge,
    /// Whether every unicast DATA frame must be announced by an RTS (the
    /// paper's protocol). When set, persistent basic-access traffic from
    /// the tagged node raises [`Violation::UnverifiedData`].
    pub require_rts: bool,
    /// After not hearing the tagged node for this long (mobility, deep
    /// fades), the monitor re-synchronizes: sequence bookkeeping resets and
    /// the first window after the gap yields no sample — the unobserved
    /// stretch may span sequence wraps and queue-idle time.
    pub resync_after: mg_sim::SimDuration,
    /// Consecutive anomalous observations required before the deterministic
    /// checks convict. At the default of 1 every anomaly flags immediately
    /// (the paper's behavior on a clean channel). Under injected observation
    /// faults a single bit-flipped RTS can *look* like sequence reuse, so
    /// fault-aware runs raise this to 2: an isolated anomaly is recorded as
    /// *uncertain* (its sample withheld, the statistical path untouched) and
    /// only a repeated one convicts — see [`Diagnosis::uncertain`].
    pub confirm_anomalies: usize,
}

impl MonitorConfig {
    /// The paper's grid-experiment configuration for a tagged pair at the
    /// given distance.
    pub fn grid_paper(tagged: NodeId, vantage: NodeId, pair_distance: f64) -> Self {
        MonitorConfig {
            tagged,
            vantage,
            pair_distance,
            cs_range: 550.0,
            tx_range: 250.0,
            alpha: 0.01,
            sample_size: 50,
            arma_alpha: 0.995,
            arma_window: 1000,
            preclusion: PreclusionRule::sim_calibrated(),
            counts: NodeCounts::SimCalibrated,
            timing: MacTiming::paper_default(),
            blatant_check: true,
            blatant_tolerance: 2.0,
            discard_factor: 1.5,
            eifs_weight: 0.5,
            auto_test: true,
            judge: Judge::RankSum,
            require_rts: true,
            resync_after: mg_sim::SimDuration::from_secs(2),
            confirm_anomalies: 1,
        }
    }

    /// The random-topology configuration: node counts from the online
    /// density estimate.
    pub fn random_paper(tagged: NodeId, vantage: NodeId, pair_distance: f64) -> Self {
        MonitorConfig {
            counts: NodeCounts::FromDensity,
            ..Self::grid_paper(tagged, vantage, pair_distance)
        }
    }

    /// This configuration with `sample_size` replaced — the knob sample-size
    /// sweeps turn while everything else stays fixed.
    pub fn with_sample_size(self, sample_size: usize) -> Self {
        MonitorConfig { sample_size, ..self }
    }

    /// This configuration with the tagged→vantage distance replaced.
    pub fn with_pair_distance(self, pair_distance: f64) -> Self {
        MonitorConfig { pair_distance, ..self }
    }

    /// This configuration with the deterministic-conviction threshold raised
    /// to at least `confirm` consecutive anomalous observations (never
    /// lowered).
    pub fn hardened(self, confirm: usize) -> Self {
        MonitorConfig {
            confirm_anomalies: self.confirm_anomalies.max(confirm),
            ..self
        }
    }
}

/// Aggregate outcome of a monitoring session.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct Diagnosis {
    /// Hypothesis tests performed.
    pub tests_run: usize,
    /// Tests that rejected H0 ("well-behaved").
    pub rejections: usize,
    /// Deterministic violations recorded.
    pub violations: usize,
    /// Back-off samples collected (post-filtering).
    pub samples_collected: usize,
    /// Samples discarded as queue-idle contaminated.
    pub samples_discarded: usize,
    /// p-value of the most recent test.
    pub last_p: Option<f64>,
    /// The monitor's measured traffic intensity ρ (busy fraction).
    pub measured_rho: f64,
    /// Anomalous observations held back below the confirmation threshold
    /// ([`MonitorConfig::confirm_anomalies`]): the deterministic checks
    /// fired but the observation could not be trusted, so no conviction was
    /// recorded and no sample was taken from it.
    pub uncertain: usize,
}

impl Diagnosis {
    /// Whether the tagged node has been flagged (statistically or
    /// deterministically).
    pub fn is_flagged(&self) -> bool {
        self.rejections > 0 || self.violations > 0
    }

    /// Fraction of tests that rejected H0.
    pub fn rejection_rate(&self) -> f64 {
        if self.tests_run == 0 {
            0.0
        } else {
            self.rejections as f64 / self.tests_run as f64
        }
    }
}

#[derive(Clone, Copy, Debug)]
struct RtsRecord {
    logical: u64,
    attempt: u8,
    md: [u8; 16],
    /// When this RTS ended (reference point for the rate-feasibility check).
    at: SimTime,
}

/// The per-neighbor monitor (see module docs). Implements
/// [`mg_net::NetObserver`] so it can be plugged directly into a `World`.
pub struct Monitor {
    cfg: MonitorConfig,
    prs: VerifiableSequence,
    chan: ChannelTracker,
    rho_filter: Arma,
    /// Cumulative busy/idle time inside back-off windows (background-only
    /// traffic; the tagged node never transmits during its own back-off).
    win_busy_total: u64,
    win_idle_total: u64,
    density: DensityEstimator,

    anchor: Option<SimTime>,
    win: Option<ChannelTracker>,
    last_rts: Option<RtsRecord>,
    /// Garbled receptions heard at the vantage, total and at window open.
    garbles_total: u64,
    garbles_at_window_open: u64,
    /// Last instant any frame from the tagged node was decoded.
    last_tagged_seen: Option<SimTime>,
    /// RTS-before-DATA bookkeeping for the basic-access evasion check.
    rts_pending: bool,
    data_seen: u64,
    data_unverified: u64,
    unverified_flagged: bool,

    /// Collected (dictated, estimated) back-off pairs awaiting a test.
    pending: Vec<(f64, f64)>,
    /// All samples ever collected (kept for offline analysis / benches).
    all_samples: Vec<(f64, f64)>,
    tests: Vec<RankSumResult>,
    rejections: usize,
    violations: Vec<Violation>,
    discarded: usize,
    /// Observation-boundary fault injector (chaos testing). The world is
    /// unchanged — only what this monitor perceives.
    faults: Option<ObsFaults>,
    /// Consecutive anomalous observations (feeds the confirmation gate).
    anomaly_streak: usize,
    uncertain: usize,
    /// Whether the latest observation left the monitor in the uncertain
    /// regime (an unconfirmed anomaly) — drives the
    /// [`DiagnosisDelta::UncertaintyEntered`]/`Left` transitions.
    in_uncertain: bool,
    /// Incremental delta buffer, drained by [`crate::DetectorSession`].
    /// Disabled (and empty) by default so batch-driven monitors pay nothing.
    emit_deltas: bool,
    deltas: Vec<DiagnosisDelta>,
    tracer: Tracer,
    metrics: Metrics,
}

impl Monitor {
    /// Creates a monitor for `cfg.tagged`, observing from `cfg.vantage`,
    /// with an observation-boundary fault injector installed from birth.
    /// Faults apply to what *this monitor perceives* — dropped frames never
    /// reach its estimators, corrupted tagged RTSs arrive with commitment
    /// bits flipped — while the simulated world runs unchanged. Typically
    /// derived from a plan via [`mg_fault::FaultPlan::observer`]; `None`
    /// observes faithfully.
    pub fn with_faults(cfg: MonitorConfig, faults: Option<ObsFaults>) -> Self {
        let mut m = Monitor::new(cfg);
        m.faults = faults;
        m
    }

    /// Creates a monitor for `cfg.tagged`, observing from `cfg.vantage`.
    pub fn new(cfg: MonitorConfig) -> Self {
        Monitor {
            prs: VerifiableSequence::new(cfg.tagged as u64),
            chan: ChannelTracker::new(),
            rho_filter: Arma::new(cfg.arma_alpha, cfg.arma_window),
            win_busy_total: 0,
            win_idle_total: 0,
            density: DensityEstimator::new(cfg.timing.cw_min, 5),
            anchor: None,
            win: None,
            last_rts: None,
            garbles_total: 0,
            garbles_at_window_open: 0,
            last_tagged_seen: None,
            rts_pending: false,
            data_seen: 0,
            data_unverified: 0,
            unverified_flagged: false,
            pending: Vec::new(),
            all_samples: Vec::new(),
            tests: Vec::new(),
            rejections: 0,
            violations: Vec::new(),
            discarded: 0,
            faults: None,
            anomaly_streak: 0,
            uncertain: 0,
            in_uncertain: false,
            emit_deltas: false,
            deltas: Vec::new(),
            tracer: Tracer::disabled(),
            metrics: Metrics::disabled(),
            cfg,
        }
    }

    /// Journals this monitor's samples, tests, and violations through
    /// `tracer` and counts them into `metrics` (node-scoped to the tagged
    /// node). Both disabled by default.
    pub fn set_instrumentation(&mut self, tracer: Tracer, metrics: Metrics) {
        self.tracer = tracer;
        self.metrics = metrics;
    }

    /// The configuration.
    pub fn config(&self) -> &MonitorConfig {
        &self.cfg
    }

    /// Internal mobility path: the pool's hand-off election updates the
    /// elected member's region model through here.
    pub(crate) fn update_pair_distance(&mut self, d: f64) {
        self.cfg.pair_distance = d;
    }

    /// Internal fault path (see [`Monitor::with_faults`]).
    pub(crate) fn install_faults(&mut self, faults: Option<ObsFaults>) {
        self.faults = faults;
    }

    /// Internal confirmation path (see [`MonitorConfig::hardened`]).
    pub(crate) fn raise_confirmation(&mut self, confirm: usize) {
        self.cfg.confirm_anomalies = self.cfg.confirm_anomalies.max(confirm);
    }

    /// Switches the monitor onto the incremental path: every state change is
    /// additionally journaled as a [`DiagnosisDelta`]. Emission is purely
    /// additive — the detector's decisions and snapshots are bit-identical
    /// with or without it.
    pub(crate) fn enable_deltas(&mut self) {
        self.emit_deltas = true;
    }

    /// Moves the accumulated deltas (in emission order) into `out`.
    pub(crate) fn take_deltas_into(&mut self, out: &mut Vec<DiagnosisDelta>) {
        out.append(&mut self.deltas);
    }

    #[inline]
    fn delta(&mut self, d: DiagnosisDelta) {
        if self.emit_deltas {
            self.deltas.push(d);
        }
    }

    /// The running diagnosis.
    pub fn diagnosis(&self) -> Diagnosis {
        Diagnosis {
            tests_run: self.tests.len(),
            rejections: self.rejections,
            violations: self.violations.len(),
            samples_collected: self.all_samples.len(),
            samples_discarded: self.discarded,
            last_p: self.tests.last().map(|t| t.p_value),
            measured_rho: self.chan.rho(),
            uncertain: self.uncertain,
        }
    }

    /// Deterministic violations recorded so far.
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// Hypothesis-test results so far.
    pub fn tests(&self) -> &[RankSumResult] {
        &self.tests
    }

    /// All `(dictated, estimated)` samples collected so far.
    pub fn samples(&self) -> &[(f64, f64)] {
        &self.all_samples
    }

    /// Removes and returns samples not yet consumed by a test — used by
    /// [`crate::MonitorPool`] (configure `auto_test: false`).
    pub fn drain_samples(&mut self) -> Vec<(f64, f64)> {
        std::mem::take(&mut self.pending)
    }

    /// The ARMA-smoothed **background** traffic intensity: slot samples come
    /// from back-off windows only, during which the tagged node is silent —
    /// the intensity the analytic model's queue-occupancy terms need. Falls
    /// back to the cumulative window busy fraction until the filter warms up.
    pub fn rho(&self) -> f64 {
        if self.rho_filter.is_warm() {
            self.rho_filter.value()
        } else {
            let total = self.win_busy_total + self.win_idle_total;
            if total == 0 {
                0.0
            } else {
                self.win_busy_total as f64 / total as f64
            }
        }
    }

    /// The overall busy fraction at the vantage (includes the tagged node's
    /// own transmissions) — the paper's headline "load" axis.
    pub fn overall_rho(&self) -> f64 {
        self.chan.rho()
    }

    /// The Bianchi–Tinnirello density estimator.
    pub fn density_estimator(&self) -> &DensityEstimator {
        &self.density
    }

    /// The analytic model the monitor currently applies.
    pub fn model(&self) -> AnalyticModel {
        let d = self.cfg.pair_distance;
        let cs = self.cfg.cs_range;
        match self.cfg.counts {
            NodeCounts::FixedPaper => AnalyticModel::grid_paper(d, cs, self.cfg.preclusion),
            NodeCounts::SimCalibrated => AnalyticModel {
                // Distance-scaled calibration: the closer the pair, the more
                // their channel views coincide (see PreclusionRule docs).
                regions: mg_geom::RegionModel::new(
                    d,
                    cs,
                    PreclusionRule::sim_calibrated_for(d),
                ),
                n: 0.5,
                k: 0.5,
                m: 0.5,
                j: 0.5,
            },
            NodeCounts::Fixed { n, k, m, j } => AnalyticModel {
                regions: mg_geom::RegionModel::new(d, cs, self.cfg.preclusion),
                n,
                k,
                m,
                j,
            },
            NodeCounts::FromDensity => AnalyticModel::from_density(
                d,
                cs,
                self.cfg.preclusion,
                self.density.density(self.cfg.tx_range),
            ),
        }
    }

    // ------------------------------------------------------------------

    /// Records a violation: journal, count, store.
    fn flag(&mut self, v: Violation) {
        self.tracer.emit(
            v.at().as_nanos(),
            Some(self.cfg.tagged),
            EventKind::MonitorViolation { kind: v.kind_str() },
        );
        self.metrics.bump(self.cfg.tagged, Counter::MonitorViolations);
        self.delta(DiagnosisDelta::ViolationFlagged {
            vantage: self.cfg.vantage,
            violation: v,
        });
        self.violations.push(v);
    }

    /// Records an anomaly held below the confirmation threshold: journaled
    /// and counted as uncertain, but never convicting.
    fn note_uncertain(&mut self, v: Violation) {
        self.tracer.emit(
            v.at().as_nanos(),
            Some(self.cfg.tagged),
            EventKind::MonitorUncertain { kind: v.kind_str() },
        );
        self.metrics.bump(self.cfg.tagged, Counter::MonitorUncertain);
        self.delta(DiagnosisDelta::ObservationUncertain {
            vantage: self.cfg.vantage,
            kind: v.kind_str(),
            at: v.at(),
        });
        self.uncertain += 1;
    }

    fn slot_ns(&self) -> f64 {
        self.cfg.timing.slot.as_nanos() as f64
    }

    fn difs_slots(&self) -> f64 {
        self.cfg.timing.difs().as_nanos() as f64 / self.slot_ns()
    }

    /// Opens a fresh back-off window anchored at `anchor`.
    fn open_window(&mut self, anchor: SimTime) {
        self.anchor = Some(anchor);
        self.win = Some(self.chan.fork_at(anchor));
        self.garbles_at_window_open = self.garbles_total;
    }

    /// Handles an RTS from the tagged node (decoded at the vantage), on air
    /// over `[start, end]`.
    fn on_tagged_rts(&mut self, fields: &mg_dcf::RtsFields, start: SimTime, end: SimTime) {
        let timing = self.cfg.timing;
        // Contact-gap handling: after a long silence the previous sequence
        // state and window anchor are unreliable — reset both and collect no
        // sample from this transmission.
        let stale = self
            .last_tagged_seen
            .map(|t| end.saturating_since(t) > self.cfg.resync_after)
            .unwrap_or(false);
        if stale {
            self.last_rts = None;
            self.anchor = None;
            self.win = None;
        }
        self.last_tagged_seen = Some(end);
        // 1. Reconstruct the logical sequence offset and run the
        //    deterministic commitment checks. Anomalies are *collected*
        //    here and only convict at the commit step below, once the
        //    confirmation gate has ruled on how trustworthy this
        //    observation is.
        let mut anomalies: Vec<Violation> = Vec::new();
        let logical = match self.last_rts {
            None => u64::from(fields.seq_off_wire),
            Some(prev) => {
                let logical =
                    VerifiableSequence::unwrap_offset(fields.seq_off_wire, prev.logical);
                if logical <= prev.logical {
                    anomalies.push(Violation::SequenceReuse {
                        previous: prev.logical,
                        seen: logical,
                        at: end,
                    });
                }
                // Rate feasibility: every draw costs at least DIFS + the RTS
                // airtime of wall-clock, so the offset cannot have advanced
                // faster than that since the RTS that established the
                // previous offset. A "rewound" 13-bit counter shows up as a
                // wrap the elapsed time cannot accommodate.
                {
                    let jump = logical.saturating_sub(prev.logical);
                    let min_draw = timing.difs() + timing.rts_airtime();
                    let feasible =
                        end.saturating_since(prev.at).div_periods(min_draw) + 2;
                    if jump > feasible {
                        anomalies.push(Violation::ImplausibleAdvance {
                            jump,
                            feasible,
                            at: end,
                        });
                    }
                }
                if fields.md == prev.md && fields.attempt <= prev.attempt {
                    // Same DATA frame re-announced without bumping the
                    // attempt: the CW-widening dodge.
                    anomalies.push(Violation::AttemptMismatch {
                        previous: prev.attempt,
                        seen: fields.attempt,
                        at: end,
                    });
                }
                logical
            }
        };
        let dictated = self
            .prs
            .backoff(logical, fields.attempt.max(1), timing.cw_min, timing.cw_max);

        // 2. Close the current back-off window and extract a sample. The
        //    channel-view bookkeeping (ρ filter, window totals) always runs
        //    — the vantage really observed that idle/busy time — but the
        //    sample itself is only *committed* for trusted observations.
        let mut sample: Option<(f64, f64)> = None;
        let closed = match (self.anchor, self.win.as_mut()) {
            (Some(anchor), Some(win)) if start > anchor => {
                win.advance(start);
                Some((win.idle_time(), win.busy_time(), win.busy_runs()))
            }
            _ => None,
        };
        if let Some((idle_t, busy_t, busy_runs)) = closed {
            {
                let slot = self.slot_ns();
                let idle = idle_t.as_nanos() as f64 / slot;
                let busy = busy_t.as_nanos() as f64 / slot;
                // ρ for THIS window uses the estimate as of before it (Eq. 6
                // is causal); the window then feeds the filter.
                let rho = self.rho();
                self.rho_filter.push_n(1.0, busy as u64);
                self.rho_filter.push_n(0.0, idle as u64);
                self.win_busy_total += busy_t.as_nanos();
                self.win_idle_total += idle_t.as_nanos();
                let total = idle + busy;
                let difs = self.difs_slots();

                // Deterministic timing check: a compliant countdown takes at
                // least DIFS + dictated slots of wall-clock, frozen or not.
                if self.cfg.blatant_check
                    && total + self.cfg.blatant_tolerance < difs + f64::from(dictated.slots)
                {
                    anomalies.push(Violation::BlatantCountdown {
                        dictated: dictated.slots,
                        observed_slots: total,
                        at: end,
                    });
                }

                // Statistical sample: estimated decrementable slots. Each
                // time the tagged node froze and resumed, one extra DIFS of
                // its idle time went to deference rather than decrements;
                // the monitor's completed busy runs, weighted by P(S busy |
                // R busy) = 1 − p_{I|B}, estimate how many such episodes
                // occurred.
                let model = self.model();
                let (i_est, _b_est) = model.estimate_sender_slots(rho, idle, busy);
                let resume_overhead =
                    difs * busy_runs as f64 * (1.0 - model.p_idle_given_busy(rho));
                let garbles = (self.garbles_total - self.garbles_at_window_open) as f64;
                let eifs_extra_slots = (timing.eifs().as_nanos() as f64
                    - timing.difs().as_nanos() as f64)
                    / self.slot_ns();
                let eifs_overhead = eifs_extra_slots * garbles * self.cfg.eifs_weight;
                let y = (i_est - difs - resume_overhead - eifs_overhead).max(0.0);
                let x = f64::from(dictated.slots);
                if y > f64::from(timing.cw_max) * self.cfg.discard_factor {
                    self.discarded += 1;
                    self.delta(DiagnosisDelta::SampleDiscarded {
                        vantage: self.cfg.vantage,
                        at: end,
                    });
                } else {
                    sample = Some((x, y));
                }
            }
        }

        // Commit step — the confirmation gate. A clean observation resets
        // the streak; an anomalous one extends it and convicts only once
        // the streak reaches `confirm_anomalies` (1 by default, so every
        // anomaly convicts immediately and the order of journal events is
        // exactly the pre-gate order).
        let trusted = if anomalies.is_empty() {
            self.anomaly_streak = 0;
            true
        } else {
            self.anomaly_streak += 1;
            self.anomaly_streak >= self.cfg.confirm_anomalies
        };
        if trusted {
            // Leaving the uncertain regime: a clean observation resolved the
            // streak, or the streak was confirmed into convictions below.
            if self.in_uncertain {
                self.in_uncertain = false;
                self.delta(DiagnosisDelta::UncertaintyLeft {
                    vantage: self.cfg.vantage,
                    at: end,
                });
            }
            for v in anomalies {
                self.flag(v);
            }
            if let Some((x, y)) = sample {
                self.tracer.emit(
                    end.as_nanos(),
                    Some(self.cfg.tagged),
                    EventKind::MonitorSample { dictated: x, estimated: y },
                );
                self.metrics.bump(self.cfg.tagged, Counter::MonitorSamples);
                self.delta(DiagnosisDelta::SampleAccepted {
                    vantage: self.cfg.vantage,
                    dictated: x,
                    estimated: y,
                    at: end,
                });
                self.pending.push((x, y));
                self.all_samples.push((x, y));
                if self.cfg.auto_test && self.pending.len() >= self.cfg.sample_size {
                    self.run_test();
                }
            }
        } else {
            // Below the threshold: journal the anomalies as uncertain,
            // withhold the (equally suspect) sample, and keep the previous
            // verified sequence record as the comparison point — a
            // bit-flipped offset must not poison the next check.
            if !self.in_uncertain {
                self.in_uncertain = true;
                self.delta(DiagnosisDelta::UncertaintyEntered {
                    vantage: self.cfg.vantage,
                    at: end,
                });
            }
            for v in anomalies {
                self.note_uncertain(v);
            }
        }

        // 3. Provisionally anchor the next window at this attempt's CTS
        //    timeout (corrected later if we see the DATA go through). The
        //    transmission physically happened even when its fields were
        //    untrusted, so the timing anchor always moves.
        self.open_window(end + timing.cts_timeout());
        self.rts_pending = true;
        if trusted {
            self.last_rts = Some(RtsRecord {
                logical,
                attempt: fields.attempt,
                md: fields.md,
                at: end,
            });
        }
    }

    /// Tracks the basic-access evasion check: every unicast DATA frame must
    /// have been announced by an RTS. Missing a *few* RTSs to collisions is
    /// normal; missing more than half of at least ten is not.
    fn on_tagged_data(&mut self, end: SimTime) {
        self.data_seen += 1;
        if !self.rts_pending {
            self.data_unverified += 1;
        }
        self.rts_pending = false;
        if self.cfg.require_rts
            && !self.unverified_flagged
            && self.data_seen >= 10
            && self.data_unverified * 2 > self.data_seen
        {
            self.unverified_flagged = true;
            self.flag(Violation::UnverifiedData {
                unverified: self.data_unverified,
                total: self.data_seen,
                at: end,
            });
        }
    }

    /// Runs the configured hypothesis test over the pending samples.
    fn run_test(&mut self) {
        let xs: Vec<f64> = self.pending.iter().map(|&(x, _)| x).collect();
        let ys: Vec<f64> = self.pending.iter().map(|&(_, y)| y).collect();
        self.pending.clear();
        let result = match self.cfg.judge {
            Judge::RankSum => rank_sum_test(&ys, &xs, Alternative::Less),
            Judge::SignedRank => {
                let sr = signed_rank_test(&ys, &xs, Alternative::Less);
                // Report through the common result shape (W⁺ as statistic).
                RankSumResult {
                    w: sr.w_plus,
                    u: sr.w_plus,
                    p_value: sr.p_value,
                    method: sr.method,
                    n1: sr.n_used,
                    n2: sr.n_used,
                }
            }
        };
        let reject = result.p_value < self.cfg.alpha;
        if reject {
            self.rejections += 1;
        }
        // Timestamped at the last tagged-node sighting: run_test is always
        // driven by tagged-node activity, and virtual time keeps the journal
        // deterministic.
        let t = self.last_tagged_seen.unwrap_or(SimTime::ZERO);
        self.tracer.emit(
            t.as_nanos(),
            Some(self.cfg.tagged),
            EventKind::MonitorTest { p: result.p_value, reject },
        );
        self.metrics.bump(self.cfg.tagged, Counter::MonitorTests);
        self.delta(DiagnosisDelta::TestFired { result, reject, at: t });
        self.tests.push(result);
    }

    /// Forces a test over however many samples are pending (≥ 2 of each).
    /// Returns the result if one could be run.
    pub fn test_now(&mut self) -> Option<RankSumResult> {
        if self.pending.len() < 2 {
            return None;
        }
        self.run_test();
        self.tests.last().copied()
    }
}

impl ObsSink for Monitor {
    /// The monitor's single entry point: every event it will ever learn
    /// about arrives here as one serializable [`Obs`] — whether projected
    /// live from a [`NetObserver`] callback or replayed from a journal.
    /// Events for other vantages are ignored, so a shared stream can be fed
    /// to many monitors unchanged.
    fn ingest(&mut self, obs: &Obs) {
        match obs {
            Obs::ChannelEdge { node, busy, at } => self.obs_channel_edge(*node, *busy, *at),
            Obs::TxStart { src, at, end, .. } => self.obs_own_tx(*src, *at, *end),
            Obs::Decoded { at, frame, start, end } => {
                self.obs_decoded(*at, frame, *start, *end)
            }
            Obs::Garbled { at, .. } => self.obs_garbled(*at),
            // Geometry is a pool-level concern (hand-off); a solo monitor's
            // pair distance is fixed at construction.
            Obs::Ranging { .. } => {}
        }
    }
}

impl Monitor {
    fn obs_channel_edge(&mut self, node: NodeId, busy: bool, now: SimTime) {
        if node != self.cfg.vantage {
            return;
        }
        self.chan.on_edge(busy, now);
        if let Some(win) = self.win.as_mut() {
            win.on_edge(busy, now);
        }
    }

    fn obs_own_tx(&mut self, src: NodeId, now: SimTime, end: SimTime) {
        if src != self.cfg.vantage {
            return;
        }
        self.chan.on_own_tx(now, end);
        if let Some(win) = self.win.as_mut() {
            win.on_own_tx(now, end);
        }
    }

    fn obs_decoded(&mut self, at: NodeId, frame: &Frame, start: SimTime, end: SimTime) {
        if at != self.cfg.vantage {
            return;
        }
        // Observation-boundary fault injection: consult the injector before
        // any estimator sees the frame. A dropped frame never reached this
        // monitor — the density estimator must not count it either.
        let mut corruption = None;
        if let Some(inj) = self.faults.as_mut() {
            let is_tagged_rts = frame.src == self.cfg.tagged && frame.is_rts();
            match inj.frame_fate(start.as_nanos(), is_tagged_rts) {
                FrameFate::Deliver => {}
                FrameFate::Drop(cause) => {
                    self.tracer.emit(
                        end.as_nanos(),
                        Some(self.cfg.vantage),
                        EventKind::FaultDrop { cause },
                    );
                    self.metrics.bump(self.cfg.vantage, Counter::FaultDrops);
                    return;
                }
                FrameFate::Corrupt(spec) => {
                    self.tracer.emit(
                        end.as_nanos(),
                        Some(self.cfg.vantage),
                        EventKind::FaultCorrupt { bits: spec.bits_flipped() },
                    );
                    self.metrics.bump(self.cfg.vantage, Counter::FaultCorruptions);
                    corruption = Some(spec);
                }
            }
        }
        self.density.on_success();
        if frame.src != self.cfg.tagged {
            return;
        }
        match &frame.kind {
            FrameKind::Rts(fields) => {
                let fields = match corruption {
                    Some(c) => {
                        fields.with_bit_flips(c.seq_xor, c.attempt_xor, c.md_index, c.md_mask)
                    }
                    None => *fields,
                };
                self.on_tagged_rts(&fields, start, end)
            }
            FrameKind::Data { .. } if frame.dst != Dest::Broadcast => {
                // The exchange went through: the tagged node's next back-off
                // begins after the closing SIFS + ACK. Re-anchor (discarding
                // the provisional CTS-timeout anchor).
                let t = self.cfg.timing;
                self.open_window(end + t.sifs + t.ack_airtime());
                self.on_tagged_data(end);
                self.last_tagged_seen = Some(end);
            }
            _ => {}
        }
    }

    fn obs_garbled(&mut self, at: NodeId) {
        if at == self.cfg.vantage {
            self.density.on_collision();
            self.garbles_total += 1;
        }
    }
}

/// Thin world→[`Obs`] projection: live callbacks are translated into the
/// serializable alphabet and funneled through [`ObsSink::ingest`], so a live
/// monitor and a journal replay traverse exactly the same code.
impl NetObserver for Monitor {
    fn on_channel_edge(&mut self, node: NodeId, busy: bool, now: SimTime) {
        self.ingest(&Obs::ChannelEdge { node, busy, at: now });
    }

    fn on_tx_start(&mut self, src: NodeId, frame: &Frame, now: SimTime, end: SimTime) {
        self.ingest(&Obs::TxStart { src, frame: frame.clone(), at: now, end });
    }

    fn on_frame_decoded(
        &mut self,
        _medium: &Medium,
        at: NodeId,
        frame: &Frame,
        start: SimTime,
        end: SimTime,
    ) {
        self.ingest(&Obs::Decoded { at, frame: frame.clone(), start, end });
    }

    fn on_frame_garbled(&mut self, at: NodeId, now: SimTime) {
        self.ingest(&Obs::Garbled { at, now });
    }
}

impl std::fmt::Debug for Monitor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Monitor")
            .field("tagged", &self.cfg.tagged)
            .field("vantage", &self.cfg.vantage)
            .field("diagnosis", &self.diagnosis())
            .finish()
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use mg_dcf::{sdu_digest, RtsFields};
    use mg_geom::Vec2;
    use mg_phy::{PropagationModel, RadioParams};
    use mg_sim::SimDuration;

    const S: NodeId = 0;
    const R: NodeId = 1;

    fn medium() -> Medium {
        let prop = PropagationModel::free_space();
        Medium::new(
            prop,
            RadioParams::paper_default(&prop),
            vec![Vec2::new(0.0, 0.0), Vec2::new(240.0, 0.0)],
        )
    }

    fn cfg() -> MonitorConfig {
        MonitorConfig {
            sample_size: 10,
            ..MonitorConfig::grid_paper(S, R, 240.0)
        }
    }

    fn rts_frame(seq: u64, attempt: u8, pkt: u64) -> Frame {
        Frame {
            src: S,
            dst: Dest::Unicast(R),
            duration: MacTiming::paper_default().rts_duration(512),
            kind: FrameKind::Rts(RtsFields {
                seq_off_wire: VerifiableSequence::wire_offset(seq),
                attempt,
                md: sdu_digest(S, pkt),
            }),
        }
    }

    /// Drives a synthetic fully-observable timeline: S is saturated, the
    /// channel contains only S's exchanges, and each back-off takes exactly
    /// `factor × dictated` slots (factor < 1 ⇒ misbehavior).
    ///
    /// Returns the monitor after `count` windows.
    fn synthetic_run(factor: f64, count: usize, monitor_cfg: MonitorConfig) -> Monitor {
        let mut m = Monitor::new(monitor_cfg);
        let med = medium();
        let t = MacTiming::paper_default();
        let prs = VerifiableSequence::new(S as u64);
        let mut now = SimTime::ZERO;

        // Initial exchange so the monitor gets an anchor: S sends RTS 0.
        let slot_ns = t.slot.as_nanos();
        for i in 0..=count {
            let seq = i as u64;
            let dictated = prs.backoff(seq, 1, t.cw_min, t.cw_max).slots;
            let counted = (f64::from(dictated) * factor).floor() as u64;
            // Idle DIFS + counted slots.
            now = now + t.difs() + SimDuration::from_nanos(counted * slot_ns);
            // RTS on air.
            let rts_start = now;
            let rts_end = rts_start + t.rts_airtime();
            m.on_channel_edge(R, true, rts_start);
            m.on_frame_decoded(&med, R, &rts_frame(seq, 1, i as u64), rts_start, rts_end);
            m.on_channel_edge(R, false, rts_end);
            // CTS (from R itself — own tx), DATA from S, ACK from R.
            let cts_start = rts_end + t.sifs;
            let cts_end = cts_start + t.cts_airtime();
            m.on_tx_start(R, &rts_frame(seq, 1, 0), cts_start, cts_end);
            let data_start = cts_end + t.sifs;
            let data_end = data_start + t.data_airtime(512);
            m.on_channel_edge(R, true, data_start);
            let data = Frame {
                src: S,
                dst: Dest::Unicast(R),
                duration: t.data_duration(),
                kind: FrameKind::Data {
                    sdu: mg_dcf::MacSdu {
                        id: i as u64,
                        dst: Dest::Unicast(R),
                        payload_len: 512,
                    },
                },
            };
            m.on_frame_decoded(&med, R, &data, data_start, data_end);
            m.on_channel_edge(R, false, data_end);
            let ack_start = data_end + t.sifs;
            let ack_end = ack_start + t.ack_airtime();
            m.on_tx_start(R, &rts_frame(seq, 1, 0), ack_start, ack_end);
            now = ack_end;
        }
        m
    }

    #[test]
    fn compliant_node_yields_matching_samples() {
        let m = synthetic_run(1.0, 25, cfg());
        assert!(m.samples().len() >= 20, "got {} samples", m.samples().len());
        for &(x, y) in m.samples() {
            assert!(
                (x - y).abs() < 1.0,
                "fully observable compliant window: x={x} y={y}"
            );
        }
        assert!(m.violations().is_empty(), "{:?}", m.violations());
        let d = m.diagnosis();
        assert_eq!(d.rejections, 0, "{d:?}");
        assert!(d.tests_run >= 1);
    }

    #[test]
    fn heavy_misbehavior_is_rejected_statistically() {
        // PM = 70% (counts only 30% of the dictated value). At sample size
        // 10 the paper reports near-certain detection for such blatant
        // shrinking; PM = 50 at n = 10 is genuinely borderline (Fig. 5).
        let mut c = cfg();
        c.blatant_check = false; // isolate the statistical path
        let m = synthetic_run(0.3, 25, c);
        let d = m.diagnosis();
        assert!(d.tests_run >= 2);
        assert!(d.rejections >= 1, "{d:?}");
    }

    #[test]
    fn halved_backoff_trips_the_blatant_check() {
        let m = synthetic_run(0.5, 25, cfg());
        assert!(
            m.violations()
                .iter()
                .any(|v| matches!(v, Violation::BlatantCountdown { .. })),
            "{:?}",
            m.diagnosis()
        );
    }

    #[test]
    fn compliant_node_never_trips_blatant_check() {
        let m = synthetic_run(1.0, 50, cfg());
        assert!(m.violations().is_empty());
    }

    #[test]
    fn sequence_reuse_is_flagged() {
        let mut m = Monitor::new(cfg());
        let med = medium();
        let t = MacTiming::paper_default();
        let e1 = SimTime::from_micros(1000) + t.rts_airtime();
        m.on_frame_decoded(&med, R, &rts_frame(5, 1, 0), SimTime::from_micros(1000), e1);
        // Re-announces offset 5 for a *different* packet: reuse.
        let s2 = SimTime::from_micros(20_000);
        m.on_frame_decoded(&med, R, &rts_frame(5, 1, 1), s2, s2 + t.rts_airtime());
        assert!(m
            .violations()
            .iter()
            .any(|v| matches!(v, Violation::SequenceReuse { .. })));
    }

    #[test]
    fn attempt_cheating_is_flagged_via_md() {
        let mut m = Monitor::new(cfg());
        let med = medium();
        let t = MacTiming::paper_default();
        let s1 = SimTime::from_micros(1000);
        m.on_frame_decoded(&med, R, &rts_frame(0, 1, 7), s1, s1 + t.rts_airtime());
        // Retransmission of packet 7 (same MD) still announcing attempt 1.
        let s2 = SimTime::from_micros(20_000);
        m.on_frame_decoded(&med, R, &rts_frame(1, 1, 7), s2, s2 + t.rts_airtime());
        assert!(m
            .violations()
            .iter()
            .any(|v| matches!(v, Violation::AttemptMismatch { .. })));
        // An honest retry (attempt 2) is fine.
        let mut m2 = Monitor::new(cfg());
        m2.on_frame_decoded(&med, R, &rts_frame(0, 1, 7), s1, s1 + t.rts_airtime());
        m2.on_frame_decoded(&med, R, &rts_frame(1, 2, 7), s2, s2 + t.rts_airtime());
        assert!(m2.violations().is_empty());
    }

    #[test]
    fn seq_offset_wraps_are_tolerated() {
        let mut m = Monitor::new(cfg());
        let med = medium();
        let t = MacTiming::paper_default();
        // Near the 13-bit wrap boundary.
        let s1 = SimTime::from_micros(1000);
        m.on_frame_decoded(&med, R, &rts_frame(8190, 1, 0), s1, s1 + t.rts_airtime());
        let s2 = SimTime::from_micros(20_000);
        m.on_frame_decoded(&med, R, &rts_frame(8193, 1, 1), s2, s2 + t.rts_airtime());
        assert!(m.violations().is_empty(), "{:?}", m.violations());
    }

    #[test]
    fn pool_mode_accumulates_without_testing() {
        let mut c = cfg();
        c.auto_test = false;
        let mut m = synthetic_run(1.0, 30, c);
        assert_eq!(m.diagnosis().tests_run, 0);
        let drained = m.drain_samples();
        assert!(drained.len() >= 25);
        assert!(m.drain_samples().is_empty());
    }

    #[test]
    fn test_now_forces_a_verdict() {
        let mut c = cfg();
        c.sample_size = 1000; // never auto-fires
        let mut m = synthetic_run(0.3, 30, c);
        let r = m.test_now().expect("enough samples");
        assert!(r.p_value < 0.05);
        assert!(m.test_now().is_none(), "samples consumed");
    }
}


#[cfg(test)]
mod evasion_tests {
    use super::*;
    use mg_dcf::{MacSdu, MacTiming};
    use mg_sim::SimDuration;
    use mg_geom::Vec2;
    use mg_phy::{PropagationModel, RadioParams};

    const S: NodeId = 0;
    const R: NodeId = 1;

    fn medium() -> Medium {
        let prop = PropagationModel::free_space();
        Medium::new(
            prop,
            RadioParams::paper_default(&prop),
            vec![Vec2::new(0.0, 0.0), Vec2::new(240.0, 0.0)],
        )
    }

    fn data_frame(id: u64) -> Frame {
        Frame {
            src: S,
            dst: Dest::Unicast(R),
            duration: MacTiming::paper_default().data_duration(),
            kind: FrameKind::Data {
                sdu: MacSdu {
                    id,
                    dst: Dest::Unicast(R),
                    payload_len: 512,
                },
            },
        }
    }

    fn rts_frame(seq: u64, pkt: u64) -> Frame {
        Frame {
            src: S,
            dst: Dest::Unicast(R),
            duration: MacTiming::paper_default().rts_duration(512),
            kind: FrameKind::Rts(mg_dcf::RtsFields {
                seq_off_wire: mg_crypto::VerifiableSequence::wire_offset(seq),
                attempt: 1,
                md: mg_dcf::sdu_digest(S, pkt),
            }),
        }
    }

    #[test]
    fn unannounced_data_stream_is_flagged() {
        let mut m = Monitor::new(MonitorConfig::grid_paper(S, R, 240.0));
        let med = medium();
        for i in 0..12u64 {
            let t0 = SimTime::from_millis(10 * (i + 1));
            m.on_frame_decoded(&med, R, &data_frame(i), t0, t0 + SimDuration::from_micros(2464));
        }
        assert!(
            m.violations()
                .iter()
                .any(|v| matches!(v, Violation::UnverifiedData { .. })),
            "{:?}",
            m.violations()
        );
        // The violation fires once, not per frame.
        let count = m
            .violations()
            .iter()
            .filter(|v| matches!(v, Violation::UnverifiedData { .. }))
            .count();
        assert_eq!(count, 1);
    }

    #[test]
    fn announced_data_is_never_flagged() {
        let mut m = Monitor::new(MonitorConfig::grid_paper(S, R, 240.0));
        let med = medium();
        let air = MacTiming::paper_default();
        for i in 0..20u64 {
            let t0 = SimTime::from_millis(10 * (i + 1));
            let rts_end = t0 + air.rts_airtime();
            m.on_frame_decoded(&med, R, &rts_frame(i, i), t0, rts_end);
            let d0 = rts_end + air.sifs * 2 + air.cts_airtime();
            m.on_frame_decoded(&med, R, &data_frame(i), d0, d0 + air.data_airtime(512));
        }
        assert!(
            !m.violations()
                .iter()
                .any(|v| matches!(v, Violation::UnverifiedData { .. })),
            "{:?}",
            m.violations()
        );
    }

    #[test]
    fn occasional_missed_rts_is_tolerated() {
        // The monitor misses 1 in 4 RTSs to collisions: no accusation.
        let mut m = Monitor::new(MonitorConfig::grid_paper(S, R, 240.0));
        let med = medium();
        let air = MacTiming::paper_default();
        for i in 0..40u64 {
            let t0 = SimTime::from_millis(10 * (i + 1));
            let rts_end = t0 + air.rts_airtime();
            if i % 4 != 0 {
                m.on_frame_decoded(&med, R, &rts_frame(i, i), t0, rts_end);
            }
            let d0 = rts_end + air.sifs * 2 + air.cts_airtime();
            m.on_frame_decoded(&med, R, &data_frame(i), d0, d0 + air.data_airtime(512));
        }
        assert!(
            !m.violations()
                .iter()
                .any(|v| matches!(v, Violation::UnverifiedData { .. })),
            "25% loss must be tolerated: {:?}",
            m.violations()
        );
    }

    #[test]
    fn contact_gap_resyncs_without_accusation() {
        // The monitor hears RTS #100, loses contact for 10 s (tens of
        // thousands of draws could have passed), then hears wire offset 3.
        // With naive unwrapping that's "reuse"; the resync rule forgives it.
        let mut m = Monitor::new(MonitorConfig::grid_paper(S, R, 240.0));
        let med = medium();
        let air = MacTiming::paper_default();
        let t1 = SimTime::from_millis(100);
        m.on_frame_decoded(&med, R, &rts_frame(100, 0), t1, t1 + air.rts_airtime());
        let t2 = SimTime::from_secs(10);
        m.on_frame_decoded(&med, R, &rts_frame(3, 1), t2, t2 + air.rts_airtime());
        assert!(m.violations().is_empty(), "{:?}", m.violations());
        // And the stale window yielded no sample.
        assert!(m.samples().is_empty(), "{:?}", m.samples());
    }

    #[test]
    fn short_gap_still_enforces_sequence() {
        // Within the resync horizon, going backwards IS a violation.
        let mut m = Monitor::new(MonitorConfig::grid_paper(S, R, 240.0));
        let med = medium();
        let air = MacTiming::paper_default();
        let t1 = SimTime::from_millis(100);
        m.on_frame_decoded(&med, R, &rts_frame(100, 0), t1, t1 + air.rts_airtime());
        let t2 = SimTime::from_millis(300);
        m.on_frame_decoded(&med, R, &rts_frame(50, 1), t2, t2 + air.rts_airtime());
        // Wire 100 → wire 50 in 200 ms: the only compliant explanation would
        // be a full 13-bit wrap (8142 draws), which 200 ms cannot hold.
        assert!(
            m.violations()
                .iter()
                .any(|v| matches!(v, Violation::ImplausibleAdvance { .. })),
            "{:?}",
            m.violations()
        );
    }

    #[test]
    fn require_rts_can_be_disabled() {
        let mut cfg = MonitorConfig::grid_paper(S, R, 240.0);
        cfg.require_rts = false;
        let mut m = Monitor::new(cfg);
        let med = medium();
        for i in 0..30u64 {
            let t0 = SimTime::from_millis(10 * (i + 1));
            m.on_frame_decoded(&med, R, &data_frame(i), t0, t0 + SimDuration::from_micros(2464));
        }
        assert!(m.violations().is_empty());
    }
}

#[cfg(test)]
mod fault_tests {
    use super::*;
    use mg_fault::FaultPlan;
    use mg_dcf::MacTiming;
    use mg_geom::Vec2;
    use mg_phy::{PropagationModel, RadioParams};

    const S: NodeId = 0;
    const R: NodeId = 1;

    fn medium() -> Medium {
        let prop = PropagationModel::free_space();
        Medium::new(
            prop,
            RadioParams::paper_default(&prop),
            vec![Vec2::new(0.0, 0.0), Vec2::new(240.0, 0.0)],
        )
    }

    fn rts_frame(seq: u64, pkt: u64) -> Frame {
        Frame {
            src: S,
            dst: Dest::Unicast(R),
            duration: MacTiming::paper_default().rts_duration(512),
            kind: FrameKind::Rts(mg_dcf::RtsFields {
                seq_off_wire: VerifiableSequence::wire_offset(seq),
                attempt: 1,
                md: mg_dcf::sdu_digest(S, pkt),
            }),
        }
    }

    fn feed_rts(m: &mut Monitor, med: &Medium, seq: u64, pkt: u64, t: SimTime) {
        let air = MacTiming::paper_default();
        m.on_frame_decoded(med, R, &rts_frame(seq, pkt), t, t + air.rts_airtime());
    }

    fn hardened() -> MonitorConfig {
        let mut c = MonitorConfig::grid_paper(S, R, 240.0);
        c.confirm_anomalies = 2;
        c
    }

    #[test]
    fn isolated_anomaly_is_uncertain_under_confirmation() {
        // One bit-flipped sequence offset in an otherwise clean stream: the
        // hardened monitor records uncertainty, convicts nobody, and keeps
        // checking against the last *verified* offset.
        let mut m = Monitor::new(hardened());
        let med = medium();
        feed_rts(&mut m, &med, 10, 0, SimTime::from_millis(100));
        // A corrupted observation: the wire offset appears to have gone
        // backwards, which 20 ms cannot explain as a 13-bit wrap.
        feed_rts(&mut m, &med, 5, 1, SimTime::from_millis(120));
        // The stream recovers; compared against the trusted offset 10, not
        // against the corrupted 5.
        feed_rts(&mut m, &med, 11, 2, SimTime::from_millis(140));
        feed_rts(&mut m, &med, 12, 3, SimTime::from_millis(160));
        assert!(m.violations().is_empty(), "{:?}", m.violations());
        let d = m.diagnosis();
        assert_eq!(d.uncertain, 1, "{d:?}");
        assert!(!d.is_flagged());
    }

    #[test]
    fn repeated_anomalies_still_convict_under_confirmation() {
        // A genuine cheater repeats its violation; two consecutive
        // anomalous observations clear the confirmation gate.
        let mut m = Monitor::new(hardened());
        let med = medium();
        feed_rts(&mut m, &med, 5, 0, SimTime::from_millis(100));
        feed_rts(&mut m, &med, 5, 1, SimTime::from_millis(120)); // reuse, uncertain
        feed_rts(&mut m, &med, 5, 2, SimTime::from_millis(140)); // reuse, convicted
        assert!(
            m.violations()
                .iter()
                .any(|v| matches!(v, Violation::SequenceReuse { .. })),
            "{:?}",
            m.violations()
        );
        assert_eq!(m.diagnosis().uncertain, 1);
    }

    #[test]
    fn default_config_convicts_on_first_anomaly() {
        // confirm_anomalies = 1 (the default) preserves the paper's
        // immediate-conviction behavior bit for bit.
        let mut m = Monitor::new(MonitorConfig::grid_paper(S, R, 240.0));
        let med = medium();
        feed_rts(&mut m, &med, 5, 0, SimTime::from_millis(100));
        feed_rts(&mut m, &med, 5, 1, SimTime::from_millis(120));
        assert_eq!(m.violations().len(), 1);
        assert_eq!(m.diagnosis().uncertain, 0);
    }

    #[test]
    fn total_loss_blinds_the_monitor_without_accusations() {
        // loss=1 eats every frame at the observation boundary: the monitor
        // collects nothing and, crucially, accuses nobody.
        let plan = FaultPlan::parse("seed=1,loss=1").unwrap();
        let mut m =
            Monitor::with_faults(MonitorConfig::grid_paper(S, R, 240.0), plan.observer(R as u64));
        let med = medium();
        for i in 0..20u64 {
            feed_rts(&mut m, &med, i, i, SimTime::from_millis(20 * (i + 1)));
        }
        assert!(m.samples().is_empty());
        assert!(m.violations().is_empty());
        assert_eq!(m.diagnosis().uncertain, 0);
    }

    #[test]
    fn corrupting_injector_yields_uncertainty_not_convictions() {
        // A compliant stream seen through a corrupting injector: flipped
        // commitment bits may look anomalous, but the hardened monitor
        // must never turn an isolated glitch into a conviction.
        let plan = FaultPlan::parse("seed=3,corrupt=0.2").unwrap();
        let mut m = Monitor::with_faults(hardened(), plan.observer(R as u64));
        let med = medium();
        for i in 0..60u64 {
            feed_rts(&mut m, &med, i, i, SimTime::from_millis(20 * (i + 1)));
        }
        let d = m.diagnosis();
        assert!(m.violations().is_empty(), "{:?}", m.violations());
        assert!(d.uncertain > 0, "expected some uncertainty, got {d:?}");
    }

    #[test]
    fn injector_fates_are_deterministic_per_vantage() {
        let plan = FaultPlan::parse("seed=9,heavy").unwrap();
        let run = || {
            let mut m = Monitor::with_faults(hardened(), plan.observer(R as u64));
            let med = medium();
            for i in 0..40u64 {
                feed_rts(&mut m, &med, i, i, SimTime::from_millis(20 * (i + 1)));
            }
            (m.samples().to_vec(), m.diagnosis().uncertain)
        };
        assert_eq!(run(), run());
    }

}
