//! Property-based tests for the detection framework's analytic and
//! channel-tracking layers (mg-testkit harness).

use mg_detect::{AnalyticModel, ChannelTracker, DensityEstimator, JointTracker};
use mg_geom::PreclusionRule;
use mg_sim::SimTime;
use mg_testkit::prop::{check, Gen, TkResult};
use mg_testkit::{tk_assert, tk_assert_eq};

fn any_model(g: &mut Gen) -> AnalyticModel {
    let d = g.f64_in(0.0..1000.0);
    let cs = g.f64_in(100.0..900.0);
    let n = g.f64_in(0.0..20.0);
    let k = g.f64_in(0.0..20.0);
    let m = g.f64_in(0.0..20.0);
    let j = g.f64_in(0.0..20.0);
    let a1f = g.f64_in(0.0..5.0);
    let a4f = g.f64_in(0.0..5.0);
    AnalyticModel {
        regions: mg_geom::RegionModel::new(
            d,
            cs,
            PreclusionRule::Calibrated {
                a1_over_a2: a1f,
                a4_over_a5: a4f,
            },
        ),
        n,
        k,
        m,
        j,
    }
}

/// All conditional probabilities stay in [0, 1] for every geometry, node
/// count and intensity — even silly ones.
#[test]
fn probabilities_always_valid() {
    check("probabilities_always_valid", |g: &mut Gen| -> TkResult {
        let model = any_model(g);
        let rho = g.f64_in(-0.5..1.5);
        for p in [
            model.p_busy_given_idle(rho),
            model.p_idle_given_idle(rho),
            model.p_idle_given_busy(rho),
        ] {
            tk_assert!((0.0..=1.0).contains(&p), "{p}");
        }
        Ok(())
    });
}

/// Eq. 3 is monotone in ρ and Eq. 4 is antitone in ρ.
#[test]
fn eq3_eq4_monotonicity() {
    check("eq3_eq4_monotonicity", |g: &mut Gen| -> TkResult {
        let model = any_model(g);
        let r1 = g.f64_in(0.0..1.0);
        let r2 = g.f64_in(0.0..1.0);
        let (lo, hi) = if r1 <= r2 { (r1, r2) } else { (r2, r1) };
        tk_assert!(model.p_busy_given_idle(lo) <= model.p_busy_given_idle(hi) + 1e-12);
        tk_assert!(model.p_idle_given_busy(lo) >= model.p_idle_given_busy(hi) - 1e-12);
        Ok(())
    });
}

/// The slot estimate partitions the window and responds monotonically to
/// its inputs.
#[test]
fn estimate_partitions_window() {
    check("estimate_partitions_window", |g: &mut Gen| -> TkResult {
        let model = any_model(g);
        let rho = g.f64_in(0.0..1.0);
        let idle = g.f64_in(0.0..5000.0);
        let busy = g.f64_in(0.0..5000.0);
        let (i_est, b_est) = model.estimate_sender_slots(rho, idle, busy);
        tk_assert!((i_est + b_est - (idle + busy)).abs() < 1e-6);
        tk_assert!(i_est >= -1e-9);
        // More observed idle can only raise the idle estimate.
        let (i2, _) = model.estimate_sender_slots(rho, idle + 100.0, busy);
        tk_assert!(i2 >= i_est - 1e-9);
        Ok(())
    });
}

/// ChannelTracker conserves time: busy + idle always equals the span it
/// has integrated, under any edge sequence.
#[test]
fn tracker_conserves_time() {
    check("tracker_conserves_time", |g: &mut Gen| -> TkResult {
        let edges = g.vec(1..100, |g| (g.u64_in(1..10_000), g.bool()));
        let mut tracker = ChannelTracker::new();
        let mut t = 0u64;
        for &(gap, busy) in &edges {
            t += gap;
            tracker.on_edge(busy, SimTime::from_micros(t));
        }
        let total = tracker.busy_time() + tracker.idle_time();
        tk_assert_eq!(total.as_micros(), t);
        tk_assert!((0.0..=1.0).contains(&tracker.rho()));
        Ok(())
    });
}

/// JointTracker: observed time never exceeds wall time and conditionals
/// stay valid under arbitrary interleavings of edges and transmissions.
#[test]
fn joint_tracker_valid() {
    check("joint_tracker_valid", |g: &mut Gen| -> TkResult {
        let events = g.vec(1..100, |g| {
            (g.u64_in(1..1000), g.u8_in(0..4), g.u64_in(1..500))
        });
        let mut j = JointTracker::new();
        let mut t = 0u64;
        for &(gap, kind, dur) in &events {
            t += gap;
            let now = SimTime::from_micros(t);
            match kind {
                0 => j.on_s_edge(t.is_multiple_of(2), now),
                1 => j.on_r_edge(t.is_multiple_of(3), now),
                2 => j.on_s_tx(now, SimTime::from_micros(t + dur)),
                _ => j.on_r_tx(now, SimTime::from_micros(t + dur)),
            }
        }
        let horizon = t + 1000;
        j.finish(SimTime::from_micros(horizon));
        tk_assert!(j.observed().as_micros() <= horizon);
        for p in [j.p_busy_given_idle(), j.p_idle_given_busy(), j.r_rho()] {
            tk_assert!((0.0..=1.0).contains(&p), "{p}");
        }
        Ok(())
    });
}

/// Density estimation: n̂ is ≥ 1, finite, and monotone in the collision
/// probability.
#[test]
fn density_estimator_monotone() {
    check("density_estimator_monotone", |g: &mut Gen| -> TkResult {
        let p1 = g.f64_in(0.0..0.95);
        let p2 = g.f64_in(0.0..0.95);
        let est = DensityEstimator::paper_default();
        let n1 = est.competing_terminals_for(p1);
        let n2 = est.competing_terminals_for(p2);
        tk_assert!(n1 >= 1.0 && n1.is_finite());
        if p1 < p2 {
            tk_assert!(n1 <= n2 + 1e-9, "p {p1}->{p2}: n {n1}->{n2}");
        }
        Ok(())
    });
}

// ---------------------------------------------------------------------
// Record/replay equivalence — the observation-boundary contract: a pool
// fed a recorded journal is byte-indistinguishable from the live pool
// that watched the world directly.

mod replay {
    use mg_detect::{
        replay_pool, replay_pool_faulted, replay_reader, replay_reader_faulted, DiagnosisDelta,
        FaultPlan, JournalFormat, JournalReader, MonitorConfig, MonitorPool, ObsJournal, ObsMeta,
        ObsRecorder, ScenarioBuilder, SessionSpec, WorldMonitors, WorldProbe,
    };
    use mg_dcf::BackoffPolicy;
    use mg_net::{Scenario, ScenarioConfig, SourceCfg};
    use mg_sim::SimTime;
    use mg_testkit::prop::{check_with, Config, Gen, TkResult};
    use mg_testkit::{tk_assert, tk_assert_eq, TkError};
    use mg_trace::{Level, Metrics, TraceConfig, Tracer};

    /// A journal tracing only the detector subsystems: both the live and
    /// the replayed tracer then hold exactly the same event population, so
    /// the JSONL exports can be compared byte-for-byte without the live
    /// run's high-rate sched/phy/mac records evicting monitor lines from
    /// the ring.
    fn detector_trace() -> TraceConfig {
        TraceConfig {
            sched: Level::Off,
            phy: Level::Off,
            mac: Level::Off,
            net: Level::Off,
            ..TraceConfig::default()
        }
    }

    struct LiveRun {
        mc: MonitorConfig,
        vantage: usize,
        journal: ObsJournal,
        diagnosis: mg_detect::Diagnosis,
        samples: Option<Vec<(f64, f64)>>,
        tests: usize,
        violations: Vec<mg_detect::Violation>,
        trace: String,
    }

    /// Simulates one grid world with a live monitor and a recorder probe
    /// side by side; the journal is pushed through the JSONL codec so the
    /// replay below exercises serialization, not just the in-memory path.
    fn live_run(seed: u64, pm: u8, ss: usize, plan: Option<&FaultPlan>) -> Result<LiveRun, TkError> {
        const SECS: u64 = 2;
        let scenario = Scenario::new(ScenarioConfig {
            sim_secs: SECS,
            rate_pps: 2.0,
            ..ScenarioConfig::grid_paper(seed)
        });
        let (s, r) = scenario.tagged_pair();
        let mc = MonitorConfig::grid_paper(s, r, 240.0).with_sample_size(ss);
        let mut b = ScenarioBuilder::new(scenario);
        let a = b.attacker(s);
        let watch = b.monitor(mc);
        b.source(SourceCfg::saturated(s, r));
        b.trace(detector_trace());
        if let Some(p) = plan {
            b.fault(p.clone());
        }
        let meta = ObsMeta {
            tagged: s,
            vantages: vec![r],
            pair_distance: 240.0,
            seed,
            params: vec![("pm".into(), pm.to_string())],
        };
        let mut world = b.probe(ObsRecorder::new(meta)).build();
        world.set_policy(a.id(), BackoffPolicy::Scaled { pm });
        world.run_until(SimTime::from_secs(SECS));

        let journal = ObsJournal::from_jsonl(&world.probe().journal().to_jsonl())
            .map_err(TkError::Fail)?;
        let pool = world.monitors().pool(watch);
        Ok(LiveRun {
            mc,
            vantage: r,
            journal,
            diagnosis: pool.diagnosis(),
            samples: pool.monitor(r).map(|m| m.samples().to_vec()),
            tests: pool.tests().len(),
            violations: pool.violations(),
            trace: world.tracer().to_jsonl(),
        })
    }

    /// Replays `journal` into an instrumented pool (mirroring the build
    /// order of `ScenarioBuilder::build`: instrumentation first, then the
    /// fault plan) and returns the pool plus its trace journal.
    fn traced_replay(
        journal: &ObsJournal,
        mc: MonitorConfig,
        plan: Option<&FaultPlan>,
    ) -> (MonitorPool, String) {
        let meta = journal.meta();
        let tracer = Tracer::new(detector_trace());
        let mut pool = MonitorPool::new(meta.tagged, &meta.vantages, mc);
        pool.set_instrumentation(tracer.clone(), Metrics::disabled());
        if let Some(p) = plan {
            pool.apply_fault_plan(p);
        }
        journal.replay(&mut pool);
        (pool, tracer.to_jsonl())
    }

    fn assert_replay_matches(live: &LiveRun, replayed: &MonitorPool, trace: &str) -> TkResult {
        tk_assert_eq!(live.diagnosis, replayed.diagnosis());
        tk_assert_eq!(live.samples, replayed.monitor(live.vantage).map(|m| m.samples().to_vec()));
        tk_assert_eq!(live.tests, replayed.tests().len());
        tk_assert!(
            live.violations == replayed.violations(),
            "live {:?} vs replay {:?}",
            live.violations,
            replayed.violations()
        );
        tk_assert_eq!(live.trace, trace);
        Ok(())
    }

    /// Same seed ⇒ a pool replaying the recorded journal reproduces the
    /// live pool byte-for-byte: `Diagnosis`, paired samples, test count,
    /// violations and the monitor-subsystem trace journal.
    #[test]
    fn replay_equals_live() {
        let cfg = Config {
            cases: 4,
            ..Config::default()
        };
        check_with(cfg, "replay_equals_live", |g: &mut Gen| -> TkResult {
            let seed = g.u64_in(1..1_000_000);
            let pm = [0u8, 50, 90][g.usize_in(0..3)];
            let ss = g.usize_in(5..30);
            let live = live_run(seed, pm, ss, None)?;
            tk_assert!(!live.journal.is_empty(), "a saturated run must record");

            let (replayed, trace) = traced_replay(&live.journal, live.mc, None);
            assert_replay_matches(&live, &replayed, &trace)?;

            // The plain (untraced) API lands on the same diagnosis.
            let plain = replay_pool(&live.journal, live.mc);
            tk_assert_eq!(live.diagnosis, plain.diagnosis());
            Ok(())
        });
    }

    /// The journal format is invisible to diagnosis: streaming the same
    /// recorded run through the JSONL and binary codecs (fresh readers,
    /// `replay_reader`) lands on byte-identical detector state — the
    /// non-negotiable invariant of the codec layer. Faulted replays agree
    /// across formats too, and the binary encoding is strictly smaller.
    #[test]
    fn cross_format_replay_is_byte_identical() {
        let cfg = Config {
            cases: 3,
            ..Config::default()
        };
        check_with(cfg, "cross_format_replay", |g: &mut Gen| -> TkResult {
            let seed = g.u64_in(1..1_000_000);
            let pm = [0u8, 50, 90][g.usize_in(0..3)];
            let live = live_run(seed, pm, g.usize_in(5..30), None)?;
            tk_assert!(!live.journal.is_empty(), "a saturated run must record");

            let jsonl = live.journal.encode(JournalFormat::Jsonl);
            let bin = live.journal.encode(JournalFormat::Binary);
            tk_assert!(
                bin.len() < jsonl.len(),
                "binary ({}) must be smaller than jsonl ({})",
                bin.len(),
                jsonl.len()
            );
            for bytes in [jsonl, bin] {
                let reader = JournalReader::from_bytes(bytes)
                    .map_err(|e| TkError::Fail(format!("open: {e}")))?;
                let pool = replay_reader(&reader, live.mc)
                    .map_err(|e| TkError::Fail(format!("replay: {e}")))?;
                tk_assert_eq!(live.diagnosis, pool.diagnosis());
                tk_assert_eq!(
                    live.samples,
                    pool.monitor(live.vantage).map(|m| m.samples().to_vec())
                );
                tk_assert_eq!(live.tests, pool.tests().len());

                let plan = FaultPlan::parse("seed=11,light")
                    .map_err(|e| TkError::Fail(format!("plan: {e}")))?;
                let faulted = replay_reader_faulted(&reader, live.mc, &plan)
                    .map_err(|e| TkError::Fail(format!("faulted replay: {e}")))?;
                let reference = replay_pool_faulted(&live.journal, live.mc, &plan);
                tk_assert_eq!(reference.diagnosis(), faulted.diagnosis());
            }
            Ok(())
        });
    }

    /// The fault composition contract: journals record the *pre-fault*
    /// stream, and replaying a clean journal with the plan injected at the
    /// replayed monitors reproduces a faulted live run byte-for-byte.
    #[test]
    fn faulted_replay_equals_faulted_live() {
        let cfg = Config {
            cases: 3,
            ..Config::default()
        };
        check_with(cfg, "faulted_replay_equals_faulted_live", |g: &mut Gen| -> TkResult {
            let seed = g.u64_in(1..1_000_000);
            let pm = [0u8, 90][g.usize_in(0..2)];
            let fault_seed = g.u64_in(1..10_000);
            let plan = FaultPlan::parse(&format!("seed={fault_seed},light"))
                .map_err(|e| TkError::Fail(format!("plan: {e}")))?;

            let live = live_run(seed, pm, 25, Some(&plan))?;
            let (replayed, trace) = traced_replay(&live.journal, live.mc, Some(&plan));
            assert_replay_matches(&live, &replayed, &trace)?;

            let api = replay_pool_faulted(&live.journal, live.mc, &plan);
            tk_assert_eq!(live.diagnosis, api.diagnosis());
            Ok(())
        });
    }

    /// The session-API contract: feeding a recorded journal one event at a
    /// time through `DetectorSession::ingest` lands on detector state
    /// byte-identical to the legacy batch replay — same `Diagnosis`, same
    /// paired samples, same rank-sum history, same violations — and the
    /// emitted delta stream is a *complete* account: replaying the deltas
    /// against empty counters reconstructs every field of the diagnosis.
    /// Holds for clean and fault-injected sessions alike.
    #[test]
    fn delta_ingest_equals_batch_ingest() {
        let cfg = Config {
            cases: 4,
            ..Config::default()
        };
        check_with(cfg, "delta_ingest_equals_batch_ingest", |g: &mut Gen| -> TkResult {
            let seed = g.u64_in(1..1_000_000);
            let pm = [0u8, 50, 90][g.usize_in(0..3)];
            let plan = if g.usize_in(0..2) == 1 {
                let fault_seed = g.u64_in(1..10_000);
                Some(
                    FaultPlan::parse(&format!("seed={fault_seed},light"))
                        .map_err(|e| TkError::Fail(format!("plan: {e}")))?,
                )
            } else {
                None
            };
            let live = live_run(seed, pm, g.usize_in(5..30), plan.as_ref())?;
            tk_assert!(!live.journal.is_empty(), "a saturated run must record");
            let meta = live.journal.meta();

            let batch = match &plan {
                Some(p) => replay_pool_faulted(&live.journal, live.mc, p),
                None => replay_pool(&live.journal, live.mc),
            };

            let mut spec = SessionSpec::pool(meta.tagged, &meta.vantages, live.mc);
            if let Some(p) = &plan {
                spec = spec.with_faults(p.clone());
            }
            let mut session = spec.build();
            let mut deltas: Vec<DiagnosisDelta> = Vec::new();
            for o in live.journal.events() {
                deltas.extend(session.ingest(o));
            }

            // Derived views are byte-identical to the batch path.
            let diag = batch.diagnosis();
            tk_assert_eq!(diag, session.diagnosis());
            tk_assert_eq!(batch.tests(), session.tests());
            tk_assert!(
                batch.violations() == session.violations(),
                "batch {:?} vs session {:?}",
                batch.violations(),
                session.violations()
            );
            let pool = session
                .as_pool()
                .ok_or_else(|| TkError::Fail("expected a pooled session".into()))?;
            tk_assert_eq!(
                batch.monitor(live.vantage).map(|m| m.samples().to_vec()),
                pool.monitor(live.vantage).map(|m| m.samples().to_vec())
            );

            // The delta stream is a complete account of the diagnosis.
            let mut acc = mg_detect::Diagnosis::default();
            let mut verdicts = 0usize;
            for d in &deltas {
                match d {
                    DiagnosisDelta::SampleAccepted { .. } => acc.samples_collected += 1,
                    DiagnosisDelta::SampleDiscarded { .. } => acc.samples_discarded += 1,
                    DiagnosisDelta::TestFired { result, reject, .. } => {
                        acc.tests_run += 1;
                        acc.rejections += usize::from(*reject);
                        acc.last_p = Some(result.p_value);
                    }
                    DiagnosisDelta::ViolationFlagged { .. } => acc.violations += 1,
                    DiagnosisDelta::ObservationUncertain { .. } => acc.uncertain += 1,
                    DiagnosisDelta::UncertaintyEntered { .. }
                    | DiagnosisDelta::UncertaintyLeft { .. } => {}
                    DiagnosisDelta::VerdictChanged { flagged, .. } => {
                        verdicts += 1;
                        tk_assert!(*flagged, "verdict is monotone in this world");
                    }
                }
            }
            acc.measured_rho = diag.measured_rho; // not delta-carried: a gauge, not a counter
            tk_assert_eq!(diag, acc);
            tk_assert_eq!(session.is_flagged(), diag.is_flagged());
            tk_assert_eq!(verdicts, usize::from(diag.is_flagged()));
            Ok(())
        });
    }
}
