//! Property-based tests for the detection framework's analytic and
//! channel-tracking layers.

use mg_detect::{AnalyticModel, ChannelTracker, DensityEstimator, JointTracker};
use mg_geom::PreclusionRule;
use mg_sim::SimTime;
use proptest::prelude::*;

fn any_model() -> impl Strategy<Value = AnalyticModel> {
    (
        0.0..1000.0f64,
        100.0..900.0f64,
        0.0..20.0f64,
        0.0..20.0f64,
        0.0..20.0f64,
        0.0..20.0f64,
        0.0..5.0f64,
        0.0..5.0f64,
    )
        .prop_map(|(d, cs, n, k, m, j, a1f, a4f)| AnalyticModel {
            regions: mg_geom::RegionModel::new(
                d,
                cs,
                PreclusionRule::Calibrated {
                    a1_over_a2: a1f,
                    a4_over_a5: a4f,
                },
            ),
            n,
            k,
            m,
            j,
        })
}

proptest! {
    /// All conditional probabilities stay in [0, 1] for every geometry, node
    /// count and intensity — even silly ones.
    #[test]
    fn probabilities_always_valid(model in any_model(), rho in -0.5..1.5f64) {
        for p in [
            model.p_busy_given_idle(rho),
            model.p_idle_given_idle(rho),
            model.p_idle_given_busy(rho),
        ] {
            prop_assert!((0.0..=1.0).contains(&p), "{p}");
        }
    }

    /// Eq. 3 is monotone in ρ and Eq. 4 is antitone in ρ.
    #[test]
    fn eq3_eq4_monotonicity(model in any_model(), r1 in 0.0..1.0f64, r2 in 0.0..1.0f64) {
        let (lo, hi) = if r1 <= r2 { (r1, r2) } else { (r2, r1) };
        prop_assert!(model.p_busy_given_idle(lo) <= model.p_busy_given_idle(hi) + 1e-12);
        prop_assert!(model.p_idle_given_busy(lo) >= model.p_idle_given_busy(hi) - 1e-12);
    }

    /// The slot estimate partitions the window and responds monotonically to
    /// its inputs.
    #[test]
    fn estimate_partitions_window(
        model in any_model(),
        rho in 0.0..1.0f64,
        idle in 0.0..5000.0f64,
        busy in 0.0..5000.0f64,
    ) {
        let (i_est, b_est) = model.estimate_sender_slots(rho, idle, busy);
        prop_assert!((i_est + b_est - (idle + busy)).abs() < 1e-6);
        prop_assert!(i_est >= -1e-9);
        // More observed idle can only raise the idle estimate.
        let (i2, _) = model.estimate_sender_slots(rho, idle + 100.0, busy);
        prop_assert!(i2 >= i_est - 1e-9);
    }

    /// ChannelTracker conserves time: busy + idle always equals the span it
    /// has integrated, under any edge sequence.
    #[test]
    fn tracker_conserves_time(edges in prop::collection::vec((1u64..10_000, any::<bool>()), 1..100)) {
        let mut tracker = ChannelTracker::new();
        let mut t = 0u64;
        for &(gap, busy) in &edges {
            t += gap;
            tracker.on_edge(busy, SimTime::from_micros(t));
        }
        let total = tracker.busy_time() + tracker.idle_time();
        prop_assert_eq!(total.as_micros(), t);
        prop_assert!((0.0..=1.0).contains(&tracker.rho()));
    }

    /// JointTracker: observed time never exceeds wall time and conditionals
    /// stay valid under arbitrary interleavings of edges and transmissions.
    #[test]
    fn joint_tracker_valid(
        events in prop::collection::vec((1u64..1000, 0u8..4, 1u64..500), 1..100),
    ) {
        let mut j = JointTracker::new();
        let mut t = 0u64;
        for &(gap, kind, dur) in &events {
            t += gap;
            let now = SimTime::from_micros(t);
            match kind {
                0 => j.on_s_edge(t % 2 == 0, now),
                1 => j.on_r_edge(t % 3 == 0, now),
                2 => j.on_s_tx(now, SimTime::from_micros(t + dur)),
                _ => j.on_r_tx(now, SimTime::from_micros(t + dur)),
            }
        }
        let horizon = t + 1000;
        j.finish(SimTime::from_micros(horizon));
        prop_assert!(j.observed().as_micros() <= horizon);
        for p in [j.p_busy_given_idle(), j.p_idle_given_busy(), j.r_rho()] {
            prop_assert!((0.0..=1.0).contains(&p), "{p}");
        }
    }

    /// Density estimation: n̂ is ≥ 1, finite, and monotone in the collision
    /// probability.
    #[test]
    fn density_estimator_monotone(p1 in 0.0..0.95f64, p2 in 0.0..0.95f64) {
        let est = DensityEstimator::paper_default();
        let n1 = est.competing_terminals_for(p1);
        let n2 = est.competing_terminals_for(p2);
        prop_assert!(n1 >= 1.0 && n1.is_finite());
        if p1 < p2 {
            prop_assert!(n1 <= n2 + 1e-9, "p {p1}->{p2}: n {n1}->{n2}");
        }
    }
}
