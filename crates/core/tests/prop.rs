//! Property-based tests for the detection framework's analytic and
//! channel-tracking layers (mg-testkit harness).

use mg_detect::{AnalyticModel, ChannelTracker, DensityEstimator, JointTracker};
use mg_geom::PreclusionRule;
use mg_sim::SimTime;
use mg_testkit::prop::{check, Gen, TkResult};
use mg_testkit::{tk_assert, tk_assert_eq};

fn any_model(g: &mut Gen) -> AnalyticModel {
    let d = g.f64_in(0.0..1000.0);
    let cs = g.f64_in(100.0..900.0);
    let n = g.f64_in(0.0..20.0);
    let k = g.f64_in(0.0..20.0);
    let m = g.f64_in(0.0..20.0);
    let j = g.f64_in(0.0..20.0);
    let a1f = g.f64_in(0.0..5.0);
    let a4f = g.f64_in(0.0..5.0);
    AnalyticModel {
        regions: mg_geom::RegionModel::new(
            d,
            cs,
            PreclusionRule::Calibrated {
                a1_over_a2: a1f,
                a4_over_a5: a4f,
            },
        ),
        n,
        k,
        m,
        j,
    }
}

/// All conditional probabilities stay in [0, 1] for every geometry, node
/// count and intensity — even silly ones.
#[test]
fn probabilities_always_valid() {
    check("probabilities_always_valid", |g: &mut Gen| -> TkResult {
        let model = any_model(g);
        let rho = g.f64_in(-0.5..1.5);
        for p in [
            model.p_busy_given_idle(rho),
            model.p_idle_given_idle(rho),
            model.p_idle_given_busy(rho),
        ] {
            tk_assert!((0.0..=1.0).contains(&p), "{p}");
        }
        Ok(())
    });
}

/// Eq. 3 is monotone in ρ and Eq. 4 is antitone in ρ.
#[test]
fn eq3_eq4_monotonicity() {
    check("eq3_eq4_monotonicity", |g: &mut Gen| -> TkResult {
        let model = any_model(g);
        let r1 = g.f64_in(0.0..1.0);
        let r2 = g.f64_in(0.0..1.0);
        let (lo, hi) = if r1 <= r2 { (r1, r2) } else { (r2, r1) };
        tk_assert!(model.p_busy_given_idle(lo) <= model.p_busy_given_idle(hi) + 1e-12);
        tk_assert!(model.p_idle_given_busy(lo) >= model.p_idle_given_busy(hi) - 1e-12);
        Ok(())
    });
}

/// The slot estimate partitions the window and responds monotonically to
/// its inputs.
#[test]
fn estimate_partitions_window() {
    check("estimate_partitions_window", |g: &mut Gen| -> TkResult {
        let model = any_model(g);
        let rho = g.f64_in(0.0..1.0);
        let idle = g.f64_in(0.0..5000.0);
        let busy = g.f64_in(0.0..5000.0);
        let (i_est, b_est) = model.estimate_sender_slots(rho, idle, busy);
        tk_assert!((i_est + b_est - (idle + busy)).abs() < 1e-6);
        tk_assert!(i_est >= -1e-9);
        // More observed idle can only raise the idle estimate.
        let (i2, _) = model.estimate_sender_slots(rho, idle + 100.0, busy);
        tk_assert!(i2 >= i_est - 1e-9);
        Ok(())
    });
}

/// ChannelTracker conserves time: busy + idle always equals the span it
/// has integrated, under any edge sequence.
#[test]
fn tracker_conserves_time() {
    check("tracker_conserves_time", |g: &mut Gen| -> TkResult {
        let edges = g.vec(1..100, |g| (g.u64_in(1..10_000), g.bool()));
        let mut tracker = ChannelTracker::new();
        let mut t = 0u64;
        for &(gap, busy) in &edges {
            t += gap;
            tracker.on_edge(busy, SimTime::from_micros(t));
        }
        let total = tracker.busy_time() + tracker.idle_time();
        tk_assert_eq!(total.as_micros(), t);
        tk_assert!((0.0..=1.0).contains(&tracker.rho()));
        Ok(())
    });
}

/// JointTracker: observed time never exceeds wall time and conditionals
/// stay valid under arbitrary interleavings of edges and transmissions.
#[test]
fn joint_tracker_valid() {
    check("joint_tracker_valid", |g: &mut Gen| -> TkResult {
        let events = g.vec(1..100, |g| {
            (g.u64_in(1..1000), g.u8_in(0..4), g.u64_in(1..500))
        });
        let mut j = JointTracker::new();
        let mut t = 0u64;
        for &(gap, kind, dur) in &events {
            t += gap;
            let now = SimTime::from_micros(t);
            match kind {
                0 => j.on_s_edge(t % 2 == 0, now),
                1 => j.on_r_edge(t % 3 == 0, now),
                2 => j.on_s_tx(now, SimTime::from_micros(t + dur)),
                _ => j.on_r_tx(now, SimTime::from_micros(t + dur)),
            }
        }
        let horizon = t + 1000;
        j.finish(SimTime::from_micros(horizon));
        tk_assert!(j.observed().as_micros() <= horizon);
        for p in [j.p_busy_given_idle(), j.p_idle_given_busy(), j.r_rho()] {
            tk_assert!((0.0..=1.0).contains(&p), "{p}");
        }
        Ok(())
    });
}

/// Density estimation: n̂ is ≥ 1, finite, and monotone in the collision
/// probability.
#[test]
fn density_estimator_monotone() {
    check("density_estimator_monotone", |g: &mut Gen| -> TkResult {
        let p1 = g.f64_in(0.0..0.95);
        let p2 = g.f64_in(0.0..0.95);
        let est = DensityEstimator::paper_default();
        let n1 = est.competing_terminals_for(p1);
        let n2 = est.competing_terminals_for(p2);
        tk_assert!(n1 >= 1.0 && n1.is_finite());
        if p1 < p2 {
            tk_assert!(n1 <= n2 + 1e-9, "p {p1}->{p2}: n {n1}->{n2}");
        }
        Ok(())
    });
}
