//! Region slabs for the sharded world engine.
//!
//! A [`SlabPlan`] cuts the field into `n` vertical slabs of equal width —
//! the *regions* of the region-sharded scheduler (`mg_sim::ShardedScheduler`).
//! It answers three questions:
//!
//! * which region owns a position ([`SlabPlan::region_of`]) — the
//!   deterministic node→region assignment, monotone in `x` and clamped, so
//!   out-of-field wanderers belong to the nearest edge slab;
//! * which contiguous region range an interference footprint can touch
//!   ([`SlabPlan::region_span`]) — the key to *region-local* footprint-memo
//!   epochs in the [`Medium`](crate::Medium): a memoised footprint is
//!   invalidated only by movement inside the slabs its disk overlaps;
//! * whether a position sits in the **halo ring** of a seam
//!   ([`SlabPlan::is_halo`]) — within one interference horizon of a region
//!   boundary, where a transmission's footprint can cross into a neighbor
//!   slab and its state updates must flow through the deterministic merge
//!   point rather than being mutated from another region's lane.
//!
//! Slabs are vertical (x-axis cuts) because `region_of` must be monotone in
//! one coordinate for the span argument to hold: the footprint's x-extent
//! `[x−h, x+h]` then maps to a contiguous, clamp-safe region interval that
//! provably contains the region of every covered node.

use mg_geom::Vec2;

/// An immutable partition of the field into equal-width vertical region
/// slabs. Cheap to copy; the [`Medium`](crate::Medium) and the scenario
/// layer share one plan so node→region assignment is identical everywhere.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct SlabPlan {
    regions: u32,
    /// Nominal field width the slabs divide, meters.
    field_w: f64,
    /// Width of one slab, meters (`field_w / regions`).
    slab_w: f64,
}

impl SlabPlan {
    /// Divides a field of width `field_w` meters into `regions` equal
    /// vertical slabs.
    ///
    /// # Panics
    ///
    /// Panics if `regions == 0` or `field_w` is not strictly positive.
    pub fn new(regions: u32, field_w: f64) -> Self {
        assert!(regions >= 1, "need at least one region");
        assert!(
            field_w.is_finite() && field_w > 0.0,
            "field width must be positive, got {field_w}"
        );
        SlabPlan {
            regions,
            field_w,
            slab_w: field_w / f64::from(regions),
        }
    }

    /// Number of region slabs.
    pub fn regions(&self) -> u32 {
        self.regions
    }

    /// Width of one slab, meters.
    pub fn slab_width(&self) -> f64 {
        self.slab_w
    }

    /// The region owning x-coordinate `x`: `floor(x / slab_w)` clamped into
    /// `[0, regions)`. Monotone non-decreasing in `x`, total over all finite
    /// coordinates (mobility can wander past the nominal field; wanderers
    /// belong to the nearest edge slab).
    pub fn region_of_x(&self, x: f64) -> u32 {
        if !x.is_finite() || x <= 0.0 {
            return 0;
        }
        let r = (x / self.slab_w).floor();
        if r >= f64::from(self.regions) {
            self.regions - 1
        } else {
            r as u32
        }
    }

    /// The region owning `pos` (slabs are vertical: only `x` matters).
    pub fn region_of(&self, pos: Vec2) -> u32 {
        self.region_of_x(pos.x)
    }

    /// The contiguous region interval `[lo, hi]` that the x-extent
    /// `[x − reach, x + reach]` overlaps. Because [`SlabPlan::region_of_x`]
    /// is monotone and clamped, every position within `reach` meters of
    /// `(x, ·)` — including out-of-field positions — belongs to a region in
    /// this interval.
    pub fn region_span(&self, x: f64, reach: f64) -> (u32, u32) {
        (self.region_of_x(x - reach), self.region_of_x(x + reach))
    }

    /// Distance from `pos` to the nearest *interior* seam (region boundary),
    /// meters. Infinite for a single-region plan, which has no seams.
    pub fn seam_distance(&self, pos: Vec2) -> f64 {
        if self.regions == 1 {
            return f64::INFINITY;
        }
        (1..self.regions)
            .map(|s| (pos.x - f64::from(s) * self.slab_w).abs())
            .fold(f64::INFINITY, f64::min)
    }

    /// Whether `pos` sits in the halo ring of some seam: within `horizon`
    /// meters of a region boundary, where a transmission footprint can
    /// straddle regions. On a 1-region plan nothing is halo.
    pub fn is_halo(&self, pos: Vec2, horizon: f64) -> bool {
        self.seam_distance(pos) <= horizon
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn region_of_is_monotone_and_clamped() {
        let p = SlabPlan::new(4, 1000.0);
        assert_eq!(p.slab_width(), 250.0);
        assert_eq!(p.region_of_x(-50.0), 0);
        assert_eq!(p.region_of_x(0.0), 0);
        assert_eq!(p.region_of_x(249.9), 0);
        assert_eq!(p.region_of_x(250.0), 1);
        assert_eq!(p.region_of_x(999.9), 3);
        assert_eq!(p.region_of_x(1000.0), 3, "clamped at the top");
        assert_eq!(p.region_of_x(1e9), 3);
        assert_eq!(p.region_of_x(f64::NAN), 0, "NaN falls in the edge slab");
        let mut prev = 0;
        for i in 0..2000 {
            let r = p.region_of_x(f64::from(i) - 500.0);
            assert!(r >= prev, "monotone");
            prev = r;
        }
    }

    #[test]
    fn region_span_contains_every_covered_region() {
        let p = SlabPlan::new(5, 2500.0);
        for &x in &[-700.0, 0.0, 333.0, 1250.0, 2499.0, 3100.0] {
            for &reach in &[0.0, 100.0, 551.0, 1700.0, 5000.0] {
                let (lo, hi) = p.region_span(x, reach);
                assert!(lo <= hi);
                // Any offset within reach lands inside [lo, hi].
                for k in -10..=10 {
                    let off = reach * f64::from(k) / 10.0;
                    let r = p.region_of_x(x + off);
                    assert!((lo..=hi).contains(&r), "x={x} off={off} r={r} not in [{lo},{hi}]");
                }
            }
        }
    }

    #[test]
    fn seam_distance_and_halo() {
        let p = SlabPlan::new(2, 1000.0); // one seam at x = 500
        assert_eq!(p.seam_distance(Vec2::new(500.0, 77.0)), 0.0);
        assert_eq!(p.seam_distance(Vec2::new(200.0, 0.0)), 300.0);
        assert_eq!(p.seam_distance(Vec2::new(900.0, 0.0)), 400.0);
        assert!(p.is_halo(Vec2::new(450.0, 0.0), 100.0));
        assert!(!p.is_halo(Vec2::new(300.0, 0.0), 100.0));
        let one = SlabPlan::new(1, 1000.0);
        assert_eq!(one.seam_distance(Vec2::new(500.0, 0.0)), f64::INFINITY);
        assert!(!one.is_halo(Vec2::new(500.0, 0.0), 1e12), "no seams, no halo");
    }

    #[test]
    #[should_panic(expected = "at least one region")]
    fn zero_regions_panics() {
        SlabPlan::new(0, 1000.0);
    }
}
