//! Uniform cell grid over node positions — the spatial index behind
//! [`crate::MediumIndex::Grid`].
//!
//! Cells are squares of a fixed edge length (the medium uses its sensing
//! horizon, so a disk query touches at most a 3×3 neighborhood). Cell
//! coordinates are signed, so nodes that wander outside the nominal field
//! (mobility does not clamp to it) keep working. The grid stores *candidate*
//! sets only: callers apply the exact distance / threshold filter, which
//! keeps every power computation bit-identical to the naive full scan.

use crate::NodeId;
use mg_geom::Vec2;
use std::collections::HashMap;

/// Grid of node ids bucketed by `floor(coord / cell)`.
pub(crate) struct CellGrid {
    cell: f64,
    cells: HashMap<(i64, i64), Vec<NodeId>>,
    /// Current cell key of every node (incremental maintenance).
    keys: Vec<(i64, i64)>,
}

impl CellGrid {
    /// Builds the grid with the given cell edge length over `positions`.
    pub fn new(cell: f64, positions: &[Vec2]) -> Self {
        // Guard degenerate edge lengths (zero ranges, NaN budgets): a 1 m
        // cell is always a valid, if fine-grained, bucketing.
        let cell = if cell.is_finite() && cell >= 1.0 { cell } else { 1.0 };
        let mut grid = CellGrid {
            cell,
            cells: HashMap::new(),
            keys: vec![(0, 0); positions.len()],
        };
        for (node, &p) in positions.iter().enumerate() {
            let k = grid.key(p);
            grid.keys[node] = k;
            grid.cells.entry(k).or_default().push(node);
        }
        grid
    }

    /// The cell edge length in meters.
    #[cfg(test)]
    pub fn cell_size(&self) -> f64 {
        self.cell
    }

    /// Number of occupied cells (diagnostic).
    #[cfg(test)]
    pub fn occupied_cells(&self) -> usize {
        self.cells.len()
    }

    fn key(&self, p: Vec2) -> (i64, i64) {
        (
            (p.x / self.cell).floor() as i64,
            (p.y / self.cell).floor() as i64,
        )
    }

    /// Re-buckets `node` after a position change. O(occupants of the old
    /// cell); a no-op when the move stays inside one cell.
    pub fn move_node(&mut self, node: NodeId, to: Vec2) {
        let new = self.key(to);
        let old = self.keys[node];
        if new == old {
            return;
        }
        let list = self.cells.get_mut(&old).expect("node's cell is occupied");
        let at = list
            .iter()
            .position(|&v| v == node)
            .expect("node is in its recorded cell");
        list.swap_remove(at);
        if list.is_empty() {
            self.cells.remove(&old);
        }
        self.keys[node] = new;
        self.cells.entry(new).or_default().push(node);
    }

    /// Collects into `out` every node whose cell intersects the axis-aligned
    /// bounding square of the disk (`center`, `range`), in ascending node-id
    /// order. A superset of the nodes within `range`: callers apply the
    /// exact filter.
    pub fn candidates_within(&self, center: Vec2, range: f64, out: &mut Vec<NodeId>) {
        out.clear();
        let r = range.max(0.0);
        let x0 = ((center.x - r) / self.cell).floor() as i64;
        let x1 = ((center.x + r) / self.cell).floor() as i64;
        let y0 = ((center.y - r) / self.cell).floor() as i64;
        let y1 = ((center.y + r) / self.cell).floor() as i64;
        let window = (x1 - x0 + 1) as i128 * (y1 - y0 + 1) as i128;
        if window > self.cells.len() as i128 {
            // The query disk spans more cells than are occupied (huge range
            // or tiny cells): walking the occupied cells is cheaper and
            // never loops over empty space.
            for (&(cx, cy), list) in &self.cells {
                if (x0..=x1).contains(&cx) && (y0..=y1).contains(&cy) {
                    out.extend_from_slice(list);
                }
            }
        } else {
            for cx in x0..=x1 {
                for cy in y0..=y1 {
                    if let Some(list) = self.cells.get(&(cx, cy)) {
                        out.extend_from_slice(list);
                    }
                }
            }
        }
        // Hash-map iteration order must never leak into results: ascending
        // node order is the contract (it mirrors the naive 0..n scan).
        out.sort_unstable();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_of(cell: f64, pts: &[(f64, f64)]) -> CellGrid {
        let v: Vec<Vec2> = pts.iter().map(|&(x, y)| Vec2::new(x, y)).collect();
        CellGrid::new(cell, &v)
    }

    fn query(g: &CellGrid, x: f64, y: f64, r: f64) -> Vec<NodeId> {
        let mut out = Vec::new();
        g.candidates_within(Vec2::new(x, y), r, &mut out);
        out
    }

    #[test]
    fn candidates_cover_the_disk_and_come_back_sorted() {
        let g = grid_of(100.0, &[(50.0, 50.0), (250.0, 50.0), (950.0, 950.0)]);
        let c = query(&g, 60.0, 60.0, 250.0);
        assert_eq!(c, vec![0, 1], "both near nodes, far node excluded");
    }

    #[test]
    fn node_exactly_on_a_cell_boundary_is_found_from_both_sides() {
        // x = 100.0 buckets into cell 1 (floor), but a query from cell 0
        // whose window reaches the boundary must still see it.
        let g = grid_of(100.0, &[(100.0, 0.0)]);
        assert_eq!(query(&g, 99.0, 0.0, 1.0), vec![0]);
        assert_eq!(query(&g, 101.0, 0.0, 1.0), vec![0]);
        // Negative-side boundary too: -0.0/-epsilon straddle cell -1 / 0.
        let g = grid_of(100.0, &[(0.0, 0.0)]);
        assert_eq!(query(&g, -1.0, 0.0, 2.0), vec![0]);
    }

    #[test]
    fn moves_across_cells_and_out_of_field_bounds() {
        let mut g = grid_of(100.0, &[(50.0, 50.0), (150.0, 50.0)]);
        // Wander far outside any nominal field, including negative space.
        g.move_node(0, Vec2::new(-730.0, 12_345.0));
        assert_eq!(query(&g, -700.0, 12_300.0, 100.0), vec![0]);
        assert_eq!(query(&g, 50.0, 50.0, 120.0), vec![1], "old cell vacated");
        // And back.
        g.move_node(0, Vec2::new(55.0, 55.0));
        assert_eq!(query(&g, 50.0, 50.0, 120.0), vec![0, 1]);
        assert_eq!(g.occupied_cells(), 2); // cells (0,0) and (1,0)
    }

    #[test]
    fn all_nodes_in_one_cell_is_fine() {
        let pts: Vec<(f64, f64)> = (0..32).map(|i| (i as f64 * 0.1, 0.0)).collect();
        let g = grid_of(1000.0, &pts);
        assert_eq!(g.occupied_cells(), 1);
        let c = query(&g, 0.0, 0.0, 5.0);
        assert_eq!(c, (0..32).collect::<Vec<_>>());
    }

    #[test]
    fn range_spanning_many_cells_finds_everything() {
        // Cell 100 m, query radius 450 m → a 9×9 cell window (> 3×3).
        let pts: Vec<(f64, f64)> = (0..10).map(|i| (i as f64 * 100.0, 0.0)).collect();
        let g = grid_of(100.0, &pts);
        let c = query(&g, 0.0, 0.0, 450.0);
        assert_eq!(c, vec![0, 1, 2, 3, 4], "bounding square keeps 0..=450 m");
    }

    #[test]
    fn oversized_window_falls_back_to_occupied_cell_walk() {
        let g = grid_of(1.0, &[(0.0, 0.0), (1e6, 1e6)]);
        // 2e6-cell window with 2 occupied cells: must terminate instantly.
        let c = query(&g, 0.0, 0.0, 2e6);
        assert_eq!(c, vec![0, 1]);
    }

    #[test]
    fn move_across_a_region_seam_keeps_both_sides_queryable() {
        // The sharded engine cuts the field into vertical slabs; a slab seam
        // generally falls *inside* a grid cell (cell = sensing horizon,
        // slab = field/regions), so a node stepping across the seam often
        // stays in the same bucket. Walk a node across x = 500 in small
        // steps and assert it is always found from both sides of the seam.
        let mut g = grid_of(551.0, &[(460.0, 100.0), (2500.0, 100.0)]);
        for step in 0..20 {
            let x = 460.0 + f64::from(step) * 5.0; // crosses 500, then 551
            g.move_node(0, Vec2::new(x, 100.0));
            assert_eq!(query(&g, 499.0, 100.0, 80.0), vec![0], "left-side query, x={x}");
            assert_eq!(query(&g, 501.0, 100.0, 80.0), vec![0], "right-side query, x={x}");
        }
        // Landing exactly on a cell boundary that is also a seam multiple.
        g.move_node(0, Vec2::new(551.0, 100.0));
        assert_eq!(query(&g, 550.9, 100.0, 1.0), vec![0]);
        assert_eq!(query(&g, 551.1, 100.0, 1.0), vec![0]);
    }

    #[test]
    fn degenerate_cell_size_is_clamped() {
        let g = grid_of(0.0, &[(5.0, 5.0)]);
        assert_eq!(g.cell_size(), 1.0);
        assert_eq!(query(&g, 5.0, 5.0, 1.0), vec![0]);
    }
}
