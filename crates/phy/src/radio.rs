//! Radio front-end parameters: power, thresholds, capture.

use crate::propagation::PropagationModel;

/// Converts dBm to milliwatts.
pub fn dbm_to_mw(dbm: f64) -> f64 {
    10f64.powf(dbm / 10.0)
}

/// Converts milliwatts to dBm.
///
/// # Panics
///
/// Panics if `mw` is not strictly positive.
pub fn mw_to_dbm(mw: f64) -> f64 {
    assert!(mw > 0.0, "power must be positive to express in dBm");
    10.0 * mw.log10()
}

/// The radio's operating point.
///
/// Two thresholds realize the paper's two disks:
///
/// * `rx_thresh_dbm` — minimum power to *decode* a frame (≙ transmission
///   range, 250 m in Table 1);
/// * `cs_thresh_dbm` — minimum power to *sense* energy (≙ sensing /
///   interference range, 550 m in Table 1).
///
/// `capture_db` is the SINR margin required to decode in the presence of
/// interference (ns-2's `CPThresh_`, 10 dB).
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct RadioParams {
    /// Transmit power, dBm (ns-2 default 24.5 dBm ≈ 281.8 mW).
    pub tx_power_dbm: f64,
    /// Reception (decode) threshold, dBm.
    pub rx_thresh_dbm: f64,
    /// Carrier-sense threshold, dBm; must not exceed `rx_thresh_dbm`.
    pub cs_thresh_dbm: f64,
    /// Capture (SINR) threshold, dB.
    pub capture_db: f64,
    /// Thermal-noise floor, dBm.
    pub noise_floor_dbm: f64,
}

impl RadioParams {
    /// ns-2's default transmit power.
    pub const DEFAULT_TX_POWER_DBM: f64 = 24.5;

    /// Derives thresholds so that the *mean* received power at `tx_range`
    /// meters equals the decode threshold and at `cs_range` meters equals
    /// the sense threshold — i.e. builds the paper's 250 m / 550 m disks for
    /// the given propagation model.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < tx_range ≤ cs_range`.
    pub fn calibrated(prop: &PropagationModel, tx_range: f64, cs_range: f64) -> Self {
        assert!(
            tx_range > 0.0 && tx_range <= cs_range,
            "need 0 < tx_range ≤ cs_range, got {tx_range}, {cs_range}"
        );
        let tx_power_dbm = Self::DEFAULT_TX_POWER_DBM;
        RadioParams {
            tx_power_dbm,
            rx_thresh_dbm: tx_power_dbm - prop.mean_path_loss_db(tx_range),
            cs_thresh_dbm: tx_power_dbm - prop.mean_path_loss_db(cs_range),
            capture_db: 10.0,
            noise_floor_dbm: -100.0,
        }
    }

    /// The paper's Table 1 radio: 250 m transmission range, 550 m sensing
    /// range, over the given propagation model.
    pub fn paper_default(prop: &PropagationModel) -> Self {
        Self::calibrated(prop, 250.0, 550.0)
    }

    /// Received power (dBm) for a given path loss.
    pub fn rx_power_dbm(&self, path_loss_db: f64) -> f64 {
        self.tx_power_dbm - path_loss_db
    }

    /// Whether power `p_dbm` is decodable in the absence of interference.
    pub fn decodable(&self, p_dbm: f64) -> bool {
        p_dbm >= self.rx_thresh_dbm
    }

    /// Whether power `p_dbm` trips the carrier-sense circuit.
    pub fn senseable(&self, p_dbm: f64) -> bool {
        p_dbm >= self.cs_thresh_dbm
    }

    /// Whether a signal of `signal_mw` survives interference of
    /// `interference_mw` (plus the noise floor) under the capture threshold.
    pub fn captures(&self, signal_mw: f64, interference_mw: f64) -> bool {
        let noise_mw = dbm_to_mw(self.noise_floor_dbm);
        let sinr_db = mw_to_dbm(signal_mw) - mw_to_dbm(interference_mw + noise_mw);
        sinr_db >= self.capture_db
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dbm_mw_roundtrip() {
        assert!((dbm_to_mw(0.0) - 1.0).abs() < 1e-12);
        assert!((dbm_to_mw(30.0) - 1000.0).abs() < 1e-9);
        for dbm in [-90.0, -30.0, 0.0, 24.5] {
            assert!((mw_to_dbm(dbm_to_mw(dbm)) - dbm).abs() < 1e-9);
        }
    }

    #[test]
    fn calibration_builds_the_two_disks() {
        let prop = PropagationModel::free_space();
        let r = RadioParams::paper_default(&prop);
        let power_at = |d: f64| r.rx_power_dbm(prop.mean_path_loss_db(d));
        // Inside / outside the decode disk.
        assert!(r.decodable(power_at(249.0)));
        assert!(r.decodable(power_at(250.0)));
        assert!(!r.decodable(power_at(251.0)));
        // Inside / outside the sense disk.
        assert!(r.senseable(power_at(549.0)));
        assert!(!r.senseable(power_at(551.0)));
        // The rings nest properly.
        assert!(r.cs_thresh_dbm < r.rx_thresh_dbm);
        // Between 250 m and 550 m: sensed but not decodable (the paper's
        // "interference footprint" zone).
        let mid = power_at(400.0);
        assert!(r.senseable(mid) && !r.decodable(mid));
    }

    #[test]
    fn capture_threshold() {
        let prop = PropagationModel::free_space();
        let r = RadioParams::paper_default(&prop);
        // 20 dB above the interferer: captured.
        assert!(r.captures(dbm_to_mw(-50.0), dbm_to_mw(-70.0)));
        // 3 dB above: not captured at a 10 dB threshold.
        assert!(!r.captures(dbm_to_mw(-50.0), dbm_to_mw(-53.0)));
        // No interference: limited by the noise floor only.
        assert!(r.captures(dbm_to_mw(-80.0), 0.0));
    }

    #[test]
    #[should_panic(expected = "tx_range")]
    fn inverted_ranges_rejected() {
        RadioParams::calibrated(&PropagationModel::free_space(), 600.0, 550.0);
    }
}
