//! The shared wireless medium.
//!
//! The [`Medium`] is the meeting point of all radios: MAC layers start and
//! end transmissions on it, and it answers the two questions the rest of the
//! stack needs:
//!
//! 1. **Carrier sense** — which nodes currently perceive a busy channel,
//!    reported as busy/idle *edges* whenever a transmission starts or ends
//!    (per-transmitter threshold model: a node is busy iff at least one
//!    active transmitter's signal reaches it above the CS threshold — the
//!    unit-disk behaviour the paper's analysis assumes).
//! 2. **Reception outcomes** — when a transmission ends, what did each node
//!    get? Decoded (above the RX threshold and above the capture SINR for
//!    the whole flight), collided (decodable power, drowned by overlap),
//!    sensed-only (energy but no frame — triggers EIFS), or nothing.
//!
//! # Interference footprint
//!
//! A transmission exists only inside its *interference footprint*: the disk
//! where its power stays within one capture threshold (10 dB) of the
//! carrier-sense threshold. Inside the sensing disk (the paper's 550 m) a
//! signal trips carrier sense and can carry a frame; in the ring beyond it
//! (out to ≈1.7 km for the paper's free-space radio) it is too weak to
//! sense but still strong enough to tip a capture decision against a
//! legitimate frame, so it keeps contributing to the aggregate-interference
//! sums. Energy weaker than that is treated as exactly zero — by then a
//! single interferer sits ≥ 10 dB under the weakest senseable signal and
//! ≥ 17 dB under the weakest decodable one.
//!
//! Interference accounting is exact for that truncation: for every
//! in-flight frame the medium tracks the *maximum aggregate co-channel
//! power* each footprint node observed during the frame's airtime, and
//! applies the capture test at the end.
//!
//! # Spatial index
//!
//! [`MediumIndex`] picks between two complete implementations of that
//! contract:
//!
//! * [`MediumIndex::Naive`] — the reference. Footprint discovery scans
//!   every node, and each in-flight frame keeps *dense* per-node power and
//!   worst-interference vectors that are rescanned in full whenever any
//!   transmission starts (`O(nodes)` per query, `O(active × nodes)` per
//!   refresh). Simple enough to audit by eye; unusable at thousands of
//!   nodes.
//! * [`MediumIndex::Grid`] (the default) — node positions are bucketed in
//!   a cell grid sized to the sensing horizon, so discovery touches only
//!   the cell window covering the interference horizon; per-frame records
//!   are sparse `(node, power)` lists, and a per-node *coverer* index maps
//!   each node to the in-flight frames covering it, so the interference
//!   refresh touches only frames whose footprints actually intersect the
//!   new one. Everything is `O(footprint)`, independent of world size.
//!
//! The two implementations are **observationally byte-identical** — same
//! edges, receptions, journals and RNG-draw streams. That equivalence is
//! not by construction; it is *proven* by the differential property suite
//! in `tests/diff_index.rs` (and end-to-end by `tests/trace_determinism.rs`
//! at 500 nodes). Both visit candidates in ascending node order, and with
//! a stochastic propagation model (shadowing `σ > 0`) every receiver
//! consumes an RNG draw, so `Grid` transparently falls back to a full
//! discovery scan to keep the draw streams identical.

use crate::index::CellGrid;
use crate::propagation::PropagationModel;
use crate::radio::{dbm_to_mw, mw_to_dbm, RadioParams};
use crate::shard::SlabPlan;
use crate::NodeId;
use mg_geom::Vec2;
use mg_sim::rng::Rng;
use mg_sim::SimTime;
use mg_trace::{EventKind, Tracer};

/// Identifies one in-flight transmission.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct TxId(u64);

/// How the medium discovers which nodes a transmission reaches.
///
/// Both variants produce byte-identical results (edges, outcomes, trace
/// journals — proven in `tests/diff_index.rs`); `Grid` makes every
/// operation O(footprint) instead of O(nodes).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum MediumIndex {
    /// The reference implementation: full node scans and dense per-node
    /// interference bookkeeping, refreshed in full on every transmission.
    Naive,
    /// Cell-grid spatial index over node positions (maintained
    /// incrementally on mobility) plus sparse per-footprint records and a
    /// per-node coverer index localizing the interference refresh.
    #[default]
    Grid,
}

impl MediumIndex {
    /// Parses `"naive"` / `"grid"` (case-insensitive).
    pub fn parse(s: &str) -> Result<Self, String> {
        match s.trim().to_ascii_lowercase().as_str() {
            "naive" => Ok(MediumIndex::Naive),
            "grid" => Ok(MediumIndex::Grid),
            other => Err(format!("unknown medium index {other:?}: expected naive or grid")),
        }
    }
}

/// A change in some node's carrier-sense state.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct EdgeChange {
    /// The node whose perception changed.
    pub node: NodeId,
    /// `true` = channel went busy; `false` = channel went idle.
    pub busy: bool,
}

/// What a node got out of a completed transmission.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RxOutcome {
    /// Frame decodable: strong enough and survived all interference.
    Decoded,
    /// Power was decodable but concurrent transmissions destroyed it (the
    /// node perceives a corrupted frame → EIFS recovery).
    Collided,
    /// Energy above the carrier-sense threshold but below decode level, or
    /// the node was transmitting itself while the frame was in flight.
    Sensed,
    /// Nothing perceptible at this node.
    OutOfRange,
    /// The node is the transmitter.
    SelfTx,
}

impl RxOutcome {
    /// True when the frame was successfully decoded.
    pub fn is_decoded(&self) -> bool {
        matches!(self, RxOutcome::Decoded)
    }

    /// True when the node perceived a corrupted frame (collision).
    pub fn is_collided(&self) -> bool {
        matches!(self, RxOutcome::Collided)
    }
}

/// Everything known about a transmission once it ends.
///
/// Receptions are **sparse**: only nodes inside the sensing footprint
/// appear (ascending node id). Everyone else is [`RxOutcome::OutOfRange`];
/// use [`EndedTx::outcome_of`] for a dense view.
#[derive(Clone, Debug)]
pub struct EndedTx {
    /// The transmitting node.
    pub src: NodeId,
    /// When the transmission started.
    pub start: SimTime,
    /// `(node, outcome)` for every node in the sensing footprint, in
    /// ascending node order. Never contains `src`, `OutOfRange` or `SelfTx`.
    pub receptions: Vec<(NodeId, RxOutcome)>,
    /// Carrier-sense edges caused by this transmission ending.
    pub edges: Vec<EdgeChange>,
}

impl EndedTx {
    /// The outcome at `node`, including the implicit ones: `SelfTx` for the
    /// transmitter and `OutOfRange` for nodes outside the footprint.
    pub fn outcome_of(&self, node: NodeId) -> RxOutcome {
        if node == self.src {
            return RxOutcome::SelfTx;
        }
        match self.receptions.binary_search_by_key(&node, |&(v, _)| v) {
            Ok(i) => self.receptions[i].1,
            Err(_) => RxOutcome::OutOfRange,
        }
    }
}

/// One node inside a transmission's interference footprint.
#[derive(Clone, Copy)]
struct Cover {
    node: NodeId,
    /// Received power of the transmission at `node`, mW.
    p_mw: f64,
    /// Whether that power trips `node`'s carrier sense (inside the sensing
    /// disk, not just the interference ring).
    senseable: bool,
}

struct ActiveTx {
    id: TxId,
    src: NodeId,
    start: SimTime,
    /// Every node in the interference footprint, ascending by node id.
    covered: Vec<Cover>,
    /// Whether each footprint node transmitted at any point during this
    /// frame's flight — parallel to `covered`.
    overlapped: Vec<bool>,
    /// Sparse bookkeeping (frames started under `Grid`): max aggregate
    /// co-channel power each footprint node saw during this frame, mW —
    /// parallel to `covered`. Empty for dense frames.
    max_interf_mw: Vec<f64>,
    /// Dense bookkeeping (frames started under `Naive` — the reference
    /// implementation): received power and worst aggregate interference
    /// indexed by node id, rescanned in full on every `begin_tx`. Empty
    /// for sparse frames.
    power_dense: Vec<f64>,
    max_interf_dense: Vec<f64>,
}

impl ActiveTx {
    /// Whether this frame uses the dense reference bookkeeping.
    fn is_dense(&self) -> bool {
        !self.power_dense.is_empty()
    }
}

/// One memoised footprint, valid while no node has moved inside the region
/// slabs the footprint's interference disk overlaps.
struct FpMemo {
    /// First region of the span the footprint can touch.
    r_lo: u32,
    /// Snapshot of `pos_epochs[r_lo .. r_lo + epochs.len()]` at compute
    /// time; the memo replays iff the live slice still matches.
    epochs: Vec<u64>,
    fp: Vec<Cover>,
}

/// The shared channel: all active transmissions plus node positions.
pub struct Medium {
    prop: PropagationModel,
    radio: RadioParams,
    positions: Vec<Vec2>,
    /// Number of foreign transmissions each node currently senses.
    cs_count: Vec<u32>,
    /// Aggregate received power at each node from all active transmissions.
    agg_mw: Vec<f64>,
    /// Slab of in-flight transmissions: stable slots so the coverer index
    /// can point into it; `None` entries are free (see `free_slots`).
    slots: Vec<Option<ActiveTx>>,
    free_slots: Vec<usize>,
    /// Number of occupied slots.
    active_len: usize,
    /// Occupied slots holding *dense* (Naive-started) frames.
    dense_len: usize,
    /// For each node, the sparse in-flight frames covering it, as
    /// `(slot, index into that frame's covered list)`. Dense frames are
    /// not indexed — they rescan everything anyway.
    coverers: Vec<Vec<(u32, u32)>>,
    /// In-flight transmissions per node (a MAC starts at most one, but the
    /// medium does not rely on that).
    tx_count: Vec<u32>,
    next_id: u64,
    tracer: Tracer,
    index: MediumIndex,
    /// Farthest distance at which the interference cutoff (CS threshold
    /// minus the capture margin) can be met, when the propagation model is
    /// deterministic. `None` ⇒ per-receiver shadowing draws: the footprint
    /// is unbounded and discovery must scan all nodes.
    horizon: Option<f64>,
    /// Present iff `index == Grid`.
    grid: Option<CellGrid>,
    /// Reusable candidate buffer for grid queries.
    scratch: Vec<NodeId>,
    /// Per-source footprint memo for the Grid + deterministic-propagation
    /// path. A footprint is a pure function of node positions, so until a
    /// node moves *inside the region span the footprint overlaps* the memo
    /// replays the exact `Cover` list discovery would rebuild.
    fp_cache: Vec<Option<FpMemo>>,
    /// Per-region position epochs: `set_position` bumps the mover's old and
    /// new regions; stale `fp_cache` entries are simply recomputed on their
    /// next use. One entry (a global epoch) without a shard plan.
    pos_epochs: Vec<u64>,
    /// Region-slab partition of the field (the sharded world engine's
    /// node→region map). `None` ⇒ one implicit region.
    shard_plan: Option<SlabPlan>,
}

impl Medium {
    /// Creates a medium over the given node positions with the default
    /// [`MediumIndex::Grid`] discovery.
    ///
    /// # Panics
    ///
    /// Panics if `positions` is empty.
    pub fn new(prop: PropagationModel, radio: RadioParams, positions: Vec<Vec2>) -> Self {
        Self::with_index(prop, radio, positions, MediumIndex::default())
    }

    /// Creates a medium with an explicit discovery strategy.
    ///
    /// # Panics
    ///
    /// Panics if `positions` is empty.
    pub fn with_index(
        prop: PropagationModel,
        radio: RadioParams,
        positions: Vec<Vec2>,
        index: MediumIndex,
    ) -> Self {
        assert!(!positions.is_empty(), "a medium needs at least one node");
        let n = positions.len();
        let mut m = Medium {
            prop,
            radio,
            positions,
            cs_count: vec![0; n],
            agg_mw: vec![0.0; n],
            slots: Vec::new(),
            free_slots: Vec::new(),
            active_len: 0,
            dense_len: 0,
            coverers: vec![Vec::new(); n],
            tx_count: vec![0; n],
            next_id: 0,
            tracer: Tracer::disabled(),
            index: MediumIndex::Naive,
            horizon: None,
            grid: None,
            scratch: Vec::new(),
            fp_cache: (0..n).map(|_| None).collect(),
            pos_epochs: vec![0],
            shard_plan: None,
        };
        m.set_index(index);
        m
    }

    /// Switches the discovery strategy (rebuilds the grid when entering
    /// `Grid`). Transmissions already in flight keep the footprint they
    /// started with; results are identical either way.
    pub fn set_index(&mut self, index: MediumIndex) {
        self.index = index;
        let budget = self.radio.tx_power_dbm - self.interference_cutoff_dbm();
        self.horizon = if self.prop.is_deterministic() {
            // Over-approximated to the safe side, plus a metre of slack so
            // boundary nodes always land inside the candidate window.
            Some(self.prop.max_distance_for_loss(budget) + 1.0)
        } else {
            None
        };
        self.grid = match index {
            MediumIndex::Naive => None,
            MediumIndex::Grid => {
                // Cell size = the mean-loss *sensing* horizon: footprint
                // queries then touch the small cell window covering the
                // interference horizon, while `nodes_within` calls (tx_range
                // scale) stay near 3×3.
                let cs_budget = self.radio.tx_power_dbm - self.radio.cs_thresh_dbm;
                let cell = self.prop.max_distance_for_loss(cs_budget) + 1.0;
                Some(CellGrid::new(cell, &self.positions))
            }
        };
    }

    /// Weakest power that still participates in interference sums, dBm:
    /// one capture threshold below the carrier-sense threshold. Anything
    /// weaker can neither be sensed nor — even alone — flip a capture
    /// decision against the weakest senseable signal, and is treated as
    /// exactly zero (in both index modes, so the truncation never shows up
    /// in differential comparisons).
    fn interference_cutoff_dbm(&self) -> f64 {
        self.radio.cs_thresh_dbm - self.radio.capture_db
    }

    /// The discovery strategy in force.
    pub fn index(&self) -> MediumIndex {
        self.index
    }

    /// Journals every carrier-sense edge (at `Debug` level for the `phy`
    /// subsystem) through `tracer`. Disabled by default.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.positions.len()
    }

    /// Current position of `node`.
    pub fn position(&self, node: NodeId) -> Vec2 {
        self.positions[node]
    }

    /// Moves a node (mobility). Affects only *future* transmissions; frames
    /// already in flight keep the geometry they started with (frames last
    /// ≲ 3 ms, during which a 20 m/s node moves 6 cm). The spatial index is
    /// maintained incrementally. Positions outside the nominal field
    /// (including negative coordinates) are fine.
    pub fn set_position(&mut self, node: NodeId, pos: Vec2) {
        let old = self.positions[node];
        self.positions[node] = pos;
        match &self.shard_plan {
            // Bump the regions the node left and entered: only footprints
            // whose spans overlap one of them can see the move.
            Some(plan) => {
                self.pos_epochs[plan.region_of(old) as usize] += 1;
                self.pos_epochs[plan.region_of(pos) as usize] += 1;
            }
            None => self.pos_epochs[0] += 1,
        }
        if let Some(grid) = &mut self.grid {
            grid.move_node(node, pos);
        }
    }

    /// Installs (or clears) the region-slab partition. Resets the per-region
    /// position epochs and drops all memoised footprints: memo validity is
    /// judged against region spans, which just changed meaning.
    pub fn set_shard_plan(&mut self, plan: Option<SlabPlan>) {
        self.shard_plan = plan;
        let regions = plan.map_or(1, |p| p.regions() as usize);
        self.pos_epochs = vec![0; regions];
        for e in &mut self.fp_cache {
            *e = None;
        }
    }

    /// The region-slab partition in force, if any.
    pub fn shard_plan(&self) -> Option<&SlabPlan> {
        self.shard_plan.as_ref()
    }

    /// The region owning `node`'s current position (0 without a plan).
    pub fn region_of(&self, node: NodeId) -> usize {
        self.shard_plan
            .as_ref()
            .map_or(0, |p| p.region_of(self.positions[node]) as usize)
    }

    /// Farthest distance at which a transmission still participates in
    /// interference sums, when the propagation model is deterministic
    /// (`None` under shadowing: the footprint is unbounded). This is the
    /// halo width of the sharded engine: a node within this distance of a
    /// region seam has footprints straddling regions.
    pub fn interference_horizon(&self) -> Option<f64> {
        self.horizon
    }

    /// The contiguous region span a footprint centered at `x` can touch.
    fn footprint_span(&self, x: f64) -> (u32, u32) {
        match (&self.shard_plan, self.horizon) {
            (Some(plan), Some(h)) => plan.region_span(x, h),
            _ => (0, 0),
        }
    }

    /// The radio parameters shared by all nodes.
    pub fn radio(&self) -> &RadioParams {
        &self.radio
    }

    /// The propagation model in force.
    pub fn propagation(&self) -> &PropagationModel {
        &self.prop
    }

    /// Whether `node` currently senses a busy channel (physical carrier
    /// sense from *other* transmitters; a node's own transmission does not
    /// count — its MAC knows it is transmitting).
    pub fn carrier_busy(&self, node: NodeId) -> bool {
        self.cs_count[node] > 0
    }

    /// Whether `node` is currently transmitting.
    pub fn is_transmitting(&self, node: NodeId) -> bool {
        self.tx_count[node] > 0
    }

    /// All nodes within `range` meters of `center` (exact Euclidean filter,
    /// inclusive), ascending by id — includes a node sitting exactly at
    /// `center`. Served from the spatial index under `Grid`, identical
    /// output under either index.
    pub fn nodes_within(&self, center: Vec2, range: f64) -> Vec<NodeId> {
        match &self.grid {
            Some(grid) => {
                let mut cand = Vec::new();
                grid.candidates_within(center, range, &mut cand);
                cand.retain(|&v| center.distance(self.positions[v]) <= range);
                cand
            }
            None => (0..self.positions.len())
                .filter(|&v| center.distance(self.positions[v]) <= range)
                .collect(),
        }
    }

    /// Starts a transmission from `src` at time `now`.
    ///
    /// Returns the transmission id (pass it to [`Medium::end_tx`] when the
    /// frame's airtime elapses) and the carrier-sense edges the new energy
    /// causes. Shadowing (if configured) is drawn per receiver from `rng`.
    pub fn begin_tx<R: Rng>(
        &mut self,
        src: NodeId,
        now: SimTime,
        rng: &mut R,
    ) -> (TxId, Vec<EdgeChange>) {
        let id = TxId(self.next_id);
        self.next_id += 1;
        let src_pos = self.positions[src];

        // Footprint discovery: which nodes perceive this transmission, at
        // what power. Candidates are visited in ascending node order on both
        // paths, so edge order and (stochastic) RNG draws are identical.
        let mut covered: Vec<Cover> = Vec::new();
        let mut edges = Vec::new();
        match (&self.grid, self.horizon) {
            (Some(grid), Some(h)) => {
                // Deterministic propagation ⇒ the footprint is a pure
                // function of positions, so replay the memoised Cover list
                // when no node has moved *inside the footprint's region
                // span* since it was computed. Replaying bumps carrier
                // sense in the same ascending order the scan would, so the
                // edge list is identical too.
                let memo = self.fp_cache[src]
                    .as_ref()
                    .filter(|m| {
                        let lo = m.r_lo as usize;
                        self.pos_epochs
                            .get(lo..lo + m.epochs.len())
                            .is_some_and(|live| live == m.epochs)
                    })
                    .map(|m| m.fp.clone());
                match memo {
                    Some(fp) => {
                        covered = fp;
                        for c in &covered {
                            if c.senseable {
                                self.cs_count[c.node] += 1;
                                if self.cs_count[c.node] == 1 {
                                    edges.push(EdgeChange { node: c.node, busy: true });
                                }
                            }
                        }
                    }
                    None => {
                        let mut cand = std::mem::take(&mut self.scratch);
                        grid.candidates_within(src_pos, h, &mut cand);
                        for &v in &cand {
                            if v != src {
                                self.try_cover(src_pos, v, rng, &mut covered, &mut edges);
                            }
                        }
                        self.scratch = cand;
                        let (lo, hi) = self.footprint_span(src_pos.x);
                        self.fp_cache[src] = Some(FpMemo {
                            r_lo: lo,
                            epochs: self.pos_epochs[lo as usize..=hi as usize].to_vec(),
                            fp: covered.clone(),
                        });
                    }
                }
            }
            _ => {
                for v in 0..self.node_count() {
                    if v != src {
                        self.try_cover(src_pos, v, rng, &mut covered, &mut edges);
                    }
                }
            }
        }

        // The new energy raises the aggregate at footprint nodes, which in
        // turn raises the worst-case interference of every in-flight frame
        // wherever the footprints intersect.
        for c in &covered {
            self.agg_mw[c.node] += c.p_mw;
        }
        let n = self.node_count();

        // Dense (reference) frames rescan every node — the O(active × n)
        // loop the Grid strategy exists to avoid. The same pass marks the
        // new transmitter as overlapping wherever it is in the footprint:
        // a node cannot hear a frame while it is transmitting itself.
        if self.dense_len > 0 {
            for slot in 0..self.slots.len() {
                let Some(a) = self.slots[slot].as_mut() else { continue };
                if !a.is_dense() {
                    continue;
                }
                for v in 0..n {
                    let other = self.agg_mw[v] - a.power_dense[v];
                    if other > a.max_interf_dense[v] {
                        a.max_interf_dense[v] = other;
                    }
                }
                if let Ok(i) = a.covered.binary_search_by_key(&src, |c| c.node) {
                    a.overlapped[i] = true;
                }
            }
        }
        // Sparse frames refresh through the coverer index: only the frames
        // actually covering a node whose aggregate just changed are touched.
        // Every (frame, node) cell is an independent max, so visit order is
        // immaterial — the arithmetic is identical to the dense rescan.
        for c in &covered {
            for &(slot, i) in &self.coverers[c.node] {
                let a = self.slots[slot as usize].as_mut().expect("coverer points at live slot");
                let other = self.agg_mw[c.node] - a.covered[i as usize].p_mw;
                if other > a.max_interf_mw[i as usize] {
                    a.max_interf_mw[i as usize] = other;
                }
            }
        }
        for &(slot, i) in &self.coverers[src] {
            let a = self.slots[slot as usize].as_mut().expect("coverer points at live slot");
            a.overlapped[i as usize] = true;
        }

        // Footprint nodes already transmitting will miss this frame.
        let overlapped: Vec<bool> = covered.iter().map(|c| self.tx_count[c.node] > 0).collect();
        let dense = self.index == MediumIndex::Naive;
        let (power_dense, max_interf_dense, max_interf_mw) = if dense {
            let mut power = vec![0.0; n];
            for c in &covered {
                power[c.node] = c.p_mw;
            }
            let max: Vec<f64> = (0..n).map(|v| self.agg_mw[v] - power[v]).collect();
            (power, max, Vec::new())
        } else {
            let max: Vec<f64> = covered.iter().map(|c| self.agg_mw[c.node] - c.p_mw).collect();
            (Vec::new(), Vec::new(), max)
        };

        let slot = self.free_slots.pop().unwrap_or_else(|| {
            self.slots.push(None);
            self.slots.len() - 1
        });
        if !dense {
            for (i, c) in covered.iter().enumerate() {
                self.coverers[c.node].push((slot as u32, i as u32));
            }
        }
        self.slots[slot] = Some(ActiveTx {
            id,
            src,
            start: now,
            covered,
            overlapped,
            max_interf_mw,
            power_dense,
            max_interf_dense,
        });
        self.active_len += 1;
        if dense {
            self.dense_len += 1;
        }
        self.tx_count[src] += 1;

        for e in &edges {
            self.tracer
                .emit(now.as_nanos(), Some(e.node), EventKind::ChannelEdge { busy: e.busy });
        }
        (id, edges)
    }

    /// Evaluates receiver `v` for a transmission from `src_pos`: if the
    /// signal clears the interference cutoff, records it as covered and —
    /// when it also clears the CS threshold — updates carrier-sense state.
    fn try_cover<R: Rng>(
        &mut self,
        src_pos: Vec2,
        v: NodeId,
        rng: &mut R,
        covered: &mut Vec<Cover>,
        edges: &mut Vec<EdgeChange>,
    ) {
        let d = src_pos.distance(self.positions[v]);
        let pl = self.prop.sample_path_loss_db(d, rng);
        let p_dbm = self.radio.rx_power_dbm(pl);
        if p_dbm >= self.interference_cutoff_dbm() {
            let senseable = self.radio.senseable(p_dbm);
            covered.push(Cover { node: v, p_mw: dbm_to_mw(p_dbm), senseable });
            if senseable {
                self.cs_count[v] += 1;
                if self.cs_count[v] == 1 {
                    edges.push(EdgeChange { node: v, busy: true });
                }
            }
        }
    }

    /// Ends a transmission at time `now`, returning per-node outcomes and
    /// the idle edges the vanishing energy causes.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not refer to an in-flight transmission (ending a
    /// transmission twice is a caller bug).
    pub fn end_tx(&mut self, id: TxId, now: SimTime) -> EndedTx {
        let slot = self
            .slots
            .iter()
            .position(|s| s.as_ref().is_some_and(|a| a.id == id))
            .expect("end_tx on a transmission that is not in flight");
        let tx = self.slots[slot].take().expect("slot just matched");
        self.active_len -= 1;
        self.tx_count[tx.src] -= 1;
        if tx.is_dense() {
            self.dense_len -= 1;
        } else {
            // Unregister from the coverer index (entries are unique).
            for (i, c) in tx.covered.iter().enumerate() {
                let list = &mut self.coverers[c.node];
                let at = list
                    .iter()
                    .position(|&e| e == (slot as u32, i as u32))
                    .expect("covered node is indexed");
                list.swap_remove(at);
            }
        }
        self.free_slots.push(slot);

        let mut edges = Vec::new();
        for c in &tx.covered {
            self.agg_mw[c.node] -= c.p_mw;
            if self.agg_mw[c.node] < 0.0 {
                self.agg_mw[c.node] = 0.0; // guard float drift
            }
            if c.senseable {
                self.cs_count[c.node] -= 1;
                if self.cs_count[c.node] == 0 {
                    edges.push(EdgeChange { node: c.node, busy: false });
                }
            }
        }

        // Only sensing-disk nodes perceive the frame; interference-ring
        // nodes carried power but stay silent (OutOfRange).
        let receptions = tx
            .covered
            .iter()
            .enumerate()
            .filter(|(_, c)| c.senseable)
            .map(|(i, c)| {
                let interf_mw = if tx.is_dense() {
                    tx.max_interf_dense[c.node]
                } else {
                    tx.max_interf_mw[i]
                };
                let p_dbm = mw_to_dbm(c.p_mw);
                let out = if tx.overlapped[i] || !self.radio.decodable(p_dbm) {
                    RxOutcome::Sensed
                } else if self.radio.captures(c.p_mw, interf_mw) {
                    RxOutcome::Decoded
                } else {
                    RxOutcome::Collided
                };
                (c.node, out)
            })
            .collect();

        for e in &edges {
            self.tracer
                .emit(now.as_nanos(), Some(e.node), EventKind::ChannelEdge { busy: e.busy });
        }

        EndedTx {
            src: tx.src,
            start: tx.start,
            receptions,
            edges,
        }
    }

    /// Number of transmissions currently in flight (diagnostic).
    pub fn active_count(&self) -> usize {
        self.active_len
    }
}

impl std::fmt::Debug for Medium {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Medium")
            .field("nodes", &self.node_count())
            .field("active", &self.active_len)
            .field("index", &self.index)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mg_sim::rng::Xoshiro256;

    fn medium_with(positions: Vec<Vec2>) -> Medium {
        let prop = PropagationModel::free_space();
        let radio = RadioParams::paper_default(&prop);
        Medium::new(prop, radio, positions)
    }

    fn rng() -> Xoshiro256 {
        Xoshiro256::new(7)
    }

    #[test]
    fn neighbor_decodes_clean_frame() {
        // 0 --240m-- 1 --240m-- 2 (2 is 480 m from 0: sensed, not decoded)
        let mut m = medium_with(vec![
            Vec2::new(0.0, 0.0),
            Vec2::new(240.0, 0.0),
            Vec2::new(480.0, 0.0),
        ]);
        let mut r = rng();
        let (tx, edges) = m.begin_tx(0, SimTime::ZERO, &mut r);
        assert!(m.carrier_busy(1));
        assert!(m.carrier_busy(2));
        assert!(!m.carrier_busy(0), "own tx must not trip own CS");
        assert_eq!(edges.len(), 2);
        let ended = m.end_tx(tx, SimTime::from_micros(999));
        assert_eq!(ended.outcome_of(0), RxOutcome::SelfTx);
        assert_eq!(ended.outcome_of(1), RxOutcome::Decoded);
        assert_eq!(ended.outcome_of(2), RxOutcome::Sensed);
        assert_eq!(ended.receptions.len(), 2, "sparse: only covered nodes");
        assert!(!m.carrier_busy(1));
        assert_eq!(ended.edges.len(), 2);
    }

    #[test]
    fn out_of_sensing_range_is_silent() {
        let mut m = medium_with(vec![Vec2::new(0.0, 0.0), Vec2::new(600.0, 0.0)]);
        let mut r = rng();
        let (tx, edges) = m.begin_tx(0, SimTime::ZERO, &mut r);
        assert!(edges.is_empty());
        assert!(!m.carrier_busy(1));
        let ended = m.end_tx(tx, SimTime::from_micros(999));
        assert_eq!(ended.outcome_of(1), RxOutcome::OutOfRange);
        assert!(ended.receptions.is_empty());
    }

    #[test]
    fn hidden_terminal_collision() {
        // True hidden terminals need A-C > 550: A(0), B(200), C(560) — A
        // cannot sense C, B hears both.
        let mut m = medium_with(vec![
            Vec2::new(0.0, 0.0),   // A
            Vec2::new(200.0, 0.0), // B
            Vec2::new(560.0, 0.0), // C — A cannot sense C
        ]);
        let mut r = rng();
        let (tx_a, _) = m.begin_tx(0, SimTime::ZERO, &mut r);
        // C cannot sense A's transmission:
        assert!(!m.carrier_busy(2));
        let (tx_c, _) = m.begin_tx(2, SimTime::from_micros(10), &mut r);
        let ended_a = m.end_tx(tx_a, SimTime::from_micros(999));
        // B: A's signal at 200 m vs C's interference at 360 m.
        // Free space: power ratio = (360/200)^2 = 3.24 → 5.1 dB < 10 dB capture.
        assert_eq!(ended_a.outcome_of(1), RxOutcome::Collided);
        // C's own frame arrives at B below the decode threshold (360 m >
        // 250 m): pure energy, no frame.
        let ended_c = m.end_tx(tx_c, SimTime::from_micros(999));
        assert_eq!(ended_c.outcome_of(1), RxOutcome::Sensed);
    }

    #[test]
    fn capture_strong_signal_survives_weak_interference() {
        // B 100 m from A; interferer D 500 m from B: ratio (500/100)² = 25
        // → 14 dB ≥ 10 dB capture.
        let mut m = medium_with(vec![
            Vec2::new(0.0, 0.0),   // A
            Vec2::new(100.0, 0.0), // B
            Vec2::new(600.0, 0.0), // D (interferer; 500 m from B)
        ]);
        let mut r = rng();
        let (tx_a, _) = m.begin_tx(0, SimTime::ZERO, &mut r);
        let (tx_d, _) = m.begin_tx(2, SimTime::from_micros(5), &mut r);
        let ended_a = m.end_tx(tx_a, SimTime::from_micros(999));
        assert_eq!(ended_a.outcome_of(1), RxOutcome::Decoded);
        // D's frame at B is below the decode threshold (500 m): energy only.
        let ended_d = m.end_tx(tx_d, SimTime::from_micros(999));
        assert_eq!(ended_d.outcome_of(1), RxOutcome::Sensed);
    }

    #[test]
    fn transmitting_node_misses_overlapping_frames() {
        let mut m = medium_with(vec![Vec2::new(0.0, 0.0), Vec2::new(100.0, 0.0)]);
        let mut r = rng();
        let (tx0, _) = m.begin_tx(0, SimTime::ZERO, &mut r);
        let (tx1, _) = m.begin_tx(1, SimTime::from_micros(2), &mut r);
        // Node 1 was transmitting while 0's frame was in flight → Sensed.
        let e0 = m.end_tx(tx0, SimTime::from_micros(999));
        assert_eq!(e0.outcome_of(1), RxOutcome::Sensed);
        let e1 = m.end_tx(tx1, SimTime::from_micros(999));
        assert_eq!(e1.outcome_of(0), RxOutcome::Sensed);
    }

    #[test]
    fn cs_count_handles_multiple_overlapping_sources() {
        let mut m = medium_with(vec![
            Vec2::new(0.0, 0.0),
            Vec2::new(300.0, 0.0), // hears both ends
            Vec2::new(600.0, 0.0),
        ]);
        let mut r = rng();
        let (a, e1) = m.begin_tx(0, SimTime::ZERO, &mut r);
        assert!(e1.iter().any(|e| e.node == 1 && e.busy));
        let (c, e2) = m.begin_tx(2, SimTime::ZERO, &mut r);
        // Node 1 already busy: no second busy edge.
        assert!(!e2.iter().any(|e| e.node == 1));
        let ea = m.end_tx(a, SimTime::from_micros(999));
        // Still busy from c: no idle edge for node 1 yet.
        assert!(!ea.edges.iter().any(|e| e.node == 1));
        assert!(m.carrier_busy(1));
        let ec = m.end_tx(c, SimTime::from_micros(999));
        assert!(ec.edges.iter().any(|e| e.node == 1 && !e.busy));
        assert!(!m.carrier_busy(1));
    }

    #[test]
    fn mobility_changes_future_reception() {
        let mut m = medium_with(vec![Vec2::new(0.0, 0.0), Vec2::new(100.0, 0.0)]);
        let mut r = rng();
        let (tx, _) = m.begin_tx(0, SimTime::ZERO, &mut r);
        assert!(m.end_tx(tx, SimTime::from_micros(999)).outcome_of(1).is_decoded());
        m.set_position(1, Vec2::new(1000.0, 0.0));
        let (tx, _) = m.begin_tx(0, SimTime::from_micros(100), &mut r);
        assert_eq!(m.end_tx(tx, SimTime::from_micros(999)).outcome_of(1), RxOutcome::OutOfRange);
    }

    #[test]
    fn channel_edges_are_journaled_when_traced() {
        use mg_trace::{EventKind, TraceConfig, Tracer};
        let tracer = Tracer::new(TraceConfig::verbose());
        let mut m = medium_with(vec![Vec2::new(0.0, 0.0), Vec2::new(240.0, 0.0)]);
        m.set_tracer(tracer.clone());
        let mut r = rng();
        let (tx, _) = m.begin_tx(0, SimTime::ZERO, &mut r);
        m.end_tx(tx, SimTime::from_micros(100));
        let events = tracer.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].kind, EventKind::ChannelEdge { busy: true });
        assert_eq!(events[0].node, Some(1));
        assert_eq!(events[1].kind, EventKind::ChannelEdge { busy: false });
        assert_eq!(events[1].t_ns, 100_000);
    }

    #[test]
    #[should_panic(expected = "not in flight")]
    fn double_end_panics() {
        let mut m = medium_with(vec![Vec2::new(0.0, 0.0), Vec2::new(100.0, 0.0)]);
        let mut r = rng();
        let (tx, _) = m.begin_tx(0, SimTime::ZERO, &mut r);
        m.end_tx(tx, SimTime::from_micros(999));
        m.end_tx(tx, SimTime::from_micros(999));
    }

    // ------------------------------------------------------------------
    // Grid-index edge cases: every scenario is run through both indices
    // and must agree exactly.

    fn both_indices(positions: Vec<Vec2>) -> (Medium, Medium) {
        let prop = PropagationModel::free_space();
        let radio = RadioParams::paper_default(&prop);
        (
            Medium::with_index(prop, radio, positions.clone(), MediumIndex::Naive),
            Medium::with_index(prop, radio, positions, MediumIndex::Grid),
        )
    }

    fn agree_on_one_tx(positions: Vec<Vec2>, src: NodeId) {
        let (mut naive, mut grid) = both_indices(positions);
        let mut rn = rng();
        let mut rg = rng();
        let (txn, en) = naive.begin_tx(src, SimTime::ZERO, &mut rn);
        let (txg, eg) = grid.begin_tx(src, SimTime::ZERO, &mut rg);
        assert_eq!(en, eg, "busy edges diverge");
        let endn = naive.end_tx(txn, SimTime::from_micros(999));
        let endg = grid.end_tx(txg, SimTime::from_micros(999));
        assert_eq!(endn.receptions, endg.receptions, "receptions diverge");
        assert_eq!(endn.edges, endg.edges, "idle edges diverge");
    }

    #[test]
    fn grid_agrees_with_nodes_exactly_on_cell_boundaries() {
        // The grid cell is the sensing horizon (≈551 m). Put receivers at
        // exact multiples and at the sensing boundary itself.
        let h = 551.0;
        agree_on_one_tx(
            vec![
                Vec2::new(0.0, 0.0),
                Vec2::new(h, 0.0),
                Vec2::new(2.0 * h, 0.0),
                Vec2::new(0.0, h),
                Vec2::new(550.0, 0.0), // exactly on the sensing disk edge
                Vec2::new(-h, -h),
            ],
            0,
        );
    }

    #[test]
    fn grid_agrees_with_all_nodes_in_one_cell() {
        let pts = (0..20).map(|i| Vec2::new(i as f64 * 5.0, 3.0)).collect();
        agree_on_one_tx(pts, 7);
    }

    #[test]
    fn grid_agrees_after_moving_out_of_field_bounds() {
        let (mut naive, mut grid) = both_indices(vec![
            Vec2::new(0.0, 0.0),
            Vec2::new(240.0, 0.0),
            Vec2::new(480.0, 0.0),
        ]);
        for m in [&mut naive, &mut grid] {
            m.set_position(2, Vec2::new(-3200.0, -77.0)); // far outside, negative
            m.set_position(1, Vec2::new(-3000.0, -77.0)); // near node 2 now
        }
        let mut rn = rng();
        let mut rg = rng();
        let (txn, en) = naive.begin_tx(2, SimTime::ZERO, &mut rn);
        let (txg, eg) = grid.begin_tx(2, SimTime::ZERO, &mut rg);
        assert_eq!(en, eg);
        assert!(en.iter().any(|e| e.node == 1 && e.busy), "200 m apart: sensed");
        assert_eq!(
            naive.end_tx(txn, SimTime::from_micros(9)).receptions,
            grid.end_tx(txg, SimTime::from_micros(9)).receptions
        );
        assert_eq!(naive.nodes_within(Vec2::new(-3100.0, -77.0), 150.0), vec![1, 2]);
        assert_eq!(grid.nodes_within(Vec2::new(-3100.0, -77.0), 150.0), vec![1, 2]);
    }

    #[test]
    fn nodes_within_spanning_many_cells_matches_naive() {
        // Query radius far above the cell size (≈551 m): a >3×3 window.
        let pts: Vec<Vec2> = (0..15).map(|i| Vec2::new(i as f64 * 400.0, 0.0)).collect();
        let (naive, grid) = both_indices(pts);
        for r in [100.0, 550.0, 1650.0, 2500.0, 1e9] {
            assert_eq!(
                naive.nodes_within(Vec2::new(0.0, 0.0), r),
                grid.nodes_within(Vec2::new(0.0, 0.0), r),
                "radius {r}"
            );
        }
    }

    #[test]
    fn set_index_midstream_preserves_state() {
        let mut m = medium_with(vec![Vec2::new(0.0, 0.0), Vec2::new(240.0, 0.0)]);
        let mut r = rng();
        let (tx, _) = m.begin_tx(0, SimTime::ZERO, &mut r);
        m.set_index(MediumIndex::Naive);
        assert_eq!(m.index(), MediumIndex::Naive);
        assert!(m.carrier_busy(1));
        let ended = m.end_tx(tx, SimTime::from_micros(50));
        assert_eq!(ended.outcome_of(1), RxOutcome::Decoded);
        assert!(!m.carrier_busy(1));
    }

    #[test]
    fn index_parse_roundtrip() {
        assert_eq!(MediumIndex::parse("naive").unwrap(), MediumIndex::Naive);
        assert_eq!(MediumIndex::parse(" Grid ").unwrap(), MediumIndex::Grid);
        assert!(MediumIndex::parse("quadtree").is_err());
        assert_eq!(MediumIndex::default(), MediumIndex::Grid);
    }
}
