//! The shared wireless medium.
//!
//! The [`Medium`] is the meeting point of all radios: MAC layers start and
//! end transmissions on it, and it answers the two questions the rest of the
//! stack needs:
//!
//! 1. **Carrier sense** — which nodes currently perceive a busy channel,
//!    reported as busy/idle *edges* whenever a transmission starts or ends
//!    (per-transmitter threshold model: a node is busy iff at least one
//!    active transmitter's signal reaches it above the CS threshold — the
//!    unit-disk behaviour the paper's analysis assumes).
//! 2. **Reception outcomes** — when a transmission ends, what did each node
//!    get? Decoded (above the RX threshold and above the capture SINR for
//!    the whole flight), collided (decodable power, drowned by overlap),
//!    sensed-only (energy but no frame — triggers EIFS), or nothing.
//!
//! Interference accounting is exact for the threshold model used: for every
//! in-flight frame the medium tracks the *maximum aggregate co-channel
//! power* each node observed during the frame's airtime, and applies the
//! capture test at the end.

use crate::propagation::PropagationModel;
use crate::radio::{dbm_to_mw, mw_to_dbm, RadioParams};
use crate::NodeId;
use mg_geom::Vec2;
use mg_sim::rng::Rng;
use mg_sim::SimTime;
use mg_trace::{EventKind, Tracer};

/// Identifies one in-flight transmission.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct TxId(u64);

/// A change in some node's carrier-sense state.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct EdgeChange {
    /// The node whose perception changed.
    pub node: NodeId,
    /// `true` = channel went busy; `false` = channel went idle.
    pub busy: bool,
}

/// What a node got out of a completed transmission.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RxOutcome {
    /// Frame decodable: strong enough and survived all interference.
    Decoded,
    /// Power was decodable but concurrent transmissions destroyed it (the
    /// node perceives a corrupted frame → EIFS recovery).
    Collided,
    /// Energy above the carrier-sense threshold but below decode level, or
    /// the node was transmitting itself while the frame was in flight.
    Sensed,
    /// Nothing perceptible at this node.
    OutOfRange,
    /// The node is the transmitter.
    SelfTx,
}

impl RxOutcome {
    /// True when the frame was successfully decoded.
    pub fn is_decoded(&self) -> bool {
        matches!(self, RxOutcome::Decoded)
    }

    /// True when the node perceived a corrupted frame (collision).
    pub fn is_collided(&self) -> bool {
        matches!(self, RxOutcome::Collided)
    }
}

/// Everything known about a transmission once it ends.
#[derive(Clone, Debug)]
pub struct EndedTx {
    /// The transmitting node.
    pub src: NodeId,
    /// When the transmission started.
    pub start: SimTime,
    /// Per-node reception outcome (indexed by `NodeId`).
    pub outcomes: Vec<RxOutcome>,
    /// Carrier-sense edges caused by this transmission ending.
    pub edges: Vec<EdgeChange>,
}

struct ActiveTx {
    id: TxId,
    src: NodeId,
    start: SimTime,
    /// Received power of this transmission at every node, mW (0 at `src`).
    power_mw: Vec<f64>,
    /// Whether this transmission trips node `v`'s carrier sense.
    sensed_by: Vec<bool>,
    /// Max aggregate co-channel power each node saw during this frame, mW.
    max_interf_mw: Vec<f64>,
    /// Nodes that transmitted at any point during this frame's flight.
    overlapped_own_tx: Vec<bool>,
}

/// The shared channel: all active transmissions plus node positions.
pub struct Medium {
    prop: PropagationModel,
    radio: RadioParams,
    positions: Vec<Vec2>,
    /// Number of foreign transmissions each node currently senses.
    cs_count: Vec<u32>,
    /// Aggregate received power at each node from all active transmissions.
    agg_mw: Vec<f64>,
    active: Vec<ActiveTx>,
    next_id: u64,
    tracer: Tracer,
}

impl Medium {
    /// Creates a medium over the given node positions.
    ///
    /// # Panics
    ///
    /// Panics if `positions` is empty.
    pub fn new(prop: PropagationModel, radio: RadioParams, positions: Vec<Vec2>) -> Self {
        assert!(!positions.is_empty(), "a medium needs at least one node");
        let n = positions.len();
        Medium {
            prop,
            radio,
            positions,
            cs_count: vec![0; n],
            agg_mw: vec![0.0; n],
            active: Vec::new(),
            next_id: 0,
            tracer: Tracer::disabled(),
        }
    }

    /// Journals every carrier-sense edge (at `Debug` level for the `phy`
    /// subsystem) through `tracer`. Disabled by default.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.positions.len()
    }

    /// Current position of `node`.
    pub fn position(&self, node: NodeId) -> Vec2 {
        self.positions[node]
    }

    /// Moves a node (mobility). Affects only *future* transmissions; frames
    /// already in flight keep the geometry they started with (frames last
    /// ≲ 3 ms, during which a 20 m/s node moves 6 cm).
    pub fn set_position(&mut self, node: NodeId, pos: Vec2) {
        self.positions[node] = pos;
    }

    /// The radio parameters shared by all nodes.
    pub fn radio(&self) -> &RadioParams {
        &self.radio
    }

    /// The propagation model in force.
    pub fn propagation(&self) -> &PropagationModel {
        &self.prop
    }

    /// Whether `node` currently senses a busy channel (physical carrier
    /// sense from *other* transmitters; a node's own transmission does not
    /// count — its MAC knows it is transmitting).
    pub fn carrier_busy(&self, node: NodeId) -> bool {
        self.cs_count[node] > 0
    }

    /// Whether `node` is currently transmitting.
    pub fn is_transmitting(&self, node: NodeId) -> bool {
        self.active.iter().any(|a| a.src == node)
    }

    /// Starts a transmission from `src` at time `now`.
    ///
    /// Returns the transmission id (pass it to [`Medium::end_tx`] when the
    /// frame's airtime elapses) and the carrier-sense edges the new energy
    /// causes. Shadowing (if configured) is drawn per receiver from `rng`.
    pub fn begin_tx<R: Rng>(
        &mut self,
        src: NodeId,
        now: SimTime,
        rng: &mut R,
    ) -> (TxId, Vec<EdgeChange>) {
        let n = self.node_count();
        let id = TxId(self.next_id);
        self.next_id += 1;

        let src_pos = self.positions[src];
        let mut power_mw = vec![0.0; n];
        let mut sensed_by = vec![false; n];
        let mut edges = Vec::new();
        for v in 0..n {
            if v == src {
                continue;
            }
            let d = src_pos.distance(self.positions[v]);
            let pl = self.prop.sample_path_loss_db(d, rng);
            let p_dbm = self.radio.rx_power_dbm(pl);
            let p_mw = dbm_to_mw(p_dbm);
            power_mw[v] = p_mw;
            if self.radio.senseable(p_dbm) {
                sensed_by[v] = true;
                self.cs_count[v] += 1;
                if self.cs_count[v] == 1 {
                    edges.push(EdgeChange { node: v, busy: true });
                }
            }
        }

        // Update aggregate power and refresh every active frame's
        // worst-case interference (the new frame raises it).
        for (agg, p) in self.agg_mw.iter_mut().zip(&power_mw) {
            *agg += p;
        }
        let mut overlapped_own_tx = vec![false; n];
        for a in &mut self.active {
            for v in 0..n {
                let other = self.agg_mw[v] - a.power_mw[v];
                if other > a.max_interf_mw[v] {
                    a.max_interf_mw[v] = other;
                }
            }
            // The new transmitter cannot hear frames that overlap its own tx.
            a.overlapped_own_tx[src] = true;
            // Symmetrically, nodes already transmitting miss the new frame.
            overlapped_own_tx[a.src] = true;
        }
        let max_interf_mw: Vec<f64> = (0..n).map(|v| self.agg_mw[v] - power_mw[v]).collect();

        self.active.push(ActiveTx {
            id,
            src,
            start: now,
            power_mw,
            sensed_by,
            max_interf_mw,
            overlapped_own_tx,
        });
        for e in &edges {
            self.tracer
                .emit(now.as_nanos(), Some(e.node), EventKind::ChannelEdge { busy: e.busy });
        }
        (id, edges)
    }

    /// Ends a transmission at time `now`, returning per-node outcomes and
    /// the idle edges the vanishing energy causes.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not refer to an in-flight transmission (ending a
    /// transmission twice is a caller bug).
    pub fn end_tx(&mut self, id: TxId, now: SimTime) -> EndedTx {
        let idx = self
            .active
            .iter()
            .position(|a| a.id == id)
            .expect("end_tx on a transmission that is not in flight");
        let tx = self.active.swap_remove(idx);
        let n = self.node_count();

        let mut edges = Vec::new();
        for v in 0..n {
            self.agg_mw[v] -= tx.power_mw[v];
            if self.agg_mw[v] < 0.0 {
                self.agg_mw[v] = 0.0; // guard float drift
            }
            if tx.sensed_by[v] {
                self.cs_count[v] -= 1;
                if self.cs_count[v] == 0 {
                    edges.push(EdgeChange { node: v, busy: false });
                }
            }
        }

        let outcomes = (0..n)
            .map(|v| {
                if v == tx.src {
                    return RxOutcome::SelfTx;
                }
                let p_mw = tx.power_mw[v];
                if p_mw <= 0.0 {
                    return RxOutcome::OutOfRange;
                }
                let p_dbm = mw_to_dbm(p_mw);
                if !self.radio.senseable(p_dbm) {
                    return RxOutcome::OutOfRange;
                }
                if tx.overlapped_own_tx[v] || !self.radio.decodable(p_dbm) {
                    return RxOutcome::Sensed;
                }
                if self.radio.captures(p_mw, tx.max_interf_mw[v]) {
                    RxOutcome::Decoded
                } else {
                    RxOutcome::Collided
                }
            })
            .collect();

        for e in &edges {
            self.tracer
                .emit(now.as_nanos(), Some(e.node), EventKind::ChannelEdge { busy: e.busy });
        }

        EndedTx {
            src: tx.src,
            start: tx.start,
            outcomes,
            edges,
        }
    }

    /// Number of transmissions currently in flight (diagnostic).
    pub fn active_count(&self) -> usize {
        self.active.len()
    }
}

impl std::fmt::Debug for Medium {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Medium")
            .field("nodes", &self.node_count())
            .field("active", &self.active.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mg_sim::rng::Xoshiro256;

    fn medium_with(positions: Vec<Vec2>) -> Medium {
        let prop = PropagationModel::free_space();
        let radio = RadioParams::paper_default(&prop);
        Medium::new(prop, radio, positions)
    }

    fn rng() -> Xoshiro256 {
        Xoshiro256::new(7)
    }

    #[test]
    fn neighbor_decodes_clean_frame() {
        // 0 --240m-- 1 --240m-- 2 (2 is 480 m from 0: sensed, not decoded)
        let mut m = medium_with(vec![
            Vec2::new(0.0, 0.0),
            Vec2::new(240.0, 0.0),
            Vec2::new(480.0, 0.0),
        ]);
        let mut r = rng();
        let (tx, edges) = m.begin_tx(0, SimTime::ZERO, &mut r);
        assert!(m.carrier_busy(1));
        assert!(m.carrier_busy(2));
        assert!(!m.carrier_busy(0), "own tx must not trip own CS");
        assert_eq!(edges.len(), 2);
        let ended = m.end_tx(tx, SimTime::from_micros(999));
        assert_eq!(ended.outcomes[0], RxOutcome::SelfTx);
        assert_eq!(ended.outcomes[1], RxOutcome::Decoded);
        assert_eq!(ended.outcomes[2], RxOutcome::Sensed);
        assert!(!m.carrier_busy(1));
        assert_eq!(ended.edges.len(), 2);
    }

    #[test]
    fn out_of_sensing_range_is_silent() {
        let mut m = medium_with(vec![Vec2::new(0.0, 0.0), Vec2::new(600.0, 0.0)]);
        let mut r = rng();
        let (tx, edges) = m.begin_tx(0, SimTime::ZERO, &mut r);
        assert!(edges.is_empty());
        assert!(!m.carrier_busy(1));
        let ended = m.end_tx(tx, SimTime::from_micros(999));
        assert_eq!(ended.outcomes[1], RxOutcome::OutOfRange);
    }

    #[test]
    fn hidden_terminal_collision() {
        // Classic: A and C both 200 m from B, 400 m from each other... at
        // 400 m they still sense each other (550 m range), so push them to
        // 600 m apart with B in the middle (300 m each): B decodes neither
        // when both transmit (comparable powers, SINR < 10 dB)?
        // 300 m > 250 m means B can't decode at all; use an asymmetric
        // layout instead: A-B 200 m, C-B 240 m, A-C 430 m (> ... still
        // sensed). True hidden terminals need A-C > 550: A(0), B(200+?),
        // C far side: A-C = 560 ⇒ B at 200 from A is 360 from C (sensed,
        // not decoded, but interferes).
        let mut m = medium_with(vec![
            Vec2::new(0.0, 0.0),    // A
            Vec2::new(200.0, 0.0),  // B
            Vec2::new(560.0, 0.0),  // C — A cannot sense C
        ]);
        let mut r = rng();
        let (tx_a, _) = m.begin_tx(0, SimTime::ZERO, &mut r);
        // C cannot sense A's transmission:
        assert!(!m.carrier_busy(2));
        let (tx_c, _) = m.begin_tx(2, SimTime::from_micros(10), &mut r);
        let ended_a = m.end_tx(tx_a, SimTime::from_micros(999));
        // B: A's signal at 200 m vs C's interference at 360 m.
        // Free space: power ratio = (360/200)^2 = 3.24 → 5.1 dB < 10 dB capture.
        assert_eq!(ended_a.outcomes[1], RxOutcome::Collided);
        // C's own frame arrives at B below the decode threshold (360 m >
        // 250 m): pure energy, no frame.
        let ended_c = m.end_tx(tx_c, SimTime::from_micros(999));
        assert_eq!(ended_c.outcomes[1], RxOutcome::Sensed);
    }

    #[test]
    fn capture_strong_signal_survives_weak_interference() {
        // B 100 m from A; interferer D 500 m from B: ratio (500/100)² = 25
        // → 14 dB ≥ 10 dB capture.
        let mut m = medium_with(vec![
            Vec2::new(0.0, 0.0),   // A
            Vec2::new(100.0, 0.0), // B
            Vec2::new(600.0, 0.0), // D (interferer; 500 m from B)
        ]);
        let mut r = rng();
        let (tx_a, _) = m.begin_tx(0, SimTime::ZERO, &mut r);
        let (tx_d, _) = m.begin_tx(2, SimTime::from_micros(5), &mut r);
        let ended_a = m.end_tx(tx_a, SimTime::from_micros(999));
        assert_eq!(ended_a.outcomes[1], RxOutcome::Decoded);
        // D's frame at B is below the decode threshold (500 m): energy only.
        let ended_d = m.end_tx(tx_d, SimTime::from_micros(999));
        assert_eq!(ended_d.outcomes[1], RxOutcome::Sensed);
    }

    #[test]
    fn transmitting_node_misses_overlapping_frames() {
        let mut m = medium_with(vec![Vec2::new(0.0, 0.0), Vec2::new(100.0, 0.0)]);
        let mut r = rng();
        let (tx0, _) = m.begin_tx(0, SimTime::ZERO, &mut r);
        let (tx1, _) = m.begin_tx(1, SimTime::from_micros(2), &mut r);
        // Node 1 was transmitting while 0's frame was in flight → Sensed.
        let e0 = m.end_tx(tx0, SimTime::from_micros(999));
        assert_eq!(e0.outcomes[1], RxOutcome::Sensed);
        let e1 = m.end_tx(tx1, SimTime::from_micros(999));
        assert_eq!(e1.outcomes[0], RxOutcome::Sensed);
    }

    #[test]
    fn cs_count_handles_multiple_overlapping_sources() {
        let mut m = medium_with(vec![
            Vec2::new(0.0, 0.0),
            Vec2::new(300.0, 0.0), // hears both ends
            Vec2::new(600.0, 0.0),
        ]);
        let mut r = rng();
        let (a, e1) = m.begin_tx(0, SimTime::ZERO, &mut r);
        assert!(e1.iter().any(|e| e.node == 1 && e.busy));
        let (c, e2) = m.begin_tx(2, SimTime::ZERO, &mut r);
        // Node 1 already busy: no second busy edge.
        assert!(!e2.iter().any(|e| e.node == 1));
        let ea = m.end_tx(a, SimTime::from_micros(999));
        // Still busy from c: no idle edge for node 1 yet.
        assert!(!ea.edges.iter().any(|e| e.node == 1));
        assert!(m.carrier_busy(1));
        let ec = m.end_tx(c, SimTime::from_micros(999));
        assert!(ec.edges.iter().any(|e| e.node == 1 && !e.busy));
        assert!(!m.carrier_busy(1));
    }

    #[test]
    fn mobility_changes_future_reception() {
        let mut m = medium_with(vec![Vec2::new(0.0, 0.0), Vec2::new(100.0, 0.0)]);
        let mut r = rng();
        let (tx, _) = m.begin_tx(0, SimTime::ZERO, &mut r);
        assert!(m.end_tx(tx, SimTime::from_micros(999)).outcomes[1].is_decoded());
        m.set_position(1, Vec2::new(1000.0, 0.0));
        let (tx, _) = m.begin_tx(0, SimTime::from_micros(100), &mut r);
        assert_eq!(m.end_tx(tx, SimTime::from_micros(999)).outcomes[1], RxOutcome::OutOfRange);
    }

    #[test]
    fn channel_edges_are_journaled_when_traced() {
        use mg_trace::{EventKind, TraceConfig, Tracer};
        let tracer = Tracer::new(TraceConfig::verbose());
        let mut m = medium_with(vec![Vec2::new(0.0, 0.0), Vec2::new(240.0, 0.0)]);
        m.set_tracer(tracer.clone());
        let mut r = rng();
        let (tx, _) = m.begin_tx(0, SimTime::ZERO, &mut r);
        m.end_tx(tx, SimTime::from_micros(100));
        let events = tracer.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].kind, EventKind::ChannelEdge { busy: true });
        assert_eq!(events[0].node, Some(1));
        assert_eq!(events[1].kind, EventKind::ChannelEdge { busy: false });
        assert_eq!(events[1].t_ns, 100_000);
    }

    #[test]
    #[should_panic(expected = "not in flight")]
    fn double_end_panics() {
        let mut m = medium_with(vec![Vec2::new(0.0, 0.0), Vec2::new(100.0, 0.0)]);
        let mut r = rng();
        let (tx, _) = m.begin_tx(0, SimTime::ZERO, &mut r);
        m.end_tx(tx, SimTime::from_micros(999));
        m.end_tx(tx, SimTime::from_micros(999));
    }
}
