//! Radio propagation models (the same trio ns-2 ships).

use mg_sim::rng::Rng;

/// Speed of light, m/s.
const C: f64 = 299_792_458.0;
/// Carrier frequency (ns-2's default 914 MHz WaveLAN).
const FREQ_HZ: f64 = 914e6;
/// Reference distance for the shadowing model, meters.
const D0: f64 = 1.0;

/// A large-scale path-loss model: mean received power as a function of
/// distance, plus (for the shadowing model) a log-normal random component
/// drawn per transmission per receiver.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub enum PropagationModel {
    /// Friis free-space propagation (path-loss exponent 2).
    #[default]
    FreeSpace,
    /// Two-ray ground reflection: free space up to the crossover distance
    /// `4π·ht·hr/λ`, then a fourth-power law. Antenna heights in meters.
    TwoRayGround {
        /// Transmitter antenna height (m). ns-2 default: 1.5.
        ht: f64,
        /// Receiver antenna height (m). ns-2 default: 1.5.
        hr: f64,
    },
    /// The paper's channel: log-distance path loss with exponent `beta`
    /// referenced to free space at 1 m, plus a zero-mean Gaussian dB term
    /// with standard deviation `sigma_db` (log-normal shadowing).
    ///
    /// The paper's experiments use `beta = 2, sigma_db = 0` ("for free space
    /// propagation, we set β = 2 and σ_dB = 0").
    Shadowing {
        /// Path-loss exponent β.
        beta: f64,
        /// Shadowing standard deviation σ in dB (0 ⇒ deterministic).
        sigma_db: f64,
    },
}

impl PropagationModel {
    /// Free-space propagation — the paper's evaluation channel.
    pub fn free_space() -> Self {
        PropagationModel::FreeSpace
    }

    /// The paper's shadowing channel with the given exponent and σ.
    pub fn shadowing(beta: f64, sigma_db: f64) -> Self {
        assert!(beta > 0.0, "path-loss exponent must be positive");
        assert!(sigma_db >= 0.0, "sigma must be non-negative");
        PropagationModel::Shadowing { beta, sigma_db }
    }

    /// Carrier wavelength (m).
    pub fn wavelength() -> f64 {
        C / FREQ_HZ
    }

    /// Deterministic (mean) path loss in dB at distance `d` meters.
    ///
    /// Distances below 1 m are clamped to 1 m — the far-field models are not
    /// meaningful closer than the reference distance.
    pub fn mean_path_loss_db(&self, d: f64) -> f64 {
        let d = d.max(D0);
        let lambda = Self::wavelength();
        let fs = |d: f64| 20.0 * (4.0 * std::f64::consts::PI * d / lambda).log10();
        match *self {
            PropagationModel::FreeSpace => fs(d),
            PropagationModel::TwoRayGround { ht, hr } => {
                let crossover = 4.0 * std::f64::consts::PI * ht * hr / lambda;
                if d <= crossover {
                    fs(d)
                } else {
                    // Pr = Pt Gt Gr ht² hr² / d⁴  ⇒  PL = 40·log d − 20·log(ht·hr)
                    40.0 * d.log10() - 20.0 * (ht * hr).log10()
                }
            }
            PropagationModel::Shadowing { beta, .. } => fs(D0) + 10.0 * beta * (d / D0).log10(),
        }
    }

    /// `true` when path loss is a pure function of distance — no
    /// per-receiver random draw. Shadowing with `σ > 0` is the only
    /// stochastic model; everything else (including `σ = 0` shadowing, the
    /// paper's channel) is deterministic.
    pub fn is_deterministic(&self) -> bool {
        !matches!(*self, PropagationModel::Shadowing { sigma_db, .. } if sigma_db > 0.0)
    }

    /// The largest distance whose *mean* path loss stays within `budget_db`,
    /// over-approximated to the safe side (the returned distance is ≥ the
    /// exact boundary) and capped at 100 000 km. With a deterministic model
    /// this bounds the sensing footprint: no receiver farther than
    /// `max_distance_for_loss(tx_power − cs_thresh)` can perceive the
    /// transmission, which is what lets a spatial index skip it entirely.
    pub fn max_distance_for_loss(&self, budget_db: f64) -> f64 {
        const CAP: f64 = 1e8;
        if self.mean_path_loss_db(CAP) <= budget_db {
            return CAP;
        }
        // Path loss is constant below the 1 m reference distance.
        let (mut lo, mut hi) = (1.0_f64, CAP);
        if self.mean_path_loss_db(lo) > budget_db {
            return lo;
        }
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if self.mean_path_loss_db(mid) <= budget_db {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        hi
    }

    /// Path loss for one concrete transmission, including the shadowing draw
    /// when the model has one.
    pub fn sample_path_loss_db<R: Rng>(&self, d: f64, rng: &mut R) -> f64 {
        let mean = self.mean_path_loss_db(d);
        match *self {
            PropagationModel::Shadowing { sigma_db, .. } if sigma_db > 0.0 => {
                mean + sigma_db * rng.standard_normal()
            }
            _ => mean,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mg_sim::rng::Xoshiro256;

    #[test]
    fn free_space_inverse_square() {
        let p = PropagationModel::free_space();
        // Doubling the distance costs 6.02 dB.
        let d1 = p.mean_path_loss_db(100.0);
        let d2 = p.mean_path_loss_db(200.0);
        assert!((d2 - d1 - 6.0206).abs() < 1e-3, "{d1} {d2}");
    }

    #[test]
    fn shadowing_beta2_sigma0_equals_free_space() {
        let fs = PropagationModel::free_space();
        let sh = PropagationModel::shadowing(2.0, 0.0);
        for d in [1.0, 50.0, 250.0, 550.0, 1000.0] {
            assert!(
                (fs.mean_path_loss_db(d) - sh.mean_path_loss_db(d)).abs() < 1e-9,
                "d={d}"
            );
        }
    }

    #[test]
    fn two_ray_matches_free_space_below_crossover() {
        let p = PropagationModel::TwoRayGround { ht: 1.5, hr: 1.5 };
        let fs = PropagationModel::free_space();
        let crossover = 4.0 * std::f64::consts::PI * 2.25 / PropagationModel::wavelength();
        assert!((p.mean_path_loss_db(crossover * 0.5)
            - fs.mean_path_loss_db(crossover * 0.5))
        .abs() < 1e-9);
        // Beyond crossover: 12 dB per doubling.
        let a = p.mean_path_loss_db(crossover * 2.0);
        let b = p.mean_path_loss_db(crossover * 4.0);
        assert!((b - a - 12.041).abs() < 0.01, "{a} {b}");
    }

    #[test]
    fn path_loss_is_monotone_in_distance() {
        for model in [
            PropagationModel::free_space(),
            PropagationModel::TwoRayGround { ht: 1.5, hr: 1.5 },
            PropagationModel::shadowing(2.7, 0.0),
        ] {
            let mut prev = f64::NEG_INFINITY;
            for i in 1..200 {
                let pl = model.mean_path_loss_db(i as f64 * 10.0);
                assert!(pl >= prev, "{model:?} at {}", i * 10);
                prev = pl;
            }
        }
    }

    #[test]
    fn near_field_clamped() {
        let p = PropagationModel::free_space();
        assert_eq!(p.mean_path_loss_db(0.0), p.mean_path_loss_db(1.0));
        assert_eq!(p.mean_path_loss_db(0.5), p.mean_path_loss_db(1.0));
    }

    #[test]
    fn shadowing_draws_have_requested_spread() {
        let p = PropagationModel::shadowing(2.0, 4.0);
        let mut rng = Xoshiro256::new(42);
        let mean = p.mean_path_loss_db(100.0);
        let n = 20_000;
        let samples: Vec<f64> = (0..n)
            .map(|_| p.sample_path_loss_db(100.0, &mut rng) - mean)
            .collect();
        let m = samples.iter().sum::<f64>() / n as f64;
        let v = samples.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / n as f64;
        assert!(m.abs() < 0.1, "mean {m}");
        assert!((v.sqrt() - 4.0).abs() < 0.1, "sd {}", v.sqrt());
    }

    #[test]
    #[should_panic(expected = "exponent must be positive")]
    fn bad_beta_rejected() {
        PropagationModel::shadowing(0.0, 1.0);
    }

    #[test]
    fn determinism_classification() {
        assert!(PropagationModel::free_space().is_deterministic());
        assert!(PropagationModel::TwoRayGround { ht: 1.5, hr: 1.5 }.is_deterministic());
        assert!(PropagationModel::shadowing(2.0, 0.0).is_deterministic());
        assert!(!PropagationModel::shadowing(2.0, 4.0).is_deterministic());
    }

    #[test]
    fn max_distance_brackets_the_loss_boundary() {
        for model in [
            PropagationModel::free_space(),
            PropagationModel::TwoRayGround { ht: 1.5, hr: 1.5 },
            PropagationModel::shadowing(2.7, 0.0),
        ] {
            for budget in [60.0, 86.0, 110.0] {
                let d = model.max_distance_for_loss(budget);
                // Safe side: just beyond d the loss exceeds the budget,
                // and d itself is within (or a hair past) the boundary.
                assert!(model.mean_path_loss_db(d * 1.001) > budget, "{model:?}");
                assert!(model.mean_path_loss_db(d * 0.999) <= budget, "{model:?}");
            }
        }
        // The paper's radio: 550 m sensing disk ⇒ the horizon brackets it.
        let prop = PropagationModel::free_space();
        let budget = prop.mean_path_loss_db(550.0);
        let d = prop.max_distance_for_loss(budget);
        assert!((d - 550.0).abs() < 0.1, "horizon {d} should sit at 550 m");
        // Unreachable budgets clamp to the reference distance / the cap.
        assert_eq!(prop.max_distance_for_loss(-1.0), 1.0);
        assert_eq!(prop.max_distance_for_loss(1e9), 1e8);
    }
}
