//! # mg-phy — the wireless physical layer
//!
//! Models exactly what the paper's ns-2 setup models:
//!
//! * [`PropagationModel`] — free-space, two-ray ground, and the log-normal
//!   **shadowing** model of the paper (`P_r(d)/P_r(d0) [dB] = −10·β·
//!   log10(d/d0) + X_σ`); the paper's experiments use β = 2, σ = 0 (free
//!   space), with σ > 0 available for fading studies.
//! * [`RadioParams`] — transmit power and the two reception thresholds that
//!   create the paper's two concentric disks: the **transmission range**
//!   (250 m, frames decodable) and the **carrier-sensing / interference
//!   range** (550 m, channel merely perceived busy). Plus a 10 dB capture
//!   threshold, as in ns-2.
//! * [`Medium`] — the shared channel: tracks concurrent transmissions,
//!   answers per-node carrier-sense queries, reports busy/idle **edges**
//!   (which drive both the MAC back-off freeze logic and the monitor's slot
//!   statistics), and adjudicates per-receiver reception outcomes
//!   (decoded / collided / sensed-only) using SINR capture. Transmission
//!   footprints are discovered through a [`MediumIndex`] — a cell-grid
//!   spatial index by default, with the naive full scan kept compiled and
//!   byte-identical for differential testing.
//!
//! # Example
//!
//! ```
//! use mg_geom::Vec2;
//! use mg_phy::{Medium, PropagationModel, RadioParams};
//! use mg_sim::{rng::Xoshiro256, SimTime};
//!
//! let prop = PropagationModel::free_space();
//! let radio = RadioParams::calibrated(&prop, 250.0, 550.0);
//! let positions = vec![Vec2::new(0.0, 0.0), Vec2::new(240.0, 0.0)];
//! let mut medium = Medium::new(prop, radio, positions);
//! let mut rng = Xoshiro256::new(1);
//!
//! let (tx, edges) = medium.begin_tx(0, SimTime::ZERO, &mut rng);
//! assert!(edges.iter().any(|e| e.node == 1 && e.busy)); // neighbor senses it
//! let ended = medium.end_tx(tx, SimTime::from_micros(272));
//! assert!(ended.outcome_of(1).is_decoded()); // and decodes it (240 m < 250 m)
//! ```

#![warn(missing_docs)]

mod index;
mod medium;
mod propagation;
mod radio;
mod shard;

pub use medium::{EdgeChange, EndedTx, Medium, MediumIndex, RxOutcome, TxId};
pub use propagation::PropagationModel;
pub use radio::{dbm_to_mw, mw_to_dbm, RadioParams};
pub use shard::SlabPlan;

/// Index of a node in the simulation (dense, assigned at construction).
pub type NodeId = usize;
