//! Property-based tests for the PHY: propagation laws and medium
//! bookkeeping invariants under random transmission schedules
//! (mg-testkit harness).

use mg_geom::Vec2;
use mg_phy::{dbm_to_mw, mw_to_dbm, Medium, PropagationModel, RadioParams, RxOutcome};
use mg_sim::rng::Xoshiro256;
use mg_sim::SimTime;
use mg_testkit::prop::{check, Gen, TkResult};
use mg_testkit::{tk_assert, tk_assert_eq};

/// dBm/mW conversions are inverse bijections on the sane range.
#[test]
fn power_conversions_roundtrip() {
    check("power_conversions_roundtrip", |g: &mut Gen| -> TkResult {
        let dbm = g.f64_in(-150.0..60.0);
        tk_assert!((mw_to_dbm(dbm_to_mw(dbm)) - dbm).abs() < 1e-9);
        Ok(())
    });
}

/// Path loss is monotone non-decreasing in distance for every model.
#[test]
fn path_loss_monotone() {
    check("path_loss_monotone", |g: &mut Gen| -> TkResult {
        let d1 = g.f64_in(0.0..3000.0);
        let d2 = g.f64_in(0.0..3000.0);
        let beta = g.f64_in(1.5..5.0);
        let (lo, hi) = if d1 <= d2 { (d1, d2) } else { (d2, d1) };
        for model in [
            PropagationModel::FreeSpace,
            PropagationModel::TwoRayGround { ht: 1.5, hr: 1.5 },
            PropagationModel::shadowing(beta, 0.0),
        ] {
            tk_assert!(
                model.mean_path_loss_db(lo) <= model.mean_path_loss_db(hi) + 1e-9,
                "{model:?}"
            );
        }
        Ok(())
    });
}

/// Calibration puts the decode boundary exactly at the requested range.
#[test]
fn calibration_boundary() {
    check("calibration_boundary", |g: &mut Gen| -> TkResult {
        let tx_range = g.f64_in(50.0..500.0);
        let margin = g.f64_in(1.01..2.0);
        let prop_model = PropagationModel::free_space();
        let cs_range = tx_range * margin * 1.5;
        let r = RadioParams::calibrated(&prop_model, tx_range, cs_range);
        let p_in = r.rx_power_dbm(prop_model.mean_path_loss_db(tx_range / margin));
        let p_out = r.rx_power_dbm(prop_model.mean_path_loss_db(tx_range * margin));
        tk_assert!(r.decodable(p_in));
        tk_assert!(!r.decodable(p_out));
        Ok(())
    });
}

/// Medium bookkeeping: after an arbitrary schedule of begin/end pairs,
/// all carrier-sense counters return to idle and every outcome vector is
/// complete and self-consistent.
#[test]
fn medium_returns_to_quiescence() {
    check("medium_returns_to_quiescence", |g: &mut Gen| -> TkResult {
        let positions = g.vec(2..12, |g| (g.f64_in(0.0..2000.0), g.f64_in(0.0..2000.0)));
        let tx_plan = g.vec(1..20, |g| (g.usize_in(0..12), g.u64_in(1..50)));
        let seed = g.any_u64();
        let n = positions.len();
        let prop_model = PropagationModel::free_space();
        let radio = RadioParams::paper_default(&prop_model);
        let pts: Vec<Vec2> = positions.iter().map(|&(x, y)| Vec2::new(x, y)).collect();
        let mut medium = Medium::new(prop_model, radio, pts);
        let mut rng = Xoshiro256::new(seed);
        let mut in_flight = Vec::new();
        let mut t = 0u64;
        for &(src, gap) in &tx_plan {
            let src = src % n;
            t += gap;
            // A node cannot start a second transmission while its first is
            // still in flight: end it first.
            if medium.is_transmitting(src) {
                let idx = in_flight.iter().position(|&(_, s)| s == src).unwrap();
                let (tx, _) = in_flight.remove(idx);
                let ended = medium.end_tx(tx, SimTime::from_micros(t));
                tk_assert!(ended.receptions.len() < n, "src never covered");
            }
            let (tx, _) = medium.begin_tx(src, SimTime::from_micros(t), &mut rng);
            in_flight.push((tx, src));
        }
        for (tx, src) in in_flight {
            let ended = medium.end_tx(tx, SimTime::from_micros(t));
            tk_assert_eq!(ended.src, src);
            tk_assert!(ended.receptions.len() < n, "src never covered");
            tk_assert_eq!(ended.outcome_of(src), RxOutcome::SelfTx);
        }
        tk_assert_eq!(medium.active_count(), 0);
        for v in 0..n {
            tk_assert!(!medium.carrier_busy(v), "node {v} stuck busy");
        }
        Ok(())
    });
}

/// A single clean transmission is decoded by everyone strictly inside
/// the decode disk and unheard strictly outside the sense disk.
#[test]
fn clean_reception_by_distance() {
    check("clean_reception_by_distance", |g: &mut Gen| -> TkResult {
        let d = g.f64_in(1.0..1200.0);
        let seed = g.any_u64();
        let prop_model = PropagationModel::free_space();
        let radio = RadioParams::paper_default(&prop_model);
        let mut medium = Medium::new(
            prop_model,
            radio,
            vec![Vec2::ZERO, Vec2::new(d, 0.0)],
        );
        let mut rng = Xoshiro256::new(seed);
        let (tx, _) = medium.begin_tx(0, SimTime::ZERO, &mut rng);
        let out = medium.end_tx(tx, SimTime::ZERO).outcome_of(1);
        if d < 249.0 {
            tk_assert_eq!(out, RxOutcome::Decoded);
        } else if d > 251.0 && d < 549.0 {
            tk_assert_eq!(out, RxOutcome::Sensed);
        } else if d > 551.0 {
            tk_assert_eq!(out, RxOutcome::OutOfRange);
        }
        Ok(())
    });
}
