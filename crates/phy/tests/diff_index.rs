//! Differential tests: `MediumIndex::Naive` and `MediumIndex::Grid` must be
//! observationally *byte-identical*. Random event tapes — transmission
//! starts/ends, mobility steps, neighborhood queries — are driven through
//! two media that differ only in index strategy, and every observable is
//! compared: carrier-sense edges, sparse receptions, busy flags, active
//! counts, `nodes_within` answers, and the full JSONL trace journal.
//!
//! Failures shrink via the mg-testkit harness, so a divergence reports the
//! minimal (positions, tape) pair that triggers it.

use mg_geom::Vec2;
use mg_phy::{Medium, MediumIndex, PropagationModel, RadioParams, RxOutcome, TxId};
use mg_sim::rng::Xoshiro256;
use mg_sim::SimTime;
use mg_testkit::prop::{check, Gen, TkResult};
use mg_testkit::tk_assert_eq;
use mg_trace::{TraceConfig, Tracer};

/// One step of a random event tape.
#[derive(Clone, Copy, Debug)]
enum Op {
    /// Toggle transmission at a node: begin if idle, end if in flight.
    Toggle { node: usize, gap_us: u64 },
    /// Move a node (possibly outside the original field).
    Move { node: usize, x: f64, y: f64 },
    /// Neighborhood query: both media must return the same id list.
    Query { center_x: f64, center_y: f64, range: f64 },
}

fn gen_tape(g: &mut Gen) -> (Vec<Vec2>, Vec<Op>, u64) {
    let positions = g.vec(2..24, |g| {
        Vec2::new(g.f64_in(0.0..4000.0), g.f64_in(0.0..4000.0))
    });
    let n = positions.len();
    let tape = g.vec(1..40, |g| match g.usize_in(0..5) {
        0 => Op::Move {
            node: g.usize_in(0..n),
            // Deliberately overshoots the initial field on both sides so
            // the grid must handle cells that never existed at build time.
            x: g.f64_in(-500.0..5000.0),
            y: g.f64_in(-500.0..5000.0),
        },
        1 => Op::Query {
            center_x: g.f64_in(-500.0..5000.0),
            center_y: g.f64_in(-500.0..5000.0),
            range: g.f64_in(0.0..2000.0),
        },
        _ => Op::Toggle {
            node: g.usize_in(0..n),
            gap_us: g.u64_in(1..80),
        },
    });
    (positions, tape, g.any_u64())
}

/// Drives `tape` through a Naive and a Grid medium in lockstep and checks
/// every observable for equality. RNG streams start from the same seed, so
/// any draw-order divergence between the two paths also shows up.
fn run_differential(
    prop: PropagationModel,
    positions: Vec<Vec2>,
    tape: &[Op],
    seed: u64,
) -> TkResult {
    let radio = RadioParams::paper_default(&prop);
    let n = positions.len();

    let journal_a = Tracer::new(TraceConfig::verbose());
    let journal_b = Tracer::new(TraceConfig::verbose());
    let mut naive = Medium::with_index(prop, radio, positions.clone(), MediumIndex::Naive);
    let mut grid = Medium::with_index(prop, radio, positions, MediumIndex::Grid);
    naive.set_tracer(journal_a.clone());
    grid.set_tracer(journal_b.clone());
    let mut rng_a = Xoshiro256::new(seed);
    let mut rng_b = Xoshiro256::new(seed);

    // node -> in-flight TxId pair (naive, grid).
    let mut in_flight: Vec<Option<(TxId, TxId)>> = vec![None; n];
    let mut t = 0u64;

    let check_world = |naive: &Medium, grid: &Medium| -> TkResult {
        tk_assert_eq!(naive.active_count(), grid.active_count());
        for v in 0..n {
            tk_assert_eq!(naive.carrier_busy(v), grid.carrier_busy(v), "node {v}");
            tk_assert_eq!(naive.position(v), grid.position(v), "node {v}");
        }
        Ok(())
    };

    for &op in tape {
        match op {
            Op::Move { node, x, y } => {
                let p = Vec2::new(x, y);
                naive.set_position(node, p);
                grid.set_position(node, p);
            }
            Op::Query { center_x, center_y, range } => {
                let c = Vec2::new(center_x, center_y);
                tk_assert_eq!(
                    naive.nodes_within(c, range),
                    grid.nodes_within(c, range),
                    "nodes_within({c:?}, {range})"
                );
            }
            Op::Toggle { node, gap_us } => {
                t += gap_us;
                let now = SimTime::from_micros(t);
                match in_flight[node].take() {
                    Some((ta, tb)) => {
                        let ea = naive.end_tx(ta, now);
                        let eb = grid.end_tx(tb, now);
                        tk_assert_eq!(ea.src, eb.src);
                        tk_assert_eq!(ea.start, eb.start);
                        tk_assert_eq!(ea.receptions, eb.receptions, "src {node}");
                        tk_assert_eq!(ea.edges, eb.edges, "src {node}");
                        tk_assert_eq!(ea.outcome_of(node), RxOutcome::SelfTx);
                    }
                    None => {
                        let (ta, edges_a) = naive.begin_tx(node, now, &mut rng_a);
                        let (tb, edges_b) = grid.begin_tx(node, now, &mut rng_b);
                        tk_assert_eq!(edges_a, edges_b, "src {node}");
                        in_flight[node] = Some((ta, tb));
                    }
                }
            }
        }
        check_world(&naive, &grid)?;
    }

    // Drain: every tape must end quiescent so end-of-flight accounting is
    // always exercised, even when the generator never toggled twice.
    for (node, flight) in in_flight.iter_mut().enumerate() {
        if let Some((ta, tb)) = flight.take() {
            t += 1;
            let now = SimTime::from_micros(t);
            let ea = naive.end_tx(ta, now);
            let eb = grid.end_tx(tb, now);
            tk_assert_eq!(ea.receptions, eb.receptions, "drain src {node}");
            tk_assert_eq!(ea.edges, eb.edges, "drain src {node}");
        }
    }
    tk_assert_eq!(naive.active_count(), 0);
    check_world(&naive, &grid)?;

    // The strongest gate: the PHY journals must be byte-identical. (They
    // may legitimately be empty — a tape whose transmitters are all out of
    // everyone's sensing range journals no edges; the non-vacuousness of
    // this gate is pinned by `journal_gate_is_not_vacuous`.)
    tk_assert_eq!(journal_a.to_jsonl(), journal_b.to_jsonl(), "trace journals diverge");
    Ok(())
}

/// Deterministic propagation: the grid prunes discovery to the interference
/// horizon, and must still agree with the full scan on every observable.
#[test]
fn naive_and_grid_agree_on_random_tapes() {
    check("naive_and_grid_agree_on_random_tapes", |g: &mut Gen| {
        let (positions, tape, seed) = gen_tape(g);
        let prop = match g.usize_in(0..3) {
            0 => PropagationModel::FreeSpace,
            1 => PropagationModel::TwoRayGround { ht: 1.5, hr: 1.5 },
            _ => PropagationModel::shadowing(g.f64_in(1.8..4.0), 0.0),
        };
        run_differential(prop, positions, &tape, seed)
    });
}

/// Stochastic propagation (shadowing σ > 0): every receiver consumes an RNG
/// draw, so the grid must fall back to the full scan to keep the draw
/// streams — and therefore every downstream byte — identical.
#[test]
fn naive_and_grid_agree_under_stochastic_shadowing() {
    check(
        "naive_and_grid_agree_under_stochastic_shadowing",
        |g: &mut Gen| {
            let (positions, tape, seed) = gen_tape(g);
            let sigma = g.f64_in(0.5..8.0);
            run_differential(PropagationModel::shadowing(2.0, sigma), positions, &tape, seed)
        },
    );
}

/// Pins that the journal-equality gate in `run_differential` actually
/// compares something: one in-range transmission journals busy and idle
/// edges under both indexes.
#[test]
fn journal_gate_is_not_vacuous() {
    let prop = PropagationModel::free_space();
    let radio = RadioParams::paper_default(&prop);
    for index in [MediumIndex::Naive, MediumIndex::Grid] {
        let journal = Tracer::new(TraceConfig::verbose());
        let mut m = Medium::with_index(
            prop,
            radio,
            vec![Vec2::ZERO, Vec2::new(100.0, 0.0)],
            index,
        );
        m.set_tracer(journal.clone());
        let mut rng = Xoshiro256::new(7);
        let (tx, edges) = m.begin_tx(0, SimTime::ZERO, &mut rng);
        assert_eq!(edges.len(), 1, "{index:?}");
        m.end_tx(tx, SimTime::from_micros(10));
        assert!(
            journal.to_jsonl().lines().count() >= 2,
            "{index:?}: busy + idle edges must be journaled"
        );
    }
}

/// Dense pathological layout: everyone stacked inside one sensing disk, so
/// every transmission covers every node and capture decisions are decided
/// by the aggregate-interference maxima both paths maintain.
#[test]
fn naive_and_grid_agree_in_a_single_hotspot() {
    check("naive_and_grid_agree_in_a_single_hotspot", |g: &mut Gen| {
        let n = g.usize_in(2..16);
        let positions: Vec<Vec2> = (0..n)
            .map(|_| Vec2::new(g.f64_in(1000.0..1200.0), g.f64_in(1000.0..1200.0)))
            .collect();
        let tape = g.vec(1..40, |g| Op::Toggle {
            node: g.usize_in(0..n),
            gap_us: g.u64_in(1..80),
        });
        run_differential(PropagationModel::free_space(), positions, &tape, g.any_u64())
    });
}
