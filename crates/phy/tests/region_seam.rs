//! Region-seam edge cases for the sharded world engine's medium partition.
//!
//! The `SlabPlan` cuts the field into vertical region slabs and the
//! `Medium` keys its footprint memo on *per-region* position epochs. These
//! tests pin the seam behaviours the sharded engine depends on:
//!
//! * a node crossing a region seam mid-transmission (moved while its frame
//!   is in flight) produces byte-identical outcomes to an unsharded medium;
//! * a 1-region plan (halo covers the whole field) behaves exactly like no
//!   plan at all — footprints, edges, receptions, and memo behaviour;
//! * seam-local moves invalidate exactly the memos whose footprint spans
//!   cover the seam, never distant ones (the region-locality property that
//!   makes the memo epoch sharding-aware).

use mg_geom::Vec2;
use mg_phy::{Medium, MediumIndex, PropagationModel, RadioParams, SlabPlan};
use mg_sim::rng::Xoshiro256;
use mg_sim::SimTime;

fn medium(positions: Vec<Vec2>, index: MediumIndex, plan: Option<SlabPlan>) -> Medium {
    let prop = PropagationModel::free_space();
    let radio = RadioParams::paper_default(&prop);
    let mut m = Medium::with_index(prop, radio, positions, index);
    m.set_shard_plan(plan);
    m
}

/// Drives the same script — begin, move the receiver across the seam
/// mid-flight, end, then a second exchange from the new geometry — on two
/// mediums and asserts every observable matches.
fn assert_script_identical(mut a: Medium, mut b: Medium) {
    let mut ra = Xoshiro256::new(42);
    let mut rb = Xoshiro256::new(42);
    let (txa, ea) = a.begin_tx(0, SimTime::ZERO, &mut ra);
    let (txb, eb) = b.begin_tx(0, SimTime::ZERO, &mut rb);
    assert_eq!(ea, eb, "busy edges diverge");
    // Receiver crosses the seam while the frame is in flight.
    for m in [&mut a, &mut b] {
        m.set_position(1, Vec2::new(520.0, 100.0));
    }
    let enda = a.end_tx(txa, SimTime::from_micros(300));
    let endb = b.end_tx(txb, SimTime::from_micros(300));
    assert_eq!(enda.receptions, endb.receptions, "receptions diverge");
    assert_eq!(enda.edges, endb.edges, "idle edges diverge");
    // Second exchange: the memo (if any) must have been invalidated by the
    // seam crossing on both sides identically.
    let (txa, ea) = a.begin_tx(0, SimTime::from_micros(400), &mut ra);
    let (txb, eb) = b.begin_tx(0, SimTime::from_micros(400), &mut rb);
    assert_eq!(ea, eb);
    assert_eq!(
        a.end_tx(txa, SimTime::from_micros(700)).receptions,
        b.end_tx(txb, SimTime::from_micros(700)).receptions
    );
}

/// Node 1 starts just left of the x = 500 seam of a 2-region/1000 m plan
/// and crosses it mid-transmission. Sharded and unsharded mediums must
/// agree on everything.
#[test]
fn seam_crossing_mid_transmission_matches_unsharded() {
    let positions = vec![Vec2::new(300.0, 100.0), Vec2::new(480.0, 100.0)];
    let sharded = medium(positions.clone(), MediumIndex::Grid, Some(SlabPlan::new(2, 1000.0)));
    let plain = medium(positions, MediumIndex::Grid, None);
    assert_script_identical(sharded, plain);
}

/// The same seam crossing under the Naive index (no memo at all) — the
/// per-region epochs must be inert bookkeeping there.
#[test]
fn seam_crossing_matches_under_naive_index() {
    let positions = vec![Vec2::new(300.0, 100.0), Vec2::new(480.0, 100.0)];
    let sharded = medium(positions.clone(), MediumIndex::Naive, Some(SlabPlan::new(2, 1000.0)));
    let plain = medium(positions, MediumIndex::Grid, None);
    assert_script_identical(sharded, plain);
}

/// A 1-region plan has no interior seams: every cell is its own halo-free
/// interior, and behaviour is identical to an unsharded grid.
#[test]
fn one_region_plan_is_the_unsharded_grid() {
    let positions: Vec<Vec2> = (0..12).map(|i| Vec2::new(f64::from(i) * 90.0, 50.0)).collect();
    let one = medium(positions.clone(), MediumIndex::Grid, Some(SlabPlan::new(1, 1000.0)));
    let none = medium(positions, MediumIndex::Grid, None);
    assert_script_identical(one, none);
}

/// Region-locality of the memo: after a move *far* from a source's
/// footprint span, the memo replays (same RNG stream consumption, same
/// covers); after a move *inside* the span it recomputes. Both paths must
/// agree with a fresh scan — proven by comparing against a plain medium
/// driven identically.
#[test]
fn memo_locality_respects_region_spans() {
    // 4 regions over 8 km: slabs of 2 km, wider than the ≈1.7 km
    // interference horizon, so a footprint at x = 1000 spans regions {0, 1}
    // and a move at x = 7900 (region 3) must not invalidate it.
    let positions = vec![
        Vec2::new(1000.0, 0.0), // source, region 0
        Vec2::new(1200.0, 0.0), // receiver, region 0
        Vec2::new(7900.0, 0.0), // bystander, region 3
    ];
    let plan = SlabPlan::new(4, 8000.0);
    let mut sharded = medium(positions.clone(), MediumIndex::Grid, Some(plan));
    let mut plain = medium(positions, MediumIndex::Grid, None);
    let mut rs = Xoshiro256::new(9);
    let mut rp = Xoshiro256::new(9);

    let script: &[(usize, Vec2)] = &[
        (2, Vec2::new(7500.0, 30.0)),  // far move: memo may replay
        (1, Vec2::new(1100.0, 10.0)),  // in-span move: memo must recompute
        (2, Vec2::new(900.0, 0.0)),    // bystander walks INTO the span
        (2, Vec2::new(7500.0, -40.0)), // and back out
    ];
    for &(node, to) in script {
        let (txs, es) = sharded.begin_tx(0, sharded_now(&sharded), &mut rs);
        let (txp, ep) = plain.begin_tx(0, sharded_now(&plain), &mut rp);
        assert_eq!(es, ep);
        sharded.set_position(node, to);
        plain.set_position(node, to);
        let ends = sharded.end_tx(txs, SimTime::from_micros(999));
        let endp = plain.end_tx(txp, SimTime::from_micros(999));
        assert_eq!(ends.receptions, endp.receptions);
        assert_eq!(ends.edges, endp.edges);
    }

    fn sharded_now(_m: &Medium) -> SimTime {
        SimTime::ZERO
    }
}

/// `region_of` + halo classification across moves: crossing the seam flips
/// the owning region exactly at the boundary, and the halo ring is exactly
/// the horizon-width band around it.
#[test]
fn region_assignment_tracks_moves() {
    let positions = vec![Vec2::new(100.0, 0.0), Vec2::new(900.0, 0.0)];
    let mut m = medium(positions, MediumIndex::Grid, Some(SlabPlan::new(2, 1000.0)));
    assert_eq!(m.region_of(0), 0);
    assert_eq!(m.region_of(1), 1);
    m.set_position(0, Vec2::new(499.9, 0.0));
    assert_eq!(m.region_of(0), 0);
    m.set_position(0, Vec2::new(500.0, 0.0));
    assert_eq!(m.region_of(0), 1, "the seam itself belongs to the right slab");
    m.set_position(0, Vec2::new(-50.0, 0.0));
    assert_eq!(m.region_of(0), 0, "out-of-field positions clamp to edge slabs");

    let plan = *m.shard_plan().expect("plan installed");
    let h = m.interference_horizon().expect("deterministic propagation");
    assert!(plan.is_halo(Vec2::new(500.0, 0.0), h));
    assert!(plan.is_halo(Vec2::new(500.0 - h, 0.0), h));
    assert!(!plan.is_halo(Vec2::new(500.0 - h - 1.0, 0.0), h));
}
