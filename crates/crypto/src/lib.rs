//! # mg-crypto — MD5 and the verifiable back-off sequence
//!
//! Two small, self-contained primitives the paper's modified RTS frame
//! (Fig. 2) relies on:
//!
//! * [`digest`]/[`Md5`] — the MD5 message digest (RFC 1321), from scratch
//!   and validated against the RFC's test vectors. The sender attaches
//!   `MD5(next DATA frame)` to each RTS so monitors can verify that a
//!   retransmission really is a retransmission (attempt-number cheating is
//!   otherwise undetectable).
//! * [`VerifiableSequence`] — the pseudo-random sequence (PRS) of back-off
//!   draws, seeded by the node's MAC address. Because the seed is the
//!   (unique, certificate-protected) MAC address and the generator is public,
//!   **every neighbor can replay any node's dictated back-off values**; the
//!   13-bit sequence offset in the RTS commits the sender to a position in
//!   its own sequence.
//!
//! MD5 is used here for *commitment*, not collision resistance in the modern
//! adversarial sense — exactly as in the 2006 paper. Swapping in a stronger
//! hash would not change any interface.

#![warn(missing_docs)]

mod md5;
mod prs;

pub use md5::{digest, Md5};
pub use prs::{BackoffDraw, VerifiableSequence, SEQ_OFF_BITS, SEQ_OFF_MOD};
