//! The verifiable pseudo-random back-off sequence (PRS).
//!
//! Section 4 of the paper modifies the IEEE 802.11 back-off draw: instead of
//! a private RNG, each node draws from a **public pseudo-random sequence
//! seeded by its own MAC address**. Every neighbor knows the MAC address, so
//! every neighbor can compute the exact back-off value the node *must* use
//! for any (sequence offset, attempt) pair — the sequence offset being
//! committed in the RTS.
//!
//! The draw keeps standard 802.11 semantics: at retransmission attempt `a`
//! (1-based) the contention window is `CW(a) = min(2^(a-1)·(CWmin+1),
//! CWmax+1) − 1` and the back-off is uniform on `[0, CW(a)]`. The PRS fixes
//! the *uniform variate*, the attempt number fixes the *window*, so a
//! retransmission legitimately uses a wider window while remaining fully
//! verifiable.

/// Width of the RTS sequence-offset field (paper Fig. 2: 13 bits).
pub const SEQ_OFF_BITS: u32 = 13;

/// Modulus of the on-air sequence-offset field (`2^13`); the logical offset
/// is unbounded and monitors reconstruct it across wraps.
pub const SEQ_OFF_MOD: u64 = 1 << SEQ_OFF_BITS;

/// One dictated back-off draw.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct BackoffDraw {
    /// The dictated number of back-off slots.
    pub slots: u16,
    /// The contention window the draw was taken from (`slots ≤ cw`).
    pub cw: u16,
}

/// A node's public back-off sequence, replayable by any monitor.
///
/// # Example
///
/// ```
/// use mg_crypto::VerifiableSequence;
///
/// let sender = VerifiableSequence::new(0x00_16_3E_00_00_2A);
/// let monitor_view = VerifiableSequence::new(0x00_16_3E_00_00_2A);
/// // A monitor replays the sender's dictated values exactly.
/// assert_eq!(
///     sender.backoff(17, 1, 31, 1023),
///     monitor_view.backoff(17, 1, 31, 1023),
/// );
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct VerifiableSequence {
    seed: u64,
}

impl VerifiableSequence {
    /// Creates the sequence for the node with the given MAC address (the
    /// paper requires the MAC address itself to be the seed; addresses are
    /// assumed unforgeable thanks to a certificate infrastructure).
    pub fn new(mac_addr: u64) -> Self {
        VerifiableSequence {
            seed: mix(mac_addr ^ 0x6D61_6E65_745F_6764), // domain-separate
        }
    }

    /// The raw 64-bit PRS word at offset `seq_off`.
    ///
    /// Counter-mode construction: `mix(seed ⊕ mix(seq_off mod 2¹³))` —
    /// random access to any offset without iterating, which is exactly what
    /// a monitor joining mid-sequence needs.
    ///
    /// The sequence is **cyclic in the 13-bit wire offset**: a monitor that
    /// lost contact for longer than one wrap (the RTS field cannot encode
    /// the epoch) can still verify every draw statelessly. The cost is that
    /// draws repeat every 2¹³ transmissions; offset-continuity and reuse
    /// monitoring by whichever neighbors are present constrain a cheater's
    /// ability to exploit the cycle (see `mg-detect`).
    pub fn raw(&self, seq_off: u64) -> u64 {
        let cyclic = seq_off % SEQ_OFF_MOD;
        mix(self.seed ^ mix(cyclic.wrapping_add(0x9E37_79B9_7F4A_7C15)))
    }

    /// The uniform variate in `[0, 1)` at offset `seq_off`.
    pub fn uniform01(&self, seq_off: u64) -> f64 {
        (self.raw(seq_off) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// The contention window for retransmission `attempt` (1-based) under
    /// binary exponential back-off between `cw_min` and `cw_max`.
    ///
    /// # Panics
    ///
    /// Panics if `attempt == 0` or `cw_min > cw_max`.
    pub fn contention_window(attempt: u8, cw_min: u16, cw_max: u16) -> u16 {
        assert!(attempt >= 1, "attempt numbers are 1-based");
        assert!(cw_min <= cw_max, "cw_min must not exceed cw_max");
        let grown = (u32::from(cw_min) + 1) << (u32::from(attempt) - 1).min(16);
        (grown.min(u32::from(cw_max) + 1) - 1) as u16
    }

    /// The dictated back-off for `(seq_off, attempt)`.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`Self::contention_window`].
    pub fn backoff(&self, seq_off: u64, attempt: u8, cw_min: u16, cw_max: u16) -> BackoffDraw {
        let cw = Self::contention_window(attempt, cw_min, cw_max);
        let u = self.uniform01(seq_off);
        let slots = (u * f64::from(cw) + u).floor() as u16; // u*(cw+1), exact for cw ≤ 2^16
        BackoffDraw {
            slots: slots.min(cw),
            cw,
        }
    }

    /// The 13-bit on-air representation of a logical offset.
    pub fn wire_offset(seq_off: u64) -> u16 {
        (seq_off % SEQ_OFF_MOD) as u16
    }

    /// Reconstructs the logical offset from an on-air 13-bit value, given the
    /// last logical offset the monitor saw from this node. Offsets are
    /// assumed to move forward by less than one wrap between observations.
    pub fn unwrap_offset(wire: u16, last_logical: u64) -> u64 {
        let base = last_logical - (last_logical % SEQ_OFF_MOD);
        let candidate = base + u64::from(wire);
        if candidate >= last_logical {
            candidate
        } else {
            candidate + SEQ_OFF_MOD
        }
    }
}

/// SplitMix64 finalizer (duplicated from `mg-sim` to keep this crate
/// dependency-free; 6 lines of public-domain constants).
fn mix(v: u64) -> u64 {
    let mut z = v.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    const CW_MIN: u16 = 31;
    const CW_MAX: u16 = 1023;

    #[test]
    fn deterministic_and_mac_specific() {
        let a = VerifiableSequence::new(1);
        let a2 = VerifiableSequence::new(1);
        let b = VerifiableSequence::new(2);
        for off in 0..100 {
            assert_eq!(a.raw(off), a2.raw(off));
        }
        let same = (0..100).filter(|&o| a.raw(o) == b.raw(o)).count();
        assert_eq!(same, 0, "distinct MACs must give distinct sequences");
    }

    #[test]
    fn contention_window_doubles_and_caps() {
        assert_eq!(VerifiableSequence::contention_window(1, CW_MIN, CW_MAX), 31);
        assert_eq!(VerifiableSequence::contention_window(2, CW_MIN, CW_MAX), 63);
        assert_eq!(VerifiableSequence::contention_window(3, CW_MIN, CW_MAX), 127);
        assert_eq!(VerifiableSequence::contention_window(6, CW_MIN, CW_MAX), 1023);
        assert_eq!(VerifiableSequence::contention_window(7, CW_MIN, CW_MAX), 1023);
        assert_eq!(VerifiableSequence::contention_window(50, CW_MIN, CW_MAX), 1023);
    }

    #[test]
    fn backoff_within_window_and_uses_same_variate() {
        let s = VerifiableSequence::new(0xAB);
        for off in 0..500 {
            let d1 = s.backoff(off, 1, CW_MIN, CW_MAX);
            assert!(d1.slots <= d1.cw);
            assert_eq!(d1.cw, 31);
            let d3 = s.backoff(off, 3, CW_MIN, CW_MAX);
            assert!(d3.slots <= 127);
            // Same uniform variate scaled to a wider window: the wide draw is
            // (cw3+1)/(cw1+1) = 4x the narrow draw, up to flooring.
            assert!(
                (i32::from(d3.slots) - 4 * i32::from(d1.slots)).abs() <= 4,
                "off={off}: {d1:?} vs {d3:?}"
            );
        }
    }

    #[test]
    fn backoff_is_roughly_uniform() {
        // One full wrap: the sequence is cyclic, so 2^13 draws is the whole
        // population (expected 256 per bucket, sd ≈ 16).
        let s = VerifiableSequence::new(7);
        let n = SEQ_OFF_MOD;
        let mut counts = [0u32; 32];
        for off in 0..n {
            counts[s.backoff(off, 1, CW_MIN, CW_MAX).slots as usize] += 1;
        }
        let expect = n as f64 / 32.0;
        for (v, &c) in counts.iter().enumerate() {
            let dev = (c as f64 - expect).abs() / expect;
            assert!(dev < 0.3, "value {v} count {c} deviates {dev}");
        }
    }

    #[test]
    fn sequence_is_cyclic_in_the_wire_offset() {
        let s = VerifiableSequence::new(77);
        for off in [0u64, 1, 100, 8191] {
            assert_eq!(s.raw(off), s.raw(off + SEQ_OFF_MOD));
            assert_eq!(
                s.backoff(off, 1, 31, 1023),
                s.backoff(off + 3 * SEQ_OFF_MOD, 1, 31, 1023)
            );
        }
        // …but distinct offsets within a wrap still differ.
        assert_ne!(s.raw(3), s.raw(4));
    }

    #[test]
    fn wire_offset_wraps_and_unwraps() {
        assert_eq!(VerifiableSequence::wire_offset(5), 5);
        assert_eq!(VerifiableSequence::wire_offset(SEQ_OFF_MOD + 5), 5);
        // Monitor last saw logical 8190; node now sends wire 3 → logical 8195.
        assert_eq!(VerifiableSequence::unwrap_offset(3, 8190), 8195);
        // No wrap: last 10, wire 12 → 12.
        assert_eq!(VerifiableSequence::unwrap_offset(12, 10), 12);
        // Exactly at the boundary.
        assert_eq!(
            VerifiableSequence::unwrap_offset(0, SEQ_OFF_MOD - 1),
            SEQ_OFF_MOD
        );
    }

    #[test]
    fn unwrap_round_trips_through_wire() {
        let mut last = 0u64;
        for logical in (0..40_000u64).step_by(7) {
            let wire = VerifiableSequence::wire_offset(logical);
            let rec = VerifiableSequence::unwrap_offset(wire, last);
            assert_eq!(rec, logical, "logical={logical} last={last}");
            last = logical;
        }
    }

    #[test]
    #[should_panic(expected = "1-based")]
    fn attempt_zero_rejected() {
        VerifiableSequence::new(0).backoff(0, 0, CW_MIN, CW_MAX);
    }
}
