//! Property-based tests for MD5 and the verifiable back-off sequence
//! (mg-testkit harness).

use mg_crypto::{digest, Md5, VerifiableSequence, SEQ_OFF_MOD};
use mg_testkit::prop::{check, Gen, TkResult};
use mg_testkit::{tk_assert, tk_assert_eq, tk_assert_ne, tk_assume};

/// Incremental hashing over arbitrary chunkings equals one-shot hashing.
#[test]
fn md5_chunking_invariant() {
    check("md5_chunking_invariant", |g: &mut Gen| -> TkResult {
        let data = g.vec(0..2048, Gen::any_u8);
        let mut cuts = g.vec(0..8, |g| g.usize_in(0..2048) % (data.len() + 1));
        cuts.sort_unstable();
        let oneshot = digest(&data);
        let mut h = Md5::new();
        let mut prev = 0;
        for &c in &cuts {
            h.update(&data[prev..c]);
            prev = c;
        }
        h.update(&data[prev..]);
        tk_assert_eq!(h.finalize(), oneshot);
        Ok(())
    });
}

/// Distinct inputs essentially never collide (sanity, not security).
#[test]
fn md5_distinguishes_suffixes() {
    check("md5_distinguishes_suffixes", |g: &mut Gen| -> TkResult {
        let data = g.vec(0..256, Gen::any_u8);
        let extra = g.any_u8();
        let mut longer = data.clone();
        longer.push(extra);
        tk_assert_ne!(digest(&data), digest(&longer));
        Ok(())
    });
}

/// Back-off draws always respect the contention window and are
/// deterministic per (mac, offset, attempt).
#[test]
fn backoff_within_window() {
    check("backoff_within_window", |g: &mut Gen| -> TkResult {
        let mac = g.any_u64();
        let off = g.any_u64();
        let attempt = g.u8_in(1..16);
        let s = VerifiableSequence::new(mac);
        let d = s.backoff(off, attempt, 31, 1023);
        tk_assert!(d.slots <= d.cw);
        tk_assert!(d.cw >= 31 && d.cw <= 1023);
        tk_assert_eq!(d, s.backoff(off, attempt, 31, 1023));
        Ok(())
    });
}

/// The same variate scales across attempts: a wider window can never
/// yield a *smaller* draw at the same offset.
#[test]
fn wider_window_never_shrinks() {
    check("wider_window_never_shrinks", |g: &mut Gen| -> TkResult {
        let mac = g.any_u64();
        let off = g.any_u64();
        let attempt = g.u8_in(1..9);
        let s = VerifiableSequence::new(mac);
        let narrow = s.backoff(off, attempt, 31, 1023);
        let wide = s.backoff(off, attempt + 1, 31, 1023);
        tk_assert!(wide.slots >= narrow.slots, "{narrow:?} vs {wide:?}");
        Ok(())
    });
}

/// Wire offsets round-trip through unwrap for any forward step smaller
/// than one wrap.
#[test]
fn offset_roundtrip() {
    check("offset_roundtrip", |g: &mut Gen| -> TkResult {
        let last = g.u64_in(0..1_000_000);
        let step = g.u64_in(0..8191);
        let logical = last + step;
        let wire = VerifiableSequence::wire_offset(logical);
        tk_assert_eq!(VerifiableSequence::unwrap_offset(wire, last), logical);
        tk_assert!(u64::from(wire) < SEQ_OFF_MOD);
        Ok(())
    });
}

/// Different MAC addresses give (essentially always) different draws
/// somewhere in any window of 16 offsets.
#[test]
fn macs_are_distinguishable() {
    check("macs_are_distinguishable", |g: &mut Gen| -> TkResult {
        let mac1 = g.any_u64();
        let mac2 = g.any_u64();
        let base = g.u64_in(0..1_000_000);
        tk_assume!(mac1 != mac2);
        let s1 = VerifiableSequence::new(mac1);
        let s2 = VerifiableSequence::new(mac2);
        let differs = (base..base + 16).any(|off| s1.raw(off) != s2.raw(off));
        tk_assert!(differs);
        Ok(())
    });
}
