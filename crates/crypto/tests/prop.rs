//! Property-based tests for MD5 and the verifiable back-off sequence.

use mg_crypto::{digest, Md5, VerifiableSequence, SEQ_OFF_MOD};
use proptest::prelude::*;

proptest! {
    /// Incremental hashing over arbitrary chunkings equals one-shot hashing.
    #[test]
    fn md5_chunking_invariant(
        data in prop::collection::vec(any::<u8>(), 0..2048),
        cuts in prop::collection::vec(0usize..2048, 0..8),
    ) {
        let oneshot = digest(&data);
        let mut cuts: Vec<usize> = cuts.into_iter().map(|c| c % (data.len() + 1)).collect();
        cuts.sort_unstable();
        let mut h = Md5::new();
        let mut prev = 0;
        for &c in &cuts {
            h.update(&data[prev..c]);
            prev = c;
        }
        h.update(&data[prev..]);
        prop_assert_eq!(h.finalize(), oneshot);
    }

    /// Distinct inputs essentially never collide (sanity, not security).
    #[test]
    fn md5_distinguishes_suffixes(data in prop::collection::vec(any::<u8>(), 0..256), extra in any::<u8>()) {
        let mut longer = data.clone();
        longer.push(extra);
        prop_assert_ne!(digest(&data), digest(&longer));
    }

    /// Back-off draws always respect the contention window and are
    /// deterministic per (mac, offset, attempt).
    #[test]
    fn backoff_within_window(mac in any::<u64>(), off in any::<u64>(), attempt in 1u8..16) {
        let s = VerifiableSequence::new(mac);
        let d = s.backoff(off, attempt, 31, 1023);
        prop_assert!(d.slots <= d.cw);
        prop_assert!(d.cw >= 31 && d.cw <= 1023);
        prop_assert_eq!(d, s.backoff(off, attempt, 31, 1023));
    }

    /// The same variate scales across attempts: a wider window can never
    /// yield a *smaller* draw at the same offset.
    #[test]
    fn wider_window_never_shrinks(mac in any::<u64>(), off in any::<u64>(), attempt in 1u8..9) {
        let s = VerifiableSequence::new(mac);
        let narrow = s.backoff(off, attempt, 31, 1023);
        let wide = s.backoff(off, attempt + 1, 31, 1023);
        prop_assert!(wide.slots >= narrow.slots, "{narrow:?} vs {wide:?}");
    }

    /// Wire offsets round-trip through unwrap for any forward step smaller
    /// than one wrap.
    #[test]
    fn offset_roundtrip(last in 0u64..1_000_000, step in 0u64..8191) {
        let logical = last + step;
        let wire = VerifiableSequence::wire_offset(logical);
        prop_assert_eq!(VerifiableSequence::unwrap_offset(wire, last), logical);
        prop_assert!(u64::from(wire) < SEQ_OFF_MOD);
    }

    /// Different MAC addresses give (essentially always) different draws
    /// somewhere in any window of 16 offsets.
    #[test]
    fn macs_are_distinguishable(mac1 in any::<u64>(), mac2 in any::<u64>(), base in 0u64..1_000_000) {
        prop_assume!(mac1 != mac2);
        let s1 = VerifiableSequence::new(mac1);
        let s2 = VerifiableSequence::new(mac2);
        let differs = (base..base + 16).any(|off| s1.raw(off) != s2.raw(off));
        prop_assert!(differs);
    }
}
