//! Golden-vector tests for MD5 against the RFC 1321 reference test suite
//! (section A.5), plus incremental-API coverage of the same vectors.

use mg_crypto::Md5;

/// The seven vectors published in RFC 1321 §A.5.
const RFC1321_VECTORS: &[(&str, &str)] = &[
    ("", "d41d8cd98f00b204e9800998ecf8427e"),
    ("a", "0cc175b9c0f1b6a831c399e269772661"),
    ("abc", "900150983cd24fb0d6963f7d28e17f72"),
    ("message digest", "f96b697d7cb7938d525a2f31aaf161d0"),
    (
        "abcdefghijklmnopqrstuvwxyz",
        "c3fcd3d76192e4007dfb496cca67e13b",
    ),
    (
        "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789",
        "d174ab98d277d9f5a5611c2c9f419d9f",
    ),
    (
        "12345678901234567890123456789012345678901234567890123456789012345678901234567890",
        "57edf4a22be3c955ac49da2e2107b67a",
    ),
];

#[test]
fn rfc1321_test_suite() {
    for &(input, expect) in RFC1321_VECTORS {
        let mut h = Md5::new();
        h.update(input.as_bytes());
        assert_eq!(h.finalize_hex(), expect, "MD5({input:?})");
    }
}

#[test]
fn rfc1321_vectors_survive_byte_at_a_time_hashing() {
    for &(input, expect) in RFC1321_VECTORS {
        let mut h = Md5::new();
        for b in input.as_bytes() {
            h.update(std::slice::from_ref(b));
        }
        assert_eq!(h.finalize_hex(), expect, "MD5({input:?}) byte-wise");
    }
}

/// Padding edge cases around the 448-bit boundary where the length block
/// spills into a second compression: 55, 56, 63, 64, 65 byte messages.
/// Expected digests computed with a second independent MD5 implementation.
#[test]
fn padding_boundary_lengths() {
    let cases: &[(usize, &str)] = &[
        (55, "ef1772b6dff9a122358552954ad0df65"),
        (56, "3b0c8ac703f828b04c6c197006d17218"),
        (63, "b06521f39153d618550606be297466d5"),
        (64, "014842d480b571495a4a0363793f7367"),
        (65, "c743a45e0d2e6a95cb859adae0248435"),
    ];
    for &(len, expect) in cases {
        let data = vec![b'a'; len];
        let mut h = Md5::new();
        h.update(&data);
        assert_eq!(h.finalize_hex(), expect, "MD5('a' x {len})");
    }
}
