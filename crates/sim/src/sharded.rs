//! Region-sharded event queue — the conservative-PDES sibling of
//! [`Scheduler`](crate::Scheduler).
//!
//! A [`ShardedScheduler`] partitions pending events into per-region *lanes*
//! (one binary heap each) and advances virtual time in lockstep **epochs**.
//! The epoch length is the caller's *lookahead*: the minimum virtual delay
//! after which an event dispatched in one region can schedule work into
//! another region. Events a region schedules into a foreign lane mid-epoch
//! land in that lane's **inbox** and are exchanged at the next epoch
//! barrier, merged in the canonical `(time, region, seq)` order.
//!
//! # Byte-identity with the serial scheduler
//!
//! The pop order is *provably identical* to [`Scheduler`](crate::Scheduler):
//!
//! * every event gets a **globally unique, monotonically increasing** `seq`
//!   at schedule time, exactly like the serial queue;
//! * [`ShardedScheduler::pop`] always delivers the minimum `(time, seq)` key
//!   over **all** containers (staged window, lane heaps, inboxes);
//! * inbox entries are guaranteed `time ≥ next barrier` (the conservative
//!   lookahead contract), and every barrier drains all inboxes before any
//!   event at or beyond it is delivered — so an inboxed event can never be
//!   overtaken. A schedule that *violates* the lookahead (foreign lane,
//!   `at <` next barrier) falls back to a direct lane push and is counted
//!   in [`ShardedScheduler::lookahead_violations`]: correctness never
//!   depends on the lookahead, only the exchange protocol does.
//!
//! Identical pop order ⇒ identical dispatch order ⇒ identical schedule
//! order ⇒ identical `seq` assignment, closing the induction. The
//! differential suite in `tests/sharded_diff.rs` drives both schedulers
//! over random event tapes (schedules, cancellations, cross-lane traffic)
//! and asserts the pop streams and journals match event for event.
//!
//! # Parallelism
//!
//! At each barrier the window of events due before the next boundary is
//! **staged**: popped out of the lane heaps into per-lane buffers and
//! merged canonically. Lane heaps are disjoint, so the staging pass runs
//! on scoped threads (one per lane) when the host has more than one core;
//! on a single-core host it degrades to a serial drain with the same
//! deterministic result. The merge point itself stays serial — that is
//! what makes the journal byte-identical to the serial scheduler.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet, VecDeque};

use mg_trace::{EventKind, Tracer};

use crate::scheduler::{Entry, EventHandle};
use crate::time::{SimDuration, SimTime};

/// The region every cross-cutting event (e.g. mobility ticks) should be
/// scheduled into: lane 0 doubles as the global lane.
pub const GLOBAL_REGION: usize = 0;

/// A deterministic region-sharded pending-event queue with a virtual clock
/// and lockstep epoch barriers. See the module docs for the equivalence
/// argument; the public surface mirrors [`Scheduler`](crate::Scheduler)
/// with an extra `region` coordinate on scheduling calls.
pub struct ShardedScheduler<E> {
    now: SimTime,
    /// Per-region pending heaps (min by `(time, seq)` via `Reverse`).
    lanes: Vec<BinaryHeap<Reverse<Entry<E>>>>,
    /// Cross-region events awaiting the next epoch barrier, per target lane.
    inboxes: Vec<Vec<Entry<E>>>,
    /// The current window, already merged in canonical order: entries due
    /// strictly before `boundary`, tagged with their source lane.
    staged: VecDeque<(Entry<E>, u32)>,
    cancelled: HashSet<u64>,
    next_seq: u64,
    popped: u64,
    /// Epoch length (the lookahead). Always > 0.
    epoch: SimDuration,
    /// The next epoch barrier; no staged event's time reaches it.
    boundary: SimTime,
    /// Lane of the most recently popped event — the region "speaking" while
    /// its dispatch runs. `None` before the first pop (setup phase), when
    /// every schedule goes directly to its lane.
    active_lane: Option<usize>,
    barriers: u64,
    cross_region: u64,
    lookahead_violations: u64,
    tracer: Tracer,
}

impl<E: Send> ShardedScheduler<E> {
    /// Creates an empty sharded scheduler with `regions ≥ 1` lanes and the
    /// given epoch length (the lookahead; must be nonzero).
    ///
    /// # Panics
    ///
    /// Panics if `regions == 0` or `epoch` is zero.
    pub fn new(regions: usize, epoch: SimDuration) -> Self {
        assert!(regions >= 1, "need at least one region");
        assert!(!epoch.is_zero(), "epoch (lookahead) must be positive");
        ShardedScheduler {
            now: SimTime::ZERO,
            lanes: (0..regions).map(|_| BinaryHeap::new()).collect(),
            inboxes: (0..regions).map(|_| Vec::new()).collect(),
            staged: VecDeque::new(),
            cancelled: HashSet::new(),
            next_seq: 0,
            popped: 0,
            epoch,
            boundary: SimTime::ZERO,
            active_lane: None,
            barriers: 0,
            cross_region: 0,
            lookahead_violations: 0,
            tracer: Tracer::disabled(),
        }
    }

    /// Journals every dispatch exactly like the serial scheduler (at `Debug`
    /// level for the `sched` subsystem). Disabled by default.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// The current virtual time (timestamp of the most recent pop).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events delivered so far.
    pub fn events_fired(&self) -> u64 {
        self.popped
    }

    /// Number of regions (lanes).
    pub fn regions(&self) -> usize {
        self.lanes.len()
    }

    /// The epoch length (lookahead) in force.
    pub fn epoch(&self) -> SimDuration {
        self.epoch
    }

    /// Epoch barriers crossed so far (diagnostic).
    pub fn barriers(&self) -> u64 {
        self.barriers
    }

    /// Events that were exchanged through a foreign lane's inbox
    /// (diagnostic: the cross-region traffic volume).
    pub fn cross_region_events(&self) -> u64 {
        self.cross_region
    }

    /// Cross-lane schedules that arrived *inside* the current epoch window
    /// and had to bypass the inbox protocol (diagnostic; correctness is
    /// unaffected, but a nonzero count means the configured lookahead
    /// overestimates the true minimum cross-region delay).
    pub fn lookahead_violations(&self) -> u64 {
        self.lookahead_violations
    }

    /// Number of events currently pending (including lazily-cancelled ones).
    pub fn len(&self) -> usize {
        self.staged.len()
            + self.lanes.iter().map(BinaryHeap::len).sum::<usize>()
            + self.inboxes.iter().map(Vec::len).sum::<usize>()
    }

    /// True when no events are pending (cancelled entries still count until
    /// they surface; [`ShardedScheduler::pop`] is the authoritative check).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Schedules `payload` in `region`'s lane to fire at absolute time `at`.
    ///
    /// While a popped event is being dispatched, a schedule into a *foreign*
    /// lane that respects the lookahead (`at ≥` next barrier) goes through
    /// that lane's inbox and is merged at the barrier; everything else is
    /// pushed directly.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than [`ShardedScheduler::now`] or `region`
    /// is out of range.
    pub fn schedule_at_in(&mut self, at: SimTime, region: usize, payload: E) -> EventHandle {
        assert!(
            at >= self.now,
            "cannot schedule into the past: now={:?}, at={:?}",
            self.now,
            at
        );
        assert!(region < self.lanes.len(), "region {region} out of range");
        let seq = self.next_seq;
        self.next_seq += 1;
        let entry = Entry { time: at, seq, payload };
        match self.active_lane {
            Some(active) if active != region => {
                if at >= self.boundary {
                    self.cross_region += 1;
                    self.inboxes[region].push(entry);
                } else {
                    self.lookahead_violations += 1;
                    self.lanes[region].push(Reverse(entry));
                }
            }
            _ => self.lanes[region].push(Reverse(entry)),
        }
        EventHandle::from_seq(seq)
    }

    /// Schedules `payload` in `region`'s lane to fire `after` from now.
    pub fn schedule_in_region(
        &mut self,
        after: SimDuration,
        region: usize,
        payload: E,
    ) -> EventHandle {
        self.schedule_at_in(self.now + after, region, payload)
    }

    /// Cancels a pending event (lazy, exactly like the serial scheduler).
    pub fn cancel(&mut self, handle: EventHandle) {
        self.cancelled.insert(handle.seq());
    }

    /// Discards cancelled entries at the staged-window front and on top of
    /// every lane, so the subsequent min-scan sees only live candidates.
    fn purge_cancelled_tops(&mut self) {
        while let Some((entry, _)) = self.staged.front() {
            if self.cancelled.remove(&entry.seq) {
                self.staged.pop_front();
            } else {
                break;
            }
        }
        for lane in &mut self.lanes {
            while let Some(Reverse(entry)) = lane.peek() {
                if self.cancelled.contains(&entry.seq) {
                    let seq = entry.seq;
                    lane.pop();
                    self.cancelled.remove(&seq);
                } else {
                    break;
                }
            }
        }
    }

    /// The minimum live `(time, seq)` over the staged window and the lane
    /// heaps (`None` for lane means the staged front wins). Assumes
    /// [`Self::purge_cancelled_tops`] ran.
    fn live_min(&self) -> Option<(SimTime, u64, Option<usize>)> {
        let mut best: Option<(SimTime, u64, Option<usize>)> = self
            .staged
            .front()
            .map(|(e, _)| (e.time, e.seq, None));
        for (lane, heap) in self.lanes.iter().enumerate() {
            if let Some(Reverse(e)) = heap.peek() {
                if best.is_none_or(|(t, s, _)| (e.time, e.seq) < (t, s)) {
                    best = Some((e.time, e.seq, Some(lane)));
                }
            }
        }
        best
    }

    /// Whether any inbox holds a live (non-cancelled) entry.
    fn inboxes_live(&self) -> bool {
        self.inboxes
            .iter()
            .any(|ib| ib.iter().any(|e| !self.cancelled.contains(&e.seq)))
    }

    /// Crosses an epoch barrier: exchanges every inbox into its lane in
    /// canonical `(time, region, seq)` order, advances the boundary to the
    /// first epoch edge strictly beyond `t`, and stages the new window
    /// (events due before the boundary), merged canonically. Lane heaps are
    /// disjoint, so the staging drain fans out to scoped threads on
    /// multicore hosts.
    fn cross_barrier(&mut self, t: SimTime) {
        debug_assert!(self.staged.is_empty(), "staged window must drain before a barrier");
        self.barriers += 1;
        // Deterministic exchange: all inboxes, canonical merge order.
        let mut exchanged: Vec<(u32, Entry<E>)> = Vec::new();
        for (region, inbox) in self.inboxes.iter_mut().enumerate() {
            exchanged.extend(inbox.drain(..).map(|e| (region as u32, e)));
        }
        exchanged.sort_by_key(|(region, e)| (e.time, *region, e.seq));
        for (region, e) in exchanged {
            self.lanes[region as usize].push(Reverse(e));
        }
        // Advance to the first epoch edge strictly beyond t.
        let e = self.epoch.as_nanos();
        self.boundary = SimTime::from_nanos((t.as_nanos() / e + 1).saturating_mul(e));

        // Stage the window: per-lane drains are independent, so fan out when
        // the host actually has parallelism (the serial drain is the same
        // computation in lane order — results are identical by construction).
        let boundary = self.boundary;
        let mut per_lane: Vec<Vec<(Entry<E>, u32)>> = Vec::new();
        let parallel = self.lanes.len() > 1
            && std::thread::available_parallelism().map_or(1, |p| p.get()) > 1;
        if parallel {
            per_lane.resize_with(self.lanes.len(), Vec::new);
            std::thread::scope(|scope| {
                for (lane, (heap, out)) in
                    self.lanes.iter_mut().zip(per_lane.iter_mut()).enumerate()
                {
                    scope.spawn(move || {
                        while heap.peek().is_some_and(|Reverse(e)| e.time < boundary) {
                            let Reverse(e) = heap.pop().expect("peeked entry exists");
                            out.push((e, lane as u32));
                        }
                    });
                }
            });
        } else {
            for (lane, heap) in self.lanes.iter_mut().enumerate() {
                let mut out = Vec::new();
                while heap.peek().is_some_and(|Reverse(e)| e.time < boundary) {
                    let Reverse(e) = heap.pop().expect("peeked entry exists");
                    out.push((e, lane as u32));
                }
                per_lane.push(out);
            }
        }
        let mut window: Vec<(Entry<E>, u32)> = per_lane.into_iter().flatten().collect();
        window.sort_by_key(|(e, _)| (e.time, e.seq));
        self.staged = window.into();
    }

    /// Pops the next live event — always the global minimum `(time, seq)`
    /// over every container — advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        loop {
            self.purge_cancelled_tops();
            let Some((time, _seq, source)) = self.live_min() else {
                // Lanes and window are dry; anything left lives in inboxes.
                if self.inboxes_live() {
                    let t = self
                        .inboxes
                        .iter()
                        .flatten()
                        .filter(|e| !self.cancelled.contains(&e.seq))
                        .map(|e| e.time)
                        .min()
                        .expect("live inbox entry exists");
                    self.cross_barrier(t);
                    continue;
                }
                // Drop cancelled leavings so `len` drains to zero.
                for inbox in &mut self.inboxes {
                    for e in inbox.drain(..) {
                        self.cancelled.remove(&e.seq);
                    }
                }
                return None;
            };
            if time >= self.boundary {
                self.cross_barrier(time);
                continue;
            }
            let (entry, lane) = match source {
                None => self.staged.pop_front().expect("staged front exists"),
                Some(lane) => {
                    let Reverse(e) = self.lanes[lane].pop().expect("peeked entry exists");
                    (e, lane as u32)
                }
            };
            debug_assert!(entry.time >= self.now, "event queue went backwards");
            self.now = entry.time;
            self.active_lane = Some(lane as usize);
            self.popped += 1;
            self.tracer
                .emit(entry.time.as_nanos(), None, EventKind::SchedDispatch { seq: entry.seq });
            return Some((entry.time, entry.payload));
        }
    }

    /// The timestamp of the next live event without popping it, or `None`
    /// if the queue is (effectively) empty. Never crosses a barrier.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.purge_cancelled_tops();
        let mut best = self.live_min().map(|(t, _, _)| t);
        for inbox in &self.inboxes {
            for e in inbox {
                if !self.cancelled.contains(&e.seq) && best.is_none_or(|t| e.time < t) {
                    best = Some(e.time);
                }
            }
        }
        best
    }
}

impl<E> std::fmt::Debug for ShardedScheduler<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedScheduler")
            .field("now", &self.now)
            .field("regions", &self.lanes.len())
            .field("epoch", &self.epoch)
            .field("fired", &self.popped)
            .field("barriers", &self.barriers)
            .field("cross_region", &self.cross_region)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sched(regions: usize) -> ShardedScheduler<u32> {
        ShardedScheduler::new(regions, SimDuration::from_micros(10))
    }

    #[test]
    fn pops_in_global_time_seq_order_across_lanes() {
        let mut s = sched(3);
        s.schedule_at_in(SimTime::from_micros(30), 2, 3);
        s.schedule_at_in(SimTime::from_micros(10), 1, 1);
        s.schedule_at_in(SimTime::from_micros(20), 0, 2);
        let order: Vec<u32> = std::iter::from_fn(|| s.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
        assert_eq!(s.now(), SimTime::from_micros(30));
        assert_eq!(s.events_fired(), 3);
    }

    #[test]
    fn fifo_at_equal_times_across_lanes() {
        // Same instant, round-robined over lanes: seq (insertion order) must
        // break the tie exactly like the serial scheduler.
        let mut s = sched(4);
        for i in 0..100u32 {
            s.schedule_at_in(SimTime::from_micros(5), (i % 4) as usize, i);
        }
        let order: Vec<u32> = std::iter::from_fn(|| s.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn cross_lane_schedule_goes_through_the_inbox_and_still_orders() {
        let mut s = sched(2);
        s.schedule_at_in(SimTime::from_micros(5), 0, 1);
        assert_eq!(s.pop().map(|(_, e)| e), Some(1)); // active lane = 0
        // Foreign lane, beyond the next barrier: inbox protocol.
        s.schedule_at_in(SimTime::from_micros(25), 1, 2);
        assert_eq!(s.cross_region_events(), 1);
        // Own lane: direct push.
        s.schedule_at_in(SimTime::from_micros(35), 0, 3);
        assert_eq!(s.peek_time(), Some(SimTime::from_micros(25)));
        assert_eq!(s.pop().map(|(_, e)| e), Some(2));
        assert_eq!(s.pop().map(|(_, e)| e), Some(3));
        assert!(s.pop().is_none());
        assert!(s.is_empty());
        assert_eq!(s.lookahead_violations(), 0);
    }

    #[test]
    fn lookahead_violation_falls_back_to_direct_push() {
        let mut s = sched(2);
        s.schedule_at_in(SimTime::from_micros(5), 0, 1);
        s.pop();
        // Foreign lane *inside* the current window (< 10 µs boundary):
        // must still deliver in order, via the fallback.
        s.schedule_at_in(SimTime::from_micros(7), 1, 2);
        s.schedule_at_in(SimTime::from_micros(8), 0, 3);
        assert_eq!(s.lookahead_violations(), 1);
        assert_eq!(s.pop().map(|(_, e)| e), Some(2));
        assert_eq!(s.pop().map(|(_, e)| e), Some(3));
    }

    #[test]
    fn cancel_suppresses_delivery_everywhere() {
        let mut s = sched(2);
        let ha = s.schedule_at_in(SimTime::from_micros(5), 0, 1);
        s.pop();
        s.cancel(ha); // already fired: no-op
        let hb = s.schedule_at_in(SimTime::from_micros(25), 1, 2); // inbox
        let hc = s.schedule_at_in(SimTime::from_micros(30), 0, 3); // lane
        s.cancel(hb);
        s.cancel(hc);
        let hd = s.schedule_at_in(SimTime::from_micros(40), 0, 4);
        assert_eq!(s.peek_time(), Some(SimTime::from_micros(40)));
        assert_eq!(s.pop(), Some((SimTime::from_micros(40), 4)));
        s.cancel(hd); // fired: no-op
        assert!(s.pop().is_none());
        assert_eq!(s.len(), 0, "cancelled leavings must drain");
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_the_past_panics() {
        let mut s = sched(2);
        s.schedule_at_in(SimTime::from_micros(10), 0, 0);
        s.pop();
        s.schedule_at_in(SimTime::from_micros(5), 1, 1);
    }

    #[test]
    fn dispatches_are_journaled_like_the_serial_scheduler() {
        use mg_trace::TraceConfig;
        let tracer = Tracer::new(TraceConfig::verbose());
        let mut s = sched(2);
        s.set_tracer(tracer.clone());
        let h = s.schedule_at_in(SimTime::from_micros(5), 0, 1);
        s.schedule_at_in(SimTime::from_micros(9), 1, 2);
        s.cancel(h);
        while s.pop().is_some() {}
        let events = tracer.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].t_ns, 9_000);
        assert_eq!(events[0].kind, EventKind::SchedDispatch { seq: 1 });
    }

    #[test]
    fn barriers_advance_with_time() {
        let mut s = sched(2);
        for k in 0..5u32 {
            // One event per 10 µs epoch, alternating lanes.
            s.schedule_at_in(SimTime::from_micros(u64::from(k) * 10 + 5), (k % 2) as usize, k);
        }
        let order: Vec<u32> = std::iter::from_fn(|| s.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
        assert_eq!(s.barriers(), 5, "one barrier per populated epoch window");
    }

    #[test]
    fn single_region_degenerates_to_the_serial_scheduler() {
        let mut serial: crate::Scheduler<u32> = crate::Scheduler::new();
        let mut sharded = sched(1);
        for (t, v) in [(30u64, 1u32), (10, 2), (30, 3), (20, 4)] {
            serial.schedule_at(SimTime::from_micros(t), v);
            sharded.schedule_at_in(SimTime::from_micros(t), 0, v);
        }
        loop {
            let a = serial.pop();
            let b = sharded.pop();
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }
}
