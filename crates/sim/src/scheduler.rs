//! The event queue at the heart of the simulator.
//!
//! Events are arbitrary payloads `E` scheduled for a [`SimTime`]. Two events
//! scheduled for the same instant pop in the order they were scheduled
//! (strict FIFO), which — together with seeded RNG streams — makes every
//! simulation run fully deterministic.
//!
//! Cancellation is *lazy*: [`Scheduler::cancel`] marks the handle dead in
//! O(log n) amortized time and the entry is discarded when it reaches the top
//! of the heap. This matches the access pattern of MAC timers, which are
//! re-armed and cancelled constantly.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};

use mg_trace::{EventKind, Tracer};

use crate::time::{SimDuration, SimTime};

/// Identifies a scheduled event so it can be cancelled before it fires.
///
/// Handles are unique for the lifetime of a [`Scheduler`] and are invalidated
/// once the event fires or is cancelled; cancelling a stale handle is a
/// harmless no-op.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct EventHandle(u64);

impl EventHandle {
    /// Wraps a raw sequence number (shared with `ShardedScheduler`, which
    /// allocates from the same global-sequence space).
    pub(crate) fn from_seq(seq: u64) -> Self {
        EventHandle(seq)
    }

    /// The raw sequence number behind this handle.
    pub(crate) fn seq(self) -> u64 {
        self.0
    }
}

pub(crate) struct Entry<E> {
    pub(crate) time: SimTime,
    pub(crate) seq: u64,
    pub(crate) payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// A deterministic pending-event queue with a virtual clock.
///
/// The clock ([`Scheduler::now`]) advances only when events are popped; there
/// is no wall-clock coupling, so simulations run as fast as the host allows
/// and always reproduce exactly.
///
/// # Example
///
/// ```
/// use mg_sim::{Scheduler, SimDuration};
///
/// let mut s: Scheduler<u32> = Scheduler::new();
/// let h = s.schedule_in(SimDuration::from_micros(50), 1);
/// s.schedule_in(SimDuration::from_micros(50), 2); // same instant: FIFO
/// s.cancel(h);
/// assert_eq!(s.pop().map(|(_, e)| e), Some(2));
/// assert!(s.pop().is_none());
/// ```
pub struct Scheduler<E> {
    now: SimTime,
    heap: BinaryHeap<Reverse<Entry<E>>>,
    cancelled: HashSet<u64>,
    next_seq: u64,
    popped: u64,
    tracer: Tracer,
}

impl<E> Scheduler<E> {
    /// Creates an empty scheduler with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        Scheduler {
            now: SimTime::ZERO,
            heap: BinaryHeap::new(),
            cancelled: HashSet::new(),
            next_seq: 0,
            popped: 0,
            tracer: Tracer::disabled(),
        }
    }

    /// Journals every dispatch (at `Debug` level for the `sched` subsystem)
    /// through `tracer`. Disabled by default.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// The current virtual time: the timestamp of the most recently popped
    /// event, or [`SimTime::ZERO`] if nothing has fired yet.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events delivered so far (diagnostic).
    pub fn events_fired(&self) -> u64 {
        self.popped
    }

    /// Number of events currently pending (including lazily-cancelled ones).
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    ///
    /// Note that lazily-cancelled events still count until they surface, so
    /// `is_empty` may briefly report `false` for a queue that will deliver
    /// nothing; [`Scheduler::pop`] is the authoritative check.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `payload` to fire at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than [`Scheduler::now`]: scheduling into the
    /// past would silently corrupt causality, so it is rejected loudly.
    pub fn schedule_at(&mut self, at: SimTime, payload: E) -> EventHandle {
        assert!(
            at >= self.now,
            "cannot schedule into the past: now={:?}, at={:?}",
            self.now,
            at
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Entry {
            time: at,
            seq,
            payload,
        }));
        EventHandle(seq)
    }

    /// Schedules `payload` to fire `after` from now.
    pub fn schedule_in(&mut self, after: SimDuration, payload: E) -> EventHandle {
        self.schedule_at(self.now + after, payload)
    }

    /// Cancels a pending event. Cancelling an event that already fired (or
    /// was already cancelled) is a no-op.
    pub fn cancel(&mut self, handle: EventHandle) {
        self.cancelled.insert(handle.0);
    }

    /// Pops the next live event, advancing the clock to its timestamp.
    ///
    /// Returns `None` when the queue has drained (cancelled entries are
    /// skipped transparently).
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(Reverse(entry)) = self.heap.pop() {
            if self.cancelled.remove(&entry.seq) {
                continue;
            }
            debug_assert!(entry.time >= self.now, "event queue went backwards");
            self.now = entry.time;
            self.popped += 1;
            self.tracer
                .emit(entry.time.as_nanos(), None, EventKind::SchedDispatch { seq: entry.seq });
            return Some((entry.time, entry.payload));
        }
        None
    }

    /// The timestamp of the next live event without popping it, or `None`
    /// if the queue is (effectively) empty.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        while let Some(Reverse(entry)) = self.heap.peek() {
            if self.cancelled.contains(&entry.seq) {
                let seq = entry.seq;
                self.heap.pop();
                self.cancelled.remove(&seq);
                continue;
            }
            return Some(entry.time);
        }
        None
    }
}

impl<E> Default for Scheduler<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> std::fmt::Debug for Scheduler<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scheduler")
            .field("now", &self.now)
            .field("pending", &self.heap.len())
            .field("fired", &self.popped)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut s: Scheduler<u32> = Scheduler::new();
        s.schedule_at(SimTime::from_micros(30), 3);
        s.schedule_at(SimTime::from_micros(10), 1);
        s.schedule_at(SimTime::from_micros(20), 2);
        let order: Vec<u32> = std::iter::from_fn(|| s.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
        assert_eq!(s.now(), SimTime::from_micros(30));
    }

    #[test]
    fn fifo_at_equal_times() {
        let mut s: Scheduler<u32> = Scheduler::new();
        for i in 0..100 {
            s.schedule_at(SimTime::from_micros(5), i);
        }
        let order: Vec<u32> = std::iter::from_fn(|| s.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn cancel_suppresses_delivery() {
        let mut s: Scheduler<&str> = Scheduler::new();
        let h = s.schedule_in(SimDuration::from_micros(10), "dead");
        s.schedule_in(SimDuration::from_micros(20), "alive");
        s.cancel(h);
        assert_eq!(s.pop().map(|(_, e)| e), Some("alive"));
        assert!(s.pop().is_none());
    }

    #[test]
    fn cancel_stale_handle_is_noop() {
        let mut s: Scheduler<u8> = Scheduler::new();
        let h = s.schedule_in(SimDuration::from_micros(1), 7);
        assert_eq!(s.pop().map(|(_, e)| e), Some(7));
        s.cancel(h); // already fired
        s.schedule_in(SimDuration::from_micros(1), 8);
        assert_eq!(s.pop().map(|(_, e)| e), Some(8));
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_the_past_panics() {
        let mut s: Scheduler<u8> = Scheduler::new();
        s.schedule_at(SimTime::from_micros(10), 0);
        s.pop();
        s.schedule_at(SimTime::from_micros(5), 1);
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut s: Scheduler<u64> = Scheduler::new();
        // Interleave scheduling and popping.
        s.schedule_at(SimTime::from_micros(10), 10);
        let (t, _) = s.pop().unwrap();
        assert_eq!(t, SimTime::from_micros(10));
        s.schedule_in(SimDuration::from_micros(5), 15);
        s.schedule_in(SimDuration::from_micros(1), 11);
        assert_eq!(s.pop().unwrap().0, SimTime::from_micros(11));
        assert_eq!(s.pop().unwrap().0, SimTime::from_micros(15));
        assert_eq!(s.events_fired(), 3);
    }

    #[test]
    fn dispatches_are_journaled_when_traced() {
        use mg_trace::{EventKind, TraceConfig, Tracer};
        let tracer = Tracer::new(TraceConfig::verbose());
        let mut s: Scheduler<u8> = Scheduler::new();
        s.set_tracer(tracer.clone());
        let h = s.schedule_at(SimTime::from_micros(5), 1);
        s.schedule_at(SimTime::from_micros(9), 2);
        s.cancel(h); // cancelled entries must not be journaled
        while s.pop().is_some() {}
        let events = tracer.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].t_ns, 9_000);
        assert_eq!(events[0].kind, EventKind::SchedDispatch { seq: 1 });
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut s: Scheduler<u8> = Scheduler::new();
        let h = s.schedule_in(SimDuration::from_micros(5), 1);
        s.schedule_in(SimDuration::from_micros(9), 2);
        s.cancel(h);
        assert_eq!(s.peek_time(), Some(SimTime::from_micros(9)));
        assert_eq!(s.pop().map(|(_, e)| e), Some(2));
        assert_eq!(s.peek_time(), None);
    }
}
