//! Virtual simulation time.
//!
//! [`SimTime`] is an absolute instant on the simulation clock; [`SimDuration`]
//! is the difference between two instants. Both are newtypes over a `u64`
//! count of **nanoseconds**, which keeps every IEEE 802.11 timing constant
//! (20 µs slot, 10 µs SIFS, 50 µs DIFS, per-bit transmission times at any
//! rate ≥ 1 kb/s) exactly representable and lets a 300 s run fit with room to
//! spare (`u64::MAX` ns ≈ 584 years).

use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute instant of virtual time, counted in nanoseconds since the
/// start of the simulation.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of virtual time (always non-negative), counted in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The beginning of simulated time.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; useful as an "infinitely far"
    /// sentinel for timers that are not currently armed.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant `ns` nanoseconds after the start of the simulation.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Creates an instant `us` microseconds after the start of the simulation.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Creates an instant `ms` milliseconds after the start of the simulation.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Creates an instant `s` seconds after the start of the simulation.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Nanoseconds since the start of the simulation.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole microseconds since the start of the simulation (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Seconds since the start of the simulation, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The span from `earlier` to `self`.
    ///
    /// Returns [`SimDuration::ZERO`] when `earlier` is in the future, which
    /// makes "how long have I been idle" queries robust against same-instant
    /// event reordering at the caller.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition; `None` on overflow of the underlying counter.
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }
}

impl SimDuration {
    /// The empty span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a span of `ns` nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Creates a span of `us` microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Creates a span of `ms` milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Creates a span of `s` seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Creates a span from a float number of seconds, rounding to the nearest
    /// nanosecond and saturating at zero for negative inputs.
    pub fn from_secs_f64(s: f64) -> Self {
        if s <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration((s * 1e9).round() as u64)
    }

    /// The span in nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The span in whole microseconds (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// The span in seconds, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// True for the empty span.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// How many whole periods of length `period` fit into this span.
    ///
    /// This is the "slots elapsed" primitive used by the MAC back-off
    /// countdown and by the monitor's slot-sampled channel statistics.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    pub fn div_periods(self, period: SimDuration) -> u64 {
        assert!(!period.is_zero(), "period must be non-zero");
        self.0 / period.0
    }

    /// Subtraction clamped at zero.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0 + d.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, d: SimDuration) {
        self.0 += d.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, d: SimDuration) -> SimTime {
        SimTime(self.0 - d.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// # Panics
    ///
    /// Panics in debug builds if `rhs` is later than `self`; use
    /// [`SimTime::saturating_since`] when ordering is not guaranteed.
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, d: SimDuration) -> SimDuration {
        SimDuration(self.0 + d.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, d: SimDuration) {
        self.0 += d.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, d: SimDuration) -> SimDuration {
        SimDuration(self.0 - d.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, d: SimDuration) {
        self.0 -= d.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, n: u64) -> SimDuration {
        SimDuration(self.0 * n)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, n: u64) -> SimDuration {
        SimDuration(self.0 / n)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 1_000_000 {
            write!(f, "{}ns", self.0)
        } else {
            write!(f, "{:.6}s", self.as_secs_f64())
        }
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_micros(1), SimTime::from_nanos(1_000));
        assert_eq!(SimTime::from_millis(1), SimTime::from_micros(1_000));
        assert_eq!(SimTime::from_secs(1), SimTime::from_millis(1_000));
        assert_eq!(SimDuration::from_secs(2).as_nanos(), 2_000_000_000);
    }

    #[test]
    fn arithmetic_roundtrips() {
        let t = SimTime::from_micros(100);
        let d = SimDuration::from_micros(20);
        assert_eq!((t + d) - t, d);
        assert_eq!((t + d) - d, t);
        let mut u = t;
        u += d;
        assert_eq!(u, SimTime::from_micros(120));
    }

    #[test]
    fn saturating_since_clamps() {
        let a = SimTime::from_micros(5);
        let b = SimTime::from_micros(9);
        assert_eq!(b.saturating_since(a), SimDuration::from_micros(4));
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
    }

    #[test]
    fn div_periods_counts_whole_slots() {
        let slot = SimDuration::from_micros(20);
        assert_eq!(SimDuration::from_micros(0).div_periods(slot), 0);
        assert_eq!(SimDuration::from_micros(19).div_periods(slot), 0);
        assert_eq!(SimDuration::from_micros(20).div_periods(slot), 1);
        assert_eq!(SimDuration::from_micros(139).div_periods(slot), 6);
    }

    #[test]
    #[should_panic(expected = "period must be non-zero")]
    fn div_periods_rejects_zero_period() {
        SimDuration::from_micros(10).div_periods(SimDuration::ZERO);
    }

    #[test]
    fn from_secs_f64_rounds_and_clamps() {
        assert_eq!(
            SimDuration::from_secs_f64(1.5e-6),
            SimDuration::from_nanos(1_500)
        );
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", SimTime::from_millis(1500)), "1.500000s");
        assert_eq!(format!("{}", SimDuration::from_nanos(42)), "42ns");
    }
}
