//! Reproducible random-number streams.
//!
//! Simulation science lives and dies by reproducibility: the same run seed
//! must produce the same packet arrivals, back-off draws, shadowing samples
//! and node placements on every machine and every build. We therefore ship
//! our own small, well-known generators — and our own [`Rng`] trait, so the
//! whole workspace builds with **zero external dependencies**:
//!
//! * [`SplitMix64`] — Steele/Lea/Flood's 64-bit mixer; used for seeding and
//!   for cheap hash-like stream derivation.
//! * [`Xoshiro256`] — Blackman/Vigna's `xoshiro256**`, the workhorse
//!   generator for everything statistical.
//!
//! The [`Rng`] trait carries every distribution the stack needs: uniform
//! integers and floats, Bernoulli trials, exponential gaps (Poisson
//! traffic), and Gaussian draws (log-normal shadowing).
//!
//! [`RngDirectory`] derives *independent named streams* from a run seed: node
//! 7's traffic stream never consumes numbers from node 3's back-off stream,
//! so adding a node or reordering events does not perturb unrelated draws.

/// A deterministic pseudo-random generator plus the distribution helpers the
/// simulation stack needs.
///
/// Implementors provide [`Rng::next_u64`]; everything else has a default in
/// terms of it, so all implementors expose identical distributions (a draw
/// depends only on the raw stream, never on which generator produced it).
pub trait Rng {
    /// The next raw 64-bit output.
    fn next_u64(&mut self) -> u64;

    /// The next raw 32-bit output (upper half of a 64-bit draw).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }

    /// A uniform draw in `[0, 1)` with 53 bits of precision.
    fn uniform01(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform draw in `[lo, hi)`.
    fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.uniform01()
    }

    /// A uniform integer in `[0, n)` via rejection-free Lemire reduction.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is meaningless");
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// A Bernoulli trial: `true` with probability `p` (clamped to [0, 1]).
    fn bernoulli(&mut self, p: f64) -> bool {
        self.uniform01() < p
    }

    /// An exponential draw with the given rate (mean `1/rate`) — the
    /// inter-arrival law of Poisson traffic.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not strictly positive.
    fn exponential(&mut self, rate: f64) -> f64 {
        assert!(rate > 0.0, "exponential rate must be positive");
        let u = 1.0 - self.uniform01(); // in (0, 1]
        -u.ln() / rate
    }

    /// A standard-normal draw (Marsaglia polar method) — the basis of
    /// log-normal shadowing.
    fn standard_normal(&mut self) -> f64 {
        loop {
            let x = self.uniform(-1.0, 1.0);
            let y = self.uniform(-1.0, 1.0);
            let r2 = x * x + y * y;
            if r2 > 0.0 && r2 < 1.0 {
                return x * (-2.0 * r2.ln() / r2).sqrt();
            }
        }
    }
}

/// SplitMix64: tiny, fast, passes BigCrush when used as a mixer.
///
/// Primarily used to expand seeds and derive sub-streams; also a perfectly
/// serviceable [`Rng`] for non-critical uses.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next 64-bit output.
    ///
    /// Deliberately named like the generator literature (not an
    /// `Iterator`: the stream is infinite and never yields `None`).
    #[inline]
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Stateless mix of a single value — a one-shot hash with the same
    /// avalanche properties as the generator.
    #[inline]
    pub fn mix(v: u64) -> u64 {
        SplitMix64::new(v).next()
    }
}

impl Rng for SplitMix64 {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.next()
    }
}

/// xoshiro256**: the main statistical generator.
///
/// 256 bits of state, period 2²⁵⁶−1, excellent equidistribution. Seeded via
/// SplitMix64 per the authors' recommendation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Creates a generator whose 256-bit state is expanded from `seed` with
    /// SplitMix64 (the construction recommended by the xoshiro authors).
    pub fn new(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = sm.next();
        }
        // An all-zero state is the one forbidden fixed point.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Xoshiro256 { s }
    }

    #[inline]
    fn next(&mut self) -> u64 {
        let result = self.s[1]
            .wrapping_mul(5)
            .rotate_left(7)
            .wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl Rng for Xoshiro256 {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.next()
    }
}

/// Derives independent, named random streams from one run seed.
///
/// Streams are identified by a `(domain, index)` pair — e.g. domain
/// `"traffic"`, index = node id — and are hashed into disjoint seeds, so the
/// consumption pattern of one stream never affects another.
///
/// # Example
///
/// ```
/// use mg_sim::rng::{Rng, RngDirectory};
///
/// let dir = RngDirectory::new(42);
/// let mut a = dir.stream("backoff", 3);
/// let mut b = dir.stream("backoff", 4);
/// assert_ne!(a.uniform01(), b.uniform01());
/// // Re-deriving the same stream replays it exactly.
/// let mut a2 = dir.stream("backoff", 3);
/// let _ = a2; // fresh copy, same sequence from the start
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RngDirectory {
    run_seed: u64,
}

impl RngDirectory {
    /// Creates a directory for the given run seed.
    pub fn new(run_seed: u64) -> Self {
        RngDirectory { run_seed }
    }

    /// The run seed this directory derives from.
    pub fn run_seed(&self) -> u64 {
        self.run_seed
    }

    /// Derives the stream `(domain, index)`.
    pub fn stream(&self, domain: &str, index: u64) -> Xoshiro256 {
        let mut h = SplitMix64::mix(self.run_seed);
        for &b in domain.as_bytes() {
            h = SplitMix64::mix(h ^ b as u64);
        }
        Xoshiro256::new(SplitMix64::mix(h ^ index.wrapping_mul(0xA24B_AED4_963E_E407)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // Reference outputs for seed 1234567 from the public-domain
        // splitmix64.c by Sebastiano Vigna.
        let mut rng = SplitMix64::new(1234567);
        assert_eq!(rng.next(), 6457827717110365317);
        assert_eq!(rng.next(), 3203168211198807973);
        assert_eq!(rng.next(), 9817491932198370423);
    }

    #[test]
    fn xoshiro_deterministic_and_seed_sensitive() {
        let mut a = Xoshiro256::new(99);
        let mut b = Xoshiro256::new(99);
        let mut c = Xoshiro256::new(100);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn uniform01_in_unit_interval() {
        let mut rng = Xoshiro256::new(7);
        for _ in 0..10_000 {
            let u = rng.uniform01();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn below_is_unbiased_enough() {
        let mut rng = Xoshiro256::new(11);
        let mut counts = [0u32; 5];
        for _ in 0..50_000 {
            counts[rng.below(5) as usize] += 1;
        }
        for &c in &counts {
            // Expected 10_000 per bucket; allow 5 sigma of binomial noise.
            assert!((9_550..10_450).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn bernoulli_frequency_matches_p() {
        let mut rng = Xoshiro256::new(12);
        let n = 100_000;
        let hits = (0..n).filter(|_| rng.bernoulli(0.3)).count() as f64;
        assert!((hits / n as f64 - 0.3).abs() < 0.01, "rate {}", hits / n as f64);
        let mut rng = Xoshiro256::new(12);
        assert!(!(0..1000).any(|_| rng.bernoulli(0.0)));
        let mut rng = Xoshiro256::new(12);
        assert!((0..1000).all(|_| rng.bernoulli(1.0)));
    }

    #[test]
    fn exponential_has_right_mean() {
        let mut rng = Xoshiro256::new(13);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.exponential(4.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.25).abs() < 0.005, "mean={mean}");
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = Xoshiro256::new(17);
        let n = 100_000;
        let xs: Vec<f64> = (0..n).map(|_| rng.standard_normal()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean={mean}");
        assert!((var - 1.0).abs() < 0.03, "var={var}");
    }

    #[test]
    fn distributions_depend_only_on_the_raw_stream() {
        // The trait defaults guarantee any two generators with the same raw
        // output produce the same distribution draws; spot-check by replaying
        // a recorded stream.
        struct Replay(Vec<u64>, usize);
        impl Rng for Replay {
            fn next_u64(&mut self) -> u64 {
                let v = self.0[self.1 % self.0.len()];
                self.1 += 1;
                v
            }
        }
        let mut x = Xoshiro256::new(21);
        let raw: Vec<u64> = (0..64).map(|_| x.next_u64()).collect();
        let mut x = Xoshiro256::new(21);
        let mut r = Replay(raw, 0);
        for _ in 0..16 {
            assert_eq!(x.uniform01(), r.uniform01());
        }
    }

    #[test]
    fn directory_streams_are_independent_and_stable() {
        let dir = RngDirectory::new(2024);
        let s1: Vec<u64> = {
            let mut r = dir.stream("traffic", 0);
            (0..4).map(|_| r.next_u64()).collect()
        };
        let s1_again: Vec<u64> = {
            let mut r = dir.stream("traffic", 0);
            (0..4).map(|_| r.next_u64()).collect()
        };
        let s2: Vec<u64> = {
            let mut r = dir.stream("traffic", 1);
            (0..4).map(|_| r.next_u64()).collect()
        };
        let s3: Vec<u64> = {
            let mut r = dir.stream("shadowing", 0);
            (0..4).map(|_| r.next_u64()).collect()
        };
        assert_eq!(s1, s1_again);
        assert_ne!(s1, s2);
        assert_ne!(s1, s3);
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = Xoshiro256::new(5);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
