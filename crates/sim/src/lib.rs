//! # mg-sim — deterministic discrete-event simulation kernel
//!
//! The substrate under the whole `manet-guard` stack. ns-2 (which the paper
//! uses) is an event-driven simulator with a central scheduler; this crate
//! provides the same service in safe Rust:
//!
//! * [`SimTime`] / [`SimDuration`] — a virtual clock with **nanosecond**
//!   resolution (IEEE 802.11 timing constants such as the 20 µs slot, 10 µs
//!   SIFS and fractional-slot DIFS all stay exactly representable).
//! * [`Scheduler`] — a binary-heap event queue with strictly deterministic
//!   FIFO tie-breaking for events scheduled at the same instant, plus O(1)
//!   lazy cancellation.
//! * [`ShardedScheduler`] — the region-sharded sibling: per-region event
//!   lanes advanced in lockstep epochs (conservative parallel DES), with a
//!   pop order provably byte-identical to [`Scheduler`].
//! * [`rng`] — self-contained, reproducible random-number streams
//!   ([`rng::SplitMix64`], [`rng::Xoshiro256`]) and a [`rng::RngDirectory`]
//!   that derives independent per-node / per-purpose streams from a single
//!   run seed, so any simulation run can be replayed bit-for-bit.
//!
//! # Example
//!
//! ```
//! use mg_sim::{Scheduler, SimDuration, SimTime};
//!
//! let mut sched: Scheduler<&'static str> = Scheduler::new();
//! sched.schedule_in(SimDuration::from_micros(20), "slot boundary");
//! sched.schedule_in(SimDuration::from_micros(10), "sifs elapsed");
//! let (t, ev) = sched.pop().expect("an event is pending");
//! assert_eq!(ev, "sifs elapsed");
//! assert_eq!(t, SimTime::from_micros(10));
//! ```

#![warn(missing_docs)]

pub mod rng;
mod scheduler;
mod sharded;
mod time;

pub use scheduler::{EventHandle, Scheduler};
pub use sharded::{ShardedScheduler, GLOBAL_REGION};
pub use time::{SimDuration, SimTime};
