//! Property-based tests for the simulation kernel (mg-testkit harness).

use mg_sim::rng::{Rng, RngDirectory, Xoshiro256};
use mg_sim::{Scheduler, SimDuration, SimTime};
use mg_testkit::prop::{check, Gen, TkResult};
use mg_testkit::{tk_assert, tk_assert_eq, tk_assert_ne};

/// Events always pop in (time, insertion) order regardless of insertion
/// order.
#[test]
fn scheduler_is_a_stable_priority_queue() {
    check("scheduler_is_a_stable_priority_queue", |g: &mut Gen| -> TkResult {
        let times = g.vec(1..200, |g| g.u64_in(0..10_000));
        let mut s: Scheduler<(u64, usize)> = Scheduler::new();
        for (i, &t) in times.iter().enumerate() {
            s.schedule_at(SimTime::from_micros(t), (t, i));
        }
        let mut popped = Vec::new();
        while let Some((at, (t, i))) = s.pop() {
            tk_assert_eq!(at, SimTime::from_micros(t));
            popped.push((t, i));
        }
        let mut expected = times
            .iter()
            .copied()
            .enumerate()
            .map(|(i, t)| (t, i))
            .collect::<Vec<_>>();
        expected.sort();
        tk_assert_eq!(popped, expected);
        Ok(())
    });
}

/// Cancelling an arbitrary subset delivers exactly the complement.
#[test]
fn cancellation_is_exact() {
    check("cancellation_is_exact", |g: &mut Gen| -> TkResult {
        let times = g.vec(1..100, |g| g.u64_in(0..1000));
        let cancel_mask = g.vec(1..100, |g| g.bool());
        let mut s: Scheduler<usize> = Scheduler::new();
        let handles: Vec<_> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| s.schedule_at(SimTime::from_micros(t), i))
            .collect();
        let mut expected: Vec<usize> = Vec::new();
        for (i, h) in handles.iter().enumerate() {
            if *cancel_mask.get(i).unwrap_or(&false) {
                s.cancel(*h);
            } else {
                expected.push(i);
            }
        }
        let mut delivered: Vec<usize> = Vec::new();
        while let Some((_, i)) = s.pop() {
            delivered.push(i);
        }
        delivered.sort_unstable();
        expected.sort_unstable();
        tk_assert_eq!(delivered, expected);
        Ok(())
    });
}

/// Durations: div_periods is consistent with multiplication.
#[test]
fn div_periods_inverse() {
    check("div_periods_inverse", |g: &mut Gen| -> TkResult {
        let period_us = g.u64_in(1..10_000);
        let k = g.u64_in(0..10_000);
        let rem_ns = g.u64_in(0..1000);
        let period = SimDuration::from_micros(period_us);
        let rem = SimDuration::from_nanos(rem_ns % period.as_nanos());
        let total = period * k + rem;
        tk_assert_eq!(total.div_periods(period), k);
        Ok(())
    });
}

/// Derived RNG streams with the same key replay; different keys differ.
#[test]
fn rng_directory_streams() {
    check("rng_directory_streams", |g: &mut Gen| -> TkResult {
        let seed = g.any_u64();
        let a = g.u64_in(0..1000);
        let b = g.u64_in(0..1000);
        let dir = RngDirectory::new(seed);
        let take = |mut r: Xoshiro256| -> Vec<u64> { (0..4).map(|_| r.next_u64()).collect() };
        tk_assert_eq!(take(dir.stream("x", a)), take(dir.stream("x", a)));
        if a != b {
            tk_assert_ne!(take(dir.stream("x", a)), take(dir.stream("x", b)));
        }
        tk_assert_ne!(take(dir.stream("x", a)), take(dir.stream("y", a)));
        Ok(())
    });
}

/// Uniform draws honor their bounds.
#[test]
fn rng_bounds() {
    check("rng_bounds", |g: &mut Gen| -> TkResult {
        let seed = g.any_u64();
        let lo = g.f64_in(-1e6..1e6);
        let width = g.f64_in(0.001..1e6);
        let n = g.u64_in(1..1000);
        let mut r = Xoshiro256::new(seed);
        let hi = lo + width;
        for _ in 0..100 {
            let u = r.uniform(lo, hi);
            tk_assert!((lo..hi).contains(&u), "{u} not in [{lo}, {hi})");
        }
        for _ in 0..100 {
            tk_assert!(r.below(n) < n);
        }
        Ok(())
    });
}

/// Bernoulli draws at p = 0 and p = 1 are degenerate; mid-p frequencies are
/// sane over a short run.
#[test]
fn rng_bernoulli_bounds() {
    check("rng_bernoulli_bounds", |g: &mut Gen| -> TkResult {
        let seed = g.any_u64();
        let p = g.f64_in(0.2..0.8);
        let mut r = Xoshiro256::new(seed);
        tk_assert!(!(0..50).any(|_| r.bernoulli(0.0)));
        tk_assert!((0..50).all(|_| r.bernoulli(1.0)));
        let hits = (0..2000).filter(|_| r.bernoulli(p)).count() as f64 / 2000.0;
        tk_assert!((hits - p).abs() < 0.1, "p={p}, freq={hits}");
        Ok(())
    });
}
