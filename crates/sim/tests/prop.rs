//! Property-based tests for the simulation kernel.

use mg_sim::rng::{RngDirectory, Xoshiro256};
use mg_sim::{Scheduler, SimDuration, SimTime};
use proptest::prelude::*;

proptest! {
    /// Events always pop in (time, insertion) order regardless of insertion
    /// order.
    #[test]
    fn scheduler_is_a_stable_priority_queue(times in prop::collection::vec(0u64..10_000, 1..200)) {
        let mut s: Scheduler<(u64, usize)> = Scheduler::new();
        for (i, &t) in times.iter().enumerate() {
            s.schedule_at(SimTime::from_micros(t), (t, i));
        }
        let mut popped = Vec::new();
        while let Some((at, (t, i))) = s.pop() {
            prop_assert_eq!(at, SimTime::from_micros(t));
            popped.push((t, i));
        }
        let mut expected = times.iter().copied().enumerate().map(|(i, t)| (t, i)).collect::<Vec<_>>();
        expected.sort();
        prop_assert_eq!(popped, expected);
    }

    /// Cancelling an arbitrary subset delivers exactly the complement.
    #[test]
    fn cancellation_is_exact(
        times in prop::collection::vec(0u64..1000, 1..100),
        cancel_mask in prop::collection::vec(any::<bool>(), 1..100),
    ) {
        let mut s: Scheduler<usize> = Scheduler::new();
        let handles: Vec<_> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| s.schedule_at(SimTime::from_micros(t), i))
            .collect();
        let mut expected: Vec<usize> = Vec::new();
        for (i, h) in handles.iter().enumerate() {
            if *cancel_mask.get(i).unwrap_or(&false) {
                s.cancel(*h);
            } else {
                expected.push(i);
            }
        }
        let mut delivered: Vec<usize> = Vec::new();
        while let Some((_, i)) = s.pop() {
            delivered.push(i);
        }
        delivered.sort_unstable();
        expected.sort_unstable();
        prop_assert_eq!(delivered, expected);
    }

    /// Durations: div_periods is consistent with multiplication.
    #[test]
    fn div_periods_inverse(period_us in 1u64..10_000, k in 0u64..10_000, rem_ns in 0u64..1000) {
        let period = SimDuration::from_micros(period_us);
        let rem = SimDuration::from_nanos(rem_ns % period.as_nanos());
        let total = period * k + rem;
        prop_assert_eq!(total.div_periods(period), k);
    }

    /// Derived RNG streams with the same key replay; different keys differ.
    #[test]
    fn rng_directory_streams(seed in any::<u64>(), a in 0u64..1000, b in 0u64..1000) {
        let dir = RngDirectory::new(seed);
        let take = |mut r: Xoshiro256| -> Vec<u64> { (0..4).map(|_| r.next()).collect() };
        prop_assert_eq!(take(dir.stream("x", a)), take(dir.stream("x", a)));
        if a != b {
            prop_assert_ne!(take(dir.stream("x", a)), take(dir.stream("x", b)));
        }
        prop_assert_ne!(take(dir.stream("x", a)), take(dir.stream("y", a)));
    }

    /// Uniform draws honor their bounds.
    #[test]
    fn rng_bounds(seed in any::<u64>(), lo in -1e6..1e6f64, width in 0.001..1e6f64, n in 1u64..1000) {
        let mut r = Xoshiro256::new(seed);
        let hi = lo + width;
        for _ in 0..100 {
            let u = r.uniform(lo, hi);
            prop_assert!((lo..hi).contains(&u), "{u} not in [{lo}, {hi})");
        }
        for _ in 0..100 {
            prop_assert!(r.below(n) < n);
        }
    }
}

// `Xoshiro256::next` is private; use the RngCore face for the directory test.
use rand::RngCore;
trait Next {
    fn next(&mut self) -> u64;
}
impl Next for Xoshiro256 {
    fn next(&mut self) -> u64 {
        self.next_u64()
    }
}
