//! Differential suite: `ShardedScheduler` vs the serial `Scheduler` on
//! shrinkable random event tapes (mg-testkit harness).
//!
//! The sharded queue's whole contract is *byte-identity*: same pop stream,
//! same clock, same fired counter, same `SchedDispatch` journal as the
//! serial heap — for any interleaving of schedules (own-lane, cross-lane,
//! lookahead-violating), cancellations, and pops. These properties drive
//! both schedulers with one tape and assert the streams match event for
//! event, which is exactly the argument `tests/trace_determinism.rs`
//! extends end-to-end through the World.

use mg_sim::{Scheduler, ShardedScheduler, SimDuration, SimTime};
use mg_testkit::prop::{check, Gen, TkResult};
use mg_testkit::{tk_assert, tk_assert_eq};
use mg_trace::{TraceConfig, Tracer};

/// The epoch used throughout: SIFS, the minimum cross-node delay the World
/// configures as its lookahead.
const EPOCH_US: u64 = 10;

/// Drives `serial` and `sharded` with the same interactive tape: each round
/// pops one event from both (asserting equality), then performs a batch of
/// schedules/cancellations derived from `g` — identically on both sides.
/// Returns when both queues report empty.
fn drive(
    g: &mut Gen,
    lanes: usize,
    serial: &mut Scheduler<u64>,
    sharded: &mut ShardedScheduler<u64>,
) -> TkResult {
    let mut next_payload = 0u64;
    // Total-schedule budget: without it the follow-up fan-out is a critical
    // branching process and a tape can take unboundedly long to drain.
    let budget = g.u64_in(50..400);
    let mut live: Vec<(mg_sim::EventHandle, mg_sim::EventHandle)> = Vec::new();
    // Seed both queues identically before any dispatch runs.
    for _ in 0..g.u64_in(1..20) {
        let at = SimTime::from_micros(g.u64_in(0..200));
        let lane = g.u64_in(0..lanes as u64) as usize;
        let hs = serial.schedule_at(at, next_payload);
        let hx = sharded.schedule_at_in(at, lane, next_payload);
        live.push((hs, hx));
        next_payload += 1;
    }
    loop {
        tk_assert_eq!(serial.peek_time(), sharded.peek_time());
        let a = serial.pop();
        let b = sharded.pop();
        tk_assert_eq!(a, b);
        let Some((now, _)) = a else {
            break;
        };
        tk_assert_eq!(serial.now(), sharded.now());
        // "Dispatch": schedule a few follow-ups relative to now. Deltas
        // below the epoch exercise the lookahead-violation fallback for
        // cross-lane targets; deltas at/above it exercise the inbox.
        for _ in 0..g.u64_in(0..4) {
            if next_payload >= budget {
                break;
            }
            let delta = g.u64_in(0..50);
            let lane = g.u64_in(0..lanes as u64) as usize;
            let at = now + SimDuration::from_micros(delta);
            let hs = serial.schedule_at(at, next_payload);
            let hx = sharded.schedule_at_in(at, lane, next_payload);
            live.push((hs, hx));
            next_payload += 1;
        }
        // Occasionally cancel a pending (or stale — harmless) handle.
        if !live.is_empty() && g.bool() {
            let idx = g.u64_in(0..live.len() as u64) as usize;
            let (hs, hx) = live.swap_remove(idx);
            serial.cancel(hs);
            sharded.cancel(hx);
        }
    }
    tk_assert_eq!(serial.events_fired(), sharded.events_fired());
    tk_assert_eq!(serial.now(), sharded.now());
    tk_assert!(sharded.pop().is_none());
    Ok(())
}

/// Pop stream, clock, and fired counter are identical to the serial
/// scheduler for any tape, across 1–6 regions.
#[test]
fn sharded_matches_serial_on_random_tapes() {
    check("sharded_matches_serial_on_random_tapes", |g: &mut Gen| -> TkResult {
        let lanes = g.u64_in(1..7) as usize;
        let mut serial: Scheduler<u64> = Scheduler::new();
        let mut sharded: ShardedScheduler<u64> =
            ShardedScheduler::new(lanes, SimDuration::from_micros(EPOCH_US));
        drive(g, lanes, &mut serial, &mut sharded)
    });
}

/// The `SchedDispatch` journal — the byte stream `trace_determinism`
/// ultimately diffs — is identical too: same seqs, same timestamps, same
/// order.
#[test]
fn sharded_journal_matches_serial() {
    check("sharded_journal_matches_serial", |g: &mut Gen| -> TkResult {
        let lanes = g.u64_in(2..5) as usize;
        let trace_a = Tracer::new(TraceConfig::verbose());
        let trace_b = Tracer::new(TraceConfig::verbose());
        let mut serial: Scheduler<u64> = Scheduler::new();
        let mut sharded: ShardedScheduler<u64> =
            ShardedScheduler::new(lanes, SimDuration::from_micros(EPOCH_US));
        serial.set_tracer(trace_a.clone());
        sharded.set_tracer(trace_b.clone());
        drive(g, lanes, &mut serial, &mut sharded)?;
        let ea = trace_a.events();
        let eb = trace_b.events();
        tk_assert_eq!(ea.len(), eb.len());
        for (a, b) in ea.iter().zip(eb.iter()) {
            tk_assert_eq!(a.t_ns, b.t_ns);
            tk_assert_eq!(a.kind, b.kind);
        }
        Ok(())
    });
}

/// Lookahead abuse: an epoch far larger than any scheduling delta forces
/// nearly every cross-lane schedule through the direct-push fallback, and
/// the streams must *still* match (correctness never depends on the
/// lookahead being right).
#[test]
fn sharded_survives_a_wrong_lookahead() {
    check("sharded_survives_a_wrong_lookahead", |g: &mut Gen| -> TkResult {
        let lanes = g.u64_in(2..5) as usize;
        let mut serial: Scheduler<u64> = Scheduler::new();
        let mut sharded: ShardedScheduler<u64> =
            ShardedScheduler::new(lanes, SimDuration::from_secs(3600));
        drive(g, lanes, &mut serial, &mut sharded)
    });
}

/// Burst ties: many events at identical instants, spread over lanes, must
/// preserve the serial FIFO tie-break exactly.
#[test]
fn sharded_preserves_fifo_ties_across_lanes() {
    check("sharded_preserves_fifo_ties_across_lanes", |g: &mut Gen| -> TkResult {
        let lanes = g.u64_in(2..7) as usize;
        let mut serial: Scheduler<u64> = Scheduler::new();
        let mut sharded: ShardedScheduler<u64> =
            ShardedScheduler::new(lanes, SimDuration::from_micros(EPOCH_US));
        let instants = g.vec(1..6, |g| g.u64_in(0..40));
        let mut payload = 0u64;
        for &t in &instants {
            for _ in 0..g.u64_in(1..10) {
                let lane = g.u64_in(0..lanes as u64) as usize;
                serial.schedule_at(SimTime::from_micros(t), payload);
                sharded.schedule_at_in(SimTime::from_micros(t), lane, payload);
                payload += 1;
            }
        }
        loop {
            let a = serial.pop();
            let b = sharded.pop();
            tk_assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
        Ok(())
    });
}
