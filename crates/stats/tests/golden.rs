//! Golden-value tests for the Wilcoxon tests against published exact null
//! distributions and critical-value tables.
//!
//! Rank-sum references: the exact Mann–Whitney null distribution for
//! n₁ = n₂ = 5 (e.g. Mann & Whitney 1947, Table I; any standard U table):
//! with C(10,5) = 252 equally likely rank subsets,
//!
//! ```text
//! P(U ≤ 0) = 1/252    P(U ≤ 1) = 2/252    P(U ≤ 2) = 4/252
//! P(U ≤ 3) = 7/252    P(U ≤ 4) = 12/252   P(U ≤ 5) = 19/252
//! ```
//!
//! Signed-rank references: exact distribution over the 2ⁿ sign assignments
//! (e.g. Wilcoxon 1945): for n = 8, P(W⁺ ≤ 3) = 5/256 and the one-sided
//! α = 0.05 critical value is W⁺ = 5 (P(W⁺ ≤ 5) = 10/256 ≈ 0.039,
//! P(W⁺ ≤ 6) = 14/256 ≈ 0.055).

use mg_stats::signed_rank::signed_rank_test;
use mg_stats::wilcoxon::{rank_sum_test, Alternative, Method};

/// Builds a tie-free 5-vs-5 sample pair whose first-sample Mann–Whitney U
/// equals `u` (first sample takes ranks 1..4 plus rank 5+u).
fn five_v_five_with_u(u: u64) -> (Vec<f64>, Vec<f64>) {
    let a: Vec<f64> = [1.0, 2.0, 3.0, 4.0, 5.0 + u as f64].to_vec();
    let b: Vec<f64> = (1..=10)
        .map(|r| r as f64)
        .filter(|r| !a.contains(r))
        .collect();
    (a, b)
}

#[test]
fn rank_sum_exact_tail_matches_published_table_5v5() {
    let expect = [1.0, 2.0, 4.0, 7.0, 12.0, 19.0];
    for (u, num) in expect.into_iter().enumerate() {
        let (a, b) = five_v_five_with_u(u as u64);
        let r = rank_sum_test(&a, &b, Alternative::Less);
        assert_eq!(r.method, Method::Exact);
        assert_eq!(r.u, u as f64);
        let p = num / 252.0;
        assert!(
            (r.p_value - p).abs() < 1e-12,
            "U={u}: p={} want {p}",
            r.p_value
        );
    }
}

#[test]
fn rank_sum_critical_value_5v5_alpha05_is_u4() {
    // Published one-tailed critical value at α = 0.05 for n₁ = n₂ = 5 is
    // U = 4: reject at U ≤ 4 (p ≈ 0.048), fail to reject at U = 5
    // (p ≈ 0.075).
    let (a, b) = five_v_five_with_u(4);
    assert!(rank_sum_test(&a, &b, Alternative::Less).rejects_at(0.05));
    let (a, b) = five_v_five_with_u(5);
    assert!(!rank_sum_test(&a, &b, Alternative::Less).rejects_at(0.05));
}

#[test]
fn rank_sum_critical_value_4v4_alpha05_is_u1() {
    // For n₁ = n₂ = 4 (C(8,4) = 70 subsets): P(U ≤ 1) = 2/70 ≈ 0.029,
    // P(U ≤ 2) = 4/70 ≈ 0.057, so the α = 0.05 critical value is U = 1.
    let a = [1.0, 2.0, 3.0, 5.0]; // ranks 1,2,3,5 → W = 11, U = 1
    let b = [4.0, 6.0, 7.0, 8.0];
    let r = rank_sum_test(&a, &b, Alternative::Less);
    assert_eq!(r.u, 1.0);
    assert!((r.p_value - 2.0 / 70.0).abs() < 1e-12);
    assert!(r.rejects_at(0.05));

    let a = [1.0, 2.0, 3.0, 6.0]; // ranks 1,2,3,6 → W = 12, U = 2
    let b = [4.0, 5.0, 7.0, 8.0];
    let r = rank_sum_test(&a, &b, Alternative::Less);
    assert_eq!(r.u, 2.0);
    assert!((r.p_value - 4.0 / 70.0).abs() < 1e-12);
    assert!(!r.rejects_at(0.05));
}

#[test]
fn rank_sum_greater_mirrors_less() {
    // By symmetry of the null distribution, the maximal U (= 25) under
    // Greater has the same tail mass as U = 0 under Less.
    let (a, b) = five_v_five_with_u(0);
    let r = rank_sum_test(&b, &a, Alternative::Greater);
    assert!((r.p_value - 1.0 / 252.0).abs() < 1e-12);
}

#[test]
fn signed_rank_exact_tail_matches_published_table_n8() {
    // Eight pairs with distinct |differences| of ranks 1..8; make the
    // differences with ranks 1 and 2 positive: W⁺ = 3.
    // Published: P(W⁺ ≤ 3) = 5/256 = 0.01953125.
    let first = [1.0, 2.0, -3.0, -4.0, -5.0, -6.0, -7.0, -8.0];
    let second = [0.0; 8];
    let r = signed_rank_test(&first, &second, Alternative::Less);
    assert_eq!(r.method, Method::Exact);
    assert_eq!(r.w_plus, 3.0);
    assert_eq!(r.n_used, 8);
    assert!((r.p_value - 5.0 / 256.0).abs() < 1e-12, "p={}", r.p_value);
}

#[test]
fn signed_rank_critical_value_n8_alpha05_is_w5() {
    // Published one-sided critical value for n = 8 at α = 0.05 is W⁺ = 5:
    // P(W⁺ ≤ 5) = 10/256 ≈ 0.039 rejects, P(W⁺ ≤ 6) = 14/256 ≈ 0.055
    // does not.
    let w5 = [-1.0, -2.0, -3.0, -4.0, 5.0, -6.0, -7.0, -8.0]; // W⁺ = 5
    let r = signed_rank_test(&w5, &[0.0; 8], Alternative::Less);
    assert_eq!(r.w_plus, 5.0);
    assert!((r.p_value - 10.0 / 256.0).abs() < 1e-12);
    assert!(r.rejects_at(0.05));

    let w6 = [-1.0, -2.0, -3.0, -4.0, -5.0, 6.0, -7.0, -8.0]; // W⁺ = 6
    let r = signed_rank_test(&w6, &[0.0; 8], Alternative::Less);
    assert_eq!(r.w_plus, 6.0);
    assert!((r.p_value - 14.0 / 256.0).abs() < 1e-12);
    assert!(!r.rejects_at(0.05));
}
