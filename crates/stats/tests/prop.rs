//! Property-based tests for the statistics crate.

use mg_stats::describe::Summary;
use mg_stats::filter::Arma;
use mg_stats::normal;
use mg_stats::rank::midranks;
use mg_stats::ttest::welch_t_test;
use mg_stats::wilcoxon::{rank_sum_test, Alternative};
use proptest::prelude::*;

fn sample(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e3..1e3f64, 2..max_len)
}

proptest! {
    /// Midranks always sum to n(n+1)/2 and lie in [1, n].
    #[test]
    fn midrank_sum_invariant(values in sample(60)) {
        let ranks = midranks(&values);
        let n = values.len() as f64;
        let sum: f64 = ranks.iter().sum();
        prop_assert!((sum - n * (n + 1.0) / 2.0).abs() < 1e-6);
        for &r in &ranks {
            prop_assert!((1.0..=n).contains(&r));
        }
    }

    /// Ranking is invariant under order-preserving (affine, positive-slope)
    /// transformations.
    #[test]
    fn midranks_affine_invariant(values in sample(40), scale in 0.1..10.0f64, shift in -100.0..100.0f64) {
        let transformed: Vec<f64> = values.iter().map(|v| v * scale + shift).collect();
        prop_assert_eq!(midranks(&values), midranks(&transformed));
    }

    /// p-values are probabilities, and Less/Greater are complementary up to
    /// the point mass at the observed statistic.
    #[test]
    fn rank_sum_p_bounds(a in sample(30), b in sample(30)) {
        for alt in [Alternative::Less, Alternative::Greater, Alternative::TwoSided] {
            let r = rank_sum_test(&a, &b, alt);
            prop_assert!((0.0..=1.0).contains(&r.p_value), "{alt:?}: {}", r.p_value);
        }
        let less = rank_sum_test(&a, &b, Alternative::Less).p_value;
        let greater = rank_sum_test(&a, &b, Alternative::Greater).p_value;
        // P(W <= w) + P(W >= w) = 1 + P(W = w) >= 1 (exact); approximately
        // holds for the normal path too (continuity correction overlaps).
        prop_assert!(less + greater >= 0.95, "less {less} + greater {greater}");
    }

    /// Shifting one sample down can only make the Less-p smaller (or equal).
    #[test]
    fn rank_sum_monotone_under_shift(a in sample(25), b in sample(25), shift in 0.0..500.0f64) {
        let shifted: Vec<f64> = a.iter().map(|v| v - shift).collect();
        let p0 = rank_sum_test(&a, &b, Alternative::Less).p_value;
        let p1 = rank_sum_test(&shifted, &b, Alternative::Less).p_value;
        prop_assert!(p1 <= p0 + 1e-9, "shift {shift}: {p0} -> {p1}");
    }

    /// Swapping the samples swaps the roles of Less and Greater.
    #[test]
    fn rank_sum_swap_symmetry(a in sample(20), b in sample(20)) {
        let ab = rank_sum_test(&a, &b, Alternative::Less).p_value;
        let ba = rank_sum_test(&b, &a, Alternative::Greater).p_value;
        prop_assert!((ab - ba).abs() < 1e-9, "{ab} vs {ba}");
    }

    /// Welch t p-values are probabilities and the statistic is antisymmetric.
    #[test]
    fn welch_antisymmetric(a in sample(20), b in sample(20)) {
        let r1 = welch_t_test(&a, &b, Alternative::TwoSided);
        let r2 = welch_t_test(&b, &a, Alternative::TwoSided);
        prop_assert!((0.0..=1.0).contains(&r1.p_value));
        prop_assert!((r1.t + r2.t).abs() < 1e-9);
        prop_assert!((r1.p_value - r2.p_value).abs() < 1e-9);
    }

    /// The normal CDF is monotone and its quantile inverts it.
    #[test]
    fn normal_cdf_quantile_inverse(p in 0.0005..0.9995f64) {
        let x = normal::quantile(p);
        prop_assert!((normal::cdf(x) - p).abs() < 1e-6);
    }

    /// Summary::merge is associative-enough and order-independent.
    #[test]
    fn summary_merge_order_independent(a in sample(30), b in sample(30), c in sample(30)) {
        let all: Summary = a.iter().chain(&b).chain(&c).copied().collect();
        let mut left: Summary = a.iter().copied().collect();
        left.merge(&b.iter().copied().collect());
        left.merge(&c.iter().copied().collect());
        let mut right: Summary = c.iter().copied().collect();
        right.merge(&a.iter().copied().collect());
        right.merge(&b.iter().copied().collect());
        for s in [&left, &right] {
            prop_assert_eq!(s.count(), all.count());
            prop_assert!((s.mean() - all.mean()).abs() < 1e-6);
            prop_assert!((s.sample_variance() - all.sample_variance()).abs()
                < 1e-6 * all.sample_variance().max(1.0));
        }
    }

    /// The ARMA estimate always stays inside the convex hull of its inputs.
    #[test]
    fn arma_stays_in_input_hull(
        alpha in 0.0..0.999f64,
        window in 1usize..50,
        inputs in prop::collection::vec(0.0..1.0f64, 1..500),
    ) {
        let mut f = Arma::new(alpha, window);
        for &x in &inputs {
            f.push(x);
        }
        prop_assert!((0.0..=1.0).contains(&f.value()), "{}", f.value());
    }

    /// push_n(x, k) equals k pushes of x.
    #[test]
    fn arma_push_n_equivalence(
        alpha in 0.0..0.999f64,
        window in 1usize..20,
        runs in prop::collection::vec((0.0..1.0f64, 1u64..40), 1..20),
    ) {
        let mut a = Arma::new(alpha, window);
        let mut b = Arma::new(alpha, window);
        for &(v, k) in &runs {
            a.push_n(v, k);
            for _ in 0..k {
                b.push(v);
            }
        }
        prop_assert_eq!(a.updates(), b.updates());
        prop_assert!((a.value() - b.value()).abs() < 1e-9);
    }
}
