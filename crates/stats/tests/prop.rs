//! Property-based tests for the statistics crate (mg-testkit harness).

use mg_stats::describe::Summary;
use mg_stats::filter::Arma;
use mg_stats::normal;
use mg_stats::rank::midranks;
use mg_stats::ttest::welch_t_test;
use mg_stats::wilcoxon::{rank_sum_test, Alternative};
use mg_testkit::prop::{check, Gen, TkResult};
use mg_testkit::{tk_assert, tk_assert_eq};

fn sample(g: &mut Gen, max_len: usize) -> Vec<f64> {
    g.vec_f64(2..max_len, -1e3..1e3)
}

/// Midranks always sum to n(n+1)/2 and lie in [1, n].
#[test]
fn midrank_sum_invariant() {
    check("midrank_sum_invariant", |g: &mut Gen| -> TkResult {
        let values = sample(g, 60);
        let ranks = midranks(&values);
        let n = values.len() as f64;
        let sum: f64 = ranks.iter().sum();
        tk_assert!((sum - n * (n + 1.0) / 2.0).abs() < 1e-6);
        for &r in &ranks {
            tk_assert!((1.0..=n).contains(&r));
        }
        Ok(())
    });
}

/// Ranking is invariant under order-preserving (affine, positive-slope)
/// transformations.
#[test]
fn midranks_affine_invariant() {
    check("midranks_affine_invariant", |g: &mut Gen| -> TkResult {
        let values = sample(g, 40);
        let scale = g.f64_in(0.1..10.0);
        let shift = g.f64_in(-100.0..100.0);
        let transformed: Vec<f64> = values.iter().map(|v| v * scale + shift).collect();
        tk_assert_eq!(midranks(&values), midranks(&transformed));
        Ok(())
    });
}

/// p-values are probabilities, and Less/Greater are complementary up to
/// the point mass at the observed statistic.
#[test]
fn rank_sum_p_bounds() {
    check("rank_sum_p_bounds", |g: &mut Gen| -> TkResult {
        let a = sample(g, 30);
        let b = sample(g, 30);
        for alt in [Alternative::Less, Alternative::Greater, Alternative::TwoSided] {
            let r = rank_sum_test(&a, &b, alt);
            tk_assert!((0.0..=1.0).contains(&r.p_value), "{alt:?}: {}", r.p_value);
        }
        let less = rank_sum_test(&a, &b, Alternative::Less).p_value;
        let greater = rank_sum_test(&a, &b, Alternative::Greater).p_value;
        // P(W <= w) + P(W >= w) = 1 + P(W = w) >= 1 (exact); approximately
        // holds for the normal path too (continuity correction overlaps).
        tk_assert!(less + greater >= 0.95, "less {less} + greater {greater}");
        Ok(())
    });
}

/// Shifting one sample down can only make the Less-p smaller (or equal).
#[test]
fn rank_sum_monotone_under_shift() {
    check("rank_sum_monotone_under_shift", |g: &mut Gen| -> TkResult {
        let a = sample(g, 25);
        let b = sample(g, 25);
        let shift = g.f64_in(0.0..500.0);
        let shifted: Vec<f64> = a.iter().map(|v| v - shift).collect();
        let p0 = rank_sum_test(&a, &b, Alternative::Less).p_value;
        let p1 = rank_sum_test(&shifted, &b, Alternative::Less).p_value;
        tk_assert!(p1 <= p0 + 1e-9, "shift {shift}: {p0} -> {p1}");
        Ok(())
    });
}

/// Swapping the samples swaps the roles of Less and Greater.
#[test]
fn rank_sum_swap_symmetry() {
    check("rank_sum_swap_symmetry", |g: &mut Gen| -> TkResult {
        let a = sample(g, 20);
        let b = sample(g, 20);
        let ab = rank_sum_test(&a, &b, Alternative::Less).p_value;
        let ba = rank_sum_test(&b, &a, Alternative::Greater).p_value;
        tk_assert!((ab - ba).abs() < 1e-9, "{ab} vs {ba}");
        Ok(())
    });
}

/// Welch t p-values are probabilities and the statistic is antisymmetric.
#[test]
fn welch_antisymmetric() {
    check("welch_antisymmetric", |g: &mut Gen| -> TkResult {
        let a = sample(g, 20);
        let b = sample(g, 20);
        let r1 = welch_t_test(&a, &b, Alternative::TwoSided);
        let r2 = welch_t_test(&b, &a, Alternative::TwoSided);
        tk_assert!((0.0..=1.0).contains(&r1.p_value));
        tk_assert!((r1.t + r2.t).abs() < 1e-9);
        tk_assert!((r1.p_value - r2.p_value).abs() < 1e-9);
        Ok(())
    });
}

/// The normal CDF is monotone and its quantile inverts it.
#[test]
fn normal_cdf_quantile_inverse() {
    check("normal_cdf_quantile_inverse", |g: &mut Gen| -> TkResult {
        let p = g.f64_in(0.0005..0.9995);
        let x = normal::quantile(p);
        tk_assert!((normal::cdf(x) - p).abs() < 1e-6);
        Ok(())
    });
}

/// Summary::merge is associative-enough and order-independent.
#[test]
fn summary_merge_order_independent() {
    check("summary_merge_order_independent", |g: &mut Gen| -> TkResult {
        let a = sample(g, 30);
        let b = sample(g, 30);
        let c = sample(g, 30);
        let all: Summary = a.iter().chain(&b).chain(&c).copied().collect();
        let mut left: Summary = a.iter().copied().collect();
        left.merge(&b.iter().copied().collect());
        left.merge(&c.iter().copied().collect());
        let mut right: Summary = c.iter().copied().collect();
        right.merge(&a.iter().copied().collect());
        right.merge(&b.iter().copied().collect());
        for s in [&left, &right] {
            tk_assert_eq!(s.count(), all.count());
            tk_assert!((s.mean() - all.mean()).abs() < 1e-6);
            tk_assert!(
                (s.sample_variance() - all.sample_variance()).abs()
                    < 1e-6 * all.sample_variance().max(1.0)
            );
        }
        Ok(())
    });
}

/// The ARMA estimate always stays inside the convex hull of its inputs.
#[test]
fn arma_stays_in_input_hull() {
    check("arma_stays_in_input_hull", |g: &mut Gen| -> TkResult {
        let alpha = g.f64_in(0.0..0.999);
        let window = g.usize_in(1..50);
        let inputs = g.vec_f64(1..500, 0.0..1.0);
        let mut f = Arma::new(alpha, window);
        for &x in &inputs {
            f.push(x);
        }
        tk_assert!((0.0..=1.0).contains(&f.value()), "{}", f.value());
        Ok(())
    });
}

/// push_n(x, k) equals k pushes of x.
#[test]
fn arma_push_n_equivalence() {
    check("arma_push_n_equivalence", |g: &mut Gen| -> TkResult {
        let alpha = g.f64_in(0.0..0.999);
        let window = g.usize_in(1..20);
        let runs = g.vec(1..20, |g| (g.f64_in(0.0..1.0), g.u64_in(1..40)));
        let mut a = Arma::new(alpha, window);
        let mut b = Arma::new(alpha, window);
        for &(v, k) in &runs {
            a.push_n(v, k);
            for _ in 0..k {
                b.push(v);
            }
        }
        tk_assert_eq!(a.updates(), b.updates());
        tk_assert!((a.value() - b.value()).abs() < 1e-9);
        Ok(())
    });
}
