//! Online estimators: the paper's ARMA traffic-intensity filter and a plain
//! EWMA.

/// The paper's Equation 6 estimator of traffic intensity:
///
/// ```text
/// ρ(t+1) = α·ρ(t) + (1 − α) · (1/s) · Σ_{i=1..s} b_i
/// ```
///
/// where `b_i ∈ {0, 1}` are the busy indicators of the last `s` observed
/// channel slots (1 = busy). The paper uses α = 0.995 (after Bianchi &
/// Tinnirello) and notes results are insensitive to α as long as α ≈ 1.
///
/// The filter updates once per full window of `s` fresh samples, matching
/// the "moving average taken over the last s samples" formulation.
///
/// # Example
///
/// ```
/// use mg_stats::filter::Arma;
///
/// let mut rho = Arma::new(0.9, 4);
/// for _ in 0..100 {
///     for &b in &[1.0, 1.0, 0.0, 0.0] {
///         rho.push(b);
///     }
/// }
/// assert!((rho.value() - 0.5).abs() < 0.01); // converges to the busy fraction
/// ```
#[derive(Clone, Debug)]
pub struct Arma {
    alpha: f64,
    acc_sum: f64,
    acc_len: usize,
    sample_size: usize,
    value: f64,
    updates: u64,
}

impl Arma {
    /// Creates a filter with smoothing `alpha` and moving-average window
    /// `sample_size` (the paper's `s`). The estimate starts at 0.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ alpha < 1` and `sample_size ≥ 1`.
    pub fn new(alpha: f64, sample_size: usize) -> Self {
        assert!(
            (0.0..1.0).contains(&alpha),
            "alpha must be in [0,1), got {alpha}"
        );
        assert!(sample_size >= 1, "sample size must be at least 1");
        Arma {
            alpha,
            acc_sum: 0.0,
            acc_len: 0,
            sample_size,
            value: 0.0,
            updates: 0,
        }
    }

    /// The paper's configuration: α = 0.995, window of `s` slot samples.
    pub fn paper_default(sample_size: usize) -> Self {
        Arma::new(0.995, sample_size)
    }

    /// Feeds one slot observation (1.0 = busy, 0.0 = idle; fractional values
    /// are accepted for aggregated samples).
    pub fn push(&mut self, busy: f64) {
        self.push_n(busy, 1);
    }

    /// Feeds `count` consecutive slot observations with the same value —
    /// O(count / sample_size + 1), so integrating a long idle or busy period
    /// costs almost nothing. This is how the monitor absorbs channel-edge
    /// durations as slot samples.
    pub fn push_n(&mut self, busy: f64, mut count: u64) {
        while count > 0 {
            let room = (self.sample_size - self.acc_len) as u64;
            let take = room.min(count);
            self.acc_sum += busy * take as f64;
            self.acc_len += take as usize;
            count -= take;
            if self.acc_len == self.sample_size {
                let mean = self.acc_sum / self.sample_size as f64;
                if self.updates == 0 {
                    // Seed with the first full window rather than decaying
                    // from 0, so early estimates are not biased low.
                    self.value = mean;
                } else {
                    self.value = self.alpha * self.value + (1.0 - self.alpha) * mean;
                }
                self.updates += 1;
                self.acc_sum = 0.0;
                self.acc_len = 0;
            }
        }
    }

    /// The current smoothed estimate ρ(t).
    pub fn value(&self) -> f64 {
        self.value
    }

    /// Number of completed window updates so far.
    pub fn updates(&self) -> u64 {
        self.updates
    }

    /// Whether at least one full window has been absorbed (the estimate is
    /// meaningful).
    pub fn is_warm(&self) -> bool {
        self.updates > 0
    }
}

/// Exponentially-weighted moving average with per-sample updates.
#[derive(Clone, Copy, Debug)]
pub struct Ewma {
    alpha: f64,
    value: Option<f64>,
}

impl Ewma {
    /// Creates an EWMA with smoothing `alpha` (weight of history).
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ alpha < 1`.
    pub fn new(alpha: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&alpha),
            "alpha must be in [0,1), got {alpha}"
        );
        Ewma { alpha, value: None }
    }

    /// Feeds one sample.
    pub fn push(&mut self, x: f64) {
        self.value = Some(match self.value {
            None => x,
            Some(v) => self.alpha * v + (1.0 - self.alpha) * x,
        });
    }

    /// The current estimate, or `None` before the first sample.
    pub fn value(&self) -> Option<f64> {
        self.value
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arma_converges_to_constant_input() {
        let mut f = Arma::new(0.5, 10);
        for _ in 0..300 {
            f.push(1.0);
        }
        assert!((f.value() - 1.0).abs() < 1e-6);
        assert_eq!(f.updates(), 30);
    }

    #[test]
    fn arma_first_window_seeds_estimate() {
        let mut f = Arma::paper_default(4);
        assert!(!f.is_warm());
        for &b in &[1.0, 0.0, 1.0, 0.0] {
            f.push(b);
        }
        assert!(f.is_warm());
        assert!((f.value() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn arma_tracks_load_changes_slowly_with_high_alpha() {
        let mut f = Arma::new(0.995, 10);
        for _ in 0..100 {
            f.push(0.0);
        }
        let low = f.value();
        for _ in 0..50 {
            f.push(1.0);
        }
        let after = f.value();
        assert!(after > low);
        assert!(after < 0.2, "alpha=0.995 should move slowly, got {after}");
    }

    #[test]
    fn arma_partial_window_does_not_update() {
        let mut f = Arma::new(0.9, 100);
        for _ in 0..99 {
            f.push(1.0);
        }
        assert_eq!(f.updates(), 0);
        assert_eq!(f.value(), 0.0);
        f.push(1.0);
        assert_eq!(f.updates(), 1);
        assert_eq!(f.value(), 1.0);
    }

    #[test]
    fn ewma_behaviour() {
        let mut e = Ewma::new(0.8);
        assert_eq!(e.value(), None);
        e.push(10.0);
        assert_eq!(e.value(), Some(10.0));
        e.push(0.0);
        assert!((e.value().unwrap() - 8.0).abs() < 1e-12);
    }

    #[test]
    fn push_n_equals_repeated_push() {
        let mut a = Arma::new(0.9, 7);
        let mut b = Arma::new(0.9, 7);
        for i in 0..100u64 {
            let v = if i.is_multiple_of(3) { 1.0 } else { 0.0 };
            a.push(v);
        }
        // Same stream delivered in runs.
        let mut i = 0u64;
        while i < 100 {
            let v = if i.is_multiple_of(3) { 1.0 } else { 0.0 };
            let mut run = 1;
            while i + run < 100 && (i + run).is_multiple_of(3) == i.is_multiple_of(3) {
                run += 1;
            }
            b.push_n(v, run);
            i += run;
        }
        assert_eq!(a.updates(), b.updates());
        assert!((a.value() - b.value()).abs() < 1e-12);
    }

    #[test]
    fn push_n_bulk_is_fast_and_correct() {
        let mut a = Arma::new(0.5, 1000);
        a.push_n(1.0, 10_000_000);
        assert_eq!(a.updates(), 10_000);
        assert!((a.value() - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "alpha must be in [0,1)")]
    fn bad_alpha_rejected() {
        Arma::new(1.0, 5);
    }
}
