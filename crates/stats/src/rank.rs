//! Ranking with midrank tie handling.

/// Assigns ranks `1..=n` to `values`, resolving ties by assigning each tied
/// group the average of the ranks it spans (midranks) — the convention the
/// Wilcoxon rank-sum test requires.
///
/// Returns the rank of each input element, in input order.
///
/// # Panics
///
/// Panics if any value is NaN (NaN has no rank).
///
/// # Example
///
/// ```
/// use mg_stats::rank::midranks;
///
/// assert_eq!(midranks(&[10.0, 20.0, 20.0, 30.0]), vec![1.0, 2.5, 2.5, 4.0]);
/// ```
pub fn midranks(values: &[f64]) -> Vec<f64> {
    assert!(
        values.iter().all(|v| !v.is_nan()),
        "cannot rank NaN values"
    );
    let n = values.len();
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&a, &b| values[a].partial_cmp(&values[b]).expect("no NaN"));
    let mut ranks = vec![0.0; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && values[idx[j + 1]] == values[idx[i]] {
            j += 1;
        }
        // Elements idx[i..=j] are tied; they occupy ranks i+1 ..= j+1.
        let midrank = (i + 1 + j + 1) as f64 / 2.0;
        for &k in &idx[i..=j] {
            ranks[k] = midrank;
        }
        i = j + 1;
    }
    ranks
}

/// The tie-group sizes of `values` (sizes of groups of equal values, in
/// ascending value order). Groups of size 1 are included.
///
/// Used for the tie correction in the rank-sum normal approximation.
pub fn tie_groups(values: &[f64]) -> Vec<usize> {
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    let mut groups = Vec::new();
    let mut i = 0;
    while i < sorted.len() {
        let mut j = i;
        while j + 1 < sorted.len() && sorted[j + 1] == sorted[i] {
            j += 1;
        }
        groups.push(j - i + 1);
        i = j + 1;
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_ties_is_a_permutation_of_1_to_n() {
        let r = midranks(&[5.0, 1.0, 3.0, 2.0, 4.0]);
        assert_eq!(r, vec![5.0, 1.0, 3.0, 2.0, 4.0]);
    }

    #[test]
    fn all_tied_share_the_mean_rank() {
        let r = midranks(&[7.0, 7.0, 7.0, 7.0]);
        assert_eq!(r, vec![2.5, 2.5, 2.5, 2.5]);
    }

    #[test]
    fn mixed_ties() {
        // sorted: 1 2 2 3 3 3 9 -> ranks 1, 2.5, 2.5, 5, 5, 5, 7
        let r = midranks(&[3.0, 1.0, 2.0, 3.0, 9.0, 2.0, 3.0]);
        assert_eq!(r, vec![5.0, 1.0, 2.5, 5.0, 7.0, 2.5, 5.0]);
    }

    #[test]
    fn rank_sum_is_invariant() {
        // Σ ranks = n(n+1)/2 regardless of ties.
        for values in [
            vec![1.0, 2.0, 3.0, 4.0],
            vec![1.0, 1.0, 1.0, 1.0],
            vec![2.0, 2.0, 8.0, 8.0],
        ] {
            let s: f64 = midranks(&values).iter().sum();
            assert_eq!(s, 10.0);
        }
    }

    #[test]
    fn empty_input() {
        assert!(midranks(&[]).is_empty());
        assert!(tie_groups(&[]).is_empty());
    }

    #[test]
    fn tie_groups_counts() {
        assert_eq!(tie_groups(&[3.0, 1.0, 3.0, 3.0, 2.0, 2.0]), vec![1, 2, 3]);
        assert_eq!(tie_groups(&[4.0]), vec![1]);
    }

    #[test]
    #[should_panic(expected = "cannot rank NaN")]
    fn nan_rejected() {
        midranks(&[1.0, f64::NAN]);
    }
}
