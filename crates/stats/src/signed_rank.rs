//! The Wilcoxon **signed-rank** test (paired samples).
//!
//! An extension beyond the paper: the monitor's samples arrive naturally
//! *paired* — for each observed transmission there is one dictated value `x`
//! and one estimated value `y`. The paper's rank-sum test ignores the
//! pairing; the signed-rank test exploits it, cancelling the per-window
//! variance of the dictated draw itself and often gaining power against
//! proportional back-off shrinking. The `ablation_tests` bench quantifies
//! the difference.
//!
//! Exact small-sample null distribution (generating-function DP over the
//! 2ⁿ sign assignments) when the absolute differences are tie-free and
//! `n ≤` [`SIGNED_EXACT_LIMIT`]; otherwise the normal approximation with
//! tie and continuity corrections.

use crate::normal;
use crate::rank::midranks;
use crate::wilcoxon::{Alternative, Method};

/// Above this number of non-zero differences the exact enumeration switches
/// to the normal approximation.
pub const SIGNED_EXACT_LIMIT: usize = 30;

/// Result of a signed-rank test.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct SignedRankResult {
    /// Sum of ranks of the positive differences (`W⁺`).
    pub w_plus: f64,
    /// Number of non-zero differences actually tested.
    pub n_used: usize,
    /// Significance probability for the requested alternative.
    pub p_value: f64,
    /// Which computational path produced the p-value.
    pub method: Method,
}

impl SignedRankResult {
    /// Convenience: `p_value < alpha`.
    pub fn rejects_at(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

/// Runs the signed-rank test on paired samples, testing the location of
/// `first − second`.
///
/// `Alternative::Less` asks whether `first` is systematically *smaller*
/// than `second` (negative differences dominate).
///
/// Zero differences are dropped per the standard procedure. If every
/// difference is zero the test cannot reject (`p = 1`).
///
/// # Panics
///
/// Panics if the samples differ in length, are empty, or contain NaN.
pub fn signed_rank_test(first: &[f64], second: &[f64], alt: Alternative) -> SignedRankResult {
    assert_eq!(
        first.len(),
        second.len(),
        "signed-rank test requires paired samples"
    );
    assert!(!first.is_empty(), "signed-rank test requires samples");
    let diffs: Vec<f64> = first
        .iter()
        .zip(second)
        .map(|(a, b)| {
            assert!(!a.is_nan() && !b.is_nan(), "samples must not contain NaN");
            a - b
        })
        .filter(|d| *d != 0.0)
        .collect();
    let n = diffs.len();
    if n == 0 {
        return SignedRankResult {
            w_plus: 0.0,
            n_used: 0,
            p_value: 1.0,
            method: Method::Exact,
        };
    }
    let abs: Vec<f64> = diffs.iter().map(|d| d.abs()).collect();
    let ranks = midranks(&abs);
    let w_plus: f64 = ranks
        .iter()
        .zip(&diffs)
        .filter(|&(_, d)| *d > 0.0)
        .map(|(r, _)| *r)
        .sum();

    // Ties among |differences| force the approximation (midranks break the
    // integer lattice the exact DP walks).
    let mut sorted = abs.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    let has_ties = sorted.windows(2).any(|w| w[0] == w[1]);

    let (p, method) = if !has_ties && n <= SIGNED_EXACT_LIMIT {
        (exact_p(w_plus as u64, n, alt), Method::Exact)
    } else {
        (approx_p(w_plus, &ranks, alt), Method::NormalApprox)
    };
    SignedRankResult {
        w_plus,
        n_used: n,
        p_value: p.clamp(0.0, 1.0),
        method,
    }
}

/// Exact null distribution of `W⁺`: under H0 each rank contributes to the
/// positive sum independently with probability ½; `count[s]` = number of
/// sign assignments with `W⁺ = s`.
fn exact_p(w: u64, n: usize, alt: Alternative) -> f64 {
    let max_sum = n * (n + 1) / 2;
    let mut count = vec![0.0f64; max_sum + 1];
    count[0] = 1.0;
    for rank in 1..=n {
        for s in (rank..=max_sum).rev() {
            let add = count[s - rank];
            if add != 0.0 {
                count[s] += add;
            }
        }
    }
    let total: f64 = count.iter().sum(); // = 2^n
    let w = w as usize;
    let cdf: f64 = count[..=w.min(max_sum)].iter().sum::<f64>() / total;
    let sf: f64 = if w > max_sum {
        0.0
    } else {
        count[w..].iter().sum::<f64>() / total
    };
    match alt {
        Alternative::Less => cdf,
        Alternative::Greater => sf,
        Alternative::TwoSided => (2.0 * cdf.min(sf)).min(1.0),
    }
}

/// Normal approximation with tie-corrected variance.
fn approx_p(w_plus: f64, ranks: &[f64], alt: Alternative) -> f64 {
    let n = ranks.len() as f64;
    let mean = n * (n + 1.0) / 4.0;
    // Var = Σ r_i² / 4 (exactly right with midranks).
    let var: f64 = ranks.iter().map(|r| r * r).sum::<f64>() / 4.0;
    if var <= 0.0 {
        return 1.0;
    }
    let sd = var.sqrt();
    match alt {
        Alternative::Less => normal::cdf((w_plus - mean + 0.5) / sd),
        Alternative::Greater => 1.0 - normal::cdf((w_plus - mean - 0.5) / sd),
        Alternative::TwoSided => {
            let z = (w_plus - mean).abs() - 0.5;
            (2.0 * (1.0 - normal::cdf(z.max(0.0) / sd))).min(1.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_negative_differences_reject_less() {
        let y = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let x = [2.0, 4.0, 6.0, 8.0, 10.0, 12.0];
        let r = signed_rank_test(&y, &x, Alternative::Less);
        assert_eq!(r.method, Method::Exact); // |d| = 1..6, tie-free
        // w_plus = 0, the unique minimum: p = 2^-6.
        assert_eq!(r.w_plus, 0.0);
        assert!((r.p_value - 1.0 / 64.0).abs() < 1e-12, "p={}", r.p_value);
    }

    #[test]
    fn exact_matches_hand_enumeration_n3() {
        // Differences -1, -2, -3 (tie-free): W+ = 0. P(W+ <= 0) = 1/8.
        let y = [0.0, 0.0, 0.0];
        let x = [1.0, 2.0, 3.0];
        let r = signed_rank_test(&y, &x, Alternative::Less);
        assert_eq!(r.method, Method::Exact);
        assert!((r.p_value - 0.125).abs() < 1e-12, "p={}", r.p_value);
    }

    #[test]
    fn symmetric_differences_do_not_reject() {
        let y = [1.0, -1.0, 2.0, -2.0, 3.0, -3.0, 4.0, -4.0];
        let x = [0.0; 8];
        let r = signed_rank_test(&y, &x, Alternative::TwoSided);
        assert!(r.p_value > 0.5, "{r:?}");
    }

    #[test]
    fn zero_differences_are_dropped() {
        let y = [5.0, 5.0, 1.0, 2.0];
        let x = [5.0, 5.0, 3.0, 4.0];
        let r = signed_rank_test(&y, &x, Alternative::Less);
        assert_eq!(r.n_used, 2);
        // All-zero case.
        let r0 = signed_rank_test(&[7.0, 7.0], &[7.0, 7.0], Alternative::Less);
        assert_eq!(r0.p_value, 1.0);
        assert_eq!(r0.n_used, 0);
    }

    #[test]
    fn pairing_beats_rank_sum_on_correlated_noise() {
        // y = 0.8·x + big per-pair noise, with x spread wide: the unpaired
        // rank-sum drowns, the paired signed-rank doesn't.
        let mut x = Vec::new();
        let mut y = Vec::new();
        let mut s = 12345u64;
        let mut unif = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (s >> 11) as f64 / (1u64 << 53) as f64
        };
        for _ in 0..40 {
            let xi = (unif() * 1000.0).round();
            x.push(xi);
            y.push(0.8 * xi + 1.0 + unif() * 0.5); // strictly informative pairs
        }
        let paired = signed_rank_test(&y, &x, Alternative::Less);
        assert!(paired.p_value < 0.05, "paired p={}", paired.p_value);
    }

    #[test]
    fn greater_and_less_are_complementary() {
        let y = [3.0, 1.0, 4.0, 1.0, 5.0];
        let x = [2.0, 7.0, 1.0, 8.0, 2.0];
        let less = signed_rank_test(&y, &x, Alternative::Less).p_value;
        let greater = signed_rank_test(&y, &x, Alternative::Greater).p_value;
        assert!(less + greater >= 1.0 - 1e-9, "{less} + {greater}");
    }

    #[test]
    #[should_panic(expected = "paired samples")]
    fn unpaired_lengths_rejected() {
        signed_rank_test(&[1.0], &[1.0, 2.0], Alternative::Less);
    }
}
