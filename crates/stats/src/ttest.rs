//! Welch's unequal-variance t-test.
//!
//! The paper notes t-tests are "fairly popular" for two-sample location
//! comparisons but rejects them because back-off samples are not Gaussian.
//! We implement Welch's test anyway so the `ablation_tests` bench can
//! quantify how much the Gaussianity assumption costs on this workload.

use crate::wilcoxon::Alternative;

/// Result of a Welch t-test.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct TTestResult {
    /// The t statistic.
    pub t: f64,
    /// Welch–Satterthwaite degrees of freedom.
    pub df: f64,
    /// Significance probability for the requested alternative.
    pub p_value: f64,
}

impl TTestResult {
    /// Convenience: `p_value < alpha`.
    pub fn rejects_at(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

/// Welch's t-test of `first` against `second`.
///
/// # Panics
///
/// Panics if either sample has fewer than two observations or contains NaN.
pub fn welch_t_test(first: &[f64], second: &[f64], alt: Alternative) -> TTestResult {
    assert!(
        first.len() >= 2 && second.len() >= 2,
        "welch t-test requires at least 2 observations per sample"
    );
    assert!(
        first.iter().chain(second).all(|v| !v.is_nan()),
        "samples must not contain NaN"
    );
    let (m1, v1) = mean_var(first);
    let (m2, v2) = mean_var(second);
    let n1 = first.len() as f64;
    let n2 = second.len() as f64;
    let se2 = v1 / n1 + v2 / n2;
    if se2 <= 0.0 {
        // Zero variance in both samples: decide by comparing means outright.
        let p = match alt {
            Alternative::Less => {
                if m1 < m2 {
                    0.0
                } else {
                    1.0
                }
            }
            Alternative::Greater => {
                if m1 > m2 {
                    0.0
                } else {
                    1.0
                }
            }
            Alternative::TwoSided => {
                if m1 == m2 {
                    1.0
                } else {
                    0.0
                }
            }
        };
        return TTestResult {
            t: 0.0,
            df: n1 + n2 - 2.0,
            p_value: p,
        };
    }
    let t = (m1 - m2) / se2.sqrt();
    let df = se2 * se2
        / ((v1 / n1) * (v1 / n1) / (n1 - 1.0) + (v2 / n2) * (v2 / n2) / (n2 - 1.0));
    let p = match alt {
        Alternative::Less => student_t_cdf(t, df),
        Alternative::Greater => 1.0 - student_t_cdf(t, df),
        Alternative::TwoSided => 2.0 * (1.0 - student_t_cdf(t.abs(), df)),
    };
    TTestResult {
        t,
        df,
        p_value: p.clamp(0.0, 1.0),
    }
}

fn mean_var(xs: &[f64]) -> (f64, f64) {
    let n = xs.len() as f64;
    let mean = xs.iter().sum::<f64>() / n;
    let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1.0);
    (mean, var)
}

/// CDF of Student's t distribution with `df` degrees of freedom, via the
/// regularized incomplete beta function.
pub fn student_t_cdf(t: f64, df: f64) -> f64 {
    assert!(df > 0.0, "degrees of freedom must be positive");
    if t.is_nan() {
        return f64::NAN;
    }
    let x = df / (df + t * t);
    let ib = 0.5 * incomplete_beta(df / 2.0, 0.5, x);
    if t >= 0.0 {
        1.0 - ib
    } else {
        ib
    }
}

/// Regularized incomplete beta function `I_x(a, b)` (continued-fraction
/// evaluation, Lentz's method — Numerical Recipes `betai`/`betacf`).
pub fn incomplete_beta(a: f64, b: f64, x: f64) -> f64 {
    assert!(a > 0.0 && b > 0.0, "beta parameters must be positive");
    assert!((0.0..=1.0).contains(&x), "x must be in [0,1], got {x}");
    if x == 0.0 {
        return 0.0;
    }
    if x == 1.0 {
        return 1.0;
    }
    let ln_front =
        ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    if x < (a + 1.0) / (a + b + 2.0) {
        front * betacf(a, b, x) / a
    } else {
        1.0 - front * betacf(b, a, 1.0 - x) / b
    }
}

fn betacf(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 300;
    const EPS: f64 = 3e-14;
    const FPMIN: f64 = 1e-300;
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < FPMIN {
        d = FPMIN;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        h *= d * c;
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            return h;
        }
    }
    h // converged well enough for test purposes
}

/// Natural log of the gamma function (Lanczos, g = 7, n = 9).
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires positive argument, got {x}");
    const G: f64 = 7.0;
    // Published Lanczos coefficients, transcribed digit-for-digit.
    #[allow(clippy::excessive_precision, clippy::inconsistent_digit_grouping)]
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_93,
        676.520_368_121_885_1,
        -1259.139_216_722_402_8,
        771.323_428_777_653_13,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_571_6e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        return (std::f64::consts::PI / (std::f64::consts::PI * x).sin()).ln()
            - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + G + 0.5;
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_known_values() {
        assert!((ln_gamma(1.0)).abs() < 1e-12);
        assert!((ln_gamma(2.0)).abs() < 1e-12);
        assert!((ln_gamma(5.0) - 24f64.ln()).abs() < 1e-10);
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-10);
    }

    #[test]
    fn t_cdf_known_values() {
        // t=0 -> 0.5 for any df.
        assert!((student_t_cdf(0.0, 5.0) - 0.5).abs() < 1e-12);
        // df=1 is Cauchy: CDF(1) = 0.75.
        assert!((student_t_cdf(1.0, 1.0) - 0.75).abs() < 1e-8);
        // Large df approaches the normal.
        assert!((student_t_cdf(1.96, 1e6) - 0.975).abs() < 1e-3);
        // R: pt(2.0, df=10) = 0.9633060
        assert!((student_t_cdf(2.0, 10.0) - 0.963_306).abs() < 1e-5);
    }

    #[test]
    fn welch_detects_shift() {
        let a: Vec<f64> = (0..30).map(|i| i as f64 * 0.1).collect();
        let b: Vec<f64> = (0..30).map(|i| i as f64 * 0.1 + 2.0).collect();
        let r = welch_t_test(&a, &b, Alternative::Less);
        assert!(r.p_value < 1e-6, "p={}", r.p_value);
        let r2 = welch_t_test(&a, &b, Alternative::Greater);
        assert!(r2.p_value > 0.99);
    }

    #[test]
    fn welch_null_is_calibrated() {
        let mut s: u64 = 777;
        let mut unif = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (s >> 11) as f64 / (1u64 << 53) as f64
        };
        let trials = 2000;
        let mut rej = 0;
        for _ in 0..trials {
            let a: Vec<f64> = (0..15).map(|_| unif()).collect();
            let b: Vec<f64> = (0..15).map(|_| unif()).collect();
            if welch_t_test(&a, &b, Alternative::TwoSided).rejects_at(0.05) {
                rej += 1;
            }
        }
        let rate = rej as f64 / trials as f64;
        assert!(rate < 0.08, "false rejection rate {rate}");
    }

    #[test]
    fn zero_variance_handled() {
        let a = [1.0, 1.0, 1.0];
        let b = [2.0, 2.0, 2.0];
        let r = welch_t_test(&a, &b, Alternative::Less);
        assert_eq!(r.p_value, 0.0);
        let r2 = welch_t_test(&b, &a, Alternative::Less);
        assert_eq!(r2.p_value, 1.0);
    }

    #[test]
    fn incomplete_beta_symmetry() {
        // I_x(a,b) = 1 - I_{1-x}(b,a)
        for &(a, b, x) in &[(2.0, 3.0, 0.4), (0.5, 0.5, 0.7), (5.0, 1.0, 0.2)] {
            let lhs = incomplete_beta(a, b, x);
            let rhs = 1.0 - incomplete_beta(b, a, 1.0 - x);
            assert!((lhs - rhs).abs() < 1e-10, "a={a} b={b} x={x}");
        }
        // I_x(1,1) = x (uniform).
        assert!((incomplete_beta(1.0, 1.0, 0.3) - 0.3).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least 2 observations")]
    fn tiny_sample_rejected() {
        welch_t_test(&[1.0], &[2.0, 3.0], Alternative::Less);
    }
}
