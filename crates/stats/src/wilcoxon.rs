//! The Wilcoxon rank-sum test (Mann–Whitney).
//!
//! This is the hypothesis test at the heart of the paper's statistical
//! detector (Section 4): the monitor compares the *dictated* back-off
//! population (replayed from the tagged node's verifiable PRS) with the
//! *estimated observed* population and asks whether the observed values are
//! stochastically smaller — the signature of a node that transmits before
//! its timer should have expired.
//!
//! Being non-parametric, the test needs no Gaussianity assumption — the
//! paper's stated reason for preferring it over a t-test (back-off values
//! are uniform-ish, not normal).
//!
//! Two evaluation paths:
//! * **exact** — for `n·m ≤` [`EXACT_LIMIT`] and tie-free data, the null
//!   distribution of the rank sum is computed exactly by dynamic programming
//!   over rank subsets;
//! * **normal approximation** — otherwise, with tie-variance correction and
//!   a 0.5 continuity correction.

use crate::normal;
use crate::rank::{midranks, tie_groups};

/// Above this product `n·m` of sample sizes the exact enumeration switches
/// to the normal approximation (the exact DP costs `O((n+m)·n·n·m)`).
pub const EXACT_LIMIT: usize = 400;

/// The direction of the alternative hypothesis, phrased about the *first*
/// sample passed to [`rank_sum_test`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Alternative {
    /// First sample is stochastically **smaller** than the second.
    Less,
    /// First sample is stochastically **greater** than the second.
    Greater,
    /// The samples differ in location (either direction).
    TwoSided,
}

/// How the p-value was computed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Method {
    /// Exact null distribution (tie-free, small samples).
    Exact,
    /// Normal approximation with tie and continuity corrections.
    NormalApprox,
}

/// Result of a rank-sum test.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct RankSumResult {
    /// Rank sum of the first sample (the test statistic `W`).
    pub w: f64,
    /// Mann–Whitney `U` statistic of the first sample (`W − n(n+1)/2`).
    pub u: f64,
    /// Significance probability for the requested alternative.
    pub p_value: f64,
    /// Which computational path produced `p_value`.
    pub method: Method,
    /// Size of the first sample.
    pub n1: usize,
    /// Size of the second sample.
    pub n2: usize,
}

impl RankSumResult {
    /// Convenience: `p_value < alpha`.
    pub fn rejects_at(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

/// Runs the Wilcoxon rank-sum test of `first` against `second`.
///
/// Returns the rank sum of `first`, the corresponding Mann–Whitney `U`, and
/// the p-value under the null hypothesis that both samples come from the
/// same distribution.
///
/// # Panics
///
/// Panics if either sample is empty or contains NaN.
///
/// # Example
///
/// ```
/// use mg_stats::wilcoxon::{rank_sum_test, Alternative};
///
/// let a = [1.0, 2.0, 3.0];
/// let b = [10.0, 11.0, 12.0];
/// let r = rank_sum_test(&a, &b, Alternative::Less);
/// assert!(r.p_value < 0.06); // exact p = 1/C(6,3) = 0.05
/// ```
pub fn rank_sum_test(first: &[f64], second: &[f64], alt: Alternative) -> RankSumResult {
    assert!(
        !first.is_empty() && !second.is_empty(),
        "rank-sum test requires non-empty samples"
    );
    let n1 = first.len();
    let n2 = second.len();
    let mut all: Vec<f64> = Vec::with_capacity(n1 + n2);
    all.extend_from_slice(first);
    all.extend_from_slice(second);
    assert!(all.iter().all(|v| !v.is_nan()), "samples must not contain NaN");

    let ranks = midranks(&all);
    let w: f64 = ranks[..n1].iter().sum();
    let u = w - (n1 * (n1 + 1)) as f64 / 2.0;

    let ties = tie_groups(&all);
    let has_ties = ties.iter().any(|&t| t > 1);

    let (p, method) = if !has_ties && n1 * n2 <= EXACT_LIMIT {
        (exact_p(w as u64, n1, n2, alt), Method::Exact)
    } else {
        (approx_p(w, n1, n2, &ties, alt), Method::NormalApprox)
    };

    RankSumResult {
        w,
        u,
        p_value: p.clamp(0.0, 1.0),
        method,
        n1,
        n2,
    }
}

/// Exact null CDF of the rank sum by dynamic programming.
///
/// `count[i][s]` = number of ways to choose `i` ranks from `1..=N` with sum
/// `s`. Counts are held in `f64` (largest value is `C(N, n1) ≤ C(40, 20) ≈
/// 1.4e11` under [`EXACT_LIMIT`], far inside exact-integer f64 range).
fn exact_p(w: u64, n1: usize, n2: usize, alt: Alternative) -> f64 {
    let n = n1 + n2;
    let max_sum = n1 * n; // loose upper bound on any rank sum
    let mut count = vec![vec![0.0f64; max_sum + 1]; n1 + 1];
    count[0][0] = 1.0;
    for rank in 1..=n {
        // Iterate i downward so each rank is used at most once.
        let top = n1.min(rank);
        for i in (1..=top).rev() {
            for s in (rank..=max_sum).rev() {
                let add = count[i - 1][s - rank];
                if add != 0.0 {
                    count[i][s] += add;
                }
            }
        }
    }
    let total: f64 = count[n1].iter().sum();
    let cdf_at = |x: u64| -> f64 {
        count[n1][..=(x as usize).min(max_sum)].iter().sum::<f64>() / total
    };
    let sf_at = |x: u64| -> f64 {
        // P(W >= x)
        if x as usize > max_sum {
            0.0
        } else {
            count[n1][(x as usize)..].iter().sum::<f64>() / total
        }
    };
    match alt {
        Alternative::Less => cdf_at(w),
        Alternative::Greater => sf_at(w),
        Alternative::TwoSided => (2.0 * cdf_at(w).min(sf_at(w))).min(1.0),
    }
}

/// Normal approximation with tie-variance and continuity corrections.
fn approx_p(w: f64, n1: usize, n2: usize, ties: &[usize], alt: Alternative) -> f64 {
    let n1f = n1 as f64;
    let n2f = n2 as f64;
    let nf = n1f + n2f;
    let mean = n1f * (nf + 1.0) / 2.0;
    let tie_term: f64 = ties
        .iter()
        .map(|&t| {
            let t = t as f64;
            t * t * t - t
        })
        .sum();
    let var = n1f * n2f / 12.0 * ((nf + 1.0) - tie_term / (nf * (nf - 1.0)));
    if var <= 0.0 {
        // All observations identical: no evidence either way.
        return 1.0;
    }
    let sd = var.sqrt();
    match alt {
        Alternative::Less => normal::cdf((w - mean + 0.5) / sd),
        Alternative::Greater => 1.0 - normal::cdf((w - mean - 0.5) / sd),
        Alternative::TwoSided => {
            let z = (w - mean).abs() - 0.5;
            (2.0 * (1.0 - normal::cdf(z.max(0.0) / sd))).min(1.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extreme_separation_exact_p() {
        // All of `a` below all of `b`: W = 1+2+3 = 6, the unique minimum.
        // P = 1 / C(6,3) = 0.05.
        let a = [1.0, 2.0, 3.0];
        let b = [4.0, 5.0, 6.0];
        let r = rank_sum_test(&a, &b, Alternative::Less);
        assert_eq!(r.method, Method::Exact);
        assert_eq!(r.w, 6.0);
        assert_eq!(r.u, 0.0);
        assert!((r.p_value - 0.05).abs() < 1e-12, "p={}", r.p_value);
        // Opposite direction: p = 1.
        let g = rank_sum_test(&a, &b, Alternative::Greater);
        assert!((g.p_value - 1.0).abs() < 1e-12);
    }

    #[test]
    fn symmetric_null_two_sided() {
        let a = [1.0, 4.0, 5.0, 8.0];
        let b = [2.0, 3.0, 6.0, 7.0];
        let r = rank_sum_test(&a, &b, Alternative::TwoSided);
        assert_eq!(r.method, Method::Exact);
        assert!(r.p_value > 0.5, "balanced samples should not reject: {r:?}");
    }

    #[test]
    fn exact_matches_r_wilcox_test() {
        // R: wilcox.test(c(1,3,5,7,9), c(2,4,6,8,10), alternative="less")
        // gives W (Mann-Whitney U of x) = 10 and p = 0.3452381; verified by
        // exhaustive enumeration of all C(10,5) rank subsets.
        let a = [1.0, 3.0, 5.0, 7.0, 9.0];
        let b = [2.0, 4.0, 6.0, 8.0, 10.0];
        let r = rank_sum_test(&a, &b, Alternative::Less);
        assert_eq!(r.u, 10.0);
        assert!((r.p_value - 0.345_238_1).abs() < 1e-6, "p={}", r.p_value);
    }

    #[test]
    fn exact_small_case_hand_computed() {
        // n1=2, n2=2, values 1,2 vs 3,4: W=3 is the minimum; P(W<=3)=1/6.
        let r = rank_sum_test(&[1.0, 2.0], &[3.0, 4.0], Alternative::Less);
        assert!((r.p_value - 1.0 / 6.0).abs() < 1e-12);
        // W=7 is the maximum; P(W>=7)=1/6.
        let r = rank_sum_test(&[3.0, 4.0], &[1.0, 2.0], Alternative::Greater);
        assert!((r.p_value - 1.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn ties_fall_back_to_approx() {
        let a = [1.0, 2.0, 2.0, 3.0];
        let b = [2.0, 4.0, 5.0, 6.0];
        let r = rank_sum_test(&a, &b, Alternative::Less);
        assert_eq!(r.method, Method::NormalApprox);
        assert!(r.p_value > 0.0 && r.p_value < 1.0);
    }

    #[test]
    fn large_samples_use_approx_and_detect_shift() {
        let a: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let b: Vec<f64> = (0..50).map(|i| i as f64 + 15.0).collect();
        let r = rank_sum_test(&a, &b, Alternative::Less);
        assert_eq!(r.method, Method::NormalApprox);
        assert!(r.p_value < 0.001, "p={}", r.p_value);
        assert!(r.rejects_at(0.01));
    }

    #[test]
    fn approx_agrees_with_exact_near_boundary() {
        // Tie-free samples with n*m just under the limit: compare both paths.
        let a: Vec<f64> = (0..20).map(|i| (2 * i) as f64).collect();
        let b: Vec<f64> = (0..20).map(|i| (2 * i + 1) as f64 + 6.0).collect();
        let exact = rank_sum_test(&a, &b, Alternative::Less);
        assert_eq!(exact.method, Method::Exact);
        let w = exact.w;
        let approx = super::approx_p(w, 20, 20, &vec![1; 40], Alternative::Less);
        let rel = (approx - exact.p_value).abs() / exact.p_value.max(1e-12);
        assert!(
            rel < 0.15,
            "exact={} approx={approx}",
            exact.p_value
        );
    }

    #[test]
    fn identical_constant_samples_do_not_reject() {
        let a = [5.0; 10];
        let b = [5.0; 10];
        let r = rank_sum_test(&a, &b, Alternative::Less);
        assert_eq!(r.p_value, 1.0);
    }

    #[test]
    fn null_uniformity_of_exact_p_values() {
        // Under H0 the exact test is conservative-or-exact: P(p <= alpha) <=
        // alpha (up to distribution discreteness). Check by enumeration-ish
        // Monte Carlo with a deterministic LCG.
        let mut s: u64 = 12345;
        let mut unif = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (s >> 11) as f64 / (1u64 << 53) as f64
        };
        let trials = 2000;
        let mut rejections = 0;
        for _ in 0..trials {
            let a: Vec<f64> = (0..10).map(|_| unif()).collect();
            let b: Vec<f64> = (0..10).map(|_| unif()).collect();
            if rank_sum_test(&a, &b, Alternative::Less).rejects_at(0.05) {
                rejections += 1;
            }
        }
        let rate = rejections as f64 / trials as f64;
        assert!(rate < 0.075, "false rejection rate {rate} too high");
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_sample_rejected() {
        rank_sum_test(&[], &[1.0], Alternative::Less);
    }
}
