//! Streaming descriptive statistics.

use crate::normal;

/// Streaming mean/variance/extrema via Welford's algorithm — numerically
/// stable and single-pass, suitable for accumulating millions of slot
/// samples without storing them.
///
/// # Example
///
/// ```
/// use mg_stats::describe::Summary;
///
/// let s: Summary = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0].iter().copied().collect();
/// assert_eq!(s.mean(), 5.0);
/// assert!((s.population_variance() - 4.0).abs() < 1e-12);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Summary {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// An empty accumulator.
    pub fn new() -> Self {
        Summary {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    ///
    /// # Panics
    ///
    /// Panics on NaN input.
    pub fn push(&mut self, x: f64) {
        assert!(!x.is_nan(), "cannot summarize NaN");
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean (0 for an empty summary).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (divides by n; 0 when n < 1).
    pub fn population_variance(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Sample variance (divides by n−1; 0 when n < 2).
    pub fn sample_variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Standard error of the mean.
    pub fn std_err(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.std_dev() / (self.n as f64).sqrt()
        }
    }

    /// Smallest observation (∞ if empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (−∞ if empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Normal-theory two-sided confidence interval for the mean at the given
    /// confidence level (e.g. `0.95`).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < level < 1`.
    pub fn mean_ci(&self, level: f64) -> (f64, f64) {
        assert!(
            level > 0.0 && level < 1.0,
            "confidence level must be in (0,1)"
        );
        let z = normal::quantile(0.5 + level / 2.0);
        let half = z * self.std_err();
        (self.mean() - half, self.mean() + half)
    }

    /// Merges another summary into this one (parallel reduction).
    pub fn merge(&mut self, other: &Summary) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let n = n1 + n2;
        self.mean += delta * n2 / n;
        self.m2 += other.m2 + delta * delta * n1 * n2 / n;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl FromIterator<f64> for Summary {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut s = Summary::new();
        for x in iter {
            s.push(x);
        }
        s
    }
}

impl Extend<f64> for Summary {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.push(x);
        }
    }
}

/// A Bernoulli proportion accumulator with a Wilson confidence interval —
/// the right tool for detection/misdiagnosis probabilities, which live near
/// 0 and 1 where the normal interval misbehaves.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Proportion {
    successes: u64,
    trials: u64,
}

impl Proportion {
    /// An empty accumulator.
    pub fn new() -> Self {
        Proportion::default()
    }

    /// Records one Bernoulli trial.
    pub fn push(&mut self, success: bool) {
        self.trials += 1;
        if success {
            self.successes += 1;
        }
    }

    /// Number of successes recorded.
    pub fn successes(&self) -> u64 {
        self.successes
    }

    /// Number of trials recorded.
    pub fn trials(&self) -> u64 {
        self.trials
    }

    /// The point estimate (0 when no trials have been recorded).
    pub fn estimate(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            self.successes as f64 / self.trials as f64
        }
    }

    /// Wilson score interval at the given confidence level.
    pub fn wilson_ci(&self, level: f64) -> (f64, f64) {
        if self.trials == 0 {
            return (0.0, 1.0);
        }
        let z = normal::quantile(0.5 + level / 2.0);
        let n = self.trials as f64;
        let p = self.estimate();
        let z2 = z * z;
        let denom = 1.0 + z2 / n;
        let center = (p + z2 / (2.0 * n)) / denom;
        let half = z * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt() / denom;
        ((center - half).max(0.0), (center + half).min(1.0))
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &Proportion) {
        self.successes += other.successes;
        self.trials += other.trials;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_matches_hand_computation() {
        let s: Summary = [1.0, 2.0, 3.0, 4.0].iter().copied().collect();
        assert_eq!(s.count(), 4);
        assert_eq!(s.mean(), 2.5);
        assert!((s.sample_variance() - 5.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 4.0);
    }

    #[test]
    fn empty_summary_is_safe() {
        let s = Summary::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.sample_variance(), 0.0);
        assert_eq!(s.std_err(), 0.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let all: Summary = xs.iter().copied().collect();
        let mut left: Summary = xs[..37].iter().copied().collect();
        let right: Summary = xs[37..].iter().copied().collect();
        left.merge(&right);
        assert_eq!(left.count(), all.count());
        assert!((left.mean() - all.mean()).abs() < 1e-12);
        assert!((left.sample_variance() - all.sample_variance()).abs() < 1e-10);
        assert_eq!(left.min(), all.min());
        assert_eq!(left.max(), all.max());
    }

    #[test]
    fn ci_contains_mean_and_shrinks() {
        let s: Summary = (0..1000).map(|i| (i % 10) as f64).collect();
        let (lo, hi) = s.mean_ci(0.95);
        assert!(lo < s.mean() && s.mean() < hi);
        let narrow: Summary = (0..100_000).map(|i| (i % 10) as f64).collect();
        let (lo2, hi2) = narrow.mean_ci(0.95);
        assert!(hi2 - lo2 < hi - lo);
    }

    #[test]
    fn proportion_wilson_interval() {
        let mut p = Proportion::new();
        for i in 0..100 {
            p.push(i < 30);
        }
        assert_eq!(p.estimate(), 0.3);
        let (lo, hi) = p.wilson_ci(0.95);
        assert!(lo > 0.2 && hi < 0.41, "({lo}, {hi})");
        // Degenerate: all failures still yields a sane interval.
        let mut q = Proportion::new();
        for _ in 0..50 {
            q.push(false);
        }
        let (lo, hi) = q.wilson_ci(0.95);
        assert!(lo.abs() < 1e-12, "lo={lo}");
        assert!(hi < 0.12);
    }

    #[test]
    fn proportion_merge() {
        let mut a = Proportion::new();
        a.push(true);
        a.push(false);
        let mut b = Proportion::new();
        b.push(true);
        a.merge(&b);
        assert_eq!(a.trials(), 3);
        assert_eq!(a.successes(), 2);
    }

    #[test]
    #[should_panic(expected = "cannot summarize NaN")]
    fn nan_rejected() {
        Summary::new().push(f64::NAN);
    }
}
