//! # mg-stats — statistics for misbehavior detection
//!
//! Everything statistical the detection framework needs, implemented from
//! scratch (no external stats crates):
//!
//! * [`rank::midranks`] — ranking with midrank tie handling, the first step
//!   of the Wilcoxon procedure;
//! * [`wilcoxon`] — the **Wilcoxon rank-sum test** the paper uses to compare
//!   the dictated back-off population *x* against the estimated observed
//!   population *y*: exact small-sample null distribution (dynamic
//!   programming over rank subsets) with a normal approximation (tie and
//!   continuity corrected) for larger samples;
//! * [`signed_rank`] — the *paired* Wilcoxon signed-rank test, an extension
//!   beyond the paper that exploits the natural pairing of (dictated,
//!   estimated) back-off samples;
//! * [`ttest`] — Welch's t-test, included because the paper argues t-tests
//!   are the *wrong* tool here (Gaussianity assumption); the
//!   `ablation_tests` bench quantifies that claim;
//! * [`normal`] — standard-normal CDF/quantile;
//! * [`filter::Arma`] — the paper's Eq. 6 ARMA traffic-intensity estimator
//!   (`ρ(t+1) = α·ρ(t) + (1−α)·mean of the last s slot samples`, α = 0.995);
//! * [`describe::Summary`] — streaming descriptive statistics (Welford).
//!
//! # Example
//!
//! ```
//! use mg_stats::wilcoxon::{rank_sum_test, Alternative};
//!
//! let dictated = [12.0, 7.0, 31.0, 24.0, 3.0, 18.0, 9.0, 27.0, 15.0, 21.0];
//! let observed = [2.0, 1.0, 6.0, 4.0, 0.0, 3.0, 1.0, 5.0, 2.0, 4.0];
//! // Is the observed population stochastically SMALLER than dictated?
//! let t = rank_sum_test(&observed, &dictated, Alternative::Less);
//! assert!(t.p_value < 0.01); // blatant back-off shrinking
//! ```

#![warn(missing_docs)]

pub mod describe;
pub mod filter;
pub mod normal;
pub mod rank;
pub mod signed_rank;
pub mod ttest;
pub mod wilcoxon;
