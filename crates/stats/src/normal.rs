//! The standard normal distribution: density, CDF and quantile.

use std::f64::consts::PI;

/// Standard normal density φ(x).
pub fn pdf(x: f64) -> f64 {
    (-(x * x) / 2.0).exp() / (2.0 * PI).sqrt()
}

/// Standard normal CDF Φ(x), via the Zelen–Severo (Abramowitz & Stegun
/// 26.2.17) rational approximation; absolute error < 7.5 × 10⁻⁸.
pub fn cdf(x: f64) -> f64 {
    if x.is_nan() {
        return f64::NAN;
    }
    if x < 0.0 {
        return 1.0 - cdf(-x);
    }
    if x > 40.0 {
        return 1.0;
    }
    let k = 1.0 / (1.0 + 0.231_641_9 * x);
    let poly = k
        * (0.319_381_530
            + k * (-0.356_563_782
                + k * (1.781_477_937 + k * (-1.821_255_978 + k * 1.330_274_429))));
    1.0 - pdf(x) * poly
}

/// Standard normal quantile Φ⁻¹(p) (Acklam's algorithm; relative error
/// < 1.15 × 10⁻⁹ over the full open interval).
///
/// # Panics
///
/// Panics unless `0 < p < 1`.
pub fn quantile(p: f64) -> f64 {
    assert!(
        p > 0.0 && p < 1.0,
        "quantile requires 0 < p < 1, got {p}"
    );
    // Coefficients for Peter Acklam's inverse-normal approximation,
    // transcribed digit-for-digit from the published tables.
    #[allow(clippy::excessive_precision)]
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383577518672690e+02,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };
    // One step of Halley refinement tightens to near machine precision.
    let e = cdf(x) - p;
    let u = e * (2.0 * PI).sqrt() * (x * x / 2.0).exp();
    x - u / (1.0 + x * u / 2.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_symmetry_and_known_points() {
        assert!((cdf(0.0) - 0.5).abs() < 1e-9);
        assert!((cdf(1.0) - 0.841_344_746).abs() < 1e-6);
        assert!((cdf(-1.0) - 0.158_655_254).abs() < 1e-6);
        assert!((cdf(1.959_964) - 0.975).abs() < 1e-6);
        assert!((cdf(2.575_829) - 0.995).abs() < 1e-6);
        assert!(cdf(50.0) == 1.0);
        assert!(cdf(-50.0) == 0.0);
    }

    #[test]
    fn cdf_is_monotone() {
        let mut prev = 0.0;
        let mut x = -6.0;
        while x <= 6.0 {
            let c = cdf(x);
            assert!(c >= prev - 1e-12, "not monotone at {x}");
            prev = c;
            x += 0.01;
        }
    }

    #[test]
    fn quantile_inverts_cdf() {
        for &p in &[0.001, 0.01, 0.025, 0.05, 0.5, 0.9, 0.975, 0.999] {
            let x = quantile(p);
            assert!((cdf(x) - p).abs() < 1e-7, "p={p}: cdf(q)={}", cdf(x));
        }
        assert!((quantile(0.975) - 1.959_964).abs() < 1e-4);
    }

    #[test]
    fn pdf_peak_and_symmetry() {
        assert!((pdf(0.0) - 0.398_942_280).abs() < 1e-8);
        assert!((pdf(1.3) - pdf(-1.3)).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "quantile requires")]
    fn quantile_rejects_boundaries() {
        quantile(1.0);
    }
}
