//! # mg-geom — geometry for wireless interference analysis
//!
//! The paper's analytical model (Section 3) reasons about *areas*: the
//! portions of the sender's and monitor's sensing disks that can host a
//! transmitter which one of them hears and the other does not. This crate
//! provides:
//!
//! * [`Vec2`] — plain 2-D points/vectors with the handful of operations the
//!   simulator needs;
//! * [`Circle`] and [`lens_area`] — exact circle–circle intersection areas
//!   (circular-segment formula with careful degenerate handling);
//! * [`RegionModel`] — the A1–A5 decomposition of the joint sensing
//!   footprint of a sender S and monitor R (paper Fig. 1), including the
//!   "preclusion zones" A1/A4 whose construction the paper leaves to a
//!   figure (see [`PreclusionRule`] for the reconstructions we offer);
//! * [`placement`] — grid and uniform-random node placement.
//!
//! # Example
//!
//! ```
//! use mg_geom::{RegionModel, PreclusionRule};
//!
//! // Grid neighbors 240 m apart with a 550 m sensing range.
//! let model = RegionModel::new(240.0, 550.0, PreclusionRule::Mirror);
//! assert!(model.a3 > 0.0);                   // the shared lens
//! assert!((model.ratio_a2() - 0.5).abs() < 1e-12); // mirror symmetry
//! ```

#![warn(missing_docs)]

mod circle;
pub mod placement;
mod regions;
mod vec2;

pub use circle::{lens_area, Circle};
pub use regions::{PreclusionRule, RegionModel};
pub use vec2::Vec2;
