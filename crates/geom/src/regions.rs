//! The A1–A5 sensing-region decomposition of paper Fig. 1.
//!
//! Consider a sender S and a monitor R at distance `d`, both with
//! carrier-sensing radius `cs_range` (550 m in the paper). The analytical
//! model of Section 3 partitions the plane around them into five regions:
//!
//! * **A2** — sensed by S but not by R (`Ss \ Sr`): a transmitter here makes
//!   S perceive a busy channel while R perceives it idle. Hosts `n` nodes.
//! * **A3** — sensed by both (`Ss ∩ Sr`, the lens).
//! * **A5** — sensed by R but not by S (`Sr \ Ss`): a transmitter here makes
//!   R busy while S stays idle. Hosts `j` nodes.
//! * **A1** — the *preclusion zone* of A2: outside S's sensing disk, but
//!   within carrier-sensing reach of A2's nodes, so its `k` nodes contend
//!   with (and can silence) A2's nodes without S ever hearing them.
//! * **A4** — the symmetric preclusion zone of A5 (hosts `m` nodes).
//!
//! A2, A3 and A5 are exact circle-crescent/lens areas. A1 and A4 depend on
//! where in the crescent the "representative" transmitter sits — information
//! that exists only in the paper's (non-machine-readable) figure — so their
//! construction is exposed as a [`PreclusionRule`]:
//!
//! * [`PreclusionRule::Mirror`] places the representative A2 node at the
//!   mirror image of R through S (distance `d` on the far side). Simple and
//!   symmetric; both area ratios come out ½.
//! * [`PreclusionRule::Centroid`] places it at the centroid of the crescent,
//!   which is farther out, giving a larger preclusion zone.
//! * [`PreclusionRule::Calibrated`] sets the two preclusion areas as direct
//!   multiples of their crescents. [`PreclusionRule::paper_calibrated`]
//!   reproduces the magnitudes printed in the paper's Figures 3–4
//!   (`A2/(A1+A2) ≈ 0.62`, `A5/(A4+A5) ≈ 0.13`).
//!
//! The `ablation_regions` bench in `mg-bench` quantifies how the choice
//! affects both the analytical curves and the detector's accuracy.

use crate::circle::lens_area;

/// How to construct the preclusion zones A1 and A4 (see module docs).
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum PreclusionRule {
    /// Representative crescent node mirrored through the sensing node:
    /// `A1 = area(disk(2S−R, c) \ Ss)`, which equals the crescent area, so
    /// `A2/(A1+A2) = 1/2`.
    Mirror,
    /// Representative crescent node at the crescent's centroid.
    Centroid,
    /// Preclusion areas given directly as multiples of their crescents:
    /// `A1 = a1_over_a2 · A2`, `A4 = a4_over_a5 · A5`.
    Calibrated {
        /// `A1 / A2` — ratio of the S-side preclusion zone to its crescent.
        a1_over_a2: f64,
        /// `A4 / A5` — ratio of the R-side preclusion zone to its crescent.
        a4_over_a5: f64,
    },
}

impl PreclusionRule {
    /// The calibration that matches the magnitudes printed in the paper's
    /// Figure 3 (grid topology): `A2/(A1+A2) ≈ 0.62` at saturation and
    /// `A5/(A4+A5) ≈ 0.13`.
    pub fn paper_calibrated() -> Self {
        PreclusionRule::Calibrated {
            a1_over_a2: 0.613,
            a4_over_a5: 6.69,
        }
    }

    /// The calibration that matches the conditional probabilities measured
    /// in *this repository's* simulator **during back-off windows** (grid
    /// topology, 240 m pair, 550 m sensing): `A2/(A1+A2) ≈ 0.40`,
    /// `A5/(A4+A5) ≈ 0.21`. The monitor uses this by default — a detector's
    /// analytic model must match the physics it runs on, exactly as the
    /// paper validated its parameters against ns-2 (see EXPERIMENTS.md,
    /// Fig. 3 and the calibration appendix).
    pub fn sim_calibrated() -> Self {
        Self::sim_calibrated_for(240.0)
    }

    /// Distance-scaled variant of [`PreclusionRule::sim_calibrated`]: the
    /// closer the pair, the more their sensing disks coincide and the
    /// smaller both cross-view probabilities must be. Empirically the
    /// coupling scales ≈ linearly with pair distance (the S-only crescent
    /// area is ≈ linear in `d` for `d ≪ cs_range`), so the reference ratios
    /// measured at 240 m are scaled by `d / 240` (clamped to [0.05, 1.5]).
    pub fn sim_calibrated_for(d: f64) -> Self {
        let scale = (d / 240.0).clamp(0.05, 1.5);
        let r2 = 0.40 * scale;
        let r5 = 0.21 * scale;
        PreclusionRule::Calibrated {
            a1_over_a2: (1.0 - r2) / r2,
            a4_over_a5: (1.0 - r5) / r5,
        }
    }
}

impl Default for PreclusionRule {
    fn default() -> Self {
        PreclusionRule::paper_calibrated()
    }
}

/// Areas (m²) of the five regions for a given sender–monitor distance, plus
/// the ratios that enter the paper's Equations 3–4.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct RegionModel {
    /// Sender–monitor distance in meters.
    pub distance: f64,
    /// Carrier-sensing radius in meters.
    pub cs_range: f64,
    /// Preclusion zone of A2 (outside S's disk, contends with A2 nodes).
    pub a1: f64,
    /// Sensed by S only (`Ss \ Sr`).
    pub a2: f64,
    /// Sensed by both (`Ss ∩ Sr`).
    pub a3: f64,
    /// Preclusion zone of A5 (outside R's disk, contends with A5 nodes).
    pub a4: f64,
    /// Sensed by R only (`Sr \ Ss`).
    pub a5: f64,
}

impl RegionModel {
    /// Computes the region areas for sender–monitor distance `d` and sensing
    /// radius `cs_range`, constructing A1/A4 per `rule`.
    ///
    /// # Panics
    ///
    /// Panics if `d` is negative, `cs_range` is non-positive, either is
    /// non-finite, or a [`PreclusionRule::Calibrated`] multiple is negative.
    pub fn new(d: f64, cs_range: f64, rule: PreclusionRule) -> Self {
        assert!(d.is_finite() && d >= 0.0, "distance must be ≥ 0, got {d}");
        assert!(
            cs_range.is_finite() && cs_range > 0.0,
            "cs_range must be > 0, got {cs_range}"
        );
        let disk = std::f64::consts::PI * cs_range * cs_range;
        let lens = lens_area(cs_range, cs_range, d);
        let crescent = disk - lens;
        let (a1, a4) = match rule {
            PreclusionRule::Mirror => {
                // Disk centered at distance d on the far side, minus Ss: by
                // symmetry its area outside Ss equals the crescent area.
                (crescent, crescent)
            }
            PreclusionRule::Centroid => {
                // Centroid of the crescent Ss \ Sr lies at distance
                // x_c = (d/2) · lens / crescent beyond S (moment balance of
                // the full disk = crescent + lens).
                if crescent <= f64::EPSILON {
                    (0.0, 0.0)
                } else {
                    let x_c = (d / 2.0) * lens / crescent;
                    let a = disk - lens_area(cs_range, cs_range, x_c);
                    (a, a)
                }
            }
            PreclusionRule::Calibrated {
                a1_over_a2,
                a4_over_a5,
            } => {
                assert!(
                    a1_over_a2 >= 0.0 && a4_over_a5 >= 0.0,
                    "calibrated multiples must be non-negative"
                );
                (a1_over_a2 * crescent, a4_over_a5 * crescent)
            }
        };
        RegionModel {
            distance: d,
            cs_range,
            a1,
            a2: crescent,
            a3: lens,
            a4,
            a5: crescent,
        }
    }

    /// `A2 / (A1 + A2)` — given one transmitter among the A1∪A2 nodes, the
    /// probability it sits where S (but not R) hears it. First factor of
    /// paper Eq. 3.
    pub fn ratio_a2(&self) -> f64 {
        safe_ratio(self.a2, self.a1 + self.a2)
    }

    /// `A1 / (A1 + A2)` — the complementary probability (the transmitter is
    /// in the preclusion zone, unheard by S). Appears inside paper Eq. 4.
    pub fn ratio_a1(&self) -> f64 {
        safe_ratio(self.a1, self.a1 + self.a2)
    }

    /// `A5 / (A4 + A5)` — given one transmitter among the A4∪A5 nodes, the
    /// probability it sits where R (but not S) hears it. First factor of
    /// paper Eq. 4.
    pub fn ratio_a5(&self) -> f64 {
        safe_ratio(self.a5, self.a4 + self.a5)
    }

    /// Expected node count in an area, given a uniform density (nodes/m²) —
    /// the paper's `N_c/(πR²) · A_i` estimate (valid for uniform layouts).
    pub fn expected_nodes(area: f64, density: f64) -> f64 {
        (area * density).max(0.0)
    }
}

fn safe_ratio(num: f64, den: f64) -> f64 {
    if den <= f64::EPSILON {
        0.0
    } else {
        num / den
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    const D: f64 = 240.0;
    const CS: f64 = 550.0;

    #[test]
    fn partition_is_consistent() {
        let m = RegionModel::new(D, CS, PreclusionRule::Mirror);
        let disk = PI * CS * CS;
        // Crescent + lens = full disk for each of S and R.
        assert!((m.a2 + m.a3 - disk).abs() < 1e-6);
        assert!((m.a5 + m.a3 - disk).abs() < 1e-6);
        // Symmetric construction.
        assert_eq!(m.a2, m.a5);
        assert_eq!(m.a1, m.a4);
    }

    #[test]
    fn mirror_rule_gives_half_ratios() {
        let m = RegionModel::new(D, CS, PreclusionRule::Mirror);
        assert!((m.ratio_a2() - 0.5).abs() < 1e-12);
        assert!((m.ratio_a5() - 0.5).abs() < 1e-12);
        assert!((m.ratio_a1() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn centroid_rule_gives_larger_preclusion() {
        let mirror = RegionModel::new(D, CS, PreclusionRule::Mirror);
        let centroid = RegionModel::new(D, CS, PreclusionRule::Centroid);
        // The centroid sits farther from S than the mirror point (d/2·lens/A2
        // > d when the lens dominates), so the preclusion disk sticks out more.
        assert!(centroid.a1 > mirror.a1);
        assert!(centroid.ratio_a2() < 0.5);
    }

    #[test]
    fn sim_calibration_scales_with_distance() {
        let at = |d: f64| RegionModel::new(d, CS, PreclusionRule::sim_calibrated_for(d));
        let reference = at(240.0);
        assert!((reference.ratio_a2() - 0.40).abs() < 1e-9);
        assert!((reference.ratio_a5() - 0.21).abs() < 1e-9);
        // Half the distance → half the coupling.
        let close = at(120.0);
        assert!((close.ratio_a2() - 0.20).abs() < 1e-9);
        // Clamped at both ends.
        let glued = at(1.0);
        assert!(close.ratio_a2() > glued.ratio_a2());
        assert!(glued.ratio_a2() >= 0.4 * 0.05 - 1e-9);
        let far = at(2000.0);
        assert!((far.ratio_a2() - 0.40 * 1.5).abs() < 1e-9);
    }

    #[test]
    fn paper_calibrated_matches_printed_magnitudes() {
        let m = RegionModel::new(D, CS, PreclusionRule::paper_calibrated());
        assert!((m.ratio_a2() - 0.62).abs() < 0.01, "{}", m.ratio_a2());
        assert!((m.ratio_a5() - 0.13).abs() < 0.01, "{}", m.ratio_a5());
    }

    #[test]
    fn coincident_nodes_have_no_private_regions() {
        let m = RegionModel::new(0.0, CS, PreclusionRule::Mirror);
        assert!(m.a2.abs() < 1e-6);
        assert!(m.a5.abs() < 1e-6);
        assert!((m.a3 - PI * CS * CS).abs() < 1e-6);
        // Ratios degrade gracefully to 0 rather than NaN.
        assert_eq!(m.ratio_a2(), 0.0);
    }

    #[test]
    fn far_apart_nodes_have_disjoint_footprints() {
        let m = RegionModel::new(3.0 * CS, CS, PreclusionRule::Mirror);
        assert_eq!(m.a3, 0.0);
        let disk = PI * CS * CS;
        assert!((m.a2 - disk).abs() < 1e-6);
    }

    #[test]
    fn expected_nodes_scales_with_density() {
        let m = RegionModel::new(D, CS, PreclusionRule::Mirror);
        let density = 56.0 / (3000.0 * 3000.0);
        let n = RegionModel::expected_nodes(m.a2, density);
        assert!(n > 0.0 && n < 56.0);
        assert_eq!(RegionModel::expected_nodes(m.a2, 0.0), 0.0);
    }

    #[test]
    fn ratios_sum_to_one() {
        for rule in [
            PreclusionRule::Mirror,
            PreclusionRule::Centroid,
            PreclusionRule::paper_calibrated(),
        ] {
            let m = RegionModel::new(D, CS, rule);
            assert!((m.ratio_a1() + m.ratio_a2() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "cs_range must be > 0")]
    fn zero_range_rejected() {
        RegionModel::new(D, 0.0, PreclusionRule::Mirror);
    }
}
