//! Node placement: the paper's 7×8 grid and uniform-random layouts.

use crate::Vec2;

/// A source of uniform `f64` draws in `[0, 1)`.
///
/// `mg-geom` deliberately does not depend on any RNG crate; any closure
/// returning uniforms works (and `mg_sim::rng::Xoshiro256` gets an impl in
/// the crates that use both).
pub trait Uniform01 {
    /// The next uniform draw in `[0, 1)`.
    fn uniform01(&mut self) -> f64;
}

impl<F: FnMut() -> f64> Uniform01 for F {
    fn uniform01(&mut self) -> f64 {
        self()
    }
}

/// Positions for a `rows × cols` grid with the given spacing, centered in a
/// `field_w × field_h` m field (the paper: 7 rows × 8 columns, 240 m spacing,
/// 3000 m × 3000 m field).
///
/// Nodes are emitted row-major, so node `r*cols + c` sits at grid cell
/// `(r, c)`.
///
/// # Panics
///
/// Panics if `rows` or `cols` is zero, or if the grid does not fit in the
/// field.
pub fn grid(rows: usize, cols: usize, spacing: f64, field_w: f64, field_h: f64) -> Vec<Vec2> {
    assert!(rows > 0 && cols > 0, "grid must have at least one node");
    let w = (cols - 1) as f64 * spacing;
    let h = (rows - 1) as f64 * spacing;
    assert!(
        w <= field_w && h <= field_h,
        "grid ({w} x {h} m) exceeds field ({field_w} x {field_h} m)"
    );
    let x0 = (field_w - w) / 2.0;
    let y0 = (field_h - h) / 2.0;
    let mut out = Vec::with_capacity(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            out.push(Vec2::new(x0 + c as f64 * spacing, y0 + r as f64 * spacing));
        }
    }
    out
}

/// `n` positions drawn uniformly at random in a `field_w × field_h` m field
/// (the paper's random topology: 112 nodes in 3000 m × 3000 m).
pub fn uniform_random<R: Uniform01>(
    n: usize,
    field_w: f64,
    field_h: f64,
    rng: &mut R,
) -> Vec<Vec2> {
    (0..n)
        .map(|_| Vec2::new(rng.uniform01() * field_w, rng.uniform01() * field_h))
        .collect()
}

/// `clusters × per_cluster` positions in clumps: cluster centers are drawn
/// uniformly in the field (margin `radius` from the edges where possible),
/// members uniformly in the disk of `radius` meters around their center,
/// clamped to the field. Models the dense multi-hop neighborhoods
/// (hot-spots around gateways) that stress carrier-sense accounting far
/// more than a uniform scatter of the same node count.
pub fn clustered<R: Uniform01>(
    clusters: usize,
    per_cluster: usize,
    radius: f64,
    field_w: f64,
    field_h: f64,
    rng: &mut R,
) -> Vec<Vec2> {
    let margin_w = if field_w > 2.0 * radius { radius } else { 0.0 };
    let margin_h = if field_h > 2.0 * radius { radius } else { 0.0 };
    let mut out = Vec::with_capacity(clusters * per_cluster);
    for _ in 0..clusters {
        let cx = margin_w + rng.uniform01() * (field_w - 2.0 * margin_w);
        let cy = margin_h + rng.uniform01() * (field_h - 2.0 * margin_h);
        for _ in 0..per_cluster {
            // Uniform in the disk: r = R·sqrt(u) corrects the area bias.
            let r = radius * rng.uniform01().sqrt();
            let theta = rng.uniform01() * std::f64::consts::TAU;
            let x = (cx + r * theta.cos()).clamp(0.0, field_w);
            let y = (cy + r * theta.sin()).clamp(0.0, field_h);
            out.push(Vec2::new(x, y));
        }
    }
    out
}

/// Index of the node closest to the field center — the paper places the
/// monitored pair "in the center of the grid so that the computations take
/// into consideration the interference effects from their two-hop neighbors".
pub fn most_central(positions: &[Vec2], field_w: f64, field_h: f64) -> Option<usize> {
    let center = Vec2::new(field_w / 2.0, field_h / 2.0);
    positions
        .iter()
        .enumerate()
        .min_by(|(_, a), (_, b)| {
            a.distance_sq(center)
                .partial_cmp(&b.distance_sq(center))
                .expect("positions must not contain NaN")
        })
        .map(|(i, _)| i)
}

/// Indices of all nodes within `range` of node `of` (excluding itself) —
/// the one-hop neighborhood used for choosing traffic destinations and
/// monitors.
pub fn neighbors_within(positions: &[Vec2], of: usize, range: f64) -> Vec<usize> {
    let p = positions[of];
    positions
        .iter()
        .enumerate()
        .filter(|&(i, q)| i != of && p.distance(*q) <= range)
        .map(|(i, _)| i)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lcg(seed: u64) -> impl FnMut() -> f64 {
        let mut s = seed;
        move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (s >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    #[test]
    fn grid_has_right_count_and_spacing() {
        let g = grid(7, 8, 240.0, 3000.0, 3000.0);
        assert_eq!(g.len(), 56);
        // Horizontal neighbors are exactly 240 m apart.
        assert!((g[0].distance(g[1]) - 240.0).abs() < 1e-9);
        // Vertical neighbors too (row stride = 8).
        assert!((g[0].distance(g[8]) - 240.0).abs() < 1e-9);
        // Centered: symmetric margins.
        let minx = g.iter().map(|p| p.x).fold(f64::INFINITY, f64::min);
        let maxx = g.iter().map(|p| p.x).fold(f64::NEG_INFINITY, f64::max);
        assert!(((3000.0 - maxx) - minx).abs() < 1e-9);
    }

    #[test]
    fn grid_is_row_major() {
        let g = grid(2, 3, 100.0, 1000.0, 1000.0);
        assert_eq!(g.len(), 6);
        assert!(g[0].y == g[1].y && g[1].y == g[2].y);
        assert!(g[3].y > g[0].y);
    }

    #[test]
    #[should_panic(expected = "exceeds field")]
    fn oversized_grid_rejected() {
        grid(100, 100, 240.0, 3000.0, 3000.0);
    }

    #[test]
    fn uniform_random_stays_in_field() {
        let mut r = lcg(7);
        let pts = uniform_random(500, 3000.0, 2000.0, &mut r);
        assert_eq!(pts.len(), 500);
        for p in &pts {
            assert!((0.0..=3000.0).contains(&p.x));
            assert!((0.0..=2000.0).contains(&p.y));
        }
    }

    #[test]
    fn clustered_stays_in_field_and_clumps() {
        let mut r = lcg(11);
        let pts = clustered(5, 40, 300.0, 3000.0, 3000.0, &mut r);
        assert_eq!(pts.len(), 200);
        for p in &pts {
            assert!((0.0..=3000.0).contains(&p.x) && (0.0..=3000.0).contains(&p.y));
        }
        // Members stay within their cluster radius: diameter ≤ 600 m.
        for c in 0..5 {
            let members = &pts[c * 40..(c + 1) * 40];
            for a in members {
                for b in members {
                    assert!(a.distance(*b) <= 600.0 + 1e-9);
                }
            }
        }
    }

    #[test]
    fn most_central_finds_center_node() {
        let g = grid(7, 8, 240.0, 3000.0, 3000.0);
        let c = most_central(&g, 3000.0, 3000.0).unwrap();
        let center = Vec2::new(1500.0, 1500.0);
        for (i, p) in g.iter().enumerate() {
            assert!(
                g[c].distance_sq(center) <= p.distance_sq(center) || i == c,
            );
        }
        assert_eq!(most_central(&[], 10.0, 10.0), None);
    }

    #[test]
    fn neighbors_within_excludes_self_and_far_nodes() {
        let g = grid(7, 8, 240.0, 3000.0, 3000.0);
        // 250 m transmission range: only the 4-connected grid neighbors.
        let center = most_central(&g, 3000.0, 3000.0).unwrap();
        let nb = neighbors_within(&g, center, 250.0);
        assert!(!nb.contains(&center));
        assert!(nb.len() == 4, "expected 4 one-hop neighbors, got {}", nb.len());
        // 550 m sensing range: 4 straight (240 m) + 4 diagonal (339 m)
        // + 4 two-step straight (480 m) + 8 knight-move (537 m) = 20.
        let nb2 = neighbors_within(&g, center, 550.0);
        assert_eq!(nb2.len(), 20);
    }
}
