//! Circles and circle–circle intersection ("lens") areas.

use crate::Vec2;

/// A circle in the simulation plane (e.g. a node's sensing footprint).
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Circle {
    /// Center of the circle.
    pub center: Vec2,
    /// Radius in meters; must be non-negative.
    pub radius: f64,
}

impl Circle {
    /// Creates a circle.
    ///
    /// # Panics
    ///
    /// Panics if `radius` is negative or not finite.
    pub fn new(center: Vec2, radius: f64) -> Self {
        assert!(
            radius.is_finite() && radius >= 0.0,
            "circle radius must be finite and non-negative, got {radius}"
        );
        Circle { center, radius }
    }

    /// Area of the disk.
    pub fn area(&self) -> f64 {
        std::f64::consts::PI * self.radius * self.radius
    }

    /// Whether `p` lies inside or on the circle.
    pub fn contains(&self, p: Vec2) -> bool {
        self.center.distance_sq(p) <= self.radius * self.radius
    }

    /// Area of the intersection of this disk with `other`.
    pub fn intersection_area(&self, other: &Circle) -> f64 {
        lens_area(self.radius, other.radius, self.center.distance(other.center))
    }
}

/// Area of the intersection of two disks with radii `r1`, `r2` whose centers
/// are `d` apart (the "lens").
///
/// Handles all degenerate cases: disjoint disks (`0`), one disk containing
/// the other (the smaller disk's area), zero radii, and coincident centers.
///
/// # Panics
///
/// Panics if any argument is negative or non-finite.
///
/// # Example
///
/// ```
/// use mg_geom::lens_area;
/// use std::f64::consts::PI;
///
/// // Coincident unit disks overlap fully.
/// assert!((lens_area(1.0, 1.0, 0.0) - PI).abs() < 1e-12);
/// // Far apart: no overlap.
/// assert_eq!(lens_area(1.0, 1.0, 3.0), 0.0);
/// ```
pub fn lens_area(r1: f64, r2: f64, d: f64) -> f64 {
    for (name, v) in [("r1", r1), ("r2", r2), ("d", d)] {
        assert!(
            v.is_finite() && v >= 0.0,
            "lens_area argument {name} must be finite and non-negative, got {v}"
        );
    }
    if r1 == 0.0 || r2 == 0.0 {
        return 0.0;
    }
    if d >= r1 + r2 {
        return 0.0; // disjoint (or tangent)
    }
    let (small, large) = if r1 <= r2 { (r1, r2) } else { (r2, r1) };
    if d <= large - small {
        // The smaller disk is entirely inside the larger one.
        return std::f64::consts::PI * small * small;
    }
    // General case: sum of the two circular segments.
    // Clamp the acos arguments: roundoff can push them epsilon outside [-1,1].
    let a1 = ((d * d + r1 * r1 - r2 * r2) / (2.0 * d * r1)).clamp(-1.0, 1.0);
    let a2 = ((d * d + r2 * r2 - r1 * r1) / (2.0 * d * r2)).clamp(-1.0, 1.0);
    let t1 = a1.acos();
    let t2 = a2.acos();
    let tri = 0.5
        * ((-d + r1 + r2) * (d + r1 - r2) * (d - r1 + r2) * (d + r1 + r2))
            .max(0.0)
            .sqrt();
    r1 * r1 * t1 + r2 * r2 * t2 - tri
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol * b.abs().max(1.0)
    }

    #[test]
    fn disjoint_and_tangent_are_zero() {
        assert_eq!(lens_area(1.0, 1.0, 2.0), 0.0);
        assert_eq!(lens_area(1.0, 1.0, 2.5), 0.0);
        assert_eq!(lens_area(3.0, 4.0, 100.0), 0.0);
    }

    #[test]
    fn containment_returns_smaller_disk() {
        assert!(close(lens_area(1.0, 10.0, 0.0), PI, 1e-12));
        assert!(close(lens_area(1.0, 10.0, 5.0), PI, 1e-12));
        assert!(close(lens_area(1.0, 10.0, 9.0), PI, 1e-12));
        // Symmetric in arguments.
        assert!(close(lens_area(10.0, 1.0, 5.0), PI, 1e-12));
    }

    #[test]
    fn zero_radius_is_zero() {
        assert_eq!(lens_area(0.0, 5.0, 1.0), 0.0);
        assert_eq!(lens_area(5.0, 0.0, 0.0), 0.0);
    }

    #[test]
    fn known_half_overlap_value() {
        // Two unit circles at distance 1: standard result 2π/3 − √3/2.
        let expected = 2.0 * PI / 3.0 - 3f64.sqrt() / 2.0;
        assert!(close(lens_area(1.0, 1.0, 1.0), expected, 1e-12));
    }

    #[test]
    fn paper_geometry_sanity() {
        // Sensing disks (550 m) of grid neighbors 240 m apart.
        let lens = lens_area(550.0, 550.0, 240.0);
        let disk = PI * 550.0 * 550.0;
        assert!(lens > 0.5 * disk && lens < disk, "lens={lens} disk={disk}");
        // Crescent area = disk − lens, matches the hand calculation (~261 900 m²).
        let crescent = disk - lens;
        assert!(close(crescent, 261_852.0, 0.01), "crescent={crescent}");
    }

    #[test]
    fn monotone_in_distance() {
        let mut prev = lens_area(550.0, 550.0, 0.0);
        for i in 1..=110 {
            let d = i as f64 * 10.0;
            let a = lens_area(550.0, 550.0, d);
            assert!(a <= prev + 1e-9, "not monotone at d={d}");
            prev = a;
        }
        assert_eq!(prev, 0.0);
    }

    #[test]
    fn circle_contains_and_area() {
        let c = Circle::new(Vec2::new(1.0, 1.0), 2.0);
        assert!(c.contains(Vec2::new(2.0, 2.0)));
        assert!(!c.contains(Vec2::new(4.0, 4.0)));
        assert!(close(c.area(), 4.0 * PI, 1e-12));
        let o = Circle::new(Vec2::new(1.0, 3.0), 2.0);
        assert!(close(
            c.intersection_area(&o),
            lens_area(2.0, 2.0, 2.0),
            1e-12
        ));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_distance_rejected() {
        lens_area(1.0, 1.0, -0.5);
    }

    #[test]
    #[should_panic(expected = "radius must be finite")]
    fn negative_radius_rejected() {
        Circle::new(Vec2::ZERO, -1.0);
    }
}
