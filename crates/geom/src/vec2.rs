//! Minimal 2-D vector type.

use core::ops::{Add, AddAssign, Mul, Neg, Sub};

/// A point or displacement in the 2-D simulation plane, in meters.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct Vec2 {
    /// East–west coordinate in meters.
    pub x: f64,
    /// North–south coordinate in meters.
    pub y: f64,
}

impl Vec2 {
    /// The origin.
    pub const ZERO: Vec2 = Vec2 { x: 0.0, y: 0.0 };

    /// Creates a vector from its components.
    pub const fn new(x: f64, y: f64) -> Self {
        Vec2 { x, y }
    }

    /// Euclidean length.
    pub fn norm(self) -> f64 {
        self.x.hypot(self.y)
    }

    /// Squared Euclidean length (avoids the square root in hot paths).
    pub fn norm_sq(self) -> f64 {
        self.x * self.x + self.y * self.y
    }

    /// Distance to another point.
    pub fn distance(self, other: Vec2) -> f64 {
        (self - other).norm()
    }

    /// Squared distance to another point.
    pub fn distance_sq(self, other: Vec2) -> f64 {
        (self - other).norm_sq()
    }

    /// Dot product.
    pub fn dot(self, other: Vec2) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// The unit vector in this direction, or `None` for the zero vector.
    pub fn normalized(self) -> Option<Vec2> {
        let n = self.norm();
        if n == 0.0 {
            None
        } else {
            Some(Vec2::new(self.x / n, self.y / n))
        }
    }

    /// Linear interpolation: `self` at `t = 0`, `other` at `t = 1`.
    pub fn lerp(self, other: Vec2, t: f64) -> Vec2 {
        self + (other - self) * t
    }
}

impl Add for Vec2 {
    type Output = Vec2;
    fn add(self, o: Vec2) -> Vec2 {
        Vec2::new(self.x + o.x, self.y + o.y)
    }
}

impl AddAssign for Vec2 {
    fn add_assign(&mut self, o: Vec2) {
        self.x += o.x;
        self.y += o.y;
    }
}

impl Sub for Vec2 {
    type Output = Vec2;
    fn sub(self, o: Vec2) -> Vec2 {
        Vec2::new(self.x - o.x, self.y - o.y)
    }
}

impl Mul<f64> for Vec2 {
    type Output = Vec2;
    fn mul(self, s: f64) -> Vec2 {
        Vec2::new(self.x * s, self.y * s)
    }
}

impl Neg for Vec2 {
    type Output = Vec2;
    fn neg(self) -> Vec2 {
        Vec2::new(-self.x, -self.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_symmetric() {
        let a = Vec2::new(3.0, 4.0);
        let b = Vec2::new(0.0, 0.0);
        assert_eq!(a.distance(b), 5.0);
        assert_eq!(b.distance(a), 5.0);
        assert_eq!(a.distance_sq(b), 25.0);
    }

    #[test]
    fn normalized_handles_zero() {
        assert!(Vec2::ZERO.normalized().is_none());
        let u = Vec2::new(0.0, -2.0).normalized().unwrap();
        assert!((u.norm() - 1.0).abs() < 1e-15);
        assert_eq!(u.y, -1.0);
    }

    #[test]
    fn lerp_endpoints() {
        let a = Vec2::new(1.0, 1.0);
        let b = Vec2::new(5.0, -3.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        let mid = a.lerp(b, 0.5);
        assert_eq!(mid, Vec2::new(3.0, -1.0));
    }

    #[test]
    fn arithmetic() {
        let a = Vec2::new(1.0, 2.0);
        let b = Vec2::new(-3.0, 4.0);
        assert_eq!(a + b, Vec2::new(-2.0, 6.0));
        assert_eq!(a - b, Vec2::new(4.0, -2.0));
        assert_eq!(a * 2.0, Vec2::new(2.0, 4.0));
        assert_eq!(-a, Vec2::new(-1.0, -2.0));
        assert_eq!(a.dot(b), 5.0);
    }
}
