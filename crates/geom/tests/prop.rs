//! Property-based tests for the geometry primitives (mg-testkit harness).

use mg_geom::{lens_area, PreclusionRule, RegionModel, Vec2};
use mg_testkit::prop::{check, Gen, TkResult};
use mg_testkit::tk_assert;

/// The lens area is symmetric in its radii.
#[test]
fn lens_is_symmetric() {
    check("lens_is_symmetric", |g: &mut Gen| -> TkResult {
        let r1 = g.f64_in(0.0..1000.0);
        let r2 = g.f64_in(0.0..1000.0);
        let d = g.f64_in(0.0..3000.0);
        let a = lens_area(r1, r2, d);
        let b = lens_area(r2, r1, d);
        tk_assert!((a - b).abs() <= 1e-6 * a.abs().max(1.0));
        Ok(())
    });
}

/// The lens can never exceed either disk, and is never negative.
#[test]
fn lens_is_bounded() {
    check("lens_is_bounded", |g: &mut Gen| -> TkResult {
        let r1 = g.f64_in(0.0..1000.0);
        let r2 = g.f64_in(0.0..1000.0);
        let d = g.f64_in(0.0..3000.0);
        let lens = lens_area(r1, r2, d);
        let a1 = std::f64::consts::PI * r1 * r1;
        let a2 = std::f64::consts::PI * r2 * r2;
        tk_assert!(lens >= 0.0);
        tk_assert!(lens <= a1.min(a2) + 1e-6);
        Ok(())
    });
}

/// Moving the circles apart never grows the overlap.
#[test]
fn lens_monotone_in_distance() {
    check("lens_monotone_in_distance", |g: &mut Gen| -> TkResult {
        let r1 = g.f64_in(1.0..800.0);
        let r2 = g.f64_in(1.0..800.0);
        let d = g.f64_in(0.0..1500.0);
        let delta = g.f64_in(0.0..500.0);
        tk_assert!(lens_area(r1, r2, d + delta) <= lens_area(r1, r2, d) + 1e-9);
        Ok(())
    });
}

/// Monte-Carlo cross-check of the analytic lens area.
#[test]
fn lens_matches_monte_carlo() {
    check("lens_matches_monte_carlo", |g: &mut Gen| -> TkResult {
        let r1 = g.f64_in(50.0..300.0);
        let r2 = g.f64_in(50.0..300.0);
        let d = g.f64_in(0.0..500.0);
        let analytic = lens_area(r1, r2, d);
        // Sample the bounding box of the smaller circle.
        let (rs, center_s, center_other, ro) = if r1 <= r2 {
            (r1, Vec2::ZERO, Vec2::new(d, 0.0), r2)
        } else {
            (r2, Vec2::new(d, 0.0), Vec2::ZERO, r1)
        };
        let mut hits = 0u32;
        let n = 20_000u32;
        // Deterministic low-discrepancy-ish sampling (golden-ratio lattice).
        for i in 0..n {
            let u = (i as f64 * 0.754877666246693) % 1.0;
            let v = (i as f64 * 0.569840290998053) % 1.0;
            let p = Vec2::new(
                center_s.x - rs + 2.0 * rs * u,
                center_s.y - rs + 2.0 * rs * v,
            );
            if p.distance(center_s) <= rs && p.distance(center_other) <= ro {
                hits += 1;
            }
        }
        let estimate = hits as f64 / n as f64 * 4.0 * rs * rs;
        let tol = 0.05 * (std::f64::consts::PI * rs * rs) + 50.0;
        tk_assert!(
            (estimate - analytic).abs() < tol,
            "analytic {analytic}, monte-carlo {estimate}"
        );
        Ok(())
    });
}

/// Region models always produce valid probabilities and a consistent
/// partition, for every preclusion rule.
#[test]
fn region_model_invariants() {
    check("region_model_invariants", |g: &mut Gen| -> TkResult {
        let d = g.f64_in(0.0..1200.0);
        let cs = g.f64_in(100.0..900.0);
        let a1f = g.f64_in(0.0..10.0);
        let a4f = g.f64_in(0.0..10.0);
        for rule in [
            PreclusionRule::Mirror,
            PreclusionRule::Centroid,
            PreclusionRule::Calibrated {
                a1_over_a2: a1f,
                a4_over_a5: a4f,
            },
        ] {
            let m = RegionModel::new(d, cs, rule);
            let disk = std::f64::consts::PI * cs * cs;
            tk_assert!((m.a2 + m.a3 - disk).abs() < 1e-6 * disk.max(1.0));
            tk_assert!((m.a5 + m.a3 - disk).abs() < 1e-6 * disk.max(1.0));
            for r in [m.ratio_a1(), m.ratio_a2(), m.ratio_a5()] {
                tk_assert!((0.0..=1.0).contains(&r), "{rule:?}: ratio {r}");
            }
            tk_assert!(
                (m.ratio_a1() + m.ratio_a2() - 1.0).abs() < 1e-9
                    || (m.ratio_a1() == 0.0 && m.ratio_a2() == 0.0)
            );
        }
        Ok(())
    });
}

/// Vector algebra: |a+b| ≤ |a| + |b| and lerp stays on the segment.
#[test]
fn vector_triangle_inequality() {
    check("vector_triangle_inequality", |g: &mut Gen| -> TkResult {
        let a = Vec2::new(g.f64_in(-1e3..1e3), g.f64_in(-1e3..1e3));
        let b = Vec2::new(g.f64_in(-1e3..1e3), g.f64_in(-1e3..1e3));
        let t = g.f64_in(0.0..1.0);
        tk_assert!((a + b).norm() <= a.norm() + b.norm() + 1e-9);
        let p = a.lerp(b, t);
        tk_assert!(a.distance(p) + p.distance(b) <= a.distance(b) + 1e-6);
        Ok(())
    });
}
