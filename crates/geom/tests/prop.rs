//! Property-based tests for the geometry primitives.

use mg_geom::{lens_area, PreclusionRule, RegionModel, Vec2};
use proptest::prelude::*;

proptest! {
    /// The lens area is symmetric in its radii.
    #[test]
    fn lens_is_symmetric(r1 in 0.0..1000.0f64, r2 in 0.0..1000.0f64, d in 0.0..3000.0f64) {
        let a = lens_area(r1, r2, d);
        let b = lens_area(r2, r1, d);
        prop_assert!((a - b).abs() <= 1e-6 * a.abs().max(1.0));
    }

    /// The lens can never exceed either disk, and is never negative.
    #[test]
    fn lens_is_bounded(r1 in 0.0..1000.0f64, r2 in 0.0..1000.0f64, d in 0.0..3000.0f64) {
        let lens = lens_area(r1, r2, d);
        let a1 = std::f64::consts::PI * r1 * r1;
        let a2 = std::f64::consts::PI * r2 * r2;
        prop_assert!(lens >= 0.0);
        prop_assert!(lens <= a1.min(a2) + 1e-6);
    }

    /// Moving the circles apart never grows the overlap.
    #[test]
    fn lens_monotone_in_distance(
        r1 in 1.0..800.0f64,
        r2 in 1.0..800.0f64,
        d in 0.0..1500.0f64,
        delta in 0.0..500.0f64,
    ) {
        prop_assert!(lens_area(r1, r2, d + delta) <= lens_area(r1, r2, d) + 1e-9);
    }

    /// Monte-Carlo cross-check of the analytic lens area.
    #[test]
    fn lens_matches_monte_carlo(r1 in 50.0..300.0f64, r2 in 50.0..300.0f64, d in 0.0..500.0f64) {
        let analytic = lens_area(r1, r2, d);
        // Sample the bounding box of the smaller circle.
        let (rs, center_s, center_other, ro) = if r1 <= r2 {
            (r1, Vec2::ZERO, Vec2::new(d, 0.0), r2)
        } else {
            (r2, Vec2::new(d, 0.0), Vec2::ZERO, r1)
        };
        let mut hits = 0u32;
        let n = 20_000u32;
        // Deterministic low-discrepancy-ish sampling (golden-ratio lattice).
        for i in 0..n {
            let u = (i as f64 * 0.754877666246693) % 1.0;
            let v = (i as f64 * 0.569840290998053) % 1.0;
            let p = Vec2::new(
                center_s.x - rs + 2.0 * rs * u,
                center_s.y - rs + 2.0 * rs * v,
            );
            if p.distance(center_s) <= rs && p.distance(center_other) <= ro {
                hits += 1;
            }
        }
        let estimate = hits as f64 / n as f64 * 4.0 * rs * rs;
        let tol = 0.05 * (std::f64::consts::PI * rs * rs) + 50.0;
        prop_assert!(
            (estimate - analytic).abs() < tol,
            "analytic {analytic}, monte-carlo {estimate}"
        );
    }

    /// Region models always produce valid probabilities and a consistent
    /// partition, for every preclusion rule.
    #[test]
    fn region_model_invariants(
        d in 0.0..1200.0f64,
        cs in 100.0..900.0f64,
        a1f in 0.0..10.0f64,
        a4f in 0.0..10.0f64,
    ) {
        for rule in [
            PreclusionRule::Mirror,
            PreclusionRule::Centroid,
            PreclusionRule::Calibrated { a1_over_a2: a1f, a4_over_a5: a4f },
        ] {
            let m = RegionModel::new(d, cs, rule);
            let disk = std::f64::consts::PI * cs * cs;
            prop_assert!((m.a2 + m.a3 - disk).abs() < 1e-6 * disk.max(1.0));
            prop_assert!((m.a5 + m.a3 - disk).abs() < 1e-6 * disk.max(1.0));
            for r in [m.ratio_a1(), m.ratio_a2(), m.ratio_a5()] {
                prop_assert!((0.0..=1.0).contains(&r), "{rule:?}: ratio {r}");
            }
            prop_assert!((m.ratio_a1() + m.ratio_a2() - 1.0).abs() < 1e-9
                || (m.ratio_a1() == 0.0 && m.ratio_a2() == 0.0));
        }
    }

    /// Vector algebra: |a+b| ≤ |a| + |b| and lerp stays on the segment.
    #[test]
    fn vector_triangle_inequality(
        ax in -1e3..1e3f64, ay in -1e3..1e3f64,
        bx in -1e3..1e3f64, by in -1e3..1e3f64,
        t in 0.0..1.0f64,
    ) {
        let a = Vec2::new(ax, ay);
        let b = Vec2::new(bx, by);
        prop_assert!((a + b).norm() <= a.norm() + b.norm() + 1e-9);
        let p = a.lerp(b, t);
        prop_assert!(a.distance(p) + p.distance(b) <= a.distance(b) + 1e-6);
    }
}
