//! Journal I/O: formats, streaming readers/writers, and the binary codec.
//!
//! The observation journal is the currency of the whole pipeline — the
//! replay cache tier, the CLI's `--record`/`--replay` files, the wire
//! format a future streaming daemon would speak. This module makes the
//! *format* a first-class, swappable concern instead of a method baked into
//! [`ObsJournal`]:
//!
//! * [`JournalFormat`] — the two on-disk codecs ([`Jsonl`] for debugging and
//!   export, [`Binary`] for production), with magic-based auto-detection.
//! * [`JournalCodec`] — whole-journal encode/decode behind one trait, so
//!   both formats are interchangeable at every call site.
//! * [`JournalWriter`] — streaming, event-at-a-time encoding (it is an
//!   [`ObsSink`], so a recorder can write straight through it), finished by
//!   an atomic tmp+rename [`JournalWriter::save`].
//! * [`JournalReader`] — sniffs the format, validates the container, then
//!   decodes lazily: [`JournalReader::events`] streams one event at a time
//!   and [`JournalReader::vantage_events`] uses the binary index block to
//!   decode *only* one vantage's events, without a full scan.
//!
//! # Binary format v1
//!
//! Following the `dot15d4-frame` idiom — fixed headers plus in-place field
//! views over one buffer, no intermediate frame structs — the binary layout
//! is a single contiguous buffer of five sections:
//!
//! ```text
//! header   magic "MGOBSJ" | version u16 | ObsMeta (seed as a real u64)
//! events   per event: tag byte, varint node ids, zigzag-varint timestamp
//!          deltas, varint refs into the two tables below
//! frames   interned frame table (each distinct frame encoded once)
//! ranging  interned ranging-vector table (distances as raw f64 bits)
//! index    per-vantage event offsets + delta bases, plus the shared
//!          Ranging list — the O(1) `for_vantage` projection
//! trailer  events_end u64 | index_off u64 | total_len u64 | fnv64 | "MGE1"
//! ```
//!
//! Timestamps are encoded as zigzag varint deltas against the previous
//! event's primary instant (wrapping 64-bit arithmetic, so the round trip
//! is exact for *any* `u64` pair). Frames and ranging vectors are interned:
//! a tagged RTS decoded at thirty nodes costs one table entry plus thirty
//! 2-byte references, which is where the ≥5× size win over JSONL comes
//! from. The trailer pins the total length and an FNV-1a 64 checksum over
//! everything before it, so truncation and bit rot are *detected* — a
//! damaged journal yields a typed [`JournalError`], never a silent partial
//! read.
//!
//! Versioning: the `version` field is bumped on any layout change; readers
//! reject versions they do not know ([`JournalError::Version`]) instead of
//! guessing. JSONL journals carry no version — their schema is the
//! `mg_trace::json` rendering of [`ObsMeta`] and [`Obs`], kept stable as
//! the debug/export format (including the seed-as-decimal-string quirk).
//!
//! [`Jsonl`]: JournalFormat::Jsonl
//! [`Binary`]: JournalFormat::Binary

use crate::{obs_from_json, obs_to_json, NodeId, Obs, ObsJournal, ObsMeta, ObsSink};
use mg_dcf::{Dest, Frame, FrameKind, MacSdu, RtsFields};
use mg_sim::{SimDuration, SimTime};
use mg_trace::json::Json;
use std::collections::HashMap;
use std::path::Path;

/// First bytes of every binary journal.
const MAGIC: &[u8; 6] = b"MGOBSJ";
/// Last bytes of every binary journal (part of the fixed-width trailer).
const END_MAGIC: &[u8; 4] = b"MGE1";
/// Current binary layout version.
const VERSION: u16 = 1;
/// Trailer size: three u64 section fields + fnv64 checksum + end magic.
const TRAILER: usize = 8 * 4 + END_MAGIC.len();

/// Event tag bytes (the carrier-sense edge state is folded into the tag).
const TAG_EDGE_IDLE: u8 = 0;
const TAG_EDGE_BUSY: u8 = 1;
const TAG_TX: u8 = 2;
const TAG_RX: u8 = 3;
const TAG_GARBLE: u8 = 4;
const TAG_RNG: u8 = 5;

/// Frame flag byte: kind in bits 0-1, destination modes in bits 2-3.
const KIND_RTS: u8 = 0;
const KIND_CTS: u8 = 1;
const KIND_DATA: u8 = 2;
const KIND_ACK: u8 = 3;
const FLAG_DST_BCAST: u8 = 1 << 2;
const FLAG_SDU_BCAST: u8 = 1 << 3;

/// An on-disk journal encoding.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum JournalFormat {
    /// Line-oriented JSON: meta header line, one event per line. The
    /// human-readable debug/export codec; diffs cleanly.
    Jsonl,
    /// Framed binary v1: compact, checksummed, with a per-vantage index.
    /// The production codec.
    Binary,
}

impl JournalFormat {
    /// Parses a CLI/user-facing format name (`"jsonl"` or `"bin"`).
    pub fn parse(s: &str) -> Option<JournalFormat> {
        match s.trim().to_ascii_lowercase().as_str() {
            "jsonl" => Some(JournalFormat::Jsonl),
            "bin" | "binary" => Some(JournalFormat::Binary),
            _ => None,
        }
    }

    /// The user-facing name (`"jsonl"` / `"bin"`).
    pub fn name(self) -> &'static str {
        match self {
            JournalFormat::Jsonl => "jsonl",
            JournalFormat::Binary => "bin",
        }
    }

    /// Detects the format of raw journal bytes by magic sniffing: anything
    /// starting with the binary magic is [`Binary`], everything else is
    /// treated as (and then validated as) [`Jsonl`].
    ///
    /// [`Binary`]: JournalFormat::Binary
    /// [`Jsonl`]: JournalFormat::Jsonl
    pub fn sniff(bytes: &[u8]) -> JournalFormat {
        if bytes.len() >= MAGIC.len() && &bytes[..MAGIC.len()] == MAGIC {
            JournalFormat::Binary
        } else {
            JournalFormat::Jsonl
        }
    }

    /// The whole-journal codec for this format.
    pub fn codec(self) -> &'static dyn JournalCodec {
        match self {
            JournalFormat::Jsonl => &JsonlCodec,
            JournalFormat::Binary => &BinaryCodec,
        }
    }
}

impl std::fmt::Display for JournalFormat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Why a journal could not be read. Every decode failure is typed — a
/// damaged journal is reported, never silently truncated or misparsed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JournalError {
    /// The underlying file could not be read.
    Io(String),
    /// The byte length disagrees with the length pinned in the trailer
    /// (or the buffer is too short to hold a journal at all).
    Truncated {
        /// Length the trailer (or the minimum layout) requires.
        expected: u64,
        /// Length actually present.
        actual: u64,
    },
    /// The FNV-1a 64 checksum over the body does not match the trailer.
    Checksum {
        /// Checksum stored in the trailer.
        expected: u64,
        /// Checksum recomputed from the bytes.
        actual: u64,
    },
    /// The binary layout version is newer than this reader understands.
    Version {
        /// Version found in the header.
        found: u16,
    },
    /// Structurally invalid binary content at `offset`.
    Corrupt {
        /// Byte offset where decoding failed.
        offset: usize,
        /// What went wrong.
        what: String,
    },
    /// Invalid JSONL content on `line` (1-based).
    Syntax {
        /// Line number of the offending line.
        line: usize,
        /// What went wrong.
        what: String,
    },
}

impl std::fmt::Display for JournalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JournalError::Io(e) => write!(f, "journal I/O error: {e}"),
            JournalError::Truncated { expected, actual } => {
                write!(f, "journal truncated: {actual} bytes, expected {expected}")
            }
            JournalError::Checksum { expected, actual } => write!(
                f,
                "journal checksum mismatch: stored {expected:#018x}, computed {actual:#018x}"
            ),
            JournalError::Version { found } => {
                write!(f, "unsupported binary journal version {found} (reader knows {VERSION})")
            }
            JournalError::Corrupt { offset, what } => {
                write!(f, "corrupt journal at byte {offset}: {what}")
            }
            JournalError::Syntax { line, what } => {
                write!(f, "journal line {line}: {what}")
            }
        }
    }
}

impl std::error::Error for JournalError {}

/// Whole-journal encode/decode for one [`JournalFormat`]. The streaming
/// layer ([`JournalWriter`]/[`JournalReader`]) is built on the same frame
/// encoders; this trait is the convenient in-memory face of it.
pub trait JournalCodec {
    /// The format this codec implements.
    fn format(&self) -> JournalFormat;

    /// Serializes the journal (deterministic: equal journals encode to
    /// byte-identical buffers).
    fn encode(&self, journal: &ObsJournal) -> Vec<u8>;

    /// Decodes a journal, strictly: any structural damage is an error.
    fn decode(&self, bytes: &[u8]) -> Result<ObsJournal, JournalError>;
}

/// The JSONL debug/export codec (meta line + one event per line).
pub struct JsonlCodec;

impl JournalCodec for JsonlCodec {
    fn format(&self) -> JournalFormat {
        JournalFormat::Jsonl
    }

    fn encode(&self, journal: &ObsJournal) -> Vec<u8> {
        journal.to_jsonl().into_bytes()
    }

    fn decode(&self, bytes: &[u8]) -> Result<ObsJournal, JournalError> {
        JournalReader::from_bytes(bytes.to_vec())?.read_journal()
    }
}

/// The framed binary v1 production codec.
pub struct BinaryCodec;

impl JournalCodec for BinaryCodec {
    fn format(&self) -> JournalFormat {
        JournalFormat::Binary
    }

    fn encode(&self, journal: &ObsJournal) -> Vec<u8> {
        let mut w = JournalWriter::new(JournalFormat::Binary, journal.meta());
        for o in journal.events() {
            w.push(o);
        }
        w.finish()
    }

    fn decode(&self, bytes: &[u8]) -> Result<ObsJournal, JournalError> {
        let reader = JournalReader::from_bytes(bytes.to_vec())?;
        if reader.format() != JournalFormat::Binary {
            return Err(JournalError::Corrupt {
                offset: 0,
                what: "not a binary journal (magic missing)".into(),
            });
        }
        reader.read_journal()
    }
}

// ---------------------------------------------------------------------------
// Primitive encoders
// ---------------------------------------------------------------------------

fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Zigzag over a *wrapping* u64 difference: exact for any pair of `u64`
/// instants, short for small forward or backward steps.
fn put_time_delta(out: &mut Vec<u8>, prev: u64, t: u64) {
    let d = t.wrapping_sub(prev) as i64;
    put_varint(out, ((d << 1) ^ (d >> 63)) as u64);
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
    /// Hard stop for this cursor (section end), so a corrupt varint can
    /// never read into a neighboring section.
    end: usize,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8], pos: usize, end: usize) -> Cursor<'a> {
        Cursor { bytes, pos, end }
    }

    fn corrupt(&self, what: impl Into<String>) -> JournalError {
        JournalError::Corrupt { offset: self.pos, what: what.into() }
    }

    fn u8(&mut self) -> Result<u8, JournalError> {
        if self.pos >= self.end {
            return Err(self.corrupt("unexpected end of section"));
        }
        let b = self.bytes[self.pos];
        self.pos += 1;
        Ok(b)
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], JournalError> {
        if self.end - self.pos < n {
            return Err(self.corrupt(format!("{n} bytes needed, section ends")));
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn varint(&mut self) -> Result<u64, JournalError> {
        let mut v: u64 = 0;
        for shift in (0..64).step_by(7) {
            let b = self.u8()?;
            v |= u64::from(b & 0x7F) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
        }
        Err(self.corrupt("varint longer than 64 bits"))
    }

    fn time_delta(&mut self, prev: u64) -> Result<u64, JournalError> {
        let z = self.varint()?;
        let d = ((z >> 1) as i64) ^ -((z & 1) as i64);
        Ok(prev.wrapping_add(d as u64))
    }

    fn u64_le(&mut self) -> Result<u64, JournalError> {
        let s = self.take(8)?;
        Ok(u64::from_le_bytes(s.try_into().expect("8 bytes")))
    }

    fn f64_le(&mut self) -> Result<f64, JournalError> {
        Ok(f64::from_bits(self.u64_le()?))
    }

    fn string(&mut self) -> Result<String, JournalError> {
        let n = self.varint()? as usize;
        let pos = self.pos;
        let s = self.take(n)?;
        std::str::from_utf8(s)
            .map(str::to_string)
            .map_err(|e| JournalError::Corrupt { offset: pos, what: format!("bad utf-8: {e}") })
    }
}

/// FNV-1a 64 (same constants as mg-runner's key hash; reimplemented here so
/// mg-obs stays dependency-light).
fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

// ---------------------------------------------------------------------------
// Frame / ranging-vector encoders (table entry payloads)
// ---------------------------------------------------------------------------

fn encode_frame(out: &mut Vec<u8>, f: &Frame) {
    let mut flags = match &f.kind {
        FrameKind::Rts(_) => KIND_RTS,
        FrameKind::Cts => KIND_CTS,
        FrameKind::Data { .. } => KIND_DATA,
        FrameKind::Ack => KIND_ACK,
    };
    if f.dst == Dest::Broadcast {
        flags |= FLAG_DST_BCAST;
    }
    if let FrameKind::Data { sdu } = &f.kind {
        if sdu.dst == Dest::Broadcast {
            flags |= FLAG_SDU_BCAST;
        }
    }
    out.push(flags);
    put_varint(out, f.src as u64);
    if let Dest::Unicast(n) = f.dst {
        put_varint(out, n as u64);
    }
    put_varint(out, f.duration.as_nanos());
    match &f.kind {
        FrameKind::Rts(r) => {
            put_varint(out, u64::from(r.seq_off_wire));
            out.push(r.attempt);
            out.extend_from_slice(&r.md);
        }
        FrameKind::Data { sdu } => {
            put_varint(out, sdu.id);
            put_varint(out, u64::from(sdu.payload_len));
            if let Dest::Unicast(n) = sdu.dst {
                put_varint(out, n as u64);
            }
        }
        FrameKind::Cts | FrameKind::Ack => {}
    }
}

fn decode_frame(c: &mut Cursor<'_>) -> Result<Frame, JournalError> {
    let flags = c.u8()?;
    let src = c.varint()? as NodeId;
    let dst = if flags & FLAG_DST_BCAST != 0 {
        Dest::Broadcast
    } else {
        Dest::Unicast(c.varint()? as NodeId)
    };
    let duration = SimDuration::from_nanos(c.varint()?);
    let kind = match flags & 0x3 {
        KIND_RTS => {
            let seq = c.varint()?;
            let seq_off_wire = u16::try_from(seq)
                .map_err(|_| c.corrupt(format!("rts seq {seq} exceeds u16")))?;
            let attempt = c.u8()?;
            let md: [u8; 16] = c.take(16)?.try_into().expect("16 bytes");
            FrameKind::Rts(RtsFields { seq_off_wire, attempt, md })
        }
        KIND_CTS => FrameKind::Cts,
        KIND_DATA => {
            let id = c.varint()?;
            let len = c.varint()?;
            let payload_len = u16::try_from(len)
                .map_err(|_| c.corrupt(format!("payload length {len} exceeds u16")))?;
            let sdu_dst = if flags & FLAG_SDU_BCAST != 0 {
                Dest::Broadcast
            } else {
                Dest::Unicast(c.varint()? as NodeId)
            };
            FrameKind::Data { sdu: MacSdu { id, dst: sdu_dst, payload_len } }
        }
        _ => FrameKind::Ack,
    };
    Ok(Frame { src, dst, duration, kind })
}

fn encode_ranging_vec(out: &mut Vec<u8>, to: &[(NodeId, f64)]) {
    put_varint(out, to.len() as u64);
    for &(v, d) in to {
        put_varint(out, v as u64);
        out.extend_from_slice(&d.to_bits().to_le_bytes());
    }
}

fn decode_ranging_vec(c: &mut Cursor<'_>) -> Result<Vec<(NodeId, f64)>, JournalError> {
    let n = c.varint()? as usize;
    if n > (c.end - c.pos) / 9 {
        // Each pair is at least 9 bytes; reject absurd counts before
        // allocating.
        return Err(c.corrupt(format!("ranging vector claims {n} pairs")));
    }
    let mut to = Vec::with_capacity(n);
    for _ in 0..n {
        let v = c.varint()? as NodeId;
        let d = c.f64_le()?;
        to.push((v, d));
    }
    Ok(to)
}

/// The node an event belongs to for per-vantage projection, or `None` for
/// shared [`Obs::Ranging`] events. Must agree with
/// [`ObsJournal::for_vantage`].
fn projection_node(o: &Obs) -> Option<NodeId> {
    match o {
        Obs::ChannelEdge { node, .. } => Some(*node),
        Obs::TxStart { src, .. } => Some(*src),
        Obs::Decoded { at, .. } => Some(*at),
        Obs::Garbled { at, .. } => Some(*at),
        Obs::Ranging { .. } => None,
    }
}

/// The primary instant of an event — the running delta base of the stream.
fn primary_time(o: &Obs) -> u64 {
    match o {
        Obs::ChannelEdge { at, .. } => at.as_nanos(),
        Obs::TxStart { at, .. } => at.as_nanos(),
        Obs::Decoded { start, .. } => start.as_nanos(),
        Obs::Garbled { now, .. } => now.as_nanos(),
        Obs::Ranging { at, .. } => at.as_nanos(),
    }
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

/// A streaming, format-agnostic journal encoder.
///
/// Events are encoded as they are pushed — the writer never materializes an
/// [`ObsJournal`] — and [`JournalWriter::finish`] appends the format's
/// closing sections (for binary: the interned tables, the per-vantage
/// index, and the checksummed trailer). It implements [`ObsSink`], so any
/// observation producer can write a journal directly.
pub struct JournalWriter {
    meta: ObsMeta,
    inner: WriterInner,
    n_events: u64,
}

enum WriterInner {
    Jsonl(String),
    Binary(Box<BinWriter>),
}

struct BinWriter {
    buf: Vec<u8>,
    events_start: usize,
    prev_time: u64,
    /// Interned encodings → table id, plus the table in insertion order.
    frames: HashMap<Vec<u8>, u64>,
    frame_order: Vec<Vec<u8>>,
    rangings: HashMap<Vec<u8>, u64>,
    ranging_order: Vec<Vec<u8>>,
    /// Index entries: (offset into the events section, delta base at that
    /// offset). `shared` holds the Ranging events every vantage projection
    /// includes; `per_vantage[i]` follows `meta.vantages[i]`.
    shared: Vec<(u64, u64)>,
    per_vantage: Vec<Vec<(u64, u64)>>,
}

impl JournalWriter {
    /// A writer for the given format and run identity.
    pub fn new(format: JournalFormat, meta: &ObsMeta) -> JournalWriter {
        let inner = match format {
            JournalFormat::Jsonl => {
                let mut text = meta.to_json().render();
                text.push('\n');
                WriterInner::Jsonl(text)
            }
            JournalFormat::Binary => {
                let mut buf = Vec::with_capacity(4096);
                buf.extend_from_slice(MAGIC);
                buf.extend_from_slice(&VERSION.to_le_bytes());
                put_varint(&mut buf, meta.tagged as u64);
                put_varint(&mut buf, meta.vantages.len() as u64);
                for &v in &meta.vantages {
                    put_varint(&mut buf, v as u64);
                }
                buf.extend_from_slice(&meta.pair_distance.to_bits().to_le_bytes());
                // The one place the seed is stored as what it is: a u64.
                buf.extend_from_slice(&meta.seed.to_le_bytes());
                put_varint(&mut buf, meta.params.len() as u64);
                for (k, v) in &meta.params {
                    put_varint(&mut buf, k.len() as u64);
                    buf.extend_from_slice(k.as_bytes());
                    put_varint(&mut buf, v.len() as u64);
                    buf.extend_from_slice(v.as_bytes());
                }
                let events_start = buf.len();
                WriterInner::Binary(Box::new(BinWriter {
                    buf,
                    events_start,
                    prev_time: 0,
                    frames: HashMap::new(),
                    frame_order: Vec::new(),
                    rangings: HashMap::new(),
                    ranging_order: Vec::new(),
                    shared: Vec::new(),
                    per_vantage: vec![Vec::new(); meta.vantages.len()],
                }))
            }
        };
        JournalWriter { meta: meta.clone(), inner, n_events: 0 }
    }

    /// The journal header this writer was opened with.
    pub fn meta(&self) -> &ObsMeta {
        &self.meta
    }

    /// The format being written.
    pub fn format(&self) -> JournalFormat {
        match &self.inner {
            WriterInner::Jsonl(_) => JournalFormat::Jsonl,
            WriterInner::Binary(_) => JournalFormat::Binary,
        }
    }

    /// Events written so far.
    pub fn len(&self) -> usize {
        self.n_events as usize
    }

    /// True when no event has been written yet.
    pub fn is_empty(&self) -> bool {
        self.n_events == 0
    }

    /// Encodes one event (events must be pushed in virtual-time order, as
    /// the recorder produces them).
    pub fn push(&mut self, o: &Obs) {
        self.n_events += 1;
        match &mut self.inner {
            WriterInner::Jsonl(text) => {
                text.push_str(&obs_to_json(o).render());
                text.push('\n');
            }
            WriterInner::Binary(w) => w.push(&self.meta, o),
        }
    }

    /// Finishes the journal and returns its bytes (for binary: tables,
    /// index block and checksummed trailer are appended here).
    pub fn finish(self) -> Vec<u8> {
        match self.inner {
            WriterInner::Jsonl(text) => text.into_bytes(),
            WriterInner::Binary(w) => w.finish(self.n_events),
        }
    }

    /// Finishes the journal and writes it atomically: bytes go to
    /// `<path>.tmp.<pid>`, then a rename over `path`. Parent directories
    /// are created as needed.
    pub fn save(self, path: &Path) -> std::io::Result<()> {
        write_atomic(path, &self.finish())
    }
}

impl ObsSink for JournalWriter {
    fn ingest(&mut self, obs: &Obs) {
        self.push(obs);
    }
}

impl BinWriter {
    fn intern(
        map: &mut HashMap<Vec<u8>, u64>,
        order: &mut Vec<Vec<u8>>,
        encoded: Vec<u8>,
    ) -> u64 {
        if let Some(&id) = map.get(&encoded) {
            return id;
        }
        let id = order.len() as u64;
        order.push(encoded.clone());
        map.insert(encoded, id);
        id
    }

    fn push(&mut self, meta: &ObsMeta, o: &Obs) {
        let offset = (self.buf.len() - self.events_start) as u64;
        let base = self.prev_time;
        match projection_node(o) {
            None => self.shared.push((offset, base)),
            Some(n) => {
                for (i, &v) in meta.vantages.iter().enumerate() {
                    if v == n {
                        self.per_vantage[i].push((offset, base));
                    }
                }
            }
        }
        let buf = &mut self.buf;
        match o {
            Obs::ChannelEdge { node, busy, at } => {
                buf.push(if *busy { TAG_EDGE_BUSY } else { TAG_EDGE_IDLE });
                put_varint(buf, *node as u64);
                put_time_delta(buf, base, at.as_nanos());
            }
            Obs::TxStart { src, frame, at, end } => {
                buf.push(TAG_TX);
                put_varint(buf, *src as u64);
                put_time_delta(buf, base, at.as_nanos());
                put_varint(buf, end.as_nanos().wrapping_sub(at.as_nanos()));
                let mut enc = Vec::new();
                encode_frame(&mut enc, frame);
                let id = Self::intern(&mut self.frames, &mut self.frame_order, enc);
                put_varint(&mut self.buf, id);
            }
            Obs::Decoded { at, frame, start, end } => {
                buf.push(TAG_RX);
                put_varint(buf, *at as u64);
                put_time_delta(buf, base, start.as_nanos());
                put_varint(buf, end.as_nanos().wrapping_sub(start.as_nanos()));
                let mut enc = Vec::new();
                encode_frame(&mut enc, frame);
                let id = Self::intern(&mut self.frames, &mut self.frame_order, enc);
                put_varint(&mut self.buf, id);
            }
            Obs::Garbled { at, now } => {
                buf.push(TAG_GARBLE);
                put_varint(buf, *at as u64);
                put_time_delta(buf, base, now.as_nanos());
            }
            Obs::Ranging { from, to, at } => {
                buf.push(TAG_RNG);
                put_varint(buf, *from as u64);
                put_time_delta(buf, base, at.as_nanos());
                let mut enc = Vec::new();
                encode_ranging_vec(&mut enc, to);
                let id = Self::intern(&mut self.rangings, &mut self.ranging_order, enc);
                put_varint(&mut self.buf, id);
            }
        }
        self.prev_time = primary_time(o);
    }

    fn finish(mut self, n_events: u64) -> Vec<u8> {
        let events_end = self.buf.len() as u64;
        // Frame table, then ranging table.
        put_varint(&mut self.buf, self.frame_order.len() as u64);
        for enc in &self.frame_order {
            self.buf.extend_from_slice(enc);
        }
        put_varint(&mut self.buf, self.ranging_order.len() as u64);
        for enc in &self.ranging_order {
            self.buf.extend_from_slice(enc);
        }
        // Index block: event count, shared Ranging list, one list per
        // vantage (in meta order). Entries are (offset, delta base), both
        // delta-encoded against the previous entry of the same list.
        let index_off = self.buf.len() as u64;
        put_varint(&mut self.buf, n_events);
        let lists = std::iter::once(&self.shared).chain(self.per_vantage.iter());
        for list in lists {
            put_varint(&mut self.buf, list.len() as u64);
            let (mut prev_off, mut prev_base) = (0u64, 0u64);
            for &(off, base) in list {
                put_varint(&mut self.buf, off - prev_off);
                put_time_delta(&mut self.buf, prev_base, base);
                prev_off = off;
                prev_base = base;
            }
        }
        // Trailer: section offsets, pinned total length, checksum over
        // everything before the checksum field, end magic.
        let total_len = (self.buf.len() + TRAILER) as u64;
        self.buf.extend_from_slice(&events_end.to_le_bytes());
        self.buf.extend_from_slice(&index_off.to_le_bytes());
        self.buf.extend_from_slice(&total_len.to_le_bytes());
        let checksum = fnv64(&self.buf);
        self.buf.extend_from_slice(&checksum.to_le_bytes());
        self.buf.extend_from_slice(END_MAGIC);
        self.buf
    }
}

/// Writes `bytes` to `path` atomically (tmp file + rename), creating parent
/// directories as needed — the same discipline as mg-runner's cache.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
    std::fs::write(&tmp, bytes)?;
    std::fs::rename(&tmp, path)
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

/// A validated, lazily-decoding journal reader.
///
/// [`JournalReader::open`]/[`from_bytes`] sniff the format and validate the
/// container up front — for binary journals the trailer length, checksum,
/// header, tables and index are all verified before any event is decoded,
/// so truncation or bit rot surfaces as a typed [`JournalError`] at open
/// time. Event decoding itself is streaming: [`events`] walks the stream
/// one event at a time, [`vantage_events`] decodes only one vantage's
/// events through the index block.
///
/// [`from_bytes`]: JournalReader::from_bytes
/// [`events`]: JournalReader::events
/// [`vantage_events`]: JournalReader::vantage_events
pub struct JournalReader {
    meta: ObsMeta,
    bytes: Vec<u8>,
    inner: ReaderInner,
}

enum ReaderInner {
    Jsonl {
        /// Byte offset of the first event line.
        events_at: usize,
        n_events: usize,
    },
    Binary(Box<BinState>),
}

struct BinState {
    events_start: usize,
    events_end: usize,
    n_events: u64,
    frames: Vec<Frame>,
    rangings: Vec<Vec<(NodeId, f64)>>,
    /// (absolute byte offset, delta base) per indexed event.
    shared: Vec<(usize, u64)>,
    per_vantage: Vec<Vec<(usize, u64)>>,
}

impl JournalReader {
    /// Opens and validates the journal at `path`, auto-detecting its format
    /// by magic sniffing.
    pub fn open(path: &Path) -> Result<JournalReader, JournalError> {
        let bytes = std::fs::read(path)
            .map_err(|e| JournalError::Io(format!("cannot read {}: {e}", path.display())))?;
        JournalReader::from_bytes(bytes)
    }

    /// Validates raw journal bytes, auto-detecting the format.
    pub fn from_bytes(bytes: Vec<u8>) -> Result<JournalReader, JournalError> {
        match JournalFormat::sniff(&bytes) {
            JournalFormat::Binary => Self::from_binary(bytes),
            JournalFormat::Jsonl => Self::from_jsonl_bytes(bytes),
        }
    }

    fn from_jsonl_bytes(bytes: Vec<u8>) -> Result<JournalReader, JournalError> {
        let text = std::str::from_utf8(&bytes)
            .map_err(|e| JournalError::Syntax { line: 1, what: format!("not utf-8: {e}") })?;
        let mut head = None;
        let mut events_at = 0;
        let mut n_events = 0;
        let mut offset = 0;
        for line in text.split_inclusive('\n') {
            offset += line.len();
            if line.trim().is_empty() {
                continue;
            }
            if head.is_none() {
                head = Some(line.trim_end_matches('\n').to_string());
                events_at = offset;
            } else {
                n_events += 1;
            }
        }
        let head = head.ok_or(JournalError::Syntax { line: 1, what: "empty journal".into() })?;
        let meta_json = Json::parse(&head)
            .map_err(|e| JournalError::Syntax { line: 1, what: format!("{e:?}") })?;
        let meta = ObsMeta::from_json(&meta_json)
            .ok_or(JournalError::Syntax { line: 1, what: "not a meta header".into() })?;
        Ok(JournalReader { meta, bytes, inner: ReaderInner::Jsonl { events_at, n_events } })
    }

    fn from_binary(bytes: Vec<u8>) -> Result<JournalReader, JournalError> {
        let min = MAGIC.len() + 2 + TRAILER;
        if bytes.len() < min {
            return Err(JournalError::Truncated {
                expected: min as u64,
                actual: bytes.len() as u64,
            });
        }
        // Version first: a newer layout's trailer cannot be trusted by this
        // reader, so it must be rejected before any trailer interpretation.
        let version =
            u16::from_le_bytes(bytes[MAGIC.len()..MAGIC.len() + 2].try_into().expect("2 bytes"));
        if version != VERSION {
            return Err(JournalError::Version { found: version });
        }
        let len = bytes.len();
        if &bytes[len - END_MAGIC.len()..] != END_MAGIC {
            // A clean truncation chops the end magic off first.
            return Err(JournalError::Truncated { expected: len as u64 + 1, actual: len as u64 });
        }
        let trailer_at = len - TRAILER;
        let mut t = Cursor::new(&bytes, trailer_at, len);
        let events_end = t.u64_le()? as usize;
        let index_off = t.u64_le()? as usize;
        let total_len = t.u64_le()?;
        if total_len != len as u64 {
            return Err(JournalError::Truncated { expected: total_len, actual: len as u64 });
        }
        let stored_sum = t.u64_le()?;
        let actual_sum = fnv64(&bytes[..len - 12]);
        if stored_sum != actual_sum {
            return Err(JournalError::Checksum { expected: stored_sum, actual: actual_sum });
        }

        // Header → meta.
        let mut c = Cursor::new(&bytes, MAGIC.len() + 2, trailer_at);
        let tagged = c.varint()? as NodeId;
        let nv = c.varint()? as usize;
        if nv > trailer_at {
            return Err(c.corrupt(format!("vantage count {nv} exceeds journal size")));
        }
        let mut vantages = Vec::with_capacity(nv);
        for _ in 0..nv {
            vantages.push(c.varint()? as NodeId);
        }
        let pair_distance = c.f64_le()?;
        let seed = c.u64_le()?;
        let np = c.varint()? as usize;
        if np > trailer_at {
            return Err(c.corrupt(format!("param count {np} exceeds journal size")));
        }
        let mut params = Vec::with_capacity(np);
        for _ in 0..np {
            let k = c.string()?;
            let v = c.string()?;
            params.push((k, v));
        }
        let meta = ObsMeta { tagged, vantages, pair_distance, seed, params };
        let events_start = c.pos;
        if events_end < events_start || index_off < events_end || index_off > trailer_at {
            return Err(c.corrupt(format!(
                "inconsistent section offsets (events {events_start}..{events_end}, index {index_off})"
            )));
        }

        // Tables live between the events section and the index block.
        let mut c = Cursor::new(&bytes, events_end, index_off);
        let nf = c.varint()? as usize;
        if nf > index_off - events_end {
            return Err(c.corrupt(format!("frame table claims {nf} entries")));
        }
        let mut frames = Vec::with_capacity(nf);
        for _ in 0..nf {
            frames.push(decode_frame(&mut c)?);
        }
        let nr = c.varint()? as usize;
        if nr > index_off - events_end {
            return Err(c.corrupt(format!("ranging table claims {nr} entries")));
        }
        let mut rangings = Vec::with_capacity(nr);
        for _ in 0..nr {
            rangings.push(decode_ranging_vec(&mut c)?);
        }
        if c.pos != index_off {
            return Err(c.corrupt("tables do not end at the index block".to_string()));
        }

        // Index block.
        let mut c = Cursor::new(&bytes, index_off, trailer_at);
        let n_events = c.varint()?;
        let mut lists: Vec<Vec<(usize, u64)>> = Vec::with_capacity(meta.vantages.len() + 1);
        for _ in 0..=meta.vantages.len() {
            let n = c.varint()? as usize;
            if n as u64 > n_events {
                return Err(c.corrupt(format!("index list claims {n} of {n_events} events")));
            }
            let mut list = Vec::with_capacity(n);
            let (mut off, mut base) = (0u64, 0u64);
            for i in 0..n {
                let d = c.varint()?;
                off = if i == 0 { d } else { off + d };
                base = c.time_delta(base)?;
                let abs = events_start as u64 + off;
                if abs >= events_end as u64 {
                    return Err(c.corrupt(format!("index offset {off} past events section")));
                }
                list.push((abs as usize, base));
            }
            lists.push(list);
        }
        if c.pos != trailer_at {
            return Err(c.corrupt("index block does not end at the trailer".to_string()));
        }
        let shared = lists.remove(0);
        Ok(JournalReader {
            meta,
            bytes,
            inner: ReaderInner::Binary(Box::new(BinState {
                events_start,
                events_end,
                n_events,
                frames,
                rangings,
                shared,
                per_vantage: lists,
            })),
        })
    }

    /// The detected format.
    pub fn format(&self) -> JournalFormat {
        match &self.inner {
            ReaderInner::Jsonl { .. } => JournalFormat::Jsonl,
            ReaderInner::Binary(_) => JournalFormat::Binary,
        }
    }

    /// The journal header.
    pub fn meta(&self) -> &ObsMeta {
        &self.meta
    }

    /// Total journal size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.bytes.len()
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        match &self.inner {
            ReaderInner::Jsonl { n_events, .. } => *n_events,
            ReaderInner::Binary(b) => b.n_events as usize,
        }
    }

    /// True when the journal holds no events.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Streams the journal's events in order, decoding one at a time.
    pub fn events(&self) -> Events<'_> {
        match &self.inner {
            ReaderInner::Jsonl { events_at, .. } => Events(EventsInner::Jsonl {
                // Validated as UTF-8 at open.
                rest: std::str::from_utf8(&self.bytes[*events_at..]).expect("validated utf-8"),
                line: 2,
            }),
            ReaderInner::Binary(b) => Events(EventsInner::Binary {
                state: b,
                bytes: &self.bytes,
                pos: b.events_start,
                prev_time: 0,
                remaining: b.n_events,
            }),
        }
    }

    /// Decodes one event at `pos` given its delta base (binary only).
    fn decode_at(
        &self,
        state: &BinState,
        pos: usize,
        prev_time: u64,
    ) -> Result<(Obs, usize, u64), JournalError> {
        let mut c = Cursor::new(&self.bytes, pos, state.events_end);
        let obs = decode_event(&mut c, state, prev_time)?;
        let t = primary_time(&obs);
        Ok((obs, c.pos, t))
    }

    /// The per-vantage stream, as [`ObsJournal::for_vantage`] defines it:
    /// events observable at `v`, plus every shared [`Obs::Ranging`]
    /// snapshot, in journal order.
    ///
    /// For binary journals of an indexed vantage (one listed in
    /// `meta.vantages`) this decodes **only** the projected events via the
    /// index block — the rest of the stream is never touched. Other
    /// vantages (or JSONL journals) fall back to a full filtered scan.
    pub fn vantage_events(&self, v: NodeId) -> Result<Vec<Obs>, JournalError> {
        if let ReaderInner::Binary(b) = &self.inner {
            if let Some(i) = self.meta.vantages.iter().position(|&x| x == v) {
                // Merge the vantage's list with the shared Ranging list by
                // ascending offset — both are in journal order.
                let (va, sh) = (&b.per_vantage[i], &b.shared);
                let mut out = Vec::with_capacity(va.len() + sh.len());
                let (mut a, mut s) = (0, 0);
                while a < va.len() || s < sh.len() {
                    let take_vantage = match (va.get(a), sh.get(s)) {
                        (Some(&(ao, _)), Some(&(so, _))) => ao < so,
                        (Some(_), None) => true,
                        _ => false,
                    };
                    let &(off, base) = if take_vantage { &va[a] } else { &sh[s] };
                    if take_vantage {
                        a += 1;
                    } else {
                        s += 1;
                    }
                    let (obs, _, _) = self.decode_at(b, off, base)?;
                    out.push(obs);
                }
                return Ok(out);
            }
        }
        let mut out = Vec::new();
        for r in self.events() {
            let o = r?;
            if projection_node(&o).map(|n| n == v).unwrap_or(true) {
                out.push(o);
            }
        }
        Ok(out)
    }

    /// Decodes the whole journal into an in-memory [`ObsJournal`].
    pub fn read_journal(&self) -> Result<ObsJournal, JournalError> {
        let mut j = ObsJournal::new(self.meta.clone());
        for r in self.events() {
            j.push(r?);
        }
        Ok(j)
    }

    /// Streams every event, in order, into `sink` — one decoded event in
    /// flight at a time, the journal never materialized in memory. This is
    /// the single ingest route shared by `detect --replay`, `journal info
    /// --deltas` and the `mgd` daemon. Returns the number of events fed; a
    /// decode error (truncation, bit rot, bad line) aborts with the typed
    /// cause, leaving `sink` partially fed.
    pub fn replay_into(&self, sink: &mut impl ObsSink) -> Result<usize, JournalError> {
        let mut n = 0usize;
        for r in self.events() {
            sink.ingest(&r?);
            n += 1;
        }
        Ok(n)
    }
}

fn decode_event(
    c: &mut Cursor<'_>,
    state: &BinState,
    prev_time: u64,
) -> Result<Obs, JournalError> {
    let tag = c.u8()?;
    match tag {
        TAG_EDGE_IDLE | TAG_EDGE_BUSY => {
            let node = c.varint()? as NodeId;
            let at = c.time_delta(prev_time)?;
            Ok(Obs::ChannelEdge {
                node,
                busy: tag == TAG_EDGE_BUSY,
                at: SimTime::from_nanos(at),
            })
        }
        TAG_TX => {
            let src = c.varint()? as NodeId;
            let at = c.time_delta(prev_time)?;
            let dur = c.varint()?;
            let frame = lookup_frame(c, state)?;
            Ok(Obs::TxStart {
                src,
                frame,
                at: SimTime::from_nanos(at),
                end: SimTime::from_nanos(at.wrapping_add(dur)),
            })
        }
        TAG_RX => {
            let at_node = c.varint()? as NodeId;
            let start = c.time_delta(prev_time)?;
            let dur = c.varint()?;
            let frame = lookup_frame(c, state)?;
            Ok(Obs::Decoded {
                at: at_node,
                frame,
                start: SimTime::from_nanos(start),
                end: SimTime::from_nanos(start.wrapping_add(dur)),
            })
        }
        TAG_GARBLE => {
            let at_node = c.varint()? as NodeId;
            let now = c.time_delta(prev_time)?;
            Ok(Obs::Garbled { at: at_node, now: SimTime::from_nanos(now) })
        }
        TAG_RNG => {
            let from = c.varint()? as NodeId;
            let at = c.time_delta(prev_time)?;
            let id = c.varint()? as usize;
            let to = state
                .rangings
                .get(id)
                .ok_or_else(|| c.corrupt(format!("ranging table id {id} out of range")))?
                .clone();
            Ok(Obs::Ranging { from, to, at: SimTime::from_nanos(at) })
        }
        other => Err(c.corrupt(format!("unknown event tag {other}"))),
    }
}

fn lookup_frame(c: &mut Cursor<'_>, state: &BinState) -> Result<Frame, JournalError> {
    let id = c.varint()? as usize;
    state
        .frames
        .get(id)
        .cloned()
        .ok_or_else(|| c.corrupt(format!("frame table id {id} out of range")))
}

/// Streaming event iterator over a [`JournalReader`] — decodes one event
/// per `next()` call, in journal order. After the first decode error the
/// iterator is exhausted (a damaged journal is never partially trusted).
pub struct Events<'a>(EventsInner<'a>);

enum EventsInner<'a> {
    Jsonl {
        /// Remaining text (event lines).
        rest: &'a str,
        /// 1-based line number of the next line.
        line: usize,
    },
    Binary {
        /// Parsed tables + section bounds.
        state: &'a BinState,
        /// The full journal buffer.
        bytes: &'a [u8],
        /// Next frame offset.
        pos: usize,
        /// Running delta base.
        prev_time: u64,
        /// Events left to decode.
        remaining: u64,
    },
}

impl Iterator for Events<'_> {
    type Item = Result<Obs, JournalError>;

    fn next(&mut self) -> Option<Self::Item> {
        match &mut self.0 {
            EventsInner::Jsonl { rest, line } => loop {
                let cur: &str = rest;
                if cur.is_empty() {
                    return None;
                }
                let (l, tail) = match cur.find('\n') {
                    Some(i) => (&cur[..i], &cur[i + 1..]),
                    None => (cur, ""),
                };
                let this_line = *line;
                *rest = tail;
                *line += 1;
                if l.trim().is_empty() {
                    continue;
                }
                let parsed = match Json::parse(l) {
                    Ok(v) => v,
                    Err(e) => {
                        *rest = "";
                        return Some(Err(JournalError::Syntax {
                            line: this_line,
                            what: format!("{e:?}"),
                        }));
                    }
                };
                return Some(match obs_from_json(&parsed) {
                    Some(o) => Ok(o),
                    None => {
                        *rest = "";
                        Err(JournalError::Syntax { line: this_line, what: "bad event".into() })
                    }
                });
            },
            EventsInner::Binary { state, bytes, pos, prev_time, remaining } => {
                if *remaining == 0 {
                    if *pos != state.events_end {
                        let at = *pos;
                        *pos = state.events_end;
                        return Some(Err(JournalError::Corrupt {
                            offset: at,
                            what: "event count ends before the events section".into(),
                        }));
                    }
                    return None;
                }
                if *pos >= state.events_end {
                    *remaining = 0;
                    return Some(Err(JournalError::Corrupt {
                        offset: *pos,
                        what: "events section ends before the event count".into(),
                    }));
                }
                let mut c = Cursor::new(bytes, *pos, state.events_end);
                match decode_event(&mut c, state, *prev_time) {
                    Ok(o) => {
                        *pos = c.pos;
                        *prev_time = primary_time(&o);
                        *remaining -= 1;
                        Some(Ok(o))
                    }
                    Err(e) => {
                        *remaining = 0;
                        *pos = state.events_end;
                        Some(Err(e))
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Base64 (for embedding binary journals in JSON/text carriers)
// ---------------------------------------------------------------------------

const B64: &[u8; 64] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

/// Standard base64 with padding — how binary journal bytes travel inside
/// JSON carriers (the mg-runner sweep cache stores entries as JSON
/// documents; the journal cache tier wraps the binary codec in this).
pub fn bytes_to_base64(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len().div_ceil(3) * 4);
    for chunk in bytes.chunks(3) {
        let b = [chunk[0], *chunk.get(1).unwrap_or(&0), *chunk.get(2).unwrap_or(&0)];
        let n = (u32::from(b[0]) << 16) | (u32::from(b[1]) << 8) | u32::from(b[2]);
        let enc = [
            B64[(n >> 18) as usize & 63],
            B64[(n >> 12) as usize & 63],
            B64[(n >> 6) as usize & 63],
            B64[n as usize & 63],
        ];
        let keep = chunk.len() + 1;
        for (i, &ch) in enc.iter().enumerate() {
            out.push(if i < keep { ch as char } else { '=' });
        }
    }
    out
}

/// Decodes [`bytes_to_base64`] output; `None` on any malformed input.
pub fn base64_to_bytes(s: &str) -> Option<Vec<u8>> {
    fn val(c: u8) -> Option<u32> {
        match c {
            b'A'..=b'Z' => Some(u32::from(c - b'A')),
            b'a'..=b'z' => Some(u32::from(c - b'a') + 26),
            b'0'..=b'9' => Some(u32::from(c - b'0') + 52),
            b'+' => Some(62),
            b'/' => Some(63),
            _ => None,
        }
    }
    let s = s.as_bytes();
    if !s.len().is_multiple_of(4) {
        return None;
    }
    let mut out = Vec::with_capacity(s.len() / 4 * 3);
    for (i, chunk) in s.chunks_exact(4).enumerate() {
        let last = i == s.len() / 4 - 1;
        let pad = chunk.iter().rev().take_while(|&&c| c == b'=').count();
        if pad > 2 || (pad > 0 && !last) {
            return None;
        }
        let mut n: u32 = 0;
        for &c in &chunk[..4 - pad] {
            n = (n << 6) | val(c)?;
        }
        n <<= 6 * pad as u32;
        let bytes = [(n >> 16) as u8, (n >> 8) as u8, n as u8];
        out.extend_from_slice(&bytes[..3 - pad]);
    }
    Some(out)
}
