//! # mg-obs — the monitor's input alphabet
//!
//! The detection framework of the paper consumes *only* what a co-located
//! process could physically observe at its vantage node: carrier-sense
//! edges, frames it decoded, garbles it perceived, plus the geometry
//! scalars (pair distances) the Section 5 hand-off scheme reads. This crate
//! makes that alphabet first-class:
//!
//! * [`Obs`] — one observable event, free of any reference to the live
//!   simulation (`Medium`, `World`). Anything a [`Monitor`] ever learns
//!   arrives as one of these.
//! * [`ObsSink`] — the single `ingest(&Obs)` entry point detectors expose.
//! * [`ObsJournal`] — a serializable recording of an entire run's `Obs`
//!   stream (atomic tmp+rename writes), so one simulated world can be
//!   **replayed** into arbitrarily many detector configurations with zero
//!   re-simulation.
//! * [`codec`] — the journal I/O layer: [`JournalFormat`] (framed binary v1
//!   as the production codec, JSONL as the debug/export codec),
//!   streaming [`JournalWriter`]/[`JournalReader`], and format
//!   auto-detection by magic sniffing.
//!
//! The JSONL codec follows `mg_trace::json` conventions: insertion-ordered
//! objects, shortest-round-trip `f64` rendering, so `encode ∘ decode ≡ id`
//! byte-for-byte and journals diff cleanly. The binary codec is compact
//! (interned frame/ranging tables, varint timestamp deltas), indexed per
//! vantage, and checksummed so damage is detected rather than silently
//! accepted.
//!
//! [`Monitor`]: https://docs.rs/mg-detect

#![warn(missing_docs)]

pub mod codec;

pub use codec::{
    base64_to_bytes, bytes_to_base64, BinaryCodec, Events, JournalCodec, JournalError,
    JournalFormat, JournalReader, JournalWriter, JsonlCodec,
};

use mg_dcf::{Dest, Frame, FrameKind, MacSdu, RtsFields};
use mg_sim::{SimDuration, SimTime};
use mg_trace::json::Json;
use std::path::Path;

/// Index of a node in the simulation.
pub type NodeId = usize;

/// One event observable at a vantage node — the complete input alphabet of
/// the detection framework.
///
/// Times are absolute virtual instants; frames are carried by value so a
/// replayed detector sees bit-identical contents to a live one.
#[derive(Clone, PartialEq, Debug)]
pub enum Obs {
    /// `node`'s physical carrier-sense state changed at `at`.
    ChannelEdge {
        /// The vantage whose carrier sense toggled.
        node: NodeId,
        /// New state: true = busy.
        busy: bool,
        /// When the edge occurred.
        at: SimTime,
    },
    /// `src` put `frame` on the air at `at`; it will end at `end`.
    TxStart {
        /// The transmitting node.
        src: NodeId,
        /// The frame on the air.
        frame: Frame,
        /// Transmission start.
        at: SimTime,
        /// Transmission end.
        end: SimTime,
    },
    /// `at` decoded `frame` (on air from `start` to `end`).
    Decoded {
        /// The receiving vantage.
        at: NodeId,
        /// The decoded frame.
        frame: Frame,
        /// When the frame's transmission started.
        start: SimTime,
        /// When the frame's transmission ended.
        end: SimTime,
    },
    /// `at` perceived a corrupted (undecodable) frame ending at `now`.
    Garbled {
        /// The vantage that heard the collision.
        at: NodeId,
        /// When the garbled reception ended.
        now: SimTime,
    },
    /// Geometry snapshot: distances from the tagged node `from` to candidate
    /// vantages, sorted by node id. This is the only medium-derived scalar
    /// the detection layer reads — the Section 5 hand-off scheme re-elects
    /// the closest in-range vantage on every tagged RTS.
    Ranging {
        /// The tagged node the distances are measured from.
        from: NodeId,
        /// `(vantage, distance)` pairs, ascending by node id.
        to: Vec<(NodeId, f64)>,
        /// When the snapshot was taken.
        at: SimTime,
    },
}

/// A consumer of [`Obs`] events — the boundary detectors live behind.
pub trait ObsSink {
    /// Feed one observation. Order must follow virtual time.
    fn ingest(&mut self, obs: &Obs);
}

/// Identity and provenance of a recorded run, stored in the journal header.
#[derive(Clone, PartialEq, Debug)]
pub struct ObsMeta {
    /// The tagged (monitored) node.
    pub tagged: NodeId,
    /// Vantage nodes whose observations were recorded, ascending.
    pub vantages: Vec<NodeId>,
    /// Tagged→vantage distance at recording time (static topologies; under
    /// mobility the per-RTS [`Obs::Ranging`] events are authoritative).
    pub pair_distance: f64,
    /// The world seed the run was simulated with.
    pub seed: u64,
    /// Free-form `(key, value)` provenance: topology kind, PM, duration,
    /// rate — whatever the recorder wants future replays to know.
    pub params: Vec<(String, String)>,
}

impl ObsMeta {
    /// Looks up a provenance parameter by key.
    pub fn param(&self, key: &str) -> Option<&str> {
        self.params
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Looks up a provenance parameter and parses it into `T` — the typed
    /// accessor consumers should reach for instead of re-parsing strings at
    /// every call site. `None` when the key is absent *or* malformed.
    pub fn param_parsed<T: std::str::FromStr>(&self, key: &str) -> Option<T> {
        self.param(key)?.parse().ok()
    }

    fn to_json(&self) -> Json {
        Json::obj([
            ("tagged", Json::from(self.tagged as u64)),
            (
                "vantages",
                Json::Arr(self.vantages.iter().map(|&v| Json::from(v as u64)).collect()),
            ),
            ("pair_distance", Json::Num(self.pair_distance)),
            // Decimal string: a full-range u64 seed does not fit a JSON
            // number (f64 loses precision past 2^53).
            ("seed", Json::Str(self.seed.to_string())),
            (
                "params",
                Json::Arr(
                    self.params
                        .iter()
                        .map(|(k, v)| {
                            Json::Arr(vec![Json::Str(k.clone()), Json::Str(v.clone())])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    fn from_json(v: &Json) -> Option<ObsMeta> {
        let vantages = v
            .get("vantages")?
            .as_arr()?
            .iter()
            .map(|n| Some(n.as_u64()? as NodeId))
            .collect::<Option<Vec<_>>>()?;
        let params = v
            .get("params")?
            .as_arr()?
            .iter()
            .map(|p| match p.as_arr()? {
                [k, val] => Some((k.as_str()?.to_string(), val.as_str()?.to_string())),
                _ => None,
            })
            .collect::<Option<Vec<_>>>()?;
        Some(ObsMeta {
            tagged: v.get("tagged")?.as_u64()? as NodeId,
            vantages,
            pair_distance: v.get("pair_distance")?.as_f64()?,
            seed: v.get("seed")?.as_str()?.parse().ok()?,
            params,
        })
    }
}

/// A recorded `Obs` stream: header + chronological events.
///
/// The on-disk encoding is a [`JournalFormat`] — framed binary v1 by
/// default, JSONL for debugging/export — rendered deterministically so
/// equal journals are byte-identical within a format. Writes go through a
/// temporary file and an atomic rename (the same discipline as mg-runner's
/// cache), so a crashed recorder never leaves a half-written journal
/// behind. [`ObsJournal::load`] auto-detects the format by magic sniffing,
/// so old JSONL journals keep working.
#[derive(Clone, PartialEq, Debug)]
pub struct ObsJournal {
    meta: ObsMeta,
    events: Vec<Obs>,
}

impl ObsJournal {
    /// An empty journal for the given run identity.
    pub fn new(meta: ObsMeta) -> ObsJournal {
        ObsJournal {
            meta,
            events: Vec::new(),
        }
    }

    /// The journal header.
    pub fn meta(&self) -> &ObsMeta {
        &self.meta
    }

    /// All recorded events in order.
    pub fn events(&self) -> &[Obs] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Appends one event (must be pushed in virtual-time order).
    pub fn push(&mut self, obs: Obs) {
        self.events.push(obs);
    }

    /// The per-vantage stream: events observable at vantage `v`.
    /// [`Obs::Ranging`] events are shared — every vantage's monitor pool
    /// needs the geometry — so they appear in every stream.
    pub fn for_vantage(&self, v: NodeId) -> impl Iterator<Item = &Obs> {
        self.events.iter().filter(move |o| match o {
            Obs::ChannelEdge { node, .. } => *node == v,
            Obs::TxStart { src, .. } => *src == v,
            Obs::Decoded { at, .. } => *at == v,
            Obs::Garbled { at, .. } => *at == v,
            Obs::Ranging { .. } => true,
        })
    }

    /// Feeds every recorded event, in order, into `sink`.
    pub fn replay(&self, sink: &mut impl ObsSink) {
        for o in &self.events {
            sink.ingest(o);
        }
    }

    /// The whole journal as a single JSON value (for cache codecs).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("meta", self.meta.to_json()),
            ("events", Json::Arr(self.events.iter().map(obs_to_json).collect())),
        ])
    }

    /// Decodes [`ObsJournal::to_json`] output; `None` on any mismatch.
    pub fn from_json(v: &Json) -> Option<ObsJournal> {
        let meta = ObsMeta::from_json(v.get("meta")?)?;
        let events = v
            .get("events")?
            .as_arr()?
            .iter()
            .map(obs_from_json)
            .collect::<Option<Vec<_>>>()?;
        Some(ObsJournal { meta, events })
    }

    /// Deterministic JSONL rendering: meta line, then one event per line.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.meta.to_json().render());
        out.push('\n');
        for o in &self.events {
            out.push_str(&obs_to_json(o).render());
            out.push('\n');
        }
        out
    }

    /// Parses [`ObsJournal::to_jsonl`] output.
    pub fn from_jsonl(text: &str) -> Result<ObsJournal, String> {
        let mut lines = text.lines().enumerate().filter(|(_, l)| !l.trim().is_empty());
        let (_, head) = lines.next().ok_or("empty journal")?;
        let meta_json =
            Json::parse(head).map_err(|e| format!("journal line 1: {e:?}"))?;
        let meta = ObsMeta::from_json(&meta_json).ok_or("journal line 1: not a meta header")?;
        let mut events = Vec::new();
        for (i, line) in lines {
            let v = Json::parse(line).map_err(|e| format!("journal line {}: {e:?}", i + 1))?;
            events.push(
                obs_from_json(&v).ok_or_else(|| format!("journal line {}: bad event", i + 1))?,
            );
        }
        Ok(ObsJournal { meta, events })
    }

    /// Serializes the journal in the given format.
    pub fn encode(&self, format: JournalFormat) -> Vec<u8> {
        format.codec().encode(self)
    }

    /// Writes the journal atomically in the given format: bytes go to
    /// `<path>.tmp.<pid>`, then a rename over `path`. Parent directories
    /// are created as needed.
    pub fn save(&self, path: &Path, format: JournalFormat) -> std::io::Result<()> {
        codec::write_atomic(path, &self.encode(format))
    }

    /// Reads a journal written by [`ObsJournal::save`], auto-detecting the
    /// format by magic sniffing (old JSONL journals keep working).
    pub fn load(path: &Path) -> Result<ObsJournal, JournalError> {
        JournalReader::open(path)?.read_journal()
    }
}

fn dest_to_json(d: Dest) -> Json {
    match d {
        Dest::Unicast(n) => Json::from(n as u64),
        Dest::Broadcast => Json::Null,
    }
}

fn dest_from_json(v: &Json) -> Option<Dest> {
    match v {
        Json::Null => Some(Dest::Broadcast),
        _ => Some(Dest::Unicast(v.as_u64()? as NodeId)),
    }
}

fn md_to_hex(md: &[u8; 16]) -> String {
    let mut s = String::with_capacity(32);
    for b in md {
        s.push_str(&format!("{b:02x}"));
    }
    s
}

fn md_from_hex(s: &str) -> Option<[u8; 16]> {
    if s.len() != 32 || !s.is_ascii() {
        return None;
    }
    let mut md = [0u8; 16];
    for (i, chunk) in s.as_bytes().chunks_exact(2).enumerate() {
        md[i] = u8::from_str_radix(std::str::from_utf8(chunk).ok()?, 16).ok()?;
    }
    Some(md)
}

/// Serializes one frame (wire-visible fields only, which is all a frame
/// has) following `mg_trace::json` conventions.
pub fn frame_to_json(f: &Frame) -> Json {
    let kind = match &f.kind {
        FrameKind::Rts(r) => Json::obj([(
            "rts",
            Json::obj([
                ("seq", Json::from(u64::from(r.seq_off_wire))),
                ("att", Json::from(u64::from(r.attempt))),
                ("md", Json::Str(md_to_hex(&r.md))),
            ]),
        )]),
        FrameKind::Cts => Json::Str("cts".into()),
        FrameKind::Data { sdu } => Json::obj([(
            "data",
            Json::obj([
                ("id", Json::from(sdu.id)),
                ("dst", dest_to_json(sdu.dst)),
                ("len", Json::from(u64::from(sdu.payload_len))),
            ]),
        )]),
        FrameKind::Ack => Json::Str("ack".into()),
    };
    Json::obj([
        ("src", Json::from(f.src as u64)),
        ("dst", dest_to_json(f.dst)),
        ("dur", Json::from(f.duration.as_nanos())),
        ("kind", kind),
    ])
}

/// Decodes [`frame_to_json`] output; `None` on any mismatch.
pub fn frame_from_json(v: &Json) -> Option<Frame> {
    let kind_json = v.get("kind")?;
    let kind = match kind_json.as_str() {
        Some("cts") => FrameKind::Cts,
        Some("ack") => FrameKind::Ack,
        Some(_) => return None,
        None => {
            if let Some(r) = kind_json.get("rts") {
                FrameKind::Rts(RtsFields {
                    seq_off_wire: u16::try_from(r.get("seq")?.as_u64()?).ok()?,
                    attempt: u8::try_from(r.get("att")?.as_u64()?).ok()?,
                    md: md_from_hex(r.get("md")?.as_str()?)?,
                })
            } else if let Some(d) = kind_json.get("data") {
                FrameKind::Data {
                    sdu: MacSdu {
                        id: d.get("id")?.as_u64()?,
                        dst: dest_from_json(d.get("dst")?)?,
                        payload_len: u16::try_from(d.get("len")?.as_u64()?).ok()?,
                    },
                }
            } else {
                return None;
            }
        }
    };
    Some(Frame {
        src: v.get("src")?.as_u64()? as NodeId,
        dst: dest_from_json(v.get("dst")?)?,
        duration: SimDuration::from_nanos(v.get("dur")?.as_u64()?),
        kind,
    })
}

/// Serializes one event as a compact tagged array. Virtual instants are
/// u64 nanoseconds (all < 2⁵³, so exact in a JSON number); distances use
/// the shortest-round-trip `f64` rendering.
pub fn obs_to_json(o: &Obs) -> Json {
    match o {
        Obs::ChannelEdge { node, busy, at } => Json::Arr(vec![
            Json::Str("edge".into()),
            Json::from(*node as u64),
            Json::Bool(*busy),
            Json::from(at.as_nanos()),
        ]),
        Obs::TxStart { src, frame, at, end } => Json::Arr(vec![
            Json::Str("tx".into()),
            Json::from(*src as u64),
            Json::from(at.as_nanos()),
            Json::from(end.as_nanos()),
            frame_to_json(frame),
        ]),
        Obs::Decoded { at, frame, start, end } => Json::Arr(vec![
            Json::Str("rx".into()),
            Json::from(*at as u64),
            Json::from(start.as_nanos()),
            Json::from(end.as_nanos()),
            frame_to_json(frame),
        ]),
        Obs::Garbled { at, now } => Json::Arr(vec![
            Json::Str("garble".into()),
            Json::from(*at as u64),
            Json::from(now.as_nanos()),
        ]),
        Obs::Ranging { from, to, at } => Json::Arr(vec![
            Json::Str("rng".into()),
            Json::from(*from as u64),
            Json::from(at.as_nanos()),
            Json::Arr(
                to.iter()
                    .map(|&(v, d)| Json::Arr(vec![Json::from(v as u64), Json::Num(d)]))
                    .collect(),
            ),
        ]),
    }
}

/// Decodes [`obs_to_json`] output; `None` on any mismatch.
pub fn obs_from_json(v: &Json) -> Option<Obs> {
    let arr = v.as_arr()?;
    let tag = arr.first()?.as_str()?;
    match (tag, arr) {
        ("edge", [_, node, busy, at]) => Some(Obs::ChannelEdge {
            node: node.as_u64()? as NodeId,
            busy: busy.as_bool()?,
            at: SimTime::from_nanos(at.as_u64()?),
        }),
        ("tx", [_, src, at, end, frame]) => Some(Obs::TxStart {
            src: src.as_u64()? as NodeId,
            frame: frame_from_json(frame)?,
            at: SimTime::from_nanos(at.as_u64()?),
            end: SimTime::from_nanos(end.as_u64()?),
        }),
        ("rx", [_, at, start, end, frame]) => Some(Obs::Decoded {
            at: at.as_u64()? as NodeId,
            frame: frame_from_json(frame)?,
            start: SimTime::from_nanos(start.as_u64()?),
            end: SimTime::from_nanos(end.as_u64()?),
        }),
        ("garble", [_, at, now]) => Some(Obs::Garbled {
            at: at.as_u64()? as NodeId,
            now: SimTime::from_nanos(now.as_u64()?),
        }),
        ("rng", [_, from, at, to]) => Some(Obs::Ranging {
            from: from.as_u64()? as NodeId,
            to: to
                .as_arr()?
                .iter()
                .map(|p| match p.as_arr()? {
                    [n, d] => Some((n.as_u64()? as NodeId, d.as_f64()?)),
                    _ => None,
                })
                .collect::<Option<Vec<_>>>()?,
            at: SimTime::from_nanos(at.as_u64()?),
        }),
        _ => None,
    }
}
