//! Property-based tests for the Obs codec and journal (mg-testkit harness).

use mg_dcf::{Dest, Frame, FrameKind, MacSdu, RtsFields};
use mg_obs::{obs_from_json, obs_to_json, Obs, ObsJournal, ObsMeta, ObsSink};
use mg_sim::{SimDuration, SimTime};
use mg_testkit::prop::{check, Gen, TkResult};
use mg_testkit::{tk_assert, tk_assert_eq};
use mg_trace::json::Json;

fn gen_dest(g: &mut Gen) -> Dest {
    if g.bool() {
        Dest::Broadcast
    } else {
        Dest::Unicast(g.usize_in(0..200))
    }
}

fn gen_frame(g: &mut Gen) -> Frame {
    let kind = match g.u8_in(0..4) {
        0 => {
            let mut md = [0u8; 16];
            for b in md.iter_mut() {
                *b = g.any_u8();
            }
            FrameKind::Rts(RtsFields {
                seq_off_wire: g.u16_in(0..(1 << 13)),
                attempt: g.u8_in(0..8),
                md,
            })
        }
        1 => FrameKind::Cts,
        2 => FrameKind::Data {
            sdu: MacSdu {
                id: g.any_u64() >> 12,
                dst: gen_dest(g),
                payload_len: g.u16_in(0..2312),
            },
        },
        _ => FrameKind::Ack,
    };
    Frame {
        src: g.usize_in(0..200),
        dst: gen_dest(g),
        duration: SimDuration::from_nanos(g.u64_in(0..10_000_000_000)),
        kind,
    }
}

fn gen_time(g: &mut Gen) -> SimTime {
    SimTime::from_nanos(g.u64_in(0..1_000_000_000_000))
}

fn gen_obs(g: &mut Gen) -> Obs {
    match g.u8_in(0..5) {
        0 => Obs::ChannelEdge {
            node: g.usize_in(0..200),
            busy: g.bool(),
            at: gen_time(g),
        },
        1 => Obs::TxStart {
            src: g.usize_in(0..200),
            frame: gen_frame(g),
            at: gen_time(g),
            end: gen_time(g),
        },
        2 => Obs::Decoded {
            at: g.usize_in(0..200),
            frame: gen_frame(g),
            start: gen_time(g),
            end: gen_time(g),
        },
        3 => Obs::Garbled {
            at: g.usize_in(0..200),
            now: gen_time(g),
        },
        _ => Obs::Ranging {
            from: g.usize_in(0..200),
            to: g.vec(0..6, |g| (g.usize_in(0..200), g.f64_in(0.1..500.0))),
            at: gen_time(g),
        },
    }
}

fn gen_meta(g: &mut Gen) -> ObsMeta {
    ObsMeta {
        tagged: g.usize_in(0..200),
        vantages: g.vec(1..5, |g| g.usize_in(0..200)),
        pair_distance: g.f64_in(1.0..500.0),
        seed: g.any_u64(),
        params: g.vec(0..4, |g| {
            (format!("k{}", g.u8_in(0..10)), format!("v{}", g.any_u8()))
        }),
    }
}

/// `encode ∘ decode ≡ id` for single events, through a full render/parse
/// cycle (the codec must survive the textual representation, not just the
/// in-memory Json tree).
#[test]
fn obs_codec_round_trips() {
    check("obs_codec_round_trips", |g: &mut Gen| -> TkResult {
        let obs = gen_obs(g);
        let text = obs_to_json(&obs).render();
        let parsed = Json::parse(&text).map_err(|e| mg_testkit::TkError::Fail(format!("parse: {e:?}")))?;
        let back = obs_from_json(&parsed)
            .ok_or_else(|| mg_testkit::TkError::Fail("decode failed".into()))?;
        tk_assert_eq!(back, obs);
        // Deterministic rendering: encoding the decoded value reproduces
        // the exact bytes.
        tk_assert_eq!(obs_to_json(&back).render(), text);
        Ok(())
    });
}

/// A whole journal survives the JSONL cycle byte-for-byte.
#[test]
fn journal_jsonl_round_trips() {
    check("journal_jsonl_round_trips", |g: &mut Gen| -> TkResult {
        let mut j = ObsJournal::new(gen_meta(g));
        for _ in 0..g.usize_in(0..20) {
            j.push(gen_obs(g));
        }
        let text = j.to_jsonl();
        let back = ObsJournal::from_jsonl(&text).map_err(mg_testkit::TkError::Fail)?;
        tk_assert_eq!(back, j);
        tk_assert_eq!(back.to_jsonl(), text);
        // And the single-value codec used by the sweep cache agrees.
        let via_json = ObsJournal::from_json(&j.to_json())
            .ok_or_else(|| mg_testkit::TkError::Fail("from_json failed".into()))?;
        tk_assert_eq!(via_json, j);
        Ok(())
    });
}

/// Per-vantage streams partition vantage-specific events and share Ranging.
#[test]
fn per_vantage_streams_cover_the_journal() {
    check("per_vantage_streams", |g: &mut Gen| -> TkResult {
        let mut j = ObsJournal::new(gen_meta(g));
        for _ in 0..g.usize_in(0..30) {
            j.push(gen_obs(g));
        }
        for &v in j.meta().vantages.clone().iter() {
            for o in j.for_vantage(v) {
                let ok = match o {
                    Obs::ChannelEdge { node, .. } => *node == v,
                    Obs::TxStart { src, .. } => *src == v,
                    Obs::Decoded { at, .. } => *at == v,
                    Obs::Garbled { at, .. } => *at == v,
                    Obs::Ranging { .. } => true,
                };
                tk_assert!(ok, "stream for {v} leaked a foreign event: {o:?}");
            }
        }
        Ok(())
    });
}

/// Corrupt journals are rejected, not misparsed.
#[test]
fn malformed_journals_are_rejected() {
    assert!(ObsJournal::from_jsonl("").is_err());
    assert!(ObsJournal::from_jsonl("not json\n").is_err());
    assert!(ObsJournal::from_jsonl("{\"tagged\":1}\n").is_err());
    let good = ObsJournal::new(ObsMeta {
        tagged: 0,
        vantages: vec![1],
        pair_distance: 240.0,
        seed: 7,
        params: vec![],
    });
    let mut text = good.to_jsonl();
    text.push_str("[\"edge\",1,true]\n"); // truncated event
    assert!(ObsJournal::from_jsonl(&text).is_err());
}

/// save/load round-trips through the filesystem atomically.
#[test]
fn save_load_round_trips() {
    let mut j = ObsJournal::new(ObsMeta {
        tagged: 3,
        vantages: vec![4, 9],
        pair_distance: 123.456,
        seed: 42,
        params: vec![("kind".into(), "grid".into())],
    });
    j.push(Obs::ChannelEdge {
        node: 4,
        busy: true,
        at: SimTime::from_nanos(1_000),
    });
    j.push(Obs::Garbled {
        at: 9,
        now: SimTime::from_nanos(2_500),
    });
    let dir = std::env::temp_dir().join(format!("mg-obs-test-{}", std::process::id()));
    let path = dir.join("nested").join("run.jsonl");
    j.save(&path).expect("save");
    let back = ObsJournal::load(&path).expect("load");
    assert_eq!(back, j);
    std::fs::remove_dir_all(&dir).ok();
}

/// replay() feeds every event, in order.
#[test]
fn replay_preserves_order() {
    struct Collect(Vec<Obs>);
    impl ObsSink for Collect {
        fn ingest(&mut self, obs: &Obs) {
            self.0.push(obs.clone());
        }
    }
    let mut j = ObsJournal::new(ObsMeta {
        tagged: 0,
        vantages: vec![1],
        pair_distance: 1.0,
        seed: 1,
        params: vec![],
    });
    for i in 0..5u64 {
        j.push(Obs::Garbled {
            at: 1,
            now: SimTime::from_nanos(i * 10),
        });
    }
    let mut c = Collect(Vec::new());
    j.replay(&mut c);
    assert_eq!(c.0.as_slice(), j.events());
}
