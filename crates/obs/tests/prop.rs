//! Property-based tests for the Obs codec and journal (mg-testkit harness).

use mg_dcf::{Dest, Frame, FrameKind, MacSdu, RtsFields};
use mg_obs::{
    base64_to_bytes, bytes_to_base64, obs_from_json, obs_to_json, JournalError, JournalFormat,
    JournalReader, JournalWriter, Obs, ObsJournal, ObsMeta, ObsSink,
};
use mg_sim::{SimDuration, SimTime};
use mg_testkit::prop::{check, Gen, TkResult};
use mg_testkit::{tk_assert, tk_assert_eq};
use mg_trace::json::Json;

fn gen_dest(g: &mut Gen) -> Dest {
    if g.bool() {
        Dest::Broadcast
    } else {
        Dest::Unicast(g.usize_in(0..200))
    }
}

fn gen_frame(g: &mut Gen) -> Frame {
    let kind = match g.u8_in(0..4) {
        0 => {
            let mut md = [0u8; 16];
            for b in md.iter_mut() {
                *b = g.any_u8();
            }
            FrameKind::Rts(RtsFields {
                seq_off_wire: g.u16_in(0..(1 << 13)),
                attempt: g.u8_in(0..8),
                md,
            })
        }
        1 => FrameKind::Cts,
        2 => FrameKind::Data {
            sdu: MacSdu {
                id: g.any_u64() >> 12,
                dst: gen_dest(g),
                payload_len: g.u16_in(0..2312),
            },
        },
        _ => FrameKind::Ack,
    };
    Frame {
        src: g.usize_in(0..200),
        dst: gen_dest(g),
        duration: SimDuration::from_nanos(g.u64_in(0..10_000_000_000)),
        kind,
    }
}

fn gen_time(g: &mut Gen) -> SimTime {
    SimTime::from_nanos(g.u64_in(0..1_000_000_000_000))
}

fn gen_obs(g: &mut Gen) -> Obs {
    match g.u8_in(0..5) {
        0 => Obs::ChannelEdge {
            node: g.usize_in(0..200),
            busy: g.bool(),
            at: gen_time(g),
        },
        1 => Obs::TxStart {
            src: g.usize_in(0..200),
            frame: gen_frame(g),
            at: gen_time(g),
            end: gen_time(g),
        },
        2 => Obs::Decoded {
            at: g.usize_in(0..200),
            frame: gen_frame(g),
            start: gen_time(g),
            end: gen_time(g),
        },
        3 => Obs::Garbled {
            at: g.usize_in(0..200),
            now: gen_time(g),
        },
        _ => Obs::Ranging {
            from: g.usize_in(0..200),
            to: g.vec(0..6, |g| (g.usize_in(0..200), g.f64_in(0.1..500.0))),
            at: gen_time(g),
        },
    }
}

fn gen_meta(g: &mut Gen) -> ObsMeta {
    ObsMeta {
        tagged: g.usize_in(0..200),
        vantages: g.vec(1..5, |g| g.usize_in(0..200)),
        pair_distance: g.f64_in(1.0..500.0),
        seed: g.any_u64(),
        params: g.vec(0..4, |g| {
            (format!("k{}", g.u8_in(0..10)), format!("v{}", g.any_u8()))
        }),
    }
}

/// `encode ∘ decode ≡ id` for single events, through a full render/parse
/// cycle (the codec must survive the textual representation, not just the
/// in-memory Json tree).
#[test]
fn obs_codec_round_trips() {
    check("obs_codec_round_trips", |g: &mut Gen| -> TkResult {
        let obs = gen_obs(g);
        let text = obs_to_json(&obs).render();
        let parsed = Json::parse(&text).map_err(|e| mg_testkit::TkError::Fail(format!("parse: {e:?}")))?;
        let back = obs_from_json(&parsed)
            .ok_or_else(|| mg_testkit::TkError::Fail("decode failed".into()))?;
        tk_assert_eq!(back, obs);
        // Deterministic rendering: encoding the decoded value reproduces
        // the exact bytes.
        tk_assert_eq!(obs_to_json(&back).render(), text);
        Ok(())
    });
}

/// A whole journal survives the JSONL cycle byte-for-byte.
#[test]
fn journal_jsonl_round_trips() {
    check("journal_jsonl_round_trips", |g: &mut Gen| -> TkResult {
        let mut j = ObsJournal::new(gen_meta(g));
        for _ in 0..g.usize_in(0..20) {
            j.push(gen_obs(g));
        }
        let text = j.to_jsonl();
        let back = ObsJournal::from_jsonl(&text).map_err(mg_testkit::TkError::Fail)?;
        tk_assert_eq!(back, j);
        tk_assert_eq!(back.to_jsonl(), text);
        // And the single-value codec used by the sweep cache agrees.
        let via_json = ObsJournal::from_json(&j.to_json())
            .ok_or_else(|| mg_testkit::TkError::Fail("from_json failed".into()))?;
        tk_assert_eq!(via_json, j);
        Ok(())
    });
}

/// Per-vantage streams partition vantage-specific events and share Ranging.
#[test]
fn per_vantage_streams_cover_the_journal() {
    check("per_vantage_streams", |g: &mut Gen| -> TkResult {
        let mut j = ObsJournal::new(gen_meta(g));
        for _ in 0..g.usize_in(0..30) {
            j.push(gen_obs(g));
        }
        for &v in j.meta().vantages.clone().iter() {
            for o in j.for_vantage(v) {
                let ok = match o {
                    Obs::ChannelEdge { node, .. } => *node == v,
                    Obs::TxStart { src, .. } => *src == v,
                    Obs::Decoded { at, .. } => *at == v,
                    Obs::Garbled { at, .. } => *at == v,
                    Obs::Ranging { .. } => true,
                };
                tk_assert!(ok, "stream for {v} leaked a foreign event: {o:?}");
            }
        }
        Ok(())
    });
}

/// Corrupt journals are rejected, not misparsed.
#[test]
fn malformed_journals_are_rejected() {
    assert!(ObsJournal::from_jsonl("").is_err());
    assert!(ObsJournal::from_jsonl("not json\n").is_err());
    assert!(ObsJournal::from_jsonl("{\"tagged\":1}\n").is_err());
    let good = ObsJournal::new(ObsMeta {
        tagged: 0,
        vantages: vec![1],
        pair_distance: 240.0,
        seed: 7,
        params: vec![],
    });
    let mut text = good.to_jsonl();
    text.push_str("[\"edge\",1,true]\n"); // truncated event
    assert!(ObsJournal::from_jsonl(&text).is_err());
}

/// save/load round-trips through the filesystem atomically, in both
/// formats, with load auto-detecting the format by magic sniffing.
#[test]
fn save_load_round_trips() {
    let mut j = ObsJournal::new(ObsMeta {
        tagged: 3,
        vantages: vec![4, 9],
        pair_distance: 123.456,
        seed: 42,
        params: vec![("kind".into(), "grid".into())],
    });
    j.push(Obs::ChannelEdge {
        node: 4,
        busy: true,
        at: SimTime::from_nanos(1_000),
    });
    j.push(Obs::Garbled {
        at: 9,
        now: SimTime::from_nanos(2_500),
    });
    let dir = std::env::temp_dir().join(format!("mg-obs-test-{}", std::process::id()));
    for format in [JournalFormat::Jsonl, JournalFormat::Binary] {
        let path = dir.join("nested").join(format!("run.{}", format.name()));
        j.save(&path, format).expect("save");
        let back = ObsJournal::load(&path).expect("load");
        assert_eq!(back, j);
        let reader = JournalReader::open(&path).expect("open");
        assert_eq!(reader.format(), format);
        assert_eq!(reader.len(), j.len());
    }
    std::fs::remove_dir_all(&dir).ok();
}

fn gen_journal(g: &mut Gen, max_events: usize) -> ObsJournal {
    let mut j = ObsJournal::new(gen_meta(g));
    for _ in 0..g.usize_in(0..max_events) {
        j.push(gen_obs(g));
    }
    j
}

/// Binary `encode ∘ decode ≡ id` on random Obs tapes, and the encoding is
/// deterministic (equal journals → byte-identical buffers).
#[test]
fn binary_round_trips() {
    check("binary_round_trips", |g: &mut Gen| -> TkResult {
        let j = gen_journal(g, 40);
        let bytes = j.encode(JournalFormat::Binary);
        tk_assert_eq!(JournalFormat::sniff(&bytes), JournalFormat::Binary);
        let reader = JournalReader::from_bytes(bytes.clone())
            .map_err(|e| mg_testkit::TkError::Fail(format!("open: {e}")))?;
        tk_assert_eq!(reader.format(), JournalFormat::Binary);
        tk_assert_eq!(reader.meta(), j.meta());
        let back = reader
            .read_journal()
            .map_err(|e| mg_testkit::TkError::Fail(format!("decode: {e}")))?;
        tk_assert_eq!(back, j);
        tk_assert_eq!(back.encode(JournalFormat::Binary), bytes);
        Ok(())
    });
}

/// The streaming writer produces exactly the whole-journal encoding, in
/// both formats: pushing events one at a time is the same as encoding the
/// finished journal.
#[test]
fn streaming_writer_matches_whole_journal_encode() {
    check("streaming_writer_matches_encode", |g: &mut Gen| -> TkResult {
        let j = gen_journal(g, 30);
        for format in [JournalFormat::Jsonl, JournalFormat::Binary] {
            let mut w = JournalWriter::new(format, j.meta());
            for o in j.events() {
                w.push(o);
            }
            tk_assert_eq!(w.len(), j.len());
            tk_assert_eq!(w.finish(), j.encode(format));
        }
        Ok(())
    });
}

/// Truncated or bit-flipped binary journals yield typed errors — never a
/// panic, never a silent partial read. (FNV-1a's byte step is injective for
/// a fixed suffix, so any single-byte corruption is always detected.)
#[test]
fn corrupt_binary_journals_are_rejected() {
    check("corrupt_binary_rejected", |g: &mut Gen| -> TkResult {
        let j = gen_journal(g, 20);
        let bytes = j.encode(JournalFormat::Binary);

        // Truncation at any length: either refused at open, or every event
        // decode fails — the reader never silently yields a short stream.
        let cut = g.usize_in(0..bytes.len());
        let truncated = bytes[..cut].to_vec();
        if let Ok(r) = JournalReader::from_bytes(truncated) {
            // A truncated prefix without the magic parses as (empty-ish)
            // JSONL only if it still looks like a meta line — it cannot,
            // because byte 0 is 'M' of the magic, not '{'.
            tk_assert!(
                r.format() == JournalFormat::Jsonl && cut == 0,
                "truncated binary journal (cut at {cut}) was accepted"
            );
        }

        // A single flipped bit anywhere is caught by the checksum (or an
        // earlier structural check), as a typed error.
        if !bytes.is_empty() {
            let mut flipped = bytes.clone();
            let at = g.usize_in(0..flipped.len());
            flipped[at] ^= 1 << g.u8_in(0..8);
            let r = JournalReader::from_bytes(flipped).and_then(|r| r.read_journal());
            tk_assert!(
                r.is_err(),
                "bit flip at byte {at} went undetected"
            );
        }
        Ok(())
    });
}

/// `vantage_events` through the binary index block ≡ the full-scan
/// `for_vantage` projection, for indexed and non-indexed vantages alike.
#[test]
fn indexed_projection_matches_full_scan() {
    check("indexed_projection_matches_scan", |g: &mut Gen| -> TkResult {
        let j = gen_journal(g, 40);
        let reader = JournalReader::from_bytes(j.encode(JournalFormat::Binary))
            .map_err(|e| mg_testkit::TkError::Fail(format!("open: {e}")))?;
        let mut probes = j.meta().vantages.clone();
        probes.push(g.usize_in(0..220)); // possibly not a vantage at all
        for v in probes {
            let via_index = reader
                .vantage_events(v)
                .map_err(|e| mg_testkit::TkError::Fail(format!("project {v}: {e}")))?;
            let via_scan: Vec<Obs> = j.for_vantage(v).cloned().collect();
            tk_assert_eq!(via_index, via_scan);
        }
        Ok(())
    });
}

/// Transcoding jsonl → binary → jsonl is the identity on the journal (and
/// on the JSONL bytes, which render deterministically).
#[test]
fn transcode_round_trips() {
    check("transcode_round_trips", |g: &mut Gen| -> TkResult {
        let j = gen_journal(g, 25);
        let jsonl = j.encode(JournalFormat::Jsonl);
        tk_assert_eq!(JournalFormat::sniff(&jsonl), JournalFormat::Jsonl);
        let from_jsonl = JournalReader::from_bytes(jsonl.clone())
            .and_then(|r| r.read_journal())
            .map_err(|e| mg_testkit::TkError::Fail(format!("jsonl: {e}")))?;
        let from_bin = JournalReader::from_bytes(from_jsonl.encode(JournalFormat::Binary))
            .and_then(|r| r.read_journal())
            .map_err(|e| mg_testkit::TkError::Fail(format!("bin: {e}")))?;
        tk_assert_eq!(from_bin, j);
        tk_assert_eq!(from_bin.encode(JournalFormat::Jsonl), jsonl);
        Ok(())
    });
}

/// Base64 round-trips arbitrary bytes (the carrier for binary journals
/// inside the JSON sweep cache).
#[test]
fn base64_round_trips() {
    check("base64_round_trips", |g: &mut Gen| -> TkResult {
        let data = g.vec(0..64, |g| g.any_u8());
        let text = bytes_to_base64(&data);
        let back = base64_to_bytes(&text)
            .ok_or_else(|| mg_testkit::TkError::Fail("decode failed".into()))?;
        tk_assert_eq!(back, data);
        Ok(())
    });
    assert_eq!(base64_to_bytes("a"), None);
    assert_eq!(base64_to_bytes("ab=c"), None);
    assert_eq!(base64_to_bytes("∀∀∀∀"), None);
}

/// A future layout version is refused with a typed `Version` error, before
/// any trailer interpretation.
#[test]
fn future_versions_are_refused() {
    let j = ObsJournal::new(ObsMeta {
        tagged: 0,
        vantages: vec![1],
        pair_distance: 10.0,
        seed: u64::MAX, // full-range seed: only representable as a real u64
        params: vec![],
    });
    let mut bytes = j.encode(JournalFormat::Binary);
    bytes[6] = 2; // version field follows the 6-byte magic, little-endian
    match JournalReader::from_bytes(bytes) {
        Err(JournalError::Version { found }) => assert_eq!(found, 2),
        Err(other) => panic!("expected Version error, got {other:?}"),
        Ok(_) => panic!("a version-2 journal must not open"),
    }
}

/// The binary header stores the seed as a real u64 (satellite: no decimal
/// string detour), and `param_parsed` gives consumers typed provenance.
#[test]
fn seed_and_params_are_typed() {
    let j = ObsJournal::new(ObsMeta {
        tagged: 0,
        vantages: vec![1],
        pair_distance: 10.0,
        seed: u64::MAX,
        params: vec![("pm".into(), "60".into()), ("rate".into(), "banana".into())],
    });
    let back = JournalReader::from_bytes(j.encode(JournalFormat::Binary))
        .and_then(|r| r.read_journal())
        .expect("binary roundtrip");
    assert_eq!(back.meta().seed, u64::MAX);
    assert_eq!(back.meta().param_parsed::<u64>("pm"), Some(60));
    assert_eq!(back.meta().param_parsed::<f64>("pm"), Some(60.0));
    assert_eq!(back.meta().param_parsed::<u64>("rate"), None); // malformed
    assert_eq!(back.meta().param_parsed::<u64>("absent"), None);
    // The JSONL codec keeps the seed-as-decimal-string quirk.
    let text = String::from_utf8(j.encode(JournalFormat::Jsonl)).unwrap();
    assert!(text.contains(&format!("\"seed\":\"{}\"", u64::MAX)));
}

/// replay() feeds every event, in order.
#[test]
fn replay_preserves_order() {
    struct Collect(Vec<Obs>);
    impl ObsSink for Collect {
        fn ingest(&mut self, obs: &Obs) {
            self.0.push(obs.clone());
        }
    }
    let mut j = ObsJournal::new(ObsMeta {
        tagged: 0,
        vantages: vec![1],
        pair_distance: 1.0,
        seed: 1,
        params: vec![],
    });
    for i in 0..5u64 {
        j.push(Obs::Garbled {
            at: 1,
            now: SimTime::from_nanos(i * 10),
        });
    }
    let mut c = Collect(Vec::new());
    j.replay(&mut c);
    assert_eq!(c.0.as_slice(), j.events());
}
