//! Seeded property testing with shrink-by-halving.
//!
//! A property is a function `Fn(&mut Gen) -> TkResult`. The [`Gen`] hands
//! out values drawn from a reproducible RNG and records every raw 64-bit
//! draw on a *tape*. When a case fails, the harness shrinks the tape by
//! repeatedly halving individual raw draws (which halves integer values,
//! pulls floats toward their range start, shortens generated vectors, and
//! flips booleans to `false`) while the property keeps failing, then reports
//! the minimal counterexample together with the seed that reproduces it.

use mg_sim::rng::{Rng, SplitMix64, Xoshiro256};
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Why a property case did not pass.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TkError {
    /// The case's preconditions were not met; draw another case.
    Assume,
    /// The property failed with the given message.
    Fail(String),
}

/// Result of one property case.
pub type TkResult = Result<(), TkError>;

/// Asserts a condition inside a property, with an optional format message.
#[macro_export]
macro_rules! tk_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TkError::Fail(format!(
                "assertion failed at {}:{}: {}",
                file!(),
                line!(),
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TkError::Fail(format!(
                "assertion failed at {}:{}: {}: {}",
                file!(),
                line!(),
                stringify!($cond),
                format!($($fmt)+)
            )));
        }
    };
}

/// Asserts two expressions are equal inside a property.
#[macro_export]
macro_rules! tk_assert_eq {
    ($a:expr, $b:expr) => {{
        let (va, vb) = (&$a, &$b);
        if va != vb {
            return Err($crate::TkError::Fail(format!(
                "assertion failed at {}:{}: {} == {}\n  left: {:?}\n right: {:?}",
                file!(),
                line!(),
                stringify!($a),
                stringify!($b),
                va,
                vb
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (va, vb) = (&$a, &$b);
        if va != vb {
            return Err($crate::TkError::Fail(format!(
                "assertion failed at {}:{}: {} == {} ({})\n  left: {:?}\n right: {:?}",
                file!(),
                line!(),
                stringify!($a),
                stringify!($b),
                format!($($fmt)+),
                va,
                vb
            )));
        }
    }};
}

/// Asserts two expressions are unequal inside a property.
#[macro_export]
macro_rules! tk_assert_ne {
    ($a:expr, $b:expr) => {{
        let (va, vb) = (&$a, &$b);
        if va == vb {
            return Err($crate::TkError::Fail(format!(
                "assertion failed at {}:{}: {} != {} (both {:?})",
                file!(),
                line!(),
                stringify!($a),
                stringify!($b),
                va
            )));
        }
    }};
}

/// Rejects the current case (precondition not met); the harness draws a
/// replacement case without counting this one.
#[macro_export]
macro_rules! tk_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TkError::Assume);
        }
    };
}

enum Mode {
    /// Drawing fresh values and recording them.
    Record(Xoshiro256),
    /// Replaying a (possibly mutated) tape; exhausted positions yield 0.
    Replay,
}

/// The value source handed to properties.
///
/// Every raw 64-bit draw is recorded so failures can be shrunk and replayed.
/// All generator methods derive their value monotonically from one raw draw:
/// halving the raw draw can only move the generated value toward the "small"
/// end of its range (range start, `false`, shorter vector).
pub struct Gen {
    mode: Mode,
    tape: Vec<u64>,
    pos: usize,
}

impl Gen {
    fn record(seed: u64) -> Self {
        Gen {
            mode: Mode::Record(Xoshiro256::new(seed)),
            tape: Vec::new(),
            pos: 0,
        }
    }

    fn replay(tape: Vec<u64>) -> Self {
        Gen {
            mode: Mode::Replay,
            tape,
            pos: 0,
        }
    }

    /// The next raw 64-bit draw (recorded on the tape).
    pub fn bits(&mut self) -> u64 {
        let v = match &mut self.mode {
            Mode::Record(rng) => {
                let v = rng.next_u64();
                self.tape.push(v);
                v
            }
            Mode::Replay => self.tape.get(self.pos).copied().unwrap_or(0),
        };
        self.pos += 1;
        v
    }

    /// Any `u64` whatsoever.
    pub fn any_u64(&mut self) -> u64 {
        self.bits()
    }

    /// A uniform `u64` in `[range.start, range.end)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn u64_in(&mut self, range: Range<u64>) -> u64 {
        assert!(range.start < range.end, "empty range");
        let span = range.end - range.start;
        range.start + self.bits() % span
    }

    /// A uniform `usize` in `[range.start, range.end)`.
    pub fn usize_in(&mut self, range: Range<usize>) -> usize {
        self.u64_in(range.start as u64..range.end as u64) as usize
    }

    /// A uniform `u32` in `[range.start, range.end)`.
    pub fn u32_in(&mut self, range: Range<u32>) -> u32 {
        self.u64_in(u64::from(range.start)..u64::from(range.end)) as u32
    }

    /// A uniform `u16` in `[range.start, range.end)`.
    pub fn u16_in(&mut self, range: Range<u16>) -> u16 {
        self.u64_in(u64::from(range.start)..u64::from(range.end)) as u16
    }

    /// A uniform `u8` in `[range.start, range.end)`.
    pub fn u8_in(&mut self, range: Range<u8>) -> u8 {
        self.u64_in(u64::from(range.start)..u64::from(range.end)) as u8
    }

    /// Any byte.
    pub fn any_u8(&mut self) -> u8 {
        (self.bits() & 0xFF) as u8
    }

    /// A uniform `f64` in `[range.start, range.end)`.
    pub fn f64_in(&mut self, range: Range<f64>) -> f64 {
        let unit = (self.bits() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        range.start + (range.end - range.start) * unit
    }

    /// A boolean (shrinks toward `false`).
    pub fn bool(&mut self) -> bool {
        self.bits() & 1 == 1
    }

    /// A vector with length drawn from `len` and elements from `elem`.
    pub fn vec<T>(&mut self, len: Range<usize>, mut elem: impl FnMut(&mut Gen) -> T) -> Vec<T> {
        let n = self.usize_in(len);
        (0..n).map(|_| elem(self)).collect()
    }

    /// A vector of uniform `f64` values (the most common case).
    pub fn vec_f64(&mut self, len: Range<usize>, each: Range<f64>) -> Vec<f64> {
        self.vec(len, |g| g.f64_in(each.clone()))
    }
}

/// Harness configuration.
#[derive(Clone, Copy, Debug)]
pub struct Config {
    /// Accepted (non-rejected) cases required for the property to pass.
    pub cases: u32,
    /// Base seed; every property and case derives its own stream from it.
    pub seed: u64,
    /// Upper bound on shrink attempts once a failure is found.
    pub max_shrink_steps: u32,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            cases: env_u64("TESTKIT_CASES", 64) as u32,
            seed: env_u64("TESTKIT_SEED", 0x1CDC_2006_5EED),
            max_shrink_steps: 512,
        }
    }
}

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Checks a property under the default [`Config`].
///
/// # Panics
///
/// Panics with the shrunk counterexample and its seed if the property fails.
pub fn check(name: &str, prop: impl Fn(&mut Gen) -> TkResult) {
    check_with(Config::default(), name, prop);
}

/// Checks a property under an explicit [`Config`].
///
/// # Panics
///
/// Panics with the shrunk counterexample and its seed if the property fails,
/// or if too many cases in a row are rejected by `tk_assume!`.
pub fn check_with(cfg: Config, name: &str, prop: impl Fn(&mut Gen) -> TkResult) {
    // Derive a per-property base seed so properties are independent.
    let mut h = SplitMix64::mix(cfg.seed);
    for &b in name.as_bytes() {
        h = SplitMix64::mix(h ^ u64::from(b));
    }
    let mut accepted = 0u32;
    let mut attempts = 0u32;
    let max_attempts = cfg.cases.saturating_mul(20).max(100);
    while accepted < cfg.cases {
        assert!(
            attempts < max_attempts,
            "property '{name}': gave up after {attempts} attempts \
             ({accepted}/{} accepted) — tk_assume! rejects too much",
            cfg.cases
        );
        let case_seed = SplitMix64::mix(h ^ u64::from(attempts).wrapping_mul(0x9E37_79B9));
        attempts += 1;
        let mut g = Gen::record(case_seed);
        match run_case(&prop, &mut g) {
            Ok(()) => accepted += 1,
            Err(TkError::Assume) => {}
            Err(TkError::Fail(first_msg)) => {
                let (tape, steps) = shrink(&prop, g.tape, cfg.max_shrink_steps);
                let minimal_msg = match run_case(&prop, &mut Gen::replay(tape)) {
                    Err(TkError::Fail(m)) => m,
                    // The shrunk tape must still fail (shrink only keeps
                    // failing candidates), but be defensive.
                    _ => first_msg,
                };
                panic!(
                    "property '{name}' failed (case {} of {}, seed {case_seed:#018x}, \
                     {steps} shrink steps)\n{minimal_msg}\n\
                     replay the whole run with TESTKIT_SEED={}",
                    attempts,
                    cfg.cases,
                    cfg.seed
                );
            }
        }
    }
}

/// Runs one case, converting panics inside the property (or the code under
/// test) into failures so they shrink like ordinary assertion misses.
fn run_case(prop: &impl Fn(&mut Gen) -> TkResult, g: &mut Gen) -> TkResult {
    match catch_unwind(AssertUnwindSafe(|| prop(g))) {
        Ok(r) => r,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "property panicked".to_string());
            Err(TkError::Fail(format!("panic: {msg}")))
        }
    }
}

/// Shrinks a failing tape by halving raw draws while the failure persists.
fn shrink(
    prop: &impl Fn(&mut Gen) -> TkResult,
    mut tape: Vec<u64>,
    budget: u32,
) -> (Vec<u64>, u32) {
    let fails = |t: &[u64]| matches!(run_case(prop, &mut Gen::replay(t.to_vec())), Err(TkError::Fail(_)));
    let mut steps = 0u32;
    let mut improved = true;
    while improved && steps < budget {
        improved = false;
        // Try dropping the whole tail first (cheapest big win: shorter
        // vectors, earlier defaults), then halve individual draws.
        let mut cut = tape.len() / 2;
        while cut > 0 && steps < budget {
            steps += 1;
            let candidate = tape[..tape.len() - cut].to_vec();
            if fails(&candidate) {
                tape = candidate;
                improved = true;
            }
            cut /= 2;
        }
        for i in 0..tape.len() {
            let orig = tape[i];
            if orig == 0 {
                continue;
            }
            // Halve while the failure persists; remember the first passing
            // value so the exact boundary can be bisected afterwards.
            let mut hi = orig; // smallest known failing value
            let mut lo = None; // largest known passing value
            while hi > 0 && steps < budget {
                steps += 1;
                let cand = hi / 2;
                tape[i] = cand;
                if fails(&tape) {
                    hi = cand;
                    if cand == 0 {
                        break;
                    }
                } else {
                    lo = Some(cand);
                    break;
                }
            }
            if let Some(mut lo) = lo {
                while hi - lo > 1 && steps < budget {
                    steps += 1;
                    let mid = lo + (hi - lo) / 2;
                    tape[i] = mid;
                    if fails(&tape) {
                        hi = mid;
                    } else {
                        lo = mid;
                    }
                }
            }
            tape[i] = hi;
            if hi != orig {
                improved = true;
            }
        }
    }
    (tape, steps)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_passes() {
        check("tautology", |g| {
            let x = g.u64_in(0..100);
            tk_assert!(x < 100);
            Ok(())
        });
    }

    #[test]
    fn generators_respect_ranges() {
        check("ranges", |g| {
            tk_assert!(g.u64_in(5..10) >= 5 && g.u64_in(5..10) < 10);
            let f = g.f64_in(-2.0..3.0);
            tk_assert!((-2.0..3.0).contains(&f), "{f}");
            let v = g.vec_f64(1..7, 0.0..1.0);
            tk_assert!(!v.is_empty() && v.len() < 7);
            tk_assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
            let b = g.u8_in(1..4);
            tk_assert!((1..4).contains(&b));
            Ok(())
        });
    }

    #[test]
    fn failure_is_shrunk_to_the_boundary() {
        // x >= 1000 fails for x in [1000, 10000); halving must land exactly
        // on the smallest failing value.
        let caught = catch_unwind(AssertUnwindSafe(|| {
            check("boundary", |g| {
                let x = g.u64_in(0..10_000);
                tk_assert!(x < 1_000, "x = {x}");
                Ok(())
            });
        }));
        let msg = match caught {
            Err(p) => p.downcast_ref::<String>().cloned().unwrap_or_default(),
            Ok(()) => panic!("property should have failed"),
        };
        assert!(msg.contains("x = 1000"), "not shrunk to boundary: {msg}");
        assert!(msg.contains("seed"), "seed missing from report: {msg}");
    }

    #[test]
    fn assume_rejects_without_failing() {
        let accepted = std::cell::Cell::new(0u32);
        check_with(
            Config {
                cases: 10,
                ..Config::default()
            },
            "assume",
            |g| {
                let x = g.u64_in(0..4);
                tk_assume!(x != 1);
                tk_assert!(x != 1, "assumed-away values must never reach here");
                accepted.set(accepted.get() + 1);
                Ok(())
            },
        );
        assert_eq!(accepted.get(), 10);
    }

    #[test]
    fn panics_inside_property_are_reported_with_seed() {
        let caught = catch_unwind(AssertUnwindSafe(|| {
            check("panicky", |g| {
                let v = g.vec_f64(0..10, 0.0..1.0);
                if v.len() > 3 {
                    let _ = v[100]; // out-of-bounds panic
                }
                Ok(())
            });
        }));
        let msg = match caught {
            Err(p) => p.downcast_ref::<String>().cloned().unwrap_or_default(),
            Ok(()) => panic!("property should have failed"),
        };
        assert!(msg.contains("panic"), "{msg}");
        assert!(msg.contains("seed"), "{msg}");
    }

    #[test]
    fn replay_is_deterministic() {
        // The same (seed, name) always generates the same first case.
        let one = |_: ()| {
            let mut g = Gen::record(42);
            (g.any_u64(), g.f64_in(0.0..1.0), g.bool())
        };
        assert_eq!(one(()), one(()));
    }
}
