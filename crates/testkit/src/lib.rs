//! # mg-testkit — the in-tree test toolkit
//!
//! This workspace builds with **zero external dependencies** (see README.md,
//! "Hermetic builds"), so the usual `proptest`/`criterion` layer is replaced
//! by this crate:
//!
//! * [`prop`] — a minimal property-testing harness: seeded case generation
//!   on top of `mg-sim`'s reproducible RNG, a configurable case count,
//!   failure shrinking by halving the recorded raw draws, and the failing
//!   seed printed on every failure so a case can be replayed exactly;
//! * [`mod@bench`] — a wall-clock micro-benchmark runner with automatic
//!   iteration calibration, for `harness = false` bench binaries.
//!
//! ## Writing a property
//!
//! ```
//! use mg_testkit::prop::{check, Gen, TkResult};
//! use mg_testkit::tk_assert;
//!
//! fn prop_add_commutes(g: &mut Gen) -> TkResult {
//!     let a = g.u64_in(0..1_000);
//!     let b = g.u64_in(0..1_000);
//!     tk_assert!(a + b == b + a, "{a} + {b}");
//!     Ok(())
//! }
//!
//! check("add_commutes", prop_add_commutes);
//! ```
//!
//! Knobs (environment variables):
//!
//! | variable | default | meaning |
//! |----------|---------|---------|
//! | `TESTKIT_CASES` | 64 | accepted cases per property |
//! | `TESTKIT_SEED` | fixed | base seed for the whole run |
//! | `MG_BENCH_MS` | 300 | target wall-clock milliseconds per benchmark |

#![warn(missing_docs)]

pub mod bench;
pub mod prop;

pub use prop::{check, check_with, Config, Gen, TkError, TkResult};
