//! A wall-clock micro-benchmark runner for `harness = false` bench targets.
//!
//! No statistics beyond mean/min/max — the goal is a dependable relative
//! signal with zero dependencies, not publication-grade rigor. Iteration
//! counts are calibrated so each benchmark runs for roughly `MG_BENCH_MS`
//! milliseconds (default 300), then results are printed one line per bench:
//!
//! ```text
//! md5_1500B                 ...      1_935 ns/iter (min 1_902, max 2_210, 155k iters)
//! ```

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target wall-clock per benchmark (`MG_BENCH_MS`, default 300).
fn target() -> Duration {
    let ms = std::env::var("MG_BENCH_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(300u64);
    Duration::from_millis(ms.max(1))
}

/// Formats an integer with `_` thousands separators.
fn sep(n: u128) -> String {
    let s = n.to_string();
    let mut out = String::new();
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push('_');
        }
        out.push(c);
    }
    out
}

/// One benchmark's timing summary.
#[derive(Clone, Debug)]
pub struct BenchReport {
    /// Benchmark name.
    pub name: String,
    /// Total iterations measured.
    pub iters: u64,
    /// Mean nanoseconds per iteration.
    pub mean_ns: f64,
    /// Fastest observed batch, per iteration.
    pub min_ns: f64,
    /// Slowest observed batch, per iteration.
    pub max_ns: f64,
}

impl BenchReport {
    fn print(&self) {
        let iters = if self.iters >= 10_000 {
            format!("{}k", self.iters / 1_000)
        } else {
            self.iters.to_string()
        };
        println!(
            "{:<28} ... {:>10} ns/iter (min {}, max {}, {} iters)",
            self.name,
            sep(self.mean_ns.round() as u128),
            sep(self.min_ns.round() as u128),
            sep(self.max_ns.round() as u128),
            iters
        );
    }
}

/// Benchmarks a routine with no per-iteration setup.
///
/// The routine is first timed once to pick a batch size, then run in batches
/// until the wall-clock target is spent.
pub fn bench(name: &str, mut f: impl FnMut()) -> BenchReport {
    // Calibration: find how many iterations fit in ~1/20 of the budget.
    let t0 = Instant::now();
    f();
    let once = t0.elapsed().max(Duration::from_nanos(20));
    let budget = target();
    let batch = (budget.as_nanos() / 20 / once.as_nanos()).clamp(1, 1_000_000) as u64;

    let mut iters = 0u64;
    let mut total = Duration::ZERO;
    let mut min_ns = f64::INFINITY;
    let mut max_ns: f64 = 0.0;
    while total < budget {
        let t = Instant::now();
        for _ in 0..batch {
            f();
        }
        let dt = t.elapsed();
        let per = dt.as_nanos() as f64 / batch as f64;
        min_ns = min_ns.min(per);
        max_ns = max_ns.max(per);
        total += dt;
        iters += batch;
    }
    let report = BenchReport {
        name: name.to_string(),
        iters,
        mean_ns: total.as_nanos() as f64 / iters as f64,
        min_ns,
        max_ns,
    };
    report.print();
    report
}

/// Benchmarks a routine that consumes fresh state per iteration; only the
/// routine (not `setup`) is timed.
pub fn bench_with_setup<S, T>(
    name: &str,
    mut setup: impl FnMut() -> S,
    mut routine: impl FnMut(S) -> T,
) -> BenchReport {
    let budget = target();
    let mut iters = 0u64;
    let mut total = Duration::ZERO;
    let mut min_ns = f64::INFINITY;
    let mut max_ns: f64 = 0.0;
    while total < budget {
        let state = setup();
        let t = Instant::now();
        let out = routine(state);
        let dt = t.elapsed();
        black_box(out);
        let per = dt.as_nanos() as f64;
        min_ns = min_ns.min(per);
        max_ns = max_ns.max(per);
        total += dt;
        iters += 1;
        if iters >= 1_000_000 {
            break;
        }
    }
    let report = BenchReport {
        name: name.to_string(),
        iters,
        mean_ns: total.as_nanos() as f64 / iters as f64,
        min_ns,
        max_ns,
    };
    report.print();
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_measures_something() {
        std::env::set_var("MG_BENCH_MS", "5");
        let r = bench("noop_add", || {
            black_box(black_box(1u64) + black_box(2u64));
        });
        assert!(r.iters > 0);
        assert!(r.mean_ns >= 0.0 && r.mean_ns.is_finite());
        assert!(r.min_ns <= r.mean_ns + 1e-9);
    }

    #[test]
    fn setup_variant_times_only_the_routine() {
        std::env::set_var("MG_BENCH_MS", "5");
        let r = bench_with_setup(
            "sum_vec",
            || (0..1000u64).collect::<Vec<_>>(),
            |v| v.iter().sum::<u64>(),
        );
        assert!(r.iters > 0);
    }

    #[test]
    fn separators() {
        assert_eq!(sep(1), "1");
        assert_eq!(sep(1234), "1_234");
        assert_eq!(sep(1234567), "1_234_567");
    }
}
