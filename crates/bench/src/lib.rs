//! # mg-bench — the experiment harness
//!
//! One binary per table/figure of the paper (see DESIGN.md §4 for the full
//! index), all built on the helpers here:
//!
//! * [`BenchConfig`] — the shared environment knobs, read and validated
//!   once per binary;
//! * [`Load`] — the three offered-load levels the paper evaluates, mapped to
//!   background source rates for this simulator (measured ρ is always
//!   reported next to the nominal level);
//! * [`detection_trial`] / [`mobile_detection_trial`] — one full simulation
//!   with a tagged (possibly misbehaving) node and the paper's monitor,
//!   returning test/violation counts — plus `_fanout` variants that attach
//!   one monitor per sample size to a *single* world, so a figure sweeping
//!   sample sizes simulates each (point, seed) once instead of once per size;
//! * [`conditional_probability_run`] — the Figure 3/4 measurement: empirical
//!   `p_{B|I}` / `p_{I|B}` from a [`mg_detect::JointTracker`];
//! * [`sweep`] — cache keys and codecs wiring trial results through the
//!   [`mg_runner`] sweep engine (flat task grid + content-keyed cache);
//! * [`table`] — aligned-table output, mirrored to CSV and JSON files.
//!
//! ## Environment knobs
//!
//! All read through [`BenchConfig::from_env`]; malformed values abort with
//! an error naming the variable.
//!
//! | variable | default | meaning |
//! |----------|---------|---------|
//! | `MG_TRIALS` | 8 | independent seeds per parameter point |
//! | `MG_SIM_SECS` | 120 | virtual seconds per trial |
//! | `MG_CSV_DIR` | unset | when set, each binary also writes CSV here |
//! | `MG_JSON_DIR` | unset | when set, each binary also writes JSON here |
//! | `MG_CACHE` | `on` | result cache: `on`, `off` or `refresh` |
//! | `MG_CACHE_DIR` | `results/.cache` | where cached results live |
//! | `MG_MEDIUM_INDEX` | `grid` | medium spatial index: `grid` or `naive` |

#![warn(missing_docs)]

use mg_dcf::BackoffPolicy;
use mg_detect::{
    JointTracker, MonitorConfig, NodeCounts, ObsJournal, ObsMeta, ObsRecorder, ScenarioBuilder,
    Violation, WorldMonitors, WorldProbe,
};
use mg_net::{NetObserver, Scenario, ScenarioConfig, Shards, SourceCfg, TrafficKind};
use mg_phy::MediumIndex;
use mg_runner::{CacheKey, Codec, Runner};
use mg_sim::{SimDuration, SimTime};
use mg_trace::MetricsSnapshot;

pub use mg_detect::FaultPlan;
pub use mg_trace::json;

pub mod config;
pub mod sweep;
pub mod table;

pub use config::BenchConfig;

/// The paper's three offered-load levels, mapped to background Poisson/CBR
/// rates for this simulator. The mapping was chosen so the *measured* busy
/// fraction at the central monitor lands near the nominal level; every
/// experiment prints the measured value alongside.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Load {
    /// Nominal ρ ≈ 0.3.
    Low,
    /// Nominal ρ ≈ 0.6.
    Medium,
    /// Nominal ρ ≈ 0.9.
    High,
}

impl Load {
    /// All three levels in paper order.
    pub fn all() -> [Load; 3] {
        [Load::Low, Load::Medium, Load::High]
    }

    /// The nominal traffic intensity this level stands for.
    pub fn nominal(&self) -> f64 {
        match self {
            Load::Low => 0.3,
            Load::Medium => 0.6,
            Load::High => 0.9,
        }
    }

    /// Background per-source packet rate realizing the level (without the
    /// tagged node's saturated flow, which adds its own share).
    ///
    /// Note: this simulator's channel saturates near a measured busy
    /// fraction of ~0.6 from background alone (interference-range collisions
    /// put a hard ceiling on spatial reuse); `High` therefore sits at the
    /// heaviest pre-collapse operating point rather than a literal ρ = 0.9.
    /// Every experiment reports the measured ρ next to the nominal label.
    pub fn rate_pps(&self) -> f64 {
        match self {
            Load::Low => 0.8,
            Load::Medium => 4.0,
            Load::High => 8.0,
        }
    }
}

impl std::fmt::Display for Load {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.1}", self.nominal())
    }
}

/// Outcome of one detection trial.
#[derive(Clone, Copy, Debug, Default)]
pub struct TrialOutcome {
    /// Hypothesis tests run.
    pub tests: u64,
    /// Tests rejecting H0.
    pub rejections: u64,
    /// Deterministic violations recorded.
    pub violations: u64,
    /// Back-off samples collected.
    pub samples: u64,
    /// Anomalous observations held below the monitor's confirmation
    /// threshold (nonzero only under observation-fault injection).
    pub uncertain: u64,
    /// Measured overall busy fraction at the monitor.
    pub rho: f64,
    /// Stack-wide counters and histograms from the trial's metrics.
    pub metrics: MetricsSnapshot,
}

impl TrialOutcome {
    /// Merges another outcome (for aggregation across seeds).
    pub fn merge(&mut self, o: &TrialOutcome) {
        self.tests += o.tests;
        self.rejections += o.rejections;
        self.violations += o.violations;
        self.samples += o.samples;
        self.uncertain += o.uncertain;
        self.rho += o.rho; // divide by trial count at the end
        self.metrics.merge(&o.metrics);
    }

    /// Rejection rate (detection probability under H1, misdiagnosis
    /// probability under H0).
    pub fn rejection_rate(&self) -> f64 {
        if self.tests == 0 {
            0.0
        } else {
            self.rejections as f64 / self.tests as f64
        }
    }
}

/// One static world, one monitor per requested sample size.
///
/// This is the fan-out at the heart of the sample-size figures: the world's
/// evolution is independent of the monitors (observers are strictly
/// read-only), so `sample_sizes.len()` monitors on one simulation measure
/// exactly what `sample_sizes.len()` identical simulations would — at 1/N
/// the cost. Outcomes come back in `sample_sizes` order, each carrying the
/// same world-metrics snapshot.
fn detection_trial_multi(
    cfg: ScenarioConfig,
    pm: u8,
    sample_sizes: &[usize],
    statistical_only: bool,
    faults: &FaultPlan,
) -> Vec<TrialOutcome> {
    let secs = cfg.sim_secs;
    let scenario = Scenario::new(cfg);
    let (s, r) = scenario.tagged_pair();
    let d = scenario.positions()[s].distance(scenario.positions()[r]);
    let mut mc = MonitorConfig::grid_paper(s, r, d);
    if statistical_only {
        mc.blatant_check = false;
    }
    if matches!(scenario.config().topology, mg_net::TopologyCfg::Random { .. }) {
        mc.counts = NodeCounts::FromDensity;
    }
    let mut b = ScenarioBuilder::new(scenario);
    let attacker = b.attacker(s);
    let watches: Vec<_> = sample_sizes
        .iter()
        .map(|&ss| b.monitor(mc.with_sample_size(ss)))
        .collect();
    b.source(SourceCfg::saturated(s, r));
    b.metrics();
    if !faults.is_noop() {
        b.fault(faults.clone());
    }
    let mut world = b.build();
    if pm > 0 {
        world.set_policy(attacker.id(), BackoffPolicy::Scaled { pm });
    }
    world.run_until(SimTime::from_secs(secs));
    let metrics = world.metrics().snapshot();
    watches
        .into_iter()
        .map(|w| {
            let diag = world.monitors().diagnosis(w);
            TrialOutcome {
                tests: diag.tests_run as u64,
                rejections: diag.rejections as u64,
                violations: diag.violations as u64,
                samples: diag.samples_collected as u64,
                uncertain: diag.uncertain as u64,
                rho: diag.measured_rho,
                metrics,
            }
        })
        .collect()
}

/// Like [`detection_trial`] but with a fully explicit [`ScenarioConfig`].
///
/// `seed` overrides `cfg.seed`, so sweeping seeds over a fixed base config
/// does what it says.
pub fn detection_trial_with_cfg(
    seed: u64,
    cfg: ScenarioConfig,
    pm: u8,
    sample_size: usize,
    statistical_only: bool,
) -> TrialOutcome {
    detection_trial_with_cfg_faulted(seed, cfg, pm, sample_size, statistical_only, &FaultPlan::default())
}

/// [`detection_trial_with_cfg`] with a [`FaultPlan`] injected at the
/// monitor's observation boundary.
pub fn detection_trial_with_cfg_faulted(
    seed: u64,
    cfg: ScenarioConfig,
    pm: u8,
    sample_size: usize,
    statistical_only: bool,
    faults: &FaultPlan,
) -> TrialOutcome {
    let cfg = ScenarioConfig { seed, ..cfg };
    detection_trial_multi(cfg, pm, &[sample_size], statistical_only, faults)[0]
}

/// Runs one static detection trial: the paper's Figure 5 (PM > 0) and
/// Figure 6 (PM = 0) measurement.
pub fn detection_trial(
    seed: u64,
    load: Load,
    pm: u8,
    sample_size: usize,
    secs: u64,
    statistical_only: bool,
    cfg_base: ScenarioConfig,
) -> TrialOutcome {
    detection_trial_fanout(seed, load, pm, &[sample_size], secs, statistical_only, cfg_base)
        .remove(0)
}

/// [`detection_trial`] fanned out over several sample sizes on one world:
/// one simulation, one monitor per size, outcomes in `sample_sizes` order.
pub fn detection_trial_fanout(
    seed: u64,
    load: Load,
    pm: u8,
    sample_sizes: &[usize],
    secs: u64,
    statistical_only: bool,
    cfg_base: ScenarioConfig,
) -> Vec<TrialOutcome> {
    detection_trial_fanout_faulted(
        seed,
        load,
        pm,
        sample_sizes,
        secs,
        statistical_only,
        cfg_base,
        &FaultPlan::default(),
    )
}

/// [`detection_trial_fanout`] with a [`FaultPlan`] injected at every
/// monitor's observation boundary (chaos testing). The world itself runs
/// unchanged; a no-op plan makes this identical to the plain variant.
#[allow(clippy::too_many_arguments)]
pub fn detection_trial_fanout_faulted(
    seed: u64,
    load: Load,
    pm: u8,
    sample_sizes: &[usize],
    secs: u64,
    statistical_only: bool,
    cfg_base: ScenarioConfig,
    faults: &FaultPlan,
) -> Vec<TrialOutcome> {
    let cfg = ScenarioConfig {
        sim_secs: secs,
        rate_pps: load.rate_pps(),
        seed,
        ..cfg_base
    };
    detection_trial_multi(cfg, pm, sample_sizes, statistical_only, faults)
}

/// One mobile world, one monitor pool per requested sample size.
fn mobile_detection_trial_multi(
    seed: u64,
    load: Load,
    pm: u8,
    sample_sizes: &[usize],
    secs: u64,
    pause: SimDuration,
    faults: &FaultPlan,
) -> Vec<TrialOutcome> {
    let cfg = ScenarioConfig {
        sim_secs: secs,
        rate_pps: load.rate_pps(),
        seed,
        ..ScenarioConfig::mobile_paper(seed, pause)
    };
    let scenario = Scenario::new(cfg);
    let (s, r) = scenario.tagged_pair();
    let vantages: Vec<usize> = (0..scenario.positions().len()).filter(|&v| v != s).collect();
    let mut template = MonitorConfig::random_paper(s, r, 240.0);
    // Under mobility the vantage's collision environment diverges from the
    // tagged node's, so the EIFS compensation over-subtracts and becomes a
    // false-alarm source; run it conservative (see EXPERIMENTS.md).
    template.eifs_weight = 0.0;
    // Distance-scaled calibration tracks the elected vantage's proximity
    // (close vantages share almost all of the tagged node's channel view).
    template.counts = NodeCounts::SimCalibrated;
    let mut b = ScenarioBuilder::new(scenario);
    let attacker = b.attacker(s);
    let watches: Vec<_> = sample_sizes
        .iter()
        .map(|&ss| b.monitor_pool(template.with_sample_size(ss), &vantages))
        .collect();
    // The tagged flow follows whichever neighbor is currently in range.
    b.source(SourceCfg {
        node: s,
        model: mg_net::TrafficModel::Saturated,
        dst: mg_net::DstPolicy::StickyRandomNeighbor,
        payload_len: 512,
    });
    b.metrics();
    if !faults.is_noop() {
        b.fault(faults.clone());
    }
    let mut world = b.build();
    if pm > 0 {
        world.set_policy(attacker.id(), BackoffPolicy::Scaled { pm });
    }
    world.run_until(SimTime::from_secs(secs));
    let metrics = world.metrics().snapshot();
    watches
        .into_iter()
        .map(|w| {
            let diag = world.monitors().diagnosis(w);
            TrialOutcome {
                tests: diag.tests_run as u64,
                rejections: diag.rejections as u64,
                violations: diag.violations as u64,
                samples: diag.samples_collected as u64,
                uncertain: diag.uncertain as u64,
                rho: diag.measured_rho,
                metrics,
            }
        })
        .collect()
}

/// Runs one mobile detection trial (Figures 5(d)/6(b)): random topology,
/// random waypoint, and a [`mg_detect::MonitorPool`] with range-based
/// handoff.
pub fn mobile_detection_trial(
    seed: u64,
    load: Load,
    pm: u8,
    sample_size: usize,
    secs: u64,
    pause: SimDuration,
) -> TrialOutcome {
    mobile_detection_trial_multi(
        seed,
        load,
        pm,
        &[sample_size],
        secs,
        pause,
        &FaultPlan::default(),
    )
    .remove(0)
}

/// [`mobile_detection_trial`] fanned out over several sample sizes on one
/// world (one pool per size).
pub fn mobile_detection_trial_fanout(
    seed: u64,
    load: Load,
    pm: u8,
    sample_sizes: &[usize],
    secs: u64,
    pause: SimDuration,
) -> Vec<TrialOutcome> {
    mobile_detection_trial_multi(seed, load, pm, sample_sizes, secs, pause, &FaultPlan::default())
}

/// [`mobile_detection_trial_fanout`] with a [`FaultPlan`] injected at every
/// pool member's observation boundary.
#[allow(clippy::too_many_arguments)]
pub fn mobile_detection_trial_fanout_faulted(
    seed: u64,
    load: Load,
    pm: u8,
    sample_sizes: &[usize],
    secs: u64,
    pause: SimDuration,
    faults: &FaultPlan,
) -> Vec<TrialOutcome> {
    mobile_detection_trial_multi(seed, load, pm, sample_sizes, secs, pause, faults)
}

/// Simulates the static detection world for `(seed, cfg, pm)` **once** and
/// records the monitored pair's observation stream.
///
/// The exclusion set (`attacker` + `reserve`) matches what
/// [`detection_trial_with_cfg`] derives from its monitor registration, so
/// background sources land on the same nodes and the world evolves
/// byte-identically to a monitored run — observers are strictly read-only.
/// The returned journal can then be replayed into any number of detector
/// configurations via [`mg_detect::replay_pool`]; together with
/// [`sweep::journal_key`] this is the second cache tier the ablation
/// binaries run on.
pub fn record_detection_world(seed: u64, cfg: ScenarioConfig, pm: u8) -> ObsJournal {
    let cfg = ScenarioConfig { seed, ..cfg };
    let secs = cfg.sim_secs;
    let scenario = Scenario::new(cfg);
    let (s, r) = scenario.tagged_pair();
    let d = scenario.positions()[s].distance(scenario.positions()[r]);
    let mut b = ScenarioBuilder::new(scenario);
    let attacker = b.attacker(s);
    b.reserve(r);
    b.source(SourceCfg::saturated(s, r));
    let meta = ObsMeta {
        tagged: s,
        vantages: vec![r],
        pair_distance: d,
        seed,
        params: vec![("pm".into(), pm.to_string())],
    };
    let mut world = b.probe(ObsRecorder::new(meta)).build();
    if pm > 0 {
        world.set_policy(attacker.id(), BackoffPolicy::Scaled { pm });
    }
    world.run_until(SimTime::from_secs(secs));
    world.probe().journal().clone()
}

/// What one collaborative-detection trial observed: the quorum's verdict
/// plus the realized Byzantine cast and the gossip volume behind it.
///
/// `byzantine` is the *realized* count — roles are drawn per vantage from
/// the fault plan's fractions, so a `lie=0.25` cell can materialize 0..n
/// liars. The false-conviction assertion in `bench_quorum` conditions on
/// this realized count, not the nominal fraction: only trials with fewer
/// than `k` liars carry the zero-false-conviction guarantee.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct QuorumOutcome {
    /// True when an *honest* member convicted the tagged node.
    pub convicted: bool,
    /// Distinct accusers against the tagged node at the best-informed
    /// honest member.
    pub votes: u64,
    /// Quorum size (members actually built).
    pub members: u64,
    /// Realized Byzantine members (roles drawn from the fault plan).
    pub byzantine: u64,
    /// Per-receiver accusation copies offered to the gossip channel.
    pub gossip_sent: u64,
    /// Copies lost to channel loss.
    pub gossip_dropped: u64,
    /// Copies handed to their receiver.
    pub gossip_delivered: u64,
}

/// Simulates the static detection world for `(seed, cfg, pm)` once and
/// records the observation streams of the quorum's member vantages: the
/// closest `members_cap` non-tagged nodes still inside *decode* range of
/// the tagged node (a monitor must decode its RTS/CTS exchange). The
/// journal header carries each member's measured distance as a `dist.<v>`
/// parameter, so [`mg_quorum::members_from_journal`] rebuilds the exact
/// live geometry on replay — this is the quorum analogue of
/// [`record_detection_world`], cached under [`sweep::quorum_journal_key`].
pub fn record_quorum_world(
    seed: u64,
    cfg: ScenarioConfig,
    pm: u8,
    members_cap: usize,
) -> ObsJournal {
    let cfg = ScenarioConfig { seed, ..cfg };
    let secs = cfg.sim_secs;
    let tx_range = cfg.tx_range;
    let scenario = Scenario::new(cfg);
    let (s, r) = scenario.tagged_pair();
    let pos = scenario.positions();
    let mut members: Vec<(usize, f64)> = (0..pos.len())
        .filter(|&v| v != s)
        .map(|v| (v, pos[s].distance(pos[v])))
        .filter(|&(_, d)| d <= tx_range)
        .collect();
    members.sort_by(|a, b| {
        a.1.partial_cmp(&b.1).expect("finite distance").then(a.0.cmp(&b.0))
    });
    members.truncate(members_cap);
    assert!(!members.is_empty(), "no vantage within decode range of node {s}");
    let mut b = ScenarioBuilder::new(scenario);
    let attacker = b.attacker(s);
    for &(v, _) in &members {
        b.reserve(v);
    }
    b.source(SourceCfg::saturated(s, r));
    let mut params = vec![("pm".into(), pm.to_string())];
    for &(v, d) in &members {
        params.push((format!("dist.{v}"), d.to_string()));
    }
    let meta = ObsMeta {
        tagged: s,
        vantages: members.iter().map(|&(v, _)| v).collect(),
        pair_distance: members[0].1,
        seed,
        params,
    };
    let mut world = b.probe(ObsRecorder::new(meta)).build();
    if pm > 0 {
        world.set_policy(attacker.id(), BackoffPolicy::Scaled { pm });
    }
    world.run_until(SimTime::from_secs(secs));
    world.probe().journal().clone()
}

/// Replays a [`record_quorum_world`] journal into a gossiping
/// [`mg_quorum::QuorumSession`] with conviction threshold `k` and the
/// Byzantine cast drawn from `faults`, and reports the collaborative
/// verdict. Pure detector-side work: sweeping `k` or the Byzantine
/// fraction re-runs this, never the simulation.
pub fn quorum_trial_from_journal(
    journal: &ObsJournal,
    sample_size: usize,
    k: usize,
    faults: &FaultPlan,
) -> QuorumOutcome {
    let meta = journal.meta();
    let members = mg_quorum::members_from_journal(journal);
    assert!(
        members.len() >= k,
        "quorum k={k} exceeds the {} recorded vantages",
        members.len()
    );
    let template = MonitorConfig::grid_paper(meta.tagged, members[0].0, members[0].1)
        .with_sample_size(sample_size);
    let mut q = mg_quorum::QuorumSpec::new(meta.tagged, &members, template, k)
        .with_faults(faults.clone())
        .with_seed(meta.seed)
        .build();
    journal.replay(&mut q);
    q.finish();
    let byzantine = q.byzantine_count() as u64;
    let gossip = q.gossip();
    QuorumOutcome {
        convicted: q.is_flagged(),
        votes: q.votes_against(meta.tagged) as u64,
        members: members.len() as u64,
        byzantine,
        gossip_sent: gossip.sent,
        gossip_dropped: gossip.dropped,
        gossip_delivered: gossip.delivered,
    }
}

/// Runs a sweep through the [`mg_runner`] engine, degrading gracefully on
/// trial failures: every poisoned cell (worker panic or watchdog timeout) is
/// reported on stderr, and the process exits with status 1 *before* any
/// table is emitted — a partially-failed sweep never masquerades as a clean
/// figure. Fault-free sweeps return all results in task order, exactly like
/// [`mg_runner::Runner::sweep`].
pub fn sweep_or_exit<T: Sync, R: Send>(
    runner: &Runner,
    tasks: &[T],
    key: impl Fn(&T) -> CacheKey + Sync,
    codec: Codec<R>,
    run: impl Fn(&T) -> R + Sync,
) -> Vec<R> {
    let results = runner.try_sweep(tasks, key, codec, run);
    let mut failed = 0usize;
    let mut ok = Vec::with_capacity(results.len());
    for r in results {
        match r {
            Ok(v) => ok.push(v),
            Err(e) => {
                failed += 1;
                eprintln!("mg-bench: error: {e}");
            }
        }
    }
    if failed > 0 {
        eprintln!("mg-bench: {failed} sweep cell(s) failed; no tables emitted");
        std::process::exit(1);
    }
    ok
}

/// Observer measuring the Figure 3/4 conditional probabilities for a pair.
pub struct JointProbe {
    s: usize,
    r: usize,
    /// The joint carrier-sense statistics.
    pub joint: JointTracker,
}

impl JointProbe {
    /// Probes the pair (s, r).
    pub fn new(s: usize, r: usize) -> Self {
        JointProbe {
            s,
            r,
            joint: JointTracker::new(),
        }
    }
}

impl NetObserver for JointProbe {
    fn on_channel_edge(&mut self, node: usize, busy: bool, now: SimTime) {
        if node == self.s {
            self.joint.on_s_edge(busy, now);
        }
        if node == self.r {
            self.joint.on_r_edge(busy, now);
        }
    }
    fn on_tx_start(&mut self, src: usize, _f: &mg_dcf::Frame, now: SimTime, end: SimTime) {
        if src == self.s {
            self.joint.on_s_tx(now, end);
        }
        if src == self.r {
            self.joint.on_r_tx(now, end);
        }
    }
}

/// Result of one conditional-probability measurement run.
#[derive(Clone, Copy, Debug)]
pub struct CondProbPoint {
    /// Measured monitor-side traffic intensity.
    pub rho: f64,
    /// Empirical `P(S busy | R idle)`.
    pub p_bi: f64,
    /// Empirical `P(S idle | R busy)`.
    pub p_ib: f64,
    /// The probed pair's distance (m).
    pub pair_distance: f64,
}

/// One Figure 3/4 simulation point: all nodes compliant, measure the joint
/// statistics of the central pair.
pub fn conditional_probability_run(
    seed: u64,
    rate_pps: f64,
    secs: u64,
    cfg_base: ScenarioConfig,
) -> CondProbPoint {
    let cfg = ScenarioConfig {
        sim_secs: secs,
        rate_pps,
        seed,
        ..cfg_base
    };
    let scenario = Scenario::new(cfg);
    let (s, r) = scenario.tagged_pair();
    let pair_distance = scenario.positions()[s].distance(scenario.positions()[r]);
    // No roles declared: the probed pair keeps its background traffic, same
    // as the old empty exclusion list.
    let b = ScenarioBuilder::new(scenario).probe(JointProbe::new(s, r));
    let mut world = b.build();
    world.run_until(SimTime::from_secs(secs));
    let now = world.now();
    let probe = world.probe_mut();
    probe.joint.finish(now);
    CondProbPoint {
        rho: probe.joint.r_rho(),
        p_bi: probe.joint.p_busy_given_idle(),
        p_ib: probe.joint.p_idle_given_busy(),
        pair_distance,
    }
}

/// Averages conditional-probability points into `(rho, p_bi, p_ib, dist)`.
pub fn aggregate_points(points: &[CondProbPoint]) -> (f64, f64, f64, f64) {
    if points.is_empty() {
        return (0.0, 0.0, 0.0, 0.0);
    }
    let n = points.len() as f64;
    (
        points.iter().map(|p| p.rho).sum::<f64>() / n,
        points.iter().map(|p| p.p_bi).sum::<f64>() / n,
        points.iter().map(|p| p.p_ib).sum::<f64>() / n,
        points.iter().map(|p| p.pair_distance).sum::<f64>() / n,
    )
}

/// Aggregates trial outcomes over seeds.
pub fn aggregate(outcomes: &[TrialOutcome]) -> TrialOutcome {
    let mut total = TrialOutcome::default();
    for o in outcomes {
        total.merge(o);
    }
    if !outcomes.is_empty() {
        total.rho /= outcomes.len() as f64;
    }
    total
}

/// The `MG_MEDIUM_INDEX` override (default [`MediumIndex::Grid`]), so a CI
/// lane can rerun any sweep against the reference naive scan. Malformed
/// values abort like every other knob.
fn env_medium_index() -> MediumIndex {
    match std::env::var("MG_MEDIUM_INDEX") {
        Err(_) => MediumIndex::default(),
        Ok(raw) => MediumIndex::parse(&raw).unwrap_or_else(|e| {
            eprintln!("mg-bench: invalid MG_MEDIUM_INDEX value: {e}");
            std::process::exit(2);
        }),
    }
}

/// The `MG_SHARDS` override (default [`Shards::Serial`]), so a CI lane can
/// rerun any sweep on the region-sharded engine and diff it against the
/// serial reference. Malformed values abort like every other knob.
fn env_shards() -> Shards {
    match std::env::var("MG_SHARDS") {
        Err(_) => Shards::default(),
        Ok(raw) => Shards::parse(&raw).unwrap_or_else(|e| {
            eprintln!("mg-bench: invalid MG_SHARDS value: {e}");
            std::process::exit(2);
        }),
    }
}

/// The scenario base for the paper's grid experiments.
pub fn grid_base() -> ScenarioConfig {
    ScenarioConfig {
        medium_index: env_medium_index(),
        shards: env_shards(),
        ..ScenarioConfig::grid_paper(0)
    }
}

/// The scenario base for the paper's random-topology experiments.
pub fn random_base() -> ScenarioConfig {
    ScenarioConfig {
        traffic: TrafficKind::Cbr,
        medium_index: env_medium_index(),
        shards: env_shards(),
        ..ScenarioConfig::random_paper(0)
    }
}

/// All violations of a monitor rendered as short strings (debug output).
pub fn violation_kinds(violations: &[Violation]) -> Vec<&'static str> {
    violations
        .iter()
        .map(|v| match v {
            Violation::SequenceReuse { .. } => "seq-reuse",
            Violation::ImplausibleAdvance { .. } => "implausible-advance",
            Violation::AttemptMismatch { .. } => "attempt",
            Violation::UnverifiedData { .. } => "unverified-data",
            Violation::BlatantCountdown { .. } => "blatant",
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loads_are_ordered() {
        assert!(Load::Low.rate_pps() < Load::Medium.rate_pps());
        assert!(Load::Medium.rate_pps() < Load::High.rate_pps());
        assert_eq!(Load::all().len(), 3);
    }

    #[test]
    fn detection_trial_smoke() {
        let o = detection_trial(1, Load::Low, 90, 10, 10, false, grid_base());
        assert!(o.samples > 0, "{o:?}");
        assert!(o.violations > 0, "PM=90 must trip the blatant check: {o:?}");
        assert!(
            o.metrics.total(mg_trace::Counter::TxFrames) > 0,
            "trials must carry a metrics snapshot: {o:?}"
        );
    }

    #[test]
    fn fanout_matches_single_monitor_runs() {
        // One world with four monitors must measure exactly what four
        // identical worlds with one monitor each measure — and the outcomes
        // must not depend on sample-size registration order.
        let sizes = [10usize, 25, 50];
        let fanned = detection_trial_fanout(3, Load::Low, 60, &sizes, 10, false, grid_base());
        for (i, &ss) in sizes.iter().enumerate() {
            let solo = detection_trial(3, Load::Low, 60, ss, 10, false, grid_base());
            assert_eq!(fanned[i].tests, solo.tests, "ss={ss}");
            assert_eq!(fanned[i].rejections, solo.rejections, "ss={ss}");
            assert_eq!(fanned[i].violations, solo.violations, "ss={ss}");
            assert_eq!(fanned[i].samples, solo.samples, "ss={ss}");
            assert!((fanned[i].rho - solo.rho).abs() < 1e-12, "ss={ss}");
        }
        let reversed: Vec<usize> = sizes.iter().rev().copied().collect();
        let back = detection_trial_fanout(3, Load::Low, 60, &reversed, 10, false, grid_base());
        for (i, o) in back.iter().rev().enumerate() {
            assert_eq!(o.tests, fanned[i].tests);
            assert_eq!(o.samples, fanned[i].samples);
        }
    }

    #[test]
    fn fanout_matches_single_monitor_runs_under_faults() {
        // The fan-out equivalence must survive fault injection: each
        // attached monitor derives its fault stream from (plan seed,
        // vantage) alone, so a monitor sees the same drops/deafness whether
        // it shares a world with three siblings or runs alone.
        let plan = FaultPlan::parse("seed=11,loss=0.1,deaf=50:10").expect("valid spec");
        let sizes = [10usize, 25, 50];
        let fanned = detection_trial_fanout_faulted(
            3,
            Load::Low,
            60,
            &sizes,
            10,
            false,
            grid_base(),
            &plan,
        );
        for (i, &ss) in sizes.iter().enumerate() {
            let solo = detection_trial_fanout_faulted(
                3,
                Load::Low,
                60,
                &[ss],
                10,
                false,
                grid_base(),
                &plan,
            )
            .remove(0);
            assert_eq!(fanned[i].tests, solo.tests, "ss={ss}");
            assert_eq!(fanned[i].violations, solo.violations, "ss={ss}");
            assert_eq!(fanned[i].samples, solo.samples, "ss={ss}");
            assert_eq!(fanned[i].uncertain, solo.uncertain, "ss={ss}");
            assert!((fanned[i].rho - solo.rho).abs() < 1e-12, "ss={ss}");
        }
        // And the plan must actually bite: fewer samples than fault-free.
        let clean = detection_trial_fanout(3, Load::Low, 60, &sizes, 10, false, grid_base());
        assert!(
            fanned.iter().map(|o| o.samples).sum::<u64>()
                < clean.iter().map(|o| o.samples).sum::<u64>(),
            "a 10% loss + deafness plan must suppress some observations"
        );
    }

    #[test]
    fn replay_reproduces_a_simulated_trial() {
        // The replay tier's contract at the bench level: recording the world
        // once and replaying the journal yields the same outcome as the
        // monitored simulation it stands in for.
        let cfg = ScenarioConfig {
            sim_secs: 10,
            rate_pps: Load::Medium.rate_pps(),
            seed: 42,
            ..grid_base()
        };
        let live = detection_trial_with_cfg(42, cfg, 90, 25, false);
        let journal = record_detection_world(42, cfg, 90);
        let scenario = Scenario::new(ScenarioConfig { seed: 42, ..cfg });
        let (s, r) = scenario.tagged_pair();
        let d = scenario.positions()[s].distance(scenario.positions()[r]);
        let mc = MonitorConfig::grid_paper(s, r, d).with_sample_size(25);
        let diag = mg_detect::replay_pool(&journal, mc).diagnosis();
        assert_eq!(diag.tests_run as u64, live.tests);
        assert_eq!(diag.rejections as u64, live.rejections);
        assert_eq!(diag.violations as u64, live.violations);
        assert_eq!(diag.samples_collected as u64, live.samples);
        assert_eq!(
            diag.measured_rho.to_bits(),
            live.rho.to_bits(),
            "replayed rho must be bit-identical"
        );
    }

    #[test]
    fn with_cfg_honors_the_seed_argument() {
        let base = grid_base();
        let cfg = ScenarioConfig { sim_secs: 10, rate_pps: 0.8, seed: 999, ..base };
        let a = detection_trial_with_cfg(5, cfg, 0, 10, true);
        let b = detection_trial_with_cfg(5, cfg, 0, 10, true);
        let c = detection_trial_with_cfg(6, cfg, 0, 10, true);
        assert_eq!(a.samples, b.samples, "same seed ⇒ same trial");
        assert!(
            a.samples != c.samples || (a.rho - c.rho).abs() > 1e-12,
            "different seeds must differ somewhere: {a:?} vs {c:?}"
        );
    }

    #[test]
    fn conditional_probability_smoke() {
        let p = conditional_probability_run(1, 4.0, 10, grid_base());
        assert!(p.rho > 0.0 && p.rho < 1.0);
        assert!(p.p_bi >= 0.0 && p.p_bi <= 1.0);
    }

    #[test]
    fn aggregate_averages_rho() {
        let a = TrialOutcome {
            tests: 2,
            rejections: 1,
            violations: 0,
            samples: 10,
            rho: 0.4,
            ..TrialOutcome::default()
        };
        let b = TrialOutcome {
            tests: 2,
            rejections: 2,
            violations: 3,
            samples: 10,
            rho: 0.6,
            ..TrialOutcome::default()
        };
        let agg = aggregate(&[a, b]);
        assert_eq!(agg.tests, 4);
        assert_eq!(agg.rejections, 3);
        assert!((agg.rho - 0.5).abs() < 1e-12);
        assert!((agg.rejection_rate() - 0.75).abs() < 1e-12);
    }
}
