//! # mg-bench — the experiment harness
//!
//! One binary per table/figure of the paper (see DESIGN.md §4 for the full
//! index), all built on the helpers here:
//!
//! * [`Load`] — the three offered-load levels the paper evaluates, mapped to
//!   background source rates for this simulator (measured ρ is always
//!   reported next to the nominal level);
//! * [`detection_trial`] / [`mobile_detection_trial`] — one full simulation
//!   with a tagged (possibly misbehaving) node and the paper's monitor,
//!   returning test/violation counts;
//! * [`conditional_probability_run`] — the Figure 3/4 measurement: empirical
//!   `p_{B|I}` / `p_{I|B}` from a [`mg_detect::JointTracker`];
//! * [`parallel_seeds`] — scoped-thread fan-out of independent trials across
//!   cores;
//! * [`table`] — aligned-table output, mirrored to CSV and JSON files;
//! * [`json`] — the hand-rolled JSON writer behind the result files.
//!
//! ## Environment knobs
//!
//! | variable | default | meaning |
//! |----------|---------|---------|
//! | `MG_TRIALS` | 8 | independent seeds per parameter point |
//! | `MG_SIM_SECS` | 120 | virtual seconds per trial |
//! | `MG_CSV_DIR` | unset | when set, each binary also writes CSV here |

#![warn(missing_docs)]

use mg_dcf::BackoffPolicy;
use mg_detect::{JointTracker, Monitor, MonitorConfig, MonitorPool, NodeCounts, Violation};
use mg_net::{NetObserver, Scenario, ScenarioConfig, SourceCfg, TrafficKind};
use mg_phy::Medium;
use mg_sim::{SimDuration, SimTime};
use mg_trace::{Metrics, MetricsSnapshot, Tracer};

pub use mg_trace::json;

pub mod table;

/// Reads an env knob with a default.
pub fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Number of independent seeds per parameter point (`MG_TRIALS`, default 8).
pub fn trials() -> u64 {
    env_u64("MG_TRIALS", 8)
}

/// Virtual seconds per trial (`MG_SIM_SECS`, default 120).
pub fn sim_secs() -> u64 {
    env_u64("MG_SIM_SECS", 120)
}

/// The paper's three offered-load levels, mapped to background Poisson/CBR
/// rates for this simulator. The mapping was chosen so the *measured* busy
/// fraction at the central monitor lands near the nominal level; every
/// experiment prints the measured value alongside.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Load {
    /// Nominal ρ ≈ 0.3.
    Low,
    /// Nominal ρ ≈ 0.6.
    Medium,
    /// Nominal ρ ≈ 0.9.
    High,
}

impl Load {
    /// All three levels in paper order.
    pub fn all() -> [Load; 3] {
        [Load::Low, Load::Medium, Load::High]
    }

    /// The nominal traffic intensity this level stands for.
    pub fn nominal(&self) -> f64 {
        match self {
            Load::Low => 0.3,
            Load::Medium => 0.6,
            Load::High => 0.9,
        }
    }

    /// Background per-source packet rate realizing the level (without the
    /// tagged node's saturated flow, which adds its own share).
    ///
    /// Note: this simulator's channel saturates near a measured busy
    /// fraction of ~0.6 from background alone (interference-range collisions
    /// put a hard ceiling on spatial reuse); `High` therefore sits at the
    /// heaviest pre-collapse operating point rather than a literal ρ = 0.9.
    /// Every experiment reports the measured ρ next to the nominal label.
    pub fn rate_pps(&self) -> f64 {
        match self {
            Load::Low => 0.8,
            Load::Medium => 4.0,
            Load::High => 8.0,
        }
    }
}

impl std::fmt::Display for Load {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.1}", self.nominal())
    }
}

/// Outcome of one detection trial.
#[derive(Clone, Copy, Debug, Default)]
pub struct TrialOutcome {
    /// Hypothesis tests run.
    pub tests: u64,
    /// Tests rejecting H0.
    pub rejections: u64,
    /// Deterministic violations recorded.
    pub violations: u64,
    /// Back-off samples collected.
    pub samples: u64,
    /// Measured overall busy fraction at the monitor.
    pub rho: f64,
    /// Stack-wide counters and histograms from the trial's [`Metrics`].
    pub metrics: MetricsSnapshot,
}

impl TrialOutcome {
    /// Merges another outcome (for aggregation across seeds).
    pub fn merge(&mut self, o: &TrialOutcome) {
        self.tests += o.tests;
        self.rejections += o.rejections;
        self.violations += o.violations;
        self.samples += o.samples;
        self.rho += o.rho; // divide by trial count at the end
        self.metrics.merge(&o.metrics);
    }

    /// Rejection rate (detection probability under H1, misdiagnosis
    /// probability under H0).
    pub fn rejection_rate(&self) -> f64 {
        if self.tests == 0 {
            0.0
        } else {
            self.rejections as f64 / self.tests as f64
        }
    }
}

/// Like [`detection_trial`] but with a fully explicit [`ScenarioConfig`].
pub fn detection_trial_with_cfg(
    _seed: u64,
    cfg: ScenarioConfig,
    pm: u8,
    sample_size: usize,
    statistical_only: bool,
) -> TrialOutcome {
    let secs = cfg.sim_secs;
    let scenario = Scenario::new(cfg);
    let (s, r) = scenario.tagged_pair();
    let d = scenario.positions()[s].distance(scenario.positions()[r]);
    let mut mc = MonitorConfig::grid_paper(s, r, d);
    mc.sample_size = sample_size;
    if statistical_only {
        mc.blatant_check = false;
    }
    if matches!(scenario.config().topology, mg_net::TopologyCfg::Random { .. }) {
        mc.counts = NodeCounts::FromDensity;
    }
    let mut monitor = Monitor::new(mc);
    let handle = Metrics::new(scenario.positions().len());
    monitor.set_instrumentation(Tracer::disabled(), handle.clone());
    let mut world = scenario.build_with_observer(&[s, r], monitor);
    world.set_metrics(handle);
    if pm > 0 {
        world.set_policy(s, BackoffPolicy::Scaled { pm });
    }
    world.add_source(SourceCfg::saturated(s, r));
    world.run_until(SimTime::from_secs(secs));
    let metrics = world.metrics().snapshot();
    let m = world.observer();
    let diag = m.diagnosis();
    TrialOutcome {
        tests: diag.tests_run as u64,
        rejections: diag.rejections as u64,
        violations: diag.violations as u64,
        samples: diag.samples_collected as u64,
        rho: m.overall_rho(),
        metrics,
    }
}

/// Runs one static detection trial: the paper's Figure 5 (PM > 0) and
/// Figure 6 (PM = 0) measurement.
pub fn detection_trial(
    seed: u64,
    load: Load,
    pm: u8,
    sample_size: usize,
    secs: u64,
    statistical_only: bool,
    cfg_base: ScenarioConfig,
) -> TrialOutcome {
    let cfg = ScenarioConfig {
        sim_secs: secs,
        rate_pps: load.rate_pps(),
        seed,
        ..cfg_base
    };
    let scenario = Scenario::new(cfg);
    let (s, r) = scenario.tagged_pair();
    let d = scenario.positions()[s].distance(scenario.positions()[r]);
    let mut mc = MonitorConfig::grid_paper(s, r, d);
    mc.sample_size = sample_size;
    if statistical_only {
        mc.blatant_check = false;
    }
    if matches!(cfg.topology, mg_net::TopologyCfg::Random { .. }) {
        mc.counts = NodeCounts::FromDensity;
    }
    let mut monitor = Monitor::new(mc);
    let handle = Metrics::new(scenario.positions().len());
    monitor.set_instrumentation(Tracer::disabled(), handle.clone());
    let mut world = scenario.build_with_observer(&[s, r], monitor);
    world.set_metrics(handle);
    if pm > 0 {
        world.set_policy(s, BackoffPolicy::Scaled { pm });
    }
    world.add_source(SourceCfg::saturated(s, r));
    world.run_until(SimTime::from_secs(secs));
    let metrics = world.metrics().snapshot();
    let m = world.observer();
    let diag = m.diagnosis();
    TrialOutcome {
        tests: diag.tests_run as u64,
        rejections: diag.rejections as u64,
        violations: diag.violations as u64,
        samples: diag.samples_collected as u64,
        rho: m.overall_rho(),
        metrics,
    }
}

/// Runs one mobile detection trial (Figures 5(d)/6(b)): random topology,
/// random waypoint, and a [`MonitorPool`] with range-based handoff.
pub fn mobile_detection_trial(
    seed: u64,
    load: Load,
    pm: u8,
    sample_size: usize,
    secs: u64,
    pause: SimDuration,
) -> TrialOutcome {
    let cfg = ScenarioConfig {
        sim_secs: secs,
        rate_pps: load.rate_pps(),
        seed,
        ..ScenarioConfig::mobile_paper(seed, pause)
    };
    let scenario = Scenario::new(cfg);
    let (s, r) = scenario.tagged_pair();
    let vantages: Vec<usize> = (0..scenario.positions().len()).filter(|&v| v != s).collect();
    let mut template = MonitorConfig::random_paper(s, r, 240.0);
    template.sample_size = sample_size;
    // Under mobility the vantage's collision environment diverges from the
    // tagged node's, so the EIFS compensation over-subtracts and becomes a
    // false-alarm source; run it conservative (see EXPERIMENTS.md).
    template.eifs_weight = 0.0;
    // Distance-scaled calibration tracks the elected vantage's proximity
    // (close vantages share almost all of the tagged node's channel view).
    template.counts = NodeCounts::SimCalibrated;
    let mut pool = MonitorPool::new(s, &vantages, template);
    let handle = Metrics::new(scenario.positions().len());
    pool.set_instrumentation(Tracer::disabled(), handle.clone());
    let mut world = scenario.build_with_observer(&[s, r], pool);
    world.set_metrics(handle);
    if pm > 0 {
        world.set_policy(s, BackoffPolicy::Scaled { pm });
    }
    // The tagged flow follows whichever neighbor is currently in range.
    world.add_source(SourceCfg {
        node: s,
        model: mg_net::TrafficModel::Saturated,
        dst: mg_net::DstPolicy::StickyRandomNeighbor,
        payload_len: 512,
    });
    world.run_until(SimTime::from_secs(secs));
    let metrics = world.metrics().snapshot();
    let pool = world.observer();
    let diag = pool.diagnosis();
    TrialOutcome {
        tests: diag.tests_run as u64,
        rejections: diag.rejections as u64,
        violations: diag.violations as u64,
        samples: diag.samples_collected as u64,
        rho: diag.measured_rho,
        metrics,
    }
}

/// Observer measuring the Figure 3/4 conditional probabilities for a pair.
pub struct JointProbe {
    s: usize,
    r: usize,
    /// The joint carrier-sense statistics.
    pub joint: JointTracker,
}

impl JointProbe {
    /// Probes the pair (s, r).
    pub fn new(s: usize, r: usize) -> Self {
        JointProbe {
            s,
            r,
            joint: JointTracker::new(),
        }
    }
}

impl NetObserver for JointProbe {
    fn on_channel_edge(&mut self, _m: &Medium, node: usize, busy: bool, now: SimTime) {
        if node == self.s {
            self.joint.on_s_edge(busy, now);
        }
        if node == self.r {
            self.joint.on_r_edge(busy, now);
        }
    }
    fn on_tx_start(
        &mut self,
        _m: &Medium,
        src: usize,
        _f: &mg_dcf::Frame,
        now: SimTime,
        end: SimTime,
    ) {
        if src == self.s {
            self.joint.on_s_tx(now, end);
        }
        if src == self.r {
            self.joint.on_r_tx(now, end);
        }
    }
}

/// Result of one conditional-probability measurement run.
#[derive(Clone, Copy, Debug)]
pub struct CondProbPoint {
    /// Measured monitor-side traffic intensity.
    pub rho: f64,
    /// Empirical `P(S busy | R idle)`.
    pub p_bi: f64,
    /// Empirical `P(S idle | R busy)`.
    pub p_ib: f64,
    /// The probed pair's distance (m).
    pub pair_distance: f64,
}

/// One Figure 3/4 simulation point: all nodes compliant, measure the joint
/// statistics of the central pair.
pub fn conditional_probability_run(seed: u64, rate_pps: f64, secs: u64, cfg_base: ScenarioConfig) -> CondProbPoint {
    let cfg = ScenarioConfig {
        sim_secs: secs,
        rate_pps,
        seed,
        ..cfg_base
    };
    let scenario = Scenario::new(cfg);
    let (s, r) = scenario.tagged_pair();
    let pair_distance = scenario.positions()[s].distance(scenario.positions()[r]);
    let probe = JointProbe::new(s, r);
    let mut world = scenario.build_with_observer(&[], probe);
    world.run_until(SimTime::from_secs(secs));
    let now = world.now();
    let probe = world.observer_mut();
    probe.joint.finish(now);
    CondProbPoint {
        rho: probe.joint.r_rho(),
        p_bi: probe.joint.p_busy_given_idle(),
        p_ib: probe.joint.p_idle_given_busy(),
        pair_distance,
    }
}

/// Averages conditional-probability points into `(rho, p_bi, p_ib, dist)`.
pub fn aggregate_points(points: &[CondProbPoint]) -> (f64, f64, f64, f64) {
    if points.is_empty() {
        return (0.0, 0.0, 0.0, 0.0);
    }
    let n = points.len() as f64;
    (
        points.iter().map(|p| p.rho).sum::<f64>() / n,
        points.iter().map(|p| p.p_bi).sum::<f64>() / n,
        points.iter().map(|p| p.p_ib).sum::<f64>() / n,
        points.iter().map(|p| p.pair_distance).sum::<f64>() / n,
    )
}

/// Runs `f(seed)` for `n` seeds in parallel across the available cores.
///
/// Work-steals over a shared counter on `std::thread::scope` — no external
/// crates — and returns results in seed order. Panics in any trial propagate
/// once every thread has joined.
pub fn parallel_seeds<T, F>(n: u64, base_seed: u64, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(u64) -> T + Sync,
{
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
        .min(n.max(1) as usize)
        .max(1);
    let counter = std::sync::atomic::AtomicU64::new(0);
    let slots: Vec<std::sync::Mutex<Option<T>>> = (0..n).map(|_| std::sync::Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = counter.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let value = f(base_seed + i);
                *slots[i as usize].lock().expect("slot poisoned") = Some(value);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("slot poisoned")
                .expect("all trials ran")
        })
        .collect()
}

/// Aggregates trial outcomes over seeds.
pub fn aggregate(outcomes: &[TrialOutcome]) -> TrialOutcome {
    let mut total = TrialOutcome::default();
    for o in outcomes {
        total.merge(o);
    }
    if !outcomes.is_empty() {
        total.rho /= outcomes.len() as f64;
    }
    total
}

/// The scenario base for the paper's grid experiments.
pub fn grid_base() -> ScenarioConfig {
    ScenarioConfig::grid_paper(0)
}

/// The scenario base for the paper's random-topology experiments.
pub fn random_base() -> ScenarioConfig {
    ScenarioConfig {
        traffic: TrafficKind::Cbr,
        ..ScenarioConfig::random_paper(0)
    }
}

/// All violations of a monitor rendered as short strings (debug output).
pub fn violation_kinds(violations: &[Violation]) -> Vec<&'static str> {
    violations
        .iter()
        .map(|v| match v {
            Violation::SequenceReuse { .. } => "seq-reuse",
            Violation::ImplausibleAdvance { .. } => "implausible-advance",
            Violation::AttemptMismatch { .. } => "attempt",
            Violation::UnverifiedData { .. } => "unverified-data",
            Violation::BlatantCountdown { .. } => "blatant",
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_seeds_preserves_order_and_seeds() {
        let out = parallel_seeds(16, 100, |seed| seed * 2);
        assert_eq!(out, (0..16).map(|i| (100 + i) * 2).collect::<Vec<_>>());
    }

    #[test]
    fn loads_are_ordered() {
        assert!(Load::Low.rate_pps() < Load::Medium.rate_pps());
        assert!(Load::Medium.rate_pps() < Load::High.rate_pps());
        assert_eq!(Load::all().len(), 3);
    }

    #[test]
    fn detection_trial_smoke() {
        let o = detection_trial(1, Load::Low, 90, 10, 10, false, grid_base());
        assert!(o.samples > 0, "{o:?}");
        assert!(o.violations > 0, "PM=90 must trip the blatant check: {o:?}");
        assert!(
            o.metrics.total(mg_trace::Counter::TxFrames) > 0,
            "trials must carry a metrics snapshot: {o:?}"
        );
    }

    #[test]
    fn conditional_probability_smoke() {
        let p = conditional_probability_run(1, 4.0, 10, grid_base());
        assert!(p.rho > 0.0 && p.rho < 1.0);
        assert!(p.p_bi >= 0.0 && p.p_bi <= 1.0);
    }

    #[test]
    fn aggregate_averages_rho() {
        let a = TrialOutcome {
            tests: 2,
            rejections: 1,
            violations: 0,
            samples: 10,
            rho: 0.4,
            ..TrialOutcome::default()
        };
        let b = TrialOutcome {
            tests: 2,
            rejections: 2,
            violations: 3,
            samples: 10,
            rho: 0.6,
            ..TrialOutcome::default()
        };
        let agg = aggregate(&[a, b]);
        assert_eq!(agg.tests, 4);
        assert_eq!(agg.rejections, 3);
        assert!((agg.rho - 0.5).abs() < 1e-12);
        assert!((agg.rejection_rate() - 0.75).abs() < 1e-12);
    }
}
