//! Aligned-table output for the experiment binaries, mirrored to CSV
//! (`MG_CSV_DIR`) and JSON (`MG_JSON_DIR`) result files.

use crate::json::Json;
use std::io::Write;

/// A simple column-aligned text table that can also mirror itself to CSV.
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    meta: Vec<(String, Json)>,
}

impl Table {
    /// Creates a table with the given title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            meta: Vec::new(),
        }
    }

    /// Attaches an out-of-band value (e.g. a metrics block) to the JSON
    /// rendering. Meta entries appear as extra top-level keys, after
    /// `title`/`headers`/`rows`; text and CSV output are unaffected.
    pub fn meta(&mut self, key: &str, value: Json) {
        self.meta.push((key.to_string(), value));
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width does not match the header width.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match headers"
        );
        self.rows.push(cells);
    }

    /// Renders the table to a string.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Renders the table as CSV (header line plus one line per row).
    pub fn render_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.headers.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }

    /// Renders the table as a JSON object (title, headers, rows, plus any
    /// [`meta`](Table::meta) entries).
    pub fn render_json(&self) -> String {
        let mut fields: Vec<(String, Json)> = vec![
            ("title".to_string(), Json::Str(self.title.clone())),
            (
                "headers".to_string(),
                Json::strings(self.headers.iter().cloned()),
            ),
            (
                "rows".to_string(),
                Json::Arr(
                    self.rows
                        .iter()
                        .map(|r| Json::strings(r.iter().cloned()))
                        .collect(),
                ),
            ),
        ];
        fields.extend(self.meta.iter().cloned());
        Json::Obj(fields).render()
    }

    /// Prints the table to stdout and, when the config carries CSV/JSON
    /// directories, writes `<dir>/<slug>.csv` / `<dir>/<slug>.json` too.
    pub fn emit_with(&self, slug: &str, cfg: &crate::BenchConfig) {
        print!("{}", self.render());
        println!();
        if let Some(dir) = &cfg.csv_dir {
            let mut path = dir.clone();
            if std::fs::create_dir_all(&path).is_ok() {
                path.push(format!("{slug}.csv"));
                if let Ok(mut f) = std::fs::File::create(&path) {
                    let _ = f.write_all(self.render_csv().as_bytes());
                    eprintln!("(csv written to {})", path.display());
                }
            }
        }
        if let Some(dir) = &cfg.json_dir {
            let mut path = dir.clone();
            if std::fs::create_dir_all(&path).is_ok() {
                path.push(format!("{slug}.json"));
                if let Ok(mut f) = std::fs::File::create(&path) {
                    let _ = writeln!(f, "{}", self.render_json());
                    eprintln!("(json written to {})", path.display());
                }
            }
        }
    }
}

/// Formats a probability with 3 decimals.
pub fn p3(v: f64) -> String {
    format!("{v:.3}")
}

/// Formats a float with 2 decimals.
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("demo", &["a", "bbbb"]);
        t.row(vec!["1".into(), "2".into()]);
        t.row(vec!["333".into(), "4".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("  a  bbbb"));
        assert!(s.contains("333     4"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        let mut t = Table::new("x", &["a"]);
        t.row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(p3(0.12345), "0.123");
        assert_eq!(f2(1.0 / 3.0), "0.33");
    }

    #[test]
    fn meta_lands_in_json_only() {
        let mut t = Table::new("demo", &["a"]);
        t.row(vec!["1".into()]);
        t.meta("metrics", Json::obj([("tx_frames", Json::Num(7.0))]));
        let j = t.render_json();
        assert!(j.contains("\"metrics\":{\"tx_frames\":7}"), "{j}");
        assert!(!t.render().contains("metrics"));
        assert!(!t.render_csv().contains("metrics"));
    }
}
