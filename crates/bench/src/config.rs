//! Typed experiment configuration read once from the environment.
//!
//! Every mg-bench binary starts with [`BenchConfig::from_env_or_exit`]
//! instead of sprinkling `env_u64` reads through its hot loop. Malformed
//! values are hard errors naming the variable and the expected shape —
//! a typo'd `MG_TRIALS=8x` aborts up front instead of silently running the
//! default trial count.

use crate::FaultPlan;
use mg_net::Shards;
use mg_phy::MediumIndex;
use mg_runner::{Cache, CacheMode, Runner};
use std::path::PathBuf;

/// The environment knobs shared by every experiment binary.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchConfig {
    /// Independent seeds per parameter point (`MG_TRIALS`, default 8).
    pub trials: u64,
    /// Virtual seconds per trial (`MG_SIM_SECS`, default 120).
    pub sim_secs: u64,
    /// When set, each table is mirrored as CSV here (`MG_CSV_DIR`).
    pub csv_dir: Option<PathBuf>,
    /// When set, each table is mirrored as JSON here (`MG_JSON_DIR`).
    pub json_dir: Option<PathBuf>,
    /// Result-cache mode (`MG_CACHE`: `on`/`off`/`refresh`, default on).
    pub cache_mode: CacheMode,
    /// Result-cache directory (`MG_CACHE_DIR`, default `results/.cache`).
    pub cache_dir: PathBuf,
    /// Fault-injection plan (`MG_FAULT_PROFILE` spec string, default no-op,
    /// with `MG_FAULT_SEED` overriding the plan's seed).
    pub fault: FaultPlan,
    /// Medium spatial-index strategy (`MG_MEDIUM_INDEX`: `naive`/`grid`,
    /// default grid). Results are byte-identical either way; the knob
    /// exists so CI can cross-check sweeps against the reference scan.
    pub medium_index: MediumIndex,
    /// World-engine sharding (`MG_SHARDS`: `serial` or a region count,
    /// default serial). Like the medium index, results are byte-identical
    /// across settings — the knob lets CI cross-check the sharded engine
    /// against the serial scheduler on every sweep.
    pub shards: Shards,
}

impl Default for BenchConfig {
    fn default() -> Self {
        BenchConfig {
            trials: 8,
            sim_secs: 120,
            csv_dir: None,
            json_dir: None,
            cache_mode: CacheMode::ReadWrite,
            cache_dir: PathBuf::from("results/.cache"),
            fault: FaultPlan::default(),
            medium_index: MediumIndex::default(),
            shards: Shards::default(),
        }
    }
}

impl BenchConfig {
    /// Reads every knob from the environment, rejecting malformed values.
    ///
    /// Unset variables take their defaults; set-but-invalid ones return an
    /// error naming the variable, the offending value and what was expected.
    pub fn from_env() -> Result<BenchConfig, String> {
        let mut cfg = BenchConfig::default();
        cfg.trials = parse_u64("MG_TRIALS", cfg.trials)?;
        if cfg.trials == 0 {
            return Err("invalid MG_TRIALS value \"0\": need at least one trial".into());
        }
        cfg.sim_secs = parse_u64("MG_SIM_SECS", cfg.sim_secs)?;
        if cfg.sim_secs == 0 {
            return Err("invalid MG_SIM_SECS value \"0\": need at least one simulated second".into());
        }
        cfg.csv_dir = dir_var("MG_CSV_DIR");
        cfg.json_dir = dir_var("MG_JSON_DIR");
        if let Ok(v) = std::env::var("MG_CACHE") {
            cfg.cache_mode = CacheMode::parse(&v)?;
        }
        if let Some(d) = dir_var("MG_CACHE_DIR") {
            cfg.cache_dir = d;
        }
        if let Ok(spec) = std::env::var("MG_FAULT_PROFILE") {
            cfg.fault = FaultPlan::parse(&spec)
                .map_err(|e| format!("invalid MG_FAULT_PROFILE value {spec:?}: {e}"))?;
        }
        if let Ok(raw) = std::env::var("MG_MEDIUM_INDEX") {
            cfg.medium_index = MediumIndex::parse(&raw)
                .map_err(|e| format!("invalid MG_MEDIUM_INDEX value: {e}"))?;
        }
        if let Ok(raw) = std::env::var("MG_SHARDS") {
            cfg.shards = Shards::parse(&raw)
                .map_err(|e| format!("invalid MG_SHARDS value: {e}"))?;
        }
        if let Ok(raw) = std::env::var("MG_FAULT_SEED") {
            let seed: u64 = raw.trim().parse().map_err(|_| {
                format!("invalid MG_FAULT_SEED value {raw:?}: expected a non-negative integer")
            })?;
            cfg.fault = cfg.fault.with_seed(seed);
        }
        Ok(cfg)
    }

    /// [`BenchConfig::from_env`], exiting with status 2 on a malformed knob.
    pub fn from_env_or_exit() -> BenchConfig {
        match BenchConfig::from_env() {
            Ok(cfg) => cfg,
            Err(e) => {
                eprintln!("mg-bench: {e}");
                std::process::exit(2);
            }
        }
    }

    /// A sweep runner over this config's cache directory and mode, carrying
    /// the fault plan's runner-layer knobs (panics, hangs, watchdog).
    pub fn runner(&self) -> Runner {
        Runner::new(Cache::new(self.cache_dir.clone(), self.cache_mode))
            .with_faults(self.fault.runner.clone())
    }
}

fn parse_u64(name: &str, default: u64) -> Result<u64, String> {
    match std::env::var(name) {
        Err(_) => Ok(default),
        Ok(raw) => raw.trim().parse().map_err(|_| {
            format!("invalid {name} value {raw:?}: expected a non-negative integer")
        }),
    }
}

fn dir_var(name: &str) -> Option<PathBuf> {
    std::env::var_os(name).filter(|v| !v.is_empty()).map(PathBuf::from)
}

#[cfg(test)]
mod tests {
    use super::*;

    // Env-var mutation is process-global, so the env-dependent cases run in
    // one test body instead of racing across the parallel test harness.
    #[test]
    fn env_parsing_round_trip() {
        let vars = [
            "MG_TRIALS",
            "MG_SIM_SECS",
            "MG_CSV_DIR",
            "MG_JSON_DIR",
            "MG_CACHE",
            "MG_CACHE_DIR",
            "MG_FAULT_PROFILE",
            "MG_FAULT_SEED",
            "MG_MEDIUM_INDEX",
            "MG_SHARDS",
        ];
        let saved: Vec<_> = vars.iter().map(|v| (*v, std::env::var_os(v))).collect();
        for v in vars {
            std::env::remove_var(v);
        }

        assert_eq!(BenchConfig::from_env(), Ok(BenchConfig::default()));

        std::env::set_var("MG_TRIALS", "3");
        std::env::set_var("MG_SIM_SECS", "45");
        std::env::set_var("MG_CSV_DIR", "out/csv");
        std::env::set_var("MG_CACHE", "off");
        std::env::set_var("MG_CACHE_DIR", "out/cache");
        let cfg = BenchConfig::from_env().expect("valid env parses");
        assert_eq!(cfg.trials, 3);
        assert_eq!(cfg.sim_secs, 45);
        assert_eq!(cfg.csv_dir.as_deref(), Some(std::path::Path::new("out/csv")));
        assert_eq!(cfg.json_dir, None);
        assert_eq!(cfg.cache_mode, CacheMode::Off);
        assert_eq!(cfg.cache_dir, PathBuf::from("out/cache"));

        std::env::set_var("MG_TRIALS", "8x");
        let err = BenchConfig::from_env().unwrap_err();
        assert!(err.contains("MG_TRIALS") && err.contains("8x"), "{err}");
        std::env::set_var("MG_TRIALS", "0");
        assert!(BenchConfig::from_env().unwrap_err().contains("MG_TRIALS"));
        std::env::set_var("MG_TRIALS", "3");

        std::env::set_var("MG_CACHE", "sometimes");
        let err = BenchConfig::from_env().unwrap_err();
        assert!(err.contains("MG_CACHE"), "{err}");
        std::env::set_var("MG_CACHE", "on");

        std::env::set_var("MG_FAULT_PROFILE", "seed=7,loss=0.25,panic=2");
        std::env::set_var("MG_FAULT_SEED", "99");
        let cfg = BenchConfig::from_env().expect("valid fault profile parses");
        assert_eq!(cfg.fault.seed, 99, "MG_FAULT_SEED overrides the spec seed");
        assert!((cfg.fault.phy.loss - 0.25).abs() < 1e-12);
        assert!(cfg.fault.runner.panics(2));
        assert!(!cfg.fault.is_noop());

        std::env::set_var("MG_FAULT_PROFILE", "loss=nope");
        let err = BenchConfig::from_env().unwrap_err();
        assert!(err.contains("MG_FAULT_PROFILE") && err.contains("nope"), "{err}");
        std::env::set_var("MG_FAULT_PROFILE", "light");
        std::env::set_var("MG_FAULT_SEED", "8x");
        let err = BenchConfig::from_env().unwrap_err();
        assert!(err.contains("MG_FAULT_SEED") && err.contains("8x"), "{err}");
        std::env::set_var("MG_FAULT_SEED", "99");

        std::env::set_var("MG_MEDIUM_INDEX", "Naive");
        let cfg = BenchConfig::from_env().expect("case-insensitive index parses");
        assert_eq!(cfg.medium_index, MediumIndex::Naive);
        std::env::set_var("MG_MEDIUM_INDEX", "quadtree");
        let err = BenchConfig::from_env().unwrap_err();
        assert!(err.contains("MG_MEDIUM_INDEX") && err.contains("quadtree"), "{err}");
        std::env::set_var("MG_MEDIUM_INDEX", "grid");

        std::env::set_var("MG_SHARDS", "4");
        let cfg = BenchConfig::from_env().expect("shard count parses");
        assert_eq!(cfg.shards, Shards::Regions(4));
        std::env::set_var("MG_SHARDS", "serial");
        assert_eq!(BenchConfig::from_env().expect("serial parses").shards, Shards::Serial);
        std::env::set_var("MG_SHARDS", "0");
        let err = BenchConfig::from_env().unwrap_err();
        assert!(err.contains("MG_SHARDS") && err.contains('0'), "{err}");
        std::env::set_var("MG_SHARDS", "two");
        assert!(BenchConfig::from_env().unwrap_err().contains("MG_SHARDS"));

        for (name, value) in saved {
            match value {
                Some(v) => std::env::set_var(name, v),
                None => std::env::remove_var(name),
            }
        }
    }
}
