//! Cache keys and codecs wiring trial results through [`mg_runner`].
//!
//! Every experiment binary flattens its (parameter-point × seed) grid into
//! tasks and drains them through [`mg_runner::Runner::sweep`]. The pieces
//! here make that uniform:
//!
//! * [`SCHEMA`] — the result-schema version baked into every key. Bump it
//!   when the *meaning* of a trial outcome changes without its config
//!   changing (estimator fixes, new outcome fields) to invalidate the whole
//!   cache at once.
//! * [`detection_key`] / [`cond_key`] — canonical keys over the *resolved*
//!   [`ScenarioConfig`] (every field participates via `Debug`, so any
//!   change to topology, rates, seed or timing invalidates the entry) plus
//!   the monitor-side parameters.
//! * [`outcome_codec`] / [`outcomes_codec`] / [`cond_codec`] — strict
//!   [`Codec`]s for the trial result types; a cached entry that fails to
//!   decode is recomputed, never trusted.

use crate::{CondProbPoint, FaultPlan, QuorumOutcome, TrialOutcome};
use mg_detect::{base64_to_bytes, bytes_to_base64, JournalFormat, JournalReader, ObsJournal};
use mg_net::ScenarioConfig;
use mg_runner::{CacheKey, Codec};
use mg_trace::json::Json;
use mg_trace::MetricsSnapshot;

/// Result-schema version for every mg-bench cache key.
///
/// v2: [`TrialOutcome`] gained the `uncertain` counter and detection keys
/// gained the fault plan. v3: the journal cache tier — ablation binaries
/// record each world's observation stream once and replay it per knob.
/// v4: journal entries switched from the JSON tree to the framed binary v1
/// codec (base64-wrapped inside the JSON cache carrier).
pub const SCHEMA: u64 = 4;

/// Key for one detection trial (or one fanned-out trial when `sample_sizes`
/// has several entries). `cfg` must be the fully resolved config — seed,
/// duration and rate already substituted — so the key covers every knob.
/// The fault plan participates too: a faulted sweep and a clean one must
/// never share a cache entry.
pub fn detection_key(
    experiment: &str,
    cfg: &ScenarioConfig,
    pm: u8,
    sample_sizes: &[usize],
    statistical_only: bool,
    faults: &FaultPlan,
) -> CacheKey {
    CacheKey::new(experiment, SCHEMA)
        .field("cfg", cfg)
        .field("pm", pm)
        .field("sample_sizes", sample_sizes)
        .field("statistical_only", statistical_only)
        .field("faults", faults)
}

/// Key for one Figure 3/4 conditional-probability run.
pub fn cond_key(experiment: &str, cfg: &ScenarioConfig) -> CacheKey {
    CacheKey::new(experiment, SCHEMA).field("cfg", cfg)
}

/// Key for one recorded observation journal (the second cache tier).
///
/// Deliberately *not* named after the experiment: a journal depends only on
/// the world — resolved config and cheating intensity — so every binary
/// sweeping detector knobs over the same `(cfg, pm)` cell shares one entry.
pub fn journal_key(cfg: &ScenarioConfig, pm: u8) -> CacheKey {
    CacheKey::new("detection-world", SCHEMA)
        .field("cfg", cfg)
        .field("pm", pm)
}

/// Key for one recorded multi-vantage quorum world (the journal tier of
/// `bench_quorum`). Distinct from [`journal_key`]: a quorum journal
/// records `members` vantages with per-member `dist.<v>` geometry, so it
/// must never share an entry with the single-vantage detection worlds.
pub fn quorum_journal_key(cfg: &ScenarioConfig, pm: u8, members: usize) -> CacheKey {
    CacheKey::new("quorum-world", SCHEMA)
        .field("cfg", cfg)
        .field("pm", pm)
        .field("members", members)
}

/// Key for one collaborative-detection (quorum) replay trial. The fault
/// plan participates because it carries the Byzantine cast — lie/mute/flip
/// fractions *and* the role seed — so two casts never share an entry.
pub fn quorum_key(
    experiment: &str,
    cfg: &ScenarioConfig,
    pm: u8,
    sample_size: usize,
    members: usize,
    k: usize,
    faults: &FaultPlan,
) -> CacheKey {
    CacheKey::new(experiment, SCHEMA)
        .field("cfg", cfg)
        .field("pm", pm)
        .field("sample_size", sample_size)
        .field("members", members)
        .field("k", k)
        .field("faults", faults)
}

/// Codec for a [`QuorumOutcome`].
pub fn quorum_codec() -> Codec<QuorumOutcome> {
    Codec {
        encode: |o| {
            Json::obj([
                ("convicted", Json::Bool(o.convicted)),
                ("votes", Json::from(o.votes)),
                ("members", Json::from(o.members)),
                ("byzantine", Json::from(o.byzantine)),
                ("gossip_sent", Json::from(o.gossip_sent)),
                ("gossip_dropped", Json::from(o.gossip_dropped)),
                ("gossip_delivered", Json::from(o.gossip_delivered)),
            ])
        },
        decode: |v| {
            Some(QuorumOutcome {
                convicted: v.get("convicted")?.as_bool()?,
                votes: v.get("votes")?.as_u64()?,
                members: v.get("members")?.as_u64()?,
                byzantine: v.get("byzantine")?.as_u64()?,
                gossip_sent: v.get("gossip_sent")?.as_u64()?,
                gossip_dropped: v.get("gossip_dropped")?.as_u64()?,
                gossip_delivered: v.get("gossip_delivered")?.as_u64()?,
            })
        },
    }
}

/// Codec for a recorded [`ObsJournal`]: framed binary v1, base64-wrapped
/// because the mg-runner cache stores JSON documents. The binary layer's
/// own checksum rides inside the entry, so a corrupted cache file fails
/// decode (→ counted miss, recompute) instead of being trusted.
pub fn journal_codec() -> Codec<ObsJournal> {
    Codec {
        encode: |j| Json::Str(bytes_to_base64(&j.encode(JournalFormat::Binary))),
        decode: |v| {
            let bytes = base64_to_bytes(v.as_str()?)?;
            JournalReader::from_bytes(bytes).and_then(|r| r.read_journal()).ok()
        },
    }
}

fn outcome_to_json(o: &TrialOutcome) -> Json {
    Json::obj([
        ("tests", Json::from(o.tests)),
        ("rejections", Json::from(o.rejections)),
        ("violations", Json::from(o.violations)),
        ("samples", Json::from(o.samples)),
        ("uncertain", Json::from(o.uncertain)),
        ("rho", Json::Num(o.rho)),
        ("metrics", o.metrics.to_json()),
    ])
}

fn outcome_from_json(v: &Json) -> Option<TrialOutcome> {
    Some(TrialOutcome {
        tests: v.get("tests")?.as_u64()?,
        rejections: v.get("rejections")?.as_u64()?,
        violations: v.get("violations")?.as_u64()?,
        samples: v.get("samples")?.as_u64()?,
        uncertain: v.get("uncertain")?.as_u64()?,
        rho: v.get("rho")?.as_f64()?,
        metrics: MetricsSnapshot::from_json(v.get("metrics")?)?,
    })
}

/// Codec for a single [`TrialOutcome`].
pub fn outcome_codec() -> Codec<TrialOutcome> {
    Codec {
        encode: outcome_to_json,
        decode: outcome_from_json,
    }
}

/// Codec for a fanned-out `Vec<TrialOutcome>` (one per sample size).
pub fn outcomes_codec() -> Codec<Vec<TrialOutcome>> {
    Codec {
        encode: |os| Json::Arr(os.iter().map(outcome_to_json).collect()),
        decode: |v| v.as_arr()?.iter().map(outcome_from_json).collect(),
    }
}

/// Codec for a [`CondProbPoint`].
pub fn cond_codec() -> Codec<CondProbPoint> {
    Codec {
        encode: |p| {
            Json::obj([
                ("rho", Json::Num(p.rho)),
                ("p_bi", Json::Num(p.p_bi)),
                ("p_ib", Json::Num(p.p_ib)),
                ("pair_distance", Json::Num(p.pair_distance)),
            ])
        },
        decode: |v| {
            Some(CondProbPoint {
                rho: v.get("rho")?.as_f64()?,
                p_bi: v.get("p_bi")?.as_f64()?,
                p_ib: v.get("p_ib")?.as_f64()?,
                pair_distance: v.get("pair_distance")?.as_f64()?,
            })
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mg_trace::Counter;

    #[test]
    fn outcome_codec_round_trips() {
        let mut o = TrialOutcome {
            tests: 7,
            rejections: 3,
            violations: 1,
            samples: 250,
            uncertain: 4,
            rho: 0.3141592653589793,
            ..TrialOutcome::default()
        };
        o.metrics.totals[Counter::TxFrames.index()] = 1234;
        let codec = outcome_codec();
        let back = (codec.decode)(&(codec.encode)(&o)).expect("round trip");
        assert_eq!(back.tests, o.tests);
        assert_eq!(back.samples, o.samples);
        assert_eq!(back.uncertain, o.uncertain);
        assert_eq!(back.rho.to_bits(), o.rho.to_bits(), "f64 must survive exactly");
        assert_eq!(back.metrics.total(Counter::TxFrames), 1234);
    }

    #[test]
    fn outcomes_codec_preserves_order_and_rejects_partial_decode() {
        let os: Vec<TrialOutcome> = (0..4)
            .map(|i| TrialOutcome { tests: i, ..TrialOutcome::default() })
            .collect();
        let codec = outcomes_codec();
        let back = (codec.decode)(&(codec.encode)(&os)).expect("round trip");
        assert_eq!(back.iter().map(|o| o.tests).collect::<Vec<_>>(), vec![0, 1, 2, 3]);
        // One corrupt element poisons the whole vector (→ recompute).
        let mut arr = match (codec.encode)(&os) {
            Json::Arr(v) => v,
            other => panic!("expected array, got {other:?}"),
        };
        arr[2] = Json::Null;
        assert!((codec.decode)(&Json::Arr(arr)).is_none());
    }

    #[test]
    fn detection_keys_cover_the_resolved_config() {
        let base = crate::grid_base();
        let noop = FaultPlan::default();
        let chaos = FaultPlan::parse("seed=5,loss=0.1").expect("valid spec");
        let a = detection_key("fig5", &ScenarioConfig { seed: 1, ..base }, 50, &[10, 25], true, &noop);
        let b = detection_key("fig5", &ScenarioConfig { seed: 2, ..base }, 50, &[10, 25], true, &noop);
        let c = detection_key("fig5", &ScenarioConfig { seed: 1, ..base }, 60, &[10, 25], true, &noop);
        let d = detection_key("fig5", &ScenarioConfig { seed: 1, ..base }, 50, &[10], true, &noop);
        let e = detection_key("fig5", &ScenarioConfig { seed: 1, ..base }, 50, &[10, 25], false, &noop);
        let f = detection_key("fig6", &ScenarioConfig { seed: 1, ..base }, 50, &[10, 25], true, &noop);
        let g = detection_key("fig5", &ScenarioConfig { seed: 1, ..base }, 50, &[10, 25], true, &chaos);
        let all = [&a, &b, &c, &d, &e, &f, &g];
        for (i, x) in all.iter().enumerate() {
            for y in &all[i + 1..] {
                assert_ne!(x.hash(), y.hash(), "{} vs {}", x.text(), y.text());
            }
        }
        assert!(a.text().contains("seed: 1"), "resolved cfg must appear: {}", a.text());
    }
}
