//! Regenerates **Figure 4** — the same conditional probabilities as
//! Figure 3, but for **CBR traffic on the 112-node random topology**.
//!
//! ```text
//! cargo run --release -p mg-bench --bin fig4
//! ```

use mg_bench::sweep::{cond_codec, cond_key};
use mg_bench::table::{p3, Table};
use mg_bench::{
    aggregate_points, conditional_probability_run, random_base, sweep_or_exit, BenchConfig,
    CondProbPoint,
};
use mg_detect::AnalyticModel;
use mg_geom::PreclusionRule;
use mg_net::ScenarioConfig;

fn main() {
    let bc = BenchConfig::from_env_or_exit();
    let runner = bc.runner();
    let rates = [0.5, 1.0, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0, 18.0, 25.0];
    let secs = bc.sim_secs.min(120);

    let paper = AnalyticModel::grid_paper(240.0, 550.0, PreclusionRule::paper_calibrated());

    let mut t4a = Table::new(
        "Figure 4(a): P(S busy | R idle) vs traffic intensity — CBR, random topology",
        &["rho(meas)", "sim", "analysis(paper)", "analysis(calibrated)"],
    );
    let mut t4b = Table::new(
        "Figure 4(b): P(S idle | R busy) vs traffic intensity — CBR, random topology",
        &["rho(meas)", "sim", "analysis(paper)", "analysis(calibrated)"],
    );

    let mut tasks = Vec::new();
    for &rate in &rates {
        for i in 0..bc.trials {
            tasks.push((rate, 2000 + i));
        }
    }
    let results: Vec<CondProbPoint> = sweep_or_exit(
        &runner,
        &tasks,
        |&(rate, seed)| {
            let cfg = ScenarioConfig { sim_secs: secs, rate_pps: rate, seed, ..random_base() };
            cond_key("condprob-random", &cfg)
        },
        cond_codec(),
        |&(rate, seed)| conditional_probability_run(seed, rate, secs, random_base()),
    );

    for &rate in &rates {
        let points: Vec<CondProbPoint> = tasks
            .iter()
            .zip(&results)
            .filter(|((r, _), _)| *r == rate)
            .map(|(_, p)| *p)
            .collect();
        let (rho, p_bi, p_ib, dist) = aggregate_points(&points);
        // The simulator-calibrated analysis, at the probed pair's distance.
        let calibrated = AnalyticModel {
            n: 0.5,
            k: 0.5,
            m: 0.5,
            j: 0.5,
            ..AnalyticModel::grid_paper(dist, 550.0, PreclusionRule::sim_calibrated_for(dist))
        };
        t4a.row(vec![
            p3(rho),
            p3(p_bi),
            p3(paper.p_busy_given_idle(rho)),
            p3(calibrated.p_busy_given_idle(rho)),
        ]);
        t4b.row(vec![
            p3(rho),
            p3(p_ib),
            p3(paper.p_idle_given_busy(rho)),
            p3(calibrated.p_idle_given_busy(rho)),
        ]);
    }
    t4a.emit_with("fig4a", &bc);
    t4b.emit_with("fig4b", &bc);
    println!(
        "(trials per point: {}, {secs}s simulated each; the paper reports the same shapes as Fig. 3 with smaller P(S idle | R busy))",
        bc.trials
    );
    eprintln!("{}", runner.summary());
}
