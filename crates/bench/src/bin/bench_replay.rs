//! Micro-benchmark: re-simulate vs. record-once/replay for the
//! `ablation_alpha` workload, swept across both journal formats.
//!
//! Runs the same `(α × PM × seed)` grid twice — once the pre-replay way
//! (one full monitored simulation per cell) and once the replay-backed way
//! (one recorded world per `(PM, seed)`, replayed into every α). The replay
//! path is measured through the serialization boundary for **each**
//! [`JournalFormat`]: encode every journal, decode it back (that is what a
//! cache hit or an `--replay` costs), and replay the decoded journal into
//! every α. Outcomes must be identical across all three paths — replay is
//! a cache, not an approximation, in either encoding.
//!
//! The wall-clock comparison, size-on-disk and decode-throughput columns go
//! to `BENCH_replay.json` (override the path with `MG_BENCH_OUT`). The
//! headline `speedup` is the binary-format end-to-end figure:
//! `resimulate / (record + encode + decode + replay)`.
//!
//! ```text
//! MG_TRIALS=2 MG_SIM_SECS=20 cargo run --release -p mg-bench --bin bench_replay
//! ```

use mg_bench::{record_detection_world, BenchConfig, Load, TrialOutcome};
use mg_dcf::BackoffPolicy;
use mg_detect::{
    replay_pool, JournalFormat, JournalReader, MonitorConfig, ObsJournal, ScenarioBuilder,
    WorldMonitors,
};
use mg_net::{Scenario, ScenarioConfig, SourceCfg};
use mg_sim::SimTime;
use mg_trace::json::Json;
use std::time::Instant;

fn world_cfg(seed: u64, secs: u64) -> ScenarioConfig {
    ScenarioConfig {
        sim_secs: secs,
        rate_pps: Load::Medium.rate_pps(),
        seed,
        ..ScenarioConfig::grid_paper(seed)
    }
}

fn monitor_cfg(s: usize, r: usize, arma_alpha: f64) -> MonitorConfig {
    let mut mc = MonitorConfig::grid_paper(s, r, 240.0);
    mc.sample_size = 25;
    mc.arma_alpha = arma_alpha;
    mc.blatant_check = false;
    mc
}

fn outcome(d: &mg_detect::Diagnosis) -> TrialOutcome {
    TrialOutcome {
        tests: d.tests_run as u64,
        rejections: d.rejections as u64,
        violations: d.violations as u64,
        samples: d.samples_collected as u64,
        rho: d.measured_rho,
        ..TrialOutcome::default()
    }
}

/// The pre-replay path: one full monitored simulation per grid cell.
fn simulate_trial(seed: u64, pm: u8, arma_alpha: f64, secs: u64) -> TrialOutcome {
    let scenario = Scenario::new(world_cfg(seed, secs));
    let (s, r) = scenario.tagged_pair();
    let mut b = ScenarioBuilder::new(scenario);
    let attacker = b.attacker(s);
    let watch = b.monitor(monitor_cfg(s, r, arma_alpha));
    b.source(SourceCfg::saturated(s, r));
    let mut world = b.build();
    if pm > 0 {
        world.set_policy(attacker.id(), BackoffPolicy::Scaled { pm });
    }
    world.run_until(SimTime::from_secs(secs));
    outcome(&world.monitors().diagnosis(watch))
}

/// The replay path's per-α half: journal → fresh monitor → diagnosis.
fn replay_trial(journal: &ObsJournal, arma_alpha: f64) -> TrialOutcome {
    let meta = journal.meta();
    let mc = monitor_cfg(meta.tagged, meta.vantages[0], arma_alpha);
    outcome(&replay_pool(journal, mc).diagnosis())
}

/// One format's measured half of the bench: encode all journals, decode
/// them back through a validating reader, replay the decoded journals into
/// every cell. Returns the outcomes plus the timing/size columns.
struct FormatRun {
    outcomes: Vec<TrialOutcome>,
    encode_ms: f64,
    decode_ms: f64,
    replay_ms: f64,
    bytes: u64,
    decode_mb_s: f64,
}

fn run_format(
    format: JournalFormat,
    journals: &[((u8, u64), ObsJournal)],
    cells: &[(f64, u8, u64)],
) -> FormatRun {
    let t0 = Instant::now();
    let encoded: Vec<Vec<u8>> = journals.iter().map(|(_, j)| j.encode(format)).collect();
    let encode_ms = t0.elapsed().as_secs_f64() * 1e3;
    let bytes: u64 = encoded.iter().map(|b| b.len() as u64).sum();

    // Decode once per world — what a cache hit or `--replay` pays — through
    // the full validating path (trailer, checksum, tables, index).
    let t1 = Instant::now();
    let decoded: Vec<ObsJournal> = encoded
        .into_iter()
        .map(|b| {
            JournalReader::from_bytes(b)
                .and_then(|r| r.read_journal())
                .unwrap_or_else(|e| panic!("{format} journal failed to decode: {e}"))
        })
        .collect();
    let decode_ms = t1.elapsed().as_secs_f64() * 1e3;

    let t2 = Instant::now();
    let outcomes: Vec<TrialOutcome> = cells
        .iter()
        .map(|&(alpha, pm, seed)| {
            let i = journals
                .iter()
                .position(|((p, s), _)| *p == pm && *s == seed)
                .expect("every cell's world was recorded");
            replay_trial(&decoded[i], alpha)
        })
        .collect();
    let replay_ms = t2.elapsed().as_secs_f64() * 1e3;

    let decode_mb_s = (bytes as f64 / 1e6) / (decode_ms / 1e3).max(1e-9);
    FormatRun { outcomes, encode_ms, decode_ms, replay_ms, bytes, decode_mb_s }
}

fn assert_outcomes_equal(label: &str, a: &[TrialOutcome], b: &[TrialOutcome], cells: &[(f64, u8, u64)]) {
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.tests, y.tests, "{label} cell {i}: {:?}", cells[i]);
        assert_eq!(x.rejections, y.rejections, "{label} cell {i}: {:?}", cells[i]);
        assert_eq!(x.violations, y.violations, "{label} cell {i}: {:?}", cells[i]);
        assert_eq!(x.samples, y.samples, "{label} cell {i}: {:?}", cells[i]);
        assert_eq!(x.rho.to_bits(), y.rho.to_bits(), "{label} cell {i}: {:?}", cells[i]);
    }
}

fn round1(v: f64) -> Json {
    Json::Num((v * 10.0).round() / 10.0)
}

fn format_json(r: &FormatRun) -> Json {
    Json::obj([
        ("encode_ms", round1(r.encode_ms)),
        ("decode_ms", round1(r.decode_ms)),
        ("replay_ms", round1(r.replay_ms)),
        ("bytes", Json::from(r.bytes)),
        ("decode_mb_s", round1(r.decode_mb_s)),
    ])
}

fn main() {
    let bc = BenchConfig::from_env_or_exit();
    let alphas = [0.5, 0.9, 0.99, 0.995, 0.999];
    let pms: [(u8, u64); 3] = [(0, 8000), (50, 8100), (90, 8200)];

    let mut cells = Vec::new();
    for &alpha in &alphas {
        for &(pm, base) in &pms {
            for i in 0..bc.trials {
                cells.push((alpha, pm, base + i));
            }
        }
    }

    // Path A — re-simulate every cell.
    let t0 = Instant::now();
    let resimulated: Vec<TrialOutcome> = cells
        .iter()
        .map(|&(alpha, pm, seed)| simulate_trial(seed, pm, alpha, bc.sim_secs))
        .collect();
    let resimulate_ms = t0.elapsed().as_secs_f64() * 1e3;

    // Path B — record each world once…
    let t1 = Instant::now();
    let mut journals = Vec::new();
    for &(pm, base) in &pms {
        for i in 0..bc.trials {
            let seed = base + i;
            journals.push(((pm, seed), record_detection_world(seed, world_cfg(seed, bc.sim_secs), pm)));
        }
    }
    let record_ms = t1.elapsed().as_secs_f64() * 1e3;

    // …then push it through each codec and replay into every α.
    let jsonl = run_format(JournalFormat::Jsonl, &journals, &cells);
    let bin = run_format(JournalFormat::Binary, &journals, &cells);

    // All three paths must land on identical outcomes — replay is a cache,
    // not an approximation, in either encoding.
    assert_outcomes_equal("jsonl", &resimulated, &jsonl.outcomes, &cells);
    assert_outcomes_equal("bin", &resimulated, &bin.outcomes, &cells);

    let size_ratio = jsonl.bytes as f64 / (bin.bytes as f64).max(1.0);
    let bin_total_ms = record_ms + bin.encode_ms + bin.decode_ms + bin.replay_ms;
    let jsonl_total_ms = record_ms + jsonl.encode_ms + jsonl.decode_ms + jsonl.replay_ms;
    let speedup = resimulate_ms / bin_total_ms.max(1e-9);
    let jsonl_speedup = resimulate_ms / jsonl_total_ms.max(1e-9);
    let json = Json::obj([
        ("bench", Json::from("ablation_alpha: re-simulate vs record+replay (jsonl and binary codecs)")),
        ("trials", Json::from(bc.trials)),
        ("sim_secs", Json::from(bc.sim_secs)),
        ("cells", Json::from(cells.len() as u64)),
        ("worlds_resimulated", Json::from(cells.len() as u64)),
        ("worlds_recorded", Json::from(journals.len() as u64)),
        ("resimulate_ms", round1(resimulate_ms)),
        ("record_ms", round1(record_ms)),
        ("jsonl", format_json(&jsonl)),
        ("bin", format_json(&bin)),
        ("size_ratio", Json::Num((size_ratio * 100.0).round() / 100.0)),
        ("replay_ms", round1(bin.decode_ms + bin.replay_ms)),
        ("jsonl_speedup", Json::Num((jsonl_speedup * 100.0).round() / 100.0)),
        ("speedup", Json::Num((speedup * 100.0).round() / 100.0)),
    ]);
    let path = std::env::var("MG_BENCH_OUT").unwrap_or_else(|_| "BENCH_replay.json".into());
    std::fs::write(&path, format!("{}\n", json.render())).unwrap_or_else(|e| {
        eprintln!("bench_replay: cannot write {path}: {e}");
        std::process::exit(1);
    });
    println!(
        "re-simulate {} cells: {:.1} ms | record {} worlds: {:.1} ms",
        cells.len(),
        resimulate_ms,
        journals.len(),
        record_ms,
    );
    println!(
        "jsonl: {} B, encode {:.1} ms, decode {:.1} ms ({:.1} MB/s), replay {:.1} ms -> {:.2}x",
        jsonl.bytes, jsonl.encode_ms, jsonl.decode_ms, jsonl.decode_mb_s, jsonl.replay_ms, jsonl_speedup,
    );
    println!(
        "bin  : {} B ({size_ratio:.2}x smaller), encode {:.1} ms, decode {:.1} ms ({:.1} MB/s), replay {:.1} ms -> {:.2}x",
        bin.bytes, bin.encode_ms, bin.decode_ms, bin.decode_mb_s, bin.replay_ms, speedup,
    );
    println!("wrote {path}");
}
