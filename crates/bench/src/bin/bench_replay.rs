//! Micro-benchmark: re-simulate vs. record-once/replay for the
//! `ablation_alpha` workload.
//!
//! Runs the same `(α × PM × seed)` grid twice — once the pre-replay way
//! (one full monitored simulation per cell) and once the replay-backed way
//! (one recorded world per `(PM, seed)`, replayed into every α) — asserts
//! the outcomes are identical, and writes the wall-clock comparison to
//! `BENCH_replay.json` (override the path with `MG_BENCH_OUT`). The cache
//! is bypassed so both paths are measured end to end.
//!
//! ```text
//! MG_TRIALS=2 MG_SIM_SECS=20 cargo run --release -p mg-bench --bin bench_replay
//! ```

use mg_bench::{record_detection_world, BenchConfig, Load, TrialOutcome};
use mg_dcf::BackoffPolicy;
use mg_detect::{replay_pool, MonitorConfig, ObsJournal, ScenarioBuilder, WorldMonitors};
use mg_net::{Scenario, ScenarioConfig, SourceCfg};
use mg_sim::SimTime;
use mg_trace::json::Json;
use std::time::Instant;

fn world_cfg(seed: u64, secs: u64) -> ScenarioConfig {
    ScenarioConfig {
        sim_secs: secs,
        rate_pps: Load::Medium.rate_pps(),
        seed,
        ..ScenarioConfig::grid_paper(seed)
    }
}

fn monitor_cfg(s: usize, r: usize, arma_alpha: f64) -> MonitorConfig {
    let mut mc = MonitorConfig::grid_paper(s, r, 240.0);
    mc.sample_size = 25;
    mc.arma_alpha = arma_alpha;
    mc.blatant_check = false;
    mc
}

fn outcome(d: &mg_detect::Diagnosis) -> TrialOutcome {
    TrialOutcome {
        tests: d.tests_run as u64,
        rejections: d.rejections as u64,
        violations: d.violations as u64,
        samples: d.samples_collected as u64,
        rho: d.measured_rho,
        ..TrialOutcome::default()
    }
}

/// The pre-replay path: one full monitored simulation per grid cell.
fn simulate_trial(seed: u64, pm: u8, arma_alpha: f64, secs: u64) -> TrialOutcome {
    let scenario = Scenario::new(world_cfg(seed, secs));
    let (s, r) = scenario.tagged_pair();
    let mut b = ScenarioBuilder::new(scenario);
    let attacker = b.attacker(s);
    let watch = b.monitor(monitor_cfg(s, r, arma_alpha));
    b.source(SourceCfg::saturated(s, r));
    let mut world = b.build();
    if pm > 0 {
        world.set_policy(attacker.id(), BackoffPolicy::Scaled { pm });
    }
    world.run_until(SimTime::from_secs(secs));
    outcome(&world.monitors().diagnosis(watch))
}

/// The replay path's per-α half: journal → fresh monitor → diagnosis.
fn replay_trial(journal: &ObsJournal, arma_alpha: f64) -> TrialOutcome {
    let meta = journal.meta();
    let mc = monitor_cfg(meta.tagged, meta.vantages[0], arma_alpha);
    outcome(&replay_pool(journal, mc).diagnosis())
}

fn main() {
    let bc = BenchConfig::from_env_or_exit();
    let alphas = [0.5, 0.9, 0.99, 0.995, 0.999];
    let pms: [(u8, u64); 3] = [(0, 8000), (50, 8100), (90, 8200)];

    let mut cells = Vec::new();
    for &alpha in &alphas {
        for &(pm, base) in &pms {
            for i in 0..bc.trials {
                cells.push((alpha, pm, base + i));
            }
        }
    }

    // Path A — re-simulate every cell.
    let t0 = Instant::now();
    let resimulated: Vec<TrialOutcome> = cells
        .iter()
        .map(|&(alpha, pm, seed)| simulate_trial(seed, pm, alpha, bc.sim_secs))
        .collect();
    let resimulate_ms = t0.elapsed().as_secs_f64() * 1e3;

    // Path B — record each world once, replay it into every α.
    let t1 = Instant::now();
    let mut journals = Vec::new();
    for &(pm, base) in &pms {
        for i in 0..bc.trials {
            let seed = base + i;
            journals.push(((pm, seed), record_detection_world(seed, world_cfg(seed, bc.sim_secs), pm)));
        }
    }
    let record_ms = t1.elapsed().as_secs_f64() * 1e3;
    let t2 = Instant::now();
    let replayed: Vec<TrialOutcome> = cells
        .iter()
        .map(|&(alpha, pm, seed)| {
            let (_, journal) = journals
                .iter()
                .find(|((p, s), _)| *p == pm && *s == seed)
                .expect("every cell's world was recorded");
            replay_trial(journal, alpha)
        })
        .collect();
    let replay_ms = t2.elapsed().as_secs_f64() * 1e3;

    // Both paths must land on identical outcomes — replay is a cache, not
    // an approximation.
    for (i, (a, b)) in resimulated.iter().zip(&replayed).enumerate() {
        assert_eq!(a.tests, b.tests, "cell {i}: {:?}", cells[i]);
        assert_eq!(a.rejections, b.rejections, "cell {i}: {:?}", cells[i]);
        assert_eq!(a.violations, b.violations, "cell {i}: {:?}", cells[i]);
        assert_eq!(a.samples, b.samples, "cell {i}: {:?}", cells[i]);
        assert_eq!(a.rho.to_bits(), b.rho.to_bits(), "cell {i}: {:?}", cells[i]);
    }

    let replay_total_ms = record_ms + replay_ms;
    let speedup = resimulate_ms / replay_total_ms.max(1e-9);
    let json = Json::obj([
        ("bench", Json::from("ablation_alpha: re-simulate vs record+replay")),
        ("trials", Json::from(bc.trials)),
        ("sim_secs", Json::from(bc.sim_secs)),
        ("cells", Json::from(cells.len() as u64)),
        ("worlds_resimulated", Json::from(cells.len() as u64)),
        ("worlds_recorded", Json::from(journals.len() as u64)),
        ("resimulate_ms", Json::Num((resimulate_ms * 10.0).round() / 10.0)),
        ("record_ms", Json::Num((record_ms * 10.0).round() / 10.0)),
        ("replay_ms", Json::Num((replay_ms * 10.0).round() / 10.0)),
        ("speedup", Json::Num((speedup * 100.0).round() / 100.0)),
    ]);
    let path = std::env::var("MG_BENCH_OUT").unwrap_or_else(|_| "BENCH_replay.json".into());
    std::fs::write(&path, format!("{}\n", json.render())).unwrap_or_else(|e| {
        eprintln!("bench_replay: cannot write {path}: {e}");
        std::process::exit(1);
    });
    println!(
        "re-simulate {} cells: {:.1} ms | record {} worlds + replay {} cells: {:.1} ms | speedup {:.2}x",
        cells.len(),
        resimulate_ms,
        journals.len(),
        cells.len(),
        replay_total_ms,
        speedup
    );
    println!("wrote {path}");
}
