//! Regenerates **Figure 5** — probability of correct diagnosis versus the
//! percentage of misbehavior (PM), for sample sizes {10, 25, 50, 100}:
//!
//! * 5(a) load ≈ 0.3, 5(b) load ≈ 0.6, 5(c) load ≈ 0.9 — static grid;
//! * 5(d) mobile scenario (`--mobile`), load ≈ 0.6.
//!
//! The statistical detector alone is measured (as in the paper's hypothesis
//! test evaluation); an extra column reports how often the deterministic
//! "blatant countdown" check *also* fired per 100 back-off windows — the
//! part of the framework the paper calls immediate detection.
//!
//! The whole figure is one flat (panel × PM × seed) task grid drained by
//! the mg-runner sweep engine; each task simulates *one* world carrying one
//! monitor per sample size, and completed points replay from the result
//! cache on re-runs.
//!
//! ```text
//! cargo run --release -p mg-bench --bin fig5            # 5(a)-(c)
//! cargo run --release -p mg-bench --bin fig5 -- --mobile # 5(d)
//! MG_TRIALS=20 MG_SIM_SECS=300 ... for higher fidelity
//! ```

use mg_bench::sweep::{detection_key, outcomes_codec};
use mg_bench::table::{p3, Table};
use mg_bench::{
    aggregate, detection_trial_fanout_faulted, grid_base, mobile_detection_trial_fanout_faulted,
    sweep_or_exit, BenchConfig, Load, TrialOutcome,
};
use mg_net::ScenarioConfig;
use mg_sim::SimDuration;
use mg_trace::MetricsSnapshot;

const SAMPLE_SIZES: [usize; 4] = [10, 25, 50, 100];
const PMS: [u8; 10] = [10, 20, 30, 40, 50, 60, 70, 80, 90, 100];

struct Panel {
    load: Load,
    mobile: bool,
    slug: &'static str,
    title: &'static str,
}

#[derive(Clone, Copy)]
struct Task {
    panel: usize,
    pm: u8,
    seed: u64,
}

/// The fully resolved scenario a task simulates — also the cache identity.
fn resolved_cfg(bc: &BenchConfig, p: &Panel, seed: u64) -> ScenarioConfig {
    let base = if p.mobile {
        ScenarioConfig::mobile_paper(seed, SimDuration::ZERO)
    } else {
        grid_base()
    };
    ScenarioConfig {
        sim_secs: bc.sim_secs,
        rate_pps: p.load.rate_pps(),
        seed,
        ..base
    }
}

fn main() {
    let bc = BenchConfig::from_env_or_exit();
    let runner = bc.runner();
    let mobile = std::env::args().any(|a| a == "--mobile");

    let panels: Vec<Panel> = if mobile {
        vec![Panel {
            load: Load::Medium,
            mobile: true,
            slug: "fig5d",
            title: "Figure 5(d): P(correct diagnosis) vs PM — mobile (RWP), load 0.6",
        }]
    } else {
        vec![
            Panel {
                load: Load::Low,
                mobile: false,
                slug: "fig5a",
                title: "Figure 5(a): P(correct diagnosis) vs PM — static grid, load 0.3",
            },
            Panel {
                load: Load::Medium,
                mobile: false,
                slug: "fig5b",
                title: "Figure 5(b): P(correct diagnosis) vs PM — static grid, load 0.6",
            },
            Panel {
                load: Load::High,
                mobile: false,
                slug: "fig5c",
                title: "Figure 5(c): P(correct diagnosis) vs PM — static grid, load 0.9",
            },
        ]
    };

    // One flat grid for the whole figure: threads never idle at a
    // parameter-point boundary waiting for a slow trial elsewhere.
    let mut tasks = Vec::new();
    for (panel, _) in panels.iter().enumerate() {
        for &pm in &PMS {
            for i in 0..bc.trials {
                tasks.push(Task { panel, pm, seed: 3000 + pm as u64 * 17 + i });
            }
        }
    }

    let results: Vec<Vec<TrialOutcome>> = sweep_or_exit(
        &runner,
        &tasks,
        |t| {
            let p = &panels[t.panel];
            let experiment = if p.mobile { "detection-mobile" } else { "detection" };
            detection_key(
                experiment,
                &resolved_cfg(&bc, p, t.seed),
                t.pm,
                &SAMPLE_SIZES,
                false,
                &bc.fault,
            )
        },
        outcomes_codec(),
        |t| {
            let p = &panels[t.panel];
            if p.mobile {
                mobile_detection_trial_fanout_faulted(
                    t.seed,
                    p.load,
                    t.pm,
                    &SAMPLE_SIZES,
                    bc.sim_secs,
                    SimDuration::ZERO,
                    &bc.fault,
                )
            } else {
                detection_trial_fanout_faulted(
                    t.seed,
                    p.load,
                    t.pm,
                    &SAMPLE_SIZES,
                    bc.sim_secs,
                    false,
                    grid_base(),
                    &bc.fault,
                )
            }
        },
    );

    for (pi, p) in panels.iter().enumerate() {
        let mut t = Table::new(
            p.title,
            &["PM%", "n=10", "n=25", "n=50", "n=100", "rho", "blatant/100win"],
        );
        let mut figure_metrics = MetricsSnapshot::default();
        for &pm in &PMS {
            let per_seed: Vec<&Vec<TrialOutcome>> = tasks
                .iter()
                .zip(&results)
                .filter(|(task, _)| task.panel == pi && task.pm == pm)
                .map(|(_, r)| r)
                .collect();
            let mut cells = vec![format!("{pm}")];
            for si in 0..SAMPLE_SIZES.len() {
                let outcomes: Vec<TrialOutcome> = per_seed.iter().map(|v| v[si]).collect();
                cells.push(p3(aggregate(&outcomes).rejection_rate()));
            }
            // The world-level measurements (ρ, blatant violations, metrics)
            // are per simulation, not per monitor: all sample sizes share
            // one world, so take them once per seed — and check that the
            // fan-out really did measure the same world everywhere.
            let world_level: Vec<TrialOutcome> = per_seed
                .iter()
                .map(|v| {
                    for o in v.iter() {
                        assert_eq!(
                            o.rho.to_bits(),
                            v[0].rho.to_bits(),
                            "per-sample-size outcomes must agree on the shared world's rho"
                        );
                        assert_eq!(o.violations, v[0].violations);
                    }
                    v[0]
                })
                .collect();
            let agg = aggregate(&world_level);
            figure_metrics.merge(&agg.metrics);
            cells.push(p3(agg.rho));
            let blatant = if agg.samples > 0 {
                agg.violations as f64 * 100.0 / agg.samples as f64
            } else {
                0.0
            };
            cells.push(p3(blatant));
            t.row(cells);
        }
        t.meta("metrics", figure_metrics.to_json());
        t.emit_with(p.slug, &bc);
    }
    println!(
        "(expected shape: detection rises with PM and with sample size; \
         the paper reports >0.8 at PM=65 even with n=10 and ~1 at PM=25 with n=100)"
    );
    eprintln!("{}", runner.summary());
}
