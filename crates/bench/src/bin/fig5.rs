//! Regenerates **Figure 5** — probability of correct diagnosis versus the
//! percentage of misbehavior (PM), for sample sizes {10, 25, 50, 100}:
//!
//! * 5(a) load ≈ 0.3, 5(b) load ≈ 0.6, 5(c) load ≈ 0.9 — static grid;
//! * 5(d) mobile scenario (`--mobile`), load ≈ 0.6.
//!
//! The statistical detector alone is measured (as in the paper's hypothesis
//! test evaluation); an extra column reports how often the deterministic
//! "blatant countdown" check *also* fired per 100 back-off windows — the
//! part of the framework the paper calls immediate detection.
//!
//! ```text
//! cargo run --release -p mg-bench --bin fig5            # 5(a)-(c)
//! cargo run --release -p mg-bench --bin fig5 -- --mobile # 5(d)
//! MG_TRIALS=20 MG_SIM_SECS=300 ... for higher fidelity
//! ```

use mg_bench::table::{p3, Table};
use mg_bench::{
    aggregate, detection_trial, grid_base, mobile_detection_trial, parallel_seeds, sim_secs,
    trials, Load, TrialOutcome,
};
use mg_sim::SimDuration;
use mg_trace::MetricsSnapshot;

const SAMPLE_SIZES: [usize; 4] = [10, 25, 50, 100];
const PMS: [u8; 10] = [10, 20, 30, 40, 50, 60, 70, 80, 90, 100];

fn run_figure(load: Load, mobile: bool, slug: &str, title: &str) {
    let n = trials();
    let secs = sim_secs();
    let mut t = Table::new(
        title,
        &[
            "PM%", "n=10", "n=25", "n=50", "n=100", "rho", "blatant/100win",
        ],
    );
    let mut figure_metrics = MetricsSnapshot::default();
    for &pm in &PMS {
        let mut cells = vec![format!("{pm}")];
        let mut rho_acc = 0.0;
        let mut blatant_rate = 0.0;
        for &ss in &SAMPLE_SIZES {
            // The blatant check runs alongside but never influences the
            // statistical test (it only records violations), so one run
            // yields both the hypothesis-test curve and the deterministic
            // column.
            let outcomes: Vec<TrialOutcome> = parallel_seeds(n, 3000 + pm as u64 * 17, |seed| {
                if mobile {
                    mobile_detection_trial(seed, load, pm, ss, secs, SimDuration::ZERO)
                } else {
                    detection_trial(seed, load, pm, ss, secs, false, grid_base())
                }
            });
            let agg = aggregate(&outcomes);
            figure_metrics.merge(&agg.metrics);
            cells.push(p3(agg.rejection_rate()));
            rho_acc = agg.rho;
            if ss == SAMPLE_SIZES[0] {
                blatant_rate = if agg.samples > 0 {
                    agg.violations as f64 * 100.0 / agg.samples as f64
                } else {
                    0.0
                };
            }
        }
        cells.push(p3(rho_acc));
        cells.push(p3(blatant_rate));
        t.row(cells);
    }
    t.meta("metrics", figure_metrics.to_json());
    t.emit(slug);
}

fn main() {
    let mobile = std::env::args().any(|a| a == "--mobile");
    if mobile {
        run_figure(
            Load::Medium,
            true,
            "fig5d",
            "Figure 5(d): P(correct diagnosis) vs PM — mobile (RWP), load 0.6",
        );
    } else {
        run_figure(
            Load::Low,
            false,
            "fig5a",
            "Figure 5(a): P(correct diagnosis) vs PM — static grid, load 0.3",
        );
        run_figure(
            Load::Medium,
            false,
            "fig5b",
            "Figure 5(b): P(correct diagnosis) vs PM — static grid, load 0.6",
        );
        run_figure(
            Load::High,
            false,
            "fig5c",
            "Figure 5(c): P(correct diagnosis) vs PM — static grid, load 0.9",
        );
    }
    println!(
        "(expected shape: detection rises with PM and with sample size; \
         the paper reports >0.8 at PM=65 even with n=10 and ~1 at PM=25 with n=100)"
    );
}
