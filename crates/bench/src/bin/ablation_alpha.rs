//! Ablation: sensitivity to the ARMA smoothing parameter α (paper Eq. 6).
//!
//! The paper uses α = 0.995 "as in previous systems" and claims results are
//! not very sensitive to α as long as α ≈ 1. This binary checks that claim:
//! false-alarm and detection rates across α ∈ {0.5, 0.9, 0.99, 0.995, 0.999}.
//!
//! ```text
//! cargo run --release -p mg-bench --bin ablation_alpha
//! ```

use mg_bench::table::{p3, Table};
use mg_bench::{aggregate, parallel_seeds, sim_secs, trials, Load, TrialOutcome};
use mg_dcf::BackoffPolicy;
use mg_detect::{Monitor, MonitorConfig};
use mg_net::{Scenario, ScenarioConfig, SourceCfg};
use mg_sim::SimTime;

fn trial(seed: u64, pm: u8, arma_alpha: f64) -> TrialOutcome {
    let secs = sim_secs();
    let cfg = ScenarioConfig {
        sim_secs: secs,
        rate_pps: Load::Medium.rate_pps(),
        seed,
        ..ScenarioConfig::grid_paper(seed)
    };
    let scenario = Scenario::new(cfg);
    let (s, r) = scenario.tagged_pair();
    let mut mc = MonitorConfig::grid_paper(s, r, 240.0);
    mc.sample_size = 25;
    mc.arma_alpha = arma_alpha;
    mc.blatant_check = false;
    let monitor = Monitor::new(mc);
    let mut world = scenario.build_with_observer(&[s, r], monitor);
    if pm > 0 {
        world.set_policy(s, BackoffPolicy::Scaled { pm });
    }
    world.add_source(SourceCfg::saturated(s, r));
    world.run_until(SimTime::from_secs(secs));
    let d = world.observer().diagnosis();
    TrialOutcome {
        tests: d.tests_run as u64,
        rejections: d.rejections as u64,
        violations: d.violations as u64,
        samples: d.samples_collected as u64,
        rho: world.observer().rho(),
        ..TrialOutcome::default()
    }
}

fn main() {
    let n = trials();
    let mut t = Table::new(
        "Ablation: ARMA smoothing alpha (Eq. 6; paper uses 0.995)",
        &["alpha", "false alarms", "detect PM=50", "detect PM=90", "rho_bg"],
    );
    for alpha in [0.5, 0.9, 0.99, 0.995, 0.999] {
        let fa = aggregate(&parallel_seeds(n, 8000, |seed| trial(seed, 0, alpha)));
        let d50 = aggregate(&parallel_seeds(n, 8100, |seed| trial(seed, 50, alpha)));
        let d90 = aggregate(&parallel_seeds(n, 8200, |seed| trial(seed, 90, alpha)));
        t.row(vec![
            format!("{alpha}"),
            p3(fa.rejection_rate()),
            p3(d50.rejection_rate()),
            p3(d90.rejection_rate()),
            p3(fa.rho),
        ]);
    }
    t.emit("ablation_alpha");
    println!("(the paper's claim: performance is flat in alpha for alpha close to 1)");
}
