//! Ablation: sensitivity to the ARMA smoothing parameter α (paper Eq. 6).
//!
//! The paper uses α = 0.995 "as in previous systems" and claims results are
//! not very sensitive to α as long as α ≈ 1. This binary checks that claim:
//! false-alarm and detection rates across α ∈ {0.5, 0.9, 0.99, 0.995, 0.999}.
//!
//! ```text
//! cargo run --release -p mg-bench --bin ablation_alpha
//! ```

use mg_bench::sweep::{outcome_codec, SCHEMA};
use mg_bench::table::{p3, Table};
use mg_bench::{aggregate, sweep_or_exit, BenchConfig, Load, TrialOutcome};
use mg_dcf::BackoffPolicy;
use mg_detect::{MonitorConfig, ScenarioBuilder, WorldMonitors};
use mg_net::{Scenario, ScenarioConfig, SourceCfg};
use mg_runner::CacheKey;
use mg_sim::SimTime;

fn trial(seed: u64, pm: u8, arma_alpha: f64, secs: u64) -> TrialOutcome {
    let cfg = ScenarioConfig {
        sim_secs: secs,
        rate_pps: Load::Medium.rate_pps(),
        seed,
        ..ScenarioConfig::grid_paper(seed)
    };
    let scenario = Scenario::new(cfg);
    let (s, r) = scenario.tagged_pair();
    let mut mc = MonitorConfig::grid_paper(s, r, 240.0);
    mc.sample_size = 25;
    mc.arma_alpha = arma_alpha;
    mc.blatant_check = false;
    let mut b = ScenarioBuilder::new(scenario);
    let attacker = b.attacker(s);
    let watch = b.monitor(mc);
    b.source(SourceCfg::saturated(s, r));
    let mut world = b.build();
    if pm > 0 {
        world.set_policy(attacker.id(), BackoffPolicy::Scaled { pm });
    }
    world.run_until(SimTime::from_secs(secs));
    let pool = world.monitors().pool(watch);
    let d = pool.diagnosis();
    // The column of interest: the ARMA-smoothed *background* intensity, not
    // the overall busy fraction — it is the α-dependent estimate.
    let rho_bg = pool.monitor(r).map(|m| m.rho()).unwrap_or(0.0);
    TrialOutcome {
        tests: d.tests_run as u64,
        rejections: d.rejections as u64,
        violations: d.violations as u64,
        samples: d.samples_collected as u64,
        rho: rho_bg,
        ..TrialOutcome::default()
    }
}

fn main() {
    let bc = BenchConfig::from_env_or_exit();
    let runner = bc.runner();
    let alphas = [0.5, 0.9, 0.99, 0.995, 0.999];
    let pms: [(u8, u64); 3] = [(0, 8000), (50, 8100), (90, 8200)];

    let mut tasks = Vec::new();
    for &alpha in &alphas {
        for &(pm, base) in &pms {
            for i in 0..bc.trials {
                tasks.push((alpha, pm, base + i));
            }
        }
    }
    let results: Vec<TrialOutcome> = sweep_or_exit(
        &runner,
        &tasks,
        |&(alpha, pm, seed)| {
            let cfg = ScenarioConfig {
                sim_secs: bc.sim_secs,
                rate_pps: Load::Medium.rate_pps(),
                seed,
                ..ScenarioConfig::grid_paper(seed)
            };
            CacheKey::new("ablation-alpha", SCHEMA)
                .field("cfg", cfg)
                .field("pm", pm)
                .field("alpha", alpha)
                .field("sample_size", 25usize)
        },
        outcome_codec(),
        |&(alpha, pm, seed)| trial(seed, pm, alpha, bc.sim_secs),
    );

    let mut t = Table::new(
        "Ablation: ARMA smoothing alpha (Eq. 6; paper uses 0.995)",
        &["alpha", "false alarms", "detect PM=50", "detect PM=90", "rho_bg"],
    );
    for &alpha in &alphas {
        let agg_for = |pm: u8| {
            let outcomes: Vec<TrialOutcome> = tasks
                .iter()
                .zip(&results)
                .filter(|((a, p, _), _)| *a == alpha && *p == pm)
                .map(|(_, o)| *o)
                .collect();
            aggregate(&outcomes)
        };
        let fa = agg_for(0);
        t.row(vec![
            format!("{alpha}"),
            p3(fa.rejection_rate()),
            p3(agg_for(50).rejection_rate()),
            p3(agg_for(90).rejection_rate()),
            p3(fa.rho),
        ]);
    }
    t.emit_with("ablation_alpha", &bc);
    println!("(the paper's claim: performance is flat in alpha for alpha close to 1)");
    eprintln!("{}", runner.summary());
}
