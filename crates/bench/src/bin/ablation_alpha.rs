//! Ablation: sensitivity to the ARMA smoothing parameter α (paper Eq. 6).
//!
//! The paper uses α = 0.995 "as in previous systems" and claims results are
//! not very sensitive to α as long as α ≈ 1. This binary checks that claim:
//! false-alarm and detection rates across α ∈ {0.5, 0.9, 0.99, 0.995, 0.999}.
//!
//! Replay-backed: α is a detector knob, not a world knob, so each
//! `(PM, seed)` world is simulated **once** (its observation stream recorded
//! to a cached [`mg_detect::ObsJournal`]) and replayed into the five α
//! configurations — a 5× cut in simulated worlds.
//!
//! ```text
//! cargo run --release -p mg-bench --bin ablation_alpha
//! ```

use mg_bench::sweep::{journal_codec, journal_key, outcome_codec, SCHEMA};
use mg_bench::table::{p3, Table};
use mg_bench::{
    aggregate, record_detection_world, sweep_or_exit, BenchConfig, Load, TrialOutcome,
};
use mg_detect::{replay_pool, MonitorConfig, ObsJournal};
use mg_net::ScenarioConfig;
use mg_runner::CacheKey;
use std::collections::HashMap;

fn world_cfg(seed: u64, secs: u64) -> ScenarioConfig {
    ScenarioConfig {
        sim_secs: secs,
        rate_pps: Load::Medium.rate_pps(),
        seed,
        ..ScenarioConfig::grid_paper(seed)
    }
}

fn replay_trial(journal: &ObsJournal, arma_alpha: f64) -> TrialOutcome {
    let meta = journal.meta();
    let (s, r) = (meta.tagged, meta.vantages[0]);
    let mut mc = MonitorConfig::grid_paper(s, r, 240.0);
    mc.sample_size = 25;
    mc.arma_alpha = arma_alpha;
    mc.blatant_check = false;
    let pool = replay_pool(journal, mc);
    let d = pool.diagnosis();
    // The column of interest: the ARMA-smoothed *background* intensity, not
    // the overall busy fraction — it is the α-dependent estimate.
    let rho_bg = pool.monitor(r).map(|m| m.rho()).unwrap_or(0.0);
    TrialOutcome {
        tests: d.tests_run as u64,
        rejections: d.rejections as u64,
        violations: d.violations as u64,
        samples: d.samples_collected as u64,
        rho: rho_bg,
        ..TrialOutcome::default()
    }
}

fn main() {
    let bc = BenchConfig::from_env_or_exit();
    let runner = bc.runner();
    let alphas = [0.5, 0.9, 0.99, 0.995, 0.999];
    let pms: [(u8, u64); 3] = [(0, 8000), (50, 8100), (90, 8200)];

    // Sweep 1 — the worlds: one recorded journal per (PM, seed) cell.
    let mut worlds = Vec::new();
    for &(pm, base) in &pms {
        for i in 0..bc.trials {
            worlds.push((pm, base + i));
        }
    }
    let journals: Vec<ObsJournal> = sweep_or_exit(
        &runner,
        &worlds,
        |&(pm, seed)| journal_key(&world_cfg(seed, bc.sim_secs), pm),
        journal_codec(),
        |&(pm, seed)| record_detection_world(seed, world_cfg(seed, bc.sim_secs), pm),
    );
    let by_world: HashMap<(u8, u64), &ObsJournal> =
        worlds.iter().copied().zip(journals.iter()).collect();

    // Sweep 2 — the knob: replay every world into each α, no re-simulation.
    let mut tasks = Vec::new();
    for &alpha in &alphas {
        for &(pm, base) in &pms {
            for i in 0..bc.trials {
                tasks.push((alpha, pm, base + i));
            }
        }
    }
    let results: Vec<TrialOutcome> = sweep_or_exit(
        &runner,
        &tasks,
        |&(alpha, pm, seed)| {
            CacheKey::new("ablation-alpha", SCHEMA)
                .field("cfg", world_cfg(seed, bc.sim_secs))
                .field("pm", pm)
                .field("alpha", alpha)
                .field("sample_size", 25usize)
        },
        outcome_codec(),
        |&(alpha, pm, seed)| replay_trial(by_world[&(pm, seed)], alpha),
    );

    let mut t = Table::new(
        "Ablation: ARMA smoothing alpha (Eq. 6; paper uses 0.995)",
        &["alpha", "false alarms", "detect PM=50", "detect PM=90", "rho_bg"],
    );
    for &alpha in &alphas {
        let agg_for = |pm: u8| {
            let outcomes: Vec<TrialOutcome> = tasks
                .iter()
                .zip(&results)
                .filter(|((a, p, _), _)| *a == alpha && *p == pm)
                .map(|(_, o)| *o)
                .collect();
            aggregate(&outcomes)
        };
        let fa = agg_for(0);
        t.row(vec![
            format!("{alpha}"),
            p3(fa.rejection_rate()),
            p3(agg_for(50).rejection_rate()),
            p3(agg_for(90).rejection_rate()),
            p3(fa.rho),
        ]);
    }
    t.emit_with("ablation_alpha", &bc);
    println!("(the paper's claim: performance is flat in alpha for alpha close to 1)");
    eprintln!(
        "{} worlds simulated, {} detector configurations replayed",
        worlds.len(),
        tasks.len()
    );
    eprintln!("{}", runner.summary());
}
