//! Regenerates **Table 1** — the simulation parameters — from the live
//! defaults of the codebase (so the table can never drift from the code).
//!
//! ```text
//! cargo run -p mg-bench --bin table1
//! ```

use mg_bench::table::Table;
use mg_bench::BenchConfig;
use mg_dcf::MacTiming;
use mg_net::ScenarioConfig;

fn main() {
    let bc = BenchConfig::from_env_or_exit();
    for (name, cfg) in [
        ("Grid topology", ScenarioConfig::grid_paper(0)),
        ("Random topology", ScenarioConfig::random_paper(0)),
    ] {
        let mut t = Table::new(
            &format!("Table 1 — simulation parameters ({name})"),
            &["Parameter", "Value"],
        );
        for (k, v) in cfg.table1_rows() {
            t.row(vec![k, v]);
        }
        let timing = MacTiming::paper_default();
        t.row(vec![
            "Slot / SIFS / DIFS".into(),
            format!(
                "{} / {} / {} us",
                timing.slot.as_micros(),
                timing.sifs.as_micros(),
                timing.difs().as_micros()
            ),
        ]);
        t.row(vec![
            "CWmin / CWmax".into(),
            format!("{} / {}", timing.cw_min, timing.cw_max),
        ]);
        t.emit_with(
            &format!(
                "table1_{}",
                name.split_whitespace().next().unwrap().to_lowercase()
            ),
            &bc,
        );
    }
}
