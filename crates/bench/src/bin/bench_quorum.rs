//! Collaborative detection: detection / false-conviction probability of the
//! k-of-n accusation quorum vs the conviction threshold `k` and the
//! Byzantine (lying) monitor fraction.
//!
//! Replay-backed, like the ablation binaries: the quorum threshold and the
//! Byzantine cast are detector-side knobs, so each `(PM, seed)` world is
//! simulated **once** — its member vantages' observation streams recorded
//! to a cached multi-vantage journal — and replayed into every `(k, lie)`
//! configuration, a 9× cut in simulated worlds.
//!
//! The load-bearing assertion: **fewer than `k` lying accusers must never
//! convict a compliant node.** Conviction needs `k` *distinct* accusers,
//! honest monitors of a PM = 0 node stay silent (no deterministic
//! violations, and the rank-sum test holds its size), so `f < k` liars
//! cannot reach the quorum on their own. Roles are drawn per vantage from
//! the plan's fractions, so the assertion conditions on the *realized*
//! liar count of each trial, not the nominal fraction; any violating cell
//! is named on stderr and the binary exits 1. Results go to
//! `BENCH_quorum.json` (override with `MG_BENCH_OUT`).
//!
//! ```text
//! cargo run --release -p mg-bench --bin bench_quorum
//! ```

use mg_bench::sweep::{quorum_codec, quorum_journal_key, quorum_key};
use mg_bench::table::{f2, p3, Table};
use mg_bench::{
    grid_base, quorum_trial_from_journal, record_quorum_world, sweep_or_exit, BenchConfig,
    FaultPlan, Load, QuorumOutcome,
};
use mg_detect::ObsJournal;
use mg_net::ScenarioConfig;
use mg_trace::json::Json;
use std::collections::HashMap;

const SS: usize = 25;
/// The paper's grid offers exactly 4 vantages inside decode range (240 m
/// spacing, 250 m transmission range): the tagged node's row/column
/// neighbors. Every quorum in this sweep is k-of-4.
const MEMBERS: usize = 4;
const KS: [usize; 3] = [1, 2, 3];
/// Nominal Byzantine (FalseAccuser) fractions; realized counts vary per
/// seed and are what the table and the assertion report.
const LIES: [f64; 3] = [0.0, 0.25, 0.45];
const PMS: [(u8, u64); 2] = [(0, 9700), (75, 9800)];

fn world_cfg(seed: u64, secs: u64) -> ScenarioConfig {
    ScenarioConfig {
        sim_secs: secs,
        rate_pps: Load::Medium.rate_pps(),
        seed,
        ..grid_base()
    }
}

/// The Byzantine cast for one `(lie, seed)` cell: role fractions from the
/// sweep axis, role seed from the trial so every seed draws its own cast.
fn cast(lie: f64, seed: u64) -> FaultPlan {
    if lie == 0.0 {
        FaultPlan::default()
    } else {
        FaultPlan::parse(&format!("lie={lie}"))
            .expect("built-in lie spec parses")
            .with_seed(seed)
    }
}

fn main() {
    let bc = BenchConfig::from_env_or_exit();
    let runner = bc.runner();

    // Sweep 1 — the worlds: one recorded multi-vantage journal per
    // (PM, seed) cell.
    let mut worlds = Vec::new();
    for &(pm, base) in &PMS {
        for i in 0..bc.trials {
            worlds.push((pm, base + i));
        }
    }
    let journals: Vec<ObsJournal> = sweep_or_exit(
        &runner,
        &worlds,
        |&(pm, seed)| quorum_journal_key(&world_cfg(seed, bc.sim_secs), pm, MEMBERS),
        mg_bench::sweep::journal_codec(),
        |&(pm, seed)| record_quorum_world(seed, world_cfg(seed, bc.sim_secs), pm, MEMBERS),
    );
    let by_world: HashMap<(u8, u64), &ObsJournal> =
        worlds.iter().copied().zip(journals.iter()).collect();

    // Sweep 2 — the knobs: replay every world into each (k, lie) cell.
    let mut tasks = Vec::new();
    for &k in &KS {
        for &lie in &LIES {
            for &(pm, base) in &PMS {
                for i in 0..bc.trials {
                    tasks.push((k, lie, pm, base + i));
                }
            }
        }
    }
    let results: Vec<QuorumOutcome> = sweep_or_exit(
        &runner,
        &tasks,
        |&(k, lie, pm, seed)| {
            quorum_key(
                "bench-quorum",
                &world_cfg(seed, bc.sim_secs),
                pm,
                SS,
                MEMBERS,
                k,
                &cast(lie, seed),
            )
        },
        quorum_codec(),
        |&(k, lie, pm, seed)| {
            quorum_trial_from_journal(by_world[&(pm, seed)], SS, k, &cast(lie, seed))
        },
    );

    let mut t = Table::new(
        &format!(
            "Collaborative detection: k-of-{MEMBERS} quorum vs Byzantine fraction \
             (grid, load 0.6, sample size {SS})"
        ),
        &["k", "lie", "PM%", "convict", "mean liars", "f<k trials", "false convictions"],
    );
    let mut cells = Vec::new();
    let mut bad_cells: Vec<String> = Vec::new();
    for &k in &KS {
        for &lie in &LIES {
            for &(pm, _) in &PMS {
                let cell: Vec<&QuorumOutcome> = tasks
                    .iter()
                    .zip(&results)
                    .filter(|(&(tk, tl, tp, _), _)| tk == k && tl == lie && tp == pm)
                    .map(|(_, o)| o)
                    .collect();
                let trials = cell.len() as u64;
                let convictions = cell.iter().filter(|o| o.convicted).count() as u64;
                let liars: u64 = cell.iter().map(|o| o.byzantine).sum();
                let below_k = cell.iter().filter(|o| (o.byzantine as usize) < k).count() as u64;
                // The guarantee under test: a trial whose realized liar
                // count stays below k must never convict a compliant node.
                let false_convictions = if pm == 0 {
                    cell.iter()
                        .filter(|o| o.convicted && (o.byzantine as usize) < k)
                        .count() as u64
                } else {
                    0
                };
                if false_convictions > 0 {
                    bad_cells.push(format!(
                        "k={k} lie={lie} PM={pm}: {false_convictions} false conviction(s) \
                         across {below_k} trial(s) with fewer than {k} realized liars"
                    ));
                }
                t.row(vec![
                    format!("{k}"),
                    format!("{lie}"),
                    format!("{pm}"),
                    p3(convictions as f64 / trials.max(1) as f64),
                    f2(liars as f64 / trials.max(1) as f64),
                    format!("{below_k}"),
                    format!("{false_convictions}"),
                ]);
                cells.push(Json::obj([
                    ("k", Json::from(k as u64)),
                    ("lie", Json::Num(lie)),
                    ("pm", Json::from(pm as u64)),
                    ("trials", Json::from(trials)),
                    ("convictions", Json::from(convictions)),
                    ("mean_liars", Json::Num(liars as f64 / trials.max(1) as f64)),
                    ("trials_below_k", Json::from(below_k)),
                    ("false_convictions", Json::from(false_convictions)),
                ]));
            }
        }
    }
    t.emit_with("bench_quorum", &bc);
    println!(
        "(trials with fewer than k realized liars must show 0 false convictions at PM=0 — \
         enforced; cells where liars reach k are the f >= k regime the bound does not cover)"
    );

    let gossip_sent: u64 = results.iter().map(|o| o.gossip_sent).sum();
    let gossip_delivered: u64 = results.iter().map(|o| o.gossip_delivered).sum();
    let json = Json::obj([
        (
            "bench",
            Json::from("quorum: k-of-n conviction vs Byzantine monitor fraction"),
        ),
        ("members", Json::from(MEMBERS as u64)),
        ("sample_size", Json::from(SS as u64)),
        ("sim_secs", Json::from(bc.sim_secs)),
        ("trials_per_cell", Json::from(bc.trials)),
        ("detection_vs_k", Json::Arr(cells)),
        ("gossip_sent", Json::from(gossip_sent)),
        ("gossip_delivered", Json::from(gossip_delivered)),
        ("false_conviction_cells", Json::from(bad_cells.len() as u64)),
        ("pass", Json::Bool(bad_cells.is_empty())),
    ]);
    let path = std::env::var("MG_BENCH_OUT").unwrap_or_else(|_| "BENCH_quorum.json".into());
    if let Err(e) = std::fs::write(&path, format!("{}\n", json.render())) {
        eprintln!("bench_quorum: cannot write {path}: {e}");
        std::process::exit(1);
    }
    println!("wrote {path}");
    eprintln!("{}", runner.summary());
    if !bad_cells.is_empty() {
        for cell in &bad_cells {
            eprintln!("bench_quorum: FALSE CONVICTION — {cell}");
        }
        std::process::exit(1);
    }
}
