//! Ablation: Wilcoxon rank-sum versus Welch's t-test.
//!
//! The paper argues the rank-sum test is the right tool because back-off
//! samples are not Gaussian. This binary replays the *same* collected
//! samples through both tests and compares false-alarm and detection rates.
//!
//! ```text
//! cargo run --release -p mg-bench --bin ablation_tests
//! ```

use mg_bench::table::{p3, Table};
use mg_bench::{parallel_seeds, sim_secs, trials, Load};
use mg_dcf::BackoffPolicy;
use mg_detect::{Monitor, MonitorConfig};
use mg_net::{Scenario, ScenarioConfig, SourceCfg};
use mg_sim::SimTime;
use mg_stats::signed_rank::signed_rank_test;
use mg_stats::ttest::welch_t_test;
use mg_stats::wilcoxon::{rank_sum_test, Alternative};

/// Collects raw (dictated, estimated) samples from one run.
fn collect(seed: u64, pm: u8) -> Vec<(f64, f64)> {
    let secs = sim_secs();
    let cfg = ScenarioConfig {
        sim_secs: secs,
        rate_pps: Load::Medium.rate_pps(),
        seed,
        ..ScenarioConfig::grid_paper(seed)
    };
    let scenario = Scenario::new(cfg);
    let (s, r) = scenario.tagged_pair();
    let mut mc = MonitorConfig::grid_paper(s, r, 240.0);
    mc.auto_test = false;
    let monitor = Monitor::new(mc);
    let mut world = scenario.build_with_observer(&[s, r], monitor);
    if pm > 0 {
        world.set_policy(s, BackoffPolicy::Scaled { pm });
    }
    world.add_source(SourceCfg::saturated(s, r));
    world.run_until(SimTime::from_secs(secs));
    world.observer().samples().to_vec()
}

/// Rejection rates of all three tests over tumbling batches of `ss` samples.
fn rates(samples: &[(f64, f64)], ss: usize, alpha: f64) -> (f64, f64, f64, usize) {
    let mut wil = 0usize;
    let mut tt = 0usize;
    let mut sr = 0usize;
    let mut n = 0usize;
    for batch in samples.chunks_exact(ss) {
        let xs: Vec<f64> = batch.iter().map(|&(x, _)| x).collect();
        let ys: Vec<f64> = batch.iter().map(|&(_, y)| y).collect();
        if rank_sum_test(&ys, &xs, Alternative::Less).p_value < alpha {
            wil += 1;
        }
        if welch_t_test(&ys, &xs, Alternative::Less).p_value < alpha {
            tt += 1;
        }
        if signed_rank_test(&ys, &xs, Alternative::Less).p_value < alpha {
            sr += 1;
        }
        n += 1;
    }
    if n == 0 {
        (0.0, 0.0, 0.0, 0)
    } else {
        (
            wil as f64 / n as f64,
            tt as f64 / n as f64,
            sr as f64 / n as f64,
            n,
        )
    }
}

fn main() {
    let n_trials = trials();
    let alpha = 0.01;
    let ss = 25;
    let mut t = Table::new(
        &format!(
            "Ablation: rank-sum vs Welch t vs signed-rank (alpha {alpha}, sample size {ss}, load 0.6)"
        ),
        &["PM%", "rank-sum (paper)", "welch-t", "signed-rank (paired)", "tests"],
    );
    for pm in [0u8, 25, 50, 75, 90] {
        let all: Vec<Vec<(f64, f64)>> =
            parallel_seeds(n_trials, 7000 + pm as u64, |seed| collect(seed, pm));
        let mut wil_sum = 0.0;
        let mut tt_sum = 0.0;
        let mut sr_sum = 0.0;
        let mut tests = 0usize;
        let mut weighted = 0.0;
        for samples in &all {
            let (w, tt_rate, sr_rate, n) = rates(samples, ss, alpha);
            wil_sum += w * n as f64;
            tt_sum += tt_rate * n as f64;
            sr_sum += sr_rate * n as f64;
            tests += n;
            weighted += n as f64;
        }
        let (w, tt_rate, sr_rate) = if weighted > 0.0 {
            (wil_sum / weighted, tt_sum / weighted, sr_sum / weighted)
        } else {
            (0.0, 0.0, 0.0)
        };
        t.row(vec![
            format!("{pm}"),
            p3(w),
            p3(tt_rate),
            p3(sr_rate),
            format!("{tests}"),
        ]);
    }
    t.emit("ablation_tests");
    println!(
        "(PM=0 row is the false-alarm rate; the paper prefers the rank-sum for its          distribution-freeness; the paired signed-rank is this repository's extension)"
    );
}
