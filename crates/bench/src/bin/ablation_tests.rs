//! Ablation: Wilcoxon rank-sum versus Welch's t-test.
//!
//! The paper argues the rank-sum test is the right tool because back-off
//! samples are not Gaussian. This binary replays the *same* collected
//! samples through both tests and compares false-alarm and detection rates.
//!
//! Replay-backed: each `(PM, seed)` world is simulated **once**, its
//! observation stream recorded to a cached [`mg_detect::ObsJournal`], and
//! the raw (dictated, estimated) samples are extracted by replaying the
//! journal into an `auto_test = false` monitor. The journal is keyed on the
//! world alone, so this binary shares cache entries with any other sweep
//! over the same `(cfg, PM)` cells.
//!
//! ```text
//! cargo run --release -p mg-bench --bin ablation_tests
//! ```

use mg_bench::sweep::{journal_codec, journal_key, SCHEMA};
use mg_bench::table::{p3, Table};
use mg_bench::{record_detection_world, sweep_or_exit, BenchConfig, Load};
use mg_detect::{replay_pool, MonitorConfig, ObsJournal};
use mg_net::ScenarioConfig;
use mg_runner::{CacheKey, Codec};
use mg_stats::signed_rank::signed_rank_test;
use mg_stats::ttest::welch_t_test;
use mg_stats::wilcoxon::{rank_sum_test, Alternative};
use mg_trace::json::Json;
use std::collections::HashMap;

fn world_cfg(seed: u64, secs: u64) -> ScenarioConfig {
    ScenarioConfig {
        sim_secs: secs,
        rate_pps: Load::Medium.rate_pps(),
        seed,
        ..ScenarioConfig::grid_paper(seed)
    }
}

/// Extracts raw (dictated, estimated) samples by replaying one journal.
fn collect(journal: &ObsJournal) -> Vec<(f64, f64)> {
    let meta = journal.meta();
    let (s, r) = (meta.tagged, meta.vantages[0]);
    let mut mc = MonitorConfig::grid_paper(s, r, 240.0);
    mc.auto_test = false;
    replay_pool(journal, mc)
        .monitor(r)
        .expect("static vantage is always a member")
        .samples()
        .to_vec()
}

/// Rejection rates of all three tests over tumbling batches of `ss` samples.
fn rates(samples: &[(f64, f64)], ss: usize, alpha: f64) -> (f64, f64, f64, usize) {
    let mut wil = 0usize;
    let mut tt = 0usize;
    let mut sr = 0usize;
    let mut n = 0usize;
    for batch in samples.chunks_exact(ss) {
        let xs: Vec<f64> = batch.iter().map(|&(x, _)| x).collect();
        let ys: Vec<f64> = batch.iter().map(|&(_, y)| y).collect();
        if rank_sum_test(&ys, &xs, Alternative::Less).p_value < alpha {
            wil += 1;
        }
        if welch_t_test(&ys, &xs, Alternative::Less).p_value < alpha {
            tt += 1;
        }
        if signed_rank_test(&ys, &xs, Alternative::Less).p_value < alpha {
            sr += 1;
        }
        n += 1;
    }
    if n == 0 {
        (0.0, 0.0, 0.0, 0)
    } else {
        (
            wil as f64 / n as f64,
            tt as f64 / n as f64,
            sr as f64 / n as f64,
            n,
        )
    }
}

/// (dictated, estimated) sample pairs as a JSON array of two-element arrays.
fn samples_codec() -> Codec<Vec<(f64, f64)>> {
    Codec {
        encode: |s| {
            Json::Arr(
                s.iter()
                    .map(|&(x, y)| Json::Arr(vec![Json::Num(x), Json::Num(y)]))
                    .collect(),
            )
        },
        decode: |v| {
            v.as_arr()?
                .iter()
                .map(|p| {
                    let pair = p.as_arr()?;
                    match pair {
                        [x, y] => Some((x.as_f64()?, y.as_f64()?)),
                        _ => None,
                    }
                })
                .collect()
        },
    }
}

fn main() {
    let bc = BenchConfig::from_env_or_exit();
    let runner = bc.runner();
    let alpha = 0.01;
    let ss = 25;
    let pms: [u8; 5] = [0, 25, 50, 75, 90];

    // Sweep 1 — the worlds: one recorded journal per (PM, seed) cell.
    let mut worlds = Vec::new();
    for &pm in &pms {
        for i in 0..bc.trials {
            worlds.push((pm, 7000 + pm as u64 + i));
        }
    }
    let journals: Vec<ObsJournal> = sweep_or_exit(
        &runner,
        &worlds,
        |&(pm, seed)| journal_key(&world_cfg(seed, bc.sim_secs), pm),
        journal_codec(),
        |&(pm, seed)| record_detection_world(seed, world_cfg(seed, bc.sim_secs), pm),
    );
    let by_world: HashMap<(u8, u64), &ObsJournal> =
        worlds.iter().copied().zip(journals.iter()).collect();

    // Sweep 2 — sample extraction: replay each journal once.
    let tasks = worlds.clone();
    let all: Vec<Vec<(f64, f64)>> = sweep_or_exit(
        &runner,
        &tasks,
        |&(pm, seed)| {
            CacheKey::new("ablation-tests", SCHEMA)
                .field("cfg", world_cfg(seed, bc.sim_secs))
                .field("pm", pm)
                .field("collector", "raw-samples")
        },
        samples_codec(),
        |&(pm, seed)| collect(by_world[&(pm, seed)]),
    );

    let mut t = Table::new(
        &format!(
            "Ablation: rank-sum vs Welch t vs signed-rank (alpha {alpha}, sample size {ss}, load 0.6)"
        ),
        &["PM%", "rank-sum (paper)", "welch-t", "signed-rank (paired)", "tests"],
    );
    for &pm in &pms {
        let mut wil_sum = 0.0;
        let mut tt_sum = 0.0;
        let mut sr_sum = 0.0;
        let mut tests = 0usize;
        let mut weighted = 0.0;
        for samples in tasks
            .iter()
            .zip(&all)
            .filter(|((p, _), _)| *p == pm)
            .map(|(_, s)| s)
        {
            let (w, tt_rate, sr_rate, n) = rates(samples, ss, alpha);
            wil_sum += w * n as f64;
            tt_sum += tt_rate * n as f64;
            sr_sum += sr_rate * n as f64;
            tests += n;
            weighted += n as f64;
        }
        let (w, tt_rate, sr_rate) = if weighted > 0.0 {
            (wil_sum / weighted, tt_sum / weighted, sr_sum / weighted)
        } else {
            (0.0, 0.0, 0.0)
        };
        t.row(vec![
            format!("{pm}"),
            p3(w),
            p3(tt_rate),
            p3(sr_rate),
            format!("{tests}"),
        ]);
    }
    t.emit_with("ablation_tests", &bc);
    println!(
        "(PM=0 row is the false-alarm rate; the paper prefers the rank-sum for its          distribution-freeness; the paired signed-rank is this repository's extension)"
    );
    eprintln!(
        "{} worlds simulated, {} sample streams replayed",
        worlds.len(),
        tasks.len()
    );
    eprintln!("{}", runner.summary());
}
