//! Extension: the attack's payoff — throughput capture versus PM.
//!
//! The paper's introduction motivates everything with bandwidth starvation
//! but never plots it. This binary does: three mutually-in-range saturated
//! senders, one misbehaving at increasing PM; reported are the attacker's
//! throughput share, the victims' residual throughput, and Jain's fairness
//! index.
//!
//! ```text
//! cargo run --release -p mg-bench --bin ext_fairness
//! ```

use mg_bench::sweep::SCHEMA;
use mg_bench::table::{f2, p3, Table};
use mg_bench::{sweep_or_exit, BenchConfig};
use mg_dcf::{BackoffPolicy, MacTiming};
use mg_geom::Vec2;
use mg_net::{SourceCfg, World};
use mg_phy::PropagationModel;
use mg_runner::{CacheKey, Codec};
use mg_sim::SimTime;
use mg_trace::json::Json;

fn round(seed: u64, pm: u8, secs: u64) -> [u64; 3] {
    let positions = vec![
        Vec2::new(0.0, 0.0),
        Vec2::new(200.0, 0.0),
        Vec2::new(100.0, 170.0),
    ];
    let mut world: World<()> = World::new(
        positions,
        PropagationModel::free_space(),
        250.0,
        550.0,
        MacTiming::paper_default(),
        seed,
        (),
    );
    if pm > 0 {
        world.set_policy(0, BackoffPolicy::Scaled { pm });
    }
    world.add_source(SourceCfg::saturated(0, 1));
    world.add_source(SourceCfg::saturated(1, 2));
    world.add_source(SourceCfg::saturated(2, 0));
    world.run_until(SimTime::from_secs(secs));
    [
        world.mac(0).stats().delivered,
        world.mac(1).stats().delivered,
        world.mac(2).stats().delivered,
    ]
}

fn jain(xs: &[f64]) -> f64 {
    let sum: f64 = xs.iter().sum();
    let sumsq: f64 = xs.iter().map(|x| x * x).sum();
    if sumsq == 0.0 {
        1.0
    } else {
        sum * sum / (xs.len() as f64 * sumsq)
    }
}

fn counts_codec() -> Codec<[u64; 3]> {
    Codec {
        encode: |r| Json::Arr(r.iter().map(|&d| Json::from(d)).collect()),
        decode: |v| {
            let a = v.as_arr()?;
            match a {
                [x, y, z] => Some([x.as_u64()?, y.as_u64()?, z.as_u64()?]),
                _ => None,
            }
        },
    }
}

fn main() {
    let bc = BenchConfig::from_env_or_exit();
    let runner = bc.runner();
    let secs = bc.sim_secs.min(30);
    let pms: [u8; 7] = [0, 25, 50, 75, 90, 95, 100];

    let mut tasks = Vec::new();
    for &pm in &pms {
        for i in 0..bc.trials {
            tasks.push((pm, 9800 + pm as u64 + i));
        }
    }
    let results: Vec<[u64; 3]> = sweep_or_exit(
        &runner,
        &tasks,
        |&(pm, seed)| {
            // No ScenarioConfig here — the three-node world is fixed in code,
            // so pm/seed/secs are the entire task identity.
            CacheKey::new("ext-fairness", SCHEMA)
                .field("pm", pm)
                .field("seed", seed)
                .field("secs", secs)
        },
        counts_codec(),
        |&(pm, seed)| round(seed, pm, secs),
    );

    let mut t = Table::new(
        "Extension: throughput capture vs PM (3 saturated contenders)",
        &[
            "PM%",
            "attacker pkts/s",
            "victim pkts/s (each)",
            "attacker share",
            "jain fairness",
        ],
    );
    for &pm in &pms {
        let rounds: Vec<[u64; 3]> = tasks
            .iter()
            .zip(&results)
            .filter(|((p, _), _)| *p == pm)
            .map(|(_, r)| *r)
            .collect();
        let mut tot = [0f64; 3];
        for r in &rounds {
            for i in 0..3 {
                tot[i] += r[i] as f64;
            }
        }
        let per_sec = secs as f64 * rounds.len() as f64;
        let rates: Vec<f64> = tot.iter().map(|d| d / per_sec).collect();
        let total: f64 = rates.iter().sum();
        t.row(vec![
            format!("{pm}"),
            f2(rates[0]),
            f2((rates[1] + rates[2]) / 2.0),
            p3(if total > 0.0 { rates[0] / total } else { 0.0 }),
            p3(jain(&rates)),
        ]);
    }
    t.emit_with("ext_fairness", &bc);
    println!("(the attack the detector exists to stop: share -> 1, fairness -> 1/3 as PM grows)");
    eprintln!("{}", runner.summary());
}
