//! Extension: mobility pause-time sweep.
//!
//! Table 1 lists pause times {0, 50, 100, 200, 300} s for the random
//! waypoint model, but the paper shows a single mobile curve. This binary
//! sweeps the pause time: 0 s is perpetual motion (hardest — constant
//! monitor handoff), 300 s is effectively static.
//!
//! ```text
//! cargo run --release -p mg-bench --bin ext_pause
//! ```

use mg_bench::table::{p3, Table};
use mg_bench::{aggregate, mobile_detection_trial, parallel_seeds, sim_secs, trials, Load};
use mg_sim::SimDuration;

fn main() {
    let n = trials();
    let secs = sim_secs();
    let mut t = Table::new(
        "Extension: pause-time sweep — mobile detection, load 0.6, sample size 25",
        &["pause (s)", "false alarms", "detect PM=50", "detect PM=90", "tests(fa)"],
    );
    for pause_s in [0u64, 50, 100, 200, 300] {
        let pause = SimDuration::from_secs(pause_s);
        let run = |pm: u8, base: u64| {
            aggregate(&parallel_seeds(n, base + pause_s, |seed| {
                mobile_detection_trial(seed, Load::Medium, pm, 25, secs, pause)
            }))
        };
        let fa = run(0, 9500);
        let d50 = run(50, 9600);
        let d90 = run(90, 9700);
        t.row(vec![
            format!("{pause_s}"),
            p3(fa.rejection_rate()),
            p3(d50.rejection_rate()),
            p3(d90.rejection_rate()),
            format!("{}", fa.tests),
        ]);
    }
    t.emit("ext_pause");
    println!("(the paper notes mobility roughly doubles the samples needed; long pauses should recover the static behaviour)");
}
