//! Extension: mobility pause-time sweep.
//!
//! Table 1 lists pause times {0, 50, 100, 200, 300} s for the random
//! waypoint model, but the paper shows a single mobile curve. This binary
//! sweeps the pause time: 0 s is perpetual motion (hardest — constant
//! monitor handoff), 300 s is effectively static.
//!
//! ```text
//! cargo run --release -p mg-bench --bin ext_pause
//! ```

use mg_bench::sweep::{detection_key, outcome_codec};
use mg_bench::table::{p3, Table};
use mg_bench::{
    aggregate, mobile_detection_trial_fanout_faulted, sweep_or_exit, BenchConfig, Load,
    TrialOutcome,
};
use mg_net::ScenarioConfig;
use mg_sim::SimDuration;

fn main() {
    let bc = BenchConfig::from_env_or_exit();
    let runner = bc.runner();
    let pauses: [u64; 5] = [0, 50, 100, 200, 300];
    let pms: [(u8, u64); 3] = [(0, 9500), (50, 9600), (90, 9700)];

    let mut tasks = Vec::new();
    for &pause_s in &pauses {
        for &(pm, base) in &pms {
            for i in 0..bc.trials {
                tasks.push((pause_s, pm, base + pause_s + i));
            }
        }
    }
    let results: Vec<TrialOutcome> = sweep_or_exit(
        &runner,
        &tasks,
        |&(pause_s, pm, seed)| {
            let cfg = ScenarioConfig {
                sim_secs: bc.sim_secs,
                rate_pps: Load::Medium.rate_pps(),
                seed,
                ..ScenarioConfig::mobile_paper(seed, SimDuration::from_secs(pause_s))
            };
            detection_key("detection-mobile", &cfg, pm, &[25], false, &bc.fault)
        },
        outcome_codec(),
        |&(pause_s, pm, seed)| {
            mobile_detection_trial_fanout_faulted(
                seed,
                Load::Medium,
                pm,
                &[25],
                bc.sim_secs,
                SimDuration::from_secs(pause_s),
                &bc.fault,
            )
            .remove(0)
        },
    );

    let mut t = Table::new(
        "Extension: pause-time sweep — mobile detection, load 0.6, sample size 25",
        &["pause (s)", "false alarms", "detect PM=50", "detect PM=90", "tests(fa)"],
    );
    for &pause_s in &pauses {
        let agg_for = |pm: u8| {
            let outcomes: Vec<TrialOutcome> = tasks
                .iter()
                .zip(&results)
                .filter(|((ps, p, _), _)| *ps == pause_s && *p == pm)
                .map(|(_, o)| *o)
                .collect();
            aggregate(&outcomes)
        };
        let fa = agg_for(0);
        t.row(vec![
            format!("{pause_s}"),
            p3(fa.rejection_rate()),
            p3(agg_for(50).rejection_rate()),
            p3(agg_for(90).rejection_rate()),
            format!("{}", fa.tests),
        ]);
    }
    t.emit_with("ext_pause", &bc);
    println!("(the paper notes mobility roughly doubles the samples needed; long pauses should recover the static behaviour)");
    eprintln!("{}", runner.summary());
}
