//! Extension: detection under log-normal shadowing (fading).
//!
//! The paper motivates the shadowing channel model "to take into account
//! long-term fading effects present in real channels" but runs its
//! experiments at σ_dB = 0 (free space). This binary turns the fading on:
//! false-alarm and detection rates at σ_dB ∈ {0, 2, 4, 8}, medium load.
//! Fading blurs the 250 m / 550 m disks per-packet, so both the monitor's
//! observations and the region geometry get noisier.
//!
//! ```text
//! cargo run --release -p mg-bench --bin ext_shadowing
//! ```

use mg_bench::sweep::{detection_key, outcome_codec};
use mg_bench::table::{p3, Table};
use mg_bench::{
    aggregate, detection_trial_with_cfg_faulted, sweep_or_exit, BenchConfig, Load, TrialOutcome,
};
use mg_net::ScenarioConfig;
use mg_phy::PropagationModel;

fn main() {
    let bc = BenchConfig::from_env_or_exit();
    let runner = bc.runner();
    let sigmas = [0.0, 2.0, 4.0, 8.0];
    let pms: [(u8, u64); 3] = [(0, 9000), (50, 9100), (90, 9200)];

    let base_for = |sigma: f64| ScenarioConfig {
        sim_secs: bc.sim_secs,
        rate_pps: Load::Medium.rate_pps(),
        propagation: PropagationModel::shadowing(2.0, sigma),
        ..ScenarioConfig::grid_paper(0)
    };

    let mut tasks = Vec::new();
    for &sigma in &sigmas {
        for &(pm, seed_base) in &pms {
            for i in 0..bc.trials {
                tasks.push((sigma, pm, seed_base + i));
            }
        }
    }
    let results: Vec<TrialOutcome> = sweep_or_exit(
        &runner,
        &tasks,
        |&(sigma, pm, seed)| {
            let cfg = ScenarioConfig { seed, ..base_for(sigma) };
            detection_key("ext-shadowing", &cfg, pm, &[25], true, &bc.fault)
        },
        outcome_codec(),
        |&(sigma, pm, seed)| {
            detection_trial_with_cfg_faulted(seed, base_for(sigma), pm, 25, true, &bc.fault)
        },
    );

    let mut t = Table::new(
        "Extension: detection under log-normal shadowing (load 0.6, sample size 25)",
        &["sigma_dB", "false alarms", "detect PM=50", "detect PM=90", "rho"],
    );
    for &sigma in &sigmas {
        let agg_for = |pm: u8| {
            let outcomes: Vec<TrialOutcome> = tasks
                .iter()
                .zip(&results)
                .filter(|((s, p, _), _)| *s == sigma && *p == pm)
                .map(|(_, o)| *o)
                .collect();
            aggregate(&outcomes)
        };
        let fa = agg_for(0);
        t.row(vec![
            format!("{sigma}"),
            p3(fa.rejection_rate()),
            p3(agg_for(50).rejection_rate()),
            p3(agg_for(90).rejection_rate()),
            p3(fa.rho),
        ]);
    }
    t.emit_with("ext_shadowing", &bc);
    println!("(fading degrades both ranges per-packet; the detector should degrade gracefully)");
    eprintln!("{}", runner.summary());
}
