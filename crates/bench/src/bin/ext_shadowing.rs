//! Extension: detection under log-normal shadowing (fading).
//!
//! The paper motivates the shadowing channel model "to take into account
//! long-term fading effects present in real channels" but runs its
//! experiments at σ_dB = 0 (free space). This binary turns the fading on:
//! false-alarm and detection rates at σ_dB ∈ {0, 2, 4, 8}, medium load.
//! Fading blurs the 250 m / 550 m disks per-packet, so both the monitor's
//! observations and the region geometry get noisier.
//!
//! ```text
//! cargo run --release -p mg-bench --bin ext_shadowing
//! ```

use mg_bench::table::{p3, Table};
use mg_bench::{aggregate, detection_trial_with_cfg, parallel_seeds, sim_secs, trials, Load};
use mg_net::ScenarioConfig;
use mg_phy::PropagationModel;

fn main() {
    let n = trials();
    let secs = sim_secs();
    let mut t = Table::new(
        "Extension: detection under log-normal shadowing (load 0.6, sample size 25)",
        &["sigma_dB", "false alarms", "detect PM=50", "detect PM=90", "rho"],
    );
    for sigma in [0.0, 2.0, 4.0, 8.0] {
        let base = ScenarioConfig {
            sim_secs: secs,
            rate_pps: Load::Medium.rate_pps(),
            propagation: PropagationModel::shadowing(2.0, sigma),
            ..ScenarioConfig::grid_paper(0)
        };
        let run = |pm: u8, seed_base: u64| {
            aggregate(&parallel_seeds(n, seed_base, |seed| {
                detection_trial_with_cfg(seed, ScenarioConfig { seed, ..base }, pm, 25, true)
            }))
        };
        let fa = run(0, 9000);
        let d50 = run(50, 9100);
        let d90 = run(90, 9200);
        t.row(vec![
            format!("{sigma}"),
            p3(fa.rejection_rate()),
            p3(d50.rejection_rate()),
            p3(d90.rejection_rate()),
            p3(fa.rho),
        ]);
    }
    t.emit("ext_shadowing");
    println!("(fading degrades both ranges per-packet; the detector should degrade gracefully)");
}
