//! Ablation: how the preclusion-zone construction (the part of the paper's
//! Figure 1 geometry that must be reconstructed) affects the detector.
//!
//! For each [`PreclusionRule`] the table reports the false-alarm rate
//! (compliant tagged node) and detection rate at PM = 50, at medium load.
//!
//! ```text
//! cargo run --release -p mg-bench --bin ablation_regions
//! ```

use mg_bench::sweep::{outcome_codec, SCHEMA};
use mg_bench::table::{p3, Table};
use mg_bench::{aggregate, sweep_or_exit, BenchConfig, Load, TrialOutcome};
use mg_dcf::BackoffPolicy;
use mg_detect::{MonitorConfig, NodeCounts, ScenarioBuilder, WorldMonitors};
use mg_geom::PreclusionRule;
use mg_net::{Scenario, ScenarioConfig, SourceCfg};
use mg_runner::CacheKey;
use mg_sim::SimTime;

const SS: usize = 25;

fn trial(seed: u64, pm: u8, rule: PreclusionRule, counts: NodeCounts, secs: u64) -> TrialOutcome {
    let cfg = ScenarioConfig {
        sim_secs: secs,
        rate_pps: Load::Medium.rate_pps(),
        seed,
        ..ScenarioConfig::grid_paper(seed)
    };
    let scenario = Scenario::new(cfg);
    let (s, r) = scenario.tagged_pair();
    let mut mc = MonitorConfig::grid_paper(s, r, 240.0);
    mc.sample_size = SS;
    mc.preclusion = rule;
    mc.counts = counts;
    mc.blatant_check = false;
    let mut b = ScenarioBuilder::new(scenario);
    let attacker = b.attacker(s);
    let watch = b.monitor(mc);
    b.source(SourceCfg::saturated(s, r));
    let mut world = b.build();
    if pm > 0 {
        world.set_policy(attacker.id(), BackoffPolicy::Scaled { pm });
    }
    world.run_until(SimTime::from_secs(secs));
    let d = world.monitors().diagnosis(watch);
    TrialOutcome {
        tests: d.tests_run as u64,
        rejections: d.rejections as u64,
        violations: d.violations as u64,
        samples: d.samples_collected as u64,
        rho: d.measured_rho,
        ..TrialOutcome::default()
    }
}

fn main() {
    let bc = BenchConfig::from_env_or_exit();
    let runner = bc.runner();
    let variants: [(&str, PreclusionRule, NodeCounts); 4] = [
        ("mirror (n=k=5)", PreclusionRule::Mirror, NodeCounts::FixedPaper),
        (
            "centroid (n=k=5)",
            PreclusionRule::Centroid,
            NodeCounts::FixedPaper,
        ),
        (
            "paper-calibrated (n=k=5)",
            PreclusionRule::paper_calibrated(),
            NodeCounts::FixedPaper,
        ),
        (
            "sim-calibrated (default)",
            PreclusionRule::sim_calibrated(),
            NodeCounts::SimCalibrated,
        ),
    ];
    let pms: [(u8, u64); 3] = [(0, 6000), (50, 6100), (90, 6200)];

    let mut tasks = Vec::new();
    for (vi, _) in variants.iter().enumerate() {
        for &(pm, base) in &pms {
            for i in 0..bc.trials {
                tasks.push((vi, pm, base + i));
            }
        }
    }
    let results: Vec<TrialOutcome> = sweep_or_exit(
        &runner,
        &tasks,
        |&(vi, pm, seed)| {
            let (_, rule, counts) = variants[vi];
            let cfg = ScenarioConfig {
                sim_secs: bc.sim_secs,
                rate_pps: Load::Medium.rate_pps(),
                seed,
                ..ScenarioConfig::grid_paper(seed)
            };
            CacheKey::new("ablation-regions", SCHEMA)
                .field("cfg", cfg)
                .field("pm", pm)
                .field("rule", rule)
                .field("counts", counts)
                .field("sample_size", SS)
        },
        outcome_codec(),
        |&(vi, pm, seed)| {
            let (_, rule, counts) = variants[vi];
            trial(seed, pm, rule, counts, bc.sim_secs)
        },
    );

    let mut t = Table::new(
        &format!("Ablation: region construction (sample size {SS}, load 0.6)"),
        &["rule", "false alarms", "detect PM=50", "detect PM=90"],
    );
    for (vi, (name, _, _)) in variants.iter().enumerate() {
        let agg_for = |pm: u8| {
            let outcomes: Vec<TrialOutcome> = tasks
                .iter()
                .zip(&results)
                .filter(|((v, p, _), _)| *v == vi && *p == pm)
                .map(|(_, o)| *o)
                .collect();
            aggregate(&outcomes)
        };
        t.row(vec![
            name.to_string(),
            p3(agg_for(0).rejection_rate()),
            p3(agg_for(50).rejection_rate()),
            p3(agg_for(90).rejection_rate()),
        ]);
    }
    t.emit_with("ablation_regions", &bc);
    println!("(a model mismatched to the physics inflates false alarms; see EXPERIMENTS.md)");
    eprintln!("{}", runner.summary());
}
