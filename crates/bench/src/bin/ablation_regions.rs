//! Ablation: how the preclusion-zone construction (the part of the paper's
//! Figure 1 geometry that must be reconstructed) affects the detector.
//!
//! For each [`PreclusionRule`] the table reports the false-alarm rate
//! (compliant tagged node) and detection rate at PM = 50, at medium load.
//!
//! ```text
//! cargo run --release -p mg-bench --bin ablation_regions
//! ```

use mg_bench::table::{p3, Table};
use mg_bench::{aggregate, parallel_seeds, sim_secs, trials, Load, TrialOutcome};
use mg_dcf::BackoffPolicy;
use mg_detect::{Monitor, MonitorConfig, NodeCounts};
use mg_geom::PreclusionRule;
use mg_net::{Scenario, ScenarioConfig, SourceCfg};
use mg_sim::SimTime;

fn trial(seed: u64, pm: u8, rule: PreclusionRule, counts: NodeCounts, ss: usize) -> TrialOutcome {
    let secs = sim_secs();
    let cfg = ScenarioConfig {
        sim_secs: secs,
        rate_pps: Load::Medium.rate_pps(),
        seed,
        ..ScenarioConfig::grid_paper(seed)
    };
    let scenario = Scenario::new(cfg);
    let (s, r) = scenario.tagged_pair();
    let mut mc = MonitorConfig::grid_paper(s, r, 240.0);
    mc.sample_size = ss;
    mc.preclusion = rule;
    mc.counts = counts;
    mc.blatant_check = false;
    let monitor = Monitor::new(mc);
    let mut world = scenario.build_with_observer(&[s, r], monitor);
    if pm > 0 {
        world.set_policy(s, BackoffPolicy::Scaled { pm });
    }
    world.add_source(SourceCfg::saturated(s, r));
    world.run_until(SimTime::from_secs(secs));
    let d = world.observer().diagnosis();
    TrialOutcome {
        tests: d.tests_run as u64,
        rejections: d.rejections as u64,
        violations: d.violations as u64,
        samples: d.samples_collected as u64,
        rho: world.observer().overall_rho(),
        ..TrialOutcome::default()
    }
}

fn main() {
    let n = trials();
    let ss = 25;
    let variants: [(&str, PreclusionRule, NodeCounts); 4] = [
        ("mirror (n=k=5)", PreclusionRule::Mirror, NodeCounts::FixedPaper),
        (
            "centroid (n=k=5)",
            PreclusionRule::Centroid,
            NodeCounts::FixedPaper,
        ),
        (
            "paper-calibrated (n=k=5)",
            PreclusionRule::paper_calibrated(),
            NodeCounts::FixedPaper,
        ),
        (
            "sim-calibrated (default)",
            PreclusionRule::sim_calibrated(),
            NodeCounts::SimCalibrated,
        ),
    ];
    let mut t = Table::new(
        &format!("Ablation: region construction (sample size {ss}, load 0.6)"),
        &["rule", "false alarms", "detect PM=50", "detect PM=90"],
    );
    for (name, rule, counts) in variants {
        let fa = aggregate(&parallel_seeds(n, 6000, |seed| {
            trial(seed, 0, rule, counts, ss)
        }));
        let d50 = aggregate(&parallel_seeds(n, 6100, |seed| {
            trial(seed, 50, rule, counts, ss)
        }));
        let d90 = aggregate(&parallel_seeds(n, 6200, |seed| {
            trial(seed, 90, rule, counts, ss)
        }));
        t.row(vec![
            name.to_string(),
            p3(fa.rejection_rate()),
            p3(d50.rejection_rate()),
            p3(d90.rejection_rate()),
        ]);
    }
    t.emit("ablation_regions");
    println!("(a model mismatched to the physics inflates false alarms; see EXPERIMENTS.md)");
}
