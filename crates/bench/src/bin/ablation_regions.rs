//! Ablation: how the preclusion-zone construction (the part of the paper's
//! Figure 1 geometry that must be reconstructed) affects the detector.
//!
//! For each [`PreclusionRule`] the table reports the false-alarm rate
//! (compliant tagged node) and detection rate at PM = 50, at medium load.
//!
//! Replay-backed: the region construction is a detector knob, so each
//! `(PM, seed)` world is simulated **once** (journal cached) and replayed
//! into the four region variants — a 4× cut in simulated worlds.
//!
//! ```text
//! cargo run --release -p mg-bench --bin ablation_regions
//! ```

use mg_bench::sweep::{journal_codec, journal_key, outcome_codec, SCHEMA};
use mg_bench::table::{p3, Table};
use mg_bench::{
    aggregate, record_detection_world, sweep_or_exit, BenchConfig, Load, TrialOutcome,
};
use mg_detect::{replay_pool, MonitorConfig, NodeCounts, ObsJournal};
use mg_geom::PreclusionRule;
use mg_net::ScenarioConfig;
use mg_runner::CacheKey;
use std::collections::HashMap;

const SS: usize = 25;

fn world_cfg(seed: u64, secs: u64) -> ScenarioConfig {
    ScenarioConfig {
        sim_secs: secs,
        rate_pps: Load::Medium.rate_pps(),
        seed,
        ..ScenarioConfig::grid_paper(seed)
    }
}

fn replay_trial(journal: &ObsJournal, rule: PreclusionRule, counts: NodeCounts) -> TrialOutcome {
    let meta = journal.meta();
    let (s, r) = (meta.tagged, meta.vantages[0]);
    let mut mc = MonitorConfig::grid_paper(s, r, 240.0);
    mc.sample_size = SS;
    mc.preclusion = rule;
    mc.counts = counts;
    mc.blatant_check = false;
    let d = replay_pool(journal, mc).diagnosis();
    TrialOutcome {
        tests: d.tests_run as u64,
        rejections: d.rejections as u64,
        violations: d.violations as u64,
        samples: d.samples_collected as u64,
        rho: d.measured_rho,
        ..TrialOutcome::default()
    }
}

fn main() {
    let bc = BenchConfig::from_env_or_exit();
    let runner = bc.runner();
    let variants: [(&str, PreclusionRule, NodeCounts); 4] = [
        ("mirror (n=k=5)", PreclusionRule::Mirror, NodeCounts::FixedPaper),
        (
            "centroid (n=k=5)",
            PreclusionRule::Centroid,
            NodeCounts::FixedPaper,
        ),
        (
            "paper-calibrated (n=k=5)",
            PreclusionRule::paper_calibrated(),
            NodeCounts::FixedPaper,
        ),
        (
            "sim-calibrated (default)",
            PreclusionRule::sim_calibrated(),
            NodeCounts::SimCalibrated,
        ),
    ];
    let pms: [(u8, u64); 3] = [(0, 6000), (50, 6100), (90, 6200)];

    // Sweep 1 — the worlds: one recorded journal per (PM, seed) cell.
    let mut worlds = Vec::new();
    for &(pm, base) in &pms {
        for i in 0..bc.trials {
            worlds.push((pm, base + i));
        }
    }
    let journals: Vec<ObsJournal> = sweep_or_exit(
        &runner,
        &worlds,
        |&(pm, seed)| journal_key(&world_cfg(seed, bc.sim_secs), pm),
        journal_codec(),
        |&(pm, seed)| record_detection_world(seed, world_cfg(seed, bc.sim_secs), pm),
    );
    let by_world: HashMap<(u8, u64), &ObsJournal> =
        worlds.iter().copied().zip(journals.iter()).collect();

    // Sweep 2 — the knob: replay every world into each region variant.
    let mut tasks = Vec::new();
    for (vi, _) in variants.iter().enumerate() {
        for &(pm, base) in &pms {
            for i in 0..bc.trials {
                tasks.push((vi, pm, base + i));
            }
        }
    }
    let results: Vec<TrialOutcome> = sweep_or_exit(
        &runner,
        &tasks,
        |&(vi, pm, seed)| {
            let (_, rule, counts) = variants[vi];
            CacheKey::new("ablation-regions", SCHEMA)
                .field("cfg", world_cfg(seed, bc.sim_secs))
                .field("pm", pm)
                .field("rule", rule)
                .field("counts", counts)
                .field("sample_size", SS)
        },
        outcome_codec(),
        |&(vi, pm, seed)| {
            let (_, rule, counts) = variants[vi];
            replay_trial(by_world[&(pm, seed)], rule, counts)
        },
    );

    let mut t = Table::new(
        &format!("Ablation: region construction (sample size {SS}, load 0.6)"),
        &["rule", "false alarms", "detect PM=50", "detect PM=90"],
    );
    for (vi, (name, _, _)) in variants.iter().enumerate() {
        let agg_for = |pm: u8| {
            let outcomes: Vec<TrialOutcome> = tasks
                .iter()
                .zip(&results)
                .filter(|((v, p, _), _)| *v == vi && *p == pm)
                .map(|(_, o)| *o)
                .collect();
            aggregate(&outcomes)
        };
        t.row(vec![
            name.to_string(),
            p3(agg_for(0).rejection_rate()),
            p3(agg_for(50).rejection_rate()),
            p3(agg_for(90).rejection_rate()),
        ]);
    }
    t.emit_with("ablation_regions", &bc);
    println!("(a model mismatched to the physics inflates false alarms; see EXPERIMENTS.md)");
    eprintln!(
        "{} worlds simulated, {} detector configurations replayed",
        worlds.len(),
        tasks.len()
    );
    eprintln!("{}", runner.summary());
}
