//! Regenerates **Figure 6** — probability of misdiagnosis (false alarm)
//! versus sample size, with every node well-behaved:
//!
//! * 6(a) static grid at loads {0.3, 0.6, 0.9};
//! * 6(b) mobile scenario (`--mobile`) at load 0.6.
//!
//! ```text
//! cargo run --release -p mg-bench --bin fig6             # 6(a)
//! cargo run --release -p mg-bench --bin fig6 -- --mobile # 6(b)
//! ```

use mg_bench::table::{p3, Table};
use mg_bench::{
    aggregate, detection_trial, grid_base, mobile_detection_trial, parallel_seeds, sim_secs,
    trials, Load, TrialOutcome,
};
use mg_sim::SimDuration;
use mg_trace::MetricsSnapshot;

const SAMPLE_SIZES: [usize; 5] = [10, 25, 50, 75, 100];

fn main() {
    let mobile = std::env::args().any(|a| a == "--mobile");
    let n = trials();
    let secs = sim_secs();

    if mobile {
        let mut t = Table::new(
            "Figure 6(b): P(misdiagnosis) vs sample size — mobile (RWP), load 0.6",
            &["sample size", "P(misdiagnosis)", "tests", "false viol"],
        );
        let mut figure_metrics = MetricsSnapshot::default();
        for &ss in &SAMPLE_SIZES {
            let outcomes: Vec<TrialOutcome> = parallel_seeds(n, 4000 + ss as u64, |seed| {
                mobile_detection_trial(seed, Load::Medium, 0, ss, secs, SimDuration::ZERO)
            });
            let agg = aggregate(&outcomes);
            figure_metrics.merge(&agg.metrics);
            t.row(vec![
                format!("{ss}"),
                p3(agg.rejection_rate()),
                format!("{}", agg.tests),
                format!("{}", agg.violations),
            ]);
        }
        t.meta("metrics", figure_metrics.to_json());
        t.emit("fig6b");
    } else {
        let mut t = Table::new(
            "Figure 6(a): P(misdiagnosis) vs sample size — static grid, all compliant",
            &[
                "sample size",
                "load 0.3",
                "load 0.6",
                "load 0.9",
                "tests(0.3/0.6/0.9)",
                "false viol",
            ],
        );
        let mut figure_metrics = MetricsSnapshot::default();
        for &ss in &SAMPLE_SIZES {
            let mut rates = Vec::new();
            let mut tests = Vec::new();
            let mut viols = 0;
            for load in Load::all() {
                let outcomes: Vec<TrialOutcome> =
                    parallel_seeds(n, 5000 + ss as u64 * 3, |seed| {
                        detection_trial(seed, load, 0, ss, secs, false, grid_base())
                    });
                let agg = aggregate(&outcomes);
                figure_metrics.merge(&agg.metrics);
                rates.push(p3(agg.rejection_rate()));
                tests.push(format!("{}", agg.tests));
                viols += agg.violations;
            }
            t.row(vec![
                format!("{ss}"),
                rates[0].clone(),
                rates[1].clone(),
                rates[2].clone(),
                tests.join("/"),
                format!("{viols}"),
            ]);
        }
        t.meta("metrics", figure_metrics.to_json());
        t.emit("fig6a");
    }
    println!(
        "(paper: misdiagnosis < 0.01 at n=10, shrinking with sample size; \
         'false viol' counts deterministic violations against compliant nodes — must be 0)"
    );
}
