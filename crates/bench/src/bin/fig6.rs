//! Regenerates **Figure 6** — probability of misdiagnosis (false alarm)
//! versus sample size, with every node well-behaved:
//!
//! * 6(a) static grid at loads {0.3, 0.6, 0.9};
//! * 6(b) mobile scenario (`--mobile`) at load 0.6.
//!
//! Sample sizes fan out over a single world per (load, seed) point: the
//! monitors are read-only, so one simulation carries one monitor per sample
//! size instead of being re-run once per size. Tasks drain through the
//! mg-runner sweep engine and replay from the result cache on re-runs.
//!
//! ```text
//! cargo run --release -p mg-bench --bin fig6             # 6(a)
//! cargo run --release -p mg-bench --bin fig6 -- --mobile # 6(b)
//! ```

use mg_bench::sweep::{detection_key, outcomes_codec};
use mg_bench::table::{p3, Table};
use mg_bench::{
    aggregate, detection_trial_fanout_faulted, grid_base, mobile_detection_trial_fanout_faulted,
    sweep_or_exit, BenchConfig, Load, TrialOutcome,
};
use mg_net::ScenarioConfig;
use mg_sim::SimDuration;
use mg_trace::MetricsSnapshot;

const SAMPLE_SIZES: [usize; 5] = [10, 25, 50, 75, 100];

fn main() {
    let bc = BenchConfig::from_env_or_exit();
    let runner = bc.runner();
    let mobile = std::env::args().any(|a| a == "--mobile");

    if mobile {
        let tasks: Vec<u64> = (0..bc.trials).map(|i| 4000 + i).collect();
        let results: Vec<Vec<TrialOutcome>> = sweep_or_exit(
            &runner,
            &tasks,
            |&seed| {
                let cfg = ScenarioConfig {
                    sim_secs: bc.sim_secs,
                    rate_pps: Load::Medium.rate_pps(),
                    seed,
                    ..ScenarioConfig::mobile_paper(seed, SimDuration::ZERO)
                };
                detection_key("detection-mobile", &cfg, 0, &SAMPLE_SIZES, false, &bc.fault)
            },
            outcomes_codec(),
            |&seed| {
                mobile_detection_trial_fanout_faulted(
                    seed,
                    Load::Medium,
                    0,
                    &SAMPLE_SIZES,
                    bc.sim_secs,
                    SimDuration::ZERO,
                    &bc.fault,
                )
            },
        );
        let mut t = Table::new(
            "Figure 6(b): P(misdiagnosis) vs sample size — mobile (RWP), load 0.6",
            &["sample size", "P(misdiagnosis)", "tests", "false viol"],
        );
        let mut figure_metrics = MetricsSnapshot::default();
        for (si, &ss) in SAMPLE_SIZES.iter().enumerate() {
            let outcomes: Vec<TrialOutcome> = results.iter().map(|v| v[si]).collect();
            let agg = aggregate(&outcomes);
            if si == 0 {
                // One world per seed: count its metrics once, not per size.
                figure_metrics.merge(&agg.metrics);
            }
            t.row(vec![
                format!("{ss}"),
                p3(agg.rejection_rate()),
                format!("{}", agg.tests),
                format!("{}", agg.violations),
            ]);
        }
        t.meta("metrics", figure_metrics.to_json());
        t.emit_with("fig6b", &bc);
    } else {
        // Flat (load × seed) grid; sample sizes ride along on each world.
        let mut tasks = Vec::new();
        for load in Load::all() {
            for i in 0..bc.trials {
                tasks.push((load, 5000 + i));
            }
        }
        let results: Vec<Vec<TrialOutcome>> = sweep_or_exit(
            &runner,
            &tasks,
            |&(load, seed)| {
                let cfg = ScenarioConfig {
                    sim_secs: bc.sim_secs,
                    rate_pps: load.rate_pps(),
                    seed,
                    ..grid_base()
                };
                detection_key("detection", &cfg, 0, &SAMPLE_SIZES, false, &bc.fault)
            },
            outcomes_codec(),
            |&(load, seed)| {
                detection_trial_fanout_faulted(
                    seed,
                    load,
                    0,
                    &SAMPLE_SIZES,
                    bc.sim_secs,
                    false,
                    grid_base(),
                    &bc.fault,
                )
            },
        );
        let mut t = Table::new(
            "Figure 6(a): P(misdiagnosis) vs sample size — static grid, all compliant",
            &[
                "sample size",
                "load 0.3",
                "load 0.6",
                "load 0.9",
                "tests(0.3/0.6/0.9)",
                "false viol",
            ],
        );
        let mut figure_metrics = MetricsSnapshot::default();
        for (si, &ss) in SAMPLE_SIZES.iter().enumerate() {
            let mut rates = Vec::new();
            let mut tests = Vec::new();
            let mut viols = 0;
            for load in Load::all() {
                let outcomes: Vec<TrialOutcome> = tasks
                    .iter()
                    .zip(&results)
                    .filter(|((l, _), _)| *l == load)
                    .map(|(_, v)| v[si])
                    .collect();
                let agg = aggregate(&outcomes);
                if si == 0 {
                    figure_metrics.merge(&agg.metrics);
                }
                rates.push(p3(agg.rejection_rate()));
                tests.push(format!("{}", agg.tests));
                viols += agg.violations;
            }
            t.row(vec![
                format!("{ss}"),
                rates[0].clone(),
                rates[1].clone(),
                rates[2].clone(),
                tests.join("/"),
                format!("{viols}"),
            ]);
        }
        t.meta("metrics", figure_metrics.to_json());
        t.emit_with("fig6a", &bc);
    }
    println!(
        "(paper: misdiagnosis < 0.01 at n=10, shrinking with sample size; \
         'false viol' counts deterministic violations against compliant nodes — must be 0)"
    );
    eprintln!("{}", runner.summary());
}
