//! Serving-layer throughput: N concurrent journal streams through the
//! `mgd` demux engine (bounded MPMC queues → sharded workers → one
//! incremental `DetectorSession` per stream).
//!
//! The workload is the daemon's steady state: many live streams pushing
//! interleaved observation batches. Each synthetic stream is a one-vantage
//! grid world emitting carrier-sense edges and garbled receptions — the
//! high-rate events a real vantage produces between tagged exchanges — so
//! the measured path is demux + queue hand-off + session ingest, not frame
//! cryptography. Events are pushed round-robin across all streams so every
//! batch lands on a different session (worst case for locality).
//!
//! The headline figure is aggregate events/sec across all streams; the PR
//! gate pins **≥ 1M events/sec across ≥ 1k streams** on the reference
//! 1-core container. Results go to `BENCH_serve.json` (override with
//! `MG_BENCH_OUT`).
//!
//! Environment knobs (this binary drives no simulation, so the usual
//! `MG_TRIALS`/`MG_SIM_SECS` pair does not apply):
//!
//! | variable | default | meaning |
//! |----------|---------|---------|
//! | `MG_SERVE_STREAMS` | 1000 | concurrent streams |
//! | `MG_SERVE_EVENTS` | 1000 | events per stream |
//! | `MG_SERVE_WORKERS` | available parallelism | daemon worker threads |
//! | `MG_SERVE_BATCH` | 512 | events per queue hand-off |
//! | `MG_SERVE_QUEUE_CAP` | 1024 | bounded queue capacity per worker |
//! | `MG_SERVE_REQUIRE` | unset | when `1`, exit 1 if the 1M ev/s pin fails |
//!
//! ```text
//! MG_SERVE_REQUIRE=1 cargo run --release -p mg-bench --bin bench_serve
//! ```

use mg_obs::{Obs, ObsMeta};
use mg_serve::{Daemon, ServeConfig};
use mg_sim::SimTime;
use mg_trace::json::Json;
use std::time::Instant;

fn env_usize(name: &str, default: usize) -> usize {
    match std::env::var(name) {
        Err(_) => default,
        Ok(raw) => match raw.trim().parse() {
            Ok(v) if v > 0 => v,
            _ => {
                eprintln!("bench_serve: invalid {name} value {raw:?}: expected a positive integer");
                std::process::exit(2);
            }
        },
    }
}

/// One vantage's synthetic steady-state traffic: alternating busy/idle
/// carrier-sense edges with a garbled reception closing every fourth busy
/// period — the event mix a monitor digests between tagged exchanges.
fn synthetic_events(vantage: usize, count: usize) -> Vec<Obs> {
    let mut events = Vec::with_capacity(count);
    let mut t: u64 = 1_000;
    for i in 0..count {
        // 20 µs idle gaps, 200 µs busy periods: a plausibly loaded channel.
        t += if i % 2 == 0 { 20_000 } else { 200_000 };
        if i % 8 == 7 {
            events.push(Obs::Garbled {
                at: vantage,
                now: SimTime::from_nanos(t),
            });
        } else {
            events.push(Obs::ChannelEdge {
                node: vantage,
                busy: i % 2 == 0,
                at: SimTime::from_nanos(t),
            });
        }
    }
    events
}

fn main() {
    let streams = env_usize("MG_SERVE_STREAMS", 1000);
    let events_per_stream = env_usize("MG_SERVE_EVENTS", 1000);
    // Default to the daemon's own resolved worker count (the host's
    // available parallelism) so the reported figure reflects what `mgd`
    // would actually run with on this machine.
    let workers = env_usize("MG_SERVE_WORKERS", ServeConfig::default().workers);
    let batch = env_usize("MG_SERVE_BATCH", 512);
    let queue_cap = env_usize("MG_SERVE_QUEUE_CAP", 1024);

    let cfg = ServeConfig {
        workers,
        queue_cap,
        batch,
        ..ServeConfig::default()
    };
    let policy = cfg.policy.name();
    println!(
        "bench_serve: {streams} streams x {events_per_stream} events, {workers} worker(s), batch {batch}, queue cap {queue_cap}"
    );

    // One template tape shared by every stream: what varies per stream is
    // the session, not the observation content.
    let tape = synthetic_events(1, events_per_stream);
    let meta = |seed: u64| ObsMeta {
        tagged: 0,
        vantages: vec![1],
        pair_distance: 240.0,
        seed,
        params: vec![("kind".into(), "grid".into())],
    };

    let daemon = Daemon::start(cfg, None);
    let t0 = Instant::now();
    let mut handles: Vec<_> = (0..streams).map(|s| daemon.open(meta(s as u64))).collect();
    // Round-robin in batch-sized strides: every hand-off switches streams,
    // the demultiplexer's worst case.
    let mut offset = 0;
    while offset < events_per_stream {
        let end = (offset + batch).min(events_per_stream);
        for h in handles.iter_mut() {
            for o in &tape[offset..end] {
                h.push(o.clone());
            }
        }
        offset = end;
    }
    let mut flagged = 0u64;
    for h in handles.drain(..) {
        let report = h.close().expect("daemon alive");
        flagged += report.flagged as u64;
    }
    let wall = t0.elapsed();
    let stats = daemon.shutdown();

    let total = (streams * events_per_stream) as u64;
    assert_eq!(stats.events, total, "daemon lost events under Block policy");
    assert_eq!(stats.streams, streams as u64);
    assert_eq!(stats.dropped, 0);
    assert_eq!(flagged, 0, "synthetic background traffic must stay clean");

    let wall_ms = wall.as_secs_f64() * 1e3;
    let eps = total as f64 / wall.as_secs_f64().max(1e-9);
    const TARGET_EPS: f64 = 1_000_000.0;
    let pass = eps >= TARGET_EPS && streams >= 1000;

    let json = Json::obj([
        ("bench", Json::from("serve: concurrent journal streams through the mgd demux")),
        ("streams", Json::from(streams as u64)),
        ("events_per_stream", Json::from(events_per_stream as u64)),
        ("total_events", Json::from(total)),
        ("workers", Json::from(workers as u64)),
        ("batch", Json::from(batch as u64)),
        ("queue_cap", Json::from(queue_cap as u64)),
        ("policy", Json::from(policy)),
        ("wall_ms", Json::Num((wall_ms * 10.0).round() / 10.0)),
        ("events_per_sec", Json::Num(eps.round())),
        ("deltas", Json::from(stats.deltas)),
        ("dropped", Json::from(stats.dropped)),
        ("target_events_per_sec", Json::Num(TARGET_EPS)),
        ("target_streams", Json::from(1000u64)),
        ("pass", Json::Bool(pass)),
    ]);
    let path = std::env::var("MG_BENCH_OUT").unwrap_or_else(|_| "BENCH_serve.json".into());
    std::fs::write(&path, format!("{}\n", json.render())).unwrap_or_else(|e| {
        eprintln!("bench_serve: cannot write {path}: {e}");
        std::process::exit(1);
    });
    println!(
        "{total} events across {streams} streams in {wall_ms:.1} ms = {eps:.0} ev/s (target {TARGET_EPS:.0})"
    );
    println!("wrote {path}");
    if std::env::var("MG_SERVE_REQUIRE").as_deref() == Ok("1") && !pass {
        eprintln!("bench_serve: FAILED the >=1M events/sec across >=1k streams pin");
        std::process::exit(1);
    }
}
