//! Macro-benchmark: world-size scaling of the medium's spatial index.
//!
//! Sweeps a (nodes × attackers × seed) grid of large worlds — each at the
//! paper's node density via [`ScenarioConfig::large_world`] — through the
//! mg-runner engine twice, once per [`MediumIndex`] strategy. Every cell
//! must *fire the exact same number of events* under both strategies (the
//! index is an execution detail; `tests/diff_index.rs` proves full
//! byte-identity), so the only thing allowed to differ is wall-clock. The
//! events/sec comparison is written to `BENCH_world_scale.json` (override
//! the path with `MG_BENCH_OUT`).
//!
//! Cells run *sequentially* through the runner and the result cache is
//! forced off: a perf measurement must never come from a cache hit, and
//! parallel cells would contend for the cores being timed.
//!
//! ```text
//! MG_TRIALS=1 MG_SIM_SECS=2 cargo run --release -p mg-bench --bin bench_world_scale
//! ```
//!
//! Extra knobs: `MG_WORLD_NODES` (comma list, default `112,500,1000,2000`)
//! and `MG_WORLD_ATTACKERS` (comma list, default `1,4`).

use mg_bench::BenchConfig;
use mg_dcf::BackoffPolicy;
use mg_detect::{ScenarioBuilder, WorldMonitors};
use mg_net::{Scenario, ScenarioConfig};
use mg_phy::MediumIndex;
use mg_runner::{Cache, CacheKey, CacheMode, Codec, Runner};
use mg_sim::SimTime;
use mg_trace::json::Json;
use std::time::Instant;

/// What one simulated world reports back.
#[derive(Clone, Copy)]
struct CellResult {
    /// Scheduler events fired — must match across index strategies.
    events: u64,
    /// Wall-clock for build + run, milliseconds.
    ms: f64,
    /// Monitor pools whose diagnosis flagged their attacker.
    flagged: u64,
}

fn cell_codec() -> Codec<CellResult> {
    Codec {
        encode: |r| {
            Json::obj([
                ("events", Json::from(r.events)),
                ("ms", Json::Num(r.ms)),
                ("flagged", Json::from(r.flagged)),
            ])
        },
        decode: |v| {
            Some(CellResult {
                events: v.get("events")?.as_u64()?,
                ms: v.get("ms")?.as_f64()?,
                flagged: v.get("flagged")?.as_u64()?,
            })
        },
    }
}

/// Builds and runs one large world end to end: `attackers` cheaters spread
/// across the node range, one monitor pool per cheater, background CBR
/// load at the paper's density.
fn run_cell(nodes: usize, attackers: usize, seed: u64, secs: u64, index: MediumIndex) -> CellResult {
    let t0 = Instant::now();
    let cfg = ScenarioConfig {
        sim_secs: secs,
        medium_index: index,
        ..ScenarioConfig::large_world(seed, nodes)
    };
    let scenario = Scenario::new(cfg);
    let mut b = ScenarioBuilder::new(scenario);
    let atks = b.attackers(attackers);
    let tagged: Vec<usize> = atks.iter().map(|a| a.id()).collect();
    let watch = b.monitor_mesh(&tagged);
    let mut world = b.build();
    for a in &atks {
        world.set_policy(a.id(), BackoffPolicy::Scaled { pm: 70 });
    }
    world.run_until(SimTime::from_secs(secs));
    let flagged = watch
        .iter()
        .filter(|&&h| world.monitors().diagnosis(h).is_flagged())
        .count() as u64;
    CellResult {
        events: world.events_fired(),
        ms: t0.elapsed().as_secs_f64() * 1e3,
        flagged,
    }
}

/// A comma-separated usize list from the environment, default on unset,
/// exit 2 on malformed (matching every other mg-bench knob).
fn list_var(name: &str, default: &[usize]) -> Vec<usize> {
    match std::env::var(name) {
        Err(_) => default.to_vec(),
        Ok(raw) => raw
            .split(',')
            .map(|s| {
                s.trim().parse().unwrap_or_else(|_| {
                    eprintln!(
                        "mg-bench: invalid {name} value {raw:?}: expected comma-separated positive integers"
                    );
                    std::process::exit(2);
                })
            })
            .collect(),
    }
}

fn main() {
    let bc = BenchConfig::from_env_or_exit();
    let node_sizes = list_var("MG_WORLD_NODES", &[112, 500, 1000, 2000]);
    let attacker_counts = list_var("MG_WORLD_ATTACKERS", &[1, 4]);

    // Never cache a wall-clock measurement (and never trust one): the cache
    // is forced off no matter what MG_CACHE says.
    let runner = Runner::new(Cache::new(bc.cache_dir.clone(), CacheMode::Off));

    let mut points = Vec::new();
    for &nodes in &node_sizes {
        for &attackers in &attacker_counts {
            let mut naive = Vec::new();
            let mut grid = Vec::new();
            for trial in 0..bc.trials {
                let seed = 9000 + trial;
                // One cell per sweep call keeps the measurement serial;
                // Grid immediately after Naive on the same world keeps the
                // machine-state comparison as local as possible.
                for (index, out) in
                    [(MediumIndex::Naive, &mut naive), (MediumIndex::Grid, &mut grid)]
                {
                    let task = (nodes, attackers, seed, index);
                    let key = CacheKey::new("world-scale", 1)
                        .field("nodes", nodes)
                        .field("attackers", attackers)
                        .field("seed", seed)
                        .field("secs", bc.sim_secs)
                        .field("index", index);
                    let cell = runner
                        .sweep(std::slice::from_ref(&task), |_| key.clone(), cell_codec(), |t| {
                            run_cell(t.0, t.1, t.2, bc.sim_secs, t.3)
                        })
                        .remove(0);
                    out.push(cell);
                }
            }
            for (a, b) in naive.iter().zip(&grid) {
                assert_eq!(
                    a.events, b.events,
                    "{nodes} nodes / {attackers} attackers: index modes diverged"
                );
                assert_eq!(
                    a.flagged, b.flagged,
                    "{nodes} nodes / {attackers} attackers: diagnoses diverged"
                );
            }
            let events: u64 = naive.iter().map(|c| c.events).sum();
            let naive_ms: f64 = naive.iter().map(|c| c.ms).sum();
            let grid_ms: f64 = grid.iter().map(|c| c.ms).sum();
            let naive_eps = events as f64 / (naive_ms / 1e3).max(1e-9);
            let grid_eps = events as f64 / (grid_ms / 1e3).max(1e-9);
            let speedup = naive_ms / grid_ms.max(1e-9);
            println!(
                "{nodes:>5} nodes x {attackers} attackers: {events:>9} events | naive {naive_ms:>9.1} ms ({naive_eps:>10.0} ev/s) | grid {grid_ms:>8.1} ms ({grid_eps:>10.0} ev/s) | speedup {speedup:.2}x"
            );
            points.push((nodes, attackers, events, naive_ms, grid_ms, naive_eps, grid_eps, speedup));
        }
    }

    // Headline number: speedup at the largest world swept.
    let max_nodes = *node_sizes.iter().max().expect("non-empty node list");
    let headline = points
        .iter()
        .filter(|p| p.0 == max_nodes)
        .map(|p| p.7)
        .fold(f64::INFINITY, f64::min);

    let round1 = |x: f64| (x * 10.0).round() / 10.0;
    let cells: Vec<Json> = points
        .iter()
        .map(|&(nodes, attackers, events, naive_ms, grid_ms, naive_eps, grid_eps, speedup)| {
            Json::obj([
                ("nodes", Json::from(nodes as u64)),
                ("attackers", Json::from(attackers as u64)),
                ("events", Json::from(events)),
                ("naive_ms", Json::Num(round1(naive_ms))),
                ("grid_ms", Json::Num(round1(grid_ms))),
                ("naive_events_per_sec", Json::Num(naive_eps.round())),
                ("grid_events_per_sec", Json::Num(grid_eps.round())),
                ("speedup", Json::Num((speedup * 100.0).round() / 100.0)),
            ])
        })
        .collect();
    let json = Json::obj([
        ("bench", Json::from("world_scale: naive vs grid medium index")),
        ("trials", Json::from(bc.trials)),
        ("sim_secs", Json::from(bc.sim_secs)),
        ("cells", Json::Arr(cells)),
        ("max_nodes", Json::from(max_nodes as u64)),
        ("speedup_at_max_nodes", Json::Num((headline * 100.0).round() / 100.0)),
    ]);
    let path = std::env::var("MG_BENCH_OUT").unwrap_or_else(|_| "BENCH_world_scale.json".into());
    std::fs::write(&path, format!("{}\n", json.render())).unwrap_or_else(|e| {
        eprintln!("bench_world_scale: cannot write {path}: {e}");
        std::process::exit(1);
    });
    println!("speedup at {max_nodes} nodes: {headline:.2}x");
    println!("wrote {path}");
}
