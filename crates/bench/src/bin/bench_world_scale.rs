//! Macro-benchmark: world-size scaling of the medium's spatial index and
//! the region-sharded world engine.
//!
//! Sweeps a (nodes × attackers × seed) grid of large worlds — each at the
//! paper's node density via [`ScenarioConfig::large_world`] — through the
//! mg-runner engine along two axes:
//!
//! * **medium index**: `Naive` full scan vs `Grid` cells (serial engine);
//! * **shards**: the grid-indexed world under `Serial`, `Regions(2)` and
//!   `Regions(4)` event lanes (override with `MG_WORLD_SHARDS`).
//!
//! Every cell must *fire the exact same number of events and flag the exact
//! same diagnoses* across all strategies (index and sharding are execution
//! details; `tests/diff_index.rs` and `tests/trace_determinism.rs` prove
//! full byte-identity), so the only thing allowed to differ is wall-clock.
//! The events/sec comparison — naive vs grid, and serial vs sharded — is
//! written to `BENCH_world_scale.json` (override the path with
//! `MG_BENCH_OUT`). On a single-core host the sharded engine cannot win
//! wall-clock (dispatch is serialized at the merge point and there is no
//! second core to stage on), so the JSON records the core count and the
//! equality asserts become the bench's real product there.
//!
//! Cells run *sequentially* through the runner and the result cache is
//! forced off: a perf measurement must never come from a cache hit, and
//! parallel cells would contend for the cores being timed.
//!
//! ```text
//! MG_TRIALS=1 MG_SIM_SECS=2 cargo run --release -p mg-bench --bin bench_world_scale
//! ```
//!
//! Extra knobs: `MG_WORLD_NODES` (comma list, default `112,500,1000,2000`),
//! `MG_WORLD_ATTACKERS` (comma list, default `1,4`) and `MG_WORLD_SHARDS`
//! (comma list of region counts, default `1,2,4`).

use mg_bench::BenchConfig;
use mg_dcf::BackoffPolicy;
use mg_detect::{ScenarioBuilder, WorldMonitors};
use mg_net::{Scenario, ScenarioConfig, Shards};
use mg_phy::MediumIndex;
use mg_runner::{Cache, CacheKey, CacheMode, Codec, Runner};
use mg_sim::SimTime;
use mg_trace::json::Json;
use std::time::Instant;

/// What one simulated world reports back.
#[derive(Clone, Copy)]
struct CellResult {
    /// Scheduler events fired — must match across index strategies.
    events: u64,
    /// Wall-clock for build + run, milliseconds.
    ms: f64,
    /// Monitor pools whose diagnosis flagged their attacker.
    flagged: u64,
}

/// One row of the sweep table: a (nodes, attackers) point with the timing
/// of every strategy that ran it.
struct Point {
    nodes: usize,
    attackers: usize,
    events: u64,
    naive_ms: f64,
    grid_ms: f64,
    sharded_ms: f64,
    naive_eps: f64,
    grid_eps: f64,
    sharded_eps: f64,
    speedup: f64,
    shard_speedup: f64,
}

fn cell_codec() -> Codec<CellResult> {
    Codec {
        encode: |r| {
            Json::obj([
                ("events", Json::from(r.events)),
                ("ms", Json::Num(r.ms)),
                ("flagged", Json::from(r.flagged)),
            ])
        },
        decode: |v| {
            Some(CellResult {
                events: v.get("events")?.as_u64()?,
                ms: v.get("ms")?.as_f64()?,
                flagged: v.get("flagged")?.as_u64()?,
            })
        },
    }
}

/// Builds and runs one large world end to end: `attackers` cheaters spread
/// across the node range, one monitor pool per cheater, background CBR
/// load at the paper's density.
fn run_cell(
    nodes: usize,
    attackers: usize,
    seed: u64,
    secs: u64,
    index: MediumIndex,
    shards: Shards,
) -> CellResult {
    let t0 = Instant::now();
    let cfg = ScenarioConfig {
        sim_secs: secs,
        medium_index: index,
        shards,
        ..ScenarioConfig::large_world(seed, nodes)
    };
    let scenario = Scenario::new(cfg);
    let mut b = ScenarioBuilder::new(scenario);
    let atks = b.attackers(attackers);
    let tagged: Vec<usize> = atks.iter().map(|a| a.id()).collect();
    let watch = b.monitor_mesh(&tagged);
    let mut world = b.build();
    for a in &atks {
        world.set_policy(a.id(), BackoffPolicy::Scaled { pm: 70 });
    }
    world.run_until(SimTime::from_secs(secs));
    let flagged = watch
        .iter()
        .filter(|&&h| world.monitors().diagnosis(h).is_flagged())
        .count() as u64;
    CellResult {
        events: world.events_fired(),
        ms: t0.elapsed().as_secs_f64() * 1e3,
        flagged,
    }
}

/// A comma-separated usize list from the environment, default on unset,
/// exit 2 on malformed (matching every other mg-bench knob).
fn list_var(name: &str, default: &[usize]) -> Vec<usize> {
    match std::env::var(name) {
        Err(_) => default.to_vec(),
        Ok(raw) => raw
            .split(',')
            .map(|s| {
                s.trim().parse().unwrap_or_else(|_| {
                    eprintln!(
                        "mg-bench: invalid {name} value {raw:?}: expected comma-separated positive integers"
                    );
                    std::process::exit(2);
                })
            })
            .collect(),
    }
}

fn main() {
    let bc = BenchConfig::from_env_or_exit();
    let node_sizes = list_var("MG_WORLD_NODES", &[112, 500, 1000, 2000]);
    let attacker_counts = list_var("MG_WORLD_ATTACKERS", &[1, 4]);
    let shard_counts = list_var("MG_WORLD_SHARDS", &[1, 2, 4]);
    let shard_axis: Vec<Shards> = shard_counts
        .iter()
        .map(|&n| {
            Shards::parse(&n.to_string()).unwrap_or_else(|e| {
                eprintln!("mg-bench: invalid MG_WORLD_SHARDS entry: {e}");
                std::process::exit(2);
            })
        })
        .collect();
    let cores = std::thread::available_parallelism().map_or(1, usize::from);

    // Never cache a wall-clock measurement (and never trust one): the cache
    // is forced off no matter what MG_CACHE says.
    let runner = Runner::new(Cache::new(bc.cache_dir.clone(), CacheMode::Off));
    let run_one = |nodes: usize, attackers: usize, seed: u64, index: MediumIndex, shards: Shards| {
        let task = (nodes, attackers, seed, index, shards);
        let key = CacheKey::new("world-scale", 2)
            .field("nodes", nodes)
            .field("attackers", attackers)
            .field("seed", seed)
            .field("secs", bc.sim_secs)
            .field("index", index)
            .field("shards", shards);
        runner
            .sweep(std::slice::from_ref(&task), |_| key.clone(), cell_codec(), |t| {
                run_cell(t.0, t.1, t.2, bc.sim_secs, t.3, t.4)
            })
            .remove(0)
    };

    let mut points = Vec::new();
    for &nodes in &node_sizes {
        for &attackers in &attacker_counts {
            let mut naive = Vec::new();
            // One measurement series per shard setting, all on the Grid
            // index; lanes[0] (Serial) doubles as the grid-vs-naive side.
            let mut lanes: Vec<Vec<CellResult>> = vec![Vec::new(); shard_axis.len()];
            for trial in 0..bc.trials {
                let seed = 9000 + trial;
                // One cell per sweep call keeps the measurement serial;
                // every strategy back to back on the same world keeps the
                // machine-state comparison as local as possible.
                naive.push(run_one(nodes, attackers, seed, MediumIndex::Naive, Shards::Serial));
                for (lane, &shards) in shard_axis.iter().enumerate() {
                    lanes[lane].push(run_one(nodes, attackers, seed, MediumIndex::Grid, shards));
                }
            }
            let grid = &lanes[0];
            for (a, b) in naive.iter().zip(grid) {
                assert_eq!(
                    a.events, b.events,
                    "{nodes} nodes / {attackers} attackers: index modes diverged"
                );
                assert_eq!(
                    a.flagged, b.flagged,
                    "{nodes} nodes / {attackers} attackers: diagnoses diverged"
                );
            }
            for (lane, cells) in lanes.iter().enumerate().skip(1) {
                for (a, b) in grid.iter().zip(cells) {
                    assert_eq!(
                        a.events,
                        b.events,
                        "{nodes} nodes / {attackers} attackers: {} shards diverged from serial",
                        shard_axis[lane]
                    );
                    assert_eq!(
                        a.flagged,
                        b.flagged,
                        "{nodes} nodes / {attackers} attackers: {} shards flagged differently",
                        shard_axis[lane]
                    );
                }
            }
            let events: u64 = naive.iter().map(|c| c.events).sum();
            let ms_of = |cells: &[CellResult]| cells.iter().map(|c| c.ms).sum::<f64>();
            let eps_of = |ms: f64| events as f64 / (ms / 1e3).max(1e-9);
            let naive_ms = ms_of(&naive);
            let grid_ms = ms_of(grid);
            let sharded_ms = ms_of(lanes.last().expect("non-empty shard axis"));
            let (naive_eps, grid_eps, sharded_eps) =
                (eps_of(naive_ms), eps_of(grid_ms), eps_of(sharded_ms));
            let speedup = naive_ms / grid_ms.max(1e-9);
            let shard_speedup = grid_ms / sharded_ms.max(1e-9);
            println!(
                "{nodes:>5} nodes x {attackers} attackers: {events:>9} events | naive {naive_ms:>9.1} ms ({naive_eps:>10.0} ev/s) | grid {grid_ms:>8.1} ms ({grid_eps:>10.0} ev/s) | speedup {speedup:.2}x | {} shards {sharded_ms:>8.1} ms ({sharded_eps:>10.0} ev/s, {shard_speedup:.2}x)",
                shard_axis.last().expect("non-empty shard axis")
            );
            points.push(Point {
                nodes,
                attackers,
                events,
                naive_ms,
                grid_ms,
                sharded_ms,
                naive_eps,
                grid_eps,
                sharded_eps,
                speedup,
                shard_speedup,
            });
        }
    }

    // Headline numbers: speedups at the largest world swept.
    let max_nodes = *node_sizes.iter().max().expect("non-empty node list");
    let at_max = |pick: fn(&Point) -> f64| {
        points
            .iter()
            .filter(|p| p.nodes == max_nodes)
            .map(pick)
            .fold(f64::INFINITY, f64::min)
    };
    let headline = at_max(|p| p.speedup);
    let shard_headline = at_max(|p| p.shard_speedup);

    let round1 = |x: f64| (x * 10.0).round() / 10.0;
    let round2 = |x: f64| (x * 100.0).round() / 100.0;
    let cells: Vec<Json> = points
        .iter()
        .map(|p| {
            Json::obj([
                ("nodes", Json::from(p.nodes as u64)),
                ("attackers", Json::from(p.attackers as u64)),
                ("events", Json::from(p.events)),
                ("naive_ms", Json::Num(round1(p.naive_ms))),
                ("grid_ms", Json::Num(round1(p.grid_ms))),
                ("sharded_ms", Json::Num(round1(p.sharded_ms))),
                ("naive_events_per_sec", Json::Num(p.naive_eps.round())),
                ("grid_events_per_sec", Json::Num(p.grid_eps.round())),
                ("sharded_events_per_sec", Json::Num(p.sharded_eps.round())),
                ("speedup", Json::Num(round2(p.speedup))),
                ("shard_speedup", Json::Num(round2(p.shard_speedup))),
            ])
        })
        .collect();
    let json = Json::obj([
        ("bench", Json::from("world_scale: naive vs grid medium index, serial vs sharded engine")),
        ("trials", Json::from(bc.trials)),
        ("sim_secs", Json::from(bc.sim_secs)),
        ("shards", Json::from(shard_axis.last().expect("non-empty shard axis").region_count() as u64)),
        ("cores", Json::from(cores as u64)),
        ("cells", Json::Arr(cells)),
        ("max_nodes", Json::from(max_nodes as u64)),
        ("speedup_at_max_nodes", Json::Num(round2(headline))),
        ("shard_speedup_at_max_nodes", Json::Num(round2(shard_headline))),
    ]);
    let path = std::env::var("MG_BENCH_OUT").unwrap_or_else(|_| "BENCH_world_scale.json".into());
    std::fs::write(&path, format!("{}\n", json.render())).unwrap_or_else(|e| {
        eprintln!("bench_world_scale: cannot write {path}: {e}");
        std::process::exit(1);
    });
    println!("speedup at {max_nodes} nodes: index {headline:.2}x, shards {shard_headline:.2}x ({cores} core(s))");
    if cores == 1 {
        println!("note: single-core host — sharded timings measure overhead, not speedup; the equality asserts are the product");
    }
    println!("wrote {path}");
}
