//! Extension: detector robustness under fault injection (chaos testing).
//!
//! Sweeps a set of [`FaultPlan`] profiles against the static-grid detection
//! scenario at PM ∈ {0, 75} and reports how the framework degrades: detect
//! rate, deterministic violations, *uncertain* observations (anomalies held
//! below the confirmation threshold) and the number of frames the injector
//! ate.
//!
//! The load-bearing assertion: **pure observation-loss faults must never
//! manufacture deterministic accusations against a compliant node.** A
//! dropped RTS only lengthens the gap between consecutive commitments —
//! sequence offsets still advance feasibly, attempt counters still match —
//! so for every drop-only profile this binary *asserts* zero violations at
//! PM = 0 and exits nonzero otherwise. Corruption profiles get no such
//! guarantee (flipped commitment bits are indistinguishable from cheating
//! at the wire level); for those the table shows the confirmation gate
//! converting would-be false accusations into uncertainty.
//!
//! ```text
//! cargo run --release -p mg-bench --bin ext_faults
//! ```

use mg_bench::sweep::{detection_key, outcomes_codec};
use mg_bench::table::{p3, Table};
use mg_bench::{
    aggregate, detection_trial_fanout_faulted, grid_base, sweep_or_exit, BenchConfig, FaultPlan,
    Load, TrialOutcome,
};
use mg_net::ScenarioConfig;
use mg_trace::Counter;

const SS: usize = 25;
const PMS: [u8; 2] = [0, 75];

struct Profile {
    name: &'static str,
    spec: &'static str,
    /// Drop-only profiles can never fabricate a deterministic violation;
    /// assert that at PM = 0.
    assert_clean: bool,
}

const PROFILES: [Profile; 7] = [
    Profile { name: "clean", spec: "off", assert_clean: true },
    Profile { name: "rts-drop", spec: "seed=42,drop=0.15", assert_clean: true },
    Profile { name: "flat-loss", spec: "seed=42,loss=0.10", assert_clean: true },
    Profile { name: "deafness", spec: "seed=42,deaf=250:25", assert_clean: true },
    Profile { name: "light", spec: "light,seed=42", assert_clean: true },
    Profile { name: "rts-corrupt", spec: "seed=42,corrupt=0.05", assert_clean: false },
    Profile { name: "heavy", spec: "heavy,seed=42", assert_clean: false },
];

fn main() {
    let bc = BenchConfig::from_env_or_exit();
    let runner = bc.runner();
    let plans: Vec<FaultPlan> = PROFILES
        .iter()
        .map(|p| FaultPlan::parse(p.spec).expect("built-in profile specs parse"))
        .collect();

    let mut tasks = Vec::new();
    for (pi, _) in PROFILES.iter().enumerate() {
        for &pm in &PMS {
            for i in 0..bc.trials {
                tasks.push((pi, pm, 9900 + pm as u64 * 13 + i));
            }
        }
    }
    let results: Vec<Vec<TrialOutcome>> = sweep_or_exit(
        &runner,
        &tasks,
        |&(pi, pm, seed)| {
            let cfg = ScenarioConfig {
                sim_secs: bc.sim_secs,
                rate_pps: Load::Medium.rate_pps(),
                seed,
                ..grid_base()
            };
            detection_key("ext-faults", &cfg, pm, &[SS], false, &plans[pi])
        },
        outcomes_codec(),
        |&(pi, pm, seed)| {
            detection_trial_fanout_faulted(
                seed,
                Load::Medium,
                pm,
                &[SS],
                bc.sim_secs,
                false,
                grid_base(),
                &plans[pi],
            )
        },
    );

    let mut t = Table::new(
        &format!("Extension: detection under fault injection (load 0.6, sample size {SS})"),
        &["profile", "PM%", "detect", "violations", "uncertain", "samples", "frames eaten"],
    );
    let mut false_accusations = 0u64;
    for (pi, p) in PROFILES.iter().enumerate() {
        for &pm in &PMS {
            let outcomes: Vec<TrialOutcome> = tasks
                .iter()
                .zip(&results)
                .filter(|((i, m, _), _)| *i == pi && *m == pm)
                .map(|(_, v)| v[0])
                .collect();
            let agg = aggregate(&outcomes);
            if p.assert_clean && pm == 0 && agg.violations > 0 {
                eprintln!(
                    "ext_faults: FALSE ACCUSATION — drop-only profile {:?} produced {} \
                     deterministic violation(s) against a compliant node",
                    p.name, agg.violations
                );
                false_accusations += agg.violations;
            }
            t.row(vec![
                p.name.to_string(),
                format!("{pm}"),
                p3(agg.rejection_rate()),
                format!("{}", agg.violations),
                format!("{}", agg.uncertain),
                format!("{}", agg.samples),
                format!("{}", agg.metrics.total(Counter::FaultDrops)),
            ]);
        }
    }
    t.emit_with("ext_faults", &bc);
    println!(
        "(drop-only profiles must show 0 violations at PM=0 — enforced; corruption profiles \
         route anomalies into the 'uncertain' column via the confirmation gate)"
    );
    eprintln!("{}", runner.summary());
    if false_accusations > 0 {
        std::process::exit(1);
    }
}
