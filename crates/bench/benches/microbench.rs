//! Micro-benchmarks (in-tree `mg-testkit` runner, `harness = false`) for the
//! performance-critical primitives: the event loop, the full protocol stack,
//! MD5, the rank-sum test, and the analytic model evaluation.
//!
//! ```text
//! cargo bench -p mg-bench
//! MG_BENCH_MS=1000 cargo bench -p mg-bench   # longer, steadier runs
//! ```

use mg_detect::AnalyticModel;
use mg_geom::PreclusionRule;
use mg_net::{Scenario, ScenarioConfig, SourceCfg};
use mg_sim::{Scheduler, SimDuration, SimTime};
use mg_stats::wilcoxon::{rank_sum_test, Alternative};
use mg_testkit::bench::{bench, bench_with_setup, black_box};
use mg_trace::{EventKind, TraceConfig, Tracer};

fn bench_scheduler() {
    bench_with_setup(
        "scheduler_push_pop_10k",
        Scheduler::<u32>::new,
        |mut s| {
            for i in 0..10_000u32 {
                s.schedule_in(SimDuration::from_micros(u64::from(i % 997)), i);
            }
            while s.pop().is_some() {}
            s
        },
    );
}

fn grid56_world() -> mg_net::World<()> {
    let cfg = ScenarioConfig {
        sim_secs: 1,
        rate_pps: 4.0,
        ..ScenarioConfig::grid_paper(1)
    };
    let scenario = Scenario::new(cfg);
    let (s, r) = scenario.tagged_pair();
    // The low-level `realize` keeps the observer a literal `()` so the
    // benchmark measures the bare stack, not monitor dispatch.
    let mut w = scenario.realize(&[s, r], ());
    w.add_source(SourceCfg::saturated(s, r));
    w
}

fn bench_full_stack() -> mg_testkit::bench::BenchReport {
    bench_with_setup("grid56_one_virtual_second", grid56_world, |mut w| {
        w.run_until(SimTime::from_secs(1));
        w
    })
}

/// Measures the cost of the instrumentation hooks and gates the
/// tracing-disabled path: a disabled `Tracer::emit` is on every hot edge of
/// the event loop (scheduler pop, channel edge, MAC tx/rx, net enqueue), so
/// a handful of them must stay far below the cost of processing one event.
fn bench_trace_overhead(stack: &mg_testkit::bench::BenchReport) {
    let disabled = Tracer::disabled();
    let off = bench("tracer_emit_disabled", || {
        black_box(&disabled).emit(black_box(1_000), Some(3), EventKind::Collision);
    });
    let enabled = Tracer::new(TraceConfig::verbose());
    bench("tracer_emit_enabled", || {
        black_box(&enabled).emit(black_box(1_000), Some(3), EventKind::Collision);
    });

    // Gate: with tracing disabled, the ~4 emit sites an event can touch must
    // cost < 5% of handling one full-stack event, i.e. tracing off ≈ free.
    let events = {
        let mut w = grid56_world();
        w.run_until(SimTime::from_secs(1));
        w.events_fired()
    };
    let per_event_ns = stack.mean_ns / events as f64;
    let per_emit_ns = off.mean_ns;
    println!(
        "trace overhead gate: 4 disabled emits = {:.2} ns vs 5% of one event = {:.2} ns \
         ({events} events/virtual-second)",
        4.0 * per_emit_ns,
        0.05 * per_event_ns
    );
    assert!(
        4.0 * per_emit_ns < 0.05 * per_event_ns,
        "disabled tracing too expensive: 4 x {per_emit_ns:.2} ns/emit \
         vs {per_event_ns:.2} ns/event"
    );
}

fn bench_md5() {
    let data = vec![0xABu8; 1500];
    bench("md5_1500B", || {
        black_box(mg_crypto::digest(black_box(&data)));
    });
}

fn bench_rank_sum() {
    let x: Vec<f64> = (0..100).map(|i| (i * 7 % 97) as f64).collect();
    let y: Vec<f64> = (0..100).map(|i| (i * 13 % 89) as f64 + 0.5).collect();
    bench("rank_sum_100v100", || {
        black_box(rank_sum_test(black_box(&x), black_box(&y), Alternative::Less));
    });
    let xs: Vec<f64> = (0..15).map(|i| (i * 7 % 23) as f64).collect();
    let ys: Vec<f64> = (0..15).map(|i| (i * 5 % 19) as f64 + 0.25).collect();
    bench("rank_sum_exact_15v15", || {
        black_box(rank_sum_test(black_box(&xs), black_box(&ys), Alternative::Less));
    });
}

fn bench_analytic() {
    let m = AnalyticModel::grid_paper(240.0, 550.0, PreclusionRule::sim_calibrated());
    bench("analytic_estimate", || {
        black_box(m.estimate_sender_slots(black_box(0.6), 120.0, 80.0));
    });
}

fn main() {
    bench_scheduler();
    let stack = bench_full_stack();
    bench_trace_overhead(&stack);
    bench_md5();
    bench_rank_sum();
    bench_analytic();
}
