//! Micro-benchmarks (in-tree `mg-testkit` runner, `harness = false`) for the
//! performance-critical primitives: the event loop, the full protocol stack,
//! MD5, the rank-sum test, and the analytic model evaluation.
//!
//! ```text
//! cargo bench -p mg-bench
//! MG_BENCH_MS=1000 cargo bench -p mg-bench   # longer, steadier runs
//! ```

use mg_detect::AnalyticModel;
use mg_geom::PreclusionRule;
use mg_net::{Scenario, ScenarioConfig, SourceCfg};
use mg_sim::{Scheduler, SimDuration, SimTime};
use mg_stats::wilcoxon::{rank_sum_test, Alternative};
use mg_testkit::bench::{bench, bench_with_setup, black_box};

fn bench_scheduler() {
    bench_with_setup(
        "scheduler_push_pop_10k",
        Scheduler::<u32>::new,
        |mut s| {
            for i in 0..10_000u32 {
                s.schedule_in(SimDuration::from_micros(u64::from(i % 997)), i);
            }
            while s.pop().is_some() {}
            s
        },
    );
}

fn bench_full_stack() {
    bench_with_setup(
        "grid56_one_virtual_second",
        || {
            let cfg = ScenarioConfig {
                sim_secs: 1,
                rate_pps: 4.0,
                ..ScenarioConfig::grid_paper(1)
            };
            let scenario = Scenario::new(cfg);
            let (s, r) = scenario.tagged_pair();
            let mut w = scenario.build(&[s, r], ());
            w.add_source(SourceCfg::saturated(s, r));
            w
        },
        |mut w| {
            w.run_until(SimTime::from_secs(1));
            w
        },
    );
}

fn bench_md5() {
    let data = vec![0xABu8; 1500];
    bench("md5_1500B", || {
        black_box(mg_crypto::digest(black_box(&data)));
    });
}

fn bench_rank_sum() {
    let x: Vec<f64> = (0..100).map(|i| (i * 7 % 97) as f64).collect();
    let y: Vec<f64> = (0..100).map(|i| (i * 13 % 89) as f64 + 0.5).collect();
    bench("rank_sum_100v100", || {
        black_box(rank_sum_test(black_box(&x), black_box(&y), Alternative::Less));
    });
    let xs: Vec<f64> = (0..15).map(|i| (i * 7 % 23) as f64).collect();
    let ys: Vec<f64> = (0..15).map(|i| (i * 5 % 19) as f64 + 0.25).collect();
    bench("rank_sum_exact_15v15", || {
        black_box(rank_sum_test(black_box(&xs), black_box(&ys), Alternative::Less));
    });
}

fn bench_analytic() {
    let m = AnalyticModel::grid_paper(240.0, 550.0, PreclusionRule::sim_calibrated());
    bench("analytic_estimate", || {
        black_box(m.estimate_sender_slots(black_box(0.6), 120.0, 80.0));
    });
}

fn main() {
    bench_scheduler();
    bench_full_stack();
    bench_md5();
    bench_rank_sum();
    bench_analytic();
}
