//! Criterion micro-benchmarks for the performance-critical primitives:
//! the event loop, the full protocol stack, MD5, the rank-sum test, and the
//! analytic model evaluation.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use mg_detect::AnalyticModel;
use mg_geom::PreclusionRule;
use mg_net::{Scenario, ScenarioConfig, SourceCfg};
use mg_sim::{Scheduler, SimDuration, SimTime};
use mg_stats::wilcoxon::{rank_sum_test, Alternative};

fn bench_scheduler(c: &mut Criterion) {
    c.bench_function("scheduler_push_pop_10k", |b| {
        b.iter_batched(
            Scheduler::<u32>::new,
            |mut s| {
                for i in 0..10_000u32 {
                    s.schedule_in(SimDuration::from_micros(u64::from(i % 997)), i);
                }
                while s.pop().is_some() {}
                s
            },
            BatchSize::SmallInput,
        );
    });
}

fn bench_full_stack(c: &mut Criterion) {
    c.bench_function("grid56_one_virtual_second", |b| {
        b.iter_batched(
            || {
                let cfg = ScenarioConfig {
                    sim_secs: 1,
                    rate_pps: 4.0,
                    ..ScenarioConfig::grid_paper(1)
                };
                let scenario = Scenario::new(cfg);
                let (s, r) = scenario.tagged_pair();
                let mut w = scenario.build(&[s, r], ());
                w.add_source(SourceCfg::saturated(s, r));
                w
            },
            |mut w| {
                w.run_until(SimTime::from_secs(1));
                w
            },
            BatchSize::SmallInput,
        );
    });
}

fn bench_md5(c: &mut Criterion) {
    let data = vec![0xABu8; 1500];
    c.bench_function("md5_1500B", |b| {
        b.iter(|| mg_crypto::digest(std::hint::black_box(&data)));
    });
}

fn bench_rank_sum(c: &mut Criterion) {
    let x: Vec<f64> = (0..100).map(|i| (i * 7 % 97) as f64).collect();
    let y: Vec<f64> = (0..100).map(|i| (i * 13 % 89) as f64 + 0.5).collect();
    c.bench_function("rank_sum_100v100", |b| {
        b.iter(|| rank_sum_test(std::hint::black_box(&x), std::hint::black_box(&y), Alternative::Less));
    });
    let xs: Vec<f64> = (0..15).map(|i| (i * 7 % 23) as f64).collect();
    let ys: Vec<f64> = (0..15).map(|i| (i * 5 % 19) as f64 + 0.25).collect();
    c.bench_function("rank_sum_exact_15v15", |b| {
        b.iter(|| rank_sum_test(std::hint::black_box(&xs), std::hint::black_box(&ys), Alternative::Less));
    });
}

fn bench_analytic(c: &mut Criterion) {
    let m = AnalyticModel::grid_paper(240.0, 550.0, PreclusionRule::sim_calibrated());
    c.bench_function("analytic_estimate", |b| {
        b.iter(|| m.estimate_sender_slots(std::hint::black_box(0.6), 120.0, 80.0));
    });
}

criterion_group!(
    benches,
    bench_scheduler,
    bench_full_stack,
    bench_md5,
    bench_rank_sum,
    bench_analytic
);
criterion_main!(benches);
