//! End-to-end resumability: a fig5-style sweep that is interrupted part-way
//! and then resumed against the same cache directory must produce
//! byte-identical results to an uninterrupted run — without redoing the
//! work that already completed.

use mg_bench::sweep::{detection_key, outcomes_codec};
use mg_bench::{detection_trial_fanout, grid_base, FaultPlan, Load, TrialOutcome};
use mg_net::ScenarioConfig;
use mg_runner::{Cache, CacheKey, CacheMode, Runner};
use mg_trace::json::Json;

const SECS: u64 = 3;
const SIZES: [usize; 2] = [5, 10];

/// A miniature fig5 grid: (PM, seed) tasks, each fanned over two sample
/// sizes on one world.
fn tasks() -> Vec<(u8, u64)> {
    let mut t = Vec::new();
    for &pm in &[0u8, 60] {
        for i in 0..2u64 {
            t.push((pm, 3000 + u64::from(pm) * 17 + i));
        }
    }
    t
}

fn key(&(pm, seed): &(u8, u64)) -> CacheKey {
    let cfg = ScenarioConfig {
        sim_secs: SECS,
        rate_pps: Load::Medium.rate_pps(),
        seed,
        ..grid_base()
    };
    detection_key("detection", &cfg, pm, &SIZES, false, &FaultPlan::default())
}

fn run(&(pm, seed): &(u8, u64)) -> Vec<TrialOutcome> {
    detection_trial_fanout(seed, Load::Medium, pm, &SIZES, SECS, false, grid_base())
}

/// The exact bytes a binary would persist for these results.
fn render(results: &[Vec<TrialOutcome>]) -> String {
    let codec = outcomes_codec();
    Json::Arr(results.iter().map(|r| (codec.encode)(r)).collect()).render()
}

#[test]
fn interrupted_sweep_resumes_to_identical_results() {
    let base = std::env::temp_dir().join(format!("mg-sweep-resume-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let tasks = tasks();

    // The reference: one uninterrupted cold run.
    let cold = Runner::new(Cache::new(base.join("fresh"), CacheMode::ReadWrite));
    let reference = cold.sweep(&tasks, key, outcomes_codec(), run);
    assert_eq!(cold.misses(), tasks.len() as u64);

    // "Interrupt" a sweep: only the first half of the grid completes.
    let half = tasks.len() / 2;
    let interrupted = Runner::new(Cache::new(base.join("resumed"), CacheMode::ReadWrite));
    interrupted.sweep(&tasks[..half], key, outcomes_codec(), run);
    assert_eq!(interrupted.misses(), half as u64);

    // Resume: a brand-new runner over the same directory finishes the job,
    // replaying the completed half instead of recomputing it.
    let resume = Runner::new(Cache::new(base.join("resumed"), CacheMode::ReadWrite));
    let resumed_results = resume.sweep(&tasks, key, outcomes_codec(), run);
    assert_eq!(resume.hits(), half as u64, "completed tasks must replay");
    assert_eq!(resume.misses(), (tasks.len() - half) as u64);

    // The resumed sweep's output is byte-identical to the uninterrupted one.
    assert_eq!(render(&resumed_results), render(&reference));

    let _ = std::fs::remove_dir_all(&base);
}
