//! Determinism regression: a fig3-style experiment run twice with the same
//! seed must produce byte-identical summary output — tables, CSV, and JSON.
//!
//! This is the contract that makes every figure in the repo reproducible
//! from its seed alone, and it exercises the full stack (scenario layout,
//! PHY, MAC, traffic, trackers, thread fan-out, rendering).

use mg_bench::table::{p3, Table};
use mg_bench::{aggregate_points, conditional_probability_run, detection_trial, grid_base, Load};
use mg_runner::run_grid;

/// One miniature fig3-style sweep: a couple of rates, a few seeds each,
/// rendered exactly the way the fig3 binary renders its tables.
fn fig3_style_summary(base_seed: u64) -> String {
    let mut table = Table::new(
        "determinism probe: P(S busy | R idle) vs intensity",
        &["rho(meas)", "p_busy_idle", "p_idle_busy"],
    );
    for &rate in &[2.0, 8.0] {
        let seeds: Vec<u64> = (0..3).map(|i| base_seed + i).collect();
        let points = run_grid(&seeds, |_, &seed| {
            conditional_probability_run(seed, rate, 2, grid_base())
        });
        let (rho, p_bi, p_ib, _dist) = aggregate_points(&points);
        table.row(vec![p3(rho), p3(p_bi), p3(p_ib)]);
    }
    format!(
        "{}\n{}\n{}",
        table.render(),
        table.render_csv(),
        table.render_json()
    )
}

#[test]
fn fig3_style_runs_are_byte_identical_for_equal_seeds() {
    let a = fig3_style_summary(1000);
    let b = fig3_style_summary(1000);
    assert_eq!(a, b, "same seed must reproduce byte-identical output");
}

#[test]
fn fig3_style_runs_differ_across_seeds() {
    // Sanity check that the probe actually depends on the seed (otherwise
    // the identity test above would be vacuous).
    let a = fig3_style_summary(1000);
    let b = fig3_style_summary(2000);
    assert_ne!(a, b, "different seeds should perturb the measurements");
}

#[test]
fn detection_trials_replay_exactly() {
    let run = || {
        let o = detection_trial(7, Load::Medium, 50, 10, 2, false, grid_base());
        (o.tests, o.rejections, o.violations, o.samples, o.rho.to_bits())
    };
    assert_eq!(run(), run());
}
