//! 802.11 timing constants and frame airtimes.
//!
//! Values follow the DSSS PHY the paper's ns-2.26 setup uses: 20 µs slots,
//! 10 µs SIFS, DIFS = SIFS + 2·slots = 50 µs, 192 µs long-preamble PLCP,
//! control frames at 1 Mb/s, data at 2 Mb/s, CWmin 31 / CWmax 1023.

use crate::frame::{Frame, FrameKind};
use mg_sim::SimDuration;

/// Bytes of MAC header + FCS on a DATA frame.
pub const DATA_MAC_OVERHEAD: u32 = 28;
/// Bytes of LLC/IP/UDP headers above the MAC on a DATA frame.
pub const DATA_NET_OVERHEAD: u32 = 28;
/// Bytes of an unmodified RTS (802.11: 20).
pub const RTS_BASE_BYTES: u32 = 20;
/// Extra RTS bytes added by the paper's Fig. 2: 2 (SeqOff# 13 bits +
/// Attempt# 3 bits) + 16 (MD5 digest).
pub const RTS_EXTRA_BYTES: u32 = 18;
/// Bytes of a CTS or ACK frame.
pub const CTS_ACK_BYTES: u32 = 14;

/// The timing configuration of the MAC.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct MacTiming {
    /// Slot time (Table 1 / 802.11 DSSS: 20 µs).
    pub slot: SimDuration,
    /// Short inter-frame space (10 µs).
    pub sifs: SimDuration,
    /// PLCP preamble + header time (192 µs long preamble).
    pub plcp: SimDuration,
    /// Control/basic rate, bits per second (1 Mb/s).
    pub control_rate_bps: u64,
    /// Data rate, bits per second (2 Mb/s).
    pub data_rate_bps: u64,
    /// Minimum contention window (31).
    pub cw_min: u16,
    /// Maximum contention window (1023).
    pub cw_max: u16,
    /// Short retry limit — RTS attempts per packet (7).
    pub short_retry_limit: u8,
    /// Long retry limit — DATA attempts per packet (4).
    pub long_retry_limit: u8,
    /// RTS threshold in bytes: unicast MPDUs strictly longer than this use
    /// the RTS/CTS handshake; shorter ones use basic access (DATA → ACK).
    ///
    /// The paper's verification protocol piggybacks on the RTS, so its
    /// modified MAC sets the threshold to 0 (RTS for everything). A large
    /// threshold models a legacy/evasive node — see
    /// `mg_detect::Violation::UnverifiedData`.
    pub rts_threshold: u32,
}

impl MacTiming {
    /// The paper's / ns-2's DSSS defaults.
    pub fn paper_default() -> Self {
        MacTiming {
            slot: SimDuration::from_micros(20),
            sifs: SimDuration::from_micros(10),
            plcp: SimDuration::from_micros(192),
            control_rate_bps: 1_000_000,
            data_rate_bps: 2_000_000,
            cw_min: 31,
            cw_max: 1023,
            short_retry_limit: 7,
            long_retry_limit: 4,
            rts_threshold: 0,
        }
    }

    /// DIFS = SIFS + 2 · slot (50 µs with the defaults).
    pub fn difs(&self) -> SimDuration {
        self.sifs + self.slot * 2
    }

    /// EIFS = SIFS + DIFS + ACK airtime at the basic rate — the penalty
    /// deference after perceiving an undecodable (collided) frame.
    pub fn eifs(&self) -> SimDuration {
        self.sifs + self.difs() + self.ack_airtime()
    }

    /// Airtime of `bytes` at `rate_bps` plus PLCP overhead.
    fn airtime(&self, bytes: u32, rate_bps: u64) -> SimDuration {
        let bits = u64::from(bytes) * 8;
        // ns resolution: bits * 1e9 / rate. Rates are ≥ 1 kb/s so this is exact
        // for the standard rates (1 Mb/s → 1000 ns/bit, 2 Mb/s → 500 ns/bit).
        self.plcp + SimDuration::from_nanos(bits * 1_000_000_000 / rate_bps)
    }

    /// Airtime of the paper's extended RTS.
    pub fn rts_airtime(&self) -> SimDuration {
        self.airtime(RTS_BASE_BYTES + RTS_EXTRA_BYTES, self.control_rate_bps)
    }

    /// Airtime of a CTS.
    pub fn cts_airtime(&self) -> SimDuration {
        self.airtime(CTS_ACK_BYTES, self.control_rate_bps)
    }

    /// Airtime of an ACK.
    pub fn ack_airtime(&self) -> SimDuration {
        self.airtime(CTS_ACK_BYTES, self.control_rate_bps)
    }

    /// Airtime of a DATA frame carrying `payload_len` application bytes.
    pub fn data_airtime(&self, payload_len: u16) -> SimDuration {
        self.airtime(
            u32::from(payload_len) + DATA_MAC_OVERHEAD + DATA_NET_OVERHEAD,
            self.data_rate_bps,
        )
    }

    /// Airtime of an arbitrary frame.
    pub fn frame_airtime(&self, frame: &Frame) -> SimDuration {
        match &frame.kind {
            FrameKind::Rts(_) => self.rts_airtime(),
            FrameKind::Cts => self.cts_airtime(),
            FrameKind::Ack => self.ack_airtime(),
            FrameKind::Data { sdu } => self.data_airtime(sdu.payload_len),
        }
    }

    /// NAV a sender puts in its RTS: the rest of the four-way exchange
    /// (3 SIFS + CTS + DATA + ACK).
    pub fn rts_duration(&self, payload_len: u16) -> SimDuration {
        self.sifs * 3 + self.cts_airtime() + self.data_airtime(payload_len) + self.ack_airtime()
    }

    /// NAV in a CTS (RTS duration minus the CTS itself and one SIFS).
    pub fn cts_duration(&self, payload_len: u16) -> SimDuration {
        self.sifs * 2 + self.data_airtime(payload_len) + self.ack_airtime()
    }

    /// NAV in a DATA frame (the closing SIFS + ACK).
    pub fn data_duration(&self) -> SimDuration {
        self.sifs + self.ack_airtime()
    }

    /// How long a sender waits for a CTS after its RTS ends before declaring
    /// the attempt failed.
    pub fn cts_timeout(&self) -> SimDuration {
        self.sifs + self.cts_airtime() + self.slot * 2
    }

    /// How long a sender waits for an ACK after its DATA ends.
    pub fn ack_timeout(&self) -> SimDuration {
        self.sifs + self.ack_airtime() + self.slot * 2
    }

    /// How long a receiver that sent a CTS waits for the DATA frame to end.
    pub fn data_timeout(&self, payload_len: u16) -> SimDuration {
        self.sifs + self.data_airtime(payload_len) + self.slot * 2
    }
}

impl Default for MacTiming {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_values() {
        let t = MacTiming::paper_default();
        assert_eq!(t.difs(), SimDuration::from_micros(50));
        // RTS: 192 µs PLCP + 38 bytes · 8 bit / 1 Mb/s = 192 + 304 = 496 µs.
        assert_eq!(t.rts_airtime(), SimDuration::from_micros(496));
        // CTS/ACK: 192 + 112 = 304 µs.
        assert_eq!(t.cts_airtime(), SimDuration::from_micros(304));
        // DATA(512): 192 + (512+56)·8/2 µs = 192 + 2272 = 2464 µs.
        assert_eq!(t.data_airtime(512), SimDuration::from_micros(2464));
        // EIFS = 10 + 50 + 304 = 364 µs.
        assert_eq!(t.eifs(), SimDuration::from_micros(364));
    }

    #[test]
    fn nav_durations_nest() {
        let t = MacTiming::paper_default();
        let p = 512u16;
        // NAV chain shrinks by one frame + SIFS at each step.
        assert_eq!(
            t.rts_duration(p),
            t.cts_airtime() + t.sifs + t.cts_duration(p)
        );
        assert_eq!(
            t.cts_duration(p),
            t.data_airtime(p) + t.sifs + t.sifs + t.ack_airtime()
        );
        assert_eq!(t.data_duration(), t.sifs + t.ack_airtime());
    }

    #[test]
    fn rts_threshold_defaults_to_always_rts() {
        let t = MacTiming::paper_default();
        assert_eq!(t.rts_threshold, 0);
    }

    #[test]
    fn timeouts_cover_the_awaited_frame() {
        let t = MacTiming::paper_default();
        assert!(t.cts_timeout() > t.sifs + t.cts_airtime());
        assert!(t.ack_timeout() > t.sifs + t.ack_airtime());
        assert!(t.data_timeout(512) > t.sifs + t.data_airtime(512));
    }
}
