//! The DCF state machine.
//!
//! One [`DcfMac`] per node. The MAC is a pure event consumer / action
//! producer: the surrounding world owns the scheduler and the medium and
//! must uphold two contracts:
//!
//! 1. every [`MacAction`] is executed in the order returned;
//! 2. when a transmission ends, per-node **reception outcomes are delivered
//!    before the idle channel edges** from the same instant (the medium
//!    reports them in that order) — reception may change what the idle edge
//!    means to the node (e.g. an RTS addressed to it).

use crate::frame::{sdu_digest, Dest, Frame, FrameKind, MacSdu, RtsFields};
use crate::policy::BackoffPolicy;
use crate::timing::MacTiming;
use crate::NodeId;
use mg_crypto::{BackoffDraw, VerifiableSequence};
use mg_sim::rng::Xoshiro256;
use mg_sim::{SimDuration, SimTime};
use mg_trace::{Counter, EventKind, FrameLabel, Metrics, Tracer};
use std::collections::VecDeque;

fn frame_label(kind: &FrameKind) -> FrameLabel {
    match kind {
        FrameKind::Rts(_) => FrameLabel::Rts,
        FrameKind::Cts => FrameLabel::Cts,
        FrameKind::Data { .. } => FrameLabel::Data,
        FrameKind::Ack => FrameLabel::Ack,
    }
}

/// Default interface-queue capacity (Table 1: 50 packets).
pub const DEFAULT_QUEUE_CAP: usize = 50;

/// The MAC's timers. At most one of each kind is armed at a time; re-arming
/// replaces the previous deadline.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Timer {
    /// Fires when the back-off countdown (IFS + remaining slots) completes.
    Countdown,
    /// Fires one SIFS after a frame that demands a response.
    Sifs,
    /// Sender gave up waiting for a CTS.
    CtsTimeout,
    /// Receiver gave up waiting for the DATA after its CTS.
    DataTimeout,
    /// Sender gave up waiting for an ACK.
    AckTimeout,
    /// The NAV reservation expired.
    NavExpire,
    /// Checks whether an RTS-established NAV should be reset because the
    /// promised exchange never materialized (IEEE 802.11 §9.2.5.4).
    NavReset,
}

/// Instructions the MAC hands back to the world.
#[derive(Clone, PartialEq, Debug)]
pub enum MacAction {
    /// Arm (or re-arm) `timer` to fire at `at`.
    Arm {
        /// Which timer.
        timer: Timer,
        /// Absolute deadline.
        at: SimTime,
    },
    /// Cancel `timer` if pending.
    Disarm {
        /// Which timer.
        timer: Timer,
    },
    /// Put `frame` on the air now (the world computes its airtime, calls the
    /// medium, and schedules `on_tx_end`).
    StartTx {
        /// The frame to transmit.
        frame: Frame,
    },
    /// Pass a received packet up to the network layer.
    Deliver {
        /// The transmitting neighbor.
        from: NodeId,
        /// The packet.
        sdu: MacSdu,
    },
    /// The MAC is done with this packet (delivered or dropped).
    PacketDone {
        /// The packet.
        sdu: MacSdu,
        /// `true` if the exchange completed (ACK received / broadcast sent).
        delivered: bool,
    },
}

/// Protocol state (exposed for tests and monitors).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MacState {
    /// No packet pending.
    Idle,
    /// Backing off toward a transmission (counting or frozen).
    Contending,
    /// Own RTS on the air.
    TxRts,
    /// Own CTS on the air.
    TxCts,
    /// Own DATA on the air.
    TxData,
    /// Own ACK on the air.
    TxAck,
    /// RTS sent, awaiting CTS.
    WaitCts,
    /// CTS sent, awaiting DATA.
    WaitData,
    /// DATA sent, awaiting ACK.
    WaitAck,
    /// SIFS gap before sending a CTS.
    SifsCts,
    /// SIFS gap before sending DATA.
    SifsData,
    /// SIFS gap before sending an ACK.
    SifsAck,
}

/// Counters for throughput / fairness experiments.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct MacStats {
    /// Packets accepted into the queue.
    pub enqueued: u64,
    /// Packets dropped because the queue was full.
    pub queue_drops: u64,
    /// RTS frames transmitted.
    pub rts_sent: u64,
    /// DATA frames transmitted (unicast + broadcast).
    pub data_sent: u64,
    /// Packets completed successfully (ACKed, or broadcast sent).
    pub delivered: u64,
    /// Packets abandoned after exhausting retries.
    pub dropped_retry: u64,
    /// Retransmission attempts (RTS or DATA stage).
    pub retries: u64,
    /// DATA frames received and passed up.
    pub rx_delivered: u64,
    /// Garbled receptions perceived (collisions in our airspace).
    pub garbled_heard: u64,
}

/// A read-only view of the MAC's internals, for tests and oracles.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MacSnapshot {
    /// Protocol state.
    pub state: MacState,
    /// Remaining back-off slots of the head-of-line packet, if any.
    pub counter: Option<u16>,
    /// Logical PRS offset of the *current* draw, if a packet is pending.
    pub seq_off: Option<u64>,
    /// True attempt number of the current packet.
    pub attempt: Option<u8>,
    /// Queue occupancy (including the head-of-line packet).
    pub queue_len: usize,
    /// Physical carrier-sense state.
    pub phys_busy: bool,
    /// NAV expiry instant ([`SimTime::ZERO`] if never set).
    pub nav_until: SimTime,
}

struct TxContext {
    sdu: MacSdu,
    /// 1-based attempt number driving the contention window.
    true_attempt: u8,
    seq_off: u64,
    dictated: BackoffDraw,
    /// Remaining slots this node will actually count (post-policy).
    counter: u16,
}

/// The per-node DCF MAC. See the crate docs for the interaction contract.
pub struct DcfMac {
    node: NodeId,
    timing: MacTiming,
    policy: BackoffPolicy,
    prs: VerifiableSequence,
    rng: Xoshiro256,

    state: MacState,
    queue: VecDeque<MacSdu>,
    queue_cap: usize,
    tx_ctx: Option<TxContext>,
    /// Next unused logical PRS offset.
    seq_counter: u64,

    phys_busy: bool,
    nav_until: SimTime,
    use_eifs: bool,
    /// Last instant the channel turned busy (for the NAV-reset rule).
    last_busy_edge: SimTime,
    /// Reference instant for a pending NAV-reset check (the overheard RTS's
    /// end); activity after it cancels the reset.
    nav_reset_ref: SimTime,
    /// Instant the current decrement run began (post-IFS); `Some` while the
    /// countdown timer is armed.
    run_start: Option<SimTime>,

    /// Receiver-side peer (valid in SifsCts/WaitData/SifsAck).
    rx_peer: NodeId,
    /// Remaining reservation promised in our CTS, used for the DATA timeout.
    rx_reserved: SimDuration,

    stats: MacStats,
    tracer: Tracer,
    metrics: Metrics,
}

impl DcfMac {
    /// Creates a MAC for `node` with the given policy.
    ///
    /// The verifiable PRS is seeded by the node id, standing in for the MAC
    /// address (unique and unforgeable per the paper's PKI assumption).
    /// `rng` drives only non-verifiable randomness (misbehaving private
    /// draws).
    pub fn new(node: NodeId, timing: MacTiming, policy: BackoffPolicy, rng: Xoshiro256) -> Self {
        DcfMac {
            node,
            timing,
            policy,
            prs: VerifiableSequence::new(node as u64),
            rng,
            state: MacState::Idle,
            queue: VecDeque::new(),
            queue_cap: DEFAULT_QUEUE_CAP,
            tx_ctx: None,
            seq_counter: 0,
            phys_busy: false,
            nav_until: SimTime::ZERO,
            use_eifs: false,
            last_busy_edge: SimTime::ZERO,
            nav_reset_ref: SimTime::MAX,
            run_start: None,
            rx_peer: 0,
            rx_reserved: SimDuration::ZERO,
            stats: MacStats::default(),
            tracer: Tracer::disabled(),
            metrics: Metrics::disabled(),
        }
    }

    /// Journals this MAC's frame and back-off events through `tracer`.
    /// Disabled by default.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Records this MAC's per-node counters and back-off draws into
    /// `metrics`. Disabled by default.
    pub fn set_metrics(&mut self, metrics: Metrics) {
        self.metrics = metrics;
    }

    /// This node's id.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The node's public back-off sequence (what monitors replay).
    pub fn prs(&self) -> &VerifiableSequence {
        &self.prs
    }

    /// The back-off policy in force.
    pub fn policy(&self) -> BackoffPolicy {
        self.policy
    }

    /// Replaces the back-off policy. Takes effect from the next draw; swap
    /// policies before traffic starts for clean experiments.
    pub fn set_policy(&mut self, policy: BackoffPolicy) {
        self.policy = policy;
    }

    /// Sets the RTS threshold (see [`MacTiming::rts_threshold`]). A large
    /// value makes this node bypass the RTS/CTS handshake — and with it, the
    /// verifiable-back-off announcements.
    pub fn set_rts_threshold(&mut self, bytes: u32) {
        self.timing.rts_threshold = bytes;
    }

    /// Counters.
    pub fn stats(&self) -> &MacStats {
        &self.stats
    }

    /// A read-only snapshot of the protocol state.
    pub fn snapshot(&self) -> MacSnapshot {
        MacSnapshot {
            state: self.state,
            counter: self.tx_ctx.as_ref().map(|c| c.counter),
            seq_off: self.tx_ctx.as_ref().map(|c| c.seq_off),
            attempt: self.tx_ctx.as_ref().map(|c| c.true_attempt),
            queue_len: self.queue.len() + usize::from(self.tx_ctx.is_some()),
            phys_busy: self.phys_busy,
            nav_until: self.nav_until,
        }
    }

    /// Changes the queue capacity (Table 1 default: 50).
    ///
    /// # Panics
    ///
    /// Panics if `cap` is zero.
    pub fn set_queue_cap(&mut self, cap: usize) {
        assert!(cap > 0, "queue capacity must be positive");
        self.queue_cap = cap;
    }

    // ------------------------------------------------------------------
    // Upper-layer interface
    // ------------------------------------------------------------------

    /// Accepts a packet from the network layer. Returns the actions to
    /// execute; the packet is silently dropped (counted) if the queue is
    /// full.
    pub fn enqueue(&mut self, sdu: MacSdu, now: SimTime) -> Vec<MacAction> {
        let mut actions = Vec::new();
        if self.queue.len() >= self.queue_cap {
            self.stats.queue_drops += 1;
            self.metrics.bump(self.node, Counter::Dropped);
            return actions;
        }
        self.stats.enqueued += 1;
        self.metrics.bump(self.node, Counter::Enqueued);
        self.queue.push_back(sdu);
        if self.state == MacState::Idle && self.tx_ctx.is_none() {
            self.next_packet(now, &mut actions);
        }
        actions
    }

    // ------------------------------------------------------------------
    // World-facing event handlers
    // ------------------------------------------------------------------

    /// The physical carrier-sense state of this node changed.
    pub fn on_channel_edge(&mut self, busy: bool, now: SimTime) -> Vec<MacAction> {
        let mut actions = Vec::new();
        if busy {
            self.phys_busy = true;
            self.last_busy_edge = now;
            self.freeze(now, &mut actions);
        } else {
            self.phys_busy = false;
            self.try_resume(now, &mut actions);
        }
        actions
    }

    /// One of our timers fired.
    pub fn on_timer(&mut self, timer: Timer, now: SimTime) -> Vec<MacAction> {
        let mut actions = Vec::new();
        match timer {
            Timer::Countdown => self.on_countdown_done(now, &mut actions),
            Timer::Sifs => self.on_sifs(now, &mut actions),
            Timer::CtsTimeout => self.on_cts_timeout(now, &mut actions),
            Timer::DataTimeout => self.on_data_timeout(now, &mut actions),
            Timer::AckTimeout => self.on_ack_timeout(now, &mut actions),
            Timer::NavExpire => self.try_resume(now, &mut actions),
            Timer::NavReset => self.on_nav_reset(now, &mut actions),
        }
        actions
    }

    /// Our own transmission finished.
    pub fn on_tx_end(&mut self, now: SimTime) -> Vec<MacAction> {
        let mut actions = Vec::new();
        match self.state {
            MacState::TxRts => {
                self.state = MacState::WaitCts;
                actions.push(MacAction::Arm {
                    timer: Timer::CtsTimeout,
                    at: now + self.timing.cts_timeout(),
                });
            }
            MacState::TxCts => {
                self.state = MacState::WaitData;
                actions.push(MacAction::Arm {
                    timer: Timer::DataTimeout,
                    at: now + self.rx_reserved + self.timing.slot * 2,
                });
            }
            MacState::TxData => {
                let ctx = self.tx_ctx.as_ref().expect("TxData without context");
                if ctx.sdu.dst == Dest::Broadcast {
                    let sdu = ctx.sdu;
                    self.finish_packet(sdu, true, now, &mut actions);
                } else {
                    self.state = MacState::WaitAck;
                    actions.push(MacAction::Arm {
                        timer: Timer::AckTimeout,
                        at: now + self.timing.ack_timeout(),
                    });
                }
            }
            MacState::TxAck => {
                self.resume_own(now, &mut actions);
            }
            other => {
                debug_assert!(false, "on_tx_end in unexpected state {other:?}");
            }
        }
        actions
    }

    /// A frame was decoded at this node (it ended at `now`).
    pub fn on_frame_decoded(&mut self, frame: &Frame, now: SimTime) -> Vec<MacAction> {
        let mut actions = Vec::new();
        self.tracer.emit(
            now.as_nanos(),
            Some(self.node),
            EventKind::RxDecoded { src: frame.src, frame: frame_label(&frame.kind) },
        );
        self.metrics.bump(self.node, Counter::RxDecoded);
        self.use_eifs = false; // correct reception clears the EIFS penalty
        if !frame.dst.is_for(self.node) {
            // Third-party frame: honor its NAV. For an RTS, also schedule the
            // standard NAV-reset check: if the promised CTS/DATA never makes
            // the channel busy again, the reservation is abandoned and we
            // release the NAV instead of blocking for the whole exchange.
            if !frame.duration.is_zero() {
                self.set_nav(now + frame.duration, now, &mut actions);
                if frame.is_rts() {
                    self.nav_reset_ref = now;
                    actions.push(MacAction::Arm {
                        timer: Timer::NavReset,
                        at: now
                            + self.timing.sifs * 2
                            + self.timing.cts_airtime()
                            + self.timing.slot * 2,
                    });
                }
            }
            return actions;
        }
        match &frame.kind {
            FrameKind::Rts(_) => {
                // Respond only if our NAV is clear and we are not mid-exchange.
                let free = matches!(self.state, MacState::Idle | MacState::Contending);
                if free && self.nav_until <= now {
                    self.leave_contending(now, &mut actions);
                    self.rx_peer = frame.src;
                    self.rx_reserved = frame
                        .duration
                        .saturating_sub(self.timing.sifs + self.timing.cts_airtime());
                    self.state = MacState::SifsCts;
                    actions.push(MacAction::Arm {
                        timer: Timer::Sifs,
                        at: now + self.timing.sifs,
                    });
                }
            }
            FrameKind::Cts => {
                if self.state == MacState::WaitCts {
                    let expecting = self
                        .tx_ctx
                        .as_ref()
                        .map(|c| c.sdu.dst == Dest::Unicast(frame.src))
                        .unwrap_or(false);
                    if expecting {
                        actions.push(MacAction::Disarm {
                            timer: Timer::CtsTimeout,
                        });
                        self.state = MacState::SifsData;
                        actions.push(MacAction::Arm {
                            timer: Timer::Sifs,
                            at: now + self.timing.sifs,
                        });
                    }
                }
            }
            FrameKind::Data { sdu } => {
                if frame.dst == Dest::Broadcast {
                    self.stats.rx_delivered += 1;
                    actions.push(MacAction::Deliver {
                        from: frame.src,
                        sdu: *sdu,
                    });
                } else if self.state == MacState::WaitData && frame.src == self.rx_peer {
                    actions.push(MacAction::Disarm {
                        timer: Timer::DataTimeout,
                    });
                    self.stats.rx_delivered += 1;
                    actions.push(MacAction::Deliver {
                        from: frame.src,
                        sdu: *sdu,
                    });
                    self.state = MacState::SifsAck;
                    actions.push(MacAction::Arm {
                        timer: Timer::Sifs,
                        at: now + self.timing.sifs,
                    });
                } else if matches!(self.state, MacState::Idle | MacState::Contending)
                    && self.nav_until <= now
                {
                    // Basic-access DATA (no preceding RTS/CTS): deliver and
                    // acknowledge directly.
                    self.leave_contending(now, &mut actions);
                    self.rx_peer = frame.src;
                    self.stats.rx_delivered += 1;
                    actions.push(MacAction::Deliver {
                        from: frame.src,
                        sdu: *sdu,
                    });
                    self.state = MacState::SifsAck;
                    actions.push(MacAction::Arm {
                        timer: Timer::Sifs,
                        at: now + self.timing.sifs,
                    });
                }
                // DATA in any other state (e.g. a duplicated retry heard
                // mid-exchange) is ignored; the sender will retry.
            }
            FrameKind::Ack => {
                if self.state == MacState::WaitAck {
                    actions.push(MacAction::Disarm {
                        timer: Timer::AckTimeout,
                    });
                    let sdu = self.tx_ctx.as_ref().expect("WaitAck without context").sdu;
                    self.finish_packet(sdu, true, now, &mut actions);
                }
            }
        }
        actions
    }

    /// Energy that looked like a frame arrived but could not be decoded
    /// (collision in our airspace) — next deference uses EIFS.
    pub fn on_frame_garbled(&mut self, now: SimTime) -> Vec<MacAction> {
        self.stats.garbled_heard += 1;
        self.tracer.emit(now.as_nanos(), Some(self.node), EventKind::Collision);
        self.metrics.bump(self.node, Counter::RxGarbled);
        self.use_eifs = true;
        Vec::new()
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    fn effective_idle(&self, now: SimTime) -> bool {
        !self.phys_busy && self.nav_until <= now
    }

    /// Arms the countdown if we are contending and the medium is idle.
    fn try_resume(&mut self, now: SimTime, actions: &mut Vec<MacAction>) {
        if self.state != MacState::Contending || self.run_start.is_some() {
            return;
        }
        if !self.effective_idle(now) {
            return;
        }
        let ctx = self.tx_ctx.as_ref().expect("contending without a packet");
        let ifs = if self.use_eifs {
            self.timing.eifs()
        } else {
            self.timing.difs()
        };
        self.use_eifs = false;
        let start = now + ifs;
        self.run_start = Some(start);
        self.tracer.emit(
            now.as_nanos(),
            Some(self.node),
            EventKind::BackoffResume { slots: ctx.counter },
        );
        actions.push(MacAction::Arm {
            timer: Timer::Countdown,
            at: start + self.timing.slot * u64::from(ctx.counter),
        });
    }

    /// Stops the countdown, banking the slots that elapsed.
    fn freeze(&mut self, now: SimTime, actions: &mut Vec<MacAction>) {
        if let Some(run_start) = self.run_start.take() {
            let elapsed = now.saturating_since(run_start);
            let decrements = elapsed.div_periods(self.timing.slot);
            if let Some(ctx) = self.tx_ctx.as_mut() {
                ctx.counter = ctx.counter.saturating_sub(decrements.min(u64::from(u16::MAX)) as u16);
            }
            let remaining = self.tx_ctx.as_ref().map_or(0, |c| c.counter);
            self.tracer.emit(
                now.as_nanos(),
                Some(self.node),
                EventKind::BackoffFreeze { remaining_slots: remaining },
            );
            self.metrics.bump(self.node, Counter::BackoffFreezes);
            actions.push(MacAction::Disarm {
                timer: Timer::Countdown,
            });
        }
    }

    /// Leaves the Contending state cleanly (freeze + disarm).
    fn leave_contending(&mut self, now: SimTime, actions: &mut Vec<MacAction>) {
        if self.state == MacState::Contending {
            self.freeze(now, actions);
        }
    }

    fn set_nav(&mut self, until: SimTime, now: SimTime, actions: &mut Vec<MacAction>) {
        if until > self.nav_until {
            self.nav_until = until;
            actions.push(MacAction::Arm {
                timer: Timer::NavExpire,
                at: until,
            });
            self.freeze(now, actions);
        }
    }

    fn on_countdown_done(&mut self, now: SimTime, actions: &mut Vec<MacAction>) {
        if self.state != MacState::Contending || self.run_start.is_none() {
            // Stale timer (we left Contending without the world seeing the
            // disarm yet); ignore.
            return;
        }
        self.run_start = None;
        if !self.effective_idle(now) {
            // Defensive: a same-instant busy edge should have frozen us.
            self.try_resume(now, actions);
            return;
        }
        let ctx = self.tx_ctx.as_mut().expect("contending without a packet");
        ctx.counter = 0;
        let mpdu_bytes = u32::from(ctx.sdu.payload_len)
            + crate::timing::DATA_MAC_OVERHEAD
            + crate::timing::DATA_NET_OVERHEAD;
        let basic_access =
            ctx.sdu.dst != Dest::Broadcast && mpdu_bytes <= self.timing.rts_threshold;
        let frame = if ctx.sdu.dst == Dest::Broadcast {
            self.stats.data_sent += 1;
            self.state = MacState::TxData;
            Frame {
                src: self.node,
                dst: Dest::Broadcast,
                duration: SimDuration::ZERO,
                kind: FrameKind::Data { sdu: ctx.sdu },
            }
        } else if basic_access {
            // Legacy basic access: DATA straight away, no RTS — and hence no
            // verifiable fields for monitors (see mg-detect's UnverifiedData
            // check).
            self.stats.data_sent += 1;
            self.state = MacState::TxData;
            Frame {
                src: self.node,
                dst: ctx.sdu.dst,
                duration: self.timing.data_duration(),
                kind: FrameKind::Data { sdu: ctx.sdu },
            }
        } else {
            self.stats.rts_sent += 1;
            self.state = MacState::TxRts;
            Frame {
                src: self.node,
                dst: ctx.sdu.dst,
                duration: self.timing.rts_duration(ctx.sdu.payload_len),
                kind: FrameKind::Rts(RtsFields {
                    seq_off_wire: VerifiableSequence::wire_offset(ctx.seq_off),
                    attempt: self.policy.announced_attempt(ctx.true_attempt),
                    md: sdu_digest(self.node, ctx.sdu.id),
                }),
            }
        };
        self.emit_tx_start(&frame, now);
        actions.push(MacAction::StartTx { frame });
    }

    fn on_sifs(&mut self, now: SimTime, actions: &mut Vec<MacAction>) {
        let frame = match self.state {
            MacState::SifsCts => {
                self.state = MacState::TxCts;
                Frame {
                    src: self.node,
                    dst: Dest::Unicast(self.rx_peer),
                    duration: self.rx_reserved,
                    kind: FrameKind::Cts,
                }
            }
            MacState::SifsData => {
                let ctx = self.tx_ctx.as_ref().expect("SifsData without context");
                self.stats.data_sent += 1;
                self.state = MacState::TxData;
                Frame {
                    src: self.node,
                    dst: ctx.sdu.dst,
                    duration: self.timing.data_duration(),
                    kind: FrameKind::Data { sdu: ctx.sdu },
                }
            }
            MacState::SifsAck => {
                self.state = MacState::TxAck;
                Frame {
                    src: self.node,
                    dst: Dest::Unicast(self.rx_peer),
                    duration: SimDuration::ZERO,
                    kind: FrameKind::Ack,
                }
            }
            other => {
                debug_assert!(false, "SIFS timer in state {other:?}");
                return;
            }
        };
        self.emit_tx_start(&frame, now);
        actions.push(MacAction::StartTx { frame });
    }

    fn emit_tx_start(&self, frame: &Frame, now: SimTime) {
        let dst = match frame.dst {
            Dest::Unicast(n) => Some(n),
            Dest::Broadcast => None,
        };
        self.tracer.emit(
            now.as_nanos(),
            Some(self.node),
            EventKind::TxStart { frame: frame_label(&frame.kind), dst },
        );
        self.metrics.bump(self.node, Counter::TxFrames);
    }

    /// IEEE 802.11 NAV-reset: an RTS-established NAV is torn down when no
    /// channel activity followed the RTS (the handshake it announced died).
    fn on_nav_reset(&mut self, now: SimTime, actions: &mut Vec<MacAction>) {
        let activity_since = self.phys_busy || self.last_busy_edge > self.nav_reset_ref;
        self.nav_reset_ref = SimTime::MAX;
        if !activity_since && self.nav_until > now {
            self.nav_until = now;
            actions.push(MacAction::Disarm {
                timer: Timer::NavExpire,
            });
            self.try_resume(now, actions);
        }
    }

    fn on_cts_timeout(&mut self, now: SimTime, actions: &mut Vec<MacAction>) {
        if self.state != MacState::WaitCts {
            return;
        }
        self.retry(now, actions);
    }

    fn on_ack_timeout(&mut self, now: SimTime, actions: &mut Vec<MacAction>) {
        if self.state != MacState::WaitAck {
            return;
        }
        self.retry(now, actions);
    }

    fn on_data_timeout(&mut self, now: SimTime, actions: &mut Vec<MacAction>) {
        if self.state != MacState::WaitData {
            return;
        }
        // The promised DATA never came; go back to our own business.
        self.resume_own(now, actions);
    }

    /// Handles a failed RTS or DATA attempt: widen the window, redraw from
    /// the PRS at the next offset, or drop after the retry limit.
    fn retry(&mut self, now: SimTime, actions: &mut Vec<MacAction>) {
        let limit = self.timing.short_retry_limit;
        let ctx = self.tx_ctx.as_mut().expect("retry without a packet");
        if ctx.true_attempt >= limit {
            self.stats.dropped_retry += 1;
            let sdu = ctx.sdu;
            self.finish_packet(sdu, false, now, actions);
            return;
        }
        self.stats.retries += 1;
        ctx.true_attempt += 1;
        ctx.seq_off = self.seq_counter;
        self.seq_counter += 1;
        ctx.dictated = self.prs.backoff(
            ctx.seq_off,
            ctx.true_attempt,
            self.timing.cw_min,
            self.timing.cw_max,
        );
        self.metrics.record_backoff_slots(u64::from(ctx.dictated.slots));
        ctx.counter = self.policy.actual_slots(ctx.dictated, &mut self.rng);
        self.state = MacState::Contending;
        self.try_resume(now, actions);
    }

    /// Completes the current packet and moves to the next.
    fn finish_packet(
        &mut self,
        sdu: MacSdu,
        delivered: bool,
        now: SimTime,
        actions: &mut Vec<MacAction>,
    ) {
        if delivered {
            self.stats.delivered += 1;
        }
        self.tx_ctx = None;
        actions.push(MacAction::PacketDone { sdu, delivered });
        self.next_packet(now, actions);
    }

    /// Pops the next queued packet (if any), draws its back-off, starts
    /// contending.
    fn next_packet(&mut self, now: SimTime, actions: &mut Vec<MacAction>) {
        debug_assert!(self.tx_ctx.is_none());
        match self.queue.pop_front() {
            None => {
                self.state = MacState::Idle;
            }
            Some(sdu) => {
                let seq_off = self.seq_counter;
                self.seq_counter += 1;
                let dictated =
                    self.prs
                        .backoff(seq_off, 1, self.timing.cw_min, self.timing.cw_max);
                self.metrics.record_backoff_slots(u64::from(dictated.slots));
                let counter = self.policy.actual_slots(dictated, &mut self.rng);
                self.tx_ctx = Some(TxContext {
                    sdu,
                    true_attempt: 1,
                    seq_off,
                    dictated,
                    counter,
                });
                self.state = MacState::Contending;
                self.try_resume(now, actions);
            }
        }
    }

    /// Returns to our own agenda after serving as a receiver.
    fn resume_own(&mut self, now: SimTime, actions: &mut Vec<MacAction>) {
        if self.tx_ctx.is_some() {
            self.state = MacState::Contending;
            self.try_resume(now, actions);
        } else if self.queue.is_empty() {
            self.state = MacState::Idle;
        } else {
            self.next_packet(now, actions);
        }
    }
}

impl std::fmt::Debug for DcfMac {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DcfMac")
            .field("node", &self.node)
            .field("state", &self.state)
            .field("queue", &self.queue.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T0: SimTime = SimTime::ZERO;

    fn mac(node: NodeId) -> DcfMac {
        DcfMac::new(
            node,
            MacTiming::paper_default(),
            BackoffPolicy::Compliant,
            Xoshiro256::new(node as u64 + 1),
        )
    }

    fn sdu(id: u64, dst: NodeId) -> MacSdu {
        MacSdu {
            id,
            dst: Dest::Unicast(dst),
            payload_len: 512,
        }
    }

    fn arm_deadline(actions: &[MacAction], which: Timer) -> Option<SimTime> {
        actions.iter().find_map(|a| match a {
            MacAction::Arm { timer, at } if *timer == which => Some(*at),
            _ => None,
        })
    }

    fn tx_frame(actions: &[MacAction]) -> Option<&Frame> {
        actions.iter().find_map(|a| match a {
            MacAction::StartTx { frame } => Some(frame),
            _ => None,
        })
    }

    #[test]
    fn enqueue_on_idle_channel_arms_difs_plus_backoff() {
        let mut m = mac(0);
        let actions = m.enqueue(sdu(1, 1), T0);
        let deadline = arm_deadline(&actions, Timer::Countdown).expect("countdown armed");
        let dictated = m.prs().backoff(0, 1, 31, 1023).slots;
        let expect = T0 + m.timing.difs() + m.timing.slot * u64::from(dictated);
        assert_eq!(deadline, expect);
        assert_eq!(m.snapshot().state, MacState::Contending);
        assert_eq!(m.snapshot().counter, Some(dictated));
    }

    #[test]
    fn countdown_fires_rts_with_verifiable_fields() {
        let mut m = mac(0);
        let a1 = m.enqueue(sdu(7, 3), T0);
        let fire = arm_deadline(&a1, Timer::Countdown).unwrap();
        let a2 = m.on_timer(Timer::Countdown, fire);
        let frame = tx_frame(&a2).expect("RTS transmitted");
        assert_eq!(frame.src, 0);
        assert_eq!(frame.dst, Dest::Unicast(3));
        let fields = frame.rts_fields().expect("is an RTS");
        assert_eq!(fields.seq_off_wire, 0);
        assert_eq!(fields.attempt, 1);
        assert_eq!(fields.md, sdu_digest(0, 7));
        assert_eq!(m.snapshot().state, MacState::TxRts);
        assert_eq!(m.stats().rts_sent, 1);
    }

    #[test]
    fn busy_edge_freezes_and_banks_whole_slots() {
        let mut m = mac(0);
        let a1 = m.enqueue(sdu(1, 1), T0);
        let dictated = m.prs().backoff(0, 1, 31, 1023).slots;
        assert!(dictated >= 3, "test seed must give roomy backoff, got {dictated}");
        assert!(arm_deadline(&a1, Timer::Countdown).is_some());
        // Busy arrives after DIFS + 2.5 slots: exactly 2 slots banked.
        let busy_at = T0 + m.timing.difs() + m.timing.slot * 2 + m.timing.slot / 2;
        let a2 = m.on_channel_edge(true, busy_at);
        assert!(a2.contains(&MacAction::Disarm {
            timer: Timer::Countdown
        }));
        assert_eq!(m.snapshot().counter, Some(dictated - 2));
        // Idle again: re-arm for DIFS + remaining slots.
        let idle_at = busy_at + SimDuration::from_micros(500);
        let a3 = m.on_channel_edge(false, idle_at);
        let deadline = arm_deadline(&a3, Timer::Countdown).unwrap();
        assert_eq!(
            deadline,
            idle_at + m.timing.difs() + m.timing.slot * u64::from(dictated - 2)
        );
    }

    #[test]
    fn busy_during_ifs_banks_nothing() {
        let mut m = mac(0);
        let _ = m.enqueue(sdu(1, 1), T0);
        let dictated = m.prs().backoff(0, 1, 31, 1023).slots;
        // Busy 10 µs in — still inside DIFS.
        let _ = m.on_channel_edge(true, T0 + SimDuration::from_micros(10));
        assert_eq!(m.snapshot().counter, Some(dictated));
    }

    #[test]
    fn full_sender_handshake() {
        let mut m = mac(0);
        let t = MacTiming::paper_default();
        let a1 = m.enqueue(sdu(1, 1), T0);
        let fire = arm_deadline(&a1, Timer::Countdown).unwrap();
        let a2 = m.on_timer(Timer::Countdown, fire);
        assert!(tx_frame(&a2).unwrap().is_rts());

        // RTS airtime passes.
        let rts_end = fire + t.rts_airtime();
        let a3 = m.on_tx_end(rts_end);
        assert_eq!(m.snapshot().state, MacState::WaitCts);
        assert_eq!(
            arm_deadline(&a3, Timer::CtsTimeout),
            Some(rts_end + t.cts_timeout())
        );

        // CTS arrives.
        let cts_end = rts_end + t.sifs + t.cts_airtime();
        let cts = Frame {
            src: 1,
            dst: Dest::Unicast(0),
            duration: t.cts_duration(512),
            kind: FrameKind::Cts,
        };
        let a4 = m.on_frame_decoded(&cts, cts_end);
        assert!(a4.contains(&MacAction::Disarm {
            timer: Timer::CtsTimeout
        }));
        assert_eq!(m.snapshot().state, MacState::SifsData);

        // SIFS fires -> DATA.
        let a5 = m.on_timer(Timer::Sifs, cts_end + t.sifs);
        let data = tx_frame(&a5).unwrap();
        assert_eq!(data.sdu().unwrap().id, 1);
        let data_end = cts_end + t.sifs + t.data_airtime(512);
        let a6 = m.on_tx_end(data_end);
        assert_eq!(m.snapshot().state, MacState::WaitAck);
        assert!(arm_deadline(&a6, Timer::AckTimeout).is_some());

        // ACK arrives -> packet done, queue empty -> Idle.
        let ack = Frame {
            src: 1,
            dst: Dest::Unicast(0),
            duration: SimDuration::ZERO,
            kind: FrameKind::Ack,
        };
        let a7 = m.on_frame_decoded(&ack, data_end + t.sifs + t.ack_airtime());
        assert!(a7.iter().any(|a| matches!(
            a,
            MacAction::PacketDone {
                delivered: true,
                ..
            }
        )));
        assert_eq!(m.snapshot().state, MacState::Idle);
        assert_eq!(m.stats().delivered, 1);
    }

    #[test]
    fn full_receiver_handshake() {
        let mut m = mac(1);
        let t = MacTiming::paper_default();
        let rts = Frame {
            src: 0,
            dst: Dest::Unicast(1),
            duration: t.rts_duration(512),
            kind: FrameKind::Rts(RtsFields {
                seq_off_wire: 0,
                attempt: 1,
                md: [0; 16],
            }),
        };
        let rts_end = T0 + t.rts_airtime();
        let a1 = m.on_frame_decoded(&rts, rts_end);
        assert_eq!(m.snapshot().state, MacState::SifsCts);
        assert_eq!(arm_deadline(&a1, Timer::Sifs), Some(rts_end + t.sifs));

        let a2 = m.on_timer(Timer::Sifs, rts_end + t.sifs);
        let cts = tx_frame(&a2).unwrap();
        assert_eq!(cts.kind, FrameKind::Cts);
        assert_eq!(cts.dst, Dest::Unicast(0));
        // CTS NAV covers the rest of the exchange.
        assert_eq!(cts.duration, t.rts_duration(512) - t.sifs - t.cts_airtime());

        let cts_end = rts_end + t.sifs + t.cts_airtime();
        let a3 = m.on_tx_end(cts_end);
        assert_eq!(m.snapshot().state, MacState::WaitData);
        assert!(arm_deadline(&a3, Timer::DataTimeout).is_some());

        // DATA arrives.
        let data = Frame {
            src: 0,
            dst: Dest::Unicast(1),
            duration: t.data_duration(),
            kind: FrameKind::Data { sdu: sdu(9, 1) },
        };
        let data_end = cts_end + t.sifs + t.data_airtime(512);
        let a4 = m.on_frame_decoded(&data, data_end);
        assert!(a4
            .iter()
            .any(|a| matches!(a, MacAction::Deliver { from: 0, sdu } if sdu.id == 9)));
        assert_eq!(m.snapshot().state, MacState::SifsAck);

        let a5 = m.on_timer(Timer::Sifs, data_end + t.sifs);
        assert_eq!(tx_frame(&a5).unwrap().kind, FrameKind::Ack);
        let ack_end = data_end + t.sifs + t.ack_airtime();
        let _ = m.on_tx_end(ack_end);
        assert_eq!(m.snapshot().state, MacState::Idle);
    }

    #[test]
    fn cts_timeout_retries_with_wider_window_and_next_offset() {
        let mut m = mac(0);
        let a1 = m.enqueue(sdu(1, 1), T0);
        let fire = arm_deadline(&a1, Timer::Countdown).unwrap();
        let _ = m.on_timer(Timer::Countdown, fire);
        let rts_end = fire + m.timing.rts_airtime();
        let _ = m.on_tx_end(rts_end);
        let timeout_at = rts_end + m.timing.cts_timeout();
        let a2 = m.on_timer(Timer::CtsTimeout, timeout_at);
        // Second attempt: offset 1, attempt 2, CW 63.
        let snap = m.snapshot();
        assert_eq!(snap.state, MacState::Contending);
        assert_eq!(snap.seq_off, Some(1));
        assert_eq!(snap.attempt, Some(2));
        let dictated2 = m.prs().backoff(1, 2, 31, 1023);
        assert_eq!(dictated2.cw, 63);
        assert_eq!(snap.counter, Some(dictated2.slots));
        assert_eq!(
            arm_deadline(&a2, Timer::Countdown),
            Some(timeout_at + m.timing.difs() + m.timing.slot * u64::from(dictated2.slots))
        );
        assert_eq!(m.stats().retries, 1);
    }

    #[test]
    fn packet_dropped_after_retry_limit() {
        let mut m = mac(0);
        let mut now = T0;
        let mut actions = m.enqueue(sdu(1, 1), now);
        let mut done = None;
        for _ in 0..20 {
            if let Some(at) = arm_deadline(&actions, Timer::Countdown) {
                now = at;
                actions = m.on_timer(Timer::Countdown, now);
            }
            if tx_frame(&actions).is_some() {
                now += m.timing.rts_airtime();
                actions = m.on_tx_end(now);
            }
            if let Some(at) = arm_deadline(&actions, Timer::CtsTimeout) {
                now = at;
                actions = m.on_timer(Timer::CtsTimeout, now);
            }
            if let Some(d) = actions.iter().find_map(|a| match a {
                MacAction::PacketDone { delivered, .. } => Some(*delivered),
                _ => None,
            }) {
                done = Some(d);
                break;
            }
        }
        assert_eq!(done, Some(false), "packet should be dropped");
        assert_eq!(m.stats().dropped_retry, 1);
        assert_eq!(m.stats().rts_sent, 7, "short retry limit");
        assert_eq!(m.snapshot().state, MacState::Idle);
    }

    #[test]
    fn nav_defers_countdown() {
        let mut m = mac(0);
        let t = MacTiming::paper_default();
        let _ = m.enqueue(sdu(1, 1), T0);
        // Overheard third-party RTS reserves the medium.
        let rts = Frame {
            src: 5,
            dst: Dest::Unicast(6),
            duration: SimDuration::from_micros(4000),
            kind: FrameKind::Rts(RtsFields {
                seq_off_wire: 0,
                attempt: 1,
                md: [0; 16],
            }),
        };
        // The frame occupied the channel (busy edge), then decoded at its end.
        let _ = m.on_channel_edge(true, T0 + SimDuration::from_micros(10));
        let rts_end = T0 + SimDuration::from_micros(10) + t.rts_airtime();
        let a = m.on_frame_decoded(&rts, rts_end);
        assert!(arm_deadline(&a, Timer::NavExpire).is_some());
        // Physical idle while NAV holds: no countdown.
        let idle = m.on_channel_edge(false, rts_end);
        assert!(arm_deadline(&idle, Timer::Countdown).is_none());
        // NAV expiry releases us.
        let nav_end = rts_end + SimDuration::from_micros(4000);
        let a2 = m.on_timer(Timer::NavExpire, nav_end);
        assert!(arm_deadline(&a2, Timer::Countdown).is_some());
    }

    #[test]
    fn eifs_after_garbled_frame() {
        let mut m = mac(0);
        let t = MacTiming::paper_default();
        let _ = m.enqueue(sdu(1, 1), T0);
        let dictated = m.prs().backoff(0, 1, 31, 1023).slots;
        let _ = m.on_channel_edge(true, T0 + SimDuration::from_micros(5));
        let garble_at = T0 + SimDuration::from_micros(400);
        let _ = m.on_frame_garbled(garble_at);
        let a = m.on_channel_edge(false, garble_at);
        let deadline = arm_deadline(&a, Timer::Countdown).unwrap();
        assert_eq!(
            deadline,
            garble_at + t.eifs() + t.slot * u64::from(dictated)
        );
        assert_eq!(m.stats().garbled_heard, 1);
    }

    #[test]
    fn broadcast_skips_handshake() {
        let mut m = mac(0);
        let bsdu = MacSdu {
            id: 4,
            dst: Dest::Broadcast,
            payload_len: 64,
        };
        let a1 = m.enqueue(bsdu, T0);
        let fire = arm_deadline(&a1, Timer::Countdown).unwrap();
        let a2 = m.on_timer(Timer::Countdown, fire);
        let f = tx_frame(&a2).unwrap();
        assert_eq!(f.dst, Dest::Broadcast);
        assert!(f.sdu().is_some());
        let end = fire + m.timing.data_airtime(64);
        let a3 = m.on_tx_end(end);
        assert!(a3.iter().any(|a| matches!(
            a,
            MacAction::PacketDone {
                delivered: true,
                ..
            }
        )));
        assert_eq!(m.snapshot().state, MacState::Idle);
    }

    #[test]
    fn queue_overflow_drops() {
        let mut m = mac(0);
        m.set_queue_cap(2);
        // First enqueue becomes head-of-line (leaves the queue), so two more
        // fit in the queue and the fourth drops.
        for i in 0..4 {
            let _ = m.enqueue(sdu(i, 1), T0);
        }
        assert_eq!(m.stats().queue_drops, 1);
        assert_eq!(m.stats().enqueued, 3);
    }

    #[test]
    fn receiver_busy_with_nav_ignores_rts() {
        let mut m = mac(1);
        let t = MacTiming::paper_default();
        // Third-party reservation first.
        let other = Frame {
            src: 8,
            dst: Dest::Unicast(9),
            duration: SimDuration::from_micros(5000),
            kind: FrameKind::Cts,
        };
        let _ = m.on_frame_decoded(&other, T0 + SimDuration::from_micros(100));
        // RTS for us during the reservation: must not answer.
        let rts = Frame {
            src: 0,
            dst: Dest::Unicast(1),
            duration: t.rts_duration(512),
            kind: FrameKind::Rts(RtsFields {
                seq_off_wire: 0,
                attempt: 1,
                md: [0; 16],
            }),
        };
        let a = m.on_frame_decoded(&rts, T0 + SimDuration::from_micros(700));
        assert!(arm_deadline(&a, Timer::Sifs).is_none());
        assert_eq!(m.snapshot().state, MacState::Idle);
    }

    #[test]
    fn basic_access_skips_rts_below_threshold() {
        let mut timing = MacTiming::paper_default();
        timing.rts_threshold = 4000; // everything below: basic access
        let mut sender = DcfMac::new(0, timing, BackoffPolicy::Compliant, Xoshiro256::new(1));
        let a1 = sender.enqueue(sdu(1, 1), T0);
        let fire = arm_deadline(&a1, Timer::Countdown).unwrap();
        let a2 = sender.on_timer(Timer::Countdown, fire);
        let frame = tx_frame(&a2).expect("transmits");
        assert!(frame.sdu().is_some(), "DATA straight away, no RTS");
        assert_eq!(frame.dst, Dest::Unicast(1));
        assert_eq!(frame.duration, timing.data_duration());
        assert_eq!(sender.stats().rts_sent, 0);
        // Sender then awaits the ACK.
        let data_end = fire + timing.data_airtime(512);
        let a3 = sender.on_tx_end(data_end);
        assert_eq!(sender.snapshot().state, MacState::WaitAck);
        assert!(arm_deadline(&a3, Timer::AckTimeout).is_some());

        // Receiver side: DATA out of the blue is delivered and ACKed.
        let mut receiver = mac(1);
        let a4 = receiver.on_frame_decoded(frame, data_end);
        assert!(a4
            .iter()
            .any(|a| matches!(a, MacAction::Deliver { from: 0, .. })));
        assert_eq!(receiver.snapshot().state, MacState::SifsAck);
        let a5 = receiver.on_timer(Timer::Sifs, data_end + timing.sifs);
        assert_eq!(tx_frame(&a5).unwrap().kind, FrameKind::Ack);

        // ACK closes the exchange at the sender.
        let ack = Frame {
            src: 1,
            dst: Dest::Unicast(0),
            duration: SimDuration::ZERO,
            kind: FrameKind::Ack,
        };
        let a6 = sender.on_frame_decoded(&ack, data_end + timing.sifs + timing.ack_airtime());
        assert!(a6.iter().any(|a| matches!(
            a,
            MacAction::PacketDone {
                delivered: true,
                ..
            }
        )));
        assert_eq!(sender.stats().delivered, 1);
    }

    #[test]
    fn rts_used_above_threshold() {
        let mut timing = MacTiming::paper_default();
        timing.rts_threshold = 100; // 512 + 56 > 100 -> RTS
        let mut m = DcfMac::new(0, timing, BackoffPolicy::Compliant, Xoshiro256::new(1));
        let a1 = m.enqueue(sdu(1, 1), T0);
        let fire = arm_deadline(&a1, Timer::Countdown).unwrap();
        let a2 = m.on_timer(Timer::Countdown, fire);
        assert!(tx_frame(&a2).unwrap().is_rts());
    }

    #[test]
    fn nav_reset_releases_abandoned_reservation() {
        let mut m = mac(0);
        let t = MacTiming::paper_default();
        let _ = m.enqueue(sdu(1, 1), T0);
        // Overheard third-party RTS: NAV set for the whole exchange.
        let rts = Frame {
            src: 5,
            dst: Dest::Unicast(6),
            duration: t.rts_duration(512),
            kind: FrameKind::Rts(RtsFields {
                seq_off_wire: 0,
                attempt: 1,
                md: [0; 16],
            }),
        };
        let _ = m.on_channel_edge(true, T0 + SimDuration::from_micros(4));
        let rts_end = T0 + SimDuration::from_micros(4) + t.rts_airtime();
        let a = m.on_frame_decoded(&rts, rts_end);
        let reset_at = arm_deadline(&a, Timer::NavReset).expect("reset check armed");
        assert!(reset_at < rts_end + t.rts_duration(512));
        let _ = m.on_channel_edge(false, rts_end);
        // No CTS/DATA ever follows; the reset check fires and frees us.
        let a2 = m.on_timer(Timer::NavReset, reset_at);
        assert!(
            arm_deadline(&a2, Timer::Countdown).is_some(),
            "NAV must be released: {a2:?}"
        );
        assert!(m.snapshot().nav_until <= reset_at);
    }

    #[test]
    fn nav_reset_keeps_reservation_when_exchange_proceeds() {
        let mut m = mac(0);
        let t = MacTiming::paper_default();
        let _ = m.enqueue(sdu(1, 1), T0);
        let rts = Frame {
            src: 5,
            dst: Dest::Unicast(6),
            duration: t.rts_duration(512),
            kind: FrameKind::Rts(RtsFields {
                seq_off_wire: 0,
                attempt: 1,
                md: [0; 16],
            }),
        };
        let _ = m.on_channel_edge(true, T0 + SimDuration::from_micros(4));
        let rts_end = T0 + SimDuration::from_micros(4) + t.rts_airtime();
        let a = m.on_frame_decoded(&rts, rts_end);
        let reset_at = arm_deadline(&a, Timer::NavReset).unwrap();
        let _ = m.on_channel_edge(false, rts_end);
        // CTS energy makes the channel busy again before the check fires.
        let _ = m.on_channel_edge(true, rts_end + t.sifs);
        let _ = m.on_channel_edge(false, rts_end + t.sifs + t.cts_airtime());
        let a2 = m.on_timer(Timer::NavReset, reset_at);
        // NAV still holding: no countdown may start.
        assert!(
            arm_deadline(&a2, Timer::Countdown).is_none(),
            "NAV must survive an active exchange: {a2:?}"
        );
        assert!(m.snapshot().nav_until > reset_at);
    }

    #[test]
    fn receiver_data_timeout_recovers() {
        let mut m = mac(1);
        let t = MacTiming::paper_default();
        // Our own packet is pending, then we get called to serve as receiver.
        let _ = m.enqueue(sdu(9, 0), T0);
        let rts = Frame {
            src: 0,
            dst: Dest::Unicast(1),
            duration: t.rts_duration(512),
            kind: FrameKind::Rts(RtsFields {
                seq_off_wire: 0,
                attempt: 1,
                md: [0; 16],
            }),
        };
        let _ = m.on_channel_edge(true, T0 + SimDuration::from_micros(4));
        let rts_end = T0 + SimDuration::from_micros(4) + t.rts_airtime();
        let _ = m.on_frame_decoded(&rts, rts_end);
        assert_eq!(m.snapshot().state, MacState::SifsCts);
        let _ = m.on_timer(Timer::Sifs, rts_end + t.sifs);
        let cts_end = rts_end + t.sifs + t.cts_airtime();
        let a = m.on_tx_end(cts_end);
        let deadline = arm_deadline(&a, Timer::DataTimeout).expect("data timeout armed");
        // The DATA never comes; we must return to our own contention.
        let _ = m.on_channel_edge(false, cts_end);
        let a2 = m.on_timer(Timer::DataTimeout, deadline);
        assert_eq!(m.snapshot().state, MacState::Contending);
        assert!(
            arm_deadline(&a2, Timer::Countdown).is_some(),
            "must resume own backoff: {a2:?}"
        );
    }

    #[test]
    fn receiver_resumes_own_contention_after_serving() {
        let mut m = mac(1);
        let t = MacTiming::paper_default();
        let _ = m.enqueue(sdu(9, 0), T0);
        let before = m.snapshot().counter.unwrap();
        // Freeze mid-countdown, then serve a full exchange for node 0.
        let busy_at = T0 + t.difs() + t.slot * 3;
        let _ = m.on_channel_edge(true, busy_at);
        let remaining = m.snapshot().counter.unwrap();
        assert_eq!(remaining, before - 3);
        let rts = Frame {
            src: 0,
            dst: Dest::Unicast(1),
            duration: t.rts_duration(512),
            kind: FrameKind::Rts(RtsFields {
                seq_off_wire: 0,
                attempt: 1,
                md: [0; 16],
            }),
        };
        let rts_end = busy_at + t.rts_airtime();
        let _ = m.on_frame_decoded(&rts, rts_end);
        let _ = m.on_timer(Timer::Sifs, rts_end + t.sifs);
        let cts_end = rts_end + t.sifs + t.cts_airtime();
        let _ = m.on_tx_end(cts_end);
        let data = Frame {
            src: 0,
            dst: Dest::Unicast(1),
            duration: t.data_duration(),
            kind: FrameKind::Data { sdu: sdu(5, 1) },
        };
        let data_end = cts_end + t.sifs + t.data_airtime(512);
        let _ = m.on_frame_decoded(&data, data_end);
        let _ = m.on_timer(Timer::Sifs, data_end + t.sifs);
        let ack_end = data_end + t.sifs + t.ack_airtime();
        let a = m.on_tx_end(ack_end);
        // Back to Contending with the *banked* counter, not a fresh draw.
        assert_eq!(m.snapshot().state, MacState::Contending);
        assert_eq!(m.snapshot().counter, Some(remaining));
        let _ = a;
    }

    #[test]
    fn queue_is_fifo() {
        let mut m = mac(0);
        let t = MacTiming::paper_default();
        for i in 0..3 {
            let _ = m.enqueue(sdu(i, 1), T0);
        }
        let mut delivered = Vec::new();
        let mut now = T0;
        for _ in 0..3 {
            // Fire countdown → RTS → CTS → DATA → ACK, capturing the id.
            let snap = m.snapshot();
            assert_eq!(snap.state, MacState::Contending);
            let fire = now + t.difs() + t.slot * u64::from(snap.counter.unwrap());
            let a = m.on_timer(Timer::Countdown, fire);
            assert!(tx_frame(&a).unwrap().is_rts());
            let rts_end = fire + t.rts_airtime();
            let _ = m.on_tx_end(rts_end);
            let cts = Frame {
                src: 1,
                dst: Dest::Unicast(0),
                duration: t.cts_duration(512),
                kind: FrameKind::Cts,
            };
            let cts_end = rts_end + t.sifs + t.cts_airtime();
            let _ = m.on_frame_decoded(&cts, cts_end);
            let a = m.on_timer(Timer::Sifs, cts_end + t.sifs);
            delivered.push(tx_frame(&a).unwrap().sdu().unwrap().id);
            let data_end = cts_end + t.sifs + t.data_airtime(512);
            let _ = m.on_tx_end(data_end);
            let ack = Frame {
                src: 1,
                dst: Dest::Unicast(0),
                duration: SimDuration::ZERO,
                kind: FrameKind::Ack,
            };
            now = data_end + t.sifs + t.ack_airtime();
            let _ = m.on_frame_decoded(&ack, now);
        }
        assert_eq!(delivered, vec![0, 1, 2]);
    }

    #[test]
    fn scaled_policy_counts_down_less() {
        let mut honest = mac(0);
        let mut cheat = DcfMac::new(
            0,
            MacTiming::paper_default(),
            BackoffPolicy::Scaled { pm: 80 },
            Xoshiro256::new(1),
        );
        let a_h = honest.enqueue(sdu(1, 1), T0);
        let a_c = cheat.enqueue(sdu(1, 1), T0);
        let dh = arm_deadline(&a_h, Timer::Countdown).unwrap();
        let dc = arm_deadline(&a_c, Timer::Countdown).unwrap();
        let dictated = honest.prs().backoff(0, 1, 31, 1023).slots;
        assert!(dictated > 0);
        assert!(dc < dh, "cheater fires earlier: {dc:?} vs {dh:?}");
        // And both *announce* the same dictated draw (same node id ⇒ same PRS).
        assert_eq!(cheat.snapshot().seq_off, honest.snapshot().seq_off);
    }
}
