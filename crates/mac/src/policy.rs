//! Back-off policies: the compliant one and the misbehavior models.

use mg_crypto::BackoffDraw;
use mg_sim::rng::Rng;

/// How a node turns its *dictated* back-off draw into the value it actually
/// counts down.
///
/// `Compliant` is the honest policy; the rest are the attacker models the
/// paper evaluates. All attackers still *announce* truthful sequence offsets
/// (monitors verify offset continuity deterministically, so lying there is
/// immediately fatal); the attack is in the countdown itself — except
/// [`BackoffPolicy::AttemptCheat`], which lies about the attempt number to
/// keep its contention window narrow and is caught by the MD/attempt
/// deterministic check instead.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub enum BackoffPolicy {
    /// Count down exactly the dictated value.
    #[default]
    Compliant,
    /// The paper's misbehavior knob: with "percentage of misbehavior"
    /// `pm` ∈ [0, 100], count down only `(100 − pm)%` of the dictated value
    /// ("it transmits a packet after counting down to (100−m)% of the
    /// dictated back-off value"). `pm = 0` ⇒ compliant; `pm = 100` ⇒ no
    /// back-off at all.
    Scaled {
        /// Percentage of misbehavior, 0–100.
        pm: u8,
    },
    /// Always use the same constant back-off, ignoring the PRS and the
    /// contention window entirely.
    Fixed {
        /// The constant number of slots.
        slots: u16,
    },
    /// Draw (privately, unverifiably) from a uniform window `[0, cw]` that
    /// does not grow on retransmission — the "completely different
    /// retransmission strategy" the paper mentions.
    AltDistribution {
        /// The fixed private contention window.
        cw: u16,
    },
    /// Count down honestly but announce `attempt = 1` on every
    /// retransmission so the dictated window never widens (caught by the
    /// MD5/attempt deterministic check, not the statistical test).
    AttemptCheat,
}

impl BackoffPolicy {
    /// The slots this policy actually counts down, given the dictated draw.
    pub fn actual_slots<R: Rng>(&self, dictated: BackoffDraw, rng: &mut R) -> u16 {
        match *self {
            BackoffPolicy::Compliant | BackoffPolicy::AttemptCheat => dictated.slots,
            BackoffPolicy::Scaled { pm } => {
                let pm = pm.min(100);
                ((u32::from(dictated.slots) * (100 - u32::from(pm))) / 100) as u16
            }
            BackoffPolicy::Fixed { slots } => slots,
            BackoffPolicy::AltDistribution { cw } => rng.below(u64::from(cw) + 1) as u16,
        }
    }

    /// The attempt number this policy *announces* for a true attempt count.
    pub fn announced_attempt(&self, true_attempt: u8) -> u8 {
        match *self {
            BackoffPolicy::AttemptCheat => 1,
            _ => true_attempt,
        }
    }

    /// Whether the policy deviates from the standard (useful for labelling
    /// experiment output).
    pub fn is_misbehaving(&self) -> bool {
        match *self {
            BackoffPolicy::Compliant => false,
            BackoffPolicy::Scaled { pm } => pm > 0,
            _ => true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mg_sim::rng::Xoshiro256;

    fn draw(slots: u16) -> BackoffDraw {
        BackoffDraw { slots, cw: 31 }
    }

    #[test]
    fn compliant_uses_dictated() {
        let mut rng = Xoshiro256::new(1);
        assert_eq!(
            BackoffPolicy::Compliant.actual_slots(draw(17), &mut rng),
            17
        );
        assert!(!BackoffPolicy::Compliant.is_misbehaving());
    }

    #[test]
    fn scaled_matches_paper_definition() {
        let mut rng = Xoshiro256::new(1);
        // PM = 65% → counts down 35% of the dictated value.
        assert_eq!(
            BackoffPolicy::Scaled { pm: 65 }.actual_slots(draw(20), &mut rng),
            7
        );
        assert_eq!(
            BackoffPolicy::Scaled { pm: 100 }.actual_slots(draw(20), &mut rng),
            0
        );
        assert_eq!(
            BackoffPolicy::Scaled { pm: 0 }.actual_slots(draw(20), &mut rng),
            20
        );
        assert!(!BackoffPolicy::Scaled { pm: 0 }.is_misbehaving());
        assert!(BackoffPolicy::Scaled { pm: 10 }.is_misbehaving());
        // Out-of-range pm clamps rather than wrapping.
        assert_eq!(
            BackoffPolicy::Scaled { pm: 200 }.actual_slots(draw(20), &mut rng),
            0
        );
    }

    #[test]
    fn fixed_ignores_dictation() {
        let mut rng = Xoshiro256::new(1);
        let p = BackoffPolicy::Fixed { slots: 2 };
        assert_eq!(p.actual_slots(draw(500), &mut rng), 2);
        assert_eq!(p.actual_slots(draw(0), &mut rng), 2);
    }

    #[test]
    fn alt_distribution_stays_in_window() {
        let mut rng = Xoshiro256::new(5);
        let p = BackoffPolicy::AltDistribution { cw: 7 };
        for _ in 0..1000 {
            assert!(p.actual_slots(draw(1000), &mut rng) <= 7);
        }
    }

    #[test]
    fn attempt_cheat_lies_about_attempt_only() {
        let mut rng = Xoshiro256::new(1);
        let p = BackoffPolicy::AttemptCheat;
        assert_eq!(p.actual_slots(draw(9), &mut rng), 9);
        assert_eq!(p.announced_attempt(4), 1);
        assert_eq!(BackoffPolicy::Compliant.announced_attempt(4), 4);
    }
}
