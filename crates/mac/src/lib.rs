//! # mg-dcf — IEEE 802.11 DCF with verifiable back-off
//!
//! A faithful event-driven implementation of the 802.11 **Distributed
//! Coordination Function** (the MAC the paper attacks and defends), plus the
//! paper's Section 4 modifications:
//!
//! * CSMA/CA with physical *and* virtual (NAV) carrier sense;
//! * slotted back-off with freeze/resume, DIFS/EIFS deference, binary
//!   exponential contention-window growth, and the standard retry limits;
//! * the RTS/CTS/DATA/ACK four-way handshake (plus broadcast frames);
//! * **verifiable back-off**: every back-off value is drawn from the node's
//!   MAC-address-seeded [`mg_crypto::VerifiableSequence`], and every RTS
//!   carries the paper's modified fields ([`RtsFields`]): the 13-bit
//!   sequence offset, the 3-bit attempt number, and the MD5 digest of the
//!   DATA frame to follow (Fig. 2 of the paper);
//! * pluggable [`BackoffPolicy`] — the compliant policy and the misbehavior
//!   models the paper evaluates (percentage-of-misbehavior scaling, constant
//!   windows, non-standard distributions, attempt-number cheating).
//!
//! The MAC is written sans-I/O: it consumes *events* (timer fires, channel
//! edges, decoded frames) and emits *actions* ([`MacAction`]): arm/disarm a
//! timer, start a transmission, deliver a packet upward. The surrounding
//! world (`mg-net`) wires those actions to the event queue and the shared
//! medium — which also makes every protocol rule unit-testable in isolation.

#![warn(missing_docs)]

mod dcf;
mod frame;
mod policy;
mod timing;

pub use dcf::{DcfMac, MacAction, MacSnapshot, MacState, MacStats, Timer};
pub use frame::{sdu_digest, Dest, Frame, FrameKind, MacSdu, RtsFields};
pub use policy::BackoffPolicy;
pub use timing::MacTiming;

/// Index of a node in the simulation (matches `mg_phy::NodeId`).
pub type NodeId = usize;
