//! MAC frames, including the paper's extended RTS.

use crate::NodeId;
use mg_sim::SimDuration;

/// A frame's destination.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Dest {
    /// Addressed to a single node.
    Unicast(NodeId),
    /// Addressed to everyone in range (no RTS/CTS/ACK).
    Broadcast,
}

impl Dest {
    /// True when the destination is this node.
    pub fn is_for(&self, node: NodeId) -> bool {
        match *self {
            Dest::Unicast(n) => n == node,
            Dest::Broadcast => true,
        }
    }
}

/// A MAC service data unit: one network-layer packet queued for
/// transmission. The simulated "payload" is identified by `id`; its MD5
/// digest (what the paper's RTS carries) is derived deterministically via
/// [`sdu_digest`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MacSdu {
    /// Unique packet id (assigned by the traffic generator / router).
    pub id: u64,
    /// Where the packet is headed.
    pub dst: Dest,
    /// Application payload length in bytes (Table 1: 512).
    pub payload_len: u16,
}

/// The MD5 digest of a (simulated) DATA frame: hash of the packet identity.
/// Both the sender (when building its RTS) and any monitor (when verifying
/// retransmissions) compute this identically.
pub fn sdu_digest(src: NodeId, sdu_id: u64) -> [u8; 16] {
    let mut bytes = [0u8; 16];
    bytes[..8].copy_from_slice(&(src as u64).to_le_bytes());
    bytes[8..].copy_from_slice(&sdu_id.to_le_bytes());
    mg_crypto::digest(&bytes)
}

/// The paper's modified RTS payload (Fig. 2).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RtsFields {
    /// The 13-bit on-air sequence offset (logical offset mod 2¹³),
    /// committing the sender to a position in its verifiable PRS.
    pub seq_off_wire: u16,
    /// Attempt number, 3 bits: 1 for a fresh packet, +1 per retransmission.
    pub attempt: u8,
    /// MD5 digest of the DATA frame this RTS clears the way for.
    pub md: [u8; 16],
}

impl RtsFields {
    /// These fields as a receiver would decode them after on-air bit
    /// corruption: XOR masks applied to each wire field, confined to the
    /// widths that actually exist on the wire (13 sequence bits, 3 attempt
    /// bits, one commitment byte). Keeps fault injectors ignorant of the
    /// frame layout — they hand over raw masks, this type owns the wire
    /// format.
    pub fn with_bit_flips(
        self,
        seq_xor: u16,
        attempt_xor: u8,
        md_index: usize,
        md_mask: u8,
    ) -> RtsFields {
        let mut md = self.md;
        md[md_index % md.len()] ^= md_mask;
        RtsFields {
            seq_off_wire: self.seq_off_wire ^ (seq_xor & 0x1FFF),
            attempt: self.attempt ^ (attempt_xor & 0x7),
            md,
        }
    }
}

/// Frame type and type-specific payload.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum FrameKind {
    /// Request-to-send with the paper's verification fields.
    Rts(RtsFields),
    /// Clear-to-send.
    Cts,
    /// A data frame carrying one SDU.
    Data {
        /// The packet being carried.
        sdu: MacSdu,
    },
    /// Acknowledgment.
    Ack,
}

/// A frame on the air.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Frame {
    /// Transmitting node.
    pub src: NodeId,
    /// Destination.
    pub dst: Dest,
    /// The NAV value: how long the medium is reserved *after* this frame
    /// ends. Third-party receivers defer for this long.
    pub duration: SimDuration,
    /// Type-specific contents.
    pub kind: FrameKind,
}

impl Frame {
    /// The RTS fields, if this is an RTS.
    pub fn rts_fields(&self) -> Option<&RtsFields> {
        match &self.kind {
            FrameKind::Rts(f) => Some(f),
            _ => None,
        }
    }

    /// The carried SDU, if this is a DATA frame.
    pub fn sdu(&self) -> Option<&MacSdu> {
        match &self.kind {
            FrameKind::Data { sdu } => Some(sdu),
            _ => None,
        }
    }

    /// True for RTS frames.
    pub fn is_rts(&self) -> bool {
        matches!(self.kind, FrameKind::Rts(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dest_matching() {
        assert!(Dest::Unicast(3).is_for(3));
        assert!(!Dest::Unicast(3).is_for(4));
        assert!(Dest::Broadcast.is_for(17));
    }

    #[test]
    fn bit_flips_stay_inside_wire_widths_and_invert() {
        let f = RtsFields { seq_off_wire: 0x1ABC, attempt: 5, md: sdu_digest(1, 42) };
        // Masks wider than the wire fields are clipped to 13 / 3 bits.
        let g = f.with_bit_flips(0xFFFF, 0xFF, 3, 0x80);
        assert_eq!(g.seq_off_wire, f.seq_off_wire ^ 0x1FFF);
        assert_eq!(g.attempt, f.attempt ^ 0x7);
        assert_eq!(g.md[3], f.md[3] ^ 0x80);
        // XOR corruption is an involution.
        assert_eq!(g.with_bit_flips(0xFFFF, 0xFF, 3, 0x80), f);
        // Out-of-range commitment index wraps instead of panicking.
        let h = f.with_bit_flips(0, 0, 16, 0x01);
        assert_eq!(h.md[0], f.md[0] ^ 0x01);
    }

    #[test]
    fn digest_is_deterministic_and_distinguishes() {
        assert_eq!(sdu_digest(1, 42), sdu_digest(1, 42));
        assert_ne!(sdu_digest(1, 42), sdu_digest(1, 43));
        assert_ne!(sdu_digest(1, 42), sdu_digest(2, 42));
    }

    #[test]
    fn frame_accessors() {
        let rts = Frame {
            src: 0,
            dst: Dest::Unicast(1),
            duration: SimDuration::from_micros(100),
            kind: FrameKind::Rts(RtsFields {
                seq_off_wire: 7,
                attempt: 1,
                md: [0; 16],
            }),
        };
        assert!(rts.is_rts());
        assert_eq!(rts.rts_fields().unwrap().seq_off_wire, 7);
        assert!(rts.sdu().is_none());

        let data = Frame {
            src: 0,
            dst: Dest::Unicast(1),
            duration: SimDuration::ZERO,
            kind: FrameKind::Data {
                sdu: MacSdu {
                    id: 9,
                    dst: Dest::Unicast(1),
                    payload_len: 512,
                },
            },
        };
        assert_eq!(data.sdu().unwrap().id, 9);
        assert!(data.rts_fields().is_none());
    }
}
