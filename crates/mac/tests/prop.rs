//! Property-based tests for MAC timing and the back-off policies
//! (mg-testkit harness).

use mg_crypto::{BackoffDraw, VerifiableSequence};
use mg_dcf::{BackoffPolicy, MacTiming};
use mg_sim::rng::Xoshiro256;
use mg_testkit::prop::{check, Gen, TkResult};
use mg_testkit::{tk_assert, tk_assert_eq};

/// NAV durations nest exactly for any payload size: the reservation a
/// frame announces equals the airtime of everything that follows it.
#[test]
fn nav_nesting() {
    check("nav_nesting", |g: &mut Gen| -> TkResult {
        let payload = g.u16_in(0..2312);
        let t = MacTiming::paper_default();
        tk_assert_eq!(
            t.rts_duration(payload),
            t.sifs * 3 + t.cts_airtime() + t.data_airtime(payload) + t.ack_airtime()
        );
        tk_assert_eq!(
            t.cts_duration(payload),
            t.rts_duration(payload) - t.sifs - t.cts_airtime()
        );
        tk_assert_eq!(t.data_duration(), t.sifs + t.ack_airtime());
        Ok(())
    });
}

/// Airtime grows monotonically with payload size.
#[test]
fn airtime_monotone() {
    check("airtime_monotone", |g: &mut Gen| -> TkResult {
        let p1 = g.u16_in(0..2312);
        let p2 = g.u16_in(0..2312);
        let t = MacTiming::paper_default();
        if p1 <= p2 {
            tk_assert!(t.data_airtime(p1) <= t.data_airtime(p2));
        } else {
            tk_assert!(t.data_airtime(p1) >= t.data_airtime(p2));
        }
        Ok(())
    });
}

/// Timeouts always cover the SIFS + awaited frame.
#[test]
fn timeouts_cover() {
    check("timeouts_cover", |g: &mut Gen| -> TkResult {
        let payload = g.u16_in(0..2312);
        let t = MacTiming::paper_default();
        tk_assert!(t.cts_timeout() >= t.sifs + t.cts_airtime());
        tk_assert!(t.ack_timeout() >= t.sifs + t.ack_airtime());
        tk_assert!(t.data_timeout(payload) >= t.sifs + t.data_airtime(payload));
        Ok(())
    });
}

/// The Scaled policy counts down exactly ⌊(100−pm)%⌋ of the dictated
/// value — never more, and 0 at pm=100.
#[test]
fn scaled_policy_definition() {
    check("scaled_policy_definition", |g: &mut Gen| -> TkResult {
        let pm = g.u8_in(0..101);
        let slots = g.u16_in(0..1024);
        let mut rng = Xoshiro256::new(1);
        let d = BackoffDraw { slots, cw: 1023 };
        let actual = BackoffPolicy::Scaled { pm }.actual_slots(d, &mut rng);
        let expect = (u32::from(slots) * (100 - u32::from(pm)) / 100) as u16;
        tk_assert_eq!(actual, expect);
        tk_assert!(actual <= slots);
        Ok(())
    });
}

/// Every policy yields a value a legitimate CW could contain (bounded by
/// its own declared window), and Compliant is the identity.
#[test]
fn policies_bounded() {
    check("policies_bounded", |g: &mut Gen| -> TkResult {
        let mac = g.any_u64();
        let off = g.any_u64();
        let attempt = g.u8_in(1..8);
        let mut rng = Xoshiro256::new(mac);
        let prs = VerifiableSequence::new(mac);
        let dictated = prs.backoff(off, attempt, 31, 1023);
        tk_assert_eq!(
            BackoffPolicy::Compliant.actual_slots(dictated, &mut rng),
            dictated.slots
        );
        let fixed = BackoffPolicy::Fixed { slots: 3 }.actual_slots(dictated, &mut rng);
        tk_assert_eq!(fixed, 3);
        let alt = BackoffPolicy::AltDistribution { cw: 15 }.actual_slots(dictated, &mut rng);
        tk_assert!(alt <= 15);
        Ok(())
    });
}

/// Only AttemptCheat lies about attempts, and only upward attempts are
/// reported as 1.
#[test]
fn announced_attempts() {
    check("announced_attempts", |g: &mut Gen| -> TkResult {
        let attempt = g.u8_in(1..8);
        tk_assert_eq!(BackoffPolicy::AttemptCheat.announced_attempt(attempt), 1);
        tk_assert_eq!(BackoffPolicy::Compliant.announced_attempt(attempt), attempt);
        tk_assert_eq!(
            BackoffPolicy::Scaled { pm: 50 }.announced_attempt(attempt),
            attempt
        );
        Ok(())
    });
}
