//! Property-based tests for MAC timing and the back-off policies.

use mg_crypto::{BackoffDraw, VerifiableSequence};
use mg_dcf::{BackoffPolicy, MacTiming};
use mg_sim::rng::Xoshiro256;
use proptest::prelude::*;

proptest! {
    /// NAV durations nest exactly for any payload size: the reservation a
    /// frame announces equals the airtime of everything that follows it.
    #[test]
    fn nav_nesting(payload in 0u16..2312) {
        let t = MacTiming::paper_default();
        prop_assert_eq!(
            t.rts_duration(payload),
            t.sifs * 3 + t.cts_airtime() + t.data_airtime(payload) + t.ack_airtime()
        );
        prop_assert_eq!(
            t.cts_duration(payload),
            t.rts_duration(payload) - t.sifs - t.cts_airtime()
        );
        prop_assert_eq!(t.data_duration(), t.sifs + t.ack_airtime());
    }

    /// Airtime grows monotonically with payload size.
    #[test]
    fn airtime_monotone(p1 in 0u16..2312, p2 in 0u16..2312) {
        let t = MacTiming::paper_default();
        if p1 <= p2 {
            prop_assert!(t.data_airtime(p1) <= t.data_airtime(p2));
        } else {
            prop_assert!(t.data_airtime(p1) >= t.data_airtime(p2));
        }
    }

    /// Timeouts always cover the SIFS + awaited frame.
    #[test]
    fn timeouts_cover(payload in 0u16..2312) {
        let t = MacTiming::paper_default();
        prop_assert!(t.cts_timeout() >= t.sifs + t.cts_airtime());
        prop_assert!(t.ack_timeout() >= t.sifs + t.ack_airtime());
        prop_assert!(t.data_timeout(payload) >= t.sifs + t.data_airtime(payload));
    }

    /// The Scaled policy counts down exactly ⌊(100−pm)%⌋ of the dictated
    /// value — never more, and 0 at pm=100.
    #[test]
    fn scaled_policy_definition(pm in 0u8..=100, slots in 0u16..1024) {
        let mut rng = Xoshiro256::new(1);
        let d = BackoffDraw { slots, cw: 1023 };
        let actual = BackoffPolicy::Scaled { pm }.actual_slots(d, &mut rng);
        let expect = (u32::from(slots) * (100 - u32::from(pm)) / 100) as u16;
        prop_assert_eq!(actual, expect);
        prop_assert!(actual <= slots);
    }

    /// Every policy yields a value a legitimate CW could contain (bounded by
    /// its own declared window), and Compliant is the identity.
    #[test]
    fn policies_bounded(mac in any::<u64>(), off in any::<u64>(), attempt in 1u8..8) {
        let mut rng = Xoshiro256::new(mac);
        let prs = VerifiableSequence::new(mac);
        let dictated = prs.backoff(off, attempt, 31, 1023);
        prop_assert_eq!(
            BackoffPolicy::Compliant.actual_slots(dictated, &mut rng),
            dictated.slots
        );
        let fixed = BackoffPolicy::Fixed { slots: 3 }.actual_slots(dictated, &mut rng);
        prop_assert_eq!(fixed, 3);
        let alt = BackoffPolicy::AltDistribution { cw: 15 }.actual_slots(dictated, &mut rng);
        prop_assert!(alt <= 15);
    }

    /// Only AttemptCheat lies about attempts, and only upward attempts are
    /// reported as 1.
    #[test]
    fn announced_attempts(attempt in 1u8..8) {
        prop_assert_eq!(BackoffPolicy::AttemptCheat.announced_attempt(attempt), 1);
        prop_assert_eq!(BackoffPolicy::Compliant.announced_attempt(attempt), attempt);
        prop_assert_eq!(
            BackoffPolicy::Scaled { pm: 50 }.announced_attempt(attempt),
            attempt
        );
    }
}
